#include "common/log.h"

#include <cstdio>

namespace rsafe {

namespace {
bool g_trace_enabled = false;
}  // namespace

void
panic(const std::string& msg)
{
    throw PanicError("panic: " + msg);
}

void
fatal(const std::string& msg)
{
    throw FatalError("fatal: " + msg);
}

void
warn(const std::string& msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
set_trace_enabled(bool enabled)
{
    g_trace_enabled = enabled;
}

bool
trace_enabled()
{
    return g_trace_enabled;
}

void
trace(const std::string& msg)
{
    if (g_trace_enabled)
        std::fprintf(stderr, "trace: %s\n", msg.c_str());
}

}  // namespace rsafe
