#ifndef RSAFE_COMMON_TYPES_H_
#define RSAFE_COMMON_TYPES_H_

#include <cstdint>
#include <cstddef>

/**
 * @file
 * Fundamental scalar types used throughout the RnR-Safe simulator.
 *
 * All guest-visible quantities are 64-bit: the guest ISA is a 64-bit
 * machine, cycle counts are monotonically increasing 64-bit counters, and
 * instruction counts (the unit of deterministic replay positioning) are
 * 64-bit as well.
 */

namespace rsafe {

/** Guest physical/virtual address (the guest runs with a flat mapping). */
using Addr = std::uint64_t;

/** A 64-bit guest machine word. */
using Word = std::uint64_t;

/** Simulated processor cycles. */
using Cycles = std::uint64_t;

/** Count of retired guest instructions; the replay clock. */
using InstrCount = std::uint64_t;

/** Guest thread identifier (matches the guest kernel's task id). */
using ThreadId = std::uint32_t;

/** Virtual-disk block number. */
using BlockNum = std::uint64_t;

/** Size of a guest physical memory page in bytes. */
inline constexpr std::size_t kPageSize = 4096;

/** Size of a virtual-disk block in bytes. */
inline constexpr std::size_t kDiskBlockSize = 4096;

/** Bytes per encoded guest instruction (fixed-width encoding). */
inline constexpr std::size_t kInstrBytes = 8;

/** Page number containing @p addr. */
constexpr Addr
page_of(Addr addr)
{
    return addr / kPageSize;
}

/** Base address of the page containing @p addr. */
constexpr Addr
page_base(Addr addr)
{
    return addr & ~static_cast<Addr>(kPageSize - 1);
}

/** Byte offset of @p addr within its page. */
constexpr std::size_t
page_offset(Addr addr)
{
    return static_cast<std::size_t>(addr & (kPageSize - 1));
}

}  // namespace rsafe

#endif  // RSAFE_COMMON_TYPES_H_
