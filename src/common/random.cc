#include "common/random.h"

#include <cmath>

#include "common/log.h"

namespace rsafe {

namespace {

std::uint64_t
splitmix64(std::uint64_t& x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t s = seed;
    for (auto& word : state_)
        word = splitmix64(s);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;

    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

std::uint64_t
Rng::next_below(std::uint64_t bound)
{
    if (bound == 0)
        panic("Rng::next_below: bound must be positive");
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit = bound * (UINT64_MAX / bound);
    std::uint64_t value;
    do {
        value = next();
    } while (value >= limit);
    return value % bound;
}

std::uint64_t
Rng::next_range(std::uint64_t lo, std::uint64_t hi)
{
    if (lo > hi)
        panic("Rng::next_range: lo > hi");
    if (lo == 0 && hi == UINT64_MAX)
        return next();
    return lo + next_below(hi - lo + 1);
}

double
Rng::next_double()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return next_double() < p;
}

std::uint64_t
Rng::next_interval(double mean_interval)
{
    if (mean_interval <= 1.0)
        return 1;
    // Exponentially distributed inter-arrival time with the given mean.
    const double u = next_double();
    const double gap = -mean_interval * std::log(1.0 - u);
    const double clamped = gap < 1.0 ? 1.0 : gap;
    return static_cast<std::uint64_t>(clamped);
}

}  // namespace rsafe
