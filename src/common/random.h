#ifndef RSAFE_COMMON_RANDOM_H_
#define RSAFE_COMMON_RANDOM_H_

#include <cstdint>

/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every source of "randomness" in the simulator (device arrival times,
 * workload structure, packet payloads) is derived from an explicitly seeded
 * Xoshiro256** stream so that an entire recorded execution is a pure
 * function of its seeds. This is what makes the record/replay determinism
 * property testable.
 */

namespace rsafe {

/** Xoshiro256** PRNG with SplitMix64 seeding. */
class Rng {
  public:
    /** Construct from a single 64-bit seed (expanded via SplitMix64). */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** @return the next 64-bit pseudo-random value. */
    std::uint64_t next();

    /** @return a value uniformly distributed in [0, bound). @p bound > 0. */
    std::uint64_t next_below(std::uint64_t bound);

    /** @return a value uniformly distributed in [lo, hi]. */
    std::uint64_t next_range(std::uint64_t lo, std::uint64_t hi);

    /** @return a double uniformly distributed in [0, 1). */
    double next_double();

    /** @return true with probability @p p (clamped to [0,1]). */
    bool chance(double p);

    /**
     * Sample a geometric-ish gap so that events occur on average every
     * @p mean_interval trials. Always returns at least 1.
     */
    std::uint64_t next_interval(double mean_interval);

  private:
    std::uint64_t state_[4];
};

}  // namespace rsafe

#endif  // RSAFE_COMMON_RANDOM_H_
