#ifndef RSAFE_COMMON_LOG_H_
#define RSAFE_COMMON_LOG_H_

#include <sstream>
#include <stdexcept>
#include <string>

/**
 * @file
 * Minimal diagnostic logging and error-reporting helpers.
 *
 * Follows the gem5 distinction between @c panic (an internal simulator bug:
 * a state that should be impossible regardless of configuration) and
 * @c fatal (a user/configuration error that prevents the simulation from
 * continuing). Both throw typed exceptions so tests can assert on them.
 */

namespace rsafe {

/** Thrown by panic(): an internal invariant of the simulator was violated. */
class PanicError : public std::logic_error {
  public:
    explicit PanicError(const std::string& what) : std::logic_error(what) {}
};

/** Thrown by fatal(): the user asked for something unsatisfiable. */
class FatalError : public std::runtime_error {
  public:
    explicit FatalError(const std::string& what) : std::runtime_error(what) {}
};

/** Report an internal simulator bug; never returns. */
[[noreturn]] void panic(const std::string& msg);

/** Report an unrecoverable user/configuration error; never returns. */
[[noreturn]] void fatal(const std::string& msg);

/** Emit a warning to stderr (does not stop the simulation). */
void warn(const std::string& msg);

/** Enable/disable verbose tracing to stderr (off by default). */
void set_trace_enabled(bool enabled);

/** @return whether verbose tracing is enabled. */
bool trace_enabled();

/** Emit a trace line to stderr if tracing is enabled. */
void trace(const std::string& msg);

namespace detail {

inline void
format_into(std::ostringstream&)
{
}

template <typename T, typename... Rest>
void
format_into(std::ostringstream& os, const T& value, const Rest&... rest)
{
    os << value;
    format_into(os, rest...);
}

}  // namespace detail

/** Concatenate a heterogeneous argument pack into a std::string. */
template <typename... Args>
std::string
strcat_args(const Args&... args)
{
    std::ostringstream os;
    detail::format_into(os, args...);
    return os.str();
}

}  // namespace rsafe

#endif  // RSAFE_COMMON_LOG_H_
