#ifndef RSAFE_COMMON_STATUS_H_
#define RSAFE_COMMON_STATUS_H_

#include <cstdint>
#include <string>
#include <utility>

/**
 * @file
 * Recoverable-error reporting for deserialization and I/O paths.
 *
 * panic()/fatal() (common/log.h) are for states the framework cannot
 * continue from. Parsing a log or checkpoint image that arrived over the
 * wire is different: malformed input is an *expected* event the framework
 * must degrade gracefully on (replay the intact prefix, raise a
 * kLogIntegrity alarm), never a reason to abort the process. Functions on
 * those paths return a Status carrying a machine-checkable code plus a
 * human-readable forensic message.
 */

namespace rsafe {

/** Why an operation failed (kOk means it did not). */
enum class StatusCode : std::uint8_t {
    kOk = 0,
    kInvalidArgument,   ///< caller error (bad parameters, unusable input)
    kIoError,           ///< file could not be opened / read / written
    kBadMagic,          ///< image does not start with the wire magic
    kBadVersion,        ///< wire version this build does not speak
    kHeaderCorrupt,     ///< header checksum mismatch
    kTruncated,         ///< input ends mid-structure
    kChecksumMismatch,  ///< frame checksum mismatch (bit rot / tampering)
    kMalformedRecord,   ///< frame payload is not a well-formed record
    kDuplicateRecord,   ///< frame sequence number repeats
    kReorderedRecord,   ///< frame sequence number out of order
    kTrailingBytes,     ///< well-formed image followed by garbage
};

/** @return a short stable name for @p code (diagnostics, forensics). */
inline const char*
status_code_name(StatusCode code)
{
    switch (code) {
      case StatusCode::kOk: return "ok";
      case StatusCode::kInvalidArgument: return "invalid-argument";
      case StatusCode::kIoError: return "io-error";
      case StatusCode::kBadMagic: return "bad-magic";
      case StatusCode::kBadVersion: return "bad-version";
      case StatusCode::kHeaderCorrupt: return "header-corrupt";
      case StatusCode::kTruncated: return "truncated";
      case StatusCode::kChecksumMismatch: return "checksum-mismatch";
      case StatusCode::kMalformedRecord: return "malformed-record";
      case StatusCode::kDuplicateRecord: return "duplicate-record";
      case StatusCode::kReorderedRecord: return "reordered-record";
      case StatusCode::kTrailingBytes: return "trailing-bytes";
    }
    return "<bad>";
}

/** A success/error code with a forensic message. */
class Status {
  public:
    /** Success. */
    Status() = default;

    /** An error (or explicit kOk) with a message. */
    Status(StatusCode code, std::string message)
        : code_(code), message_(std::move(message))
    {
    }

    bool ok() const { return code_ == StatusCode::kOk; }
    StatusCode code() const { return code_; }
    const std::string& message() const { return message_; }

    /** "code: message" (or "ok"). */
    std::string to_string() const
    {
        if (ok())
            return "ok";
        std::string out = status_code_name(code_);
        if (!message_.empty()) {
            out += ": ";
            out += message_;
        }
        return out;
    }

    friend bool operator==(const Status& a, const Status& b)
    {
        return a.code_ == b.code_;
    }

  private:
    StatusCode code_ = StatusCode::kOk;
    std::string message_;
};

}  // namespace rsafe

#endif  // RSAFE_COMMON_STATUS_H_
