#ifndef RSAFE_MEM_COW_STORE_H_
#define RSAFE_MEM_COW_STORE_H_

#include <array>
#include <cstdint>
#include <memory>

#include "common/types.h"

/**
 * @file
 * Shared immutable page/block storage for incremental checkpoints.
 *
 * A checkpoint "keeps copies of only the pages and blocks that have been
 * modified since the previous checkpoint; for each unmodified page or
 * block, it keeps a pointer to it in the latest checkpoint that modified
 * it" (Section 4.6.1). PageRef is that pointer: consecutive checkpoints
 * share unmodified pages by reference, and recycling a checkpoint frees a
 * page only when no later checkpoint still points at it — which shared
 * ownership gives us for free.
 */

namespace rsafe::mem {

/** An immutable copy of one page or disk block. */
using PageCopy = std::array<std::uint8_t, kPageSize>;

/** Shared reference to an immutable page copy. */
using PageRef = std::shared_ptr<const PageCopy>;

/** Allocation/accounting front-end for checkpoint page copies. */
class CowStore {
  public:
    /** Copy @p data (kPageSize bytes) into a new shared immutable page. */
    PageRef store(const std::uint8_t* data);

    /** @return total pages ever copied through this store. */
    std::uint64_t pages_copied() const { return pages_copied_; }

    /** @return total bytes ever copied through this store. */
    std::uint64_t bytes_copied() const { return pages_copied_ * kPageSize; }

  private:
    std::uint64_t pages_copied_ = 0;
};

}  // namespace rsafe::mem

#endif  // RSAFE_MEM_COW_STORE_H_
