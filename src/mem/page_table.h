#ifndef RSAFE_MEM_PAGE_TABLE_H_
#define RSAFE_MEM_PAGE_TABLE_H_

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/log.h"
#include "mem/cow_store.h"

/**
 * @file
 * A persistent (copy-on-write) array of page references for checkpoints.
 *
 * A checkpoint needs a map from page/block number to the reference holding
 * that page's contents. Copying a whole std::map per checkpoint makes an
 * incremental checkpoint cost O(all pages) even when only a handful are
 * dirty (Section 4.6.1 wants the opposite). BasicPageTable instead stores
 * the refs in fixed-size chunks that consecutive checkpoints share:
 * copying a table copies only the chunk-pointer vector, and set() clones
 * just the one chunk it lands in when that chunk is still shared (path
 * copying). An incremental checkpoint therefore costs
 * O(chunks + dirty pages) pointer work instead of O(all pages).
 *
 * The table is templated on the reference type: checkpoints hold
 * deduplicated, possibly-compressed pages (replay::ckpt::StoredPageRef)
 * while other users keep the raw PageRef shape.
 */

namespace rsafe::mem {

/** Copy-on-write indexed table of shared refs (dense, fixed size). */
template <typename Ref>
class BasicPageTable {
  public:
    /** An empty table (size 0). */
    BasicPageTable() = default;

    /** A table of @p size null refs. */
    explicit BasicPageTable(std::size_t size) : size_(size)
    {
        const std::size_t chunks = (size + kChunkSize - 1) / kChunkSize;
        chunks_.reserve(chunks);
        for (std::size_t i = 0; i < chunks; ++i)
            chunks_.push_back(std::make_shared<Chunk>());
    }

    /** @return number of slots. */
    std::size_t size() const { return size_; }

    /** @return true if the table has no slots. */
    bool empty() const { return size_ == 0; }

    /** @return the ref at @p index (may be null if never set). */
    const Ref& at(std::uint64_t index) const
    {
        if (index >= size_)
            panic("BasicPageTable::at out of range");
        return chunks_[index >> kChunkShift]->refs[index & (kChunkSize - 1)];
    }

    /**
     * Replace the ref at @p index. If the containing chunk is shared with
     * another table (an older/newer checkpoint), only that chunk is
     * cloned; the rest of the table stays shared.
     */
    void set(std::uint64_t index, Ref ref)
    {
        if (index >= size_)
            panic("BasicPageTable::set out of range");
        auto& chunk = chunks_[index >> kChunkShift];
        if (chunk.use_count() > 1)
            chunk = std::make_shared<Chunk>(*chunk);
        chunk->refs[index & (kChunkSize - 1)] = std::move(ref);
    }

  private:
    static constexpr std::size_t kChunkShift = 6;
    static constexpr std::size_t kChunkSize = std::size_t{1} << kChunkShift;

    struct Chunk {
        std::array<Ref, kChunkSize> refs;
    };

    std::vector<std::shared_ptr<Chunk>> chunks_;
    std::size_t size_ = 0;
};

/** The raw-page shape used outside the checkpoint store. */
using PageTable = BasicPageTable<PageRef>;

}  // namespace rsafe::mem

#endif  // RSAFE_MEM_PAGE_TABLE_H_
