#ifndef RSAFE_MEM_PAGE_TABLE_H_
#define RSAFE_MEM_PAGE_TABLE_H_

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "mem/cow_store.h"

/**
 * @file
 * A persistent (copy-on-write) array of PageRefs for checkpoints.
 *
 * A checkpoint needs a map from page/block number to the PageRef holding
 * that page's contents. Copying a whole std::map per checkpoint makes an
 * incremental checkpoint cost O(all pages) even when only a handful are
 * dirty (Section 4.6.1 wants the opposite). PageTable instead stores the
 * refs in fixed-size chunks that consecutive checkpoints share: copying a
 * PageTable copies only the chunk-pointer vector, and set() clones just
 * the one chunk it lands in when that chunk is still shared (path
 * copying). An incremental checkpoint therefore costs
 * O(chunks + dirty pages) pointer work instead of O(all pages).
 */

namespace rsafe::mem {

/** Copy-on-write indexed table of PageRefs (dense, fixed size). */
class PageTable {
  public:
    /** An empty table (size 0). */
    PageTable() = default;

    /** A table of @p size null refs. */
    explicit PageTable(std::size_t size);

    /** @return number of slots. */
    std::size_t size() const { return size_; }

    /** @return true if the table has no slots. */
    bool empty() const { return size_ == 0; }

    /** @return the ref at @p index (may be null if never set). */
    const PageRef& at(std::uint64_t index) const;

    /**
     * Replace the ref at @p index. If the containing chunk is shared with
     * another PageTable (an older/newer checkpoint), only that chunk is
     * cloned; the rest of the table stays shared.
     */
    void set(std::uint64_t index, PageRef ref);

  private:
    static constexpr std::size_t kChunkShift = 6;
    static constexpr std::size_t kChunkSize = std::size_t{1} << kChunkShift;

    struct Chunk {
        std::array<PageRef, kChunkSize> refs;
    };

    std::vector<std::shared_ptr<Chunk>> chunks_;
    std::size_t size_ = 0;
};

}  // namespace rsafe::mem

#endif  // RSAFE_MEM_PAGE_TABLE_H_
