#ifndef RSAFE_MEM_DISK_H_
#define RSAFE_MEM_DISK_H_

#include <cstdint>
#include <vector>

#include "common/types.h"

/**
 * @file
 * The guest's virtual disk image.
 *
 * Checkpoints must include disk blocks the VM has written (Section 4.6.1):
 * if replayed execution later reads them back, the data is not in the input
 * log, so it must come from the checkpointed disk state. The disk therefore
 * tracks dirty blocks exactly like PhysMem tracks dirty pages — a bitmap
 * with a cached count, plus the epoch machinery that lets checkpoint
 * restore skip blocks that have not changed since the checkpoint.
 */

namespace rsafe::mem {

/** A block-addressable virtual disk with dirty-block tracking. */
class Disk {
  public:
    /** Create a disk of @p num_blocks blocks, zero-filled. */
    explicit Disk(std::size_t num_blocks);

    /** @return number of blocks. */
    std::size_t num_blocks() const { return blocks_; }

    /** Read block @p block into @p out (kDiskBlockSize bytes). */
    void read_block(BlockNum block, std::uint8_t* out) const;

    /** Write block @p block from @p data; marks it dirty. */
    void write_block(BlockNum block, const std::uint8_t* data);

    /** @return pointer to the raw bytes of @p block. */
    const std::uint8_t* block_data(BlockNum block) const;

    /** @return blocks written since the last clear_dirty(), sorted. */
    std::vector<BlockNum> dirty_blocks() const;

    /** @return number of dirty blocks (O(1)). */
    std::size_t dirty_count() const { return dirty_count_; }

    /** Forget dirty state (checkpoint interval boundary); bumps epoch(). */
    void clear_dirty();

    /**
     * Delta-restore machinery, mirroring PhysMem: a block is unchanged
     * since a checkpoint taken from this same Disk at epoch E iff
     * block_epoch(b) < E.
     * @{
     */
    std::uint64_t id() const { return id_; }
    std::uint64_t epoch() const { return epoch_; }
    std::uint64_t block_epoch(BlockNum block) const
    {
        return block_epoch_[block];
    }
    /** @} */

    /** FNV-1a hash over the disk contents. */
    std::uint64_t content_hash() const;

  private:
    void mark_dirty_block(BlockNum block);

    std::size_t blocks_;
    std::vector<std::uint8_t> bytes_;
    std::vector<std::uint64_t> dirty_bits_;
    std::size_t dirty_count_ = 0;
    std::vector<std::uint64_t> block_epoch_;
    std::uint64_t epoch_ = 1;
    std::uint64_t id_;
};

}  // namespace rsafe::mem

#endif  // RSAFE_MEM_DISK_H_
