#ifndef RSAFE_MEM_PHYS_MEM_H_
#define RSAFE_MEM_PHYS_MEM_H_

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "isa/program.h"

/**
 * @file
 * Guest physical memory with page permissions and dirty tracking.
 *
 * The guest runs with a flat physical mapping (no guest paging): the memory
 * system's job here is (a) byte/word storage, (b) the W^X permission policy
 * that motivates code-reuse attacks (Appendix A of the paper), and (c) the
 * per-page dirty tracking that the checkpointing replayer's incremental
 * copy-on-write checkpoints are built from (Section 4.6.1).
 *
 * This is the simulator's hottest data structure, so the bookkeeping is
 * designed for the access pattern of a tight interpreter loop:
 *  - dirty pages live in a bitmap (one bit per page) with a cached count,
 *  - every content-changing operation on an executable page bumps that
 *    page's generation counter, which the CPU's predecoded-instruction
 *    cache validates against on every fetch,
 *  - clear_dirty() advances a global epoch, and each page remembers the
 *    last epoch it was dirtied in, which lets checkpoint restore touch
 *    only the pages that actually changed since the checkpoint was taken.
 */

namespace rsafe::mem {

/** Per-page permission bits. */
enum PagePerm : std::uint8_t {
    kPermNone = 0,
    kPermRead = 1 << 0,
    kPermWrite = 1 << 1,
    kPermExec = 1 << 2,
    kPermRW = kPermRead | kPermWrite,
    kPermRX = kPermRead | kPermExec,
    kPermRWX = kPermRead | kPermWrite | kPermExec,
};

/** Result of a guest memory access. */
enum class MemResult {
    kOk,
    kOutOfRange,   ///< address beyond configured RAM
    kNoPerm,       ///< permission violation (e.g., store to an X page)
};

/**
 * Observer of code-page modifications.
 *
 * Invoked synchronously whenever a page's generation counter is bumped,
 * i.e., whenever the bytes or fetchability of a page that is (or could
 * become) executable may have changed. The translation-block engine
 * registers one of these to eagerly invalidate and unchain translated
 * blocks (the decode cache instead validates generations lazily on
 * fetch). Callbacks run on the owning VM's execution thread and must not
 * re-enter PhysMem.
 */
class CodeWriteListener {
  public:
    virtual ~CodeWriteListener() = default;
    /** Page @p page's generation was bumped (its code may have changed). */
    virtual void on_code_page_touched(Addr page) = 0;
};

/** Flat guest RAM with page permissions and dirty-page tracking. */
class PhysMem {
  public:
    /** Create @p size bytes of RAM (rounded up to whole pages), all RW. */
    explicit PhysMem(std::size_t size);

    /** @return RAM size in bytes. */
    std::size_t size() const { return bytes_.size(); }

    /** @return number of RAM pages. */
    std::size_t num_pages() const { return bytes_.size() / kPageSize; }

    /** Set the permissions of every page overlapping [addr, addr+len). */
    void set_perms(Addr addr, std::size_t len, std::uint8_t perms);

    /** @return the permission bits of the page containing @p addr. */
    std::uint8_t perms_at(Addr addr) const;

    /** Guest data read of @p len <= 8 bytes (little-endian). */
    MemResult read(Addr addr, std::size_t len, Word* out) const;

    /** Guest data write of @p len <= 8 bytes; honors W and marks dirty. */
    MemResult write(Addr addr, std::size_t len, Word value);

    /** Instruction fetch: requires X permission on the page. */
    MemResult fetch(Addr addr, std::uint8_t out[kInstrBytes]) const;

    /**
     * Privileged access by the simulator/hypervisor: ignores permissions.
     * Used for image loading, device DMA (which marks pages dirty), VM
     * introspection, and checkpoint restore.
     * @{
     */
    Word read_raw(Addr addr, std::size_t len) const;
    void write_raw(Addr addr, std::size_t len, Word value);
    void write_block(Addr addr, const std::uint8_t* data, std::size_t len);
    void read_block(Addr addr, std::uint8_t* data, std::size_t len) const;
    /** @} */

    /** Load a program image (bytes + permissions applied separately). */
    void load_image(const isa::Image& image);

    /** @return pointer to the raw bytes of page @p page. */
    const std::uint8_t* page_data(Addr page) const;

    /** Overwrite page @p page with @p data (kPageSize bytes); marks dirty. */
    void restore_page(Addr page, const std::uint8_t* data);

    /** @return pages written since the last clear_dirty(), sorted. */
    std::vector<Addr> dirty_pages() const;

    /** @return number of dirty pages (O(1)). */
    std::size_t dirty_count() const { return dirty_count_; }

    /** @return true if @p page was written since the last clear_dirty(). */
    bool page_dirty(Addr page) const;

    /** Forget dirty state (checkpoint interval boundary); bumps epoch(). */
    void clear_dirty();

    /**
     * Decode-cache invalidation hook: a monotonic counter per page,
     * incremented whenever the page's bytes may have changed while it is
     * (or could become) executable — i.e., on set_perms, restore_page,
     * write_block, write_raw, and any guest store landing on an X page.
     * A predecoded copy of the page is valid only while this matches.
     */
    std::uint64_t page_gen(Addr page) const { return gen_[page]; }

    /**
     * Stable pointer to page_gen(page)'s storage (never reallocated for
     * the lifetime of the PhysMem); the CPU's fetch fast path polls it.
     */
    const std::uint64_t* page_gen_ptr(Addr page) const
    {
        return &gen_[page];
    }

    /**
     * Register/unregister a code-write listener (see CodeWriteListener).
     * Multiple listeners may coexist (several CPUs can share one memory);
     * each is notified once per generation bump.
     * @{
     */
    void add_code_listener(CodeWriteListener* listener);
    void remove_code_listener(CodeWriteListener* listener);
    /** @} */

    /**
     * Delta-restore machinery (O(differing pages) checkpoint restore).
     * id() uniquely identifies this PhysMem instance; epoch() counts
     * clear_dirty() calls; page_epoch() is the last epoch the page was
     * dirtied in. A page is guaranteed unchanged since a checkpoint taken
     * from this same PhysMem at epoch E iff page_epoch(p) < E.
     * @{
     */
    std::uint64_t id() const { return id_; }
    std::uint64_t epoch() const { return epoch_; }
    std::uint64_t page_epoch(Addr page) const { return page_epoch_[page]; }
    /** @} */

    /** FNV-1a hash over all RAM bytes; the determinism test oracle. */
    std::uint64_t content_hash() const;

  private:
    bool in_range(Addr addr, std::size_t len) const
    {
        return addr + len <= bytes_.size() && addr + len >= addr;
    }
    void mark_dirty_page(Addr page)
    {
        auto& word = dirty_bits_[page >> 6];
        const std::uint64_t bit = std::uint64_t{1} << (page & 63);
        if ((word & bit) == 0) {
            word |= bit;
            ++dirty_count_;
            page_epoch_[page] = epoch_;
        }
    }
    void mark_dirty_range(Addr addr, std::size_t len);
    void touch_code_range(Addr addr, std::size_t len);
    /** Bump @p page's generation and notify code-write listeners. */
    void bump_code_gen(Addr page)
    {
        ++gen_[page];
        if (!code_listeners_.empty()) [[unlikely]] {
            for (CodeWriteListener* listener : code_listeners_)
                listener->on_code_page_touched(page);
        }
    }

    std::vector<std::uint8_t> bytes_;
    std::vector<std::uint8_t> perms_;
    std::vector<std::uint64_t> dirty_bits_;   ///< one bit per page
    std::size_t dirty_count_ = 0;
    std::vector<std::uint64_t> gen_;          ///< decode-cache generations
    std::vector<std::uint64_t> page_epoch_;   ///< last dirtying epoch
    std::vector<CodeWriteListener*> code_listeners_;
    std::uint64_t epoch_ = 1;
    std::uint64_t id_;
};

}  // namespace rsafe::mem

#endif  // RSAFE_MEM_PHYS_MEM_H_
