#include "mem/page_table.h"

#include "common/log.h"

namespace rsafe::mem {

PageTable::PageTable(std::size_t size) : size_(size)
{
    const std::size_t chunks = (size + kChunkSize - 1) / kChunkSize;
    chunks_.reserve(chunks);
    for (std::size_t i = 0; i < chunks; ++i)
        chunks_.push_back(std::make_shared<Chunk>());
}

const PageRef&
PageTable::at(std::uint64_t index) const
{
    if (index >= size_)
        panic("PageTable::at out of range");
    return chunks_[index >> kChunkShift]->refs[index & (kChunkSize - 1)];
}

void
PageTable::set(std::uint64_t index, PageRef ref)
{
    if (index >= size_)
        panic("PageTable::set out of range");
    auto& chunk = chunks_[index >> kChunkShift];
    if (chunk.use_count() > 1)
        chunk = std::make_shared<Chunk>(*chunk);
    chunk->refs[index & (kChunkSize - 1)] = std::move(ref);
}

}  // namespace rsafe::mem
