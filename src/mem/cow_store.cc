#include "mem/cow_store.h"

#include <cstring>

namespace rsafe::mem {

PageRef
CowStore::store(const std::uint8_t* data)
{
    auto page = std::make_shared<PageCopy>();
    std::memcpy(page->data(), data, kPageSize);
    ++pages_copied_;
    return page;
}

}  // namespace rsafe::mem
