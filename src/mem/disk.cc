#include "mem/disk.h"

#include <atomic>
#include <bit>
#include <cstring>

#include "common/log.h"

namespace rsafe::mem {

namespace {

std::uint64_t
next_disk_id()
{
    // Atomic: the framework's alarm-replayer worker pool builds VMs (and
    // thus disks) from several threads at once.
    static std::atomic<std::uint64_t> next{1};
    return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

Disk::Disk(std::size_t num_blocks)
    : blocks_(num_blocks), id_(next_disk_id())
{
    if (num_blocks == 0)
        fatal("Disk: zero-sized disk");
    bytes_.assign(num_blocks * kDiskBlockSize, 0);
    dirty_bits_.assign((num_blocks + 63) / 64, 0);
    block_epoch_.assign(num_blocks, 0);
}

void
Disk::read_block(BlockNum block, std::uint8_t* out) const
{
    if (block >= blocks_)
        panic("Disk::read_block out of range");
    std::memcpy(out, bytes_.data() + block * kDiskBlockSize, kDiskBlockSize);
}

void
Disk::write_block(BlockNum block, const std::uint8_t* data)
{
    if (block >= blocks_)
        panic("Disk::write_block out of range");
    std::memcpy(bytes_.data() + block * kDiskBlockSize, data, kDiskBlockSize);
    mark_dirty_block(block);
}

const std::uint8_t*
Disk::block_data(BlockNum block) const
{
    if (block >= blocks_)
        panic("Disk::block_data out of range");
    return bytes_.data() + block * kDiskBlockSize;
}

std::vector<BlockNum>
Disk::dirty_blocks() const
{
    std::vector<BlockNum> blocks;
    blocks.reserve(dirty_count_);
    for (std::size_t w = 0; w < dirty_bits_.size(); ++w) {
        std::uint64_t word = dirty_bits_[w];
        while (word != 0) {
            const int bit = std::countr_zero(word);
            blocks.push_back(static_cast<BlockNum>(w * 64 + bit));
            word &= word - 1;
        }
    }
    return blocks;
}

void
Disk::clear_dirty()
{
    std::memset(dirty_bits_.data(), 0,
                dirty_bits_.size() * sizeof(std::uint64_t));
    dirty_count_ = 0;
    ++epoch_;
}

std::uint64_t
Disk::content_hash() const
{
    std::uint64_t hash = 0xcbf29ce484222325ULL;
    for (const auto byte : bytes_) {
        hash ^= byte;
        hash *= 0x100000001b3ULL;
    }
    return hash;
}

void
Disk::mark_dirty_block(BlockNum block)
{
    auto& word = dirty_bits_[block >> 6];
    const std::uint64_t bit = std::uint64_t{1} << (block & 63);
    if ((word & bit) == 0) {
        word |= bit;
        ++dirty_count_;
        block_epoch_[block] = epoch_;
    }
}

}  // namespace rsafe::mem
