#include "mem/disk.h"

#include <algorithm>
#include <cstring>

#include "common/log.h"

namespace rsafe::mem {

Disk::Disk(std::size_t num_blocks) : blocks_(num_blocks)
{
    if (num_blocks == 0)
        fatal("Disk: zero-sized disk");
    bytes_.assign(num_blocks * kDiskBlockSize, 0);
}

void
Disk::read_block(BlockNum block, std::uint8_t* out) const
{
    if (block >= blocks_)
        panic("Disk::read_block out of range");
    std::memcpy(out, bytes_.data() + block * kDiskBlockSize, kDiskBlockSize);
}

void
Disk::write_block(BlockNum block, const std::uint8_t* data)
{
    if (block >= blocks_)
        panic("Disk::write_block out of range");
    std::memcpy(bytes_.data() + block * kDiskBlockSize, data, kDiskBlockSize);
    dirty_.insert(block);
}

const std::uint8_t*
Disk::block_data(BlockNum block) const
{
    if (block >= blocks_)
        panic("Disk::block_data out of range");
    return bytes_.data() + block * kDiskBlockSize;
}

std::vector<BlockNum>
Disk::dirty_blocks() const
{
    std::vector<BlockNum> blocks(dirty_.begin(), dirty_.end());
    std::sort(blocks.begin(), blocks.end());
    return blocks;
}

void
Disk::clear_dirty()
{
    dirty_.clear();
}

std::uint64_t
Disk::content_hash() const
{
    std::uint64_t hash = 0xcbf29ce484222325ULL;
    for (const auto byte : bytes_) {
        hash ^= byte;
        hash *= 0x100000001b3ULL;
    }
    return hash;
}

}  // namespace rsafe::mem
