#include "mem/phys_mem.h"

#include <algorithm>
#include <cstring>

#include "common/log.h"

namespace rsafe::mem {

PhysMem::PhysMem(std::size_t size)
{
    const std::size_t pages = (size + kPageSize - 1) / kPageSize;
    if (pages == 0)
        fatal("PhysMem: zero-sized memory");
    bytes_.assign(pages * kPageSize, 0);
    perms_.assign(pages, kPermRW);
}

void
PhysMem::set_perms(Addr addr, std::size_t len, std::uint8_t perms)
{
    if (!in_range(addr, len))
        fatal("PhysMem::set_perms: range out of bounds");
    const Addr first = page_of(addr);
    const Addr last = page_of(addr + (len == 0 ? 0 : len - 1));
    for (Addr p = first; p <= last; ++p)
        perms_[p] = perms;
}

std::uint8_t
PhysMem::perms_at(Addr addr) const
{
    if (!in_range(addr, 1))
        return kPermNone;
    return perms_[page_of(addr)];
}

MemResult
PhysMem::read(Addr addr, std::size_t len, Word* out) const
{
    if (!in_range(addr, len))
        return MemResult::kOutOfRange;
    // All accesses here are <= 8 bytes and never cross a page boundary in
    // practice (stack and data are 8-byte aligned), but check both pages.
    const Addr last = addr + len - 1;
    if (!(perms_[page_of(addr)] & kPermRead) ||
        !(perms_[page_of(last)] & kPermRead)) {
        return MemResult::kNoPerm;
    }
    Word value = 0;
    for (std::size_t i = 0; i < len; ++i)
        value |= static_cast<Word>(bytes_[addr + i]) << (8 * i);
    *out = value;
    return MemResult::kOk;
}

MemResult
PhysMem::write(Addr addr, std::size_t len, Word value)
{
    if (!in_range(addr, len))
        return MemResult::kOutOfRange;
    const Addr last = addr + len - 1;
    if (!(perms_[page_of(addr)] & kPermWrite) ||
        !(perms_[page_of(last)] & kPermWrite)) {
        return MemResult::kNoPerm;
    }
    for (std::size_t i = 0; i < len; ++i)
        bytes_[addr + i] = static_cast<std::uint8_t>((value >> (8 * i)) & 0xff);
    mark_dirty_range(addr, len);
    return MemResult::kOk;
}

MemResult
PhysMem::fetch(Addr addr, std::uint8_t out[kInstrBytes]) const
{
    if (!in_range(addr, kInstrBytes))
        return MemResult::kOutOfRange;
    if (!(perms_[page_of(addr)] & kPermExec))
        return MemResult::kNoPerm;
    std::memcpy(out, bytes_.data() + addr, kInstrBytes);
    return MemResult::kOk;
}

Word
PhysMem::read_raw(Addr addr, std::size_t len) const
{
    if (!in_range(addr, len))
        panic("PhysMem::read_raw out of range");
    Word value = 0;
    for (std::size_t i = 0; i < len; ++i)
        value |= static_cast<Word>(bytes_[addr + i]) << (8 * i);
    return value;
}

void
PhysMem::write_raw(Addr addr, std::size_t len, Word value)
{
    if (!in_range(addr, len))
        panic("PhysMem::write_raw out of range");
    for (std::size_t i = 0; i < len; ++i)
        bytes_[addr + i] = static_cast<std::uint8_t>((value >> (8 * i)) & 0xff);
    mark_dirty_range(addr, len);
}

void
PhysMem::write_block(Addr addr, const std::uint8_t* data, std::size_t len)
{
    if (!in_range(addr, len))
        panic("PhysMem::write_block out of range");
    std::memcpy(bytes_.data() + addr, data, len);
    mark_dirty_range(addr, len);
}

void
PhysMem::read_block(Addr addr, std::uint8_t* data, std::size_t len) const
{
    if (!in_range(addr, len))
        panic("PhysMem::read_block out of range");
    std::memcpy(data, bytes_.data() + addr, len);
}

void
PhysMem::load_image(const isa::Image& image)
{
    write_block(image.base(), image.bytes().data(), image.size());
}

const std::uint8_t*
PhysMem::page_data(Addr page) const
{
    if (page >= num_pages())
        panic("PhysMem::page_data out of range");
    return bytes_.data() + page * kPageSize;
}

void
PhysMem::restore_page(Addr page, const std::uint8_t* data)
{
    if (page >= num_pages())
        panic("PhysMem::restore_page out of range");
    std::memcpy(bytes_.data() + page * kPageSize, data, kPageSize);
    dirty_.insert(page);
}

std::vector<Addr>
PhysMem::dirty_pages() const
{
    std::vector<Addr> pages(dirty_.begin(), dirty_.end());
    std::sort(pages.begin(), pages.end());
    return pages;
}

void
PhysMem::clear_dirty()
{
    dirty_.clear();
}

std::uint64_t
PhysMem::content_hash() const
{
    std::uint64_t hash = 0xcbf29ce484222325ULL;
    for (const auto byte : bytes_) {
        hash ^= byte;
        hash *= 0x100000001b3ULL;
    }
    return hash;
}

void
PhysMem::mark_dirty_range(Addr addr, std::size_t len)
{
    const Addr first = page_of(addr);
    const Addr last = page_of(addr + (len == 0 ? 0 : len - 1));
    for (Addr p = first; p <= last; ++p)
        dirty_.insert(p);
}

}  // namespace rsafe::mem
