#include "mem/phys_mem.h"

#include <atomic>
#include <bit>
#include <cstring>

#include "common/log.h"

namespace rsafe::mem {

namespace {

/**
 * The interpreter's load/store fast path copies whole little-endian words
 * with memcpy; the byte-loop fallback keeps big-endian hosts correct.
 */
constexpr bool kLittleEndianHost = std::endian::native == std::endian::little;

std::uint64_t
next_phys_mem_id()
{
    // Atomic: the framework's alarm-replayer worker pool builds VMs (and
    // thus memories) from several threads at once.
    static std::atomic<std::uint64_t> next{1};
    return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

PhysMem::PhysMem(std::size_t size) : id_(next_phys_mem_id())
{
    const std::size_t pages = (size + kPageSize - 1) / kPageSize;
    if (pages == 0)
        fatal("PhysMem: zero-sized memory");
    bytes_.assign(pages * kPageSize, 0);
    perms_.assign(pages, kPermRW);
    dirty_bits_.assign((pages + 63) / 64, 0);
    gen_.assign(pages, 0);
    page_epoch_.assign(pages, 0);
}

void
PhysMem::set_perms(Addr addr, std::size_t len, std::uint8_t perms)
{
    if (!in_range(addr, len))
        fatal("PhysMem::set_perms: range out of bounds");
    const Addr first = page_of(addr);
    const Addr last = page_of(addr + (len == 0 ? 0 : len - 1));
    for (Addr p = first; p <= last; ++p) {
        perms_[p] = perms;
        // Fetchability changed: any predecoded copy of the page is stale.
        bump_code_gen(p);
    }
}

void
PhysMem::add_code_listener(CodeWriteListener* listener)
{
    if (listener == nullptr)
        fatal("PhysMem::add_code_listener: null listener");
    code_listeners_.push_back(listener);
}

void
PhysMem::remove_code_listener(CodeWriteListener* listener)
{
    std::erase(code_listeners_, listener);
}

std::uint8_t
PhysMem::perms_at(Addr addr) const
{
    if (!in_range(addr, 1))
        return kPermNone;
    return perms_[page_of(addr)];
}

MemResult
PhysMem::read(Addr addr, std::size_t len, Word* out) const
{
    if (!in_range(addr, len))
        return MemResult::kOutOfRange;
    const Addr page = page_of(addr);
    // Almost every access fits one page (stack and data are 8-byte
    // aligned); only then can a single perms lookup cover it.
    if (page_offset(addr) + len <= kPageSize) [[likely]] {
        if (!(perms_[page] & kPermRead))
            return MemResult::kNoPerm;
    } else if (!(perms_[page] & kPermRead) ||
               !(perms_[page + 1] & kPermRead)) {
        return MemResult::kNoPerm;
    }
    if (kLittleEndianHost && len == 8) {
        Word value;
        std::memcpy(&value, bytes_.data() + addr, 8);
        *out = value;
    } else if (len == 1) {
        *out = bytes_[addr];
    } else {
        Word value = 0;
        for (std::size_t i = 0; i < len; ++i)
            value |= static_cast<Word>(bytes_[addr + i]) << (8 * i);
        *out = value;
    }
    return MemResult::kOk;
}

MemResult
PhysMem::write(Addr addr, std::size_t len, Word value)
{
    if (!in_range(addr, len))
        return MemResult::kOutOfRange;
    const Addr page = page_of(addr);
    if (page_offset(addr) + len <= kPageSize) [[likely]] {
        const std::uint8_t perms = perms_[page];
        if (!(perms & kPermWrite))
            return MemResult::kNoPerm;
        if (kLittleEndianHost && len == 8) {
            std::memcpy(bytes_.data() + addr, &value, 8);
        } else if (len == 1) {
            bytes_[addr] = static_cast<std::uint8_t>(value & 0xff);
        } else {
            for (std::size_t i = 0; i < len; ++i)
                bytes_[addr + i] =
                    static_cast<std::uint8_t>((value >> (8 * i)) & 0xff);
        }
        mark_dirty_page(page);
        if (perms & kPermExec) [[unlikely]]
            bump_code_gen(page);
        return MemResult::kOk;
    }
    // Page-straddling slow path.
    const Addr last = addr + len - 1;
    if (!(perms_[page] & kPermWrite) || !(perms_[page_of(last)] & kPermWrite))
        return MemResult::kNoPerm;
    for (std::size_t i = 0; i < len; ++i)
        bytes_[addr + i] = static_cast<std::uint8_t>((value >> (8 * i)) & 0xff);
    mark_dirty_range(addr, len);
    touch_code_range(addr, len);
    return MemResult::kOk;
}

MemResult
PhysMem::fetch(Addr addr, std::uint8_t out[kInstrBytes]) const
{
    if (!in_range(addr, kInstrBytes))
        return MemResult::kOutOfRange;
    if (!(perms_[page_of(addr)] & kPermExec))
        return MemResult::kNoPerm;
    std::memcpy(out, bytes_.data() + addr, kInstrBytes);
    return MemResult::kOk;
}

Word
PhysMem::read_raw(Addr addr, std::size_t len) const
{
    if (!in_range(addr, len))
        panic("PhysMem::read_raw out of range");
    if (kLittleEndianHost && len == 8 && page_offset(addr) + 8 <= kPageSize) {
        Word value;
        std::memcpy(&value, bytes_.data() + addr, 8);
        return value;
    }
    Word value = 0;
    for (std::size_t i = 0; i < len; ++i)
        value |= static_cast<Word>(bytes_[addr + i]) << (8 * i);
    return value;
}

void
PhysMem::write_raw(Addr addr, std::size_t len, Word value)
{
    if (!in_range(addr, len))
        panic("PhysMem::write_raw out of range");
    for (std::size_t i = 0; i < len; ++i)
        bytes_[addr + i] = static_cast<std::uint8_t>((value >> (8 * i)) & 0xff);
    mark_dirty_range(addr, len);
    touch_code_range(addr, len);
}

void
PhysMem::write_block(Addr addr, const std::uint8_t* data, std::size_t len)
{
    if (!in_range(addr, len))
        panic("PhysMem::write_block out of range");
    std::memcpy(bytes_.data() + addr, data, len);
    mark_dirty_range(addr, len);
    touch_code_range(addr, len);
}

void
PhysMem::read_block(Addr addr, std::uint8_t* data, std::size_t len) const
{
    if (!in_range(addr, len))
        panic("PhysMem::read_block out of range");
    std::memcpy(data, bytes_.data() + addr, len);
}

void
PhysMem::load_image(const isa::Image& image)
{
    write_block(image.base(), image.bytes().data(), image.size());
}

const std::uint8_t*
PhysMem::page_data(Addr page) const
{
    if (page >= num_pages())
        panic("PhysMem::page_data out of range");
    return bytes_.data() + page * kPageSize;
}

void
PhysMem::restore_page(Addr page, const std::uint8_t* data)
{
    if (page >= num_pages())
        panic("PhysMem::restore_page out of range");
    std::memcpy(bytes_.data() + page * kPageSize, data, kPageSize);
    mark_dirty_page(page);
    bump_code_gen(page);
}

bool
PhysMem::page_dirty(Addr page) const
{
    if (page >= num_pages())
        panic("PhysMem::page_dirty out of range");
    return (dirty_bits_[page >> 6] >> (page & 63)) & 1;
}

std::vector<Addr>
PhysMem::dirty_pages() const
{
    std::vector<Addr> pages;
    pages.reserve(dirty_count_);
    for (std::size_t w = 0; w < dirty_bits_.size(); ++w) {
        std::uint64_t word = dirty_bits_[w];
        while (word != 0) {
            const int bit = std::countr_zero(word);
            pages.push_back(static_cast<Addr>(w * 64 + bit));
            word &= word - 1;
        }
    }
    return pages;
}

void
PhysMem::clear_dirty()
{
    std::memset(dirty_bits_.data(), 0,
                dirty_bits_.size() * sizeof(std::uint64_t));
    dirty_count_ = 0;
    ++epoch_;
}

std::uint64_t
PhysMem::content_hash() const
{
    std::uint64_t hash = 0xcbf29ce484222325ULL;
    for (const auto byte : bytes_) {
        hash ^= byte;
        hash *= 0x100000001b3ULL;
    }
    return hash;
}

void
PhysMem::mark_dirty_range(Addr addr, std::size_t len)
{
    const Addr first = page_of(addr);
    const Addr last = page_of(addr + (len == 0 ? 0 : len - 1));
    for (Addr p = first; p <= last; ++p)
        mark_dirty_page(p);
}

void
PhysMem::touch_code_range(Addr addr, std::size_t len)
{
    // Privileged writes bypass W^X, so they can change executable bytes
    // (DMA into a code page, checkpoint restore, introspection pokes):
    // invalidate the decode cache for every page touched.
    const Addr first = page_of(addr);
    const Addr last = page_of(addr + (len == 0 ? 0 : len - 1));
    for (Addr p = first; p <= last; ++p)
        bump_code_gen(p);
}

}  // namespace rsafe::mem
