#ifndef RSAFE_ATTACK_ROP_CHAIN_H_
#define RSAFE_ATTACK_ROP_CHAIN_H_

#include <cstdint>
#include <vector>

#include "attack/gadget_finder.h"
#include "common/types.h"
#include "kernel/kernel_builder.h"

/**
 * @file
 * Builds the Figure 10 exploit payload against the kernel's vulnerable
 * sys_logmsg.
 *
 * k_vulnerable's stack frame at the copy is:
 *
 *     sp+0   .. sp+127   the 128-byte buffer
 *     sp+128             saved r10
 *     sp+136             the return address  <- hijacked
 *
 * so the payload is 136 bytes of junk, then the gadget chain
 * G1 (pop r1; ret), a pointer Addr, G2 (ld r2,[r1]; ret), and
 * G3 (callr r2): executing the chain performs `call [Addr]` — with
 * mem[Addr] staged to point at k_set_root, the attack's "give me root"
 * call.
 *
 * Above the hijacked return address sit the syscall frame's saved user
 * PC and flags, which the overflow necessarily tramples; the payload
 * therefore also stages a fake iret frame (a resume address inside the
 * attacker's own code, user-mode flags) so the compromised kernel
 * returns to user space cleanly — a stealthy attack that leaves the
 * machine running.
 */

namespace rsafe::attack {

/** The assembled exploit string. */
struct RopChain {
    /** The bytes to feed sys_logmsg. */
    std::vector<std::uint8_t> payload;
    /** Offset of the staged function-pointer word within the payload. */
    std::size_t fnptr_offset = 0;
    /** Gadget addresses used (for reporting/tests). @{ */
    Addr g1 = 0;
    Addr g2 = 0;
    Addr g3 = 0;
    /** @} */
};

/**
 * Build the exploit payload.
 *
 * @param finder           gadget scanner over the victim kernel.
 * @param kernel           victim kernel (for the legitimate return site).
 * @param target_function  the address the attack calls (e.g., k_set_root).
 * @param payload_addr     guest address the payload will reside at when
 *                         sys_logmsg copies it (needed to compute Addr).
 * @param attacker_resume  user-code address the faked iret frame returns
 *                         to after the attack.
 * fatal() if a required gadget is missing.
 */
RopChain build_logmsg_chain(const GadgetFinder& finder,
                            const kernel::GuestKernel& kernel,
                            Addr target_function, Addr payload_addr,
                            Addr attacker_resume);

}  // namespace rsafe::attack

#endif  // RSAFE_ATTACK_ROP_CHAIN_H_
