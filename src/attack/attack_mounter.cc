#include "attack/attack_mounter.h"

#include "common/log.h"
#include "isa/assembler.h"
#include "kernel/layout.h"

namespace rsafe::attack {

using isa::Assembler;
using isa::R0;
using isa::R1;
using isa::R2;
using isa::R3;
using isa::R4;
using isa::R5;
using isa::R6;
using isa::R10;

namespace {

/** Emit the attacker program around @p payload (size must be stable). */
isa::Image
emit(Addr code_base, Addr staging_buf, std::uint64_t delay_iters,
     const std::vector<std::uint8_t>& payload)
{
    Assembler a(code_base);
    a.func_begin("atk_main");

    // Warm-up: look like an innocuous task for a while.
    a.ldi(R10, static_cast<std::int64_t>(delay_iters));
    a.label("atk_delay");
    a.ldi(R2, 0);
    a.beq(R10, R2, "atk_go");
    a.addi(R10, R10, -1);
    a.jmp("atk_delay");

    // Stage the exploit string into writable memory.
    a.label("atk_go");
    a.ldi_label(R3, "atk_payload");
    a.ldi(R4, static_cast<std::int64_t>(staging_buf));
    a.ldi(R5, static_cast<std::int64_t>(payload.size()));
    a.label("atk_copy");
    a.ldi(R2, 0);
    a.beq(R5, R2, "atk_fire");
    a.ldb(R6, R3, 0);
    a.stb(R4, 0, R6);
    a.addi(R3, R3, 1);
    a.addi(R4, R4, 1);
    a.addi(R5, R5, -1);
    a.jmp("atk_copy");

    // Fire: sys_logmsg with a length far beyond the kernel buffer.
    a.label("atk_fire");
    a.ldi(R1, static_cast<std::int64_t>(staging_buf));
    a.ldi(R2, static_cast<std::int64_t>(payload.size()));
    a.ldi(R0, static_cast<std::int64_t>(kernel::kSysLogMsg));
    a.syscall();

    // The faked iret frame resumes here after the gadget chain ran.
    a.label("atk_done");
    a.ldi(R0, static_cast<std::int64_t>(kernel::kSysExit));
    a.syscall();
    a.jmp("atk_done");  // unreachable
    a.func_end();

    a.align(8);
    a.label("atk_payload");
    a.bytes(payload);
    return a.link();
}

}  // namespace

AttackProgram
build_attacker_program(const kernel::GuestKernel& kernel, Addr code_base,
                       Addr staging_buf, std::uint64_t delay_iters)
{
    GadgetFinder finder(kernel.image);

    // Pass 1: dummy payload of the final size, to learn label addresses.
    RopChain probe = build_logmsg_chain(finder, kernel, kernel.set_root,
                                        staging_buf, /*attacker_resume=*/0);
    isa::Image pass1 = emit(code_base, staging_buf, delay_iters,
                            std::vector<std::uint8_t>(probe.payload.size(), 0));
    const Addr resume = pass1.symbol("atk_done");

    // Pass 2: the real payload, resuming at atk_done.
    AttackProgram program;
    program.chain = build_logmsg_chain(finder, kernel, kernel.set_root,
                                       staging_buf, resume);
    if (program.chain.payload.size() != probe.payload.size())
        panic("attacker payload size changed between passes");
    program.image = emit(code_base, staging_buf, delay_iters,
                         program.chain.payload);
    if (program.image.symbol("atk_done") != resume)
        panic("attacker image layout changed between passes");
    program.entry = program.image.symbol("atk_main");
    return program;
}

}  // namespace rsafe::attack
