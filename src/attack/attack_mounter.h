#ifndef RSAFE_ATTACK_ATTACK_MOUNTER_H_
#define RSAFE_ATTACK_ATTACK_MOUNTER_H_

#include "attack/rop_chain.h"
#include "common/types.h"
#include "isa/program.h"
#include "kernel/kernel_builder.h"

/**
 * @file
 * Emits the attacker's user task (Section 6).
 *
 * The generated program models a local unprivileged attacker: it idles
 * for a configurable warm-up (so the attack lands mid-workload), stages
 * the Figure 10 exploit string into its own buffer, and invokes the
 * vulnerable sys_logmsg with an over-long length. If the kernel were
 * unprotected, the hijacked return would run the gadget chain, call
 * k_set_root, and stealthily resume the attacker in user mode.
 */

namespace rsafe::attack {

/** The built attacker task. */
struct AttackProgram {
    isa::Image image;
    Addr entry = 0;
    RopChain chain;
};

/**
 * Build the attacker task image.
 *
 * @param kernel       the victim kernel (scanned for gadgets).
 * @param code_base    load address for the attacker code (user segment).
 * @param staging_buf  user-data address the payload is staged at.
 * @param delay_iters  busy-loop iterations before mounting the attack.
 */
AttackProgram build_attacker_program(const kernel::GuestKernel& kernel,
                                     Addr code_base, Addr staging_buf,
                                     std::uint64_t delay_iters);

}  // namespace rsafe::attack

#endif  // RSAFE_ATTACK_ATTACK_MOUNTER_H_
