#include "attack/gadget_finder.h"

#include "analysis/decoded_image.h"

namespace rsafe::attack {

using isa::Opcode;

GadgetFinder::GadgetFinder(const isa::Image& image, std::size_t max_instrs)
{
    // The enumeration is the analyzer's shared decode walk: every suffix
    // of 1..max_instrs decodable slots ending at each ret.
    const analysis::DecodedImage decoded(image);
    for (auto& run : analysis::ret_runs(decoded, max_instrs))
        gadgets_.push_back(Gadget{run.addr, std::move(run.instrs)});
}

std::optional<Addr>
GadgetFinder::find_pop_ret(std::uint8_t reg) const
{
    for (const auto& gadget : gadgets_) {
        if (gadget.instrs.size() == 2 &&
            gadget.instrs[0].op == Opcode::kPop &&
            gadget.instrs[0].rd == reg) {
            return gadget.addr;
        }
    }
    return std::nullopt;
}

std::optional<Addr>
GadgetFinder::find_load_ret(std::uint8_t rd, std::uint8_t base) const
{
    for (const auto& gadget : gadgets_) {
        if (gadget.instrs.size() == 2 &&
            gadget.instrs[0].op == Opcode::kLd &&
            gadget.instrs[0].rd == rd && gadget.instrs[0].rs1 == base &&
            gadget.instrs[0].imm == 0) {
            return gadget.addr;
        }
    }
    return std::nullopt;
}

std::optional<Addr>
GadgetFinder::find_callr(std::uint8_t reg) const
{
    for (const auto& gadget : gadgets_) {
        if (gadget.instrs.size() == 2 &&
            gadget.instrs[0].op == Opcode::kCallr &&
            gadget.instrs[0].rs1 == reg) {
            return gadget.addr;
        }
    }
    return std::nullopt;
}

std::optional<Addr>
GadgetFinder::find_ret() const
{
    for (const auto& gadget : gadgets_) {
        if (gadget.instrs.size() == 1)
            return gadget.addr;
    }
    return std::nullopt;
}

}  // namespace rsafe::attack
