#include "attack/gadget_finder.h"

namespace rsafe::attack {

using isa::Opcode;

GadgetFinder::GadgetFinder(const isa::Image& image, std::size_t max_instrs)
{
    // Enumerate every suffix of length 1..max_instrs ending at each ret.
    for (Addr addr = image.base(); addr + kInstrBytes <= image.end();
         addr += kInstrBytes) {
        const auto instr = image.instr_at(addr);
        if (!instr || instr->op != Opcode::kRet)
            continue;
        for (std::size_t len = 1; len <= max_instrs; ++len) {
            const Addr start = addr - (len - 1) * kInstrBytes;
            if (start < image.base())
                break;
            Gadget gadget;
            gadget.addr = start;
            bool ok = true;
            for (std::size_t i = 0; i < len; ++i) {
                const auto g = image.instr_at(start + i * kInstrBytes);
                if (!g) {
                    ok = false;
                    break;
                }
                gadget.instrs.push_back(*g);
            }
            if (ok)
                gadgets_.push_back(std::move(gadget));
        }
    }
}

std::optional<Addr>
GadgetFinder::find_pop_ret(std::uint8_t reg) const
{
    for (const auto& gadget : gadgets_) {
        if (gadget.instrs.size() == 2 &&
            gadget.instrs[0].op == Opcode::kPop &&
            gadget.instrs[0].rd == reg) {
            return gadget.addr;
        }
    }
    return std::nullopt;
}

std::optional<Addr>
GadgetFinder::find_load_ret(std::uint8_t rd, std::uint8_t base) const
{
    for (const auto& gadget : gadgets_) {
        if (gadget.instrs.size() == 2 &&
            gadget.instrs[0].op == Opcode::kLd &&
            gadget.instrs[0].rd == rd && gadget.instrs[0].rs1 == base &&
            gadget.instrs[0].imm == 0) {
            return gadget.addr;
        }
    }
    return std::nullopt;
}

std::optional<Addr>
GadgetFinder::find_callr(std::uint8_t reg) const
{
    for (const auto& gadget : gadgets_) {
        if (gadget.instrs.size() == 2 &&
            gadget.instrs[0].op == Opcode::kCallr &&
            gadget.instrs[0].rs1 == reg) {
            return gadget.addr;
        }
    }
    return std::nullopt;
}

std::optional<Addr>
GadgetFinder::find_ret() const
{
    for (const auto& gadget : gadgets_) {
        if (gadget.instrs.size() == 1)
            return gadget.addr;
    }
    return std::nullopt;
}

}  // namespace rsafe::attack
