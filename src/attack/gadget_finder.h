#ifndef RSAFE_ATTACK_GADGET_FINDER_H_
#define RSAFE_ATTACK_GADGET_FINDER_H_

#include <optional>
#include <vector>

#include "common/types.h"
#include "isa/encoding.h"
#include "isa/program.h"

/**
 * @file
 * Gadget discovery over a victim code image (Appendix A, Figure 10a).
 *
 * "The executable is scanned for instances of the return instruction.
 * We decode a few bytes before three returns creating three gadgets" —
 * this scanner enumerates every instruction suffix ending in `ret` and
 * offers pattern queries for the gadget shapes the Figure 10 chain needs:
 * pop-then-ret, load-then-ret, and indirect-call gadgets.
 */

namespace rsafe::attack {

/** One discovered gadget: a short instruction run ending in ret. */
struct Gadget {
    Addr addr = 0;                   ///< address of the first instruction
    std::vector<isa::Instr> instrs;  ///< includes the terminating ret
};

/** Scans an image for return-terminated gadgets. */
class GadgetFinder {
  public:
    /**
     * @param image       the victim code image (e.g., the guest kernel).
     * @param max_instrs  longest gadget to enumerate (instructions,
     *                    including the ret).
     */
    explicit GadgetFinder(const isa::Image& image,
                          std::size_t max_instrs = 4);

    /** All discovered gadgets. */
    const std::vector<Gadget>& gadgets() const { return gadgets_; }

    /** @return address of a `pop rN; ret` gadget. */
    std::optional<Addr> find_pop_ret(std::uint8_t reg) const;

    /** @return address of a `ld rd, [base+0]; ret` gadget. */
    std::optional<Addr> find_load_ret(std::uint8_t rd,
                                      std::uint8_t base) const;

    /** @return address of a `callr rN` instruction followed by ret. */
    std::optional<Addr> find_callr(std::uint8_t reg) const;

    /** @return address of a bare `ret` gadget. */
    std::optional<Addr> find_ret() const;

  private:
    std::vector<Gadget> gadgets_;
};

}  // namespace rsafe::attack

#endif  // RSAFE_ATTACK_GADGET_FINDER_H_
