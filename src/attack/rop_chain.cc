#include "attack/rop_chain.h"

#include "common/log.h"
#include "isa/assembler.h"
#include "kernel/layout.h"

namespace rsafe::attack {

namespace {

void
put_word(std::vector<std::uint8_t>* out, std::size_t offset, Word value)
{
    for (int i = 0; i < 8; ++i)
        (*out)[offset + i] =
            static_cast<std::uint8_t>((value >> (8 * i)) & 0xff);
}

}  // namespace

RopChain
build_logmsg_chain(const GadgetFinder& finder,
                   const kernel::GuestKernel& kernel, Addr target_function,
                   Addr payload_addr, Addr attacker_resume)
{
    const auto g1 = finder.find_pop_ret(isa::R1);
    const auto g2 = finder.find_load_ret(isa::R2, isa::R1);
    const auto g3 = finder.find_callr(isa::R2);
    if (!g1 || !g2 || !g3)
        fatal("build_logmsg_chain: required gadgets not present in image");

    // Frame offsets within the payload (see file comment). The pops go:
    // hijacked ret -> G1; G1's pop -> Addr; G1's ret -> G2; G2's ret ->
    // G3; G3's callr pushes/pops its own link; the epilogue ret -> the
    // legitimate return site, whose iret then pops the fake user frame.
    constexpr std::size_t kJunk = kernel::kLogMsgBufBytes + 8;  // buf + r10
    constexpr std::size_t kG1Off = kJunk;            // hijacked ret target
    constexpr std::size_t kAddrOff = kJunk + 8;      // popped into r1
    constexpr std::size_t kG2Off = kJunk + 16;
    constexpr std::size_t kG3Off = kJunk + 24;
    constexpr std::size_t kResumeOff = kJunk + 32;   // stealthy return
    constexpr std::size_t kFakePcOff = kJunk + 40;   // iret frame: user pc
    constexpr std::size_t kFakeFlagsOff = kJunk + 48;  // iret frame: flags
    constexpr std::size_t kFnptrOff = kJunk + 56;    // mem[Addr]
    constexpr std::size_t kTotal = kJunk + 64;

    RopChain chain;
    chain.payload.assign(kTotal, 0);
    chain.g1 = *g1;
    chain.g2 = *g2;
    chain.g3 = *g3;
    chain.fnptr_offset = kFnptrOff;

    // Filler the copy writes over the buffer and the saved register.
    for (std::size_t i = 0; i < kJunk; ++i)
        chain.payload[i] = static_cast<std::uint8_t>(0x41 + (i % 23));

    put_word(&chain.payload, kG1Off, *g1);
    put_word(&chain.payload, kAddrOff, payload_addr + kFnptrOff);
    put_word(&chain.payload, kG2Off, *g2);
    put_word(&chain.payload, kG3Off, *g3);
    put_word(&chain.payload, kResumeOff, kernel.logmsg_ret_site);
    put_word(&chain.payload, kFakePcOff, attacker_resume);
    put_word(&chain.payload, kFakeFlagsOff, 2);  // user mode, irq enabled
    put_word(&chain.payload, kFnptrOff, target_function);
    return chain;
}

}  // namespace rsafe::attack
