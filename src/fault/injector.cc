#include "fault/injector.h"

#include "common/log.h"
#include "obs/trace.h"
#include "rnr/wire.h"

namespace rsafe::fault {

namespace wire = rnr::wire;

const char*
fault_kind_name(FaultKind kind)
{
    switch (kind) {
      case FaultKind::kBitFlip: return "bit-flip";
      case FaultKind::kTruncate: return "truncate";
      case FaultKind::kDuplicateRecord: return "duplicate-record";
      case FaultKind::kReorderRecords: return "reorder-records";
      case FaultKind::kBadMagic: return "bad-magic";
      case FaultKind::kBadVersion: return "bad-version";
    }
    return "<bad>";
}

StatusCode
expected_detection(FaultKind kind)
{
    switch (kind) {
      case FaultKind::kBitFlip: return StatusCode::kChecksumMismatch;
      case FaultKind::kTruncate: return StatusCode::kTruncated;
      case FaultKind::kDuplicateRecord: return StatusCode::kDuplicateRecord;
      case FaultKind::kReorderRecords: return StatusCode::kReorderedRecord;
      case FaultKind::kBadMagic: return StatusCode::kBadMagic;
      case FaultKind::kBadVersion: return StatusCode::kBadVersion;
    }
    return StatusCode::kInvalidArgument;
}

std::uint64_t
Rng::next()
{
    // splitmix64: full-period, seed-deterministic, platform-independent.
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
Rng::below(std::uint64_t bound)
{
    if (bound == 0)
        panic("Rng::below(0)");
    return next() % bound;
}

Status
Injector::inject(FaultKind kind, std::vector<std::uint8_t>* image,
                 FaultReport* report)
{
    report->kind = kind;
    report->detail.clear();

    std::vector<wire::FrameSpan> frames;
    const Status index_status = wire::index_frames(*image, &frames);
    if (!index_status.ok()) {
        return Status(StatusCode::kInvalidArgument,
                      "injector needs an intact image: " +
                          index_status.to_string());
    }

    obs::Tracer::instance().instant("fault.inject", "fault", "kind",
                                    static_cast<std::uint64_t>(kind));

    switch (kind) {
      case FaultKind::kBitFlip: {
        if (frames.empty())
            return Status(StatusCode::kInvalidArgument,
                          "bit-flip needs at least one frame");
        // Aim at the payload (or, for empty payloads, the stored CRC):
        // both are covered by the frame checksum alone, so the flip is
        // classified as kChecksumMismatch and nothing vaguer. A flip in
        // the length field could instead present as truncation.
        const std::size_t f = rng_.below(frames.size());
        const wire::FrameSpan& span = frames[f];
        const std::size_t payload_size = span.size - wire::kFrameHeaderSize;
        std::size_t target;
        if (payload_size > 0) {
            target = span.offset + wire::kFrameHeaderSize +
                     rng_.below(payload_size);
        } else {
            target = span.offset + 8 + rng_.below(4);  // stored CRC field
        }
        const int bit = static_cast<int>(rng_.below(8));
        (*image)[target] ^= static_cast<std::uint8_t>(1u << bit);
        report->detail = strcat_args("flipped bit ", bit, " of byte ",
                                     target, " (record #", f, ")");
        return Status();
      }

      case FaultKind::kTruncate: {
        if (frames.empty())
            return Status(StatusCode::kInvalidArgument,
                          "truncation needs at least one frame");
        // Any cut point from the end of the header to one byte short of
        // the end leaves some frame incomplete.
        const std::size_t span = image->size() - wire::kHeaderSize;
        const std::size_t keep = wire::kHeaderSize + rng_.below(span);
        const std::size_t lost = image->size() - keep;
        image->resize(keep);
        report->detail =
            strcat_args("cut to ", keep, " bytes (", lost, " lost)");
        return Status();
      }

      case FaultKind::kDuplicateRecord: {
        if (frames.size() < 2) {
            return Status(StatusCode::kInvalidArgument,
                          "duplication needs at least two frames (a "
                          "duplicated last frame is just trailing bytes)");
        }
        // Duplicate a non-final frame in place: the decoder meets the
        // copy where the next sequence number is due.
        const std::size_t f = rng_.below(frames.size() - 1);
        const wire::FrameSpan& span = frames[f];
        const std::vector<std::uint8_t> copy(
            image->begin() + static_cast<std::ptrdiff_t>(span.offset),
            image->begin() +
                static_cast<std::ptrdiff_t>(span.offset + span.size));
        image->insert(image->begin() + static_cast<std::ptrdiff_t>(
                                           span.offset + span.size),
                      copy.begin(), copy.end());
        report->detail = strcat_args("record #", f, " (", span.size,
                                     " bytes) delivered twice");
        return Status();
      }

      case FaultKind::kReorderRecords: {
        if (frames.size() < 2)
            return Status(StatusCode::kInvalidArgument,
                          "reordering needs at least two frames");
        // Swap two adjacent frames; each stays internally consistent,
        // only the sequence numbers betray the swap.
        const std::size_t f = rng_.below(frames.size() - 1);
        const wire::FrameSpan& a = frames[f];
        const wire::FrameSpan& b = frames[f + 1];
        std::vector<std::uint8_t> swapped;
        swapped.reserve(a.size + b.size);
        swapped.insert(swapped.end(),
                       image->begin() +
                           static_cast<std::ptrdiff_t>(b.offset),
                       image->begin() +
                           static_cast<std::ptrdiff_t>(b.offset + b.size));
        swapped.insert(swapped.end(),
                       image->begin() +
                           static_cast<std::ptrdiff_t>(a.offset),
                       image->begin() +
                           static_cast<std::ptrdiff_t>(a.offset + a.size));
        std::copy(swapped.begin(), swapped.end(),
                  image->begin() + static_cast<std::ptrdiff_t>(a.offset));
        report->detail =
            strcat_args("records #", f, " and #", f + 1, " swapped");
        return Status();
      }

      case FaultKind::kBadMagic: {
        // A foreign file with the right length: overwrite the magic.
        static constexpr std::uint8_t kBogus[8] = {'N', 'O', 'T', 'W',
                                                   'I', 'R', 'E', '!'};
        for (int i = 0; i < 8; ++i)
            (*image)[static_cast<std::size_t>(i)] = kBogus[i];
        report->detail = "magic overwritten with \"NOTWIRE!\"";
        return Status();
      }

      case FaultKind::kBadVersion: {
        // A file from a future format revision: bump the version and
        // re-seal the header CRC, so the only complaint left is the
        // version itself.
        const auto version =
            static_cast<std::uint16_t>(wire::kVersion + 1 + rng_.below(7));
        const Status status = wire::set_header_version(image, version);
        if (!status.ok())
            return status;
        report->detail =
            strcat_args("header rewritten as wire version ", version);
        return Status();
      }
    }
    return Status(StatusCode::kInvalidArgument, "unknown fault kind");
}

}  // namespace rsafe::fault
