#ifndef RSAFE_FAULT_INJECTOR_H_
#define RSAFE_FAULT_INJECTOR_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

/**
 * @file
 * Deterministic fault injection for wire-format images.
 *
 * The injector mutates a serialized artifact (an input log, a checkpoint
 * digest) the way real transport and storage do: a flipped bit, a file
 * cut short, a record played twice, records swapped in flight, or a
 * foreign/old header. Every mutation is aimed so its detection class is
 * exact — the injection-matrix tests assert that each FaultKind is
 * caught as its own StatusCode, never silently and never as a vaguer
 * error than necessary.
 *
 * All randomness comes from a seeded splitmix64 stream: the same seed
 * over the same image produces byte-identical mutations on every run
 * and every platform. No wall-clock entropy anywhere.
 */

namespace rsafe::fault {

/** The corruption classes of the injection matrix. */
enum class FaultKind {
    kBitFlip,          ///< one bit flipped inside a frame
    kTruncate,         ///< image cut short mid-record
    kDuplicateRecord,  ///< an intact frame replayed twice
    kReorderRecords,   ///< two adjacent intact frames swapped
    kBadMagic,         ///< foreign file: magic overwritten
    kBadVersion,       ///< future format: version bumped, CRC resealed
};

/** @return a short name for @p kind. */
const char* fault_kind_name(FaultKind kind);

/** Every FaultKind, in matrix order. */
inline constexpr std::array<FaultKind, 6> kAllFaultKinds = {
    FaultKind::kBitFlip,        FaultKind::kTruncate,
    FaultKind::kDuplicateRecord, FaultKind::kReorderRecords,
    FaultKind::kBadMagic,        FaultKind::kBadVersion,
};

/**
 * @return the StatusCode a tolerant decode must report after @p kind was
 * injected — the contract the injection-matrix suite enforces.
 */
StatusCode expected_detection(FaultKind kind);

/** What a single injection did, for test output and forensics. */
struct FaultReport {
    FaultKind kind = FaultKind::kBitFlip;
    std::string detail;  ///< what was mutated and where
};

/** Deterministic seeded PRNG (splitmix64). */
class Rng {
  public:
    explicit Rng(std::uint64_t seed) : state_(seed) {}

    std::uint64_t next();

    /** Uniform value in [0, bound); bound must be nonzero. */
    std::uint64_t below(std::uint64_t bound);

  private:
    std::uint64_t state_;
};

/**
 * The fault injector. One instance drives one deterministic stream of
 * mutations; inject() draws from it, so a sequence of injections with
 * one seed is as reproducible as a single one.
 */
class Injector {
  public:
    explicit Injector(std::uint64_t seed) : rng_(seed) {}

    /**
     * Mutate @p image in place per @p kind. The image must be an intact
     * wire image (kBitFlip needs >= 1 frame; kDuplicateRecord and
     * kReorderRecords need >= 2 so the damage is not just trailing
     * garbage). On success @p report says exactly what changed.
     */
    Status inject(FaultKind kind, std::vector<std::uint8_t>* image,
                  FaultReport* report);

  private:
    Rng rng_;
};

}  // namespace rsafe::fault

#endif  // RSAFE_FAULT_INJECTOR_H_
