#include "workloads/benchmarks.h"

#include "common/log.h"

namespace rsafe::workloads {

namespace {

WorkloadProfile
base_profile()
{
    WorkloadProfile profile;
    profile.devices.timer_tick_period = 100'000;
    profile.devices.disk_blocks = 4096;
    profile.iterations_per_task = 1u << 30;  // run until the bench stops
    return profile;
}

}  // namespace

WorkloadProfile
benchmark_profile(const std::string& name)
{
    WorkloadProfile profile = base_profile();
    profile.name = name;

    if (name == "apache") {
        profile.seed = 0xA9AC4E;
        profile.num_tasks = 4;
        profile.alu_loop = 25;
        profile.rdtsc_prob = 0.30;
        profile.nic_poll_prob = 0.90;
        profile.nic_send_prob = 0.60;
        profile.disk_read_prob = 0.04;
        profile.logmsg_prob = 0.20;
        profile.checksum_prob = 0.0;
        profile.rec_prob = 0.05;
        profile.ws_writes = 3;
        profile.ws_pages = 96;
        profile.yield_prob = 0.02;
        profile.devices.nic_mean_gap = 6'000;
        profile.devices.nic_min_packet = 64;
        profile.devices.nic_max_packet = 1400;
        profile.devices.disk_mean_latency = 20'000;
    } else if (name == "fileio") {
        profile.seed = 0xF17E10;
        profile.num_tasks = 2;
        profile.alu_loop = 15;
        profile.rdtsc_prob = 0.55;
        profile.disk_read_prob = 0.50;
        profile.disk_write_prob = 0.45;
        profile.checksum_prob = 0.10;
        profile.checksum_len = 128;
        profile.ws_writes = 2;
        profile.ws_pages = 32;
        profile.devices.disk_mean_latency = 3'000;
    } else if (name == "make") {
        profile.seed = 0x3A4E;
        profile.num_tasks = 3;
        profile.alu_loop = 120;
        profile.rdtsc_prob = 0.04;
        profile.disk_read_prob = 0.015;
        profile.disk_write_prob = 0.008;
        profile.checksum_prob = 0.25;
        profile.checksum_len = 480;
        profile.rec_prob = 0.10;
        profile.ws_writes = 6;
        profile.ws_pages = 192;
        profile.yield_prob = 0.02;
        profile.devices.disk_mean_latency = 8'000;
    } else if (name == "mysql") {
        profile.seed = 0x5D5B;
        profile.num_tasks = 3;
        profile.alu_loop = 100;
        profile.rdtsc_prob = 0.30;
        profile.nic_poll_prob = 0.10;
        profile.nic_send_prob = 0.50;
        profile.disk_read_prob = 0.01;
        profile.checksum_prob = 0.50;
        profile.checksum_len = 512;
        profile.ws_writes = 4;
        profile.ws_pages = 128;
        profile.devices.nic_mean_gap = 40'000;
        profile.devices.nic_min_packet = 64;
        profile.devices.nic_max_packet = 256;
        profile.devices.disk_mean_latency = 8'000;
    } else if (name == "radiosity") {
        profile.seed = 0x4AD105;
        profile.num_tasks = 1;
        profile.alu_loop = 400;
        profile.rdtsc_prob = 0.03;
        profile.checksum_prob = 0.10;
        profile.checksum_len = 512;
        profile.rec_prob = 0.50;
        profile.rec_depth_min = 6;
        profile.rec_depth_max = 20;
        profile.checksum_len = 256;
        profile.ws_writes = 8;
        profile.ws_pages = 256;
    } else {
        fatal("benchmark_profile: unknown benchmark '" + name + "'");
    }

    profile.devices.seed = profile.seed * 31 + 7;
    return profile;
}

std::vector<std::string>
benchmark_names()
{
    return {"apache", "fileio", "make", "mysql", "radiosity"};
}

WorkloadProfile
golden_profile(const std::string& name)
{
    // The golden wire corpus and its compat test must describe the very
    // same bounded run; the single source of that truth lives here.
    WorkloadProfile profile = benchmark_profile(name);
    profile.iterations_per_task = 120;
    return profile;
}

}  // namespace rsafe::workloads
