#include "workloads/attack_mix.h"

#include <vector>

#include "attack/attack_mounter.h"
#include "kernel/kernel_builder.h"
#include "kernel/layout.h"
#include "workloads/benchmarks.h"
#include "workloads/generator.h"

namespace rsafe::workloads {

namespace k = rsafe::kernel;

AttackMix
attack_mix(const AttackMixOptions& options)
{
    AttackMix mix;
    mix.profile = benchmark_profile("mysql");
    mix.profile.name = "attack-mix";
    mix.profile.iterations_per_task = options.iterations_per_task;
    mix.profile.num_tasks = 2;

    // The kernel build is deterministic, so scanning it here yields the
    // same gadgets the recorded VM's kernel carries.
    const auto kernel = k::build_kernel();
    mix.vulnerable_ret = kernel.vulnerable_ret;
    // Task slots: kernel idle is 0, benign tasks fill 1..num_tasks, the
    // first attacker takes the next one.
    mix.attacker_tid = static_cast<ThreadId>(mix.profile.num_tasks + 1);

    std::vector<isa::Image> images;
    std::vector<Addr> entries;
    for (std::size_t i = 0; i < options.attackers; ++i) {
        const auto program = attack::build_attacker_program(
            kernel, k::kUserCodeBase + 0x40000 + i * 0x8000,
            k::kUserDataBase + (15 + i) * 0x10000,
            options.delay_iters + i * options.delay_step);
        images.push_back(program.image);
        entries.push_back(program.entry);
    }
    mix.factory = vm_factory(mix.profile, images, entries);
    return mix;
}

}  // namespace rsafe::workloads
