#include "workloads/attack_mix.h"

#include <cstdint>
#include <vector>

#include "attack/attack_mounter.h"
#include "common/log.h"
#include "isa/assembler.h"
#include "kernel/kernel_builder.h"
#include "kernel/layout.h"
#include "workloads/benchmarks.h"
#include "workloads/generator.h"

namespace rsafe::workloads {

namespace k = rsafe::kernel;

namespace {

using isa::R0;
using isa::R5;
using isa::R6;
using isa::R7;
using isa::R13;

/** Scenario image load addresses (clear of the generated workload and
 *  the attack-mix attackers). */
constexpr Addr kScenarioCodeBase = k::kUserCodeBase + 0x48000;
constexpr Addr kForeignCodeBase = k::kUserCodeBase + 0x50000;

/** The shared one-slot dispatch table, in the write-disciplined slice. */
constexpr Addr kScenarioTable = k::kDispatchTableBase;

/** Small benign base profile the scenarios ride on. */
WorkloadProfile
scenario_profile(const std::string& name)
{
    WorkloadProfile profile;
    profile.name = name;
    profile.seed = 11;
    profile.num_tasks = 1;
    profile.iterations_per_task = 24;
    profile.alu_loop = 6;
    profile.ws_writes = 1;
    profile.yield_prob = 0.25;
    return profile;
}

/**
 * Emit the materialize-table-slot-then-dispatch idiom in one basic
 * block, which is exactly the shape the (block-local) value-set pass
 * resolves: table base constant, load, indirect call.
 */
void
emit_dispatch(isa::Assembler& a)
{
    a.ldi(R6, static_cast<std::int64_t>(kScenarioTable));
    a.ld(R5, R6, 0);
    a.callr(R5);
}

void
emit_syscall(isa::Assembler& a, Word number)
{
    a.ldi(R0, static_cast<std::int64_t>(number));
    a.syscall();
}

/** Store @p target (a label in this image) into the dispatch slot. */
void
emit_publish(isa::Assembler& a, const std::string& label)
{
    a.ldi(R6, static_cast<std::int64_t>(kScenarioTable));
    a.ldi_label(R7, label);
    a.st(R6, 0, R7);
}

/** @return instruction word @p index of @p image, little-endian. */
std::uint64_t
image_word(const isa::Image& image, std::size_t index)
{
    std::uint64_t word = 0;
    for (std::size_t b = 0; b < 8; ++b) {
        word |= static_cast<std::uint64_t>(
                    image.bytes().at(index * 8 + b))
                << (8 * b);
    }
    return word;
}

/** Fill the scenario-independent pieces of @p s. */
void
finish_scenario(DetectorScenario* s,
                const std::vector<isa::Image>& extra_images,
                const std::vector<Addr>& extra_entries,
                const std::vector<isa::Image>& extra_trusted)
{
    const auto kernel = k::build_kernel();
    s->trusted_images.push_back(kernel.image);
    s->trusted_images.push_back(generate_workload(s->profile).image);
    for (const auto& image : extra_trusted)
        s->trusted_images.push_back(image);
    s->factory = vm_factory(s->profile, extra_images, extra_entries);
}

}  // namespace

AttackMix
attack_mix(const AttackMixOptions& options)
{
    AttackMix mix;
    mix.profile = benchmark_profile("mysql");
    mix.profile.name = "attack-mix";
    mix.profile.iterations_per_task = options.iterations_per_task;
    mix.profile.num_tasks = 2;

    // The kernel build is deterministic, so scanning it here yields the
    // same gadgets the recorded VM's kernel carries.
    const auto kernel = k::build_kernel();
    mix.vulnerable_ret = kernel.vulnerable_ret;
    // Task slots: kernel idle is 0, benign tasks fill 1..num_tasks, the
    // first attacker takes the next one.
    mix.attacker_tid = static_cast<ThreadId>(mix.profile.num_tasks + 1);

    std::vector<isa::Image> images;
    std::vector<Addr> entries;
    for (std::size_t i = 0; i < options.attackers; ++i) {
        const auto program = attack::build_attacker_program(
            kernel, k::kUserCodeBase + 0x40000 + i * 0x8000,
            k::kUserDataBase + (15 + i) * 0x10000,
            options.delay_iters + i * options.delay_step);
        images.push_back(program.image);
        entries.push_back(program.entry);
    }
    mix.factory = vm_factory(mix.profile, images, entries);
    return mix;
}

DetectorScenario
cfi_hijack_scenario()
{
    DetectorScenario s;
    s.name = "cfi-hijack";
    s.profile = scenario_profile("cfi-hijack");
    s.expect_attack = true;

    isa::Assembler v(kScenarioCodeBase);
    v.func_begin("v_helper_a");
    v.nop();
    v.ret();  // v_helper_a + 8: the attacker's mid-function target
    v.func_end();
    v.func_begin("v_helper_b");
    v.nop();
    v.ret();
    v.func_end();
    v.func_begin("v_entry");
    // Publish both sanctioned handlers (the store map is flow-
    // insensitive, so both stores feed every site reading the slot).
    emit_publish(v, "v_helper_b");
    emit_dispatch(v);
    emit_publish(v, "v_helper_a");
    // Dispatch loop, yielding each round so the attacker task runs (and
    // corrupts the slot) mid-loop.
    v.ldi(R13, 12);
    v.label("v_loop");
    v.label("v_site");
    emit_dispatch(v);
    emit_syscall(v, k::kSysYield);
    v.addi(R13, R13, -1);
    v.ldi(R7, 0);
    v.bne(R13, R7, "v_loop");
    emit_syscall(v, k::kSysExit);
    v.func_end();
    const auto victim = v.link();
    s.site = victim.symbol("v_site") + 16;  // the callr of the idiom
    s.target = victim.symbol("v_helper_a") + 8;

    // The foreign task: wait a few rounds, then overwrite the dispatch
    // slot with a mid-function address. Its image is NOT in the trusted
    // set, so the static policy knows nothing about this store.
    isa::Assembler f(kForeignCodeBase);
    f.func_begin("f_entry");
    for (int i = 0; i < 3; ++i)
        emit_syscall(f, k::kSysYield);
    f.ldi(R6, static_cast<std::int64_t>(kScenarioTable));
    f.ldi(R7, static_cast<std::int64_t>(s.target));
    f.st(R6, 0, R7);
    emit_syscall(f, k::kSysExit);
    f.func_end();
    const auto foreign = f.link();

    finish_scenario(&s, {victim, foreign},
                    {victim.symbol("v_entry"), foreign.symbol("f_entry")},
                    {victim});
    return s;
}

DetectorScenario
cfi_table_miss_scenario()
{
    DetectorScenario s;
    s.name = "cfi-table-miss";
    s.profile = scenario_profile("cfi-table-miss");
    s.expect_attack = false;

    isa::Assembler v(kScenarioCodeBase);
    for (int i = 0; i < 6; ++i) {
        v.func_begin(strcat_args("v_h", i));
        v.nop();
        v.ret();
        v.func_end();
    }
    v.func_begin("v_entry");
    // Cycle the slot through all six handlers. Every dispatch site's
    // static set holds all six targets; the modeled hardware caches only
    // CfiDetector::kHardwareSlots of them, so the last handlers raise
    // hardware alarms the replay classifier clears.
    for (int i = 0; i < 6; ++i) {
        emit_publish(v, strcat_args("v_h", i));
        emit_dispatch(v);
        emit_syscall(v, k::kSysYield);
    }
    emit_syscall(v, k::kSysExit);
    v.func_end();
    const auto image = v.link();
    s.target = image.symbol("v_h4");

    finish_scenario(&s, {image}, {image.symbol("v_entry")}, {image});
    return s;
}

DetectorScenario
wx_patcher_scenario()
{
    DetectorScenario s;
    s.name = "wx-patcher";
    s.profile = scenario_profile("wx-patcher");
    s.expect_attack = false;
    s.site = k::kJitRegionBase;
    s.target = k::kJitRegionBase;

    // The stub the patcher materializes: a single `ret` at the JIT base.
    isa::Assembler stub(k::kJitRegionBase);
    stub.ret();
    const auto stub_image = stub.link();

    isa::Assembler v(kScenarioCodeBase);
    v.func_begin("v_entry");
    v.ldi(R6, static_cast<std::int64_t>(k::kJitRegionBase));
    v.ldi(R7, static_cast<std::int64_t>(image_word(stub_image, 0)));
    v.st(R6, 0, R7);
    // Dispatch into the freshly generated code, entering the JIT region
    // at its base (the sanctioned-codegen shape).
    v.ldi(R5, static_cast<std::int64_t>(k::kJitRegionBase));
    v.callr(R5);
    emit_syscall(v, k::kSysExit);
    v.func_end();
    const auto image = v.link();

    finish_scenario(&s, {image}, {image.symbol("v_entry")}, {image});
    return s;
}

DetectorScenario
wx_inject_scenario()
{
    DetectorScenario s;
    s.name = "wx-inject";
    s.profile = scenario_profile("wx-inject");
    s.expect_attack = true;
    s.site = k::kJitRegionBase + 0x100;
    s.target = s.site;

    // The injected payload: exit cleanly so the run stays deterministic.
    isa::Assembler payload(s.site);
    payload.ldi(R0, static_cast<std::int64_t>(k::kSysExit));
    payload.syscall();
    const auto payload_image = payload.link();

    isa::Assembler v(kScenarioCodeBase);
    v.func_begin("v_entry");
    for (std::size_t w = 0; w * 8 < payload_image.size(); ++w) {
        v.ldi(R6, static_cast<std::int64_t>(s.site + w * 8));
        v.ldi(R7, static_cast<std::int64_t>(image_word(payload_image, w)));
        v.st(R6, 0, R7);
    }
    // Jump into the payload mid-region: not a sanctioned JIT entry.
    v.ldi(R5, static_cast<std::int64_t>(s.site));
    v.jmpr(R5);
    v.func_end();
    const auto image = v.link();

    finish_scenario(&s, {image}, {image.symbol("v_entry")}, {image});
    return s;
}

DetectorScenario
longjmp_storm_scenario()
{
    DetectorScenario s;
    s.name = "longjmp-storm";
    s.profile = scenario_profile("longjmp-storm");
    s.profile.seed = 23;
    s.profile.iterations_per_task = 48;
    s.profile.setjmp_prob = 0.35;
    s.profile.rec_prob = 0.15;
    s.expect_attack = false;
    finish_scenario(&s, {}, {}, {});
    return s;
}

}  // namespace rsafe::workloads
