#include "workloads/profile.h"

// Profile data lives in benchmarks.cc; this translation unit exists so the
// header has a home and the constants above are ODR-anchored.
