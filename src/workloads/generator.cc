#include "workloads/generator.h"

#include "common/log.h"
#include "common/random.h"
#include "isa/assembler.h"
#include "kernel/layout.h"

namespace rsafe::workloads {

using isa::Assembler;
using isa::R0;
using isa::R1;
using isa::R2;
using isa::R3;
using isa::R5;
using isa::R6;
using isa::R7;
using isa::R8;
using isa::R9;
using isa::R13;

namespace k = rsafe::kernel;

namespace {

/** Per-task user-data slice layout. */
constexpr Addr kSliceStride = 0x10000;
constexpr Addr kPktBufOff = 0x0000;     // 2 KiB packet buffer
constexpr Addr kDiskBufOff = 0x1000;    // one disk block
constexpr Addr kScratchOff = 0x2000;    // jmp_buf / scratch

Addr
slice_base(int task)
{
    return k::kUserDataBase + static_cast<Addr>(task) * kSliceStride;
}

/** Emits the body of one unrolled iteration for one task. */
class TaskEmitter {
  public:
    TaskEmitter(Assembler& a, const WorkloadProfile& profile, int task,
                Rng& rng)
        : a_(a), profile_(profile), task_(task), rng_(rng)
    {
    }

    void
    emit_iteration(int iter_index)
    {
        emit_compute(iter_index);
        emit_ws_writes();
        if (rng_.chance(profile_.rdtsc_prob)) {
            a_.rdtsc(R6);
            a_.add(R9, R9, R6);
        }
        if (rng_.chance(profile_.nic_poll_prob))
            emit_nic_poll();
        if (rng_.chance(profile_.disk_read_prob))
            emit_disk(k::kSysDiskRead);
        if (rng_.chance(profile_.disk_write_prob))
            emit_disk(k::kSysDiskWrite);
        if (rng_.chance(profile_.checksum_prob))
            emit_checksum();
        if (rng_.chance(profile_.logmsg_prob))
            emit_logmsg();
        if (rng_.chance(profile_.rec_prob))
            emit_recursion();
        // Guarded on the knob so profiles without storms consume exactly
        // the draw sequence they did before the knob existed (golden
        // workload images must stay bit-identical).
        if (profile_.setjmp_prob > 0 && rng_.chance(profile_.setjmp_prob))
            emit_setjmp_storm();
        if (rng_.chance(profile_.yield_prob))
            emit_syscall0(k::kSysYield);
    }

  private:
    std::string
    lbl(const std::string& stem)
    {
        return strcat_args("t", task_, "_", stem, "_", label_seq_++);
    }

    void
    emit_compute(int iter_index)
    {
        if (profile_.alu_loop <= 0)
            return;
        const auto loop = lbl("alu");
        a_.ldi(R8, profile_.alu_loop);
        a_.ldi(R7, 0);
        a_.label(loop);
        a_.add(R9, R9, R8);
        a_.xori(R9, R9, static_cast<std::int32_t>(iter_index * 2654435761u));
        a_.shli(R6, R9, 1);
        a_.or_(R9, R9, R6);
        a_.addi(R8, R8, -1);
        a_.bne(R8, R7, loop);
    }

    void
    emit_ws_writes()
    {
        const Addr ws_base = k::kWorkingSetBase +
                             static_cast<Addr>(task_) * profile_.ws_pages *
                                 kPageSize;
        for (int w = 0; w < profile_.ws_writes; ++w) {
            const Addr page = rng_.next_below(profile_.ws_pages);
            const Addr offset = rng_.next_below(kPageSize / 8) * 8;
            a_.ldi(R6, static_cast<std::int64_t>(ws_base + page * kPageSize +
                                                 offset));
            a_.st(R6, 0, R9);
        }
    }

    void
    emit_syscall0(Word number)
    {
        a_.ldi(R0, static_cast<std::int64_t>(number));
        a_.syscall();
    }

    void
    emit_nic_poll()
    {
        a_.ldi(R1, static_cast<std::int64_t>(slice_base(task_) + kPktBufOff));
        emit_syscall0(k::kSysNicRecv);
        if (rng_.chance(profile_.nic_send_prob)) {
            // Respond with a small packet when one was received.
            const auto skip = lbl("nosend");
            a_.ldi(R2, 0);
            a_.beq(R0, R2, skip);
            a_.ldi(R1, 96);
            emit_syscall0(k::kSysNicSend);
            a_.label(skip);
        }
    }

    void
    emit_disk(Word number)
    {
        const Addr block =
            rng_.next_below(profile_.devices.disk_blocks);
        a_.ldi(R1, static_cast<std::int64_t>(block));
        a_.ldi(R2, static_cast<std::int64_t>(slice_base(task_) +
                                             kDiskBufOff));
        emit_syscall0(number);
    }

    void
    emit_checksum()
    {
        a_.ldi(R1, static_cast<std::int64_t>(slice_base(task_) + kPktBufOff));
        a_.ldi(R2, profile_.checksum_len);
        emit_syscall0(k::kSysChecksum);
    }

    void
    emit_logmsg()
    {
        a_.ldi(R1, static_cast<std::int64_t>(slice_base(task_) + kPktBufOff));
        a_.ldi(R2, 32);  // well within the kernel buffer
        emit_syscall0(k::kSysLogMsg);
    }

    void
    emit_recursion()
    {
        const auto depth = rng_.next_range(profile_.rec_depth_min,
                                           profile_.rec_depth_max);
        a_.ldi(R1, static_cast<std::int64_t>(depth));
        a_.call("u_rec");
    }

    void
    emit_setjmp_storm()
    {
        const auto depth = rng_.next_range(profile_.setjmp_depth_min,
                                           profile_.setjmp_depth_max);
        a_.ldi(R1, static_cast<std::int64_t>(slice_base(task_) +
                                             kScratchOff));
        a_.ldi(R2, static_cast<std::int64_t>(depth));
        a_.call("u_storm");
    }

    Assembler& a_;
    const WorkloadProfile& profile_;
    int task_;
    Rng& rng_;
    int label_seq_ = 0;
};

}  // namespace

GeneratedWorkload
generate_workload(const WorkloadProfile& profile)
{
    if (profile.num_tasks < 1 ||
        profile.num_tasks > static_cast<int>(k::kMaxTasks) - 1) {
        fatal("generate_workload: bad task count");
    }
    constexpr int kUnroll = 16;

    Assembler a(k::kUserCodeBase);

    // Shared helper: bounded user recursion.
    a.func_begin("u_rec");
    a.ldi(R2, 0);
    a.beq(R1, R2, "u_rec_base");
    a.addi(R1, R1, -1);
    a.call("u_rec");
    a.label("u_rec_base");
    a.ret();
    a.func_end();

    // Shared helpers: user-level setjmp/longjmp (imperfect nesting).
    a.func_begin("u_setjmp");
    a.getsp(R3);
    a.ld(R2, R3, 0);
    a.st(R1, 0, R2);           // jmp_buf[0] = return address
    a.addi(R3, R3, 8);
    a.st(R1, 8, R3);           // jmp_buf[1] = caller sp
    a.st(R1, 16, isa::R10);
    a.st(R1, 24, isa::R11);
    a.st(R1, 32, isa::R12);
    a.st(R1, 40, R13);
    a.ldi(R0, 0);
    a.ret();
    a.func_end();

    a.func_begin("u_longjmp");
    a.ld(isa::R10, R1, 16);
    a.ld(isa::R11, R1, 24);
    a.ld(isa::R12, R1, 32);
    a.ld(R13, R1, 40);
    a.ld(R3, R1, 8);
    a.setsp(R3);
    a.ld(R5, R1, 0);
    a.mov(R0, R2);
    a.jmpr(R5);                // non-procedural transfer: no RAS pop
    a.func_end();

    // Longjmp-storm helpers (RAS false-positive generator): u_storm
    // setjmps, dives `depth` calls deep, and longjmps straight back. The
    // dive chain's return addresses stay on the hardware RAS, so the
    // storm's own ret (and a few after it) mispredict — classic imperfect
    // nesting the AR must classify benign. Emitted only for profiles
    // that use the knob so existing images stay bit-identical.
    if (profile.setjmp_prob > 0) {
        a.func_begin("u_storm");
        a.mov(isa::R10, R1);       // jmp_buf (u_setjmp/longjmp preserve it)
        a.st(isa::R10, 48, R2);    // stash dive depth past the jmp_buf
        a.call("u_setjmp");        // R1 still holds the jmp_buf
        a.ldi(R2, 0);
        a.bne(R0, R2, "u_storm_out");
        a.ld(R1, isa::R10, 48);
        a.call("u_dive");          // never returns: ends in the longjmp
        a.label("u_storm_out");
        a.ret();                   // pops a stale dive entry: mispredict
        a.func_end();

        a.func_begin("u_dive");
        a.ldi(R2, 0);
        a.beq(R1, R2, "u_dive_jump");
        a.addi(R1, R1, -1);
        a.call("u_dive");
        a.ret();                   // unreachable: the dive never unwinds
        a.label("u_dive_jump");
        a.mov(R1, isa::R10);
        a.ldi(R2, 1);
        a.call("u_longjmp");
        a.func_end();
    }

    GeneratedWorkload workload;
    for (int task = 0; task < profile.num_tasks; ++task) {
        Rng rng(profile.seed * 1000003 + task * 7919);
        const std::string entry = strcat_args("t", task, "_entry");
        const std::string outer = strcat_args("t", task, "_outer");
        const std::string done = strcat_args("t", task, "_done");

        a.func_begin(entry);
        const std::uint64_t outer_count =
            (profile.iterations_per_task + kUnroll - 1) / kUnroll;
        a.ldi(R13, static_cast<std::int64_t>(outer_count));
        a.ldi(R9, static_cast<std::int64_t>(profile.seed + task));
        a.label(outer);
        a.ldi(R7, 0);
        a.beq(R13, R7, done);

        TaskEmitter emitter(a, profile, task, rng);
        for (int i = 0; i < kUnroll; ++i)
            emitter.emit_iteration(i);

        a.addi(R13, R13, -1);
        a.jmp(outer);
        a.label(done);
        a.ldi(R0, static_cast<std::int64_t>(k::kSysExit));
        a.syscall();
        a.jmp(done);  // unreachable
        a.func_end();
    }

    workload.image = a.link();
    if (workload.image.end() > k::kUserCodeLimit)
        fatal("generated workload overflows the user code segment");
    for (int task = 0; task < profile.num_tasks; ++task) {
        workload.task_entries.push_back(
            workload.image.symbol(strcat_args("t", task, "_entry")));
    }
    return workload;
}

std::unique_ptr<hv::Vm>
make_vm(const WorkloadProfile& profile,
        const std::vector<isa::Image>& extra_images,
        const std::vector<Addr>& extra_entries)
{
    const GeneratedWorkload workload = generate_workload(profile);
    hv::VmConfig config;
    config.devices = profile.devices;
    auto vm = std::make_unique<hv::Vm>(config);
    vm->load_user_image(workload.image);
    for (const auto& image : extra_images)
        vm->load_user_image(image);
    for (const Addr entry : workload.task_entries)
        vm->add_user_task(entry);
    for (const Addr entry : extra_entries)
        vm->add_user_task(entry);
    vm->finalize();
    return vm;
}

std::function<std::unique_ptr<hv::Vm>()>
vm_factory(const WorkloadProfile& profile,
           const std::vector<isa::Image>& extra_images,
           const std::vector<Addr>& extra_entries)
{
    return [profile, extra_images, extra_entries]() {
        return make_vm(profile, extra_images, extra_entries);
    };
}

}  // namespace rsafe::workloads
