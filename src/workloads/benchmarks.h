#ifndef RSAFE_WORKLOADS_BENCHMARKS_H_
#define RSAFE_WORKLOADS_BENCHMARKS_H_

#include <string>
#include <vector>

#include "workloads/profile.h"

/**
 * @file
 * The five Table 3 benchmark profiles.
 *
 * Each profile models the behaviour the paper reports for that benchmark
 * (Sections 8.1-8.3):
 *
 *  - apache:    network-bound; receives packets over MMIO, responds, logs;
 *               deep NIC-driver nesting under big packets (underflows);
 *               highest input-log rate (packet contents).
 *  - fileio:    SysBench file I/O, direct mode: pio command traffic, DMA
 *               completions, and application timer reads (rdtsc-heavy).
 *  - make:      compute with kernel-call-dense file work; little record
 *               overhead but expensive alarm replay.
 *  - mysql:     OLTP: rdtsc per transaction, kernel work, little disk
 *               (tables cached in memory).
 *  - radiosity: SPLASH-2 compute; deep user recursion, minimal kernel
 *               activity.
 */

namespace rsafe::workloads {

/** @return the profile for Table 3 benchmark @p name; fatal if unknown. */
WorkloadProfile benchmark_profile(const std::string& name);

/** @return all five benchmark names in the paper's order. */
std::vector<std::string> benchmark_names();

/**
 * @return the bounded variant of benchmark @p name used for the golden
 * wire corpus (tests/corpus/golden): short enough to record in a test,
 * long enough to exercise every record type the benchmark produces.
 * rsafe-corpus serializes these recordings; test_wire_compat re-replays
 * the checked-in bytes and compares final machine digests.
 */
WorkloadProfile golden_profile(const std::string& name);

}  // namespace rsafe::workloads

#endif  // RSAFE_WORKLOADS_BENCHMARKS_H_
