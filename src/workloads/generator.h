#ifndef RSAFE_WORKLOADS_GENERATOR_H_
#define RSAFE_WORKLOADS_GENERATOR_H_

#include <functional>
#include <memory>
#include <vector>

#include "hv/vm.h"
#include "isa/program.h"
#include "workloads/profile.h"

/**
 * @file
 * Guest workload generation.
 *
 * generate_workload() emits one user-code image realizing a
 * WorkloadProfile: per-task loops whose iterations interleave compute,
 * working-set stores, timestamp reads, NIC/disk syscalls, kernel
 * checksums, user recursion, and yields — each iteration's event mix
 * fixed at generation time from the profile seed.
 *
 * make_vm()/vm_factory() assemble complete VMs around a generated
 * workload; the factory builds bit-identical machines, which is what the
 * framework's recorded VM, checkpointing-replayer VM, and alarm-replayer
 * VMs all need to be.
 */

namespace rsafe::workloads {

/** A generated workload image plus its task entry points. */
struct GeneratedWorkload {
    isa::Image image;
    std::vector<Addr> task_entries;
};

/** Emit the user program image for @p profile. */
GeneratedWorkload generate_workload(const WorkloadProfile& profile);

/**
 * Build a ready-to-run VM: kernel + generated workload + tasks, finalized.
 *
 * @param extra_images   additional user images to load (e.g., an attacker
 *                       task program).
 * @param extra_entries  extra user tasks to create, one per entry.
 */
std::unique_ptr<hv::Vm> make_vm(
    const WorkloadProfile& profile,
    const std::vector<isa::Image>& extra_images = {},
    const std::vector<Addr>& extra_entries = {});

/** A factory producing bit-identical VMs for @p profile. */
std::function<std::unique_ptr<hv::Vm>()> vm_factory(
    const WorkloadProfile& profile,
    const std::vector<isa::Image>& extra_images = {},
    const std::vector<Addr>& extra_entries = {});

}  // namespace rsafe::workloads

#endif  // RSAFE_WORKLOADS_GENERATOR_H_
