#ifndef RSAFE_WORKLOADS_ATTACK_MIX_H_
#define RSAFE_WORKLOADS_ATTACK_MIX_H_

#include <cstdint>
#include <functional>
#include <memory>

#include "hv/vm.h"
#include "workloads/profile.h"

/**
 * @file
 * The shared attack-mix workload.
 *
 * One canonical construction of "benign mysql tasks plus N attacker
 * tasks, each mounting the Figure 10 kernel ROP from its own code and
 * staging area at a staggered delay", used identically by the pipeline
 * bench, the end-to-end tests, the golden wire corpus, and the
 * rsafe-report CLI. Keeping the construction in one place means the
 * golden attack.rnrlog, the forensic assertions (faulting function,
 * attacker thread, hijacked return) and the benchmarks all describe the
 * same machine.
 */

namespace rsafe::workloads {

/** Knobs of the attack mix; the defaults are the test-sized mix. */
struct AttackMixOptions {
    /** Attacker tasks; each mounts its own ROP (one alarm replay each). */
    std::size_t attackers = 1;

    /** Benign iterations per task (scales run length, not behaviour). */
    std::uint64_t iterations_per_task = 150;

    /** Busy-loop delay before the first attacker strikes. */
    std::uint64_t delay_iters = 200;

    /** Extra delay per additional attacker (staggers the alarms). */
    std::uint64_t delay_step = 350;
};

/** The built mix: profile, VM factory, and ground truth for assertions. */
struct AttackMix {
    WorkloadProfile profile;
    std::function<std::unique_ptr<hv::Vm>()> factory;

    /** The hijacked return site inside k_vulnerable. @{ */
    Addr vulnerable_ret = 0;
    /** @} */

    /** Task slot of the first attacker (benign tasks come first). */
    ThreadId attacker_tid = 0;
};

/**
 * Build the attack mix for @p options.
 *
 * The benign side is the mysql profile (two tasks); attacker @c i loads
 * at kUserCodeBase + 0x40000 + i*0x8000, stages its payload at
 * kUserDataBase + (15+i)*0x10000, and strikes after
 * delay_iters + i*delay_step warm-up iterations.
 */
AttackMix attack_mix(const AttackMixOptions& options = {});

}  // namespace rsafe::workloads

#endif  // RSAFE_WORKLOADS_ATTACK_MIX_H_
