#ifndef RSAFE_WORKLOADS_ATTACK_MIX_H_
#define RSAFE_WORKLOADS_ATTACK_MIX_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "hv/vm.h"
#include "isa/program.h"
#include "workloads/profile.h"

/**
 * @file
 * The shared attack-mix workload.
 *
 * One canonical construction of "benign mysql tasks plus N attacker
 * tasks, each mounting the Figure 10 kernel ROP from its own code and
 * staging area at a staggered delay", used identically by the pipeline
 * bench, the end-to-end tests, the golden wire corpus, and the
 * rsafe-report CLI. Keeping the construction in one place means the
 * golden attack.rnrlog, the forensic assertions (faulting function,
 * attacker thread, hijacked return) and the benchmarks all describe the
 * same machine.
 */

namespace rsafe::workloads {

/** Knobs of the attack mix; the defaults are the test-sized mix. */
struct AttackMixOptions {
    /** Attacker tasks; each mounts its own ROP (one alarm replay each). */
    std::size_t attackers = 1;

    /** Benign iterations per task (scales run length, not behaviour). */
    std::uint64_t iterations_per_task = 150;

    /** Busy-loop delay before the first attacker strikes. */
    std::uint64_t delay_iters = 200;

    /** Extra delay per additional attacker (staggers the alarms). */
    std::uint64_t delay_step = 350;
};

/** The built mix: profile, VM factory, and ground truth for assertions. */
struct AttackMix {
    WorkloadProfile profile;
    std::function<std::unique_ptr<hv::Vm>()> factory;

    /** The hijacked return site inside k_vulnerable. @{ */
    Addr vulnerable_ret = 0;
    /** @} */

    /** Task slot of the first attacker (benign tasks come first). */
    ThreadId attacker_tid = 0;
};

/**
 * Build the attack mix for @p options.
 *
 * The benign side is the mysql profile (two tasks); attacker @c i loads
 * at kUserCodeBase + 0x40000 + i*0x8000, stages its payload at
 * kUserDataBase + (15+i)*0x10000, and strikes after
 * delay_iters + i*delay_step warm-up iterations.
 */
AttackMix attack_mix(const AttackMixOptions& options = {});

/**
 * One canonical static-policy detector workload: a small benign base
 * profile plus scenario-specific guest images, with the ground truth the
 * detector tests assert against.
 *
 * trusted_images is the image group the static policy (and the JOP
 * function table) is built from — the kernel, the generated base
 * workload, and every image the deployment trusts. Scenario images that
 * model foreign/injected code are deliberately absent from it.
 */
struct DetectorScenario {
    std::string name;
    WorkloadProfile profile;
    std::function<std::unique_ptr<hv::Vm>()> factory;

    /** Policy-build inputs: kernel image first, then trusted user code. */
    std::vector<isa::Image> trusted_images;

    /** Ground truth. @{ */
    bool expect_attack = false;
    Addr site = 0;    ///< the monitored dispatch/fetch site (0 = n/a)
    Addr target = 0;  ///< the interesting runtime target
    /** @} */
};

/**
 * The detector scenario set. @{
 *
 * cfi_hijack: a victim task dispatches through a one-slot function table
 * in its data slice; an untrusted attacker task overwrites the slot with
 * a mid-function address. The runtime target leaves the site's static
 * value set -> CFI hijack (attack).
 *
 * cfi_table_miss: one dispatch slot legitimately cycles through six
 * handlers. The static set holds all six but the modeled CFI hardware
 * caches only four targets per site, so the last handlers alarm and the
 * replay classifier clears them (benign false positives).
 *
 * wx_patcher: a trusted task writes a one-instruction stub to the JIT
 * region base and calls it — sanctioned runtime codegen (benign).
 *
 * wx_inject: a task writes a payload *past* the JIT region base and
 * jumps into it mid-region — code injection (attack).
 *
 * longjmp_storm: the base profile's setjmp/longjmp storm knob turned up;
 * every storm strands dive-chain return addresses on the hardware RAS,
 * raising classic imperfect-nesting RAS alarms (benign).
 */
DetectorScenario cfi_hijack_scenario();
DetectorScenario cfi_table_miss_scenario();
DetectorScenario wx_patcher_scenario();
DetectorScenario wx_inject_scenario();
DetectorScenario longjmp_storm_scenario();
/** @} */

}  // namespace rsafe::workloads

#endif  // RSAFE_WORKLOADS_ATTACK_MIX_H_
