#ifndef RSAFE_WORKLOADS_PROFILE_H_
#define RSAFE_WORKLOADS_PROFILE_H_

#include <cstdint>
#include <string>

#include "dev/device_hub.h"

/**
 * @file
 * Workload behaviour profiles.
 *
 * We cannot run the paper's binaries (SysBench, apache, make, radiosity)
 * on a custom guest ISA; what the paper's figures actually depend on is
 * each benchmark's *rates*: rdtsc reads, pio/MMIO accesses, network
 * packets, disk transfers (and their completion interrupts), context
 * switches, page-dirtying, and kernel call/return density. A
 * WorkloadProfile captures exactly those knobs; the generator emits a
 * guest program whose behaviour realizes them. Event choices are sampled
 * at generation time from the profile seed, so a profile describes one
 * fixed, reproducible program.
 */

namespace rsafe::workloads {

/** Cycles per simulated "virtual second" (rate/bandwidth reporting). */
inline constexpr Cycles kCyclesPerSecond = 10'000'000;

/** Behaviour knobs of one synthetic benchmark. */
struct WorkloadProfile {
    std::string name = "custom";
    std::uint64_t seed = 1;

    /** Number of user tasks (plus the kernel idle thread). */
    int num_tasks = 2;

    /** Loop iterations per task before it exits (~0 = run "forever"). */
    std::uint64_t iterations_per_task = 4000;

    /** Inner compute-loop count per iteration (4 ALU ops per count). */
    int alu_loop = 50;

    /** Per-iteration event probabilities (sampled at generation time). @{ */
    double rdtsc_prob = 0.0;      ///< app-level timestamp reads
    double nic_poll_prob = 0.0;   ///< sys_nic_recv (drives MMIO + DMA)
    double nic_send_prob = 0.0;   ///< sys_nic_send after a receive
    double disk_read_prob = 0.0;  ///< sys_disk_read (pio + DMA + irq)
    double disk_write_prob = 0.0; ///< sys_disk_write
    double checksum_prob = 0.0;   ///< sys_checksum (kernel call density)
    double logmsg_prob = 0.0;     ///< benign sys_logmsg
    double rec_prob = 0.0;        ///< user-level recursion
    double yield_prob = 0.0;      ///< voluntary sys_yield
    double setjmp_prob = 0.0;     ///< setjmp + deep dive + longjmp storm
    /** @} */

    /** Longjmp-storm dive depth range (stale RAS entries per storm). @{ */
    int setjmp_depth_min = 6;
    int setjmp_depth_max = 20;
    /** @} */

    /** sys_checksum buffer length (kernel recursion depth = len/32). */
    int checksum_len = 256;

    /** User recursion depth range. @{ */
    int rec_depth_min = 4;
    int rec_depth_max = 16;
    /** @} */

    /** Working-set stores per iteration (page-dirtying traffic). */
    int ws_writes = 2;

    /** Working-set span per task, in pages. */
    std::uint32_t ws_pages = 64;

    /** Device complement (timer tick, NIC traffic, disk latency). */
    dev::DeviceConfig devices;
};

}  // namespace rsafe::workloads

#endif  // RSAFE_WORKLOADS_PROFILE_H_
