#include "replay/alarm_replayer.h"

#include <sstream>

#include "analysis/cfg.h"
#include "analysis/decoded_image.h"
#include "analysis/function_bounds.h"
#include "common/log.h"
#include "core/detector.h"
#include "isa/disassembler.h"
#include "kernel/layout.h"
#include "obs/trace.h"

namespace rsafe::replay {

namespace {

/** What primitive the instruction at the head of a gadget provides. */
obs::GadgetClass
classify_gadget(const std::optional<isa::Instr>& instr)
{
    if (!instr)
        return obs::GadgetClass::kUnknown;
    switch (instr->op) {
      case isa::Opcode::kRet:
        return obs::GadgetClass::kChain;
      case isa::Opcode::kLd:
      case isa::Opcode::kLdb:
      case isa::Opcode::kLdi:
      case isa::Opcode::kLdiu:
      case isa::Opcode::kMov:
        return obs::GadgetClass::kLoad;
      case isa::Opcode::kSt:
      case isa::Opcode::kStb:
        return obs::GadgetClass::kStore;
      case isa::Opcode::kAdd: case isa::Opcode::kSub:
      case isa::Opcode::kMul: case isa::Opcode::kDivu:
      case isa::Opcode::kAnd: case isa::Opcode::kOr:
      case isa::Opcode::kXor: case isa::Opcode::kShl:
      case isa::Opcode::kShr: case isa::Opcode::kAddi:
      case isa::Opcode::kAndi: case isa::Opcode::kOri:
      case isa::Opcode::kXori: case isa::Opcode::kShli:
      case isa::Opcode::kShri:
        return obs::GadgetClass::kAlu;
      case isa::Opcode::kPush: case isa::Opcode::kPop:
      case isa::Opcode::kGetsp: case isa::Opcode::kSetsp:
      case isa::Opcode::kAddsp:
        return obs::GadgetClass::kStackPivot;
      case isa::Opcode::kJmp: case isa::Opcode::kJmpr:
      case isa::Opcode::kCall: case isa::Opcode::kCallr:
      case isa::Opcode::kBeq: case isa::Opcode::kBne:
      case isa::Opcode::kBlt: case isa::Opcode::kBge:
      case isa::Opcode::kBltu: case isa::Opcode::kBgeu:
        return obs::GadgetClass::kBranch;
      case isa::Opcode::kSyscall: case isa::Opcode::kIret:
      case isa::Opcode::kIn: case isa::Opcode::kOut:
        return obs::GadgetClass::kSystem;
      default:
        return obs::GadgetClass::kUnknown;
    }
}

}  // namespace

const char*
alarm_cause_name(AlarmCause cause)
{
    switch (cause) {
      case AlarmCause::kRopAttack: return "ROP-ATTACK";
      case AlarmCause::kImperfectNesting: return "imperfect-nesting";
      case AlarmCause::kBenignUnderflow: return "benign-underflow";
      case AlarmCause::kHardwareArtifact: return "hardware-artifact";
      case AlarmCause::kWhitelistViolation: return "whitelist-violation";
      case AlarmCause::kNeedsDeeperAnalysis: return "needs-deeper-analysis";
      case AlarmCause::kLogIntegrity: return "LOG-INTEGRITY";
      case AlarmCause::kJopTableMiss: return "jop-table-miss";
      case AlarmCause::kJopAttack: return "JOP-ATTACK";
      case AlarmCause::kCfiTableMiss: return "cfi-table-miss";
      case AlarmCause::kCfiHijack: return "CFI-HIJACK";
      case AlarmCause::kWxJitBenign: return "wx-jit-benign";
      case AlarmCause::kWxInjection: return "WX-INJECTION";
      case AlarmCause::kCheckpointUnavailable:
          return "checkpoint-unavailable";
    }
    return "<bad>";
}

rnr::ReplayOptions
AlarmReplayer::force_tracing(rnr::ReplayOptions options)
{
    options.trap_kernel_call_ret = true;
    return options;
}

AlarmReplayer::AlarmReplayer(hv::Vm* vm, const rnr::InputLog* log,
                             const Checkpoint& checkpoint,
                             const rnr::ReplayOptions& options)
    : rnr::Replayer(vm, log, checkpoint.log_pos, force_tracing(options)),
      shadow_({vm->guest_kernel().switch_ret_pc},
              {vm->guest_kernel().finish_resched,
               vm->guest_kernel().finish_fork,
               vm->guest_kernel().finish_kthread})
{
    init_from_checkpoint(checkpoint);
}

AlarmReplayer::AlarmReplayer(hv::Vm* vm, rnr::LogSource* source,
                             const Checkpoint& checkpoint,
                             const rnr::ReplayOptions& options)
    : rnr::Replayer(vm, source, checkpoint.log_pos, force_tracing(options)),
      shadow_({vm->guest_kernel().switch_ret_pc},
              {vm->guest_kernel().finish_resched,
               vm->guest_kernel().finish_fork,
               vm->guest_kernel().finish_kthread})
{
    init_from_checkpoint(checkpoint);
}

void
AlarmReplayer::init_from_checkpoint(const Checkpoint& checkpoint)
{
    restore_checkpoint(checkpoint, vm_, this);
    start_cycles_ = vm_->cpu().cycles();

    // "It reads the checkpoint's BackRAS into a software data structure
    // that it uses to simulate the RAS" (Section 4.6.2).
    for (const auto& [tid, saved] : checkpoint.backras)
        shadow_.init_thread(tid, saved);
    if (checkpoint.have_current_tid) {
        shadow_.init_thread(checkpoint.current_tid, checkpoint.ras);
        shadow_.switch_to(checkpoint.current_tid);
    }

    // Snapshot the as-restored shadow depths: the forensic report states
    // each thread's depth change between the checkpoint and the alarm.
    for (const auto& [tid, saved] : checkpoint.backras)
        initial_depth_[tid] = shadow_.depth(tid);
    if (checkpoint.have_current_tid) {
        initial_depth_[checkpoint.current_tid] =
            shadow_.depth(checkpoint.current_tid);
    }
}

void
AlarmReplayer::on_call_ret(const cpu::CallRetEvent& event)
{
    if (event.is_call) {
        shadow_.on_call(event.link);
        return;
    }
    Addr expected = 0;
    const RetVerdict verdict =
        shadow_.on_ret(event.pc, event.target, &expected);
    last_ret_verdict_ = verdict;
    last_ret_event_ = event;
    last_ret_expected_ = expected;
}

void
AlarmReplayer::hook_context_switch(ThreadId tid)
{
    shadow_.switch_to(tid);
}

bool
AlarmReplayer::hook_positional_record(const rnr::LogRecord& record)
{
    if (record.type == rnr::RecordType::kRasEvict) {
        shadow_.note_evict(record.tid, record.addr);
        return true;
    }
    if (record.type == rnr::RecordType::kRasAlarm ||
        record.type == rnr::RecordType::kDetectorAlarm) {
        if (log_pos() - 1 == target_index_) {
            reached_target_ = true;
            return false;  // stop: the state at the alarm is now live
        }
        // Alarms other than the target one are handled by their own ARs.
    }
    return true;
}

AlarmAnalysis
AlarmReplayer::analyze(std::size_t alarm_log_index)
{
    target_index_ = alarm_log_index;
    reached_target_ = false;
    const auto outcome = run();
    if (!reached_target_ || outcome != rnr::ReplayOutcome::kStopRequested) {
        panic("AlarmReplayer: did not reach the target alarm record");
    }
    const rnr::LogRecord& record = source_->at(alarm_log_index);
    if (record.type == rnr::RecordType::kDetectorAlarm)
        return classify_detector(record);
    return build_analysis(record);
}

AlarmAnalysis
AlarmReplayer::classify_detector(const rnr::LogRecord& record)
{
    const core::Detector* detector =
        detectors_ != nullptr
            ? detectors_->find(static_cast<core::DetectorId>(record.value))
            : nullptr;
    AlarmAnalysis analysis;
    if (detector != nullptr) {
        analysis = detector->classify(record, *this);
    } else {
        // No classifier registered (e.g. a shipped log replayed without
        // the matching detector complement): surface the alarm benignly
        // rather than guessing an attack verdict.
        analysis.is_attack = false;
        analysis.cause = AlarmCause::kHardwareArtifact;
        analysis.ret_pc = record.alarm.ret_pc;
        analysis.actual_target = record.alarm.actual;
        analysis.report = "detector alarm without a registered "
                          "classifier; left unconfirmed (benign)";
    }

    // Shared bookkeeping every detector verdict carries, so individual
    // classifiers only fill verdict, cause, addresses and report.
    analysis.alarm_record = record;
    analysis.tid = record.tid;
    analysis.analysis_cycles = vm_->cpu().cycles() - start_cycles_;
    obs::ForensicReport& forensic = analysis.forensic;
    forensic.log_index = target_index_;
    forensic.icount = record.icount;
    forensic.cause = alarm_cause_name(analysis.cause);
    forensic.is_attack = analysis.is_attack;
    forensic.kernel_mode = record.alarm.kernel_mode;
    forensic.ret_pc = analysis.ret_pc;
    forensic.faulting_function = analysis.faulting_function;
    forensic.expected_target = analysis.expected_target;
    forensic.call_site_function = analysis.call_site_function;
    forensic.actual_target = analysis.actual_target;
    forensic.tid = record.tid;
    forensic.threads_tracked = shadow_.num_threads();
    return analysis;
}

std::vector<Addr>
AlarmReplayer::scan_gadget_chain(Addr sp) const
{
    // Walk the corrupted stack upward; every word that points into kernel
    // code is (part of) the gadget chain the attacker staged.
    std::vector<Addr> chain;
    const auto& image = vm_->guest_kernel().image;
    for (int i = 0; i < 16; ++i) {
        const Addr addr = sp + 8 * i;
        if (addr + 8 > vm_->mem().size())
            break;
        const Word word = vm_->mem().read_raw(addr, 8);
        if (word >= image.base() && word < image.end())
            chain.push_back(word);
    }
    return chain;
}

AlarmAnalysis
AlarmReplayer::build_analysis(const rnr::LogRecord& record)
{
    AlarmAnalysis analysis;
    analysis.alarm_record = record;
    analysis.tid = record.tid;
    analysis.ret_pc = record.alarm.ret_pc;
    analysis.actual_target = record.alarm.actual;
    analysis.analysis_cycles = vm_->cpu().cycles() - start_cycles_;

    const bool kernel_alarm = record.alarm.kernel_mode;
    const bool traced = vm_->cpu().vmcs().controls.trap_user_call_ret ||
                        kernel_alarm;
    if (!traced || !last_ret_verdict_ ||
        last_ret_event_.pc != record.alarm.ret_pc) {
        // The analysis level did not instrument the faulting context
        // (e.g., a user-mode alarm under kernel-only tracing): rerun me
        // with deeper instrumentation (Section 4.6.2 allows multiple AR
        // runs at increasing levels).
        analysis.cause = AlarmCause::kNeedsDeeperAnalysis;
        analysis.is_attack = false;
        analysis.report = "alarm context not instrumented at this "
                          "analysis level; rerun with user tracing";
        return analysis;
    }

    switch (*last_ret_verdict_) {
      case RetVerdict::kMatch:
        analysis.cause = AlarmCause::kHardwareArtifact;
        break;
      case RetVerdict::kWhitelistOk:
        analysis.cause = AlarmCause::kHardwareArtifact;
        break;
      case RetVerdict::kImperfectNesting:
        analysis.cause = AlarmCause::kImperfectNesting;
        break;
      case RetVerdict::kUnderflowBenign:
        analysis.cause = AlarmCause::kBenignUnderflow;
        break;
      case RetVerdict::kWhitelistViolation:
        analysis.cause = AlarmCause::kWhitelistViolation;
        analysis.is_attack = true;
        break;
      case RetVerdict::kRopDetected:
        analysis.cause = AlarmCause::kRopAttack;
        analysis.is_attack = true;
        break;
    }

    analysis.expected_target = last_ret_expected_;
    const auto& image = vm_->guest_kernel().image;
    analysis.faulting_function = image.function_at(analysis.ret_pc);
    analysis.call_site_function = image.function_at(analysis.expected_target);

    std::ostringstream report;
    report << "alarm @icount " << record.icount << " tid " << analysis.tid
           << (kernel_alarm ? " [kernel]" : " [user]") << ": "
           << alarm_cause_name(analysis.cause) << "\n";
    if (analysis.is_attack) {
        analysis.gadget_chain = scan_gadget_chain(record.alarm.sp_after);
        report << "  hijacked return at 0x" << std::hex << analysis.ret_pc
               << std::dec;
        if (!analysis.faulting_function.empty())
            report << " in <" << analysis.faulting_function << ">";
        report << "\n  legitimate call site: 0x" << std::hex
               << analysis.expected_target << std::dec;
        if (!analysis.call_site_function.empty())
            report << " in <" << analysis.call_site_function << ">";
        report << "\n  control redirected to 0x" << std::hex
               << analysis.actual_target << std::dec;
        const auto fn = image.function_at(analysis.actual_target);
        if (!fn.empty())
            report << " (inside <" << fn << ">)";
        report << "\n  gadget chain on the corrupted stack:";
        for (const Addr gadget : analysis.gadget_chain) {
            report << "\n    0x" << std::hex << gadget << std::dec;
            auto instr = image.instr_at(gadget);
            if (instr)
                report << "  " << isa::disassemble(*instr);
        }
        report << "\n";
    }
    analysis.report = report.str();
    build_forensic(record, &analysis);
    return analysis;
}

void
AlarmReplayer::build_forensic(const rnr::LogRecord& record,
                              AlarmAnalysis* out) const
{
    obs::ForensicReport& forensic = out->forensic;
    forensic.log_index = target_index_;
    forensic.icount = record.icount;
    forensic.cause = alarm_cause_name(out->cause);
    forensic.is_attack = out->is_attack;
    forensic.kernel_mode = record.alarm.kernel_mode;
    forensic.ret_pc = out->ret_pc;
    forensic.faulting_function = out->faulting_function;
    forensic.expected_target = out->expected_target;
    forensic.call_site_function = out->call_site_function;
    forensic.actual_target = out->actual_target;
    const auto& image = vm_->guest_kernel().image;
    forensic.target_function = image.function_at(out->actual_target);

    forensic.tid = record.tid;
    forensic.shadow_depth = shadow_.depth(record.tid);
    const auto it = initial_depth_.find(record.tid);
    const auto initial = static_cast<std::int64_t>(
        it == initial_depth_.end() ? 0 : it->second);
    forensic.shadow_delta =
        static_cast<std::int64_t>(forensic.shadow_depth) - initial;
    // Count every thread the shadow saw, not just the ones the
    // checkpoint seeded: early checkpoints carry no BackRAS yet.
    forensic.threads_tracked = shadow_.num_threads();

    if (!out->is_attack)
        return;

    // Where, precisely: recover the CFG once and attach the inferred
    // bounds of the faulting function. This walk is only paid on real
    // attacks — false positives never reach it.
    obs::ScopedSpan span("ar.function_bounds", "ar");
    const analysis::DecodedImage decoded(image);
    const analysis::Cfg cfg(decoded);
    const auto table = analysis::FunctionTable::infer(cfg);
    if (const auto* fn = table.function_containing(forensic.ret_pc)) {
        forensic.function_begin = fn->begin;
        forensic.function_end = fn->end;
        if (forensic.faulting_function.empty())
            forensic.faulting_function = fn->name;
    }
    for (const Addr pc : out->gadget_chain) {
        obs::GadgetInfo gadget;
        gadget.pc = pc;
        const auto instr = image.instr_at(pc);
        gadget.cls = classify_gadget(instr);
        if (instr)
            gadget.disasm = isa::disassemble(*instr);
        gadget.function = image.function_at(pc);
        forensic.gadgets.push_back(std::move(gadget));
    }
}

}  // namespace rsafe::replay
