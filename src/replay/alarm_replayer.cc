#include "replay/alarm_replayer.h"

#include <sstream>

#include "common/log.h"
#include "isa/disassembler.h"
#include "kernel/layout.h"

namespace rsafe::replay {

const char*
alarm_cause_name(AlarmCause cause)
{
    switch (cause) {
      case AlarmCause::kRopAttack: return "ROP-ATTACK";
      case AlarmCause::kImperfectNesting: return "imperfect-nesting";
      case AlarmCause::kBenignUnderflow: return "benign-underflow";
      case AlarmCause::kHardwareArtifact: return "hardware-artifact";
      case AlarmCause::kWhitelistViolation: return "whitelist-violation";
      case AlarmCause::kNeedsDeeperAnalysis: return "needs-deeper-analysis";
      case AlarmCause::kLogIntegrity: return "LOG-INTEGRITY";
    }
    return "<bad>";
}

rnr::ReplayOptions
AlarmReplayer::force_tracing(rnr::ReplayOptions options)
{
    options.trap_kernel_call_ret = true;
    return options;
}

AlarmReplayer::AlarmReplayer(hv::Vm* vm, const rnr::InputLog* log,
                             const Checkpoint& checkpoint,
                             const rnr::ReplayOptions& options)
    : rnr::Replayer(vm, log, checkpoint.log_pos, force_tracing(options)),
      shadow_({vm->guest_kernel().switch_ret_pc},
              {vm->guest_kernel().finish_resched,
               vm->guest_kernel().finish_fork,
               vm->guest_kernel().finish_kthread})
{
    restore_checkpoint(checkpoint, vm_, this);
    start_cycles_ = vm_->cpu().cycles();

    // "It reads the checkpoint's BackRAS into a software data structure
    // that it uses to simulate the RAS" (Section 4.6.2).
    for (const auto& [tid, saved] : checkpoint.backras)
        shadow_.init_thread(tid, saved);
    if (checkpoint.have_current_tid) {
        shadow_.init_thread(checkpoint.current_tid, checkpoint.ras);
        shadow_.switch_to(checkpoint.current_tid);
    }
}

void
AlarmReplayer::on_call_ret(const cpu::CallRetEvent& event)
{
    if (event.is_call) {
        shadow_.on_call(event.link);
        return;
    }
    Addr expected = 0;
    const RetVerdict verdict =
        shadow_.on_ret(event.pc, event.target, &expected);
    last_ret_verdict_ = verdict;
    last_ret_event_ = event;
    last_ret_expected_ = expected;
}

void
AlarmReplayer::hook_context_switch(ThreadId tid)
{
    shadow_.switch_to(tid);
}

bool
AlarmReplayer::hook_positional_record(const rnr::LogRecord& record)
{
    if (record.type == rnr::RecordType::kRasEvict) {
        shadow_.note_evict(record.tid, record.addr);
        return true;
    }
    if (record.type == rnr::RecordType::kRasAlarm) {
        if (log_pos() - 1 == target_index_) {
            reached_target_ = true;
            return false;  // stop: the state at the alarm is now live
        }
        // Alarms other than the target one are handled by their own ARs.
    }
    return true;
}

AlarmAnalysis
AlarmReplayer::analyze(std::size_t alarm_log_index)
{
    target_index_ = alarm_log_index;
    reached_target_ = false;
    const auto outcome = run();
    if (!reached_target_ || outcome != rnr::ReplayOutcome::kStopRequested) {
        panic("AlarmReplayer: did not reach the target alarm record");
    }
    return build_analysis(source_->at(alarm_log_index));
}

std::vector<Addr>
AlarmReplayer::scan_gadget_chain(Addr sp) const
{
    // Walk the corrupted stack upward; every word that points into kernel
    // code is (part of) the gadget chain the attacker staged.
    std::vector<Addr> chain;
    const auto& image = vm_->guest_kernel().image;
    for (int i = 0; i < 16; ++i) {
        const Addr addr = sp + 8 * i;
        if (addr + 8 > vm_->mem().size())
            break;
        const Word word = vm_->mem().read_raw(addr, 8);
        if (word >= image.base() && word < image.end())
            chain.push_back(word);
    }
    return chain;
}

AlarmAnalysis
AlarmReplayer::build_analysis(const rnr::LogRecord& record)
{
    AlarmAnalysis analysis;
    analysis.alarm_record = record;
    analysis.tid = record.tid;
    analysis.ret_pc = record.alarm.ret_pc;
    analysis.actual_target = record.alarm.actual;
    analysis.analysis_cycles = vm_->cpu().cycles() - start_cycles_;

    const bool kernel_alarm = record.alarm.kernel_mode;
    const bool traced = vm_->cpu().vmcs().controls.trap_user_call_ret ||
                        kernel_alarm;
    if (!traced || !last_ret_verdict_ ||
        last_ret_event_.pc != record.alarm.ret_pc) {
        // The analysis level did not instrument the faulting context
        // (e.g., a user-mode alarm under kernel-only tracing): rerun me
        // with deeper instrumentation (Section 4.6.2 allows multiple AR
        // runs at increasing levels).
        analysis.cause = AlarmCause::kNeedsDeeperAnalysis;
        analysis.is_attack = false;
        analysis.report = "alarm context not instrumented at this "
                          "analysis level; rerun with user tracing";
        return analysis;
    }

    switch (*last_ret_verdict_) {
      case RetVerdict::kMatch:
        analysis.cause = AlarmCause::kHardwareArtifact;
        break;
      case RetVerdict::kWhitelistOk:
        analysis.cause = AlarmCause::kHardwareArtifact;
        break;
      case RetVerdict::kImperfectNesting:
        analysis.cause = AlarmCause::kImperfectNesting;
        break;
      case RetVerdict::kUnderflowBenign:
        analysis.cause = AlarmCause::kBenignUnderflow;
        break;
      case RetVerdict::kWhitelistViolation:
        analysis.cause = AlarmCause::kWhitelistViolation;
        analysis.is_attack = true;
        break;
      case RetVerdict::kRopDetected:
        analysis.cause = AlarmCause::kRopAttack;
        analysis.is_attack = true;
        break;
    }

    analysis.expected_target = last_ret_expected_;
    const auto& image = vm_->guest_kernel().image;
    analysis.faulting_function = image.function_at(analysis.ret_pc);
    analysis.call_site_function = image.function_at(analysis.expected_target);

    std::ostringstream report;
    report << "alarm @icount " << record.icount << " tid " << analysis.tid
           << (kernel_alarm ? " [kernel]" : " [user]") << ": "
           << alarm_cause_name(analysis.cause) << "\n";
    if (analysis.is_attack) {
        analysis.gadget_chain = scan_gadget_chain(record.alarm.sp_after);
        report << "  hijacked return at 0x" << std::hex << analysis.ret_pc
               << std::dec;
        if (!analysis.faulting_function.empty())
            report << " in <" << analysis.faulting_function << ">";
        report << "\n  legitimate call site: 0x" << std::hex
               << analysis.expected_target << std::dec;
        if (!analysis.call_site_function.empty())
            report << " in <" << analysis.call_site_function << ">";
        report << "\n  control redirected to 0x" << std::hex
               << analysis.actual_target << std::dec;
        const auto fn = image.function_at(analysis.actual_target);
        if (!fn.empty())
            report << " (inside <" << fn << ">)";
        report << "\n  gadget chain on the corrupted stack:";
        for (const Addr gadget : analysis.gadget_chain) {
            report << "\n    0x" << std::hex << gadget << std::dec;
            auto instr = image.instr_at(gadget);
            if (instr)
                report << "  " << isa::disassemble(*instr);
        }
        report << "\n";
    }
    analysis.report = report.str();
    return analysis;
}

}  // namespace rsafe::replay
