#include "replay/shadow_ras.h"

#include <algorithm>

namespace rsafe::replay {

const char*
ret_verdict_name(RetVerdict verdict)
{
    switch (verdict) {
      case RetVerdict::kMatch: return "match";
      case RetVerdict::kWhitelistOk: return "whitelist-ok";
      case RetVerdict::kWhitelistViolation: return "whitelist-violation";
      case RetVerdict::kImperfectNesting: return "imperfect-nesting";
      case RetVerdict::kUnderflowBenign: return "underflow-benign";
      case RetVerdict::kRopDetected: return "ROP-DETECTED";
    }
    return "<bad>";
}

ShadowRas::ShadowRas(std::unordered_set<Addr> ret_whitelist,
                     std::unordered_set<Addr> tar_whitelist)
    : ret_whitelist_(std::move(ret_whitelist)),
      tar_whitelist_(std::move(tar_whitelist))
{
}

void
ShadowRas::init_thread(ThreadId tid, const cpu::SavedRas& saved)
{
    auto& stack = stacks_[tid];
    stack.clear();
    stack.reserve(saved.entries.size());
    for (const auto& entry : saved.entries)
        stack.push_back(entry.addr);
}

void
ShadowRas::on_call(Addr link)
{
    stacks_[current_].push_back(link);
}

RetVerdict
ShadowRas::on_ret(Addr ret_pc, Addr target, Addr* expected)
{
    *expected = 0;
    if (ret_whitelist_.count(ret_pc)) {
        return tar_whitelist_.count(target) ? RetVerdict::kWhitelistOk
                                            : RetVerdict::kWhitelistViolation;
    }
    auto& stack = stacks_[current_];
    if (stack.empty()) {
        // The shadow stack only goes as deep as the checkpoint's BackRAS;
        // deeper pops are legal iff the hardware logged the eviction.
        auto& evicted = evicted_[current_];
        if (!evicted.empty() && evicted.back() == target) {
            evicted.pop_back();
            *expected = target;
            return RetVerdict::kUnderflowBenign;
        }
        return RetVerdict::kRopDetected;
    }
    const Addr top = stack.back();
    stack.pop_back();
    *expected = top;
    if (top == target)
        return RetVerdict::kMatch;
    // Imperfect nesting (setjmp/longjmp, abandoned frames): the target
    // matches a deeper entry; unwind to it.
    auto it = std::find(stack.rbegin(), stack.rend(), target);
    if (it != stack.rend()) {
        // Erase everything above and including the matched entry; the
        // return consumes it.
        stack.erase(it.base() - 1, stack.end());
        return RetVerdict::kImperfectNesting;
    }
    return RetVerdict::kRopDetected;
}

void
ShadowRas::note_evict(ThreadId tid, Addr addr)
{
    evicted_[tid].push_back(addr);
}

std::size_t
ShadowRas::depth(ThreadId tid) const
{
    auto it = stacks_.find(tid);
    return it == stacks_.end() ? 0 : it->second.size();
}

}  // namespace rsafe::replay
