#ifndef RSAFE_REPLAY_CHECKPOINT_H_
#define RSAFE_REPLAY_CHECKPOINT_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "cpu/cpu.h"
#include "cpu/ras.h"
#include "dev/blockdev.h"
#include "hv/hypervisor.h"
#include "hv/vm.h"
#include "mem/page_table.h"
#include "replay/ckpt_store/page_pool.h"

/**
 * @file
 * Incremental copy-on-write checkpoints (Section 4.6.1, Figure 4).
 *
 * A checkpoint holds (1) the full VM state — every memory page, the
 * processor state, and the virtual-disk contents — where pages/blocks
 * unmodified since the previous checkpoint are shared by reference with
 * it ("a pointer to it in the latest checkpoint that modified it");
 * (2) the InputLogPtr, the index of the next input-log record; and
 * (3) the BackRAS (including the live RAS of the current thread), which
 * the alarm replayer reads into its software RAS.
 *
 * Recycling falls out of shared ownership: dropping a checkpoint frees a
 * page only when no later checkpoint still references it.
 *
 * The page/block maps are persistent chunked arrays shared between
 * consecutive checkpoints — so taking an incremental checkpoint costs
 * O(dirty pages), not O(all pages). Each checkpoint also records the
 * identity and dirty-epoch of the memory/disk it was taken from, letting
 * restore_checkpoint() rewrite only pages that have actually changed
 * since the checkpoint when rolling the same VM back.
 *
 * Page contents live in a content-hash dedup pool (ckpt_store/) that
 * RLE-compresses them, so the chain's stored footprint is a fraction of
 * the raw page bytes; the CheckpointStore recycles oldest-first under
 * both a count cap and a byte-denominated storage budget. A complete
 * checkpoint serializes onto the hardened wire format
 * (PayloadKind::kCheckpointImage, ckpt_store/ckpt_image.h) so an alarm
 * replayer can boot from a checkpoint shipped from another process.
 */

namespace rsafe::replay {

/** One checkpoint. */
struct Checkpoint {
    std::uint64_t id = 0;

    // (1) Full VM state, incrementally shared (and content-deduped).
    ckpt::StoredPageTable pages;   ///< indexed by page number
    ckpt::StoredPageTable blocks;  ///< indexed by block number
    cpu::CpuState cpu_state;
    Cycles cycles = 0;
    InstrCount icount = 0;
    std::optional<std::uint8_t> pending_irq;
    dev::BlockDevState blockdev;

    // (2) InputLogPtr.
    std::size_t log_pos = 0;

    // (3) BackRAS + the current thread's live RAS and tracking state.
    cpu::SavedRas ras;
    std::map<ThreadId, cpu::SavedRas> backras;
    ThreadId current_tid = 0;
    bool have_current_tid = false;
    bool context_dying = false;

    /** Pages+blocks copied when this checkpoint was taken (cost basis). */
    std::size_t copies = 0;

    /**
     * Source identity + dirty epoch at take time (PhysMem/Disk id() and
     * epoch()). When restoring into the same memory/disk instance, pages
     * whose page_epoch() is still below mem_epoch are untouched since
     * this checkpoint and need not be rewritten.
     * @{
     */
    std::uint64_t mem_id = 0;
    std::uint64_t mem_epoch = 0;
    std::uint64_t disk_id = 0;
    std::uint64_t disk_epoch = 0;
    /** @} */
};

/**
 * A compact, machine-portable summary of a checkpoint's state: enough to
 * assert that two independently produced checkpoints captured the same
 * instant of the same execution (cross-pipeline determinism audits,
 * golden-corpus compatibility gates). Serialized in the hardened wire
 * format (rnr/wire.h) with the same CRC/versioning guarantees as the
 * input log, so a digest shipped between machines fails loudly — never
 * silently — when damaged.
 *
 * Only run-deterministic fields participate: process-local identifiers
 * (mem_id/disk_id) and dirty epochs are excluded so digests compare
 * equal across processes.
 */
struct CheckpointDigest {
    std::uint64_t id = 0;
    std::uint64_t icount = 0;
    std::uint64_t cycles = 0;
    std::uint64_t log_pos = 0;
    std::uint64_t cpu_hash = 0;    ///< registers, pc, sp, mode, flags
    std::uint64_t pages_hash = 0;  ///< every captured RAM page, in order
    std::uint64_t blocks_hash = 0; ///< every captured disk block, in order
    std::uint64_t ras_hash = 0;    ///< live RAS + BackRAS + thread context

    bool operator==(const CheckpointDigest&) const = default;

    /** Wire-format encoding (PayloadKind::kCheckpointDigest). */
    std::vector<std::uint8_t> serialize() const;

    /** Strict parse; any integrity defect is an error, never an abort. */
    static Status deserialize(const std::vector<std::uint8_t>& bytes,
                              CheckpointDigest* out);

    /** One-line rendering (diagnostics). */
    std::string to_string() const;
};

/** Compute the digest of @p checkpoint. */
CheckpointDigest digest_of(const Checkpoint& checkpoint);

/** CheckpointStore configuration. */
struct CheckpointStoreOptions {
    /** Keep at most this many checkpoints (0 = unlimited history). */
    std::size_t max_keep = 0;
    /**
     * Byte-denominated storage budget: after a take(), the oldest
     * checkpoints are recycled until the pool's live encoded bytes fit
     * (0 = unlimited). The newest checkpoint is always kept, so the
     * budget bounds history depth, never correctness; an alarm older
     * than the oldest surviving checkpoint surfaces as a clean
     * checkpoint-unavailable verdict, not UB.
     */
    std::uint64_t byte_budget = 0;
    /** Content-hash dedup of equal pages across the chain. */
    bool dedup = true;
    /**
     * RLE-compress stored pages. The RSAFE_NO_CKPT_COMPRESS environment
     * variable is a runtime kill-switch that forces this off — the A/B
     * lever for the bit-identical determinism gate.
     */
    bool compress = true;
};

/** Storage accounting for one store (see PagePoolStats). */
struct CheckpointStoreStats {
    std::uint64_t bytes_raw = 0;      ///< page copies at raw page size
    std::uint64_t bytes_stored = 0;   ///< cumulative unique encoded bytes
    std::uint64_t dedup_hits = 0;     ///< copies shared instead of stored
    std::uint64_t compressed_pages = 0;
    std::uint64_t live_bytes = 0;     ///< encoded bytes still referenced
    std::uint64_t live_pages = 0;
    std::uint64_t budget_evictions = 0;  ///< checkpoints dropped to budget
    std::uint64_t count_evictions = 0;   ///< checkpoints dropped to max_keep
};

/** Builds, retains, and recycles checkpoints for one replay stream. */
class CheckpointStore {
  public:
    /** Keep at most @p max_keep checkpoints (0 = unlimited history). */
    explicit CheckpointStore(std::size_t max_keep);

    /** Full configuration (kill-switch applied here). */
    explicit CheckpointStore(const CheckpointStoreOptions& options);

    /**
     * Take a checkpoint of @p vm at the current instant.
     *
     * The first checkpoint copies every page/block; later ones copy only
     * pages/blocks dirtied since the previous call and share the rest.
     * Clears the dirty tracking.
     *
     * @param env      the replay environment (for BackRAS and context).
     * @param log_pos  the InputLogPtr to store.
     * @return the new checkpoint (owned by the store).
     */
    std::shared_ptr<const Checkpoint> take(hv::Vm& vm,
                                           const hv::VmEnvBase& env,
                                           std::size_t log_pos);

    /** @return the most recent checkpoint, or nullptr. */
    std::shared_ptr<const Checkpoint> latest() const;

    /**
     * @return the latest checkpoint with icount <= @p icount, or null.
     * Checkpoints are taken in icount order, so this is a binary search.
     */
    std::shared_ptr<const Checkpoint> latest_at_or_before(
        InstrCount icount) const;

    /** @return number of retained checkpoints. */
    std::size_t size() const { return checkpoints_.size(); }

    /** @return checkpoint @p i (oldest first). */
    std::shared_ptr<const Checkpoint> at(std::size_t i) const;

    /** @return total pages+blocks copied across all checkpoints. */
    std::uint64_t total_copies() const
    {
        return pool_.stats().pages_interned;
    }

    /** Storage accounting (dedup, compression, recycling). */
    CheckpointStoreStats stats() const;

    /** The in-effect configuration (kill-switch already applied). */
    const CheckpointStoreOptions& options() const { return options_; }

  private:
    /** Recycle oldest-first until count and byte budget both fit. */
    void enforce_budget();

    CheckpointStoreOptions options_;
    std::uint64_t next_id_ = 0;
    ckpt::PagePool pool_;
    std::uint64_t budget_evictions_ = 0;
    std::uint64_t count_evictions_ = 0;
    std::deque<std::shared_ptr<const Checkpoint>> checkpoints_;
};

/**
 * Restore @p checkpoint into @p vm / @p env (the alarm replayer's first
 * step, Section 4.6.2). The VM must have the same configuration as the
 * one the checkpoint was taken from.
 */
void restore_checkpoint(const Checkpoint& checkpoint, hv::Vm* vm,
                        hv::VmEnvBase* env);

}  // namespace rsafe::replay

#endif  // RSAFE_REPLAY_CHECKPOINT_H_
