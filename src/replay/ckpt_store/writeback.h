#ifndef RSAFE_REPLAY_CKPT_STORE_WRITEBACK_H_
#define RSAFE_REPLAY_CKPT_STORE_WRITEBACK_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

/**
 * @file
 * Asynchronous checkpoint writeback.
 *
 * The CR must keep pace with the recorder; serializing every sealed
 * checkpoint on its thread would charge wire encoding to the replay
 * critical path. CkptWriteback moves that work to a background thread
 * behind a bounded channel with rnr::LogChannel's semantics:
 *
 *  - submit() enqueues a sealed (immutable, shared) checkpoint and
 *    blocks only when the queue is full — backpressure, so an
 *    unconsumed backlog cannot grow without bound;
 *  - close() seals the stream: every submitted checkpoint is serialized
 *    and delivered to the sink, then the worker joins (drain shutdown);
 *  - abandon() discards checkpoints not yet being serialized and joins
 *    (the consumer died or the run is being torn down).
 *
 * The sink receives the checkpoint and its kCheckpointImage wire bytes
 * on the worker thread; whatever it does with them (file, socket, a
 * remote AR tier) is outside the simulated timeline, so writeback never
 * perturbs the determinism gates.
 */

namespace rsafe::replay {

struct Checkpoint;

namespace ckpt {

/** CkptWriteback configuration. */
struct WritebackOptions {
    /** Backpressure bound: sealed checkpoints queued at once. */
    std::size_t capacity = 4;
};

/** Traffic counters (coherent after close()/abandon()). */
struct WritebackStats {
    std::uint64_t submitted = 0;
    std::uint64_t written = 0;        ///< serialized and delivered
    std::uint64_t bytes_written = 0;  ///< wire bytes handed to the sink
    std::uint64_t dropped = 0;        ///< discarded by abandon()
    std::uint64_t producer_waits = 0; ///< submit() blocked on a full queue
    std::size_t max_queued = 0;       ///< high-water mark of the queue
};

/** Bounded-channel background serializer for sealed checkpoints. */
class CkptWriteback {
  public:
    /** Receives each checkpoint + its serialized image (worker thread). */
    using Sink = std::function<void(std::shared_ptr<const Checkpoint>,
                                    std::vector<std::uint8_t>)>;

    explicit CkptWriteback(Sink sink, const WritebackOptions& options = {});

    /** Drains (close) if the stream is still open. */
    ~CkptWriteback();

    /** Enqueue @p checkpoint (may block on backpressure). No-op after
     *  close()/abandon(). */
    void submit(std::shared_ptr<const Checkpoint> checkpoint);

    /** Seal the stream, serialize everything queued, join the worker. */
    void close();

    /** Seal the stream, discard the queue, join the worker. */
    void abandon();

    /** Checkpoints submitted but not yet delivered (the lag gauge). */
    std::size_t lag() const;

    WritebackStats stats() const;

  private:
    void worker_main();

    Sink sink_;
    WritebackOptions options_;

    mutable std::mutex mu_;
    std::condition_variable can_push_;
    std::condition_variable can_pop_;
    std::deque<std::shared_ptr<const Checkpoint>> queue_;
    bool sealed_ = false;
    bool joined_ = false;
    WritebackStats stats_;
    /** submitted - written - dropped, maintained under mu_. */
    std::size_t in_flight_ = 0;

    std::thread worker_;
};

}  // namespace ckpt
}  // namespace rsafe::replay

#endif  // RSAFE_REPLAY_CKPT_STORE_WRITEBACK_H_
