#ifndef RSAFE_REPLAY_CKPT_STORE_CKPT_IMAGE_H_
#define RSAFE_REPLAY_CKPT_STORE_CKPT_IMAGE_H_

#include <cstdint>
#include <vector>

#include "common/status.h"

/**
 * @file
 * Complete checkpoint serialization (PayloadKind::kCheckpointImage).
 *
 * The shippable-checkpoint primitive: a Checkpoint serialized here and
 * deserialized in another process restores the same machine — an
 * AlarmReplayer boots from it plus a log slice and produces verdicts,
 * state digests, and counters bit-identical to the in-memory path. That
 * is what turns the fleet's alarm jobs into jobs a *remote* AR tier can
 * execute.
 *
 * Image layout (on the hardened wire envelope of rnr/wire.h):
 *
 *   frame 0   machine state: id/icount/cycles/log_pos/copies, the CPU
 *             (registers, pc, sp, mode, flags, pending irq), the block
 *             device (including an in-flight DMA write payload), the
 *             live RAS + BackRAS, thread context, the page/block
 *             geometry, and the unique-page count U;
 *   frame 1   the slot map: one u32 per page then per block naming the
 *             unique page holding that slot's content (0xffffffff for a
 *             null slot) — this is the dedup structure on the wire:
 *             shared content is stored once and referenced many times;
 *   frame 2+i unique page i: a PageEncoding byte, then the raw or RLE
 *             bytes (RLE streams must decode to exactly kPageSize).
 *
 * Process-local fields (mem/disk identity and dirty epochs) are
 * excluded: a deserialized checkpoint never matches a live memory's id,
 * so restore_checkpoint() takes the full-rewrite path — exactly right
 * for a checkpoint arriving from elsewhere.
 *
 * deserialize_checkpoint() is strict and abort-free: truncation,
 * bit-flips, lying counts or lengths, out-of-range slot references, and
 * malformed RLE all land in the Status taxonomy (fuzzed by
 * tools/fuzz_ckpt_image.cc). Serialization is canonical — unique pages
 * appear in first-use order — so serialize(deserialize(serialize(x)))
 * == serialize(x).
 */

namespace rsafe::replay {

struct Checkpoint;

namespace ckpt {

/** Slot-map entry marking a null (never-captured) slot. */
inline constexpr std::uint32_t kNullSlot = 0xffffffffu;

/** Cap on num_pages + num_blocks: rejects lying geometries before any
 *  allocation sized by them (a 4M-slot map is a 16 MiB frame, inside the
 *  wire format's 64 MiB frame bound). */
inline constexpr std::uint64_t kMaxImageSlots = 1ull << 22;

/** Cap on RAS entries (live or per thread) and on tracked threads. */
inline constexpr std::uint64_t kMaxImageRasEntries = 1ull << 20;

/** Encode @p checkpoint as a kCheckpointImage wire image. */
std::vector<std::uint8_t> serialize_checkpoint(const Checkpoint& checkpoint);

/**
 * Strict parse of @p bytes into @p out. On success @p out is a complete
 * checkpoint (mem/disk identity zeroed); on failure @p out is
 * unspecified and the Status says where decoding stopped.
 */
Status deserialize_checkpoint(const std::vector<std::uint8_t>& bytes,
                              Checkpoint* out);

}  // namespace ckpt
}  // namespace rsafe::replay

#endif  // RSAFE_REPLAY_CKPT_STORE_CKPT_IMAGE_H_
