#include "replay/ckpt_store/ckpt_image.h"

#include <cstring>
#include <map>
#include <utility>

#include "isa/encoding.h"
#include "replay/checkpoint.h"
#include "replay/ckpt_store/compress.h"
#include "replay/ckpt_store/page_pool.h"
#include "rnr/wire.h"

namespace rsafe::replay::ckpt {

namespace {

namespace wire = rnr::wire;

// ---------------------------------------------------------------------
// Little-endian field helpers (the meta frame is a flat u8/u32/u64
// stream; the strict cursor makes every read bounds-checked).

void
put_u32(std::vector<std::uint8_t>* out, std::uint32_t value)
{
    for (int i = 0; i < 4; ++i)
        out->push_back(static_cast<std::uint8_t>((value >> (8 * i)) & 0xff));
}

void
put_u64(std::vector<std::uint8_t>* out, std::uint64_t value)
{
    for (int i = 0; i < 8; ++i)
        out->push_back(static_cast<std::uint8_t>((value >> (8 * i)) & 0xff));
}

void
put_flag(std::vector<std::uint8_t>* out, bool value)
{
    put_u64(out, value ? 1 : 0);
}

/** Bounds-checked reader over one frame's payload. */
class Cursor {
  public:
    Cursor(const std::uint8_t* data, std::size_t len)
        : data_(data), len_(len)
    {
    }

    std::size_t remaining() const { return len_ - pos_; }

    Status u32(std::uint32_t* out)
    {
        if (remaining() < 4)
            return truncated("u32");
        *out = 0;
        for (int i = 0; i < 4; ++i)
            *out |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
        pos_ += 4;
        return Status();
    }

    Status u64(std::uint64_t* out)
    {
        if (remaining() < 8)
            return truncated("u64");
        *out = 0;
        for (int i = 0; i < 8; ++i)
            *out |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
        pos_ += 8;
        return Status();
    }

    /** A u64 that must be exactly 0 or 1 (strict boolean). */
    Status flag(bool* out)
    {
        std::uint64_t value = 0;
        if (const Status status = u64(&value); !status.ok())
            return status;
        if (value > 1)
            return Status(StatusCode::kMalformedRecord,
                          strcat_args("checkpoint image flag is ", value,
                                      ", want 0 or 1"));
        *out = value != 0;
        return Status();
    }

    Status bytes(std::uint8_t* out, std::size_t n)
    {
        if (remaining() < n)
            return truncated("byte run");
        std::memcpy(out, data_ + pos_, n);
        pos_ += n;
        return Status();
    }

    Status done() const
    {
        if (pos_ != len_)
            return Status(StatusCode::kMalformedRecord,
                          strcat_args("checkpoint image frame has ",
                                      len_ - pos_, " trailing bytes"));
        return Status();
    }

  private:
    Status truncated(const char* what) const
    {
        return Status(StatusCode::kMalformedRecord,
                      strcat_args("checkpoint image field (", what,
                                  ") overruns its frame"));
    }

    const std::uint8_t* data_;
    std::size_t len_;
    std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------
// SavedRas encoding.

void
put_saved_ras(std::vector<std::uint8_t>* out, const cpu::SavedRas& ras)
{
    put_u64(out, ras.entries.size());
    for (const auto& entry : ras.entries) {
        put_u64(out, entry.addr);
        put_flag(out, entry.restored);
    }
}

Status
get_saved_ras(Cursor* cursor, cpu::SavedRas* out)
{
    std::uint64_t count = 0;
    if (const Status status = cursor->u64(&count); !status.ok())
        return status;
    // Every entry is 16 bytes; a count the frame cannot possibly hold is
    // a lying length, rejected before the reserve below can OOM.
    if (count > kMaxImageRasEntries || count * 16 > cursor->remaining())
        return Status(StatusCode::kMalformedRecord,
                      strcat_args("checkpoint image claims ", count,
                                  " RAS entries, frame cannot hold them"));
    out->entries.clear();
    out->entries.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
        cpu::RasEntry entry;
        if (const Status status = cursor->u64(&entry.addr); !status.ok())
            return status;
        if (const Status status = cursor->flag(&entry.restored);
            !status.ok())
            return status;
        out->entries.push_back(entry);
    }
    return Status();
}

// ---------------------------------------------------------------------
// The meta frame (frame 0).

std::vector<std::uint8_t>
encode_meta(const Checkpoint& ck, std::uint64_t unique_count)
{
    std::vector<std::uint8_t> meta;
    put_u64(&meta, ck.id);
    put_u64(&meta, ck.icount);
    put_u64(&meta, ck.cycles);
    put_u64(&meta, ck.log_pos);
    put_u64(&meta, ck.copies);

    put_u64(&meta, isa::kNumRegs);
    for (const Word reg : ck.cpu_state.regs)
        put_u64(&meta, reg);
    put_u64(&meta, ck.cpu_state.pc);
    put_u64(&meta, ck.cpu_state.sp);
    put_u64(&meta, static_cast<std::uint64_t>(ck.cpu_state.mode));
    put_flag(&meta, ck.cpu_state.iflag);
    put_flag(&meta, ck.cpu_state.halted);
    put_u64(&meta, ck.pending_irq ? 0x100u + *ck.pending_irq : 0);

    put_flag(&meta, ck.blockdev.busy);
    put_flag(&meta, ck.blockdev.is_read);
    put_u64(&meta, ck.blockdev.block);
    put_u64(&meta, ck.blockdev.guest_addr);
    put_u64(&meta, ck.blockdev.cmd_block);
    put_u64(&meta, ck.blockdev.cmd_addr);
    put_u64(&meta, ck.blockdev.write_payload.size());
    meta.insert(meta.end(), ck.blockdev.write_payload.begin(),
                ck.blockdev.write_payload.end());

    put_saved_ras(&meta, ck.ras);
    put_u64(&meta, ck.backras.size());
    for (const auto& [tid, saved] : ck.backras) {
        put_u64(&meta, tid);
        put_saved_ras(&meta, saved);
    }
    put_u64(&meta, ck.current_tid);
    put_flag(&meta, ck.have_current_tid);
    put_flag(&meta, ck.context_dying);

    put_u64(&meta, ck.pages.size());
    put_u64(&meta, ck.blocks.size());
    put_u64(&meta, unique_count);
    return meta;
}

Status
decode_meta(const std::uint8_t* data, std::size_t len, Checkpoint* out,
            std::uint64_t* unique_count)
{
    Cursor cursor(data, len);
    Status status;
    if (!(status = cursor.u64(&out->id)).ok())
        return status;
    if (!(status = cursor.u64(&out->icount)).ok())
        return status;
    if (!(status = cursor.u64(&out->cycles)).ok())
        return status;
    std::uint64_t log_pos = 0;
    if (!(status = cursor.u64(&log_pos)).ok())
        return status;
    out->log_pos = static_cast<std::size_t>(log_pos);
    std::uint64_t copies = 0;
    if (!(status = cursor.u64(&copies)).ok())
        return status;
    out->copies = static_cast<std::size_t>(copies);

    std::uint64_t num_regs = 0;
    if (!(status = cursor.u64(&num_regs)).ok())
        return status;
    if (num_regs != isa::kNumRegs)
        return Status(StatusCode::kMalformedRecord,
                      strcat_args("checkpoint image has ", num_regs,
                                  " registers, want ", isa::kNumRegs));
    for (auto& reg : out->cpu_state.regs)
        if (!(status = cursor.u64(&reg)).ok())
            return status;
    if (!(status = cursor.u64(&out->cpu_state.pc)).ok())
        return status;
    if (!(status = cursor.u64(&out->cpu_state.sp)).ok())
        return status;
    std::uint64_t mode = 0;
    if (!(status = cursor.u64(&mode)).ok())
        return status;
    if (mode > static_cast<std::uint64_t>(cpu::Mode::kKernel))
        return Status(StatusCode::kMalformedRecord,
                      strcat_args("checkpoint image mode ", mode,
                                  " is not a privilege mode"));
    out->cpu_state.mode = static_cast<cpu::Mode>(mode);
    if (!(status = cursor.flag(&out->cpu_state.iflag)).ok())
        return status;
    if (!(status = cursor.flag(&out->cpu_state.halted)).ok())
        return status;
    std::uint64_t irq = 0;
    if (!(status = cursor.u64(&irq)).ok())
        return status;
    if (irq == 0) {
        out->pending_irq.reset();
    } else if (irq >= 0x100 && irq <= 0x1ff) {
        out->pending_irq = static_cast<std::uint8_t>(irq - 0x100);
    } else {
        return Status(StatusCode::kMalformedRecord,
                      strcat_args("checkpoint image pending irq ", irq,
                                  " out of range"));
    }

    if (!(status = cursor.flag(&out->blockdev.busy)).ok())
        return status;
    if (!(status = cursor.flag(&out->blockdev.is_read)).ok())
        return status;
    if (!(status = cursor.u64(&out->blockdev.block)).ok())
        return status;
    if (!(status = cursor.u64(&out->blockdev.guest_addr)).ok())
        return status;
    if (!(status = cursor.u64(&out->blockdev.cmd_block)).ok())
        return status;
    if (!(status = cursor.u64(&out->blockdev.cmd_addr)).ok())
        return status;
    std::uint64_t payload_len = 0;
    if (!(status = cursor.u64(&payload_len)).ok())
        return status;
    if (payload_len > cursor.remaining())
        return Status(StatusCode::kMalformedRecord,
                      strcat_args("checkpoint image DMA payload of ",
                                  payload_len, " bytes overruns its frame"));
    out->blockdev.write_payload.resize(
        static_cast<std::size_t>(payload_len));
    if (payload_len > 0 &&
        !(status = cursor.bytes(out->blockdev.write_payload.data(),
                                static_cast<std::size_t>(payload_len)))
             .ok())
        return status;

    if (!(status = get_saved_ras(&cursor, &out->ras)).ok())
        return status;
    std::uint64_t backras_count = 0;
    if (!(status = cursor.u64(&backras_count)).ok())
        return status;
    // A thread entry is at least 16 bytes (tid + empty-RAS count).
    if (backras_count > kMaxImageRasEntries ||
        backras_count * 16 > cursor.remaining())
        return Status(StatusCode::kMalformedRecord,
                      strcat_args("checkpoint image claims ", backras_count,
                                  " BackRAS threads, frame cannot hold"
                                  " them"));
    out->backras.clear();
    ThreadId prev_tid = 0;
    for (std::uint64_t i = 0; i < backras_count; ++i) {
        std::uint64_t tid = 0;
        if (!(status = cursor.u64(&tid)).ok())
            return status;
        if (tid > 0xffffffffull)
            return Status(StatusCode::kMalformedRecord,
                          strcat_args("checkpoint image tid ", tid,
                                      " overflows ThreadId"));
        // std::map iteration order is ascending, so a canonical image
        // lists threads strictly ascending; anything else is a lying or
        // duplicated entry.
        if (i > 0 && static_cast<ThreadId>(tid) <= prev_tid)
            return Status(StatusCode::kMalformedRecord,
                          "checkpoint image BackRAS threads out of order");
        prev_tid = static_cast<ThreadId>(tid);
        cpu::SavedRas saved;
        if (!(status = get_saved_ras(&cursor, &saved)).ok())
            return status;
        out->backras.emplace(prev_tid, std::move(saved));
    }
    std::uint64_t current_tid = 0;
    if (!(status = cursor.u64(&current_tid)).ok())
        return status;
    if (current_tid > 0xffffffffull)
        return Status(StatusCode::kMalformedRecord,
                      "checkpoint image current tid overflows ThreadId");
    out->current_tid = static_cast<ThreadId>(current_tid);
    if (!(status = cursor.flag(&out->have_current_tid)).ok())
        return status;
    if (!(status = cursor.flag(&out->context_dying)).ok())
        return status;

    std::uint64_t num_pages = 0;
    std::uint64_t num_blocks = 0;
    if (!(status = cursor.u64(&num_pages)).ok())
        return status;
    if (!(status = cursor.u64(&num_blocks)).ok())
        return status;
    if (num_pages > kMaxImageSlots || num_blocks > kMaxImageSlots ||
        num_pages + num_blocks > kMaxImageSlots)
        return Status(StatusCode::kMalformedRecord,
                      strcat_args("checkpoint image geometry ", num_pages,
                                  "+", num_blocks, " slots exceeds the ",
                                  kMaxImageSlots, "-slot bound"));
    out->pages = StoredPageTable(static_cast<std::size_t>(num_pages));
    out->blocks = StoredPageTable(static_cast<std::size_t>(num_blocks));
    if (!(status = cursor.u64(unique_count)).ok())
        return status;
    // Every unique page must be referenced by a slot, so U can never
    // exceed the slot count (and a canonical image needs U frames).
    if (*unique_count > num_pages + num_blocks)
        return Status(StatusCode::kMalformedRecord,
                      strcat_args("checkpoint image claims ", *unique_count,
                                  " unique pages for ",
                                  num_pages + num_blocks, " slots"));
    return cursor.done();
}

}  // namespace

std::vector<std::uint8_t>
serialize_checkpoint(const Checkpoint& checkpoint)
{
    // Unique pages in first-use order (slot walk: pages, then blocks).
    // The pool already collapsed equal content into shared StoredPages,
    // so pointer identity is content identity here.
    std::map<const StoredPage*, std::uint32_t> unique_index;
    std::vector<const StoredPage*> uniques;
    std::vector<std::uint8_t> slot_map;
    slot_map.reserve((checkpoint.pages.size() + checkpoint.blocks.size()) *
                     4);
    const auto add_slot = [&](const StoredPageRef& ref) {
        if (!ref) {
            put_u32(&slot_map, kNullSlot);
            return;
        }
        const auto [it, inserted] = unique_index.emplace(
            ref.get(), static_cast<std::uint32_t>(uniques.size()));
        if (inserted)
            uniques.push_back(ref.get());
        put_u32(&slot_map, it->second);
    };
    for (std::uint64_t i = 0; i < checkpoint.pages.size(); ++i)
        add_slot(checkpoint.pages.at(i));
    for (std::uint64_t i = 0; i < checkpoint.blocks.size(); ++i)
        add_slot(checkpoint.blocks.at(i));

    const std::vector<std::uint8_t> meta =
        encode_meta(checkpoint, uniques.size());

    std::vector<std::uint8_t> out;
    wire::Header header;
    header.kind = wire::PayloadKind::kCheckpointImage;
    header.frame_count = 2 + uniques.size();
    wire::encode_header(header, &out);
    wire::append_frame(0, meta.data(), meta.size(), &out);
    wire::append_frame(1, slot_map.data(), slot_map.size(), &out);
    std::vector<std::uint8_t> frame;
    for (std::size_t i = 0; i < uniques.size(); ++i) {
        const StoredPage* page = uniques[i];
        frame.clear();
        frame.push_back(static_cast<std::uint8_t>(page->encoding()));
        frame.insert(frame.end(), page->encoded().begin(),
                     page->encoded().end());
        wire::append_frame(static_cast<std::uint32_t>(2 + i), frame.data(),
                           frame.size(), &out);
    }
    return out;
}

Status
deserialize_checkpoint(const std::vector<std::uint8_t>& bytes,
                       Checkpoint* out)
{
    *out = Checkpoint();
    std::uint64_t unique_count = 0;
    std::vector<StoredPageRef> uniques;
    std::vector<std::uint32_t> slots;
    bool saw_meta = false;
    bool saw_slots = false;

    const wire::LoadReport report = wire::read_frames(
        bytes, wire::PayloadKind::kCheckpointImage,
        [&](std::uint64_t seq, std::size_t offset, std::size_t length) {
            const std::uint8_t* frame = bytes.data() + offset;
            if (seq == 0) {
                const Status status =
                    decode_meta(frame, length, out, &unique_count);
                if (status.ok())
                    saw_meta = true;
                return status;
            }
            if (!saw_meta)
                return Status(StatusCode::kMalformedRecord,
                              "checkpoint image frame before its meta");
            if (seq == 1) {
                const std::uint64_t slot_count =
                    out->pages.size() + out->blocks.size();
                if (length != slot_count * 4) {
                    return Status(
                        StatusCode::kMalformedRecord,
                        strcat_args("checkpoint image slot map is ",
                                    length, " bytes, want ",
                                    slot_count * 4));
                }
                slots.resize(static_cast<std::size_t>(slot_count));
                for (std::size_t i = 0; i < slots.size(); ++i) {
                    std::uint32_t value = 0;
                    for (int b = 0; b < 4; ++b)
                        value |= static_cast<std::uint32_t>(
                                     frame[i * 4 + b])
                                 << (8 * b);
                    if (value != kNullSlot && value >= unique_count) {
                        return Status(
                            StatusCode::kMalformedRecord,
                            strcat_args("checkpoint image slot ", i,
                                        " references unique page ", value,
                                        " of ", unique_count));
                    }
                    slots[i] = value;
                }
                saw_slots = true;
                return Status();
            }
            if (!saw_slots)
                return Status(StatusCode::kMalformedRecord,
                              "checkpoint image page before its slot map");
            if (seq - 2 >= unique_count)
                return Status(StatusCode::kMalformedRecord,
                              strcat_args("checkpoint image has more than ",
                                          unique_count, " unique pages"));
            if (length < 1)
                return Status(StatusCode::kMalformedRecord,
                              "checkpoint image page frame is empty");
            const auto encoding = static_cast<PageEncoding>(frame[0]);
            std::vector<std::uint8_t> encoded(frame + 1, frame + length);
            std::uint8_t raw[kPageSize];
            if (encoding == PageEncoding::kRaw) {
                if (encoded.size() != kPageSize) {
                    return Status(
                        StatusCode::kMalformedRecord,
                        strcat_args("checkpoint image raw page is ",
                                    encoded.size(), " bytes, want ",
                                    kPageSize));
                }
                std::memcpy(raw, encoded.data(), kPageSize);
            } else if (encoding == PageEncoding::kRle) {
                const Status status = rle_decompress(
                    encoded.data(), encoded.size(), raw, kPageSize);
                if (!status.ok())
                    return status;
            } else {
                return Status(StatusCode::kMalformedRecord,
                              strcat_args("checkpoint image page encoding ",
                                          frame[0], " is unknown"));
            }
            uniques.push_back(std::make_shared<const StoredPage>(
                encoding, std::move(encoded),
                wire::fnv1a64(raw, kPageSize),
                wire::crc32c(raw, kPageSize)));
            return Status();
        });
    if (!report.intact())
        return report.status;
    if (!saw_meta || !saw_slots)
        return Status(StatusCode::kMalformedRecord,
                      "checkpoint image is missing its meta or slot map");
    if (uniques.size() != unique_count) {
        return Status(StatusCode::kTruncated,
                      strcat_args("checkpoint image has ", uniques.size(),
                                  " of ", unique_count, " unique pages"));
    }

    for (std::size_t i = 0; i < slots.size(); ++i) {
        if (slots[i] == kNullSlot)
            continue;
        const StoredPageRef& ref = uniques[slots[i]];
        if (i < out->pages.size())
            out->pages.set(i, ref);
        else
            out->blocks.set(i - out->pages.size(), ref);
    }
    return Status();
}

}  // namespace rsafe::replay::ckpt
