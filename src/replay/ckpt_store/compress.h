#ifndef RSAFE_REPLAY_CKPT_STORE_COMPRESS_H_
#define RSAFE_REPLAY_CKPT_STORE_COMPRESS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/status.h"

/**
 * @file
 * Byte-run-length page codec for checkpoint storage.
 *
 * Guest pages are mostly zeros (and disk blocks mostly repeat), so a
 * byte-oriented RLE gets order-of-magnitude reductions without pulling in
 * a real compressor. The stream is a sequence of tokens:
 *
 *   control c in [0x00, 0x7f]: literal run — the next c+1 bytes are
 *       copied verbatim;
 *   control c in [0x80, 0xff]: repeat run — the next byte is repeated
 *       (c - 0x80) + kMinRun times, i.e. runs of 4..131 bytes.
 *
 * Runs shorter than kMinRun are cheaper as literals, so the encoder never
 * emits them and the format never needs a run length below 4. Decoding is
 * fully bounds-checked and must produce exactly the advertised output
 * length: a stream that overruns its input, overflows the output, or
 * stops short is malformed, never UB — these bytes arrive over the wire
 * (PayloadKind::kCheckpointImage) and are fuzzed.
 */

namespace rsafe::replay::ckpt {

/** Shortest run worth a repeat token (and the repeat-length bias). */
inline constexpr std::size_t kMinRun = 4;

/** Longest run one repeat token can carry. */
inline constexpr std::size_t kMaxRun = kMinRun + 0x7f;

/**
 * RLE-encode @p len bytes at @p data. The encoding round-trips exactly
 * (rle_decompress(rle_compress(x)) == x) and is canonical: the encoder is
 * deterministic, so equal inputs produce equal streams.
 */
std::vector<std::uint8_t> rle_compress(const std::uint8_t* data,
                                       std::size_t len);

/**
 * Decode @p len bytes at @p data into exactly @p out_len bytes at @p out.
 * Any defect — truncated token, output overflow, trailing input, or a
 * stream producing fewer than @p out_len bytes — is kMalformedRecord.
 */
Status rle_decompress(const std::uint8_t* data, std::size_t len,
                      std::uint8_t* out, std::size_t out_len);

}  // namespace rsafe::replay::ckpt

#endif  // RSAFE_REPLAY_CKPT_STORE_COMPRESS_H_
