#ifndef RSAFE_REPLAY_CKPT_STORE_PAGE_POOL_H_
#define RSAFE_REPLAY_CKPT_STORE_PAGE_POOL_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "mem/page_table.h"

/**
 * @file
 * Content-hash page dedup pool for checkpoint storage.
 *
 * The CowStore shares *unmodified* pages between consecutive checkpoints
 * by reference; the pool extends that to pages with *equal content*
 * anywhere in the chain. A freshly dirtied page that reverted to an
 * earlier value, or the thousands of identical zero pages in the initial
 * full checkpoint, intern to one StoredPage shared by every checkpoint
 * that holds it — so successive checkpoints own only their genuinely new
 * bytes (Section 4.6.1's recycling made byte-accurate).
 *
 * Pages are keyed by (FNV-1a 64, CRC32C) of their raw content and a hit
 * is confirmed with a full byte compare, so a hash collision can never
 * silently alias two different pages. Stored pages are RLE-compressed
 * (compress.h) unless that would grow them — or unless compression is
 * disabled, the RSAFE_NO_CKPT_COMPRESS A/B lever.
 *
 * Thread contract: intern() is called from one thread (the CR); the
 * returned refs may be dropped from any thread (AR workers, the
 * writeback thread), so the live-byte accounting rides in atomics
 * updated by the pages' deleters.
 */

namespace rsafe::replay::ckpt {

/** How a StoredPage keeps its bytes. */
enum class PageEncoding : std::uint8_t {
    kRaw = 0,  ///< kPageSize verbatim bytes
    kRle = 1,  ///< rle_compress() stream decoding to kPageSize bytes
};

/** One immutable, deduplicated, possibly-compressed page or disk block. */
class StoredPage {
  public:
    /**
     * @param encoding  how @p bytes are encoded (kRle streams must decode
     *                  to exactly kPageSize bytes — the constructors'
     *                  callers validate this).
     * @param hash      FNV-1a 64 of the raw (decoded) content.
     * @param crc       CRC32C of the raw (decoded) content.
     */
    StoredPage(PageEncoding encoding, std::vector<std::uint8_t> bytes,
               std::uint64_t hash, std::uint32_t crc);

    /** Decode the page into @p out (exactly kPageSize bytes). */
    void copy_to(std::uint8_t* out) const;

    /** @return true if the raw content equals @p data (kPageSize bytes). */
    bool content_equals(const std::uint8_t* data) const;

    PageEncoding encoding() const { return encoding_; }
    const std::vector<std::uint8_t>& encoded() const { return bytes_; }
    std::size_t stored_bytes() const { return bytes_.size(); }
    std::uint64_t content_hash() const { return hash_; }
    std::uint32_t content_crc() const { return crc_; }

  private:
    PageEncoding encoding_;
    std::vector<std::uint8_t> bytes_;
    std::uint64_t hash_;
    std::uint32_t crc_;
};

/** Shared reference to an immutable stored page. */
using StoredPageRef = std::shared_ptr<const StoredPage>;

/** The checkpoint page/block map shape. */
using StoredPageTable = mem::BasicPageTable<StoredPageRef>;

/** PagePool configuration. */
struct PagePoolOptions {
    /** Share equal-content pages (off = every intern stores a copy). */
    bool dedup = true;
    /** RLE-compress stored pages (off = raw; the A/B lever). */
    bool compress = true;
};

/** Byte-accurate accounting of one pool (read any time). */
struct PagePoolStats {
    /** intern() calls — what a raw page-copy store would have copied. */
    std::uint64_t pages_interned = 0;
    /** Interns satisfied by an existing equal-content page. */
    std::uint64_t dedup_hits = 0;
    /** pages_interned * kPageSize: the raw cost basis. */
    std::uint64_t bytes_raw = 0;
    /** Cumulative encoded bytes of the unique pages actually stored. */
    std::uint64_t bytes_stored = 0;
    /** Unique stored pages that won from compression. */
    std::uint64_t compressed_pages = 0;
    /** Encoded bytes of stored pages still referenced somewhere. */
    std::uint64_t live_bytes = 0;
    /** Stored pages still referenced somewhere. */
    std::uint64_t live_pages = 0;
};

/** Content-hash dedup + compression front-end for checkpoint pages. */
class PagePool {
  public:
    explicit PagePool(const PagePoolOptions& options = {});

    /**
     * Store the kPageSize bytes at @p data, returning the pooled page:
     * an existing StoredPage with equal content when dedup finds one,
     * a freshly encoded page otherwise.
     */
    StoredPageRef intern(const std::uint8_t* data);

    PagePoolStats stats() const;

  private:
    /** Live accounting shared with page deleters (outlives the pool). */
    struct Live {
        std::atomic<std::uint64_t> bytes{0};
        std::atomic<std::uint64_t> pages{0};
    };

    PagePoolOptions options_;
    std::shared_ptr<Live> live_;
    /** hash -> pages with that content hash (collision bucket). */
    std::unordered_map<std::uint64_t,
                       std::vector<std::weak_ptr<const StoredPage>>>
        index_;
    PagePoolStats totals_;
};

}  // namespace rsafe::replay::ckpt

#endif  // RSAFE_REPLAY_CKPT_STORE_PAGE_POOL_H_
