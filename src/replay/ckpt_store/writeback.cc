#include "replay/ckpt_store/writeback.h"

#include <algorithm>
#include <utility>

#include "common/log.h"
#include "replay/checkpoint.h"
#include "replay/ckpt_store/ckpt_image.h"

namespace rsafe::replay::ckpt {

CkptWriteback::CkptWriteback(Sink sink, const WritebackOptions& options)
    : sink_(std::move(sink)), options_(options)
{
    if (sink_ == nullptr) panic("CkptWriteback needs a sink");
    if (options_.capacity == 0) panic("CkptWriteback capacity must be > 0");
    worker_ = std::thread([this] { worker_main(); });
}

CkptWriteback::~CkptWriteback() { close(); }

void CkptWriteback::submit(std::shared_ptr<const Checkpoint> checkpoint)
{
    if (checkpoint == nullptr) return;
    std::unique_lock<std::mutex> lock(mu_);
    if (sealed_) return;
    if (queue_.size() >= options_.capacity) {
        ++stats_.producer_waits;
        can_push_.wait(lock, [this] {
            return sealed_ || queue_.size() < options_.capacity;
        });
        if (sealed_) return;
    }
    queue_.push_back(std::move(checkpoint));
    ++stats_.submitted;
    ++in_flight_;
    stats_.max_queued = std::max(stats_.max_queued, queue_.size());
    can_pop_.notify_one();
}

void CkptWriteback::close()
{
    {
        std::unique_lock<std::mutex> lock(mu_);
        sealed_ = true;
        if (joined_) return;
        joined_ = true;
    }
    can_pop_.notify_all();
    can_push_.notify_all();
    worker_.join();
}

void CkptWriteback::abandon()
{
    {
        std::unique_lock<std::mutex> lock(mu_);
        sealed_ = true;
        stats_.dropped += queue_.size();
        in_flight_ -= queue_.size();
        queue_.clear();
        if (joined_) return;
        joined_ = true;
    }
    can_pop_.notify_all();
    can_push_.notify_all();
    worker_.join();
}

std::size_t CkptWriteback::lag() const
{
    std::unique_lock<std::mutex> lock(mu_);
    return in_flight_;
}

WritebackStats CkptWriteback::stats() const
{
    std::unique_lock<std::mutex> lock(mu_);
    return stats_;
}

void CkptWriteback::worker_main()
{
    for (;;) {
        std::shared_ptr<const Checkpoint> next;
        {
            std::unique_lock<std::mutex> lock(mu_);
            can_pop_.wait(lock,
                          [this] { return sealed_ || !queue_.empty(); });
            if (queue_.empty()) return;  // sealed and drained (or abandoned)
            next = std::move(queue_.front());
            queue_.pop_front();
            can_push_.notify_one();
        }
        std::vector<std::uint8_t> image = serialize_checkpoint(*next);
        std::size_t bytes = image.size();
        sink_(next, std::move(image));
        {
            std::unique_lock<std::mutex> lock(mu_);
            ++stats_.written;
            stats_.bytes_written += bytes;
            --in_flight_;
        }
    }
}

}  // namespace rsafe::replay::ckpt
