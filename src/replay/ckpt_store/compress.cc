#include "replay/ckpt_store/compress.h"

#include <cstring>
#include <string>

namespace rsafe::replay::ckpt {

namespace {

/** Length of the byte run starting at @p i (capped at kMaxRun). */
std::size_t
run_length(const std::uint8_t* data, std::size_t len, std::size_t i)
{
    const std::uint8_t value = data[i];
    std::size_t n = 1;
    while (n < kMaxRun && i + n < len && data[i + n] == value)
        ++n;
    return n;
}

}  // namespace

std::vector<std::uint8_t>
rle_compress(const std::uint8_t* data, std::size_t len)
{
    std::vector<std::uint8_t> out;
    out.reserve(len / 8);
    std::size_t i = 0;
    while (i < len) {
        const std::size_t run = run_length(data, len, i);
        if (run >= kMinRun) {
            out.push_back(static_cast<std::uint8_t>(0x80 + (run - kMinRun)));
            out.push_back(data[i]);
            i += run;
            continue;
        }
        // Literal: extend until the next worthwhile run (or 128 bytes).
        const std::size_t begin = i;
        std::size_t n = 0;
        while (i < len && n < 0x80) {
            if (run_length(data, len, i) >= kMinRun)
                break;
            ++i;
            ++n;
        }
        out.push_back(static_cast<std::uint8_t>(n - 1));
        out.insert(out.end(), data + begin, data + begin + n);
    }
    return out;
}

Status
rle_decompress(const std::uint8_t* data, std::size_t len, std::uint8_t* out,
               std::size_t out_len)
{
    std::size_t in = 0;
    std::size_t produced = 0;
    while (in < len) {
        const std::uint8_t control = data[in++];
        if (control < 0x80) {
            const std::size_t n = static_cast<std::size_t>(control) + 1;
            if (len - in < n)
                return Status(StatusCode::kMalformedRecord,
                              "rle literal token overruns the input");
            if (out_len - produced < n)
                return Status(StatusCode::kMalformedRecord,
                              "rle literal token overflows the page");
            std::memcpy(out + produced, data + in, n);
            in += n;
            produced += n;
            continue;
        }
        const std::size_t n =
            static_cast<std::size_t>(control - 0x80) + kMinRun;
        if (in >= len)
            return Status(StatusCode::kMalformedRecord,
                          "rle repeat token overruns the input");
        if (out_len - produced < n)
            return Status(StatusCode::kMalformedRecord,
                          "rle repeat token overflows the page");
        std::memset(out + produced, data[in++], n);
        produced += n;
    }
    if (produced != out_len) {
        return Status(StatusCode::kMalformedRecord,
                      "rle stream produced " + std::to_string(produced) +
                          " bytes, want " + std::to_string(out_len));
    }
    return Status();
}

}  // namespace rsafe::replay::ckpt
