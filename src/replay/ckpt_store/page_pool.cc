#include "replay/ckpt_store/page_pool.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "common/log.h"
#include "replay/ckpt_store/compress.h"
#include "rnr/wire.h"

namespace rsafe::replay::ckpt {

namespace wire = rnr::wire;

StoredPage::StoredPage(PageEncoding encoding,
                       std::vector<std::uint8_t> bytes, std::uint64_t hash,
                       std::uint32_t crc)
    : encoding_(encoding), bytes_(std::move(bytes)), hash_(hash), crc_(crc)
{
}

void
StoredPage::copy_to(std::uint8_t* out) const
{
    if (encoding_ == PageEncoding::kRaw) {
        std::memcpy(out, bytes_.data(), kPageSize);
        return;
    }
    // Streams are validated before a StoredPage is built (by the encoder
    // round-trip invariant or the image decoder), so failure here means
    // internal state corruption, not bad input.
    const Status status =
        rle_decompress(bytes_.data(), bytes_.size(), out, kPageSize);
    if (!status.ok())
        panic("StoredPage: invalid rle stream: " + status.message());
}

bool
StoredPage::content_equals(const std::uint8_t* data) const
{
    if (encoding_ == PageEncoding::kRaw)
        return std::memcmp(bytes_.data(), data, kPageSize) == 0;
    std::uint8_t raw[kPageSize];
    copy_to(raw);
    return std::memcmp(raw, data, kPageSize) == 0;
}

PagePool::PagePool(const PagePoolOptions& options)
    : options_(options), live_(std::make_shared<Live>())
{
}

StoredPageRef
PagePool::intern(const std::uint8_t* data)
{
    ++totals_.pages_interned;
    totals_.bytes_raw += kPageSize;
    const std::uint64_t hash = wire::fnv1a64(data, kPageSize);
    const std::uint32_t crc = wire::crc32c(data, kPageSize);

    std::vector<std::weak_ptr<const StoredPage>>* bucket = nullptr;
    if (options_.dedup) {
        bucket = &index_[hash];
        // Drop entries whose pages were recycled, and look for a live
        // equal-content page. The CRC pre-check plus the byte compare
        // makes a hash collision a miss, never an aliasing bug.
        bucket->erase(std::remove_if(bucket->begin(), bucket->end(),
                                     [](const auto& weak) {
                                         return weak.expired();
                                     }),
                      bucket->end());
        for (const auto& weak : *bucket) {
            const StoredPageRef page = weak.lock();
            if (page && page->content_crc() == crc &&
                page->content_equals(data)) {
                ++totals_.dedup_hits;
                return page;
            }
        }
    }

    PageEncoding encoding = PageEncoding::kRaw;
    std::vector<std::uint8_t> bytes;
    if (options_.compress) {
        bytes = rle_compress(data, kPageSize);
        if (bytes.size() < kPageSize) {
            encoding = PageEncoding::kRle;
            ++totals_.compressed_pages;
        }
    }
    if (encoding == PageEncoding::kRaw)
        bytes.assign(data, data + kPageSize);

    totals_.bytes_stored += bytes.size();
    live_->bytes.fetch_add(bytes.size(), std::memory_order_relaxed);
    live_->pages.fetch_add(1, std::memory_order_relaxed);
    const auto live = live_;
    StoredPageRef page(
        new StoredPage(encoding, std::move(bytes), hash, crc),
        [live](const StoredPage* p) {
            live->bytes.fetch_sub(p->stored_bytes(),
                                  std::memory_order_relaxed);
            live->pages.fetch_sub(1, std::memory_order_relaxed);
            delete p;
        });
    if (bucket != nullptr)
        bucket->push_back(page);
    return page;
}

PagePoolStats
PagePool::stats() const
{
    PagePoolStats out = totals_;
    out.live_bytes = live_->bytes.load(std::memory_order_relaxed);
    out.live_pages = live_->pages.load(std::memory_order_relaxed);
    return out;
}

}  // namespace rsafe::replay::ckpt
