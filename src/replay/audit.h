#ifndef RSAFE_REPLAY_AUDIT_H_
#define RSAFE_REPLAY_AUDIT_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "replay/alarm_replayer.h"
#include "replay/checkpoint.h"
#include "rnr/log_io.h"

/**
 * @file
 * Execution auditing (Section 3.2): "an execution context can be replayed
 * to audit the code and data state... a general mechanism for identifying
 * security violations by auditing sensitive flows in the system."
 *
 * ExecutionAuditor replays a window of a recorded execution from a
 * retained checkpoint, collecting a kernel-activity profile: which kernel
 * functions were called, how often, and by which threads. This is the
 * replay-side analysis the DOS detector row of Table 1 calls for
 * ("identify reason for low switching frequency") and the forensic
 * building block for "what did the attacker do".
 */

namespace rsafe::replay {

/** The kernel-activity profile of one audited window. */
struct AuditProfile {
    /** Calls per kernel function (empty name = non-function target). */
    std::map<std::string, std::uint64_t> calls_by_function;
    /** Kernel call events per thread. */
    std::map<ThreadId, std::uint64_t> calls_by_thread;
    /** Context switches observed in the window. */
    std::uint64_t context_switches = 0;
    /** Instructions covered by the window. */
    InstrCount instructions = 0;
    /** True if the audit replay converged to the recorded final state
     *  (set only when the caller supplied the expected hash). */
    bool faithful = true;

    /** @return the function with the most calls ("the code that has
     *  dominated the system's execution time"), or empty. */
    std::string dominant_function() const;

    /** Multi-line human-readable rendering, most-called first. */
    std::string to_string() const;
};

/** Replays a log window from a checkpoint and profiles kernel activity. */
class ExecutionAuditor : public AlarmReplayer {
  public:
    /** Same contract as AlarmReplayer: @p vm is restored from
     *  @p checkpoint; tracing of kernel call/ret is forced on. */
    ExecutionAuditor(hv::Vm* vm, const rnr::InputLog* log,
                     const Checkpoint& checkpoint,
                     const rnr::ReplayOptions& options = {});

    /** Replay to the end of the log and return the profile. */
    AuditProfile audit();

    void on_call_ret(const cpu::CallRetEvent& event) override;

  protected:
    void hook_context_switch(ThreadId tid) override;

  private:
    std::map<Addr, std::uint64_t> calls_by_target_;
    std::map<ThreadId, std::uint64_t> calls_by_thread_;
    std::uint64_t switches_ = 0;
    InstrCount start_icount_ = 0;
};

}  // namespace rsafe::replay

#endif  // RSAFE_REPLAY_AUDIT_H_
