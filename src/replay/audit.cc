#include "replay/audit.h"

#include <algorithm>
#include <sstream>

namespace rsafe::replay {

std::string
AuditProfile::dominant_function() const
{
    std::string best;
    std::uint64_t best_count = 0;
    for (const auto& [name, count] : calls_by_function) {
        if (!name.empty() && count > best_count) {
            best = name;
            best_count = count;
        }
    }
    return best;
}

std::string
AuditProfile::to_string() const
{
    std::vector<std::pair<std::string, std::uint64_t>> rows(
        calls_by_function.begin(), calls_by_function.end());
    std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
        return a.second > b.second;
    });
    std::ostringstream os;
    os << "audited " << instructions << " instructions, "
       << context_switches << " context switches\n";
    for (const auto& [name, count] : rows) {
        os << "  " << count << "  "
           << (name.empty() ? "<non-function target>" : name) << "\n";
    }
    return os.str();
}

ExecutionAuditor::ExecutionAuditor(hv::Vm* vm, const rnr::InputLog* log,
                                   const Checkpoint& checkpoint,
                                   const rnr::ReplayOptions& options)
    : AlarmReplayer(vm, log, checkpoint, options),
      start_icount_(checkpoint.icount)
{
}

void
ExecutionAuditor::on_call_ret(const cpu::CallRetEvent& event)
{
    AlarmReplayer::on_call_ret(event);
    if (event.is_call) {
        ++calls_by_target_[event.target];
        ++calls_by_thread_[shadow().current()];
    }
}

void
ExecutionAuditor::hook_context_switch(ThreadId tid)
{
    AlarmReplayer::hook_context_switch(tid);
    ++switches_;
}

AuditProfile
ExecutionAuditor::audit()
{
    // AlarmReplayer::run stops only at a target alarm; the auditor sets
    // none, so the replay covers the whole remaining log.
    (void)run();

    AuditProfile profile;
    const auto& image = vm_->guest_kernel().image;
    for (const auto& [target, count] : calls_by_target_)
        profile.calls_by_function[image.function_at(target)] += count;
    profile.calls_by_thread = calls_by_thread_;
    profile.context_switches = switches_;
    profile.instructions = vm_->cpu().icount() - start_icount_;
    return profile;
}

}  // namespace rsafe::replay
