#ifndef RSAFE_REPLAY_SHADOW_RAS_H_
#define RSAFE_REPLAY_SHADOW_RAS_H_

#include <cstdint>
#include <map>
#include <unordered_set>
#include <vector>

#include "common/types.h"
#include "cpu/ras.h"

/**
 * @file
 * The alarm replayer's software RAS: "an unbounded RAS is modeled in
 * software, with our extensions for multithreading and non-procedural
 * returns" (Section 4.6.2). This is the kernel-compatible shadow stack of
 * Table 1, kept per thread (multithreading), honoring the whitelists
 * (non-procedural returns), never overflowing (no eviction), and able to
 * recognize imperfect nesting by unwinding to a deeper matching entry.
 *
 * Because an alarm replay starts mid-execution from a checkpoint, each
 * thread's stack is initialized from the checkpoint's BackRAS; entries
 * the hardware had already evicted are reconstructed from the Evict
 * records in the log.
 */

namespace rsafe::replay {

/** Verdict of the software RAS at one return instruction. */
enum class RetVerdict {
    kMatch,              ///< top of the shadow stack matched the target
    kWhitelistOk,        ///< whitelisted non-procedural return, legal target
    kWhitelistViolation, ///< whitelisted return with an illegal target
    kImperfectNesting,   ///< target matched a deeper entry (e.g., longjmp)
    kUnderflowBenign,    ///< empty stack, but an Evict record explains it
    kRopDetected,        ///< mismatch explainable only as a hijacked return
};

/** @return a short name for @p verdict. */
const char* ret_verdict_name(RetVerdict verdict);

/** Unbounded per-thread software return-address stack. */
class ShadowRas {
  public:
    ShadowRas(std::unordered_set<Addr> ret_whitelist,
              std::unordered_set<Addr> tar_whitelist);

    /** Initialize thread @p tid's stack from a saved (Back)RAS. */
    void init_thread(ThreadId tid, const cpu::SavedRas& saved);

    /** A context switch: subsequent calls/returns belong to @p tid. */
    void switch_to(ThreadId tid) { current_ = tid; }

    /** @return the thread the shadow stack is currently tracking. */
    ThreadId current() const { return current_; }

    /** A call pushed @p link (the fall-through return address). */
    void on_call(Addr link);

    /**
     * A return at @p ret_pc is transferring to @p target; classify it.
     * @param expected  out: the entry the shadow stack predicted (0 if
     *                  none was available).
     */
    RetVerdict on_ret(Addr ret_pc, Addr target, Addr* expected);

    /**
     * An Evict record from the log: the hardware dropped @p addr from the
     * bottom of thread @p tid's RAS. Remembered so deep underflows can be
     * verified.
     */
    void note_evict(ThreadId tid, Addr addr);

    /** @return current depth of thread @p tid's stack. */
    std::size_t depth(ThreadId tid) const;

    /**
     * @return how many threads have shadow state, whether seeded from a
     * checkpoint BackRAS or observed making calls during replay.
     */
    std::size_t num_threads() const { return stacks_.size(); }

  private:
    std::unordered_set<Addr> ret_whitelist_;
    std::unordered_set<Addr> tar_whitelist_;
    std::map<ThreadId, std::vector<Addr>> stacks_;
    std::map<ThreadId, std::vector<Addr>> evicted_;  ///< oldest first
    ThreadId current_ = 0;
};

}  // namespace rsafe::replay

#endif  // RSAFE_REPLAY_SHADOW_RAS_H_
