#include "replay/checkpoint_replayer.h"

#include "common/log.h"
#include "obs/trace.h"

namespace rsafe::replay {

using cpu::Costs;

namespace {

CheckpointStoreOptions
store_options(const CrOptions& options)
{
    CheckpointStoreOptions store;
    store.max_keep = options.max_checkpoints;
    store.byte_budget = options.checkpoint_byte_budget;
    return store;
}

}  // namespace

CheckpointReplayer::CheckpointReplayer(hv::Vm* vm, const rnr::InputLog* log,
                                       const CrOptions& options)
    : rnr::Replayer(vm, log, 0, options.replay), cr_options_(options),
      store_(store_options(options))
{
    take_initial_checkpoint();
}

CheckpointReplayer::CheckpointReplayer(hv::Vm* vm, rnr::LogSource* source,
                                       const CrOptions& options)
    : rnr::Replayer(vm, source, 0, options.replay), cr_options_(options),
      store_(store_options(options))
{
    take_initial_checkpoint();
}

void
CheckpointReplayer::take_initial_checkpoint()
{
    if (cr_options_.checkpoint_interval > 0) {
        // The initial full checkpoint: the baseline every later
        // incremental checkpoint chains from. Not charged to the replay
        // (it amounts to having the initial VM image on hand).
        const auto ck = store_.take(*vm_, *this, log_pos());
        last_checkpoint_cycles_ = vm_->cpu().cycles();
        if (cr_options_.writeback)
            cr_options_.writeback->submit(ck);
    }
}

void
CheckpointReplayer::maybe_checkpoint()
{
    if (cr_options_.checkpoint_interval == 0)
        return;
    auto& cpu = vm_->cpu();
    if (cpu.cycles() - last_checkpoint_cycles_ <
        cr_options_.checkpoint_interval) {
        return;
    }
    obs::ScopedSpan span("cr.checkpoint", "cr");
    const auto ck = store_.take(*vm_, *this, log_pos());
    const Cycles cost = Costs::kPageCopy * ck->copies;
    cpu.add_cycles(cost);
    overhead_.chk += cost;
    last_checkpoint_cycles_ = cpu.cycles();
    ++checkpoints_taken_;
    if (cr_options_.writeback)
        cr_options_.writeback->submit(ck);
    obs::Tracer::instance().instant("cr.checkpoint.taken", "cr", "copies",
                                    ck->copies);
    publish_occupancy();
}

void
CheckpointReplayer::set_health_probe(obs::HealthProbe* probe)
{
    rnr::Replayer::set_health_probe(probe);
    publish_occupancy();
}

void
CheckpointReplayer::publish_occupancy()
{
    if (health_probe_ == nullptr)
        return;
    // CheckpointStore::stats() is CR-thread state; mirroring it into the
    // probe here (on the CR thread, after each take) is what lets the
    // monitor read occupancy mid-run without racing the store.
    health_probe_->ckpt_live_bytes.store(store_.stats().live_bytes,
                                         std::memory_order_relaxed);
    health_probe_->ckpt_budget_bytes.store(
        cr_options_.checkpoint_byte_budget, std::memory_order_relaxed);
}

void
CheckpointReplayer::hook_exit_boundary()
{
    maybe_checkpoint();
}

bool
CheckpointReplayer::hook_positional_record(const rnr::LogRecord& record)
{
    if (record.type == rnr::RecordType::kRasEvict) {
        evicts_[record.tid].push_back(record.addr);
        return true;
    }
    if (record.type != rnr::RecordType::kRasAlarm &&
        record.type != rnr::RecordType::kDetectorAlarm)
        return true;

    // Underflow alarms: match against the latest Evict record from the
    // same thread (Section 4.6.2). A match proves the hardware merely ran
    // out of RAS depth; the entry is consumed and the alarm discarded.
    // (Detector alarms carry no RAS kind and always go to an AR.)
    if (record.type == rnr::RecordType::kRasAlarm &&
        record.alarm.kind == cpu::RasAlarmKind::kUnderflow) {
        auto it = evicts_.find(record.tid);
        if (it != evicts_.end() && !it->second.empty() &&
            it->second.back() == record.alarm.actual) {
            it->second.pop_back();
            ++underflows_resolved_;
            obs::Tracer::instance().instant("cr.underflow_resolved", "cr",
                                            "icount", record.icount);
            return true;
        }
    }

    // Anything else needs a full alarm replay, launched from the most
    // recent checkpoint.
    PendingAlarm pending;
    pending.log_index = log_pos() - 1;  // hook runs just after the cursor
    pending.record = record;
    pending.checkpoint = store_.latest();
    pending.queued_at_cycles = vm_->cpu().cycles();

    // Flow tail: the arrow from here to the AR worker that classifies
    // this alarm, keyed by its log index. The enclosing mini-span gives
    // Perfetto a slice to bind the flow event to.
    auto& tracer = obs::Tracer::instance();
    if (tracer.enabled()) {
        obs::ScopedSpan span("cr.alarm_pending", "alarm");
        tracer.flow_start("alarm", "alarm", pending.log_index);
        tracer.instant("cr.alarm", "alarm", "log_index",
                       pending.log_index);
    }

    pending_.push_back(std::move(pending));
    if (health_probe_ != nullptr)
        health_probe_->alarms_queued.fetch_add(1, std::memory_order_relaxed);
    if (alarm_sink_)
        alarm_sink_(pending_.back());
    return true;
}

}  // namespace rsafe::replay
