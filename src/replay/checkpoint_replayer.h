#ifndef RSAFE_REPLAY_CHECKPOINT_REPLAYER_H_
#define RSAFE_REPLAY_CHECKPOINT_REPLAYER_H_

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "replay/checkpoint.h"
#include "replay/ckpt_store/writeback.h"
#include "rnr/replayer.h"

/**
 * @file
 * The Checkpointing Replayer (Section 4.6.1).
 *
 * Runs all the time at roughly recording speed, deterministically
 * re-executing the log while taking periodic incremental checkpoints.
 * It additionally resolves RAS-underflow alarms itself by matching them
 * against Evict records ("it is simpler if the CR handles this special
 * case itself", Section 4.6.2); every other alarm is queued together
 * with the checkpoint immediately preceding it, ready for an alarm
 * replayer to be launched.
 */

namespace rsafe::replay {

/** CheckpointReplayer configuration. */
struct CrOptions {
    rnr::ReplayOptions replay;
    /** Cycles between checkpoints (0 disables checkpointing). */
    Cycles checkpoint_interval = 10'000'000;
    /** Checkpoints retained (0 = unlimited history). */
    std::size_t max_checkpoints = 8;
    /** Byte budget for stored checkpoint pages (0 = unlimited); see
     *  CheckpointStoreOptions::byte_budget. */
    std::uint64_t checkpoint_byte_budget = 0;
    /** Optional async writeback: every sealed checkpoint is submitted to
     *  this channel (not owned; must outlive the CR). Serialization
     *  happens on the writeback worker, off the replay critical path. */
    ckpt::CkptWriteback* writeback = nullptr;
};

/** An alarm the CR could not resolve itself. */
struct PendingAlarm {
    std::size_t log_index = 0;  ///< index of the alarm record in the log
    rnr::LogRecord record;
    /** The checkpoint immediately preceding the alarm (AR start point). */
    std::shared_ptr<const Checkpoint> checkpoint;
    /**
     * The CR's replay cycle clock when the alarm was queued. A pure
     * function of the log, so it is deterministic across runs and
     * pipeline shapes; the fleet's scheduling model uses it as the job's
     * arrival time when computing alarm-to-verdict latency.
     */
    Cycles queued_at_cycles = 0;
};

/** The always-on checkpointing replayer. */
class CheckpointReplayer : public rnr::Replayer {
  public:
    CheckpointReplayer(hv::Vm* vm, const rnr::InputLog* log,
                       const CrOptions& options);

    /** Streaming variant: consume records on the fly from @p source
     *  (a LogReader draining the recorder's channel, Figure 1's arrow). */
    CheckpointReplayer(hv::Vm* vm, rnr::LogSource* source,
                       const CrOptions& options);

    /** Checkpoints taken so far. */
    CheckpointStore& checkpoints() { return store_; }
    const CheckpointStore& checkpoints() const { return store_; }

    /** Alarms awaiting alarm-replayer analysis. */
    const std::vector<PendingAlarm>& pending_alarms() const
    {
        return pending_;
    }

    /**
     * Install a callback fired (on the CR's thread, mid-replay) for every
     * alarm queued to pending_alarms(). This is the stage-detachment
     * hook: a fleet session forwards each alarm to the shared worker
     * pool as soon as the CR reaches it, instead of batching all alarm
     * replays behind the CR's completion.
     */
    using AlarmSink = std::function<void(const PendingAlarm&)>;
    void set_alarm_sink(AlarmSink sink) { alarm_sink_ = std::move(sink); }

    /** Underflow alarms auto-resolved by Evict matching. */
    std::uint64_t underflows_resolved() const
    {
        return underflows_resolved_;
    }

    /** Checkpoints taken (excluding the initial full one). */
    std::uint64_t checkpoints_taken() const { return checkpoints_taken_; }

    /** Cycles spent copying checkpoint pages/blocks. */
    Cycles checkpoint_cycles() const { return overhead().chk; }

    /** The writeback channel wired in via CrOptions (may be null). */
    ckpt::CkptWriteback* writeback() const { return cr_options_.writeback; }

    /**
     * Attach the live health probe: publishes the current store
     * occupancy immediately and refreshes it after every checkpoint,
     * and counts queued alarms. All relaxed stores on paths the CR
     * already executes — no new synchronization.
     */
    void set_health_probe(obs::HealthProbe* probe) override;

  protected:
    bool hook_positional_record(const rnr::LogRecord& record) override;
    void hook_exit_boundary() override;

  private:
    void take_initial_checkpoint();
    void maybe_checkpoint();
    void publish_occupancy();

    CrOptions cr_options_;
    CheckpointStore store_;
    Cycles last_checkpoint_cycles_ = 0;
    std::uint64_t checkpoints_taken_ = 0;
    std::uint64_t underflows_resolved_ = 0;
    /** Per-thread outstanding Evict records (oldest first). */
    std::map<ThreadId, std::vector<Addr>> evicts_;
    std::vector<PendingAlarm> pending_;
    AlarmSink alarm_sink_;
};

}  // namespace rsafe::replay

#endif  // RSAFE_REPLAY_CHECKPOINT_REPLAYER_H_
