#include "replay/checkpoint.h"

#include <algorithm>

#include "common/log.h"

namespace rsafe::replay {

CheckpointStore::CheckpointStore(std::size_t max_keep) : max_keep_(max_keep)
{
}

std::shared_ptr<const Checkpoint>
CheckpointStore::take(hv::Vm& vm, const hv::VmEnvBase& env,
                      std::size_t log_pos)
{
    auto ck = std::make_shared<Checkpoint>();
    ck->id = next_id_++;

    auto& mem = vm.mem();
    auto& disk = vm.hub().disk();
    const auto prev = latest();

    if (!prev) {
        // First checkpoint: full copy.
        ck->pages = mem::PageTable(mem.num_pages());
        ck->blocks = mem::PageTable(disk.num_blocks());
        for (Addr page = 0; page < mem.num_pages(); ++page) {
            ck->pages.set(page, cow_.store(mem.page_data(page)));
            ++ck->copies;
        }
        for (BlockNum block = 0; block < disk.num_blocks(); ++block) {
            ck->blocks.set(block, cow_.store(disk.block_data(block)));
            ++ck->copies;
        }
    } else {
        // Incremental: share unmodified pages with the previous
        // checkpoint and copy only what was dirtied in this interval.
        // Assigning a PageTable shares its chunks, so this is O(dirty),
        // not O(all pages).
        ck->pages = prev->pages;
        ck->blocks = prev->blocks;
        for (const Addr page : mem.dirty_pages()) {
            ck->pages.set(page, cow_.store(mem.page_data(page)));
            ++ck->copies;
        }
        for (const BlockNum block : disk.dirty_blocks()) {
            ck->blocks.set(block, cow_.store(disk.block_data(block)));
            ++ck->copies;
        }
    }
    mem.clear_dirty();
    disk.clear_dirty();
    ck->mem_id = mem.id();
    ck->mem_epoch = mem.epoch();
    ck->disk_id = disk.id();
    ck->disk_epoch = disk.epoch();

    auto& cpu = vm.cpu();
    ck->cpu_state = cpu.state();
    ck->cycles = cpu.cycles();
    ck->icount = cpu.icount();
    ck->pending_irq = cpu.vmcs().pending_irq;
    ck->blockdev = vm.hub().blockdev().export_state();
    ck->log_pos = log_pos;

    // The hardware dumps the RAS at checkpoint time so the checkpoint
    // holds the complete, up-to-date BackRAS (Section 4.6.1).
    ck->ras = cpu.ras().peek();
    ck->backras = env.backras().entries();
    ck->current_tid = env.current_tid();
    ck->have_current_tid = env.have_current_tid();
    ck->context_dying = env.context_dying();

    checkpoints_.push_back(ck);
    if (max_keep_ != 0) {
        while (checkpoints_.size() > max_keep_)
            checkpoints_.pop_front();
    }
    return ck;
}

std::shared_ptr<const Checkpoint>
CheckpointStore::latest() const
{
    return checkpoints_.empty() ? nullptr : checkpoints_.back();
}

std::shared_ptr<const Checkpoint>
CheckpointStore::latest_at_or_before(InstrCount icount) const
{
    const auto it = std::upper_bound(
        checkpoints_.begin(), checkpoints_.end(), icount,
        [](InstrCount value, const std::shared_ptr<const Checkpoint>& ck) {
            return value < ck->icount;
        });
    if (it == checkpoints_.begin())
        return nullptr;
    return *(it - 1);
}

std::shared_ptr<const Checkpoint>
CheckpointStore::at(std::size_t i) const
{
    if (i >= checkpoints_.size())
        panic("CheckpointStore::at out of range");
    return checkpoints_[i];
}

void
restore_checkpoint(const Checkpoint& checkpoint, hv::Vm* vm,
                   hv::VmEnvBase* env)
{
    auto& mem = vm->mem();
    auto& disk = vm->hub().disk();
    if (checkpoint.pages.size() != mem.num_pages() ||
        checkpoint.blocks.size() != disk.num_blocks()) {
        fatal("restore_checkpoint: VM geometry mismatch");
    }
    // When rolling back the same memory the checkpoint was taken from,
    // a page can only differ from the checkpointed copy if it was
    // dirtied in this or a later epoch; everything older is untouched
    // RAM and need not be rewritten (or decode-cache invalidated).
    const bool mem_delta = checkpoint.mem_id == mem.id();
    for (Addr page = 0; page < checkpoint.pages.size(); ++page) {
        if (mem_delta && mem.page_epoch(page) < checkpoint.mem_epoch)
            continue;
        mem.restore_page(page, checkpoint.pages.at(page)->data());
    }
    const bool disk_delta = checkpoint.disk_id == disk.id();
    for (BlockNum block = 0; block < checkpoint.blocks.size(); ++block) {
        if (disk_delta && disk.block_epoch(block) < checkpoint.disk_epoch)
            continue;
        disk.write_block(block, checkpoint.blocks.at(block)->data());
    }
    mem.clear_dirty();
    disk.clear_dirty();

    auto& cpu = vm->cpu();
    cpu.state() = checkpoint.cpu_state;
    cpu.set_clocks(checkpoint.cycles, checkpoint.icount);
    cpu.vmcs().pending_irq = checkpoint.pending_irq;
    vm->hub().blockdev().import_state(checkpoint.blockdev);

    cpu.ras().load(checkpoint.ras);
    env->backras().restore(checkpoint.backras);
    env->restore_context(checkpoint.current_tid,
                         checkpoint.have_current_tid,
                         checkpoint.context_dying);
}

}  // namespace rsafe::replay
