#include "replay/checkpoint.h"

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "common/log.h"
#include "obs/trace.h"
#include "rnr/wire.h"

namespace rsafe::replay {

namespace {

CheckpointStoreOptions
with_kill_switch(CheckpointStoreOptions options)
{
    if (std::getenv("RSAFE_NO_CKPT_COMPRESS") != nullptr)
        options.compress = false;
    return options;
}

CheckpointStoreOptions
options_for_max_keep(std::size_t max_keep)
{
    CheckpointStoreOptions options;
    options.max_keep = max_keep;
    return options;
}

ckpt::PagePoolOptions
pool_options(const CheckpointStoreOptions& options)
{
    ckpt::PagePoolOptions pool;
    pool.dedup = options.dedup;
    pool.compress = options.compress;
    return pool;
}

}  // namespace

CheckpointStore::CheckpointStore(std::size_t max_keep)
    : CheckpointStore(options_for_max_keep(max_keep))
{
}

CheckpointStore::CheckpointStore(const CheckpointStoreOptions& options)
    : options_(with_kill_switch(options)), pool_(pool_options(options_))
{
}

std::shared_ptr<const Checkpoint>
CheckpointStore::take(hv::Vm& vm, const hv::VmEnvBase& env,
                      std::size_t log_pos)
{
    auto ck = std::make_shared<Checkpoint>();
    ck->id = next_id_++;

    auto& mem = vm.mem();
    auto& disk = vm.hub().disk();
    const auto prev = latest();

    if (!prev) {
        // First checkpoint: full copy (the dedup pool collapses the
        // mostly-identical zero pages into a handful of stored bytes).
        ck->pages = ckpt::StoredPageTable(mem.num_pages());
        ck->blocks = ckpt::StoredPageTable(disk.num_blocks());
        for (Addr page = 0; page < mem.num_pages(); ++page) {
            ck->pages.set(page, pool_.intern(mem.page_data(page)));
            ++ck->copies;
        }
        for (BlockNum block = 0; block < disk.num_blocks(); ++block) {
            ck->blocks.set(block, pool_.intern(disk.block_data(block)));
            ++ck->copies;
        }
    } else {
        // Incremental: share unmodified pages with the previous
        // checkpoint and copy only what was dirtied in this interval.
        // Assigning a table shares its chunks, so this is O(dirty),
        // not O(all pages).
        ck->pages = prev->pages;
        ck->blocks = prev->blocks;
        for (const Addr page : mem.dirty_pages()) {
            ck->pages.set(page, pool_.intern(mem.page_data(page)));
            ++ck->copies;
        }
        for (const BlockNum block : disk.dirty_blocks()) {
            ck->blocks.set(block, pool_.intern(disk.block_data(block)));
            ++ck->copies;
        }
    }
    mem.clear_dirty();
    disk.clear_dirty();
    ck->mem_id = mem.id();
    ck->mem_epoch = mem.epoch();
    ck->disk_id = disk.id();
    ck->disk_epoch = disk.epoch();

    auto& cpu = vm.cpu();
    ck->cpu_state = cpu.state();
    ck->cycles = cpu.cycles();
    ck->icount = cpu.icount();
    ck->pending_irq = cpu.vmcs().pending_irq;
    ck->blockdev = vm.hub().blockdev().export_state();
    ck->log_pos = log_pos;

    // The hardware dumps the RAS at checkpoint time so the checkpoint
    // holds the complete, up-to-date BackRAS (Section 4.6.1).
    ck->ras = cpu.ras().peek();
    ck->backras = env.backras().entries();
    ck->current_tid = env.current_tid();
    ck->have_current_tid = env.have_current_tid();
    ck->context_dying = env.context_dying();

    checkpoints_.push_back(ck);
    enforce_budget();
    return ck;
}

void
CheckpointStore::enforce_budget()
{
    if (options_.max_keep != 0) {
        while (checkpoints_.size() > options_.max_keep) {
            checkpoints_.pop_front();
            ++count_evictions_;
        }
    }
    // Recycling a checkpoint frees only the pages no later checkpoint
    // (or in-flight alarm job) still shares, so each pop may reclaim
    // anything from nothing to the checkpoint's whole dirty delta; keep
    // popping until the live encoded bytes fit. The newest checkpoint
    // is never recycled — the budget trims history, not the present.
    if (options_.byte_budget == 0)
        return;
    while (checkpoints_.size() > 1 &&
           pool_.stats().live_bytes > options_.byte_budget) {
        checkpoints_.pop_front();
        ++budget_evictions_;
    }
}

CheckpointStoreStats
CheckpointStore::stats() const
{
    const ckpt::PagePoolStats pool = pool_.stats();
    CheckpointStoreStats out;
    out.bytes_raw = pool.bytes_raw;
    out.bytes_stored = pool.bytes_stored;
    out.dedup_hits = pool.dedup_hits;
    out.compressed_pages = pool.compressed_pages;
    out.live_bytes = pool.live_bytes;
    out.live_pages = pool.live_pages;
    out.budget_evictions = budget_evictions_;
    out.count_evictions = count_evictions_;
    return out;
}

std::shared_ptr<const Checkpoint>
CheckpointStore::latest() const
{
    return checkpoints_.empty() ? nullptr : checkpoints_.back();
}

std::shared_ptr<const Checkpoint>
CheckpointStore::latest_at_or_before(InstrCount icount) const
{
    const auto it = std::upper_bound(
        checkpoints_.begin(), checkpoints_.end(), icount,
        [](InstrCount value, const std::shared_ptr<const Checkpoint>& ck) {
            return value < ck->icount;
        });
    if (it == checkpoints_.begin())
        return nullptr;
    return *(it - 1);
}

std::shared_ptr<const Checkpoint>
CheckpointStore::at(std::size_t i) const
{
    if (i >= checkpoints_.size())
        panic("CheckpointStore::at out of range");
    return checkpoints_[i];
}

void
restore_checkpoint(const Checkpoint& checkpoint, hv::Vm* vm,
                   hv::VmEnvBase* env)
{
    obs::ScopedSpan span("checkpoint.restore", "cr");
    auto& mem = vm->mem();
    auto& disk = vm->hub().disk();
    if (checkpoint.pages.size() != mem.num_pages() ||
        checkpoint.blocks.size() != disk.num_blocks()) {
        fatal("restore_checkpoint: VM geometry mismatch");
    }
    // When rolling back the same memory the checkpoint was taken from,
    // a page can only differ from the checkpointed copy if it was
    // dirtied in this or a later epoch; everything older is untouched
    // RAM and need not be rewritten (or decode-cache invalidated).
    // Stored pages decode through a stack buffer: compressed, deduped,
    // and raw storage all restore the same raw bytes, which the A/B
    // determinism gates hold bit-identical.
    std::uint8_t raw[kPageSize];
    const bool mem_delta = checkpoint.mem_id == mem.id();
    for (Addr page = 0; page < checkpoint.pages.size(); ++page) {
        if (mem_delta && mem.page_epoch(page) < checkpoint.mem_epoch)
            continue;
        const auto& ref = checkpoint.pages.at(page);
        if (!ref)
            continue;  // only possible in a hand-built partial image
        ref->copy_to(raw);
        mem.restore_page(page, raw);
    }
    const bool disk_delta = checkpoint.disk_id == disk.id();
    for (BlockNum block = 0; block < checkpoint.blocks.size(); ++block) {
        if (disk_delta && disk.block_epoch(block) < checkpoint.disk_epoch)
            continue;
        const auto& ref = checkpoint.blocks.at(block);
        if (!ref)
            continue;
        ref->copy_to(raw);
        disk.write_block(block, raw);
    }
    mem.clear_dirty();
    disk.clear_dirty();

    auto& cpu = vm->cpu();
    cpu.state() = checkpoint.cpu_state;
    cpu.set_clocks(checkpoint.cycles, checkpoint.icount);
    cpu.vmcs().pending_irq = checkpoint.pending_irq;
    vm->hub().blockdev().import_state(checkpoint.blockdev);

    cpu.ras().load(checkpoint.ras);
    env->backras().restore(checkpoint.backras);
    env->restore_context(checkpoint.current_tid,
                         checkpoint.have_current_tid,
                         checkpoint.context_dying);
}

namespace {

namespace wire = rnr::wire;

/** Hash one page table's raw contents in index order (nulls included).
 *  Hashing the decoded bytes keeps digests independent of how pages are
 *  stored: compressed, deduped, and raw chains digest identically. */
std::uint64_t
hash_page_table(const ckpt::StoredPageTable& table)
{
    std::uint64_t hash = wire::kFnvOffset;
    std::uint8_t raw[kPageSize];
    for (std::uint64_t i = 0; i < table.size(); ++i) {
        const auto& ref = table.at(i);
        if (!ref) {
            hash = wire::fnv1a64_u64(0x6e756c6cULL /* "null" */, hash);
            continue;
        }
        ref->copy_to(raw);
        hash = wire::fnv1a64(raw, kPageSize, hash);
    }
    return hash;
}

std::uint64_t
hash_saved_ras(const cpu::SavedRas& ras, std::uint64_t hash)
{
    hash = wire::fnv1a64_u64(ras.entries.size(), hash);
    for (const auto& entry : ras.entries) {
        hash = wire::fnv1a64_u64(entry.addr, hash);
        hash = wire::fnv1a64_u64(entry.restored ? 1 : 0, hash);
    }
    return hash;
}

}  // namespace

CheckpointDigest
digest_of(const Checkpoint& checkpoint)
{
    CheckpointDigest digest;
    digest.id = checkpoint.id;
    digest.icount = checkpoint.icount;
    digest.cycles = checkpoint.cycles;
    digest.log_pos = checkpoint.log_pos;

    std::uint64_t cpu = wire::kFnvOffset;
    for (const Word reg : checkpoint.cpu_state.regs)
        cpu = wire::fnv1a64_u64(reg, cpu);
    cpu = wire::fnv1a64_u64(checkpoint.cpu_state.pc, cpu);
    cpu = wire::fnv1a64_u64(checkpoint.cpu_state.sp, cpu);
    cpu = wire::fnv1a64_u64(
        static_cast<std::uint64_t>(checkpoint.cpu_state.mode), cpu);
    cpu = wire::fnv1a64_u64(checkpoint.cpu_state.iflag ? 1 : 0, cpu);
    cpu = wire::fnv1a64_u64(checkpoint.cpu_state.halted ? 1 : 0, cpu);
    cpu = wire::fnv1a64_u64(
        checkpoint.pending_irq ? 0x100u + *checkpoint.pending_irq : 0, cpu);
    digest.cpu_hash = cpu;

    digest.pages_hash = hash_page_table(checkpoint.pages);
    digest.blocks_hash = hash_page_table(checkpoint.blocks);

    std::uint64_t ras = wire::kFnvOffset;
    ras = hash_saved_ras(checkpoint.ras, ras);
    ras = wire::fnv1a64_u64(checkpoint.backras.size(), ras);
    for (const auto& [tid, saved] : checkpoint.backras) {
        ras = wire::fnv1a64_u64(tid, ras);
        ras = hash_saved_ras(saved, ras);
    }
    ras = wire::fnv1a64_u64(checkpoint.current_tid, ras);
    ras = wire::fnv1a64_u64(checkpoint.have_current_tid ? 1 : 0, ras);
    ras = wire::fnv1a64_u64(checkpoint.context_dying ? 1 : 0, ras);
    digest.ras_hash = ras;
    return digest;
}

namespace {

/** Field order of the digest's single wire frame. */
constexpr std::size_t kDigestWords = 8;

void
digest_fields(const CheckpointDigest& digest,
              std::uint64_t (&fields)[kDigestWords])
{
    fields[0] = digest.id;
    fields[1] = digest.icount;
    fields[2] = digest.cycles;
    fields[3] = digest.log_pos;
    fields[4] = digest.cpu_hash;
    fields[5] = digest.pages_hash;
    fields[6] = digest.blocks_hash;
    fields[7] = digest.ras_hash;
}

}  // namespace

std::vector<std::uint8_t>
CheckpointDigest::serialize() const
{
    std::uint64_t fields[kDigestWords];
    digest_fields(*this, fields);
    std::vector<std::uint8_t> payload;
    payload.reserve(kDigestWords * 8);
    for (const std::uint64_t field : fields)
        for (int i = 0; i < 8; ++i)
            payload.push_back(
                static_cast<std::uint8_t>((field >> (8 * i)) & 0xff));

    std::vector<std::uint8_t> out;
    wire::Header header;
    header.kind = wire::PayloadKind::kCheckpointDigest;
    header.frame_count = 1;
    wire::encode_header(header, &out);
    wire::append_frame(0, payload.data(), payload.size(), &out);
    return out;
}

Status
CheckpointDigest::deserialize(const std::vector<std::uint8_t>& bytes,
                              CheckpointDigest* out)
{
    bool seen = false;
    const wire::LoadReport report = wire::read_frames(
        bytes, wire::PayloadKind::kCheckpointDigest,
        [&](std::uint64_t seq, std::size_t offset, std::size_t length) {
            if (seen)
                return Status(StatusCode::kMalformedRecord,
                              "checkpoint digest has more than one frame");
            if (length != kDigestWords * 8) {
                return Status(
                    StatusCode::kMalformedRecord,
                    strcat_args("digest frame is ", length, " bytes, want ",
                                kDigestWords * 8));
            }
            std::uint64_t fields[kDigestWords] = {};
            for (std::size_t w = 0; w < kDigestWords; ++w)
                for (int i = 0; i < 8; ++i)
                    fields[w] |= static_cast<std::uint64_t>(
                                     bytes[offset + w * 8 + i])
                                 << (8 * i);
            out->id = fields[0];
            out->icount = fields[1];
            out->cycles = fields[2];
            out->log_pos = fields[3];
            out->cpu_hash = fields[4];
            out->pages_hash = fields[5];
            out->blocks_hash = fields[6];
            out->ras_hash = fields[7];
            seen = true;
            (void)seq;
            return Status();
        });
    if (!report.intact())
        return report.status;
    if (!seen)
        return Status(StatusCode::kMalformedRecord,
                      "checkpoint digest image has no frame");
    return Status();
}

std::string
CheckpointDigest::to_string() const
{
    std::ostringstream os;
    os << "chk#" << id << " icount=" << icount << " cycles=" << cycles
       << " log_pos=" << log_pos << std::hex << " cpu=0x" << cpu_hash
       << " pages=0x" << pages_hash << " blocks=0x" << blocks_hash
       << " ras=0x" << ras_hash << std::dec;
    return os.str();
}

}  // namespace rsafe::replay
