#include "replay/checkpoint.h"

#include "common/log.h"

namespace rsafe::replay {

CheckpointStore::CheckpointStore(std::size_t max_keep) : max_keep_(max_keep)
{
}

std::shared_ptr<const Checkpoint>
CheckpointStore::take(hv::Vm& vm, const hv::VmEnvBase& env,
                      std::size_t log_pos)
{
    auto ck = std::make_shared<Checkpoint>();
    ck->id = next_id_++;

    auto& mem = vm.mem();
    auto& disk = vm.hub().disk();
    const auto prev = latest();

    if (!prev) {
        // First checkpoint: full copy.
        for (Addr page = 0; page < mem.num_pages(); ++page) {
            ck->pages[page] = cow_.store(mem.page_data(page));
            ++ck->copies;
        }
        for (BlockNum block = 0; block < disk.num_blocks(); ++block) {
            ck->blocks[block] = cow_.store(disk.block_data(block));
            ++ck->copies;
        }
    } else {
        // Incremental: share unmodified pages with the previous
        // checkpoint and copy only what was dirtied in this interval.
        ck->pages = prev->pages;
        ck->blocks = prev->blocks;
        for (const Addr page : mem.dirty_pages()) {
            ck->pages[page] = cow_.store(mem.page_data(page));
            ++ck->copies;
        }
        for (const BlockNum block : disk.dirty_blocks()) {
            ck->blocks[block] = cow_.store(disk.block_data(block));
            ++ck->copies;
        }
    }
    mem.clear_dirty();
    disk.clear_dirty();

    auto& cpu = vm.cpu();
    ck->cpu_state = cpu.state();
    ck->cycles = cpu.cycles();
    ck->icount = cpu.icount();
    ck->pending_irq = cpu.vmcs().pending_irq;
    ck->blockdev = vm.hub().blockdev().export_state();
    ck->log_pos = log_pos;

    // The hardware dumps the RAS at checkpoint time so the checkpoint
    // holds the complete, up-to-date BackRAS (Section 4.6.1).
    ck->ras = cpu.ras().peek();
    ck->backras = env.backras().entries();
    ck->current_tid = env.current_tid();
    ck->have_current_tid = env.have_current_tid();
    ck->context_dying = env.context_dying();

    checkpoints_.push_back(ck);
    if (max_keep_ != 0) {
        while (checkpoints_.size() > max_keep_)
            checkpoints_.pop_front();
    }
    return ck;
}

std::shared_ptr<const Checkpoint>
CheckpointStore::latest() const
{
    return checkpoints_.empty() ? nullptr : checkpoints_.back();
}

std::shared_ptr<const Checkpoint>
CheckpointStore::latest_at_or_before(InstrCount icount) const
{
    std::shared_ptr<const Checkpoint> best;
    for (const auto& ck : checkpoints_) {
        if (ck->icount <= icount)
            best = ck;
    }
    return best;
}

std::shared_ptr<const Checkpoint>
CheckpointStore::at(std::size_t i) const
{
    if (i >= checkpoints_.size())
        panic("CheckpointStore::at out of range");
    return checkpoints_[i];
}

void
restore_checkpoint(const Checkpoint& checkpoint, hv::Vm* vm,
                   hv::VmEnvBase* env)
{
    auto& mem = vm->mem();
    auto& disk = vm->hub().disk();
    if (checkpoint.pages.size() != mem.num_pages() ||
        checkpoint.blocks.size() != disk.num_blocks()) {
        fatal("restore_checkpoint: VM geometry mismatch");
    }
    for (const auto& [page, ref] : checkpoint.pages)
        mem.restore_page(page, ref->data());
    for (const auto& [block, ref] : checkpoint.blocks)
        disk.write_block(block, ref->data());
    mem.clear_dirty();
    disk.clear_dirty();

    auto& cpu = vm->cpu();
    cpu.state() = checkpoint.cpu_state;
    cpu.set_clocks(checkpoint.cycles, checkpoint.icount);
    cpu.vmcs().pending_irq = checkpoint.pending_irq;
    vm->hub().blockdev().import_state(checkpoint.blockdev);

    cpu.ras().load(checkpoint.ras);
    env->backras().restore(checkpoint.backras);
    env->restore_context(checkpoint.current_tid,
                         checkpoint.have_current_tid,
                         checkpoint.context_dying);
}

}  // namespace rsafe::replay
