#ifndef RSAFE_REPLAY_ALARM_REPLAYER_H_
#define RSAFE_REPLAY_ALARM_REPLAYER_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "obs/forensic.h"
#include "replay/checkpoint.h"
#include "replay/shadow_ras.h"
#include "rnr/replayer.h"

/**
 * @file
 * The Alarm Replayer (Section 4.6.2).
 *
 * Launched from the checkpoint immediately preceding an alarm, the AR
 * re-executes the log range while trapping on every (kernel) call and
 * return instruction and modelling an unbounded software RAS initialized
 * from the checkpoint's BackRAS. At the alarm marker it classifies the
 * mismatch: a false positive (imperfect nesting, deep underflow, hardware
 * artifact) or a real ROP — in which case it assembles a forensic report:
 * where the attack happened, which thread mounted it, and the gadget
 * chain sitting on the corrupted stack (Section 6's where/who/what).
 */

namespace rsafe::core {
class DetectorSet;  // core/detector.h; full type not needed here
}  // namespace rsafe::core

namespace rsafe::replay {

/** Classification of an analyzed alarm. */
enum class AlarmCause {
    kRopAttack,         ///< only explainable as a hijacked return
    kImperfectNesting,  ///< longjmp-style unwinding (false positive)
    kBenignUnderflow,   ///< matched an Evict record (false positive)
    kHardwareArtifact,  ///< software RAS predicted correctly (false pos.)
    kWhitelistViolation,///< non-procedural return to an illegal target
    kNeedsDeeperAnalysis, ///< needs a rerun with more instrumentation
    kLogIntegrity,      ///< the input log itself failed integrity checks
    kJopTableMiss,      ///< legal under the full table/policy (false pos.)
    kJopAttack,         ///< stray transfer no table or policy explains
    kCfiTableMiss,      ///< in the static target set, not the hw excerpt
    kCfiHijack,         ///< outside the site's static target set
    kWxJitBenign,       ///< sanctioned JIT-region entry (false positive)
    kWxInjection,       ///< fetched freshly written non-JIT code
    kCheckpointUnavailable, ///< no checkpoint covers the alarm (recycled
                            ///< past it, or checkpointing disabled)
};

/** @return a short name for @p cause. */
const char* alarm_cause_name(AlarmCause cause);

/** The outcome of one alarm replay. */
struct AlarmAnalysis {
    bool is_attack = false;
    AlarmCause cause = AlarmCause::kHardwareArtifact;
    rnr::LogRecord alarm_record;

    // Forensics (meaningful when is_attack).
    ThreadId tid = 0;
    Addr ret_pc = 0;
    Addr actual_target = 0;
    Addr expected_target = 0;
    std::string faulting_function;   ///< function containing the hijacked ret
    std::string call_site_function;  ///< function that made the call
    std::vector<Addr> gadget_chain;  ///< stack words pointing into the kernel
    std::string report;              ///< human-readable summary

    /** The structured where/who/what record (wire-serializable). */
    obs::ForensicReport forensic;

    /** Cycles the alarm replay itself consumed. */
    Cycles analysis_cycles = 0;
};

/** The on-demand alarm replayer. */
class AlarmReplayer : public rnr::Replayer {
  public:
    /**
     * @param vm          a freshly built VM of the same configuration;
     *                    the constructor restores @p checkpoint into it.
     * @param log         the input log.
     * @param checkpoint  the AR's start point.
     * @param options     replay options; trap_kernel_call_ret is forced
     *                    on (that is what an AR is), trap_user_call_ret
     *                    selects the deeper analysis level.
     */
    AlarmReplayer(hv::Vm* vm, const rnr::InputLog* log,
                  const Checkpoint& checkpoint,
                  const rnr::ReplayOptions& options);

    /**
     * Source variant: records come from @p source (e.g. a SliceLogSource
     * holding the [checkpoint, alarm] range a fleet job carries). The
     * source must resolve the same absolute indices as the original log
     * over that range, and must outlive this replayer.
     */
    AlarmReplayer(hv::Vm* vm, rnr::LogSource* source,
                  const Checkpoint& checkpoint,
                  const rnr::ReplayOptions& options);

    /**
     * Replay up to the alarm record at @p alarm_log_index and classify it.
     * kRasAlarm records go through the shadow-RAS analysis; kDetectorAlarm
     * records are routed to the registered detector's classifier (see
     * set_detectors), which runs with the replayed machine stopped exactly
     * at the alarm.
     */
    AlarmAnalysis analyze(std::size_t alarm_log_index);

    /**
     * Register the detector complement whose classifiers resolve
     * kDetectorAlarm records. The set must outlive this replayer; without
     * one, detector alarms classify as benign-unclassified.
     */
    void set_detectors(const core::DetectorSet* detectors)
    {
        detectors_ = detectors;
    }

    /**
     * The paper's shadow-RAS classification of @p record (a kRasAlarm
     * positioned at the stop point). Public so the RopRasDetector can
     * delegate to it through the framework interface.
     */
    AlarmAnalysis classify_ras(const rnr::LogRecord& record)
    {
        return build_analysis(record);
    }

    /** The replayed machine (detector classifiers inspect its state). */
    hv::Vm& vm() { return *vm_; }

    /** The software RAS (exposed for tests). */
    const ShadowRas& shadow() const { return shadow_; }

    void on_call_ret(const cpu::CallRetEvent& event) override;

  protected:
    void hook_context_switch(ThreadId tid) override;
    bool hook_positional_record(const rnr::LogRecord& record) override;

  private:
    static rnr::ReplayOptions force_tracing(rnr::ReplayOptions options);

    /** Shared ctor tail: restore @p checkpoint and seed the shadow RAS. */
    void init_from_checkpoint(const Checkpoint& checkpoint);

    AlarmAnalysis build_analysis(const rnr::LogRecord& record);
    AlarmAnalysis classify_detector(const rnr::LogRecord& record);
    std::vector<Addr> scan_gadget_chain(Addr sp) const;
    void build_forensic(const rnr::LogRecord& record,
                        AlarmAnalysis* analysis) const;

    ShadowRas shadow_;
    const core::DetectorSet* detectors_ = nullptr;

    /** Shadow depth per thread as restored from the checkpoint. */
    std::map<ThreadId, std::size_t> initial_depth_;
    std::size_t target_index_ = ~static_cast<std::size_t>(0);
    Cycles start_cycles_ = 0;

    /** Verdict of the most recent traced return. */
    std::optional<RetVerdict> last_ret_verdict_;
    cpu::CallRetEvent last_ret_event_;
    Addr last_ret_expected_ = 0;
    bool reached_target_ = false;
};

}  // namespace rsafe::replay

#endif  // RSAFE_REPLAY_ALARM_REPLAYER_H_
