#ifndef RSAFE_CORE_AR_STAGE_H_
#define RSAFE_CORE_AR_STAGE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "hv/vm.h"
#include "replay/alarm_replayer.h"
#include "replay/checkpoint_replayer.h"
#include "rnr/log_source.h"
#include "stats/stats.h"

/**
 * @file
 * The detachable alarm-replay stage.
 *
 * One ArStage holds everything needed to turn a PendingAlarm into a
 * verdict: the VM factory, the base replay options, and the active
 * detector complement. It is stateless across calls (every analyze()
 * builds fresh VMs), so a single instance is safely shared by any number
 * of worker threads — the framework's private pool and the fleet's
 * shared work-stealing pool both call the same code.
 *
 * Two log access shapes:
 *  - a finished InputLog (the framework path: alarm replays run after
 *    the recording completed);
 *  - any LogSource resolving the [checkpoint, alarm] range — in the
 *    fleet, a SliceLogSource owning a copy of exactly that range, so a
 *    pool worker never reads a tenant's still-growing log.
 */

namespace rsafe::core {

class DetectorSet;

/** Builds one more identically-configured VM. */
using VmFactory = std::function<std::unique_ptr<hv::Vm>()>;

/** Everything one alarm replay produced (satellite of result.alarms). */
struct AlarmReplayResult {
    /** Index of the alarm record in the input log. */
    std::size_t log_index = 0;
    /** True if the first AR pass lacked instrumentation and a deeper
     *  rerun (user-mode call/ret tracing) produced the final analysis. */
    bool deep_rerun = false;
    /** The final classification, forensics, and report. */
    replay::AlarmAnalysis analysis;
};

/** The alarm-replay stage: PendingAlarm -> AlarmReplayResult. */
class ArStage {
  public:
    /** Geometry of the per-alarm analysis-latency histogram: cycle costs
     *  of one AR replay land in the millions, so a wide range with coarse
     *  buckets keeps the percentiles meaningful without a huge table. */
    static constexpr std::uint64_t kLatencyHistMax = 64u * 1024u * 1024u;
    static constexpr std::size_t kLatencyHistBuckets = 64;

    /**
     * @param factory       builds the AR VMs; must be thread-safe when
     *                      analyze() is called from worker threads.
     * @param base_options  the CR's replay options; analyze() layers the
     *                      AR instrumentation (kernel call/ret traps, and
     *                      user traps for the deep rerun) on top.
     * @param detectors     the active detector complement (may be null);
     *                      must outlive this stage.
     */
    ArStage(VmFactory factory, rnr::ReplayOptions base_options,
            const DetectorSet* detectors);

    /**
     * Launch one alarm replayer (plus the deeper rerun if needed) for
     * @p pending and account it into @p local_stats. Thread-safe.
     *
     * A pending alarm with no checkpoint (checkpointing disabled, or the
     * store recycled past the alarm) yields a clean
     * AlarmCause::kCheckpointUnavailable verdict, never a crash.
     */
    AlarmReplayResult analyze(const replay::PendingAlarm& pending,
                              const rnr::InputLog* log,
                              stats::StatRegistry* local_stats) const;

    /** As above, reading records from @p source (both passes). */
    AlarmReplayResult analyze(const replay::PendingAlarm& pending,
                              rnr::LogSource* source,
                              stats::StatRegistry* local_stats) const;

    /**
     * The remote-AR primitive: boot from a *serialized* checkpoint image
     * (PayloadKind::kCheckpointImage) instead of @p pending's in-memory
     * checkpoint, then run the standard analysis against @p source. A
     * damaged image classifies as kCheckpointUnavailable (with the decode
     * error in the report) — shipping corruption must surface as a
     * verdict, not UB. Counter accounting is identical to analyze(), so
     * shipped and in-memory paths stay A/B bit-identical.
     */
    AlarmReplayResult analyze_image(const replay::PendingAlarm& pending,
                                    const std::vector<std::uint8_t>& image,
                                    rnr::LogSource* source,
                                    stats::StatRegistry* local_stats) const;

  private:
    /** The no-checkpoint verdict shared by the paths above. */
    AlarmReplayResult unavailable(const replay::PendingAlarm& pending,
                                  const std::string& why,
                                  stats::StatRegistry* local_stats) const;
    VmFactory factory_;
    rnr::ReplayOptions base_options_;
    const DetectorSet* detectors_;
};

}  // namespace rsafe::core

#endif  // RSAFE_CORE_AR_STAGE_H_
