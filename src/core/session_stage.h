#ifndef RSAFE_CORE_SESSION_STAGE_H_
#define RSAFE_CORE_SESSION_STAGE_H_

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/ar_stage.h"
#include "hv/vm.h"
#include "replay/checkpoint_replayer.h"
#include "rnr/log_channel.h"
#include "rnr/log_source.h"
#include "rnr/recorder.h"

/**
 * @file
 * The recorder+CR front half of the pipeline as a detachable stage.
 *
 * One SessionStage owns one guest session: the recorded VM with its
 * Recorder, and the checkpointing-replayer VM consuming the log — either
 * streamed through a bounded LogChannel while recording is still in
 * progress (the paper's deployment shape) or back-to-back over the
 * finished log (the serial reference used for determinism A/B testing).
 *
 * What makes it a *stage* rather than a whole pipeline is what it does
 * with alarms: it does not replay them. Every alarm the CR cannot
 * resolve is handed to the installed alarm sink (set_alarm_sink) as soon
 * as the CR reaches it, packaged with an owned copy of the log records
 * between the originating checkpoint and the alarm — a self-contained
 * job any alarm-replay worker can execute without touching this
 * session's log. RnrSafeFramework runs one stage and feeds its own AR
 * pool; ReplayFleet runs N stages over one shared work-stealing pool.
 */

namespace rsafe::core {

class DetectorSet;

/** SessionStage configuration (the front half of FrameworkConfig). */
struct SessionOptions {
    rnr::RecorderOptions recorder;
    replay::CrOptions cr;
    /** Stop the recorded run after this many guest instructions. */
    InstrCount max_instructions = ~static_cast<InstrCount>(0);
    /** Recorder->CR streaming channel shape (streamed mode only). */
    rnr::ChannelOptions channel;
    /** true = stream record->CR on two threads; false = back-to-back. */
    bool streamed = true;
    /**
     * Tenant name used to prefix this session's trace-track names
     * ("<name>.recorder", "<name>.cr"). Empty keeps the bare stage names
     * the single-framework pipeline has always used.
     */
    std::string name;
};

/** What one session run produced (components stay owned by the stage). */
struct SessionResult {
    hv::RunResult record_result = hv::RunResult::kHalted;
    rnr::ReplayOutcome cr_outcome = rnr::ReplayOutcome::kFinished;
    /** Raw alarm markers in the log. */
    std::size_t alarms_logged = 0;
    /** Recorder->CR channel traffic (streamed mode only). */
    rnr::ChannelStats channel_stats;
    /** True if a request_stop() cut recording or replay short. */
    bool stopped = false;
};

/** An alarm-replay job emitted by a session: self-contained. */
struct AlarmJob {
    replay::PendingAlarm pending;
    /**
     * Owned copy of log records [checkpoint.log_pos, pending.log_index]
     * — everything an AlarmReplayer touches, bounded by the checkpoint
     * interval. Feed it to a SliceLogSource for replay.
     */
    std::vector<rnr::LogRecord> slice;
};

/** One guest session: recorder + checkpointing replayer. */
class SessionStage {
  public:
    /**
     * Builds the session's VMs and engines. @p detectors (may be null)
     * is armed on the recorded VM unless the RSAFE_NO_DETECTORS
     * kill-switch is set; run() disarms it when recording finishes.
     */
    SessionStage(VmFactory factory, SessionOptions options,
                 std::shared_ptr<DetectorSet> detectors);

    /**
     * Install the alarm sink, fired on the CR's thread for every alarm
     * the CR queues, mid-replay. Must be called before run().
     */
    using AlarmSink = std::function<void(const AlarmJob&)>;
    void set_alarm_sink(AlarmSink sink) { sink_ = std::move(sink); }

    /** Record + checkpointing-replay this session (blocking). */
    SessionResult run();

    /**
     * Ask a run() in progress to wind down: the recorder stops at its
     * next exit boundary (which closes the stream), and the CR stops at
     * its next positional segment. Callable from any thread.
     */
    void request_stop();

    /** The in-effect detector set (kill-switch applied; may be null). */
    const DetectorSet* active_detectors() const { return active_detectors_; }

    /**
     * Attach the live health probe this session publishes into. Applies
     * to the CR immediately when it already exists (streamed shape) and
     * is re-applied when the sequential shape builds it lazily. Call
     * before run().
     */
    void set_health_probe(obs::HealthProbe* probe);

    /**
     * Live recorder->CR channel statistics (streamed shape; zeros
     * before the channel exists). LogChannel::stats() is mutex-guarded,
     * so the health monitor may call this mid-run.
     */
    rnr::ChannelStats live_channel_stats() const;

    /** Component access (valid until the matching release_*()). @{ */
    hv::Vm* recorded_vm() { return recorded_vm_.get(); }
    rnr::Recorder* recorder() { return recorder_.get(); }
    hv::Vm* cr_vm() { return cr_vm_.get(); }
    replay::CheckpointReplayer* cr() { return cr_.get(); }
    /** @} */

    /** Hand the components over (e.g. into a FrameworkResult). @{ */
    std::unique_ptr<hv::Vm> release_recorded_vm();
    std::unique_ptr<rnr::Recorder> release_recorder();
    std::unique_ptr<hv::Vm> release_cr_vm();
    std::unique_ptr<replay::CheckpointReplayer> release_cr();
    /** @} */

  private:
    SessionResult run_streamed();
    SessionResult run_sequential();

    /** Build the CR (+VM) over @p source and hook up the alarm sink. */
    void build_cr(rnr::LogSource* source);

    /** Wrap sink_: copy the [checkpoint, alarm] slice out of @p source
     *  (on the CR thread) and forward the job. */
    void install_cr_sink(rnr::LogSource* source);

    void disarm_detectors();

    VmFactory factory_;
    SessionOptions options_;
    std::shared_ptr<DetectorSet> detectors_;
    const DetectorSet* active_detectors_ = nullptr;
    bool detectors_armed_ = false;

    AlarmSink sink_;
    bool ran_ = false;
    obs::HealthProbe* health_probe_ = nullptr;

    /** Guards cr_ against a request_stop() racing its lazy build. */
    std::mutex stop_mu_;
    bool stop_flag_ = false;

    std::unique_ptr<hv::Vm> recorded_vm_;
    std::unique_ptr<rnr::Recorder> recorder_;
    std::unique_ptr<rnr::LogChannel> channel_;
    std::unique_ptr<rnr::LogReader> reader_;
    std::unique_ptr<rnr::InputLogSource> seq_source_;
    std::unique_ptr<hv::Vm> cr_vm_;
    std::unique_ptr<replay::CheckpointReplayer> cr_;
};

}  // namespace rsafe::core

#endif  // RSAFE_CORE_SESSION_STAGE_H_
