#ifndef RSAFE_CORE_ROP_DETECTOR_H_
#define RSAFE_CORE_ROP_DETECTOR_H_

#include <cstdint>

#include "cpu/cpu.h"
#include "rnr/recorder.h"

/**
 * @file
 * The ROP detector of Table 1 (row 1): configuration presets for the
 * RAS-based first-line detection hardware and the Figure 8 accounting of
 * kernel false alarms (suppressed by the whitelist, suppressed by the
 * BackRAS, or passed to the replayers).
 */

namespace rsafe::core {

/** Hardware configurations for the RAS-based detector. */
enum class RopHardwareLevel {
    /** Basic design (Section 4.2): RAS alarms with no extensions —
     *  catches everything but floods the replayers with false alarms. */
    kBasic,
    /** + BackRAS save/restore on context switches (Section 4.3). */
    kBackRas,
    /** + the Ret/Tar whitelists (Section 4.4) — the full RnR-Safe. */
    kFull,
};

/** @return recorder options implementing @p level. */
rnr::RecorderOptions rop_recorder_options(RopHardwareLevel level);

/** Kernel false-alarm accounting per million instructions (Figure 8). */
struct FalseAlarmRates {
    double whitelist_suppressed = 0;  ///< non-procedural returns absorbed
    double backras_suppressed = 0;    ///< hits via BackRAS-restored entries
    double passed_to_replayers = 0;   ///< alarms that reached the log
};

/**
 * Compute Figure 8 rates from a recorded run's CPU and hypervisor
 * statistics. @p alarm_count is the number of alarm markers in the log.
 */
FalseAlarmRates false_alarm_rates(const cpu::CpuStats& cpu_stats,
                                  std::uint64_t alarm_count);

}  // namespace rsafe::core

#endif  // RSAFE_CORE_ROP_DETECTOR_H_
