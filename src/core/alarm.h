#ifndef RSAFE_CORE_ALARM_H_
#define RSAFE_CORE_ALARM_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "replay/alarm_replayer.h"

/**
 * @file
 * Alarm aggregation across the RnR-Safe pipeline.
 *
 * The AlarmManager collects the analyses produced by alarm replayers,
 * classifies the run-level verdict (any confirmed attack vs. all alarms
 * explained as false positives), and renders the operator-facing summary.
 */

namespace rsafe::core {

/** Aggregated alarm outcomes of one monitored execution. */
class AlarmManager {
  public:
    /** Record one completed alarm analysis. */
    void add(replay::AlarmAnalysis analysis);

    /** @return all analyses, in analysis order. */
    const std::vector<replay::AlarmAnalysis>& analyses() const
    {
        return analyses_;
    }

    /** @return analyses that confirmed an attack. */
    std::vector<const replay::AlarmAnalysis*> attacks() const;

    /** @return true if any analysis confirmed an attack. */
    bool attack_detected() const;

    /** @return number of alarms classified as @p cause. */
    std::size_t count(replay::AlarmCause cause) const;

    /** @return a multi-line human-readable summary. */
    std::string summary() const;

  private:
    std::vector<replay::AlarmAnalysis> analyses_;
    std::map<replay::AlarmCause, std::size_t> by_cause_;
};

}  // namespace rsafe::core

#endif  // RSAFE_CORE_ALARM_H_
