#include "core/rop_detector.h"

namespace rsafe::core {

rnr::RecorderOptions
rop_recorder_options(RopHardwareLevel level)
{
    rnr::RecorderOptions options;
    options.ras_alarms = true;
    options.evict_exits = true;
    switch (level) {
      case RopHardwareLevel::kBasic:
        options.manage_backras = false;
        options.whitelists = false;
        break;
      case RopHardwareLevel::kBackRas:
        options.manage_backras = true;
        options.whitelists = false;
        break;
      case RopHardwareLevel::kFull:
        options.manage_backras = true;
        options.whitelists = true;
        break;
    }
    return options;
}

FalseAlarmRates
false_alarm_rates(const cpu::CpuStats& cpu_stats, std::uint64_t alarm_count)
{
    FalseAlarmRates rates;
    const double million =
        static_cast<double>(cpu_stats.instructions) / 1e6;
    if (million <= 0)
        return rates;
    rates.whitelist_suppressed =
        static_cast<double>(cpu_stats.ras_whitelisted) / million;
    rates.backras_suppressed =
        static_cast<double>(cpu_stats.ras_hits_restored) / million;
    rates.passed_to_replayers = static_cast<double>(alarm_count) / million;
    return rates;
}

}  // namespace rsafe::core
