#include "core/dos_detector.h"

namespace rsafe::core {

Status
DosDetector::create(Cycles window_cycles, std::uint64_t min_switches,
                    DosDetector* out)
{
    if (window_cycles == 0)
        return {StatusCode::kInvalidArgument, "DosDetector: zero window"};
    DosDetector built;
    built.window_cycles_ = window_cycles;
    built.min_switches_ = min_switches;
    *out = built;
    return {};
}

void
DosDetector::sample(Cycles now, std::uint64_t ctx_switches)
{
    if (!primed_) {
        primed_ = true;
        window_start_ = now;
        switches_at_window_start_ = ctx_switches;
        return;
    }
    if (now - window_start_ < window_cycles_)
        return;
    const std::uint64_t delta = ctx_switches - switches_at_window_start_;
    if (delta < min_switches_) {
        DosAlarm alarm;
        alarm.window_start = window_start_;
        alarm.window_end = now;
        alarm.switches_in_window = delta;
        alarms_.push_back(alarm);
    }
    window_start_ = now;
    switches_at_window_start_ = ctx_switches;
}

}  // namespace rsafe::core
