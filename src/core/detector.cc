#include "core/detector.h"

#include <algorithm>
#include <sstream>

#include "common/log.h"

namespace rsafe::core {

using analysis::Region;

namespace {

/** @return the name of the function containing @p addr in any image. */
std::string
function_at_any(const hv::Vm& vm, Addr addr)
{
    std::string name = vm.guest_kernel().image.function_at(addr);
    if (!name.empty())
        return name;
    for (const isa::Image& image : vm.user_images()) {
        name = image.function_at(addr);
        if (!name.empty())
            return name;
    }
    return name;
}

/** Seed the common fields of a detector verdict. */
replay::AlarmAnalysis
base_analysis(const rnr::LogRecord& record)
{
    replay::AlarmAnalysis analysis;
    analysis.ret_pc = record.alarm.ret_pc;
    analysis.actual_target = record.alarm.actual;
    return analysis;
}

std::string
render_report(const char* detector, const rnr::LogRecord& record,
              const replay::AlarmAnalysis& analysis, const char* detail)
{
    std::ostringstream out;
    out << detector << " alarm @icount " << record.icount << " tid "
        << record.tid << (record.alarm.kernel_mode ? " [kernel]" : " [user]")
        << ": " << replay::alarm_cause_name(analysis.cause) << "\n  site 0x"
        << std::hex << analysis.ret_pc << " -> target 0x"
        << analysis.actual_target << std::dec << "\n  " << detail << "\n";
    return out.str();
}

}  // namespace

const char*
detector_id_name(DetectorId id)
{
    switch (id) {
      case DetectorId::kRopRas: return "rop-ras";
      case DetectorId::kJop: return "jop";
      case DetectorId::kCfi: return "cfi";
      case DetectorId::kWx: return "wx";
    }
    return "<bad>";
}

void
DetectorSet::add(std::unique_ptr<Detector> detector)
{
    if (detector == nullptr)
        fatal("DetectorSet: null detector");
    if (find(detector->id()) != nullptr)
        fatal("DetectorSet: duplicate detector id");
    detectors_.push_back(std::move(detector));
}

const Detector*
DetectorSet::find(DetectorId id) const
{
    for (const auto& detector : detectors_) {
        if (detector->id() == id)
            return detector.get();
    }
    return nullptr;
}

// ---------------------------------------------------------------------------
// RopRasDetector
// ---------------------------------------------------------------------------

replay::AlarmAnalysis
RopRasDetector::classify(const rnr::LogRecord& record,
                         replay::AlarmReplayer& ar) const
{
    return ar.classify_ras(record);
}

// ---------------------------------------------------------------------------
// JopGuardDetector
// ---------------------------------------------------------------------------

JopGuardDetector::JopGuardDetector(
    JopDetector table, std::shared_ptr<const analysis::StaticPolicy> policy)
    : table_(std::move(table)), policy_(std::move(policy))
{
    if (policy_ == nullptr)
        fatal("JopGuardDetector: null policy");
}

void
JopGuardDetector::arm(hv::Vm& vm)
{
    vm.cpu().vmcs().controls.trap_indirect_branch = true;
}

bool
JopGuardDetector::trigger_indirect(Addr pc, Addr target, bool is_call)
{
    (void)is_call;
    return table_.check_hardware(pc, target) == JopVerdict::kAlarm;
}

replay::AlarmAnalysis
JopGuardDetector::classify(const rnr::LogRecord& record,
                           replay::AlarmReplayer& ar) const
{
    replay::AlarmAnalysis analysis = base_analysis(record);
    const Addr site = record.alarm.ret_pc;
    const Addr target = record.alarm.actual;

    const char* detail = nullptr;
    if (table_.check_full(site, target) != JopVerdict::kAlarm) {
        // Legal under the complete function table: the hardware table was
        // merely too small to hold the target's function.
        analysis.cause = replay::AlarmCause::kJopTableMiss;
        detail = "target legal under the full function table";
    } else if (policy_->fallback_contains(target)) {
        // A call continuation / address-taken location the function table
        // cannot express but the static policy sanctions (longjmp).
        analysis.cause = replay::AlarmCause::kJopTableMiss;
        detail = "target is in the static policy fallback set";
    } else if (const Region* jit = policy_->jit_region_of(target)) {
        if (target == jit->begin) {
            analysis.cause = replay::AlarmCause::kJopTableMiss;
            detail = "sanctioned JIT region entry";
        } else {
            analysis.cause = replay::AlarmCause::kJopAttack;
            analysis.is_attack = true;
            detail = "transfer into the middle of a JIT region";
        }
    } else {
        analysis.cause = replay::AlarmCause::kJopAttack;
        analysis.is_attack = true;
        detail = "target outside every known function, fallback target "
                 "and JIT entry";
    }
    analysis.faulting_function = function_at_any(ar.vm(), site);
    analysis.report = render_report("JOP", record, analysis, detail);
    return analysis;
}

// ---------------------------------------------------------------------------
// CfiDetector
// ---------------------------------------------------------------------------

CfiDetector::CfiDetector(std::shared_ptr<const analysis::StaticPolicy> policy)
    : policy_(std::move(policy))
{
    if (policy_ == nullptr)
        fatal("CfiDetector: null policy");
}

void
CfiDetector::arm(hv::Vm& vm)
{
    vm.cpu().vmcs().controls.trap_indirect_branch = true;
}

bool
CfiDetector::in_hardware_subset(const analysis::IndirectSite& site,
                                Addr target) const
{
    // The modeled hardware holds the first kHardwareSlots targets of the
    // (sorted) static set — a bounded, imprecise excerpt of the policy.
    const std::size_t slots = std::min(kHardwareSlots, site.targets.size());
    for (std::size_t i = 0; i < slots; ++i) {
        if (site.targets[i] == target)
            return true;
    }
    return false;
}

bool
CfiDetector::trigger_indirect(Addr pc, Addr target, bool is_call)
{
    (void)is_call;
    const analysis::IndirectSite* site = policy_->find_site(pc);
    if (site == nullptr)
        return true;  // transfer from code the policy has never seen
    if (!site->resolved)
        return false;  // unmonitored site (RAS/JOP cover it)
    return !in_hardware_subset(*site, target);
}

replay::AlarmAnalysis
CfiDetector::classify(const rnr::LogRecord& record,
                      replay::AlarmReplayer& ar) const
{
    replay::AlarmAnalysis analysis = base_analysis(record);
    const Addr site_pc = record.alarm.ret_pc;
    const Addr target = record.alarm.actual;

    const analysis::IndirectSite* site = policy_->find_site(site_pc);
    const char* detail = nullptr;
    if (site == nullptr) {
        analysis.cause = replay::AlarmCause::kCfiHijack;
        analysis.is_attack = true;
        detail = "indirect transfer from code outside the static policy";
    } else if (site->resolved &&
               std::binary_search(site->targets.begin(), site->targets.end(),
                                  target)) {
        // In the full static set, beyond the hardware's few slots.
        analysis.cause = replay::AlarmCause::kCfiTableMiss;
        detail = "target in the full static target set (hardware "
                 "table miss)";
    } else if (!site->resolved && policy_->fallback_contains(target)) {
        analysis.cause = replay::AlarmCause::kCfiTableMiss;
        detail = "unresolved site, target in the fallback set";
    } else {
        analysis.cause = replay::AlarmCause::kCfiHijack;
        analysis.is_attack = true;
        detail = "target outside the site's static target set";
    }
    analysis.faulting_function = function_at_any(ar.vm(), site_pc);
    if (analysis.is_attack) {
        const std::string target_fn = function_at_any(ar.vm(), target);
        analysis.call_site_function = target_fn;
    }
    analysis.report = render_report("CFI", record, analysis, detail);
    return analysis;
}

// ---------------------------------------------------------------------------
// WxDetector
// ---------------------------------------------------------------------------

WxDetector::WxDetector(std::shared_ptr<const analysis::StaticPolicy> policy)
    : policy_(std::move(policy))
{
    if (policy_ == nullptr)
        fatal("WxDetector: null policy");
}

WxDetector::~WxDetector()
{
    disarm();
}

void
WxDetector::disarm()
{
    if (armed_vm_ != nullptr) {
        armed_vm_->mem().remove_code_listener(this);
        armed_vm_ = nullptr;
    }
}

bool
WxDetector::statically_executable(Addr addr) const
{
    for (const Region& region : policy_->code) {
        if (region.contains(addr))
            return true;
    }
    return policy_->jit_region_of(addr) != nullptr;
}

void
WxDetector::arm(hv::Vm& vm)
{
    if (armed_vm_ != nullptr)
        fatal("WxDetector: already armed (build a fresh set per run)");
    armed_vm_ = &vm;
    vm.cpu().vmcs().controls.wx_fetch_exit = true;
    vm.mem().add_code_listener(this);
}

void
WxDetector::on_code_page_touched(Addr page)
{
    // The memory layer bumps generations for every privileged write as
    // well (DMA, checkpoint restore); the watch hardware only covers
    // pages the static W^X map calls executable.
    if (armed_vm_ == nullptr)
        return;
    if (!statically_executable(page * kPageSize))
        return;
    armed_vm_->cpu().vmcs().wx_watch_pages.insert(page);
}

bool
WxDetector::trigger_wx_fetch(Addr pc)
{
    (void)pc;
    return true;  // every fetch from a written executable page alarms
}

replay::AlarmAnalysis
WxDetector::classify(const rnr::LogRecord& record,
                     replay::AlarmReplayer& ar) const
{
    replay::AlarmAnalysis analysis = base_analysis(record);
    const Addr pc = record.alarm.actual;

    const Region* jit = policy_->jit_region_of(pc);
    const char* detail = nullptr;
    if (jit != nullptr && pc == jit->begin) {
        // Sanctioned runtime code generation: the JIT dispatches to its
        // region's published entry point.
        analysis.cause = replay::AlarmCause::kWxJitBenign;
        detail = "fetch enters a declared JIT region at its base";
    } else {
        analysis.cause = replay::AlarmCause::kWxInjection;
        analysis.is_attack = true;
        detail = jit != nullptr
                     ? "fetch lands mid-JIT-region (not the published "
                       "entry)"
                     : "fetch from a written page outside every JIT "
                       "region";
    }
    analysis.faulting_function = function_at_any(ar.vm(), pc);
    analysis.report = render_report("W^X", record, analysis, detail);
    return analysis;
}

// ---------------------------------------------------------------------------
// Standard complement
// ---------------------------------------------------------------------------

std::shared_ptr<DetectorSet>
standard_detectors(const std::vector<const isa::Image*>& images,
                   std::shared_ptr<const analysis::StaticPolicy> policy,
                   std::size_t jop_hardware_slots)
{
    if (policy == nullptr)
        fatal("standard_detectors: null policy");
    JopDetector jop_table;
    if (const Status status =
            JopDetector::create(images, jop_hardware_slots, &jop_table);
        !status.ok()) {
        fatal("standard_detectors: " + status.to_string());
    }
    auto set = std::make_shared<DetectorSet>();
    set->add(std::make_unique<RopRasDetector>());
    set->add(std::make_unique<JopGuardDetector>(std::move(jop_table),
                                                policy));
    set->add(std::make_unique<CfiDetector>(policy));
    set->add(std::make_unique<WxDetector>(std::move(policy)));
    return set;
}

}  // namespace rsafe::core
