#include "core/alarm.h"

#include <sstream>

namespace rsafe::core {

void
AlarmManager::add(replay::AlarmAnalysis analysis)
{
    ++by_cause_[analysis.cause];
    analyses_.push_back(std::move(analysis));
}

std::vector<const replay::AlarmAnalysis*>
AlarmManager::attacks() const
{
    std::vector<const replay::AlarmAnalysis*> out;
    for (const auto& analysis : analyses_)
        if (analysis.is_attack)
            out.push_back(&analysis);
    return out;
}

bool
AlarmManager::attack_detected() const
{
    for (const auto& analysis : analyses_)
        if (analysis.is_attack)
            return true;
    return false;
}

std::size_t
AlarmManager::count(replay::AlarmCause cause) const
{
    auto it = by_cause_.find(cause);
    return it == by_cause_.end() ? 0 : it->second;
}

std::string
AlarmManager::summary() const
{
    std::ostringstream os;
    os << "alarms analyzed: " << analyses_.size() << "\n";
    for (const auto& [cause, count] : by_cause_)
        os << "  " << replay::alarm_cause_name(cause) << ": " << count
           << "\n";
    for (const auto& analysis : analyses_) {
        if (analysis.is_attack)
            os << analysis.report;
    }
    return os.str();
}

}  // namespace rsafe::core
