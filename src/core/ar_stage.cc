#include "core/ar_stage.h"

#include <string>

#include "common/log.h"
#include "core/detector.h"
#include "obs/trace.h"
#include "replay/ckpt_store/ckpt_image.h"

namespace rsafe::core {

ArStage::ArStage(VmFactory factory, rnr::ReplayOptions base_options,
                 const DetectorSet* detectors)
    : factory_(std::move(factory)), base_options_(base_options),
      detectors_(detectors)
{
    if (!factory_)
        fatal("ArStage: null VM factory");
}

AlarmReplayResult
ArStage::analyze(const replay::PendingAlarm& pending,
                 const rnr::InputLog* log,
                 stats::StatRegistry* local_stats) const
{
    rnr::InputLogSource source(log);
    return analyze(pending, &source, local_stats);
}

AlarmReplayResult
ArStage::unavailable(const replay::PendingAlarm& pending,
                     const std::string& why,
                     stats::StatRegistry* local_stats) const
{
    // No checkpoint covers this alarm (interval 0, a byte budget that
    // recycled past it, or a damaged shipped image). The verdict must be
    // a clean record of that fact, not a crash: the alarm stays visible
    // in result.alarms with an explicit cause the operator can act on.
    AlarmReplayResult out;
    out.log_index = pending.log_index;
    out.analysis.is_attack = false;
    out.analysis.cause = replay::AlarmCause::kCheckpointUnavailable;
    out.analysis.alarm_record = pending.record;
    out.analysis.report = "alarm @" + std::to_string(pending.log_index) +
                          ": checkpoint unavailable (" + why + ")";
    local_stats->counter("ar.ckpt_unavailable").inc();
    obs::Tracer::instance().instant("ar.ckpt_unavailable", "ar",
                                    "log_index", pending.log_index);
    return out;
}

AlarmReplayResult
ArStage::analyze_image(const replay::PendingAlarm& pending,
                       const std::vector<std::uint8_t>& image,
                       rnr::LogSource* source,
                       stats::StatRegistry* local_stats) const
{
    auto shipped = std::make_shared<replay::Checkpoint>();
    const Status status =
        replay::ckpt::deserialize_checkpoint(image, shipped.get());
    if (!status.ok())
        return unavailable(pending, "image rejected: " + status.message(),
                           local_stats);
    replay::PendingAlarm booted = pending;
    booted.checkpoint = std::move(shipped);
    return analyze(booted, source, local_stats);
}

AlarmReplayResult
ArStage::analyze(const replay::PendingAlarm& pending,
                 rnr::LogSource* source,
                 stats::StatRegistry* local_stats) const
{
    if (!pending.checkpoint)
        return unavailable(pending, "no checkpoint at or before the alarm",
                           local_stats);
    rnr::ReplayOptions ar_options = base_options_;
    ar_options.trap_kernel_call_ret = true;

    AlarmReplayResult out;
    out.log_index = pending.log_index;

    // Flow head: close the arrow the CR opened when it queued this alarm
    // (same id = the alarm's log index), inside the analysis span so the
    // viewer binds the arrow to this slice.
    obs::ScopedSpan span("ar.analyze", "ar");
    obs::Tracer::instance().flow_finish("alarm", "alarm",
                                        pending.log_index);

    auto ar_vm = factory_();
    replay::AlarmReplayer ar(ar_vm.get(), source, *pending.checkpoint,
                             ar_options);
    ar.set_detectors(detectors_);
    local_stats->counter("ar.replays").inc();
    out.analysis = ar.analyze(pending.log_index);

    if (out.analysis.cause == replay::AlarmCause::kNeedsDeeperAnalysis) {
        // Re-run with more instrumentation (Section 4.6.2): trace
        // user-mode call/ret as well.
        ar_options.trap_user_call_ret = true;
        obs::Tracer::instance().instant("ar.deep_rerun", "ar", "log_index",
                                        pending.log_index);
        auto deep_vm = factory_();
        replay::AlarmReplayer deep_ar(deep_vm.get(), source,
                                      *pending.checkpoint, ar_options);
        deep_ar.set_detectors(detectors_);
        local_stats->counter("ar.replays").inc();
        local_stats->counter("ar.deep_reruns").inc();
        out.analysis = deep_ar.analyze(pending.log_index);
        out.deep_rerun = true;
    }
    if (out.analysis.is_attack)
        local_stats->counter("ar.attacks").inc();
    if (pending.record.type == rnr::RecordType::kDetectorAlarm &&
        detectors_ != nullptr) {
        const Detector* detector = detectors_->find(
            static_cast<DetectorId>(pending.record.value));
        if (detector != nullptr) {
            const std::string prefix =
                std::string("detector.") + detector->name();
            local_stats->counter(prefix + ".replays").inc();
            local_stats
                ->counter(prefix + (out.analysis.is_attack
                                        ? ".attacks"
                                        : ".false_positives"))
                .inc();
        }
    }
    local_stats->counter("ar.analysis_cycles")
        .inc(out.analysis.analysis_cycles);
    local_stats->histogram("ar.analysis_cycles_hist", kLatencyHistMax,
                           kLatencyHistBuckets)
        .sample(out.analysis.analysis_cycles);
    obs::Tracer::instance().instant("ar.verdict", "ar", "is_attack",
                                    out.analysis.is_attack ? 1 : 0);
    return out;
}

}  // namespace rsafe::core
