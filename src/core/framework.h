#ifndef RSAFE_CORE_FRAMEWORK_H_
#define RSAFE_CORE_FRAMEWORK_H_

#include <functional>
#include <memory>

#include "core/alarm.h"
#include "hv/vm.h"
#include "replay/checkpoint_replayer.h"
#include "rnr/recorder.h"

/**
 * @file
 * The RnR-Safe framework facade: the full Figure 1 pipeline.
 *
 * One call to run() performs:
 *  1. monitored recording — a Recorder executes the workload in the
 *     recorded VM with the RAS security hardware armed, producing the
 *     input log with alarm/evict markers;
 *  2. checkpointing replay — a CheckpointReplayer re-executes the log,
 *     takes periodic incremental checkpoints, and auto-resolves
 *     underflow alarms against Evict records;
 *  3. alarm replay — for every remaining alarm, an AlarmReplayer is
 *     launched from the checkpoint preceding it; if the first pass lacks
 *     instrumentation for the alarm's context (a user-mode alarm under
 *     kernel-only tracing), the AR is re-run at the deeper analysis
 *     level, exactly as Section 4.6.2 envisions.
 *
 * The caller supplies a VmFactory that builds identically-configured VMs
 * (same images, tasks, and device seeds); the recorded VM, the CR VM, and
 * each AR VM are separate instances of it.
 */

namespace rsafe::core {

/** Builds one more identically-configured VM. */
using VmFactory = std::function<std::unique_ptr<hv::Vm>()>;

/** Pipeline configuration. */
struct FrameworkConfig {
    rnr::RecorderOptions recorder;
    replay::CrOptions cr;
    /** Stop the recorded run after this many guest instructions. */
    InstrCount max_instructions = ~static_cast<InstrCount>(0);
};

/** Everything the pipeline produced. */
struct FrameworkResult {
    hv::RunResult record_result = hv::RunResult::kHalted;
    rnr::ReplayOutcome cr_outcome = rnr::ReplayOutcome::kFinished;
    AlarmManager alarms;

    /** Raw alarm markers in the log. */
    std::size_t alarms_logged = 0;
    /** Underflow alarms the CR resolved itself. */
    std::uint64_t underflows_resolved = 0;
    /** Alarm replays that were launched. */
    std::size_t alarm_replays = 0;

    // The pipeline components, kept alive for inspection by callers.
    std::unique_ptr<hv::Vm> recorded_vm;
    std::unique_ptr<rnr::Recorder> recorder;
    std::unique_ptr<hv::Vm> cr_vm;
    std::unique_ptr<replay::CheckpointReplayer> cr;
};

/** The RnR-Safe pipeline. */
class RnrSafeFramework {
  public:
    RnrSafeFramework(VmFactory factory, FrameworkConfig config);

    /** Run record -> checkpointing replay -> alarm replays. */
    FrameworkResult run();

  private:
    VmFactory factory_;
    FrameworkConfig config_;
};

}  // namespace rsafe::core

#endif  // RSAFE_CORE_FRAMEWORK_H_
