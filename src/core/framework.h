#ifndef RSAFE_CORE_FRAMEWORK_H_
#define RSAFE_CORE_FRAMEWORK_H_

#include <functional>
#include <memory>
#include <vector>

#include "core/alarm.h"
#include "core/ar_stage.h"
#include "core/detector.h"
#include "core/session_stage.h"
#include "hv/vm.h"
#include "obs/health.h"
#include "obs/telemetry.h"
#include "replay/checkpoint_replayer.h"
#include "rnr/log_channel.h"
#include "rnr/recorder.h"
#include "rnr/wire.h"
#include "stats/stats.h"

/**
 * @file
 * The RnR-Safe framework facade: the full Figure 1 pipeline.
 *
 * One call to run() performs:
 *  1. monitored recording — a Recorder executes the workload in the
 *     recorded VM with the RAS security hardware armed, producing the
 *     input log with alarm/evict markers;
 *  2. checkpointing replay — a CheckpointReplayer re-executes the log,
 *     takes periodic incremental checkpoints, and auto-resolves
 *     underflow alarms against Evict records;
 *  3. alarm replay — for every remaining alarm, an AlarmReplayer is
 *     launched from the checkpoint preceding it; if the first pass lacks
 *     instrumentation for the alarm's context (a user-mode alarm under
 *     kernel-only tracing), the AR is re-run at the deeper analysis
 *     level, exactly as Section 4.6.2 envisions.
 *
 * Two pipeline shapes (FrameworkConfig::pipeline):
 *
 *  - kSerial runs the three stages back to back — simple, and the
 *    reference for determinism A/B testing;
 *  - kConcurrent is the paper's actual deployment shape: the recorder
 *    streams the log through a bounded LogChannel to the CR, which runs
 *    on its own thread *while recording is still in progress* (replay
 *    lag, not a post-hoc batch pass, bounds detection latency), and the
 *    pending alarms then fan out across a small worker pool of alarm
 *    replayers. Results are merged back in alarm order, so both shapes
 *    produce bit-identical outcomes.
 *
 * The caller supplies a VmFactory that builds identically-configured VMs
 * (same images, tasks, and device seeds); the recorded VM, the CR VM, and
 * each AR VM are separate instances of it. In the concurrent pipeline the
 * factory is invoked from worker threads and must therefore be
 * thread-safe (the workloads::vm_factory() factories are: each call
 * derives everything from per-call seeded state).
 */

namespace rsafe::core {

// VmFactory and AlarmReplayResult moved to core/ar_stage.h (the
// detachable alarm-replay stage); both remain visible here.

/** Stage scheduling of the pipeline. */
enum class PipelineMode {
    kSerial,      ///< record, then replay, then analyze — one thread
    kConcurrent,  ///< stream record->CR, fan alarm replays onto workers
};

/** Pipeline configuration. */
struct FrameworkConfig {
    rnr::RecorderOptions recorder;
    replay::CrOptions cr;
    /** Stop the recorded run after this many guest instructions. */
    InstrCount max_instructions = ~static_cast<InstrCount>(0);
    /** Stage scheduling (see PipelineMode). */
    PipelineMode pipeline = PipelineMode::kSerial;
    /** Alarm-replayer worker threads (concurrent pipeline only). */
    std::size_t ar_workers = 2;
    /** Recorder->CR streaming channel shape (concurrent pipeline only). */
    rnr::ChannelOptions channel;
    /**
     * Pluggable detector complement (see core/detector.h). When set, the
     * framework arms every detector on the recorded VM before recording
     * starts and routes the resulting kDetectorAlarm records to the same
     * detectors' classifiers during alarm replay. Null keeps the
     * RAS-only baseline. The RSAFE_NO_DETECTORS environment variable is
     * a runtime kill-switch that ignores this field entirely.
     */
    std::shared_ptr<DetectorSet> detectors;
    /**
     * The live health plane for a solo run (off by default): one
     * monitored tenant named "pipeline", same monitor / flight recorder
     * / telemetry endpoint the fleet wires per tenant. Passive — the
     * A/B gates hold with it on or off.
     */
    obs::HealthOptions health;
    obs::TelemetryOptions telemetry;
};

/** Everything the pipeline produced. */
struct FrameworkResult {
    hv::RunResult record_result = hv::RunResult::kHalted;
    rnr::ReplayOutcome cr_outcome = rnr::ReplayOutcome::kFinished;
    AlarmManager alarms;

    /** Raw alarm markers in the log. */
    std::size_t alarms_logged = 0;
    /** Underflow alarms the CR resolved itself. */
    std::uint64_t underflows_resolved = 0;
    /** Alarm replays that were launched (deep reruns count separately). */
    std::size_t alarm_replays = 0;

    /** Per-alarm AR outputs, ordered by alarm position in the log. */
    std::vector<AlarmReplayResult> ar_results;

    /** How far the CR trailed the recorder (meaningful when streaming;
     *  against a finished log it is the distance to the recording end). */
    rnr::ReplayLag replay_lag;

    /** Recorder->CR channel traffic (concurrent pipeline only). */
    rnr::ChannelStats channel_stats;

    /** Pipeline-wide counters, merged from per-component (and, in the
     *  concurrent pipeline, per-worker) registries after join. */
    stats::StatRegistry pipeline_stats;

    /**
     * Integrity verdict of the input log this run replayed. In-process
     * recordings are trusted and stay intact; replay_wire() fills this
     * with the forensic report of the shipped image — when the image was
     * damaged, the CR replayed only the recovered prefix and a
     * kLogIntegrity alarm carrying this report's detail was raised.
     */
    rnr::wire::LoadReport log_integrity;

    // The pipeline components, kept alive for inspection by callers.
    // Destruction order is deliberately irrelevant for the detectors:
    // the framework disarms every detector (dropping VM listener
    // registrations) as soon as recording finishes, and the shared_ptr
    // may anyway outlive this struct via FrameworkConfig.
    std::shared_ptr<DetectorSet> detectors;
    std::unique_ptr<hv::Vm> recorded_vm;
    std::unique_ptr<rnr::Recorder> recorder;
    std::unique_ptr<hv::Vm> cr_vm;
    std::unique_ptr<replay::CheckpointReplayer> cr;

    /** The deserialized shipped log (replay_wire() runs only). */
    std::unique_ptr<rnr::InputLog> shipped_log;

    /** Health-plane outputs (empty when the plane was off). @{ */
    std::string healthz;
    std::vector<obs::HealthEvent> health_events;
    std::vector<std::uint8_t> flight_box;
    /** @} */
};

/**
 * Fold @p ar_results plus the component counters into @p result: alarm
 * verdicts land in alarm order, pipeline counters cover only values that
 * are bit-identical across pipeline shapes (the determinism A/B gates
 * compare the whole snapshot), and scheduling-dependent series (replay
 * lag, TB telemetry) ride in gauges/histograms, which snapshot()
 * excludes. Shared by the single framework and the replay fleet, so both
 * produce comparable results by construction.
 */
void finalize_result(FrameworkResult* result,
                     std::vector<AlarmReplayResult> ar_results);

/** The RnR-Safe pipeline. */
class RnrSafeFramework {
  public:
    RnrSafeFramework(VmFactory factory, FrameworkConfig config);

    /** Run record -> checkpointing replay -> alarm replays. */
    FrameworkResult run();

    /**
     * The replay-machine half of Figure 1 for a log that arrived over the
     * wire: deserialize @p bytes tolerantly, run the checkpointing replay
     * over the recovered records, and fan out alarm replays per the
     * configured pipeline mode. A damaged image never aborts: the CR
     * stops at the corruption boundary and the damage is surfaced as a
     * kLogIntegrity alarm plus the forensic FrameworkResult::log_integrity
     * report.
     */
    FrameworkResult replay_wire(const std::vector<std::uint8_t>& bytes);

  private:
    FrameworkResult run_serial();
    FrameworkResult run_concurrent();

    /** Build the session-stage half of config_ (streamed or not). */
    SessionOptions session_options(bool streamed) const;

    /** Move the stage's components + outputs into @p result. */
    void adopt_session(FrameworkResult* result, SessionStage* stage,
                       const SessionResult& session);

    /** Fan pending alarms across workers; results land in alarm order. */
    std::vector<AlarmReplayResult> run_alarm_pool(
        const std::vector<replay::PendingAlarm>& pending,
        const rnr::InputLog* log, stats::StatRegistry* stats_out);

    /**
     * Resolve the kill-switch: record the configured detector set in
     * @p result and set active_detectors_ for the alarm-replay stage
     * (replay_wire has no recording stage to arm, SessionStage arms the
     * run() paths itself).
     */
    void install_detectors(FrameworkResult* result);

    VmFactory factory_;
    FrameworkConfig config_;

    /** The in-effect detector set for the current run (kill-switch
     *  applied); read-only while the AR worker pool executes. */
    const DetectorSet* active_detectors_ = nullptr;

    /** Live probe of the current run's health plane (null when off);
     *  AR workers publish verdict completions through it. */
    obs::HealthProbe* live_probe_ = nullptr;
};

}  // namespace rsafe::core

#endif  // RSAFE_CORE_FRAMEWORK_H_
