#ifndef RSAFE_CORE_DETECTOR_H_
#define RSAFE_CORE_DETECTOR_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "analysis/policy.h"
#include "common/types.h"
#include "core/jop_detector.h"
#include "hv/vm.h"
#include "mem/phys_mem.h"
#include "replay/alarm_replayer.h"
#include "rnr/log_record.h"

/**
 * @file
 * The pluggable detector framework.
 *
 * RnR-Safe's architecture (Section 3) is detector-agnostic: any cheap,
 * imprecise hardware monitor can raise alarms during recording as long
 * as a replay-side analysis exists that classifies each alarm precisely.
 * A Detector packages both halves behind one interface:
 *
 *  - the *hardware model* runs inside the recorded VM: arm() programs
 *    the VMCS exit controls, and the trigger_*() predicates decide — per
 *    monitored event — whether the (deliberately small and imprecise)
 *    hardware would have raised an alarm;
 *  - the *replay classifier* runs in an alarm replayer launched from the
 *    checkpoint preceding the alarm: classify() has the full static
 *    policy and the replayed machine state at its disposal and renders
 *    the precise verdict the hardware could not.
 *
 * The static-policy detectors (CFI, W^X, the policy-aware JOP guard)
 * consume an analysis::StaticPolicy produced ahead of time by the
 * value-set pass (`rsafe-analyze --emit-policy`); the hardware checks
 * only a bounded subset of it (small target tables, single watch bits),
 * so false positives are expected and the replay classifier absorbs
 * them, exactly as the paper's RAS hardware over-raises and the AR
 * sorts the alarms out.
 *
 * Determinism: detector hardware never alters guest-visible state — a
 * trigger only appends a kDetectorAlarm record and charges (record-side
 * only) cycles, so recorded and replayed instruction streams stay
 * bit-identical with any detector set registered, and the replayers
 * consume the alarm records purely positionally.
 */

namespace rsafe::core {

/** Stable wire identity of each detector (LogRecord::value payload). */
enum class DetectorId : std::uint8_t {
    kRopRas = 0,  ///< the paper's RAS return-address monitor
    kJop = 1,     ///< function-bounds indirect-branch table
    kCfi = 2,     ///< value-set CFI target tables
    kWx = 3,      ///< W^X written-then-fetched watcher
};

/** @return the short stable name of @p id (metrics keys, reports). */
const char* detector_id_name(DetectorId id);

/** One pluggable record/replay detector pair. */
class Detector {
  public:
    virtual ~Detector() = default;

    virtual DetectorId id() const = 0;

    /** Short stable name (metrics keys, forensic reports). */
    const char* name() const { return detector_id_name(id()); }

    /**
     * Program the recorded VM's hardware (VMCS exit controls, memory
     * watch plumbing). Called once per recording, after the VM is
     * finalized and before the first instruction executes. A detector
     * instance arms at most one VM at a time.
     */
    virtual void arm(hv::Vm& vm) { (void)vm; }

    /**
     * Release any binding to the armed VM (listeners, watch plumbing).
     * Called by the framework once recording finishes — the hardware
     * model is only live during recording, and the armed VM may be
     * destroyed before the detector set is.
     */
    virtual void disarm() {}

    /**
     * Hardware model for an executed indirect branch/call: @return true
     * when the first-line hardware would raise an alarm for the
     * transfer @p pc -> @p target.
     */
    virtual bool trigger_indirect(Addr pc, Addr target, bool is_call)
    {
        (void)pc;
        (void)target;
        (void)is_call;
        return false;
    }

    /**
     * Hardware model for a W^X fetch exit (first fetch from a page
     * written since it was armed): @return true to raise an alarm.
     */
    virtual bool trigger_wx_fetch(Addr pc)
    {
        (void)pc;
        return false;
    }

    /**
     * Replay-side classification of one alarm this detector raised.
     * Runs inside @p ar, stopped exactly at the alarm record; the
     * implementation fills verdict, cause and report. The caller
     * (AlarmReplayer::analyze) stamps the shared bookkeeping fields
     * (alarm_record, tid, analysis_cycles, forensic skeleton).
     */
    virtual replay::AlarmAnalysis classify(
        const rnr::LogRecord& record, replay::AlarmReplayer& ar) const = 0;
};

/** The registered detector complement of one pipeline run. */
class DetectorSet {
  public:
    /** Register @p detector; fatal on a duplicate DetectorId. */
    void add(std::unique_ptr<Detector> detector);

    /** @return the registered detector with @p id, or nullptr. */
    const Detector* find(DetectorId id) const;

    const std::vector<std::unique_ptr<Detector>>& all() const
    {
        return detectors_;
    }

    bool empty() const { return detectors_.empty(); }

  private:
    std::vector<std::unique_ptr<Detector>> detectors_;
};

/**
 * The paper's RAS detector on the framework interface. Its hardware is
 * the RAS itself (armed through RecorderOptions, not arm(): alarms
 * arrive as kRasAlarm records via the dedicated CPU machinery), so this
 * detector only contributes the replay classifier, which delegates to
 * the alarm replayer's shadow-RAS analysis.
 */
class RopRasDetector : public Detector {
  public:
    DetectorId id() const override { return DetectorId::kRopRas; }
    replay::AlarmAnalysis classify(const rnr::LogRecord& record,
                                   replay::AlarmReplayer& ar) const override;
};

/**
 * The JOP detector of Table 1 on the framework interface: the hardware
 * check consults the small function table; the replay classifier
 * consults the full table plus the static policy (fallback targets such
 * as longjmp continuations, sanctioned JIT entry) before declaring an
 * attack.
 */
class JopGuardDetector : public Detector {
  public:
    JopGuardDetector(JopDetector table,
                     std::shared_ptr<const analysis::StaticPolicy> policy);

    DetectorId id() const override { return DetectorId::kJop; }
    void arm(hv::Vm& vm) override;
    bool trigger_indirect(Addr pc, Addr target, bool is_call) override;
    replay::AlarmAnalysis classify(const rnr::LogRecord& record,
                                   replay::AlarmReplayer& ar) const override;

  private:
    JopDetector table_;
    std::shared_ptr<const analysis::StaticPolicy> policy_;
};

/**
 * Value-set CFI. The hardware monitors only *resolved* policy sites and
 * holds at most kHardwareSlots targets per site (the "small table"
 * imprecision); a transfer from a resolved site outside its hardware
 * subset, or from a site the policy has never seen, raises an alarm.
 * The replay classifier distinguishes a hardware table miss (target in
 * the full static set — false positive) from a genuine hijack.
 */
class CfiDetector : public Detector {
  public:
    /** Per-site target slots the modeled hardware table holds. */
    static constexpr std::size_t kHardwareSlots = 4;

    explicit CfiDetector(
        std::shared_ptr<const analysis::StaticPolicy> policy);

    DetectorId id() const override { return DetectorId::kCfi; }
    void arm(hv::Vm& vm) override;
    bool trigger_indirect(Addr pc, Addr target, bool is_call) override;
    replay::AlarmAnalysis classify(const rnr::LogRecord& record,
                                   replay::AlarmReplayer& ar) const override;

  private:
    bool in_hardware_subset(const analysis::IndirectSite& site,
                            Addr target) const;

    std::shared_ptr<const analysis::StaticPolicy> policy_;
};

/**
 * W^X watcher. arm() registers a code-write listener on the recorded
 * VM's memory; a write into a statically executable region (policy code
 * map or a declared JIT region) arms a one-shot fetch watch on the
 * page, and the first fetch from a watched page VM-exits *before* the
 * written instruction executes and raises an alarm. The replay
 * classifier sanctions fetches entering a declared JIT region at its
 * base (runtime code generation policy) and declares everything else
 * code injection.
 */
class WxDetector : public Detector, public mem::CodeWriteListener {
  public:
    explicit WxDetector(
        std::shared_ptr<const analysis::StaticPolicy> policy);
    ~WxDetector() override;

    DetectorId id() const override { return DetectorId::kWx; }
    void arm(hv::Vm& vm) override;
    void disarm() override;
    bool trigger_wx_fetch(Addr pc) override;
    replay::AlarmAnalysis classify(const rnr::LogRecord& record,
                                   replay::AlarmReplayer& ar) const override;

    // mem::CodeWriteListener
    void on_code_page_touched(Addr page) override;

  private:
    bool statically_executable(Addr addr) const;

    std::shared_ptr<const analysis::StaticPolicy> policy_;
    hv::Vm* armed_vm_ = nullptr;
};

/**
 * Build the standard detector complement for one trusted image group:
 * ROP/RAS classifier, JOP guard (function table from @p images,
 * @p jop_hardware_slots entries), CFI and W^X driven by @p policy.
 *
 * The returned set is stateful per recording (the W^X watcher binds to
 * the VM it arms): build a fresh set per pipeline run.
 */
std::shared_ptr<DetectorSet> standard_detectors(
    const std::vector<const isa::Image*>& images,
    std::shared_ptr<const analysis::StaticPolicy> policy,
    std::size_t jop_hardware_slots = 64);

}  // namespace rsafe::core

#endif  // RSAFE_CORE_DETECTOR_H_
