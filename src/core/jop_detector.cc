#include "core/jop_detector.h"

#include <algorithm>
#include <utility>

namespace rsafe::core {

Status
JopDetector::create(const std::vector<const isa::Image*>& images,
                    std::size_t hardware_slots, JopDetector* out)
{
    std::vector<FunctionBounds> functions;
    for (const isa::Image* image : images) {
        if (image == nullptr) {
            return {StatusCode::kInvalidArgument,
                    "JopDetector: null image"};
        }
        for (const auto& [name, range] : image->functions())
            functions.push_back(FunctionBounds{range.begin, range.end});
    }
    return create(functions, hardware_slots, out);
}

Status
JopDetector::create(const std::vector<FunctionBounds>& functions,
                    std::size_t hardware_slots, JopDetector* out)
{
    JopDetector built;
    if (const Status status = built.build_table(functions, hardware_slots);
        !status.ok()) {
        return status;
    }
    *out = std::move(built);
    return {};
}

Status
JopDetector::build_table(const std::vector<FunctionBounds>& functions,
                         std::size_t hardware_slots)
{
    functions_.reserve(functions.size());
    for (const FunctionBounds& fn : functions) {
        if (fn.begin >= fn.end) {
            return {StatusCode::kInvalidArgument,
                    "JopDetector: inverted function bounds"};
        }
        functions_.push_back(Fn{fn.begin, fn.end, false});
    }
    std::sort(functions_.begin(), functions_.end(),
              [](const Fn& a, const Fn& b) { return a.begin < b.begin; });

    // Mark the hardware-table subset: the largest functions stand in for
    // "the most common" ones (we have no profile feedback here; size is
    // a stable deterministic proxy).
    std::vector<std::size_t> order(functions_.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(), [this](std::size_t a,
                                                 std::size_t b) {
        const Addr size_a = functions_[a].end - functions_[a].begin;
        const Addr size_b = functions_[b].end - functions_[b].begin;
        if (size_a != size_b)
            return size_a > size_b;
        return functions_[a].begin < functions_[b].begin;
    });
    hardware_count_ = std::min(hardware_slots, functions_.size());
    for (std::size_t i = 0; i < hardware_count_; ++i)
        functions_[order[i]].in_hardware_table = true;
    return {};
}

const JopDetector::Fn*
JopDetector::function_containing(Addr addr) const
{
    auto it = std::upper_bound(
        functions_.begin(), functions_.end(), addr,
        [](Addr value, const Fn& fn) { return value < fn.begin; });
    if (it == functions_.begin())
        return nullptr;
    --it;
    if (addr >= it->begin && addr < it->end)
        return &*it;
    return nullptr;
}

JopVerdict
JopDetector::check(Addr branch_pc, Addr target, bool hardware_only) const
{
    // Legal if the target is the entry point of a (tabled) function.
    const Fn* target_fn = function_containing(target);
    if (target_fn && target == target_fn->begin &&
        (!hardware_only || target_fn->in_hardware_table)) {
        return JopVerdict::kLegalEntry;
    }
    // Legal if the branch stays within its own function.
    const Fn* branch_fn = function_containing(branch_pc);
    if (branch_fn && target >= branch_fn->begin && target < branch_fn->end)
        return JopVerdict::kLegalInternal;
    return JopVerdict::kAlarm;
}

JopVerdict
JopDetector::check_hardware(Addr branch_pc, Addr target) const
{
    return check(branch_pc, target, /*hardware_only=*/true);
}

JopVerdict
JopDetector::check_full(Addr branch_pc, Addr target) const
{
    return check(branch_pc, target, /*hardware_only=*/false);
}

}  // namespace rsafe::core
