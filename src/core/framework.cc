#include "core/framework.h"

#include "common/log.h"

namespace rsafe::core {

RnrSafeFramework::RnrSafeFramework(VmFactory factory, FrameworkConfig config)
    : factory_(std::move(factory)), config_(std::move(config))
{
    if (!factory_)
        fatal("RnrSafeFramework: null VM factory");
}

FrameworkResult
RnrSafeFramework::run()
{
    FrameworkResult result;

    // 1. Monitored recording.
    result.recorded_vm = factory_();
    result.recorder = std::make_unique<rnr::Recorder>(
        result.recorded_vm.get(), config_.recorder);
    result.record_result = result.recorder->run(config_.max_instructions);

    const rnr::InputLog& log = result.recorder->log();
    result.alarms_logged =
        log.find_all(rnr::RecordType::kRasAlarm).size();

    // 2. Checkpointing replay.
    result.cr_vm = factory_();
    result.cr = std::make_unique<replay::CheckpointReplayer>(
        result.cr_vm.get(), &log, config_.cr);
    result.cr_outcome = result.cr->run();
    result.underflows_resolved = result.cr->underflows_resolved();

    // 3. Alarm replays, one per unresolved alarm.
    for (const auto& pending : result.cr->pending_alarms()) {
        if (!pending.checkpoint)
            panic("pending alarm without a checkpoint");
        rnr::ReplayOptions ar_options = config_.cr.replay;
        ar_options.trap_kernel_call_ret = true;

        auto ar_vm = factory_();
        replay::AlarmReplayer ar(ar_vm.get(), &log, *pending.checkpoint,
                                 ar_options);
        ++result.alarm_replays;
        auto analysis = ar.analyze(pending.log_index);

        if (analysis.cause == replay::AlarmCause::kNeedsDeeperAnalysis) {
            // Re-run with more instrumentation (Section 4.6.2): trace
            // user-mode call/ret as well.
            ar_options.trap_user_call_ret = true;
            auto deep_vm = factory_();
            replay::AlarmReplayer deep_ar(deep_vm.get(), &log,
                                          *pending.checkpoint, ar_options);
            ++result.alarm_replays;
            analysis = deep_ar.analyze(pending.log_index);
        }
        result.alarms.add(std::move(analysis));
    }
    return result;
}

}  // namespace rsafe::core
