#include "core/framework.h"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <string>
#include <thread>

#include "common/log.h"
#include "cpu/tb_engine.h"
#include "obs/trace.h"
#include "rnr/log_source.h"

namespace rsafe::core {

namespace {

/** Geometry of the per-alarm analysis-latency histogram: cycle costs of
 *  one AR replay land in the millions, so a wide range with coarse
 *  buckets keeps the percentiles meaningful without a huge table. */
constexpr std::uint64_t kArLatencyHistMax = 64u * 1024u * 1024u;
constexpr std::size_t kArLatencyHistBuckets = 64;

}  // namespace

RnrSafeFramework::RnrSafeFramework(VmFactory factory, FrameworkConfig config)
    : factory_(std::move(factory)), config_(std::move(config))
{
    if (!factory_)
        fatal("RnrSafeFramework: null VM factory");
}

FrameworkResult
RnrSafeFramework::run()
{
    switch (config_.pipeline) {
      case PipelineMode::kSerial:
        return run_serial();
      case PipelineMode::kConcurrent:
        return run_concurrent();
    }
    panic("RnrSafeFramework: bad pipeline mode");
}

void
RnrSafeFramework::install_detectors(FrameworkResult* result,
                                    hv::Vm* armed_vm)
{
    active_detectors_ = nullptr;
    if (!config_.detectors || config_.detectors->empty())
        return;
    if (std::getenv("RSAFE_NO_DETECTORS") != nullptr)
        return;  // runtime kill-switch: RAS-only baseline
    result->detectors = config_.detectors;
    active_detectors_ = config_.detectors.get();
    if (armed_vm != nullptr) {
        for (const auto& detector : config_.detectors->all())
            detector->arm(*armed_vm);
    }
    if (result->recorder)
        result->recorder->set_detectors(active_detectors_);
}

void
RnrSafeFramework::disarm_detectors()
{
    if (active_detectors_ == nullptr)
        return;
    for (const auto& detector : active_detectors_->all())
        detector->disarm();
}

AlarmReplayResult
RnrSafeFramework::analyze_alarm(const replay::PendingAlarm& pending,
                                const rnr::InputLog* log,
                                stats::StatRegistry* local_stats)
{
    if (!pending.checkpoint)
        panic("pending alarm without a checkpoint");
    rnr::ReplayOptions ar_options = config_.cr.replay;
    ar_options.trap_kernel_call_ret = true;

    AlarmReplayResult out;
    out.log_index = pending.log_index;

    // Flow head: close the arrow the CR opened when it queued this alarm
    // (same id = the alarm's log index), inside the analysis span so the
    // viewer binds the arrow to this slice.
    obs::ScopedSpan span("ar.analyze", "ar");
    obs::Tracer::instance().flow_finish("alarm", "alarm",
                                        pending.log_index);

    auto ar_vm = factory_();
    replay::AlarmReplayer ar(ar_vm.get(), log, *pending.checkpoint,
                             ar_options);
    ar.set_detectors(active_detectors_);
    local_stats->counter("ar.replays").inc();
    out.analysis = ar.analyze(pending.log_index);

    if (out.analysis.cause == replay::AlarmCause::kNeedsDeeperAnalysis) {
        // Re-run with more instrumentation (Section 4.6.2): trace
        // user-mode call/ret as well.
        ar_options.trap_user_call_ret = true;
        obs::Tracer::instance().instant("ar.deep_rerun", "ar", "log_index",
                                        pending.log_index);
        auto deep_vm = factory_();
        replay::AlarmReplayer deep_ar(deep_vm.get(), log,
                                      *pending.checkpoint, ar_options);
        deep_ar.set_detectors(active_detectors_);
        local_stats->counter("ar.replays").inc();
        local_stats->counter("ar.deep_reruns").inc();
        out.analysis = deep_ar.analyze(pending.log_index);
        out.deep_rerun = true;
    }
    if (out.analysis.is_attack)
        local_stats->counter("ar.attacks").inc();
    if (pending.record.type == rnr::RecordType::kDetectorAlarm &&
        active_detectors_ != nullptr) {
        const Detector* detector = active_detectors_->find(
            static_cast<DetectorId>(pending.record.value));
        if (detector != nullptr) {
            const std::string prefix =
                std::string("detector.") + detector->name();
            local_stats->counter(prefix + ".replays").inc();
            local_stats
                ->counter(prefix + (out.analysis.is_attack
                                        ? ".attacks"
                                        : ".false_positives"))
                .inc();
        }
    }
    local_stats->counter("ar.analysis_cycles")
        .inc(out.analysis.analysis_cycles);
    local_stats->histogram("ar.analysis_cycles_hist", kArLatencyHistMax,
                           kArLatencyHistBuckets)
        .sample(out.analysis.analysis_cycles);
    obs::Tracer::instance().instant("ar.verdict", "ar", "is_attack",
                                    out.analysis.is_attack ? 1 : 0);
    return out;
}

std::vector<AlarmReplayResult>
RnrSafeFramework::run_alarm_pool(
    const std::vector<replay::PendingAlarm>& pending,
    const rnr::InputLog* log, stats::StatRegistry* stats_out)
{
    std::vector<AlarmReplayResult> results(pending.size());
    if (pending.empty())
        return results;

    std::size_t workers = config_.ar_workers == 0 ? 1 : config_.ar_workers;
    if (workers > pending.size())
        workers = pending.size();

    if (workers == 1) {
        for (std::size_t i = 0; i < pending.size(); ++i)
            results[i] = analyze_alarm(pending[i], log, stats_out);
        return results;
    }

    // Each worker claims alarm indices from a shared counter and writes
    // into its own result slot and its own stats registry: no shared
    // mutation on the hot path, deterministic merge order at join.
    std::atomic<std::size_t> next{0};
    std::vector<stats::StatRegistry> worker_stats(workers);
    std::vector<std::exception_ptr> worker_errors(workers);
    std::vector<std::thread> threads;
    threads.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
        threads.emplace_back([&, w] {
            try {
                if (obs::Tracer::instance().enabled())
                    obs::Tracer::instance().attach_thread("ar-worker");
                while (true) {
                    const std::size_t i =
                        next.fetch_add(1, std::memory_order_relaxed);
                    if (i >= pending.size())
                        break;
                    results[i] =
                        analyze_alarm(pending[i], log, &worker_stats[w]);
                }
            } catch (...) {
                worker_errors[w] = std::current_exception();
            }
        });
    }
    for (auto& thread : threads)
        thread.join();
    for (const auto& error : worker_errors)
        if (error)
            std::rethrow_exception(error);
    for (const auto& ws : worker_stats)
        stats_out->merge(ws);
    return results;
}

void
RnrSafeFramework::finalize(FrameworkResult* result,
                           std::vector<AlarmReplayResult> ar_results)
{
    // Fold AR outputs back in alarm order: identical between the serial
    // pipeline and any worker-pool schedule.
    for (auto& ar : ar_results) {
        result->alarm_replays += ar.deep_rerun ? 2 : 1;
        result->alarms.add(ar.analysis);
    }
    result->ar_results = std::move(ar_results);

    // Pipeline-wide counters. Only values that are bit-identical across
    // pipeline modes belong here (the determinism A/B test compares the
    // whole snapshot); lag and channel traffic stay in their own fields.
    // Replay-only runs (replay_wire) have no recording stage.
    auto& stats = result->pipeline_stats;
    if (result->recorded_vm && result->recorder) {
        stats.counter("record.instructions")
            .inc(result->recorded_vm->cpu().icount());
        stats.counter("record.log_records")
            .inc(result->recorder->log().size());
        stats.counter("record.log_bytes")
            .inc(result->recorder->log().total_bytes());
    }
    stats.counter("record.alarms_logged").inc(result->alarms_logged);

    // Per-detector hardware-alarm counts, scanned from whichever log this
    // run replayed. Counts are a pure function of the log, so they stay
    // bit-identical across pipeline modes.
    const rnr::InputLog* scan_log = nullptr;
    if (result->recorder)
        scan_log = &result->recorder->log();
    else if (result->shipped_log)
        scan_log = result->shipped_log.get();
    if (result->detectors && scan_log != nullptr) {
        for (const std::size_t index :
             scan_log->find_all(rnr::RecordType::kDetectorAlarm)) {
            const auto id =
                static_cast<DetectorId>(scan_log->at(index).value);
            const Detector* detector = result->detectors->find(id);
            const char* name = detector != nullptr ? detector->name()
                                                   : "unknown";
            stats.counter(std::string("detector.") + name + ".alarms")
                .inc();
        }
    }
    stats.counter("cr.instructions").inc(result->cr_vm->cpu().icount());
    stats.counter("cr.checkpoints").inc(result->cr->checkpoints_taken());
    stats.counter("cr.underflows_resolved").inc(result->underflows_resolved);
    stats.counter("cr.single_steps").inc(result->cr->single_steps());

    // The lag time series rides in a gauge: gauges (like histograms) are
    // excluded from snapshot(), so the scheduling-dependent series never
    // perturbs the bit-for-bit pipeline determinism comparison.
    auto& lag_gauge = stats.gauge("cr.replay_lag");
    for (const auto& sample : result->replay_lag.series())
        lag_gauge.set(sample.icount, sample.lag);

    // Translation-block engine telemetry, per pipeline stage. These also
    // ride in gauges/histograms: an RSAFE_NO_TB A/B run must produce an
    // identical counter snapshot, and TB event counts are zero with the
    // engine disabled.
    const auto export_tb = [&stats](const std::string& prefix,
                                    const cpu::Cpu& cpu) {
        const cpu::TbEngine& tb = cpu.tb_engine();
        const cpu::TbEngineStats& s = tb.stats();
        stats.gauge(prefix + ".translated").set(0, s.translated);
        stats.gauge(prefix + ".chain_hits").set(0, s.chain_hits);
        stats.gauge(prefix + ".chain_misses").set(0, s.chain_misses);
        stats.gauge(prefix + ".invalidations").set(0, s.invalidations);
        stats.gauge(prefix + ".flushes").set(0, s.flushes);
        stats.gauge(prefix + ".exec_blocks").set(0, s.exec_blocks);
        auto& hist = stats.histogram(prefix + ".block_len",
                                     cpu::TbEngine::kMaxBlockInstrs, 16);
        if (const Status st = hist.merge(tb.block_length_hist()); !st.ok())
            fatal("tb block-length histogram geometry mismatch");
    };
    if (result->recorded_vm)
        export_tb("record.tb", result->recorded_vm->cpu());
    export_tb("cr.tb", result->cr_vm->cpu());
}

FrameworkResult
RnrSafeFramework::replay_wire(const std::vector<std::uint8_t>& bytes)
{
    FrameworkResult result;
    auto& tracer = obs::Tracer::instance();
    if (tracer.enabled())
        tracer.attach_thread("pipeline");
    obs::ScopedSpan pipeline_span("pipeline.replay_wire", "pipeline");

    // Deserialize tolerantly: a damaged image yields its longest intact
    // record prefix plus a forensic report of what was lost.
    result.shipped_log = std::make_unique<rnr::InputLog>();
    result.log_integrity =
        rnr::InputLog::deserialize_tolerant(bytes, result.shipped_log.get());
    const rnr::InputLog& log = *result.shipped_log;
    result.alarms_logged =
        log.find_all(rnr::RecordType::kRasAlarm).size() +
        log.find_all(rnr::RecordType::kDetectorAlarm).size();

    // No recording stage here, so there is nothing to arm — but the
    // shipped log may carry kDetectorAlarm records, and the configured
    // detector set supplies their classifiers.
    install_detectors(&result, /*armed_vm=*/nullptr);

    // Checkpointing replay over the recovered prefix. The CR stops at the
    // corruption boundary (the log simply ends there) instead of the
    // whole pipeline aborting.
    result.cr_vm = factory_();
    result.cr = std::make_unique<replay::CheckpointReplayer>(
        result.cr_vm.get(), &log, config_.cr);
    {
        obs::ScopedSpan span("cr.run", "cr");
        result.cr_outcome = result.cr->run();
    }
    result.underflows_resolved = result.cr->underflows_resolved();
    result.replay_lag = result.cr->lag();

    // Alarm replays, scheduled per the configured pipeline shape.
    std::vector<AlarmReplayResult> ar_results;
    if (config_.pipeline == PipelineMode::kSerial) {
        ar_results.reserve(result.cr->pending_alarms().size());
        for (const auto& pending : result.cr->pending_alarms())
            ar_results.push_back(
                analyze_alarm(pending, &log, &result.pipeline_stats));
    } else {
        ar_results = run_alarm_pool(result.cr->pending_alarms(), &log,
                                    &result.pipeline_stats);
    }
    finalize(&result, std::move(ar_results));

    if (!result.log_integrity.intact()) {
        // Surface the damage as a first-class alarm: replay verdicts
        // derived from a non-intact log only cover the recovered prefix,
        // and tampering cannot be ruled out.
        replay::AlarmAnalysis integrity;
        integrity.is_attack = false;
        integrity.cause = replay::AlarmCause::kLogIntegrity;
        integrity.report = "input log integrity failure: " +
                           result.log_integrity.to_string();
        result.alarms.add(std::move(integrity));
        result.pipeline_stats.counter("log.integrity_failures").inc();
    }
    return result;
}

FrameworkResult
RnrSafeFramework::run_serial()
{
    FrameworkResult result;
    auto& tracer = obs::Tracer::instance();
    if (tracer.enabled())
        tracer.attach_thread("pipeline");
    obs::ScopedSpan pipeline_span("pipeline.serial", "pipeline");

    // 1. Monitored recording.
    result.recorded_vm = factory_();
    result.recorder = std::make_unique<rnr::Recorder>(
        result.recorded_vm.get(), config_.recorder);
    install_detectors(&result, result.recorded_vm.get());
    {
        obs::ScopedSpan span("record.run", "record");
        result.record_result = result.recorder->run(config_.max_instructions);
    }
    disarm_detectors();

    const rnr::InputLog& log = result.recorder->log();
    result.alarms_logged =
        log.find_all(rnr::RecordType::kRasAlarm).size() +
        log.find_all(rnr::RecordType::kDetectorAlarm).size();

    // 2. Checkpointing replay.
    result.cr_vm = factory_();
    result.cr = std::make_unique<replay::CheckpointReplayer>(
        result.cr_vm.get(), &log, config_.cr);
    {
        obs::ScopedSpan span("cr.run", "cr");
        result.cr_outcome = result.cr->run();
    }
    result.underflows_resolved = result.cr->underflows_resolved();
    result.replay_lag = result.cr->lag();

    // 3. Alarm replays, one per unresolved alarm, in alarm order.
    std::vector<AlarmReplayResult> ar_results;
    ar_results.reserve(result.cr->pending_alarms().size());
    for (const auto& pending : result.cr->pending_alarms())
        ar_results.push_back(
            analyze_alarm(pending, &log, &result.pipeline_stats));
    finalize(&result, std::move(ar_results));
    return result;
}

FrameworkResult
RnrSafeFramework::run_concurrent()
{
    FrameworkResult result;
    auto& tracer = obs::Tracer::instance();
    if (tracer.enabled())
        tracer.attach_thread("pipeline");
    obs::ScopedSpan pipeline_span("pipeline.concurrent", "pipeline");

    // Both VMs and both engines are built up front on this thread; only
    // run() executes on the component threads.
    result.recorded_vm = factory_();
    result.recorder = std::make_unique<rnr::Recorder>(
        result.recorded_vm.get(), config_.recorder);
    install_detectors(&result, result.recorded_vm.get());

    rnr::LogChannel channel(config_.channel);
    result.recorder->attach_stream(&channel);
    rnr::LogReader reader(&channel);

    result.cr_vm = factory_();
    result.cr = std::make_unique<replay::CheckpointReplayer>(
        result.cr_vm.get(), static_cast<rnr::LogSource*>(&reader),
        config_.cr);

    // 1+2 concurrently: the recorder streams the log through the bounded
    // channel; the CR consumes it on the fly (Figure 1's arrow is a live
    // queue, not a file handed over after the fact).
    std::exception_ptr record_error, cr_error;
    std::thread record_thread([&] {
        try {
            if (obs::Tracer::instance().enabled())
                obs::Tracer::instance().attach_thread("recorder");
            obs::ScopedSpan span("record.run", "record");
            result.record_result =
                result.recorder->run(config_.max_instructions);
            channel.close();
        } catch (...) {
            record_error = std::current_exception();
            channel.poison();
        }
    });
    std::thread cr_thread([&] {
        try {
            if (obs::Tracer::instance().enabled())
                obs::Tracer::instance().attach_thread("cr");
            obs::ScopedSpan span("cr.run", "cr");
            result.cr_outcome = result.cr->run();
        } catch (...) {
            cr_error = std::current_exception();
            // Unblock the producer: without a consumer the bounded
            // channel would park the recorder forever.
            channel.abandon();
        }
    });
    record_thread.join();
    cr_thread.join();
    // The channel dies with this frame; the recorder must not keep a
    // pointer to it.
    result.recorder->attach_stream(nullptr);
    disarm_detectors();
    if (record_error)
        std::rethrow_exception(record_error);
    if (cr_error)
        std::rethrow_exception(cr_error);

    const rnr::InputLog& log = result.recorder->log();
    result.alarms_logged =
        log.find_all(rnr::RecordType::kRasAlarm).size() +
        log.find_all(rnr::RecordType::kDetectorAlarm).size();
    result.underflows_resolved = result.cr->underflows_resolved();
    result.replay_lag = result.cr->lag();
    result.channel_stats = channel.stats();

    // 3. Alarm replays across the worker pool. Each AR is independent
    // given its originating checkpoint; results merge in alarm order.
    obs::ScopedSpan ar_span("ar.pool", "ar");
    auto ar_results = run_alarm_pool(result.cr->pending_alarms(), &log,
                                     &result.pipeline_stats);
    finalize(&result, std::move(ar_results));
    return result;
}

}  // namespace rsafe::core
