#include "core/framework.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <string>
#include <thread>

#include "common/log.h"
#include "cpu/tb_engine.h"
#include "obs/flight_recorder.h"
#include "obs/trace.h"
#include "rnr/log_source.h"

namespace rsafe::core {

namespace {

/**
 * Solo-mode health plane: the same monitor / flight recorder /
 * telemetry endpoint the fleet wires per tenant, watching the one
 * pipeline as a tenant named "pipeline". Declared after the stage on
 * run()'s stack so an unwinding exception stops the monitor before the
 * stage (its sampler target) is destroyed.
 */
struct HealthPlane {
    bool on = false;
    obs::HealthProbe probe;
    obs::FlightRecorder flight;
    std::unique_ptr<obs::HealthMonitor> monitor;
    std::unique_ptr<obs::TelemetryServer> telemetry;

    void begin(const FrameworkConfig& config, SessionStage* stage)
    {
        on = config.health.enabled &&
             std::getenv("RSAFE_NO_HEALTH") == nullptr;
        if (!on)
            return;
        stage->set_health_probe(&probe);
        monitor = std::make_unique<obs::HealthMonitor>(config.health);
        obs::HealthProbe* probe_ptr = &probe;
        monitor->add_tenant("pipeline", [probe_ptr, stage] {
            obs::HealthSample sample;
            sample.set(obs::HealthSignal::kReplayLag,
                       probe_ptr->replay_lag.load(
                           std::memory_order_relaxed));
            sample.set(obs::HealthSignal::kQueueDepth,
                       probe_ptr->queue_depth());
            sample.set(obs::HealthSignal::kVerdictLatency,
                       probe_ptr->verdict_cycles_peak.exchange(
                           0, std::memory_order_relaxed));
            sample.set(obs::HealthSignal::kChannelBackpressure,
                       stage->live_channel_stats().producer_waits);
            const std::uint64_t budget =
                probe_ptr->ckpt_budget_bytes.load(
                    std::memory_order_relaxed);
            const std::uint64_t live = probe_ptr->ckpt_live_bytes.load(
                std::memory_order_relaxed);
            sample.set(obs::HealthSignal::kCkptOccupancy,
                       budget != 0 ? live * 100 / budget : 0);
            // No shared pool in solo mode; starvation stays zero.
            return sample;
        });
        obs::FlightRecorder* flight_ptr = &flight;
        monitor->add_listener([flight_ptr](const obs::HealthEvent& event) {
            flight_ptr->record(obs::FlightEntryKind::kTransition,
                               event.tenant,
                               obs::health_signal_name(event.signal),
                               event.value, event.to_string());
            if (event.to == obs::HealthState::kCritical)
                flight_ptr->dump("slo-breach:" + event.tenant);
        });
        monitor->start();
        telemetry = std::make_unique<obs::TelemetryServer>(
            config.telemetry,
            obs::TelemetryProviders{
                [this] { return monitor->metrics_prometheus(); },
                [this] { return monitor->healthz_json(); },
                [this] { return flight.latest(); },
            });
        telemetry->start();
    }

    /** Stop, dump, and fold the outputs into @p result. */
    void finish(FrameworkResult* result)
    {
        if (!on)
            return;
        for (const AlarmReplayResult& ar : result->ar_results) {
            if (ar.analysis.is_attack) {
                flight.record(obs::FlightEntryKind::kVerdict, "pipeline",
                              "attack", ar.analysis.analysis_cycles);
                flight.dump("attack-verdict:pipeline");
                break;
            }
        }
        monitor->stop();
        if (flight.dumps() == 0)
            flight.dump("run-complete");
        telemetry->stop();
        // Gauges only: the deterministic counter snapshot is untouched.
        monitor->export_metrics(&result->pipeline_stats);
        result->healthz = monitor->healthz_json();
        result->health_events = monitor->events();
        result->flight_box = flight.latest();
    }
};

}  // namespace

RnrSafeFramework::RnrSafeFramework(VmFactory factory, FrameworkConfig config)
    : factory_(std::move(factory)), config_(std::move(config))
{
    if (!factory_)
        fatal("RnrSafeFramework: null VM factory");
}

FrameworkResult
RnrSafeFramework::run()
{
    switch (config_.pipeline) {
      case PipelineMode::kSerial:
        return run_serial();
      case PipelineMode::kConcurrent:
        return run_concurrent();
    }
    panic("RnrSafeFramework: bad pipeline mode");
}

SessionOptions
RnrSafeFramework::session_options(bool streamed) const
{
    SessionOptions options;
    options.recorder = config_.recorder;
    options.cr = config_.cr;
    options.max_instructions = config_.max_instructions;
    options.channel = config_.channel;
    options.streamed = streamed;
    return options;
}

void
RnrSafeFramework::install_detectors(FrameworkResult* result)
{
    active_detectors_ = nullptr;
    if (!config_.detectors || config_.detectors->empty())
        return;
    if (std::getenv("RSAFE_NO_DETECTORS") != nullptr)
        return;  // runtime kill-switch: RAS-only baseline
    result->detectors = config_.detectors;
    active_detectors_ = config_.detectors.get();
}

void
RnrSafeFramework::adopt_session(FrameworkResult* result, SessionStage* stage,
                                const SessionResult& session)
{
    result->record_result = session.record_result;
    result->cr_outcome = session.cr_outcome;
    result->alarms_logged = session.alarms_logged;
    result->channel_stats = session.channel_stats;
    result->underflows_resolved = stage->cr()->underflows_resolved();
    result->replay_lag = stage->cr()->lag();
    if (stage->active_detectors() != nullptr)
        result->detectors = config_.detectors;
    active_detectors_ = stage->active_detectors();
    result->recorded_vm = stage->release_recorded_vm();
    result->recorder = stage->release_recorder();
    result->cr_vm = stage->release_cr_vm();
    result->cr = stage->release_cr();
}

std::vector<AlarmReplayResult>
RnrSafeFramework::run_alarm_pool(
    const std::vector<replay::PendingAlarm>& pending,
    const rnr::InputLog* log, stats::StatRegistry* stats_out)
{
    std::vector<AlarmReplayResult> results(pending.size());
    if (pending.empty())
        return results;

    const ArStage stage(factory_, config_.cr.replay, active_detectors_);

    std::size_t workers = config_.ar_workers == 0 ? 1 : config_.ar_workers;
    if (workers > pending.size())
        workers = pending.size();

    if (workers == 1) {
        for (std::size_t i = 0; i < pending.size(); ++i) {
            results[i] = stage.analyze(pending[i], log, stats_out);
            if (live_probe_ != nullptr)
                live_probe_->note_verdict(
                    results[i].analysis.analysis_cycles);
        }
        return results;
    }

    // Each worker claims a batch of alarm indices from a shared counter
    // and writes into its own result slots and its own stats registry:
    // no shared mutation on the hot path, deterministic merge order at
    // join. Batching the claims (K indices per fetch_add) keeps the
    // counter cache line from ping-ponging when many short alarm replays
    // meet many workers — the 2->4 worker wall-clock regression path.
    // The batch is 1 until there are >= 8 alarms per worker, so small
    // runs keep the exact claim order the scheduling model mirrors.
    const std::size_t batch = std::clamp<std::size_t>(
        pending.size() / (workers * 8), 1, 8);
    std::atomic<std::size_t> next{0};
    std::vector<stats::StatRegistry> worker_stats(workers);
    std::vector<std::exception_ptr> worker_errors(workers);
    std::vector<std::thread> threads;
    threads.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
        threads.emplace_back([&, w] {
            try {
                if (obs::Tracer::instance().enabled())
                    obs::Tracer::instance().attach_thread("ar-worker");
                while (true) {
                    const std::size_t begin =
                        next.fetch_add(batch, std::memory_order_relaxed);
                    if (begin >= pending.size())
                        break;
                    const std::size_t end =
                        std::min(begin + batch, pending.size());
                    for (std::size_t i = begin; i < end; ++i) {
                        results[i] =
                            stage.analyze(pending[i], log,
                                          &worker_stats[w]);
                        if (live_probe_ != nullptr)
                            live_probe_->note_verdict(
                                results[i].analysis.analysis_cycles);
                    }
                }
            } catch (...) {
                worker_errors[w] = std::current_exception();
            }
        });
    }
    for (auto& thread : threads)
        thread.join();
    for (const auto& error : worker_errors)
        if (error)
            std::rethrow_exception(error);
    for (const auto& ws : worker_stats)
        stats_out->merge(ws);
    return results;
}

void
finalize_result(FrameworkResult* result,
                std::vector<AlarmReplayResult> ar_results)
{
    // Fold AR outputs back in alarm order: identical between the serial
    // pipeline and any worker-pool schedule.
    for (auto& ar : ar_results) {
        result->alarm_replays += ar.deep_rerun ? 2 : 1;
        result->alarms.add(ar.analysis);
    }
    result->ar_results = std::move(ar_results);

    // Pipeline-wide counters. Only values that are bit-identical across
    // pipeline modes belong here (the determinism A/B test compares the
    // whole snapshot); lag and channel traffic stay in their own fields.
    // Replay-only runs (replay_wire) have no recording stage.
    auto& stats = result->pipeline_stats;
    if (result->recorded_vm && result->recorder) {
        stats.counter("record.instructions")
            .inc(result->recorded_vm->cpu().icount());
        stats.counter("record.log_records")
            .inc(result->recorder->log().size());
        stats.counter("record.log_bytes")
            .inc(result->recorder->log().total_bytes());
    }
    stats.counter("record.alarms_logged").inc(result->alarms_logged);

    // Per-detector hardware-alarm counts, scanned from whichever log this
    // run replayed. Counts are a pure function of the log, so they stay
    // bit-identical across pipeline modes.
    const rnr::InputLog* scan_log = nullptr;
    if (result->recorder)
        scan_log = &result->recorder->log();
    else if (result->shipped_log)
        scan_log = result->shipped_log.get();
    if (result->detectors && scan_log != nullptr) {
        for (const std::size_t index :
             scan_log->find_all(rnr::RecordType::kDetectorAlarm)) {
            const auto id =
                static_cast<DetectorId>(scan_log->at(index).value);
            const Detector* detector = result->detectors->find(id);
            const char* name = detector != nullptr ? detector->name()
                                                   : "unknown";
            stats.counter(std::string("detector.") + name + ".alarms")
                .inc();
        }
    }
    stats.counter("cr.instructions").inc(result->cr_vm->cpu().icount());
    stats.counter("cr.checkpoints").inc(result->cr->checkpoints_taken());
    stats.counter("cr.underflows_resolved").inc(result->underflows_resolved);
    stats.counter("cr.single_steps").inc(result->cr->single_steps());

    // The lag time series rides in a gauge: gauges (like histograms) are
    // excluded from snapshot(), so the scheduling-dependent series never
    // perturbs the bit-for-bit pipeline determinism comparison.
    auto& lag_gauge = stats.gauge("cr.replay_lag");
    for (const auto& sample : result->replay_lag.series())
        lag_gauge.set(sample.icount, sample.lag);

    // Translation-block engine telemetry, per pipeline stage. These also
    // ride in gauges/histograms: an RSAFE_NO_TB A/B run must produce an
    // identical counter snapshot, and TB event counts are zero with the
    // engine disabled.
    const auto export_tb = [&stats](const std::string& prefix,
                                    const cpu::Cpu& cpu) {
        const cpu::TbEngine& tb = cpu.tb_engine();
        const cpu::TbEngineStats& s = tb.stats();
        stats.gauge(prefix + ".translated").set(0, s.translated);
        stats.gauge(prefix + ".chain_hits").set(0, s.chain_hits);
        stats.gauge(prefix + ".chain_misses").set(0, s.chain_misses);
        stats.gauge(prefix + ".invalidations").set(0, s.invalidations);
        stats.gauge(prefix + ".flushes").set(0, s.flushes);
        stats.gauge(prefix + ".exec_blocks").set(0, s.exec_blocks);
        auto& hist = stats.histogram(prefix + ".block_len",
                                     cpu::TbEngine::kMaxBlockInstrs, 16);
        if (const Status st = hist.merge(tb.block_length_hist()); !st.ok())
            fatal("tb block-length histogram geometry mismatch");
    };
    if (result->recorded_vm)
        export_tb("record.tb", result->recorded_vm->cpu());
    export_tb("cr.tb", result->cr_vm->cpu());

    // Checkpoint-storage telemetry. Gauges again: stored bytes and
    // compressed-page counts flip with RSAFE_NO_CKPT_COMPRESS (and dedup
    // config), and the kill-switch A/B gate compares counter snapshots.
    {
        const replay::CheckpointStoreStats cs =
            result->cr->checkpoints().stats();
        stats.gauge("ckpt.bytes_raw").set(0, cs.bytes_raw);
        stats.gauge("ckpt.bytes_stored").set(0, cs.bytes_stored);
        stats.gauge("ckpt.dedup_hits").set(0, cs.dedup_hits);
        stats.gauge("ckpt.compressed_pages").set(0, cs.compressed_pages);
        stats.gauge("ckpt.live_bytes").set(0, cs.live_bytes);
        stats.gauge("ckpt.live_pages").set(0, cs.live_pages);
        stats.gauge("ckpt.budget_evictions").set(0, cs.budget_evictions);
        stats.gauge("ckpt.count_evictions").set(0, cs.count_evictions);
    }
    if (const replay::ckpt::CkptWriteback* wb = result->cr->writeback()) {
        // Writeback traffic is scheduling noise by construction (a
        // background thread racing the CR), so it could never be a
        // counter. lag() is the headline gauge: sealed checkpoints not
        // yet serialized + delivered.
        const replay::ckpt::WritebackStats ws = wb->stats();
        stats.gauge("ckpt.writeback_lag").set(0, wb->lag());
        stats.gauge("ckpt.writeback_submitted").set(0, ws.submitted);
        stats.gauge("ckpt.writeback_written").set(0, ws.written);
        stats.gauge("ckpt.writeback_bytes").set(0, ws.bytes_written);
        stats.gauge("ckpt.writeback_dropped").set(0, ws.dropped);
        stats.gauge("ckpt.writeback_producer_waits")
            .set(0, ws.producer_waits);
        stats.gauge("ckpt.writeback_max_queued").set(0, ws.max_queued);
    }
}

FrameworkResult
RnrSafeFramework::replay_wire(const std::vector<std::uint8_t>& bytes)
{
    FrameworkResult result;
    auto& tracer = obs::Tracer::instance();
    if (tracer.enabled())
        tracer.attach_thread("pipeline");
    obs::ScopedSpan pipeline_span("pipeline.replay_wire", "pipeline");

    // Deserialize tolerantly: a damaged image yields its longest intact
    // record prefix plus a forensic report of what was lost.
    result.shipped_log = std::make_unique<rnr::InputLog>();
    result.log_integrity =
        rnr::InputLog::deserialize_tolerant(bytes, result.shipped_log.get());
    const rnr::InputLog& log = *result.shipped_log;
    result.alarms_logged =
        log.find_all(rnr::RecordType::kRasAlarm).size() +
        log.find_all(rnr::RecordType::kDetectorAlarm).size();

    // No recording stage here, so there is nothing to arm — but the
    // shipped log may carry kDetectorAlarm records, and the configured
    // detector set supplies their classifiers.
    install_detectors(&result);

    // Checkpointing replay over the recovered prefix. The CR stops at the
    // corruption boundary (the log simply ends there) instead of the
    // whole pipeline aborting.
    result.cr_vm = factory_();
    result.cr = std::make_unique<replay::CheckpointReplayer>(
        result.cr_vm.get(), &log, config_.cr);
    {
        obs::ScopedSpan span("cr.run", "cr");
        result.cr_outcome = result.cr->run();
    }
    result.underflows_resolved = result.cr->underflows_resolved();
    result.replay_lag = result.cr->lag();

    // Alarm replays, scheduled per the configured pipeline mode.
    std::vector<AlarmReplayResult> ar_results;
    if (config_.pipeline == PipelineMode::kSerial) {
        const ArStage ar_stage(factory_, config_.cr.replay,
                               active_detectors_);
        ar_results.reserve(result.cr->pending_alarms().size());
        for (const auto& pending : result.cr->pending_alarms())
            ar_results.push_back(
                ar_stage.analyze(pending, &log, &result.pipeline_stats));
    } else {
        ar_results = run_alarm_pool(result.cr->pending_alarms(), &log,
                                    &result.pipeline_stats);
    }
    finalize_result(&result, std::move(ar_results));

    if (!result.log_integrity.intact()) {
        // Surface the damage as a first-class alarm: replay verdicts
        // derived from a non-intact log only cover the recovered prefix,
        // and tampering cannot be ruled out.
        replay::AlarmAnalysis integrity;
        integrity.is_attack = false;
        integrity.cause = replay::AlarmCause::kLogIntegrity;
        integrity.report = "input log integrity failure: " +
                           result.log_integrity.to_string();
        result.alarms.add(std::move(integrity));
        result.pipeline_stats.counter("log.integrity_failures").inc();
    }
    return result;
}

FrameworkResult
RnrSafeFramework::run_serial()
{
    FrameworkResult result;
    auto& tracer = obs::Tracer::instance();
    if (tracer.enabled())
        tracer.attach_thread("pipeline");
    obs::ScopedSpan pipeline_span("pipeline.serial", "pipeline");

    // 1+2. The session stage: monitored recording, then checkpointing
    // replay, back to back on this thread.
    SessionStage stage(factory_, session_options(/*streamed=*/false),
                       config_.detectors);
    HealthPlane plane;
    plane.begin(config_, &stage);
    live_probe_ = plane.on ? &plane.probe : nullptr;
    const SessionResult session = stage.run();
    adopt_session(&result, &stage, session);

    // 3. Alarm replays, one per unresolved alarm, in alarm order.
    const rnr::InputLog& log = result.recorder->log();
    const ArStage ar_stage(factory_, config_.cr.replay, active_detectors_);
    std::vector<AlarmReplayResult> ar_results;
    ar_results.reserve(result.cr->pending_alarms().size());
    for (const auto& pending : result.cr->pending_alarms()) {
        ar_results.push_back(
            ar_stage.analyze(pending, &log, &result.pipeline_stats));
        if (live_probe_ != nullptr)
            live_probe_->note_verdict(
                ar_results.back().analysis.analysis_cycles);
    }
    finalize_result(&result, std::move(ar_results));
    plane.finish(&result);
    live_probe_ = nullptr;
    return result;
}

FrameworkResult
RnrSafeFramework::run_concurrent()
{
    FrameworkResult result;
    auto& tracer = obs::Tracer::instance();
    if (tracer.enabled())
        tracer.attach_thread("pipeline");
    obs::ScopedSpan pipeline_span("pipeline.concurrent", "pipeline");

    // 1+2 concurrently: the recorder streams the log through the bounded
    // channel; the CR consumes it on the fly (Figure 1's arrow is a live
    // queue, not a file handed over after the fact).
    SessionStage stage(factory_, session_options(/*streamed=*/true),
                       config_.detectors);
    HealthPlane plane;
    plane.begin(config_, &stage);
    live_probe_ = plane.on ? &plane.probe : nullptr;
    const SessionResult session = stage.run();
    adopt_session(&result, &stage, session);

    // 3. Alarm replays across the worker pool. Each AR is independent
    // given its originating checkpoint; results merge in alarm order.
    const rnr::InputLog& log = result.recorder->log();
    obs::ScopedSpan ar_span("ar.pool", "ar");
    auto ar_results = run_alarm_pool(result.cr->pending_alarms(), &log,
                                     &result.pipeline_stats);
    finalize_result(&result, std::move(ar_results));
    plane.finish(&result);
    live_probe_ = nullptr;
    return result;
}

}  // namespace rsafe::core
