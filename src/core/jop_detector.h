#ifndef RSAFE_CORE_JOP_DETECTOR_H_
#define RSAFE_CORE_JOP_DETECTOR_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "isa/program.h"

/**
 * @file
 * The JOP detector of Table 1 (row 2).
 *
 * First-line hardware: a small table holding the begin/end addresses of
 * the N most common functions. An indirect branch or call is legal if its
 * target is the first instruction of a tabled function, or lies within
 * the function the branch itself is in; anything else raises an alarm.
 *
 * Replay role: verify the same conditions against the complete function
 * table (including the "less common" functions the hardware table had no
 * room for) — targets legal under the full table are false positives.
 */

namespace rsafe::core {

/** Verdict of a JOP check. */
enum class JopVerdict {
    kLegalEntry,     ///< target is a known function's first instruction
    kLegalInternal,  ///< target stays within the branch's own function
    kAlarm,          ///< not explainable by the available table
};

/**
 * One function's [begin, end) extent as the detector tables it. This is
 * the exchange format between the detector and whoever supplies the
 * bounds — the image symbol table or the static analyzer's recovered
 * function table (analysis::FunctionTable::jop_bounds()).
 */
struct FunctionBounds {
    Addr begin = 0;
    Addr end = 0;  ///< one past the last byte
};

/** Hardware/replay JOP target checker. */
class JopDetector {
  public:
    /** An empty detector (no functions tabled); fill via create(). */
    JopDetector() = default;

    /**
     * Build from the code image(s) into @p out.
     * @param images          all executable images (kernel + user).
     * @param hardware_slots  size of the hardware table; the hardware
     *                        check uses only the @p hardware_slots largest
     *                        functions ("most common" proxy), the replay
     *                        check uses all of them.
     * @return kInvalidArgument on a null image or inverted function
     *         bounds; @p out is untouched on error.
     */
    static Status create(const std::vector<const isa::Image*>& images,
                         std::size_t hardware_slots, JopDetector* out);

    /**
     * Analysis-backed factory: build directly from recovered bounds
     * (e.g., analysis::FunctionTable::jop_bounds()), so the table the
     * hardware trusts is the one the static analyzer verified.
     */
    static Status create(const std::vector<FunctionBounds>& functions,
                         std::size_t hardware_slots, JopDetector* out);

    /** First-line hardware check (small table). */
    JopVerdict check_hardware(Addr branch_pc, Addr target) const;

    /** Replay verification (full table). */
    JopVerdict check_full(Addr branch_pc, Addr target) const;

    /** @return number of functions in the hardware table. */
    std::size_t hardware_table_size() const { return hardware_count_; }

    /** @return total functions known to the replay check. */
    std::size_t full_table_size() const { return functions_.size(); }

  private:
    struct Fn {
        Addr begin;
        Addr end;
        bool in_hardware_table;
    };

    Status build_table(const std::vector<FunctionBounds>& functions,
                       std::size_t hardware_slots);
    JopVerdict check(Addr branch_pc, Addr target, bool hardware_only) const;
    const Fn* function_containing(Addr addr) const;

    std::vector<Fn> functions_;  ///< sorted by begin address
    std::size_t hardware_count_ = 0;
};

}  // namespace rsafe::core

#endif  // RSAFE_CORE_JOP_DETECTOR_H_
