#ifndef RSAFE_CORE_DOS_DETECTOR_H_
#define RSAFE_CORE_DOS_DETECTOR_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "common/types.h"

/**
 * @file
 * The DOS detector of Table 1 (row 3).
 *
 * First-line detection: the hypervisor samples the guest kernel's
 * context-switch counter; if the counter "has not increased much for a
 * while", an alarm is raised. The replay's role is to identify the code
 * that dominated execution during the stalled window — here served by a
 * PC-attribution profile collected during replay.
 */

namespace rsafe::core {

/** A scheduler-inactivity alarm. */
struct DosAlarm {
    Cycles window_start = 0;
    Cycles window_end = 0;
    std::uint64_t switches_in_window = 0;
};

/** Context-switch-rate watchdog. */
class DosDetector {
  public:
    /** An unarmed watchdog (never alarms); configure via create(). */
    DosDetector() = default;

    /**
     * Build a watchdog into @p out.
     * @param window_cycles  sampling window length.
     * @param min_switches   alarm if a window sees fewer switches.
     * @return kInvalidArgument when @p window_cycles is zero; @p out is
     *         untouched on error.
     */
    static Status create(Cycles window_cycles, std::uint64_t min_switches,
                         DosDetector* out);

    /**
     * Feed one sample of (current cycle, context-switch counter); call
     * periodically — e.g., at every VM exit the hypervisor takes.
     */
    void sample(Cycles now, std::uint64_t ctx_switches);

    /** Alarms raised so far. */
    const std::vector<DosAlarm>& alarms() const { return alarms_; }

  private:
    Cycles window_cycles_ = 0;
    std::uint64_t min_switches_ = 0;
    Cycles window_start_ = 0;
    std::uint64_t switches_at_window_start_ = 0;
    bool primed_ = false;
    std::vector<DosAlarm> alarms_;
};

}  // namespace rsafe::core

#endif  // RSAFE_CORE_DOS_DETECTOR_H_
