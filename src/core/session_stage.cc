#include "core/session_stage.h"

#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>

#include "common/log.h"
#include "core/detector.h"
#include "obs/trace.h"

namespace rsafe::core {

SessionStage::SessionStage(VmFactory factory, SessionOptions options,
                           std::shared_ptr<DetectorSet> detectors)
    : factory_(std::move(factory)), options_(std::move(options)),
      detectors_(std::move(detectors))
{
    if (!factory_)
        fatal("SessionStage: null VM factory");

    recorded_vm_ = factory_();
    recorder_ = std::make_unique<rnr::Recorder>(recorded_vm_.get(),
                                                options_.recorder);

    if (detectors_ && !detectors_->empty() &&
        std::getenv("RSAFE_NO_DETECTORS") == nullptr) {
        active_detectors_ = detectors_.get();
        for (const auto& detector : detectors_->all())
            detector->arm(*recorded_vm_);
        recorder_->set_detectors(active_detectors_);
        detectors_armed_ = true;
    }

    if (options_.streamed) {
        // Streaming shape: both VMs and both engines are built up front
        // on this thread; only run() executes on the component threads.
        channel_ = std::make_unique<rnr::LogChannel>(options_.channel);
        recorder_->attach_stream(channel_.get());
        reader_ = std::make_unique<rnr::LogReader>(channel_.get());
        build_cr(reader_.get());
    }
    // Sequential shape: the CR is built by run() once recording is done,
    // so its source sees the finished log (lag = distance to the end).
}

void
SessionStage::build_cr(rnr::LogSource* source)
{
    cr_vm_ = factory_();
    {
        std::lock_guard<std::mutex> lock(stop_mu_);
        cr_ = std::make_unique<replay::CheckpointReplayer>(
            cr_vm_.get(), source, options_.cr);
        if (stop_flag_)
            cr_->request_stop();
    }
    if (health_probe_ != nullptr)
        cr_->set_health_probe(health_probe_);
    install_cr_sink(source);
}

void
SessionStage::set_health_probe(obs::HealthProbe* probe)
{
    health_probe_ = probe;
    if (cr_)
        cr_->set_health_probe(probe);
}

rnr::ChannelStats
SessionStage::live_channel_stats() const
{
    return channel_ ? channel_->stats() : rnr::ChannelStats();
}

void
SessionStage::install_cr_sink(rnr::LogSource* source)
{
    if (!sink_)
        return;
    // Runs on the CR's thread: every index up to the alarm has been
    // awaited by the CR already, so at() is immediate, and copying here
    // keeps the job independent of this session's growing log.
    cr_->set_alarm_sink([this, source](const replay::PendingAlarm& p) {
        AlarmJob job;
        job.pending = p;
        // No checkpoint (interval 0, or recycled past the alarm): the job
        // still ships, with a degenerate slice; the AR stage turns it
        // into a clean checkpoint-unavailable verdict.
        const std::size_t base =
            p.checkpoint ? p.checkpoint->log_pos : p.log_index;
        job.slice.reserve(p.log_index + 1 - base);
        for (std::size_t i = base; i <= p.log_index; ++i)
            job.slice.push_back(source->at(i));
        sink_(job);
    });
}

void
SessionStage::request_stop()
{
    std::lock_guard<std::mutex> lock(stop_mu_);
    stop_flag_ = true;
    recorder_->request_stop();
    if (cr_)
        cr_->request_stop();
}

void
SessionStage::disarm_detectors()
{
    if (!detectors_armed_)
        return;
    detectors_armed_ = false;
    for (const auto& detector : active_detectors_->all())
        detector->disarm();
}

SessionResult
SessionStage::run()
{
    if (ran_)
        fatal("SessionStage: run() called twice");
    ran_ = true;
    return options_.streamed ? run_streamed() : run_sequential();
}

SessionResult
SessionStage::run_sequential()
{
    SessionResult result;

    // 1. Monitored recording.
    {
        obs::ScopedSpan span("record.run", "record");
        result.record_result = recorder_->run(options_.max_instructions);
    }
    disarm_detectors();

    const rnr::InputLog& log = recorder_->log();
    result.alarms_logged =
        log.find_all(rnr::RecordType::kRasAlarm).size() +
        log.find_all(rnr::RecordType::kDetectorAlarm).size();

    // 2. Checkpointing replay over the finished log.
    seq_source_ = std::make_unique<rnr::InputLogSource>(&log);
    build_cr(seq_source_.get());
    {
        obs::ScopedSpan span("cr.run", "cr");
        result.cr_outcome = cr_->run();
    }
    result.stopped =
        (result.record_result == hv::RunResult::kInstrLimit &&
         recorder_->stop_requested()) ||
        result.cr_outcome == rnr::ReplayOutcome::kStopRequested ||
        result.cr_outcome == rnr::ReplayOutcome::kLogAborted;
    return result;
}

SessionResult
SessionStage::run_streamed()
{
    SessionResult result;
    // The CR was built at construction, before the caller could install
    // its sink; hook it up now.
    install_cr_sink(reader_.get());
    const std::string rec_thread =
        options_.name.empty() ? "recorder" : options_.name + ".recorder";
    const std::string cr_thread =
        options_.name.empty() ? "cr" : options_.name + ".cr";

    // Record and replay concurrently: the recorder streams the log
    // through the bounded channel; the CR consumes it on the fly
    // (Figure 1's arrow is a live queue, not a file handed over after
    // the fact).
    std::exception_ptr record_error, cr_error;
    std::thread record_thread([&] {
        try {
            if (obs::Tracer::instance().enabled())
                obs::Tracer::instance().attach_thread(rec_thread.c_str());
            obs::ScopedSpan span("record.run", "record");
            result.record_result =
                recorder_->run(options_.max_instructions);
            channel_->close();
        } catch (...) {
            record_error = std::current_exception();
            channel_->poison();
        }
    });
    std::thread cr_thread_obj([&] {
        try {
            if (obs::Tracer::instance().enabled())
                obs::Tracer::instance().attach_thread(cr_thread.c_str());
            obs::ScopedSpan span("cr.run", "cr");
            result.cr_outcome = cr_->run();
        } catch (...) {
            cr_error = std::current_exception();
        }
        // Unblock the producer in every exit path: a CR that returned
        // early (stop request, poisoned stream, exception) must not
        // leave the recorder parked on backpressure forever. After a
        // normal, fully-drained completion this is a no-op.
        channel_->abandon();
    });
    record_thread.join();
    cr_thread_obj.join();
    // The channel belongs to this stage; the recorder must not keep a
    // pointer to it once the run is over.
    recorder_->attach_stream(nullptr);
    disarm_detectors();
    if (record_error)
        std::rethrow_exception(record_error);
    if (cr_error)
        std::rethrow_exception(cr_error);

    const rnr::InputLog& log = recorder_->log();
    result.alarms_logged =
        log.find_all(rnr::RecordType::kRasAlarm).size() +
        log.find_all(rnr::RecordType::kDetectorAlarm).size();
    result.channel_stats = channel_->stats();
    result.stopped =
        (result.record_result == hv::RunResult::kInstrLimit &&
         recorder_->stop_requested()) ||
        result.cr_outcome == rnr::ReplayOutcome::kStopRequested ||
        result.cr_outcome == rnr::ReplayOutcome::kLogAborted;
    return result;
}

std::unique_ptr<hv::Vm>
SessionStage::release_recorded_vm()
{
    return std::move(recorded_vm_);
}

std::unique_ptr<rnr::Recorder>
SessionStage::release_recorder()
{
    return std::move(recorder_);
}

std::unique_ptr<hv::Vm>
SessionStage::release_cr_vm()
{
    return std::move(cr_vm_);
}

std::unique_ptr<replay::CheckpointReplayer>
SessionStage::release_cr()
{
    return std::move(cr_);
}

}  // namespace rsafe::core
