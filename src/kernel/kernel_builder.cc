#include "kernel/kernel_builder.h"

#include "common/log.h"
#include "cpu/cpu.h"
#include "dev/device_hub.h"
#include "isa/assembler.h"
#include "kernel/layout.h"

namespace rsafe::kernel {

using isa::Assembler;
using isa::Reg;
using isa::R0;
using isa::R1;
using isa::R2;
using isa::R3;
using isa::R4;
using isa::R5;
using isa::R10;
using isa::R12;
using isa::R13;
using isa::R14;
using isa::R15;

static_assert(kIvtBase == cpu::kIvtBase,
              "kernel layout and CPU disagree on the IVT base");
static_assert(kIvtSlotSyscall == cpu::kIvtSyscallSlot,
              "kernel layout and CPU disagree on the syscall IVT slot");

namespace {

/** r_dst = &task_struct(r_slot); clobbers r_tmp. */
void
emit_task_struct_addr(Assembler& a, Reg r_dst, Reg r_slot, Reg r_tmp)
{
    a.ldi(r_tmp, static_cast<std::int64_t>(kTaskStructSize));
    a.mul(r_dst, r_slot, r_tmp);
    a.ldi(r_tmp, static_cast<std::int64_t>(kTaskTableBase));
    a.add(r_dst, r_dst, r_tmp);
}

/** mem64[abs_addr] += 1; clobbers r_a, r_b. */
void
emit_inc_word(Assembler& a, Addr abs_addr, Reg r_a, Reg r_b)
{
    a.ldi(r_a, static_cast<std::int64_t>(abs_addr));
    a.ld(r_b, r_a, 0);
    a.addi(r_b, r_b, 1);
    a.st(r_a, 0, r_b);
}

}  // namespace

GuestKernel
build_kernel()
{
    Assembler a(kKernelCodeBase);

    // -----------------------------------------------------------------
    // Boot: install the IVT, set current = 0, launch task slot 0 by
    // entering the scheduler's stack-switch tail.
    // -----------------------------------------------------------------
    a.label("k_boot");
    a.ldi(R15, static_cast<std::int64_t>(kIvtBase));
    a.ldi_label(R14, "k_timer_handler");
    a.st(R15, 8 * kIvtSlotTimer, R14);
    a.ldi_label(R14, "k_disk_handler");
    a.st(R15, 8 * kIvtSlotDisk, R14);
    a.ldi_label(R14, "k_syscall_entry");
    a.st(R15, 8 * kIvtSlotSyscall, R14);
    a.ldi(R14, 0);
    a.ldi(R15, static_cast<std::int64_t>(kSchedCurrent));
    a.st(R15, 0, R14);
    // r14 = task 0's saved sp, then fall into the switch tail.
    a.ldi(R15, static_cast<std::int64_t>(task_struct_addr(0)));
    a.ld(R14, R15, kTaskOffSavedSp);
    a.jmp("k_stack_switch");

    // -----------------------------------------------------------------
    // schedule(): round-robin context switch.
    // Clobbers r14/r15 (kernel-reserved); preserves r0..r13 — the whole
    // caller-visible register file must survive a switch, since the
    // interleaved task uses every register freely.
    // -----------------------------------------------------------------
    a.func_begin("schedule");
    for (int reg = 0; reg <= 13; ++reg)
        a.push(static_cast<Reg>(reg));
    // The address switch_ret will pop when this thread is resumed.
    a.ldi_label(R14, "finish_resched");
    a.push(R14);
    // r10 = current slot, r11 = &ts(current).
    a.ldi(R15, static_cast<std::int64_t>(kSchedCurrent));
    a.ld(R10, R15, 0);
    emit_task_struct_addr(a, isa::R11, R10, R15);
    // Save sp into current->saved_sp.
    a.getsp(R12);
    a.st(isa::R11, kTaskOffSavedSp, R12);
    // Scan for the next runnable slot, starting after current.
    a.mov(R12, R10);
    a.label("k_sched_loop");
    a.addi(R12, R12, 1);
    a.ldi(R13, static_cast<std::int64_t>(kMaxTasks));
    a.blt(R12, R13, "k_sched_nowrap");
    a.ldi(R12, 0);
    a.label("k_sched_nowrap");
    emit_task_struct_addr(a, R13, R12, R14);
    a.ld(R14, R13, kTaskOffState);
    a.ldi(R15, static_cast<std::int64_t>(kTaskStateRunnable));
    a.beq(R14, R15, "k_sched_found");
    a.bne(R12, R10, "k_sched_loop");
    // Wrapped around: is current itself still runnable?
    a.ld(R14, isa::R11, kTaskOffState);
    a.ldi(R15, static_cast<std::int64_t>(kTaskStateRunnable));
    a.beq(R14, R15, "k_sched_self");
    // Nothing runnable at all: the workload is finished.
    a.halt();
    a.label("k_sched_self");
    a.mov(R13, isa::R11);
    a.label("k_sched_found");
    // current = r12; ctx_switches++.
    a.ldi(R15, static_cast<std::int64_t>(kSchedCurrent));
    a.st(R15, 0, R12);
    emit_inc_word(a, kSchedCtxSwitches, R15, R14);
    // r14 = next->saved_sp; switch stacks.
    a.ld(R14, R13, kTaskOffSavedSp);
    // The single stack-switch instruction the hypervisor traps on
    // (Section 5.2.1). The new thread's sp is visible in r14 here.
    a.label("k_stack_switch");
    a.setsp(R14);
    // The non-procedural return (Section 4.4): its on-stack target was
    // placed by the scheduler (or by the stack seeder for fresh tasks)
    // and is one of the three finish_* labels below.
    a.label("k_switch_ret");
    a.ret();
    a.func_end();

    // Target 1: resuming a previously-switched-out thread.
    a.label("finish_resched");
    for (int reg = 13; reg >= 0; --reg)
        a.pop(static_cast<Reg>(reg));
    a.ret();

    // Target 2: first run of a user task -> iret into user mode.
    a.label("finish_fork");
    a.ldi(R15, static_cast<std::int64_t>(kSchedCurrent));
    a.ld(R14, R15, 0);
    emit_task_struct_addr(a, R14, R14, R13);
    a.ld(R14, R14, kTaskOffEntry);
    a.ldi(R13, 2);  // flags: user mode, interrupts enabled
    a.push(R13);
    a.push(R14);
    a.iret();

    // Target 3: first run of a kernel thread -> call its body.
    a.label("finish_kthread");
    a.ldi(R15, static_cast<std::int64_t>(kSchedCurrent));
    a.ld(R14, R15, 0);
    emit_task_struct_addr(a, R14, R14, R13);
    a.ld(R14, R14, kTaskOffEntry);
    a.callr(R14);
    // A kernel thread that returns terminates like sys_exit.
    a.jmp("k_sc_exit");

    // -----------------------------------------------------------------
    // Idle kernel thread (task slot 0). Opens the interrupt window the
    // timer tick needs, and halts the machine when no user tasks remain.
    // -----------------------------------------------------------------
    a.func_begin("k_idle");
    a.label("k_idle_loop");
    a.ldi(R1, static_cast<std::int64_t>(kSchedLiveUserTasks));
    a.ld(R2, R1, 0);
    a.ldi(R3, 0);
    a.beq(R2, R3, "k_idle_halt");
    a.sti();
    a.nop();
    a.nop();
    a.cli();
    a.call("schedule");
    a.jmp("k_idle_loop");
    a.label("k_idle_halt");
    a.halt();
    a.func_end();

    // -----------------------------------------------------------------
    // Interrupt handlers. The timer tick preempts (calls schedule); the
    // disk handler just records the completion.
    // -----------------------------------------------------------------
    a.func_begin("k_timer_handler");
    a.push(R0);
    a.push(R1);
    emit_inc_word(a, kSchedTicks, R0, R1);
    a.call("schedule");
    a.pop(R1);
    a.pop(R0);
    a.iret();
    a.func_end();

    a.func_begin("k_disk_handler");
    a.push(R0);
    a.push(R1);
    // A completion *counter*: waiters snapshot it at submission and wait
    // for it to advance, so one waiter's completion can never be
    // swallowed by the next submitter (as a boolean flag could be).
    emit_inc_word(a, kDiskDoneFlag, R0, R1);
    a.pop(R1);
    a.pop(R0);
    a.iret();
    a.func_end();

    // -----------------------------------------------------------------
    // Syscall dispatch. Number in r0; syscalls clobber r0..r5.
    // -----------------------------------------------------------------
    a.func_begin("k_syscall_entry");
    auto dispatch = [&a](Word number, const std::string& target) {
        a.ldi(R15, static_cast<std::int64_t>(number));
        a.beq(R0, R15, target);
    };
    dispatch(kSysYield, "k_sc_yield");
    dispatch(kSysExit, "k_sc_exit");
    dispatch(kSysGetTime, "k_sc_gettime");
    dispatch(kSysNicRecv, "k_sc_nic_recv");
    dispatch(kSysDiskRead, "k_sc_disk_read");
    dispatch(kSysDiskWrite, "k_sc_disk_write");
    dispatch(kSysNicSend, "k_sc_nic_send");
    dispatch(kSysBugcheck, "k_sc_bugcheck");
    dispatch(kSysLogMsg, "k_sc_logmsg");
    dispatch(kSysSpin, "k_sc_spin");
    dispatch(kSysChecksum, "k_sc_checksum");
    dispatch(kSysSpawn, "k_sc_spawn");
    a.iret();  // unknown syscall: no-op
    a.func_end();

    // sys_spawn(r1 = entry) -> r0 = new tid (or ~0 if no slot). Reuses
    // free or dead slots — and with them their thread IDs — which is why
    // the hypervisor must trap here and reset any stale BackRAS entry
    // (Section 5.2.2).
    a.func_begin("k_sc_spawn");
    a.ldi(R2, 1);  // slot 0 is the idle kernel thread
    a.label("k_spawn_scan");
    a.ldi(R3, static_cast<std::int64_t>(kMaxTasks));
    a.bgeu(R2, R3, "k_spawn_fail");
    emit_task_struct_addr(a, R4, R2, R5);
    a.ld(R5, R4, kTaskOffState);
    a.ldi(R3, static_cast<std::int64_t>(kTaskStateRunnable));
    a.bne(R5, R3, "k_spawn_found");
    a.addi(R2, R2, 1);
    a.jmp("k_spawn_scan");
    a.label("k_spawn_found");
    // Initialize the task_struct: tid = slot (ID reuse), runnable, user.
    a.st(R4, kTaskOffTid, R2);
    a.ldi(R3, static_cast<std::int64_t>(kTaskStateRunnable));
    a.st(R4, kTaskOffState, R3);
    a.st(R4, kTaskOffEntry, R1);
    a.ldi(R3, 0);
    a.st(R4, kTaskOffKind, R3);
    // Seed the fresh stack: the switch-return target is finish_fork.
    a.addi(R5, R2, 1);
    a.ldi(R3, static_cast<std::int64_t>(kTaskStackSize));
    a.mul(R5, R5, R3);
    a.ldi(R3, static_cast<std::int64_t>(kTaskStackBase));
    a.add(R5, R5, R3);
    a.addi(R5, R5, -8);
    a.ldi_label(R3, "finish_fork");
    a.st(R5, 0, R3);
    a.st(R4, kTaskOffSavedSp, R5);
    emit_inc_word(a, kSchedLiveUserTasks, R3, R5);
    // The hypervisor traps here to reset the reused tid's BackRAS entry.
    a.label("k_thread_spawn_bp");
    a.nop();
    a.mov(R0, R2);
    a.iret();
    a.label("k_spawn_fail");
    a.ldi(R0, -1);
    a.iret();
    a.func_end();

    // sys_checksum: run the recursive driver checksum over a user buffer
    // (a stand-in for copy/validate paths that make kernels call-dense).
    a.func_begin("k_sc_checksum");
    a.call("k_csum");
    a.iret();
    a.func_end();

    // sys_spin: burn kernel time with interrupts masked — the scheduler
    // starvation a DOS attack induces (Table 1's third row).
    a.func_begin("k_sc_spin");
    a.ldi(R2, 0);
    a.label("k_sc_spin_loop");
    a.bgeu(R2, R1, "k_sc_spin_done");
    a.addi(R2, R2, 1);
    a.jmp("k_sc_spin_loop");
    a.label("k_sc_spin_done");
    a.iret();
    a.func_end();

    a.func_begin("k_sc_yield");
    a.call("schedule");
    a.iret();
    a.func_end();

    // sys_exit: mark the current task dead and switch away forever.
    // The label doubles as the hypervisor's thread-exit trap point.
    a.func_begin("k_sc_exit");
    a.ldi(R1, static_cast<std::int64_t>(kSchedCurrent));
    a.ld(R2, R1, 0);
    emit_task_struct_addr(a, R3, R2, R4);
    a.ldi(R4, static_cast<std::int64_t>(kTaskStateDead));
    a.st(R3, kTaskOffState, R4);
    a.ld(R4, R3, kTaskOffKind);
    a.ldi(R5, 0);
    a.bne(R4, R5, "k_sc_exit_sched");
    // A user task died: live_user_tasks--.
    a.ldi(R4, static_cast<std::int64_t>(kSchedLiveUserTasks));
    a.ld(R5, R4, 0);
    a.addi(R5, R5, -1);
    a.st(R4, 0, R5);
    a.label("k_sc_exit_sched");
    a.call("schedule");
    // Unreachable: a dead task is never rescheduled.
    a.halt();
    a.func_end();

    a.func_begin("k_sc_gettime");
    a.rdtsc(R0);
    a.iret();
    a.func_end();

    // sys_nic_recv: poll the NIC; DMA a packet into the user buffer and
    // checksum it with the deliberately deep-recursive driver routine.
    a.func_begin("k_sc_nic_recv");
    a.ldi(R2, static_cast<std::int64_t>(dev::kMmioBase + dev::kNicStatus));
    a.ld(R3, R2, 0);
    a.ldi(R4, 0);
    a.beq(R3, R4, "k_sc_nic_none");
    a.ldi(R2, static_cast<std::int64_t>(dev::kMmioBase + dev::kNicRxBuf));
    a.st(R2, 0, R1);
    a.ldi(R2, static_cast<std::int64_t>(dev::kMmioBase + dev::kNicRxLen));
    a.ld(R0, R2, 0);
    a.mov(R2, R0);
    a.push(R0);
    a.call("k_nic_rx_0");
    a.pop(R0);
    a.iret();
    a.label("k_sc_nic_none");
    a.ldi(R0, 0);
    a.iret();
    a.func_end();

    // The layered receive path (netif -> ip -> transport -> socket ...):
    // real drivers nest several functions deep before payload processing,
    // which is what pushes the recursive checksum past the RAS depth
    // "under extreme loads" (Section 8.2).
    constexpr int kNicRxLayers = 5;
    for (int layer = 0; layer < kNicRxLayers; ++layer) {
        a.func_begin(strcat_args("k_nic_rx_", layer));
        if (layer + 1 < kNicRxLayers)
            a.call(strcat_args("k_nic_rx_", layer + 1));
        else
            a.call("k_csum");
        a.ret();
        a.func_end();
    }

    // k_csum(r1 = buf, r2 = len) -> r0: linear recursion, 32 bytes per
    // frame. Packets larger than ~1350 bytes push a 48-entry RAS past its
    // depth — the "deep procedure nesting of the network driver code
    // under extreme loads" behind apache's underflow alarms (Section 8.2).
    a.func_begin("k_csum");
    a.ldi(R3, 32);
    a.bgeu(R3, R2, "k_csum_base");
    // Sum the two 16-byte halves through the leaf helper (the call-dense
    // structure of real kernel byte-bashing helpers).
    a.push(R2);
    a.call("k_csum_leaf");
    a.mov(R4, R0);
    a.addi(R1, R1, 16);
    a.call("k_csum_leaf");
    a.add(R4, R4, R0);
    a.push(R4);
    a.addi(R1, R1, 16);
    a.pop(R4);
    a.pop(R2);
    a.push(R4);
    a.addi(R2, R2, -32);
    a.call("k_csum");
    a.pop(R4);
    a.add(R0, R0, R4);
    a.ret();
    a.label("k_csum_base");
    a.ldi(R0, 0);
    a.ldi(R3, 0);
    a.label("k_csum_base_loop");
    a.bgeu(R3, R2, "k_csum_base_done");
    a.ldb(R4, R1, 0);
    a.add(R0, R0, R4);
    a.addi(R1, R1, 1);
    a.addi(R3, R3, 1);
    a.jmp("k_csum_base_loop");
    a.label("k_csum_base_done");
    a.ret();
    a.func_end();

    // k_csum_leaf(r1 = ptr) -> r0: sum of the 16 bytes at r1.
    a.func_begin("k_csum_leaf");
    a.ld(R0, R1, 0);
    a.ld(R5, R1, 8);
    a.add(R0, R0, R5);
    a.ret();
    a.func_end();

    // sys_disk_read / sys_disk_write: program the DMA controller via
    // port I/O and wait for the completion interrupt, yielding while
    // the transfer is in flight.
    // Waiting is done by spinning with a periodic interrupt window (so the
    // completion IRQ and the timer tick can be delivered) rather than by
    // rescheduling on every poll — keeping the context-switch rate at the
    // timer-tick scale, as in a kernel that blocks waiters.
    auto emit_disk_syscall = [&](const std::string& name, dev::Port go_port) {
        a.func_begin(name);
        a.label(name + "_wait_idle");
        // Contention wait: poll the status port directly (a tight
        // spinlock-style wait, not the layered request path).
        a.in(R3, dev::kPortDiskStatus);
        a.ldi(R4, 1);
        a.beq(R3, R4, name + "_issue");
        a.sti();
        for (int pad = 0; pad < 8; ++pad)
            a.nop();
        a.cli();
        a.jmp(name + "_wait_idle");
        a.label(name + "_issue");
        a.ldi(R3, 0);
        a.out(dev::kPortDiskBlock, R1);
        a.out(dev::kPortDiskAddr, R2);
        a.out(go_port, R3);
        // Snapshot the completion counter; interrupts are off, so our
        // completion cannot fire before the snapshot.
        a.ldi(R4, static_cast<std::int64_t>(kDiskDoneFlag));
        a.ld(R2, R4, 0);
        a.label(name + "_wait_done");
        a.sti();
        for (int pad = 0; pad < 12; ++pad)
            a.nop();
        a.cli();
        a.call("k_disk_check_done");
        a.beq(R3, R2, name + "_wait_done");
        a.ldi(R0, 0);
        a.iret();
        a.func_end();
    };
    // Polling goes through helper layers, as the layered block stack of
    // a real kernel would (request queue -> driver -> controller).
    a.func_begin("k_disk_poll_status");
    a.call("k_disk_poll_status_hw");
    a.ret();
    a.func_end();
    a.func_begin("k_disk_poll_status_hw");
    a.in(R3, dev::kPortDiskStatus);
    a.ret();
    a.func_end();
    a.func_begin("k_disk_check_done");
    a.ldi(R4, static_cast<std::int64_t>(kDiskDoneFlag));
    a.ld(R3, R4, 0);
    a.ret();
    a.func_end();

    emit_disk_syscall("k_sc_disk_read", dev::kPortDiskGoRead);
    emit_disk_syscall("k_sc_disk_write", dev::kPortDiskGoWrite);

    a.func_begin("k_sc_nic_send");
    a.ldi(R2, static_cast<std::int64_t>(dev::kMmioBase + dev::kNicTx));
    a.st(R2, 0, R1);
    a.ldi(R0, 0);
    a.iret();
    a.func_end();

    // sys_bugcheck: a recoverable kernel bug deep in a call chain. The
    // recovery path abandons the nested frames (imperfect nesting,
    // Section 4.5) and terminates the thread, orphaning its RAS entries.
    a.func_begin("k_sc_bugcheck");
    a.call("k_buggy_a");
    a.iret();  // never reached
    a.func_end();
    a.func_begin("k_buggy_a");
    a.call("k_buggy_b");
    a.ret();
    a.func_end();
    a.func_begin("k_buggy_b");
    a.call("k_buggy_c");
    a.ret();
    a.func_end();
    a.func_begin("k_buggy_c");
    // "Bug detected": recover by killing the current thread without
    // unwinding. The jmp (not ret) leaves three orphaned RAS entries.
    a.jmp("k_sc_exit");
    a.func_end();

    // -----------------------------------------------------------------
    // sys_logmsg: the vulnerable syscall of Section 6 / Figure 10. Copies
    // r2 bytes from user memory into a 128-byte stack buffer with no
    // bounds check.
    // -----------------------------------------------------------------
    a.func_begin("k_sc_logmsg");
    a.call("k_vulnerable");
    a.label("k_sc_logmsg_ret_site");
    a.iret();
    a.func_end();

    a.func_begin("k_vulnerable");
    a.push(R10);
    a.addsp(-static_cast<std::int32_t>(kLogMsgBufBytes));
    a.getsp(R3);
    a.ldi(R4, 0);
    a.label("k_vuln_copy");
    a.bgeu(R4, R2, "k_vuln_done");
    a.ldb(R5, R1, 0);
    a.stb(R3, 0, R5);
    a.addi(R1, R1, 1);
    a.addi(R3, R3, 1);
    a.addi(R4, R4, 1);
    a.jmp("k_vuln_copy");
    a.label("k_vuln_done");
    a.addsp(static_cast<std::int32_t>(kLogMsgBufBytes));
    a.pop(R10);
    a.label("k_vulnerable_ret");
    a.ret();  // <- the hijacked return
    a.func_end();

    // -----------------------------------------------------------------
    // The attacker's target: a privileged function that flips the "root"
    // flag. Reaching it via the gadget chain is the proof of compromise.
    // -----------------------------------------------------------------
    a.func_begin("k_set_root");
    a.ldi(R1, static_cast<std::int64_t>(kKernelRootFlag));
    a.ldi(R2, 1);
    a.st(R1, 0, R2);
    a.ret();
    a.func_end();

    // -----------------------------------------------------------------
    // Utility functions whose epilogues happen to be useful gadgets —
    // the "existing correct code unwittingly providing malware
    // instructions" of Appendix A.
    // -----------------------------------------------------------------

    // Tail: pop r1; ret  (gadget G1).
    a.func_begin("k_util_swap_save");
    a.push(R1);
    a.mov(R5, R1);
    a.ld(R4, R5, 0);
    a.st(R5, 0, R4);
    a.label("k_gadget_pop_r1");
    a.pop(R1);
    a.ret();
    a.func_end();

    // Tail: ld r2, [r1]; ret  (gadget G2).
    a.func_begin("k_util_deref");
    a.ldi(R2, 0);
    a.label("k_gadget_ld_r2");
    a.ld(R2, R1, 0);
    a.ret();
    a.func_end();

    // Tail: callr r2; ret  (gadget G3).
    a.func_begin("k_util_invoke");
    a.ldi(R1, 0);
    a.label("k_gadget_callr_r2");
    a.callr(R2);
    a.ret();
    a.func_end();

    GuestKernel kernel;
    kernel.image = a.link();
    if (kernel.image.end() > kKernelCodeLimit)
        fatal("kernel image overflows its code segment");
    const auto& image = kernel.image;
    kernel.boot = image.symbol("k_boot");
    kernel.stack_switch_pc = image.symbol("k_stack_switch");
    kernel.switch_ret_pc = image.symbol("k_switch_ret");
    kernel.finish_resched = image.symbol("finish_resched");
    kernel.finish_fork = image.symbol("finish_fork");
    kernel.finish_kthread = image.symbol("finish_kthread");
    kernel.thread_exit_bp = image.symbol("k_sc_exit");
    kernel.thread_spawn_bp = image.symbol("k_thread_spawn_bp");
    kernel.idle_entry = image.symbol("k_idle");
    kernel.set_root = image.symbol("k_set_root");
    kernel.vulnerable_ret = image.symbol("k_vulnerable_ret");
    kernel.logmsg_ret_site = image.symbol("k_sc_logmsg_ret_site");
    return kernel;
}

}  // namespace rsafe::kernel
