#ifndef RSAFE_KERNEL_KERNEL_BUILDER_H_
#define RSAFE_KERNEL_KERNEL_BUILDER_H_

#include "common/types.h"
#include "isa/program.h"

/**
 * @file
 * Builds the guest micro-kernel image.
 *
 * The kernel is a preemptive round-robin multitasking kernel written in the
 * guest ISA. It exhibits, by construction, every RAS false-positive source
 * the paper enumerates (Section 4.1):
 *
 *  - multithreading: the scheduler switches stacks at one single SETSP
 *    instruction (`k_stack_switch`), leaving per-thread RAS state behind;
 *  - a non-procedural return: `k_switch_ret` returns through an address the
 *    scheduler placed on the new stack, targeting one of exactly three
 *    locations (`finish_resched`, `finish_fork`, `finish_kthread`) — the
 *    Ret/Tar whitelist entries;
 *  - RAS underflow: the NIC driver checksums packets with a deep recursive
 *    routine (`k_csum`), overflowing a 48-entry RAS under load;
 *  - imperfect nesting: the bug-recovery path (`sys_bugcheck`) abandons a
 *    nested call chain and terminates the thread.
 *
 * It also contains the Section 6 attack surface: a vulnerable syscall
 * (`sys_logmsg`) that copies a user buffer into a fixed 128-byte stack
 * buffer without a bounds check, utility functions whose tails are usable
 * ROP gadgets, and a privileged `k_set_root` function an attacker wants to
 * reach.
 */

namespace rsafe::kernel {

/** The built kernel plus the addresses the hypervisor needs. */
struct GuestKernel {
    isa::Image image;

    Addr boot = 0;             ///< initial guest PC
    Addr stack_switch_pc = 0;  ///< the single SETSP (context-switch trap)
    Addr switch_ret_pc = 0;    ///< the non-procedural return (RetWhitelist)
    Addr finish_resched = 0;   ///< TarWhitelist[0]
    Addr finish_fork = 0;      ///< TarWhitelist[1]
    Addr finish_kthread = 0;   ///< TarWhitelist[2]
    Addr thread_exit_bp = 0;   ///< trap: recycle the dying thread's BackRAS
    Addr thread_spawn_bp = 0;  ///< trap: reset the new thread's BackRAS
    Addr idle_entry = 0;       ///< kernel-thread body of task 0
    Addr set_root = 0;         ///< the attacker's target function
    Addr vulnerable_ret = 0;   ///< the hijacked return in k_vulnerable
    Addr logmsg_ret_site = 0;  ///< legitimate return site of k_vulnerable
};

/** Emit the guest kernel at kKernelCodeBase. */
GuestKernel build_kernel();

}  // namespace rsafe::kernel

#endif  // RSAFE_KERNEL_KERNEL_BUILDER_H_
