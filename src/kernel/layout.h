#ifndef RSAFE_KERNEL_LAYOUT_H_
#define RSAFE_KERNEL_LAYOUT_H_

#include <cstdint>

#include "common/types.h"

/**
 * @file
 * Guest physical memory layout and the guest kernel ABI.
 *
 * The layout is fixed and public: the hypervisor introspects the task table
 * and scheduler state (Section 5.2.1 finds a task_struct from a stack
 * pointer), workload generators emit code against the syscall ABI, and the
 * attack builder computes absolute addresses (the guest has no ASLR, which
 * is exactly the setting ROP attackers exploit).
 */

namespace rsafe::kernel {

// ---------------------------------------------------------------------------
// Physical memory map.
// ---------------------------------------------------------------------------

/** Guest RAM size. */
inline constexpr std::size_t kGuestRamBytes = 32 * 1024 * 1024;

/** Interrupt vector table (8-byte slots; slot indices below). */
inline constexpr Addr kIvtBase = 0x1000;

/** Kernel code segment (read + execute after boot). */
inline constexpr Addr kKernelCodeBase = 0x2000;
inline constexpr Addr kKernelCodeLimit = 0x10000;

/** Kernel data segment (task table, scheduler state, driver state). */
inline constexpr Addr kKernelDataBase = 0x10000;
inline constexpr Addr kKernelDataLimit = 0x20000;

/** Kernel task stacks: one per task slot, growing down within the slot. */
inline constexpr Addr kTaskStackBase = 0x20000;
inline constexpr std::size_t kTaskStackSize = 0x2000;  ///< 8 KiB each
inline constexpr std::size_t kMaxTasks = 16;

/** User code segment (read + execute). */
inline constexpr Addr kUserCodeBase = 0x60000;
inline constexpr Addr kUserCodeLimit = 0x100000;

/**
 * JIT region: the tail of the user code segment stays RWX so sanctioned
 * runtime code generation (self-patching workloads) is possible. The
 * W^X detector's policy treats entering this region at its base as
 * benign JIT dispatch; anything else fetched from a written page is
 * classified as code injection.
 */
inline constexpr Addr kJitRegionBase = 0xF8000;
inline constexpr Addr kJitRegionLimit = 0x100000;

/** User data segment (buffers, jmp_bufs, packet buffers). */
inline constexpr Addr kUserDataBase = 0x100000;
inline constexpr Addr kUserDataLimit = 0x400000;

/**
 * The dispatch-table slice: one user-data slice (no task owns it)
 * reserved for function-pointer tables. The slice carries a write
 * discipline — programs store into it only through materialized
 * constant addresses (the publish idiom) — which is what lets the
 * static value-set pass track its slots interprocedurally and emit
 * exact per-site CFI target sets (the analogue of ELF relro keeping
 * vtables/GOT away from arbitrary heap writes).
 */
inline constexpr Addr kDispatchTableBase = kUserDataBase + 20 * 0x10000;
inline constexpr Addr kDispatchTableLimit = kDispatchTableBase + 0x10000;

/** Workload working-set region (page-dirtying traffic for checkpoints). */
inline constexpr Addr kWorkingSetBase = 0x400000;
inline constexpr Addr kWorkingSetLimit = 0x1400000;

/** @return the top (initial sp) of task slot @p slot's stack. */
constexpr Addr
task_stack_top(std::size_t slot)
{
    return kTaskStackBase + (slot + 1) * kTaskStackSize;
}

/** @return the lowest valid address of task slot @p slot's stack. */
constexpr Addr
task_stack_bottom(std::size_t slot)
{
    return kTaskStackBase + slot * kTaskStackSize;
}

/**
 * @return the task slot whose stack contains @p sp, or kMaxTasks.
 * This is the hypervisor's sp -> task_struct introspection step.
 */
constexpr std::size_t
task_slot_of_sp(Addr sp)
{
    if (sp <= kTaskStackBase ||
        sp > kTaskStackBase + kMaxTasks * kTaskStackSize) {
        return kMaxTasks;
    }
    return static_cast<std::size_t>((sp - 1 - kTaskStackBase) /
                                    kTaskStackSize);
}

// ---------------------------------------------------------------------------
// IVT slots.
// ---------------------------------------------------------------------------

inline constexpr std::size_t kIvtSlotTimer = 0;
inline constexpr std::size_t kIvtSlotDisk = 1;
inline constexpr std::size_t kIvtSlotSyscall = 7;

// ---------------------------------------------------------------------------
// Task table ("task_struct" array) and scheduler state, introspectable.
// ---------------------------------------------------------------------------

/** task_struct field offsets within one kTaskStructSize-byte slot. */
inline constexpr Addr kTaskTableBase = kKernelDataBase;
inline constexpr std::size_t kTaskStructSize = 64;
inline constexpr std::size_t kTaskOffTid = 0;
inline constexpr std::size_t kTaskOffState = 8;
inline constexpr std::size_t kTaskOffSavedSp = 16;
inline constexpr std::size_t kTaskOffEntry = 24;
inline constexpr std::size_t kTaskOffKind = 32;   ///< 0 user, 1 kthread

/** Task states. */
inline constexpr Word kTaskStateFree = 0;
inline constexpr Word kTaskStateRunnable = 1;
inline constexpr Word kTaskStateDead = 2;

/** @return guest address of task slot @p slot's task_struct. */
constexpr Addr
task_struct_addr(std::size_t slot)
{
    return kTaskTableBase + slot * kTaskStructSize;
}

/** Scheduler/driver state words (one 8-byte word each). */
inline constexpr Addr kSchedBase = kTaskTableBase + kMaxTasks * kTaskStructSize;
inline constexpr Addr kSchedCurrent = kSchedBase + 0;        ///< current slot
inline constexpr Addr kSchedCtxSwitches = kSchedBase + 8;    ///< DOS counter
inline constexpr Addr kSchedLiveUserTasks = kSchedBase + 16;
inline constexpr Addr kSchedTicks = kSchedBase + 24;
inline constexpr Addr kDiskDoneFlag = kSchedBase + 32;
inline constexpr Addr kKernelRootFlag = kSchedBase + 40;  ///< attack evidence
inline constexpr Addr kKernelScratch = kSchedBase + 48;

// ---------------------------------------------------------------------------
// Syscall ABI. Number in r0; args in r1..r3; result in r0.
// Syscalls may clobber r0..r5; r14/r15 are kernel-reserved at all times.
// ---------------------------------------------------------------------------

inline constexpr Word kSysYield = 0;
inline constexpr Word kSysExit = 1;
inline constexpr Word kSysGetTime = 2;
inline constexpr Word kSysNicRecv = 3;   ///< r1 = buffer; ret r0 = length
inline constexpr Word kSysDiskRead = 4;  ///< r1 = block, r2 = buffer
inline constexpr Word kSysDiskWrite = 5; ///< r1 = block, r2 = buffer
inline constexpr Word kSysNicSend = 6;   ///< r1 = length
inline constexpr Word kSysBugcheck = 7;  ///< kernel bug-recovery path
inline constexpr Word kSysLogMsg = 8;    ///< r1 = msg ptr, r2 = len (VULN!)
inline constexpr Word kSysSpin = 9;      ///< r1 = iterations; kernel-mode
                                         ///< busy loop with interrupts off
                                         ///< (the DOS scenario of Table 1)
inline constexpr Word kSysChecksum = 10; ///< r1 = buf, r2 = len: recursive
                                         ///< kernel checksum (call-dense)
inline constexpr Word kSysSpawn = 11;    ///< r1 = entry: create a user task
                                         ///< (reuses dead slots and their
                                         ///< thread IDs, Section 5.2.2)

/** Size of the (deliberately unchecked) sys_logmsg stack buffer. */
inline constexpr std::size_t kLogMsgBufBytes = 128;

}  // namespace rsafe::kernel

#endif  // RSAFE_KERNEL_LAYOUT_H_
