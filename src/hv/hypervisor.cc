#include "hv/hypervisor.h"

#include "common/log.h"
#include "kernel/layout.h"
#include "obs/trace.h"

namespace rsafe::hv {

using cpu::Costs;

// ---------------------------------------------------------------------------
// VmEnvBase
// ---------------------------------------------------------------------------

VmEnvBase::VmEnvBase(Vm* vm, bool manage_backras, bool whitelists)
    : vm_(vm), intro_(&vm->mem()), manage_backras_(manage_backras)
{
    auto& cpu = vm_->cpu();
    const auto& kernel = vm_->guest_kernel();
    cpu.vmcs().controls.whitelist_enabled = whitelists;
    if (whitelists) {
        cpu.ras().set_ret_whitelist({kernel.switch_ret_pc});
        cpu.ras().set_tar_whitelist({kernel.finish_resched,
                                     kernel.finish_fork,
                                     kernel.finish_kthread});
    }
    if (manage_backras_) {
        cpu.vmcs().breakpoints.insert(kernel.stack_switch_pc);
        cpu.vmcs().breakpoints.insert(kernel.thread_exit_bp);
        if (kernel.thread_spawn_bp != 0)
            cpu.vmcs().breakpoints.insert(kernel.thread_spawn_bp);
    }
    cpu.set_env(this);
}

void
VmEnvBase::on_breakpoint(Addr pc)
{
    const auto& kernel = vm_->guest_kernel();
    if (pc == kernel.stack_switch_pc) {
        handle_context_switch();
    } else if (pc == kernel.thread_exit_bp) {
        handle_thread_exit();
    } else if (pc == kernel.thread_spawn_bp) {
        handle_thread_spawn();
    }
}

void
VmEnvBase::handle_thread_spawn()
{
    // The kernel just created a task, possibly reusing a dead slot's
    // thread ID; any stale BackRAS entry for that tid must go before the
    // new thread first runs (Section 5.2.2). The new tid is in a register
    // at the trap point (kernel spawn-path convention).
    const auto tid = static_cast<ThreadId>(vm_->cpu().reg(2));
    backras_.erase(tid);
    ++stats_.thread_spawns;
}

void
VmEnvBase::handle_context_switch()
{
    auto& cpu = vm_->cpu();
    // The next thread's stack pointer is in a register at the trap point;
    // walk sp -> task_struct -> tid (Section 5.2.1).
    const Addr new_sp = cpu.reg(kSwitchSpReg);
    const ThreadId new_tid = intro_.tid_of_sp(new_sp);

    if (manage_backras_) {
        // Microcode: dump the RAS into the departing thread's BackRAS
        // entry (discarded if that thread just died), then reload the
        // arriving thread's entry.
        cpu::SavedRas saved = cpu.ras().save_and_clear();
        cpu.add_cycles(Costs::kRasSave);
        if (have_current_ && !dying_)
            backras_.save(current_tid_, std::move(saved));
        dying_ = false;
        cpu.ras().load(backras_.load(new_tid));
        cpu.add_cycles(Costs::kRasRestore);
    }

    current_tid_ = new_tid;
    have_current_ = true;
    ++stats_.context_switches;
    obs::Tracer::instance().instant("hv.context_switch", "hv", "tid",
                                    new_tid);
    hook_context_switch(new_tid);
}

void
VmEnvBase::handle_thread_exit()
{
    // The dying thread's ID via introspection; delete its BackRAS entry
    // now, and discard the RAS dump at the upcoming context switch so the
    // entry is not silently recreated for a reused tid (Section 5.2.2).
    const std::size_t slot = intro_.current_slot();
    const ThreadId tid = intro_.tid_of_slot(slot);
    backras_.erase(tid);
    if (have_current_ && tid == current_tid_)
        dying_ = true;
    ++stats_.thread_exits;
}

void
VmEnvBase::hook_context_switch(ThreadId tid)
{
    (void)tid;
}

void
VmEnvBase::restore_context(ThreadId tid, bool have, bool dying)
{
    current_tid_ = tid;
    have_current_ = have;
    dying_ = dying;
}

// ---------------------------------------------------------------------------
// Hypervisor (live)
// ---------------------------------------------------------------------------

Hypervisor::Hypervisor(Vm* vm, const HvOptions& options)
    : VmEnvBase(vm, options.manage_backras, options.whitelists),
      options_(options)
{
    auto& cpu = vm_->cpu();
    cpu.vmcs().controls.exit_on_io = options.mediate_io;
    cpu.vmcs().controls.exit_on_rdtsc = options.trap_rdtsc;
    cpu.vmcs().controls.ras_alarm_enabled = options.ras_alarms;
    cpu.vmcs().controls.ras_evict_exit = options.evict_exits;
    cpu.set_pv_bus(this);
}

RunResult
Hypervisor::run(InstrCount max_icount)
{
    auto& cpu = vm_->cpu();
    // Quantum bound on one cpu.run() call: an async request_stop() is
    // honored at the next pause even when no device event is due. Pausing
    // at a cycle limit and resuming is guest-invisible, so the bound has
    // no effect on recorded state.
    constexpr Cycles kStopPollQuantum = 5'000'000;
    while (true) {
        if (stop_requested_.load(std::memory_order_relaxed))
            return RunResult::kInstrLimit;
        Cycles stop = vm_->hub().next_event_cycle();
        const Cycles poll = cpu.cycles() + kStopPollQuantum;
        if (poll < stop)
            stop = poll;
        // If injections are pending delivery, poll again soon.
        if (!irq_queue_.empty() || cpu.vmcs().pending_irq) {
            const Cycles retry = cpu.cycles() + 5000;
            if (retry < stop)
                stop = retry;
        }
        const auto reason = cpu.run(stop, max_icount);
        switch (reason) {
          case cpu::StopReason::kCycleLimit:
            process_device_events();
            break;
          case cpu::StopReason::kHalt:
            hook_halt();
            return RunResult::kHalted;
          case cpu::StopReason::kInstrLimit:
            return RunResult::kInstrLimit;
          case cpu::StopReason::kPerfStop:
            // Live mode never arms the perf counter; treat as a limit.
            return RunResult::kInstrLimit;
          case cpu::StopReason::kMemFault:
          case cpu::StopReason::kBadInstr:
            warn("guest fault: " + cpu.fault_reason());
            return RunResult::kGuestFault;
        }
    }
}

void
Hypervisor::process_device_events()
{
    auto& cpu = vm_->cpu();
    auto& hub = vm_->hub();
    while (auto event = hub.take_event(cpu.cycles())) {
        // Device-side completion effects apply as soon as the hypervisor
        // takes the event: the controller is free again and any read DMA
        // lands in guest memory — even if the interrupt has to wait for
        // an earlier injection to be delivered.
        if (event->disk) {
            if (event->disk->is_read) {
                vm_->mem().write_block(event->disk->guest_addr,
                                       event->disk->data.data(),
                                       event->disk->data.size());
            }
            hook_disk_complete();
        }
        irq_queue_.push_back(std::move(*event));
    }

    if (!cpu.vmcs().pending_irq && !irq_queue_.empty()) {
        dev::AsyncEvent event = std::move(irq_queue_.front());
        irq_queue_.pop_front();
        // The asynchronous VMExit that injects the interrupt.
        cpu.add_cycles(Costs::kVmTransition);
        cpu.vmcs().pending_irq = event.vector;
        ++stats_.irq_injections;
        hook_irq_inject(event.vector);
    }
}

Word
Hypervisor::on_rdtsc()
{
    auto& cpu = vm_->cpu();
    const Word value = vm_->hub().read_tsc(cpu.cycles());
    hook_rdtsc(value);
    return value;
}

Word
Hypervisor::on_io_in(std::uint16_t port)
{
    const Word value = vm_->hub().io_read(port, vm_->cpu().cycles());
    hook_io_in(port, value);
    return value;
}

void
Hypervisor::on_io_out(std::uint16_t port, Word value)
{
    vm_->hub().io_write(port, value, vm_->cpu().cycles());
    // The write may have started a transfer completing before the stop
    // this run slice was armed with.
    vm_->cpu().tighten_stop(vm_->hub().next_event_cycle());
}

Word
Hypervisor::on_mmio_read(Addr addr)
{
    const Word value = vm_->hub().mmio_read(addr, vm_->cpu().cycles());
    hook_mmio_read(addr, value);
    return value;
}

void
Hypervisor::on_mmio_write(Addr addr, Word value)
{
    auto effect = vm_->hub().mmio_write(addr, value, vm_->cpu().cycles());
    if (effect.has_dma) {
        vm_->mem().write_block(effect.dma_addr, effect.dma_data.data(),
                               effect.dma_data.size());
        stats_.net_dma_bytes += effect.dma_data.size();
        ++stats_.net_packets;
        hook_nic_dma(effect.dma_addr, effect.dma_data);
    }
}

void
Hypervisor::on_ras_alarm(const cpu::RasAlarm& alarm)
{
    switch (alarm.kind) {
      case cpu::RasAlarmKind::kMispredict:
        ++stats_.alarms_mispredict;
        break;
      case cpu::RasAlarmKind::kUnderflow:
        ++stats_.alarms_underflow;
        break;
      case cpu::RasAlarmKind::kWhitelistMiss:
        ++stats_.alarms_whitelist_miss;
        break;
    }
    hook_ras_alarm(alarm);
}

void
Hypervisor::on_ras_evict(Addr evicted)
{
    ++stats_.evict_records;
    hook_ras_evict(evicted);
}

void
Hypervisor::on_call_ret(const cpu::CallRetEvent& event)
{
    (void)event;  // Only the alarm replayer traps call/ret.
}

Word
Hypervisor::pv_rdtsc()
{
    return vm_->hub().read_tsc(vm_->cpu().cycles());
}

Word
Hypervisor::pv_io_in(std::uint16_t port)
{
    return vm_->hub().io_read(port, vm_->cpu().cycles());
}

void
Hypervisor::pv_io_out(std::uint16_t port, Word value)
{
    vm_->hub().io_write(port, value, vm_->cpu().cycles());
    vm_->cpu().tighten_stop(vm_->hub().next_event_cycle());
}

Word
Hypervisor::pv_mmio_read(Addr addr)
{
    return vm_->hub().mmio_read(addr, vm_->cpu().cycles());
}

void
Hypervisor::pv_mmio_write(Addr addr, Word value)
{
    auto effect = vm_->hub().mmio_write(addr, value, vm_->cpu().cycles());
    if (effect.has_dma) {
        vm_->mem().write_block(effect.dma_addr, effect.dma_data.data(),
                               effect.dma_data.size());
        stats_.net_dma_bytes += effect.dma_data.size();
        ++stats_.net_packets;
    }
}

}  // namespace rsafe::hv
