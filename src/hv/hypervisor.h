#ifndef RSAFE_HV_HYPERVISOR_H_
#define RSAFE_HV_HYPERVISOR_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <vector>

#include "common/types.h"
#include "cpu/cpu.h"
#include "hv/back_ras.h"
#include "hv/introspect.h"
#include "hv/vm.h"

/**
 * @file
 * The hypervisor: VM-exit handling shared by every execution mode, plus
 * the live environment used for plain runs and (via the Recorder subclass)
 * for monitored recording.
 *
 * VmEnvBase implements the paper's Section 5.2 hypervisor duties that are
 * common to the recorded VM and both replayers: trapping the guest
 * kernel's stack-switch instruction, introspecting the next thread's ID
 * from its stack pointer, driving the BackRAS save/restore microcode, and
 * recycling BackRAS entries when threads die.
 *
 * Hypervisor adds the live device plumbing: mediated (or paravirtual)
 * I/O against the DeviceHub and asynchronous event injection.
 */

namespace rsafe::hv {

/** Register the kernel publishes the next thread's sp in at the switch. */
inline constexpr std::size_t kSwitchSpReg = 14;

/** Counters kept by the hypervisor across a run. */
struct HvStats {
    std::uint64_t context_switches = 0;
    std::uint64_t thread_exits = 0;
    std::uint64_t thread_spawns = 0;
    std::uint64_t irq_injections = 0;
    std::uint64_t net_dma_bytes = 0;
    std::uint64_t net_packets = 0;
    std::uint64_t alarms_mispredict = 0;
    std::uint64_t alarms_underflow = 0;
    std::uint64_t alarms_whitelist_miss = 0;
    std::uint64_t evict_records = 0;
};

/** Exit handling common to recording and replaying environments. */
class VmEnvBase : public cpu::CpuEnv {
  public:
    /**
     * @param vm               the machine this environment drives.
     * @param manage_backras   install the context-switch/thread-exit traps
     *                         and run the BackRAS microcode (Section 4.3).
     * @param whitelists       install the Ret/Tar whitelists (Section 4.4).
     */
    VmEnvBase(Vm* vm, bool manage_backras, bool whitelists);

    /** The hypervisor-side BackRAS store. */
    BackRasTable& backras() { return backras_; }
    const BackRasTable& backras() const { return backras_; }

    /** @return the tid of the thread currently running in the guest. */
    ThreadId current_tid() const { return current_tid_; }

    /** @return true once a first context switch established a thread. */
    bool have_current_tid() const { return have_current_; }

    /** Guest-state introspection helper. */
    const Introspector& introspector() const { return intro_; }

    /** Aggregate counters. */
    const HvStats& stats() const { return stats_; }

    /** Breakpoint dispatch: context switch / thread exit. */
    void on_breakpoint(Addr pc) override;

    /**
     * Restore the per-thread context-tracking state (checkpoint restore).
     */
    void restore_context(ThreadId tid, bool have, bool dying);

    /** Expose tracking state for checkpointing. @{ */
    bool context_dying() const { return dying_; }
    /** @} */

  protected:
    /** Extension point: a context switch to @p tid just happened. */
    virtual void hook_context_switch(ThreadId tid);

    void handle_context_switch();
    void handle_thread_exit();
    void handle_thread_spawn();

    Vm* vm_;
    Introspector intro_;
    BackRasTable backras_;
    HvStats stats_;
    ThreadId current_tid_ = 0;
    bool have_current_ = false;
    bool dying_ = false;
    bool manage_backras_;
};

/** Configuration of a live (recording-side) hypervisor. */
struct HvOptions {
    bool mediate_io = true;      ///< false = paravirtual drivers (NoRecPV)
    bool trap_rdtsc = false;     ///< required for recording
    bool manage_backras = true;  ///< BackRAS save/restore at switches
    bool whitelists = true;      ///< Ret/Tar whitelist hardware
    bool ras_alarms = false;     ///< raise ROP alarms (recorded VM)
    bool evict_exits = false;    ///< dump about-to-be-evicted RAS entries
};

/** Why Hypervisor::run() stopped. */
enum class RunResult {
    kHalted,       ///< workload finished (guest halt)
    kInstrLimit,   ///< reached the requested instruction budget
    kGuestFault,   ///< guest memory fault / bad instruction
};

/** The live hypervisor: devices are real, I/O is mediated or PV. */
class Hypervisor : public VmEnvBase, public cpu::PvBus {
  public:
    Hypervisor(Vm* vm, const HvOptions& options);

    /** Execute the guest until halt, fault, or @p max_icount. */
    RunResult run(InstrCount max_icount);

    /**
     * Ask a run() in progress to stop at the next exit boundary; run()
     * returns kInstrLimit. Callable from any thread (fleet shutdown
     * signals a recording session this way); guest state stays clean —
     * it is exactly an early instruction budget.
     */
    void request_stop()
    {
        stop_requested_.store(true, std::memory_order_relaxed);
    }

    /** @return true once request_stop() was called. */
    bool stop_requested() const
    {
        return stop_requested_.load(std::memory_order_relaxed);
    }

    /** The options this environment was built with. */
    const HvOptions& options() const { return options_; }

    // CpuEnv: mediated device accesses (live).
    Word on_rdtsc() override;
    Word on_io_in(std::uint16_t port) override;
    void on_io_out(std::uint16_t port, Word value) override;
    Word on_mmio_read(Addr addr) override;
    void on_mmio_write(Addr addr, Word value) override;
    void on_ras_alarm(const cpu::RasAlarm& alarm) override;
    void on_ras_evict(Addr evicted) override;
    void on_call_ret(const cpu::CallRetEvent& event) override;

    // PvBus: unmediated device accesses (paravirtual baseline).
    Word pv_rdtsc() override;
    Word pv_io_in(std::uint16_t port) override;
    void pv_io_out(std::uint16_t port, Word value) override;
    Word pv_mmio_read(Addr addr) override;
    void pv_mmio_write(Addr addr, Word value) override;

  protected:
    /** Recording hooks (no-ops in the plain live hypervisor). @{ */
    virtual void hook_rdtsc(Word value) {}
    virtual void hook_io_in(std::uint16_t port, Word value) {}
    virtual void hook_mmio_read(Addr addr, Word value) {}
    virtual void hook_nic_dma(Addr addr,
                              const std::vector<std::uint8_t>& data) {}
    virtual void hook_irq_inject(std::uint8_t vector) {}
    virtual void hook_disk_complete() {}
    virtual void hook_ras_alarm(const cpu::RasAlarm& alarm) {}
    virtual void hook_ras_evict(Addr evicted) {}
    virtual void hook_halt() {}
    /** @} */

    /** Drain due device events and inject at most one pending IRQ. */
    void process_device_events();

    HvOptions options_;
    std::deque<dev::AsyncEvent> irq_queue_;
    std::atomic<bool> stop_requested_{false};
};

}  // namespace rsafe::hv

#endif  // RSAFE_HV_HYPERVISOR_H_
