#include "hv/back_ras.h"

namespace rsafe::hv {

void
BackRasTable::save(ThreadId tid, cpu::SavedRas saved)
{
    bytes_transferred_ += 8 * saved.entries.size() + 8;  // entries + count
    entries_[tid] = std::move(saved);
}

cpu::SavedRas
BackRasTable::load(ThreadId tid)
{
    auto it = entries_.find(tid);
    if (it == entries_.end())
        return {};
    bytes_transferred_ += 8 * it->second.entries.size() + 8;
    return it->second;
}

void
BackRasTable::erase(ThreadId tid)
{
    entries_.erase(tid);
}

void
BackRasTable::restore(std::map<ThreadId, cpu::SavedRas> entries)
{
    entries_ = std::move(entries);
}

}  // namespace rsafe::hv
