#include "hv/vm.h"

#include "common/log.h"
#include "kernel/layout.h"

namespace rsafe::hv {

namespace k = rsafe::kernel;

Vm::Vm(const VmConfig& config)
    : config_(config), kernel_(k::build_kernel())
{
    mem_ = std::make_unique<mem::PhysMem>(config.ram_bytes);
    hub_ = std::make_unique<dev::DeviceHub>(config.devices, mem_.get());
    cpu_ = std::make_unique<cpu::Cpu>(mem_.get(), config.ras_depth);
    mem_->load_image(kernel_.image);
    // Slot 0 is always the idle kernel thread; it opens the interrupt
    // window and halts the machine when the last user task exits.
    tasks_.push_back(TaskSpec{kernel_.idle_entry, /*is_kthread=*/true});
}

void
Vm::load_user_image(const isa::Image& image)
{
    if (finalized_)
        fatal("Vm: load_user_image after finalize");
    if (image.base() < k::kUserCodeBase || image.end() > k::kUserCodeLimit)
        fatal("Vm: user image outside the user code segment");
    mem_->load_image(image);
    user_images_.push_back(image);
}

void
Vm::add_user_task(Addr entry)
{
    if (finalized_)
        fatal("Vm: add_user_task after finalize");
    if (tasks_.size() >= k::kMaxTasks)
        fatal("Vm: too many tasks");
    tasks_.push_back(TaskSpec{entry, /*is_kthread=*/false});
}

void
Vm::finalize()
{
    if (finalized_)
        fatal("Vm: finalize called twice");
    finalized_ = true;

    // Seed the task table and stacks (the bootloader's job). Each fresh
    // task's stack holds exactly one word: the address the scheduler's
    // non-procedural return will pop on the task's first activation.
    Word live_user = 0;
    for (std::size_t slot = 0; slot < tasks_.size(); ++slot) {
        const TaskSpec& spec = tasks_[slot];
        const Addr ts = k::task_struct_addr(slot);
        const Addr seed_sp = k::task_stack_top(slot) - 8;
        const Addr target = spec.is_kthread ? kernel_.finish_kthread
                                            : kernel_.finish_fork;
        mem_->write_raw(seed_sp, 8, target);
        mem_->write_raw(ts + k::kTaskOffTid, 8, slot);
        mem_->write_raw(ts + k::kTaskOffState, 8, k::kTaskStateRunnable);
        mem_->write_raw(ts + k::kTaskOffSavedSp, 8, seed_sp);
        mem_->write_raw(ts + k::kTaskOffEntry, 8, spec.entry);
        mem_->write_raw(ts + k::kTaskOffKind, 8, spec.is_kthread ? 1 : 0);
        if (!spec.is_kthread)
            ++live_user;
    }
    mem_->write_raw(k::kSchedLiveUserTasks, 8, live_user);

    // W^X permissions: code is never writable, data is never executable.
    mem_->set_perms(0, kPageSize, mem::kPermNone);  // null page
    mem_->set_perms(k::kIvtBase, kPageSize, mem::kPermRW);
    mem_->set_perms(k::kKernelCodeBase,
                    k::kKernelCodeLimit - k::kKernelCodeBase, mem::kPermRX);
    mem_->set_perms(k::kKernelDataBase,
                    k::kKernelDataLimit - k::kKernelDataBase, mem::kPermRW);
    mem_->set_perms(k::kTaskStackBase, k::kMaxTasks * k::kTaskStackSize,
                    mem::kPermRW);
    mem_->set_perms(k::kUserCodeBase, k::kUserCodeLimit - k::kUserCodeBase,
                    mem::kPermRX);
    // The declared JIT carve-out at the tail of user code stays writable
    // so sanctioned runtime code generation is possible; the W^X
    // detector polices what actually runs from it.
    mem_->set_perms(k::kJitRegionBase,
                    k::kJitRegionLimit - k::kJitRegionBase, mem::kPermRWX);
    mem_->set_perms(k::kUserDataBase, k::kUserDataLimit - k::kUserDataBase,
                    mem::kPermRW);
    mem_->set_perms(k::kWorkingSetBase,
                    k::kWorkingSetLimit - k::kWorkingSetBase, mem::kPermRW);

    // Boot state: kernel mode, interrupts off, at the kernel entry, on a
    // scratch boot stack (the tail of the last task-stack page is unused
    // until that many tasks exist).
    auto& state = cpu_->state();
    state.pc = kernel_.boot;
    state.sp = k::task_stack_top(k::kMaxTasks - 1);
    state.mode = cpu::Mode::kKernel;
    state.iflag = false;

    // Fresh boot: nothing dirty yet from the loader's perspective.
    mem_->clear_dirty();
    hub_->disk().clear_dirty();
}

std::uint64_t
Vm::state_hash() const
{
    std::uint64_t hash = mem_->content_hash();
    hash ^= hub_->disk().content_hash() + 0x9e3779b97f4a7c15ULL +
            (hash << 6) + (hash >> 2);
    return hash;
}

}  // namespace rsafe::hv
