#include "hv/introspect.h"

#include "common/log.h"
#include "kernel/layout.h"

namespace rsafe::hv {

std::size_t
Introspector::slot_of_sp(Addr sp) const
{
    return kernel::task_slot_of_sp(sp);
}

ThreadId
Introspector::tid_of_slot(std::size_t slot) const
{
    const Addr ts = kernel::task_struct_addr(slot);
    return static_cast<ThreadId>(
        mem_->read_raw(ts + kernel::kTaskOffTid, 8));
}

ThreadId
Introspector::tid_of_sp(Addr sp) const
{
    const std::size_t slot = slot_of_sp(sp);
    if (slot >= kernel::kMaxTasks)
        panic("Introspector: stack pointer outside all task stacks");
    return tid_of_slot(slot);
}

std::size_t
Introspector::current_slot() const
{
    return static_cast<std::size_t>(
        mem_->read_raw(kernel::kSchedCurrent, 8));
}

Word
Introspector::task_state(std::size_t slot) const
{
    const Addr ts = kernel::task_struct_addr(slot);
    return mem_->read_raw(ts + kernel::kTaskOffState, 8);
}

Word
Introspector::context_switches() const
{
    return mem_->read_raw(kernel::kSchedCtxSwitches, 8);
}

Word
Introspector::live_user_tasks() const
{
    return mem_->read_raw(kernel::kSchedLiveUserTasks, 8);
}

Word
Introspector::root_flag() const
{
    return mem_->read_raw(kernel::kKernelRootFlag, 8);
}

}  // namespace rsafe::hv
