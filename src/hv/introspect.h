#ifndef RSAFE_HV_INTROSPECT_H_
#define RSAFE_HV_INTROSPECT_H_

#include "common/types.h"
#include "mem/phys_mem.h"

/**
 * @file
 * Guest-kernel introspection (Section 5.2.1).
 *
 * The hypervisor never relies on guest cooperation: it reads scheduler and
 * task state directly out of guest memory, using the task_struct layout
 * from kernel/layout.h. The central operation mirrors the paper's: given
 * the next thread's stack pointer (visible in a register at the
 * context-switch trap), locate its task_struct and read its thread ID.
 */

namespace rsafe::hv {

/** Read-only view of guest kernel state. */
class Introspector {
  public:
    explicit Introspector(const mem::PhysMem* mem) : mem_(mem) {}

    /** @return the task slot owning the stack containing @p sp,
     *  or kMaxTasks if @p sp is not in any task stack. */
    std::size_t slot_of_sp(Addr sp) const;

    /** @return the tid stored in slot @p slot's task_struct. */
    ThreadId tid_of_slot(std::size_t slot) const;

    /** sp -> task_struct -> tid: the full Section 5.2.1 walk. */
    ThreadId tid_of_sp(Addr sp) const;

    /** @return the scheduler's current task slot. */
    std::size_t current_slot() const;

    /** @return the task state word of slot @p slot. */
    Word task_state(std::size_t slot) const;

    /** @return the guest's context-switch counter (DOS detector input). */
    Word context_switches() const;

    /** @return the number of live user tasks. */
    Word live_user_tasks() const;

    /** @return the kernel "root" flag (attack-evidence word). */
    Word root_flag() const;

  private:
    const mem::PhysMem* mem_;
};

}  // namespace rsafe::hv

#endif  // RSAFE_HV_INTROSPECT_H_
