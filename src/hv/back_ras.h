#ifndef RSAFE_HV_BACK_RAS_H_
#define RSAFE_HV_BACK_RAS_H_

#include <cstdint>
#include <map>

#include "common/types.h"
#include "cpu/ras.h"

/**
 * @file
 * The hypervisor-side BackRAS store (Section 4.3, Figure 2).
 *
 * The BackRAS array lives "in a memory area inaccessible to the guest
 * machine", keyed by thread ID — we model it as a host-side hash map from
 * tid to saved RAS contents, exactly as Section 5.2.1 describes ("a hash
 * table mapping a thread's ID to its BackRAS entry"). Save/restore byte
 * counts are tracked to reproduce the BackRAS bandwidth of Figure 6(b).
 */

namespace rsafe::hv {

/** Host-side array of per-thread saved RAS contents. */
class BackRasTable {
  public:
    /** Store @p saved as thread @p tid's BackRAS entry. */
    void save(ThreadId tid, cpu::SavedRas saved);

    /** @return thread @p tid's entry (empty if none); counts bandwidth. */
    cpu::SavedRas load(ThreadId tid);

    /** Remove thread @p tid's entry (thread killed; Section 5.2.2). */
    void erase(ThreadId tid);

    /** @return true if @p tid currently has an entry. */
    bool contains(ThreadId tid) const { return entries_.count(tid) != 0; }

    /** @return number of live entries. */
    std::size_t size() const { return entries_.size(); }

    /** Whole-table copy (stored into checkpoints). */
    const std::map<ThreadId, cpu::SavedRas>& entries() const
    {
        return entries_;
    }

    /** Replace the whole table (checkpoint restore). */
    void restore(std::map<ThreadId, cpu::SavedRas> entries);

    /** @return total bytes moved by saves+restores (8 bytes/entry). */
    std::uint64_t bytes_transferred() const { return bytes_transferred_; }

  private:
    std::map<ThreadId, cpu::SavedRas> entries_;
    std::uint64_t bytes_transferred_ = 0;
};

}  // namespace rsafe::hv

#endif  // RSAFE_HV_BACK_RAS_H_
