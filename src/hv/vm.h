#ifndef RSAFE_HV_VM_H_
#define RSAFE_HV_VM_H_

#include <memory>
#include <vector>

#include "common/types.h"
#include "cpu/cpu.h"
#include "dev/device_hub.h"
#include "isa/program.h"
#include "kernel/kernel_builder.h"
#include "kernel/layout.h"
#include "mem/phys_mem.h"

/**
 * @file
 * A complete virtual machine: guest memory, the virtual CPU, the device
 * complement, the guest kernel image, and the firmware-style setup that
 * seeds task stacks before boot.
 *
 * One Vm instance plays each of the paper's three roles: the recorded VM,
 * the checkpointing-replayer VM, and alarm-replayer VMs — the difference
 * is only in which environment (recorder/replayer) is bound to the CPU
 * and how the VMCS is programmed.
 */

namespace rsafe::hv {

/** A task to create at boot. */
struct TaskSpec {
    Addr entry = 0;
    bool is_kthread = false;
};

/** Construction parameters of a Vm. */
struct VmConfig {
    std::size_t ram_bytes = kernel::kGuestRamBytes;
    std::size_t ras_depth = cpu::Ras::kDefaultDepth;
    dev::DeviceConfig devices;
};

/** A fully assembled guest machine. */
class Vm {
  public:
    explicit Vm(const VmConfig& config);

    /** Load a user program image (call before finalize()). */
    void load_user_image(const isa::Image& image);

    /** Add a user task starting at @p entry (call before finalize()). */
    void add_user_task(Addr entry);

    /**
     * Seed task stacks and boot state. Creates the idle kernel thread in
     * slot 0 plus every added user task, applies W^X page permissions,
     * and points the CPU at the kernel's boot entry.
     */
    void finalize();

    /** Component access. @{ */
    cpu::Cpu& cpu() { return *cpu_; }
    const cpu::Cpu& cpu() const { return *cpu_; }
    mem::PhysMem& mem() { return *mem_; }
    const mem::PhysMem& mem() const { return *mem_; }
    dev::DeviceHub& hub() { return *hub_; }
    const kernel::GuestKernel& guest_kernel() const { return kernel_; }
    /** The user images loaded via load_user_image, in load order. */
    const std::vector<isa::Image>& user_images() const
    {
        return user_images_;
    }
    const VmConfig& config() const { return config_; }
    /** @} */

    /** Combined RAM+disk content hash (the determinism oracle). */
    std::uint64_t state_hash() const;

  private:
    VmConfig config_;
    kernel::GuestKernel kernel_;
    std::unique_ptr<mem::PhysMem> mem_;
    std::unique_ptr<dev::DeviceHub> hub_;
    std::unique_ptr<cpu::Cpu> cpu_;
    std::vector<TaskSpec> tasks_;
    std::vector<isa::Image> user_images_;
    bool finalized_ = false;
};

}  // namespace rsafe::hv

#endif  // RSAFE_HV_VM_H_
