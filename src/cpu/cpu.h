#ifndef RSAFE_CPU_CPU_H_
#define RSAFE_CPU_CPU_H_

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.h"
#include "cpu/ras.h"
#include "cpu/vmcs.h"
#include "isa/encoding.h"
#include "mem/phys_mem.h"

/**
 * @file
 * The virtual guest CPU: a 64-bit uniprocessor interpreter with the
 * RnR-Safe RAS extensions.
 *
 * The CPU executes guest instructions directly against guest memory and
 * reports everything that must leave guest context through the CpuEnv
 * callback interface — the simulator's analogue of a VMExit. Which events
 * exit is controlled by the Vmcs. Cycle costs of VM transitions are
 * charged by the CPU itself so that recording/replay overhead studies see
 * a consistent cost model.
 *
 * Instruction dispatch runs through a per-page predecoded instruction
 * cache: the first execution on a page decodes all of its fixed-width
 * slots into a flat array, and subsequent fetches cost one generation
 * check plus an index instead of a byte fetch and a decode. PhysMem bumps
 * a page's generation whenever its bytes or permissions may have changed
 * (set_perms, restore_page, write_block/write_raw, guest stores to X
 * pages), which invalidates the predecoded copy. The cache is
 * semantically invisible; set RSAFE_NO_DECODE_CACHE=1 (or call
 * set_decode_cache_enabled(false)) to force the fetch+decode slow path
 * for A/B determinism testing.
 */

namespace rsafe::cpu {

class TbEngine;

/** Privilege modes. */
enum class Mode : std::uint8_t {
    kUser = 0,
    kKernel = 1,
};

/** Why Cpu::run() returned. */
enum class StopReason {
    kHalt,          ///< guest executed halt
    kCycleLimit,    ///< reached the requested cycle bound (host event due)
    kInstrLimit,    ///< reached the requested instruction bound
    kPerfStop,      ///< vmcs.perf_stop reached (replay injection)
    kMemFault,      ///< unrecoverable guest memory fault
    kBadInstr,      ///< undecodable instruction or privilege violation
};

/** Classification of a RAS alarm (the hardware's view). */
enum class RasAlarmKind : std::uint8_t {
    kMispredict = 0,     ///< popped prediction != actual target
    kUnderflow = 1,      ///< RAS empty at a return
    kWhitelistMiss = 2,  ///< whitelisted ret with an illegal target
};

/** Details of a RAS alarm surfaced to the hypervisor. */
struct RasAlarm {
    RasAlarmKind kind = RasAlarmKind::kMispredict;
    Addr ret_pc = 0;      ///< PC of the return instruction
    Addr predicted = 0;   ///< RAS prediction (0 on underflow)
    Addr actual = 0;      ///< target taken from the software stack
    Addr sp_after = 0;    ///< stack pointer after the pop
    Mode mode = Mode::kKernel;
};

/** One traced call/return event (alarm-replayer instrumentation). */
struct CallRetEvent {
    bool is_call = false;
    Addr pc = 0;          ///< address of the call/ret instruction
    Addr target = 0;      ///< call target or ret destination
    Addr link = 0;        ///< for calls: the pushed return address
    Mode mode = Mode::kKernel;
};

/**
 * Hypervisor-side handler of VM exits.
 *
 * Synchronous mediated events (rdtsc, pio, mmio) are completed by the
 * environment and their results returned to the CPU; notification events
 * (breakpoints, alarms, evictions, call/ret traces, interrupt delivery)
 * only inform the environment.
 */
class CpuEnv {
  public:
    virtual ~CpuEnv() = default;

    /** Mediated rdtsc: supply the timestamp value. */
    virtual Word on_rdtsc() = 0;
    /** Mediated pio read: supply the port value. */
    virtual Word on_io_in(std::uint16_t port) = 0;
    /** Mediated pio write. */
    virtual void on_io_out(std::uint16_t port, Word value) = 0;
    /** Mediated MMIO read. */
    virtual Word on_mmio_read(Addr addr) = 0;
    /** Mediated MMIO write (applies any DMA side effects itself). */
    virtual void on_mmio_write(Addr addr, Word value) = 0;
    /** PC breakpoint hit (fires before the instruction executes). */
    virtual void on_breakpoint(Addr pc) = 0;
    /** RAS alarm raised (controls.ras_alarm_enabled). */
    virtual void on_ras_alarm(const RasAlarm& alarm) = 0;
    /** RAS eviction exit (controls.ras_evict_exit). */
    virtual void on_ras_evict(Addr evicted) = 0;
    /** Kernel call/ret trace (controls.trap_kernel_call_ret). */
    virtual void on_call_ret(const CallRetEvent& event) = 0;
    /**
     * Indirect branch/call notification (controls.trap_indirect_branch);
     * the hardware JOP filter hooks in here.
     */
    virtual void on_indirect_branch(Addr pc, Addr target, bool is_call) {}

    /**
     * A fetch hit a W^X-watched page (wx_fetch_exit); the watch on the
     * page is already consumed and kVmTransition charged. @p pc is the
     * not-yet-executed fetch target.
     */
    virtual void on_wx_fetch(Addr pc) {}
    /** A pending virtual interrupt was delivered to the guest. */
    virtual void on_interrupt_delivered(std::uint8_t vector) {}
};

/** Unmediated (paravirtual) device access interface. */
class PvBus {
  public:
    virtual ~PvBus() = default;
    virtual Word pv_rdtsc() = 0;
    virtual Word pv_io_in(std::uint16_t port) = 0;
    virtual void pv_io_out(std::uint16_t port, Word value) = 0;
    virtual Word pv_mmio_read(Addr addr) = 0;
    virtual void pv_mmio_write(Addr addr, Word value) = 0;
};

/** Architectural register state (checkpointed/restored wholesale). */
struct CpuState {
    std::array<Word, isa::kNumRegs> regs{};
    Addr pc = 0;
    Addr sp = 0;
    Mode mode = Mode::kKernel;
    bool iflag = false;   ///< guest interrupt-enable flag
    bool halted = false;
};

/** Event counters the figures are computed from. */
struct CpuStats {
    InstrCount instructions = 0;
    InstrCount kernel_instructions = 0;
    std::uint64_t calls = 0;
    std::uint64_t rets = 0;
    std::uint64_t kernel_call_rets = 0;
    std::uint64_t ras_hits = 0;
    std::uint64_t ras_hits_restored = 0;   ///< BackRAS-suppressed (Fig. 8)
    std::uint64_t ras_whitelisted = 0;     ///< whitelist-suppressed (Fig. 8)
    std::uint64_t ras_alarms = 0;
    std::uint64_t ras_evictions = 0;
    std::uint64_t interrupts_delivered = 0;
    std::uint64_t io_accesses = 0;
    std::uint64_t rdtsc_reads = 0;
};

/** Guest memory-layout constants shared with the kernel builder. */
inline constexpr Addr kIvtBase = 0x1000;  ///< 8-byte handler slots
inline constexpr std::uint8_t kIvtSyscallSlot = 7;

/** The virtual CPU. */
class Cpu {
  public:
    /**
     * @param mem        guest physical memory.
     * @param ras_depth  hardware RAS depth (Section 7.5 default: 48).
     */
    Cpu(mem::PhysMem* mem, std::size_t ras_depth = Ras::kDefaultDepth);
    ~Cpu();

    /** Bind the VM-exit handler (must outlive the CPU). */
    void set_env(CpuEnv* env) { env_ = env; }

    /** Bind the paravirtual bus used when exit_on_io is false. */
    void set_pv_bus(PvBus* bus) { pv_bus_ = bus; }

    /** The control structure the hypervisor programs. */
    Vmcs& vmcs() { return vmcs_; }
    const Vmcs& vmcs() const { return vmcs_; }

    /** The hardware RAS (for microcode save/restore by the hypervisor). */
    Ras& ras() { return ras_; }
    const Ras& ras() const { return ras_; }

    /** Architectural state access. @{ */
    CpuState& state() { return state_; }
    const CpuState& state() const { return state_; }
    Word reg(std::size_t idx) const { return state_.regs[idx]; }
    void set_reg(std::size_t idx, Word value) { state_.regs[idx] = value; }
    /** @} */

    /** Cycle and instruction clocks. @{ */
    Cycles cycles() const { return cycles_; }
    InstrCount icount() const { return icount_; }
    void add_cycles(Cycles n) { cycles_ += n; }
    /** Reset the clocks (checkpoint restore). */
    void set_clocks(Cycles cycles, InstrCount icount)
    {
        cycles_ = cycles;
        icount_ = icount;
    }
    /** @} */

    /** Accumulated event counters. */
    const CpuStats& stats() const { return stats_; }
    CpuStats& stats() { return stats_; }

    /**
     * Execute until a stop condition is met.
     *
     * @param stop_cycles  return kCycleLimit once cycles() >= this
     *                     (the next host device event).
     * @param stop_icount  return kInstrLimit once icount() >= this.
     */
    StopReason run(Cycles stop_cycles, InstrCount stop_icount);

    /**
     * Tighten the current run's cycle stop. Called from within a VM exit
     * when a mediated device access rescheduled the next host event to an
     * earlier time (e.g., the guest just started a short DMA transfer).
     */
    void tighten_stop(Cycles stop)
    {
        if (stop < run_stop_cycles_)
            run_stop_cycles_ = stop;
    }

    /** Execute exactly one instruction (replay single-stepping). */
    StopReason step();

    /** @return a fault description after kMemFault/kBadInstr. */
    const std::string& fault_reason() const { return fault_reason_; }

    /**
     * Toggle the predecoded-instruction cache (on by default unless the
     * RSAFE_NO_DECODE_CACHE environment variable is set). Execution is
     * bit-identical either way; the toggle exists for A/B testing.
     */
    void set_decode_cache_enabled(bool enabled)
    {
        decode_cache_enabled_ = enabled;
        if (!enabled) {
            cur_page_base_ = ~static_cast<Addr>(0);
            cur_dp_ = nullptr;
            cur_gen_ = nullptr;
        }
    }
    bool decode_cache_enabled() const { return decode_cache_enabled_; }

    /**
     * Toggle the translation-block engine (on by default unless the
     * RSAFE_NO_TB environment variable is set). Execution is
     * bit-identical either way; the toggle exists for A/B testing.
     */
    void set_tb_enabled(bool enabled) { tb_enabled_ = enabled; }
    bool tb_enabled() const { return tb_enabled_; }

    /** The translation-block engine (metrics export, tests). */
    TbEngine& tb_engine() { return *tb_; }
    const TbEngine& tb_engine() const { return *tb_; }

  private:
    enum class StepResult { kOk, kHalt, kFault, kBadInstr };

    /** Instruction slots per page (fixed-width encoding). */
    static constexpr std::size_t kInstrsPerPage = kPageSize / kInstrBytes;

    /** Predecoded copy of one executable page. */
    struct DecodedPage {
        std::uint64_t gen = 0;  ///< PhysMem::page_gen at predecode time
        std::array<isa::Instr, kInstrsPerPage> instrs;
        std::array<std::uint8_t, kInstrsPerPage> valid;  ///< decodable slot
    };

    StepResult exec_one();
    StepResult run_batch(InstrCount budget);
    StepResult run_tb(InstrCount budget);  // defined in tb_engine.cc
    const isa::Instr* cached_instr(Addr pc);
    const DecodedPage* cached_page(Addr page);
    DecodedPage* predecode_page(Addr page);
    bool deliver_pending_irq();
    void deliver_interrupt_frame(Addr vector_slot);
    StepResult do_ret();
    void ras_call_push(Addr link);
    bool mem_read(Addr addr, std::size_t len, Word* out);
    bool mem_write(Addr addr, std::size_t len, Word value);
    bool stack_push(Word value);
    bool stack_pop(Word* out);
    bool priv_check(const isa::Instr& instr);

    mem::PhysMem* mem_;
    CpuEnv* env_ = nullptr;
    PvBus* pv_bus_ = nullptr;
    Vmcs vmcs_;
    Ras ras_;
    CpuState state_;
    Cycles cycles_ = 0;
    InstrCount icount_ = 0;
    Cycles run_stop_cycles_ = ~static_cast<Cycles>(0);
    CpuStats stats_;
    std::string fault_reason_;
    std::vector<std::unique_ptr<DecodedPage>> decode_cache_;
    bool decode_cache_enabled_ = true;
    std::unique_ptr<TbEngine> tb_;
    bool tb_enabled_ = true;
    // One-entry fetch cache: consecutive instructions almost always sit
    // on the same page, so remember the last predecoded page and its
    // generation-counter location for a two-compare fast path.
    Addr cur_page_base_ = ~static_cast<Addr>(0);
    const DecodedPage* cur_dp_ = nullptr;
    const std::uint64_t* cur_gen_ = nullptr;
};

}  // namespace rsafe::cpu

#endif  // RSAFE_CPU_CPU_H_
