#include "cpu/ras.h"

#include "common/log.h"

namespace rsafe::cpu {

Ras::Ras(std::size_t depth) : depth_(depth)
{
    if (depth == 0)
        fatal("Ras: depth must be positive");
    stack_.reserve(depth);
}

std::optional<Addr>
Ras::push(Addr addr)
{
    std::optional<Addr> evicted;
    if (stack_.size() == depth_) {
        evicted = stack_.front().addr;
        stack_.erase(stack_.begin());
    }
    stack_.push_back(RasEntry{addr, false});
    return evicted;
}

RasPredict
Ras::predict(Addr ret_pc, Addr target, Addr* predicted)
{
    *predicted = 0;
    if (whitelist_enabled_ && ret_whitelist_.count(ret_pc)) {
        // Non-procedural return: the RAS holds no corresponding entry,
        // so popping it would corrupt the stack (Section 4.4).
        if (tar_whitelist_.count(target))
            return RasPredict::kWhitelisted;
        return RasPredict::kWhitelistMiss;
    }
    if (stack_.empty())
        return RasPredict::kUnderflow;
    const RasEntry top = stack_.back();
    stack_.pop_back();
    *predicted = top.addr;
    if (top.addr != target)
        return RasPredict::kMispredict;
    return top.restored ? RasPredict::kHitRestored : RasPredict::kHit;
}

SavedRas
Ras::save_and_clear()
{
    SavedRas saved;
    saved.entries = std::move(stack_);
    stack_.clear();
    return saved;
}

SavedRas
Ras::peek() const
{
    SavedRas saved;
    saved.entries = stack_;
    return saved;
}

void
Ras::load(const SavedRas& saved)
{
    stack_.clear();
    for (const auto& entry : saved.entries) {
        if (stack_.size() == depth_)
            stack_.erase(stack_.begin());
        stack_.push_back(RasEntry{entry.addr, true});
    }
}

}  // namespace rsafe::cpu
