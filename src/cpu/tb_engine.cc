#include "cpu/tb_engine.h"

#include <algorithm>

#include "common/log.h"
#include "cpu/cpu.h"
#include "dev/device_hub.h"
#include "isa/encoding.h"

// Direct-threaded dispatch (computed goto) is a GNU extension; the
// portable switch fallback is semantically identical, just slower.
#if defined(__GNUC__) || defined(__clang__)
#define RSAFE_TB_THREADED 1
#else
#define RSAFE_TB_THREADED 0
#endif

namespace rsafe::cpu {

using isa::Opcode;

namespace {

using RegFile = std::array<Word, isa::kNumRegs>;

inline Word
sext32(std::int32_t value)
{
    return static_cast<Word>(static_cast<std::int64_t>(value));
}

inline Word
zext32(std::int32_t value)
{
    return static_cast<Word>(static_cast<std::uint32_t>(value));
}

// Translation maps single ALU ops onto UopKind by enum value.
static_assert(static_cast<int>(UopKind::kAddRR) ==
                      static_cast<int>(AluFn::kAddRR) &&
                  static_cast<int>(UopKind::kShrI) ==
                      static_cast<int>(AluFn::kShrI) &&
                  static_cast<int>(UopKind::kNop) ==
                      static_cast<int>(AluFn::kNop),
              "UopKind's single-ALU prefix must mirror AluFn");

constexpr bool
is_single_alu(UopKind kind)
{
    return static_cast<int>(kind) <= static_cast<int>(UopKind::kNop);
}

// ALU-pair superinstructions: kind = kPairBase + op1_index * 15 +
// op2_index, matching the RSAFE_TB_FOR_EACH_PAIR expansion order.
constexpr int kPairBase = static_cast<int>(UopKind::kP_AddRR_AddRR);
constexpr int kNumOp2Fns = 15;

/** @return op1's row in the pair-kind grid, or -1 if not fusable. */
constexpr int
pair_op1_index(AluFn f)
{
    switch (f) {
      case AluFn::kAddRR: return 0;
      case AluFn::kSubRR: return 1;
      case AluFn::kMulRR: return 2;
      case AluFn::kAndRR: return 3;
      case AluFn::kOrRR:  return 4;
      case AluFn::kXorRR: return 5;
      case AluFn::kShlRR: return 6;
      case AluFn::kShrRR: return 7;
      case AluFn::kAddI:  return 8;
      case AluFn::kAndI:  return 9;
      case AluFn::kOrI:   return 10;
      case AluFn::kXorI:  return 11;
      case AluFn::kShlI:  return 12;
      case AluFn::kShrI:  return 13;
      case AluFn::kMov:   return 14;
      case AluFn::kLdi:   return 15;
      default:            return -1;
    }
}

/** @return op2's column in the pair-kind grid, or -1 if not fusable. */
constexpr int
pair_op2_index(AluFn f)
{
    const int i = pair_op1_index(f);
    return i < kNumOp2Fns ? i : -1;  // op2 must consume rs1: no kLdi
}

static_assert(static_cast<int>(UopKind::kP_AddRR_Mov) == kPairBase + 14 &&
                  static_cast<int>(UopKind::kP_SubRR_AddRR) ==
                      kPairBase + kNumOp2Fns &&
                  static_cast<int>(UopKind::kP_Ldi_Mov) ==
                      kPairBase + 15 * kNumOp2Fns + 14 &&
                  static_cast<int>(UopKind::kCount) ==
                      kPairBase + 16 * kNumOp2Fns,
              "pair-kind grid must match RSAFE_TB_FOR_EACH_PAIR order");

/**
 * Map an ALU-class instruction to its pre-resolved AluSpec. Shift
 * immediates are masked here once, so execution shifts unconditionally.
 * @return false for anything that is not a pure register-file operation.
 */
bool
alu_spec_for(const isa::Instr& instr, AluSpec* out)
{
    AluFn fn;
    switch (instr.op) {
      case Opcode::kNop:  fn = AluFn::kNop; break;
      case Opcode::kAdd:  fn = AluFn::kAddRR; break;
      case Opcode::kSub:  fn = AluFn::kSubRR; break;
      case Opcode::kMul:  fn = AluFn::kMulRR; break;
      case Opcode::kDivu: fn = AluFn::kDivuRR; break;
      case Opcode::kAnd:  fn = AluFn::kAndRR; break;
      case Opcode::kOr:   fn = AluFn::kOrRR; break;
      case Opcode::kXor:  fn = AluFn::kXorRR; break;
      case Opcode::kShl:  fn = AluFn::kShlRR; break;
      case Opcode::kShr:  fn = AluFn::kShrRR; break;
      case Opcode::kAddi: fn = AluFn::kAddI; break;
      case Opcode::kAndi: fn = AluFn::kAndI; break;
      case Opcode::kOri:  fn = AluFn::kOrI; break;
      case Opcode::kXori: fn = AluFn::kXorI; break;
      case Opcode::kShli: fn = AluFn::kShlI; break;
      case Opcode::kShri: fn = AluFn::kShrI; break;
      case Opcode::kLdi:  fn = AluFn::kLdi; break;
      case Opcode::kLdiu: fn = AluFn::kLdiu; break;
      case Opcode::kMov:  fn = AluFn::kMov; break;
      default:
        return false;
    }
    out->fn = fn;
    out->rd = instr.rd;
    out->rs1 = instr.rs1;
    out->rs2 = instr.rs2;
    out->imm = (fn == AluFn::kShlI || fn == AluFn::kShrI) ? (instr.imm & 63)
                                                          : instr.imm;
    return true;
}

/** @return true (and the condition) for the six conditional branches. */
bool
br_cond_for(Opcode op, BrCond* out)
{
    switch (op) {
      case Opcode::kBeq:  *out = BrCond::kEq; return true;
      case Opcode::kBne:  *out = BrCond::kNe; return true;
      case Opcode::kBlt:  *out = BrCond::kLt; return true;
      case Opcode::kBge:  *out = BrCond::kGe; return true;
      case Opcode::kBltu: *out = BrCond::kLtu; return true;
      case Opcode::kBgeu: *out = BrCond::kGeu; return true;
      default:
        return false;
    }
}

/**
 * Execute one pre-resolved ALU slot; semantics mirror Cpu::exec_one.
 * Only the secondary slot of fused pairs dispatches through here — the
 * single-op forms have dedicated handlers in the main dispatch loop.
 */
inline void
run_alu(RegFile& regs, const AluSpec& a)
{
    switch (a.fn) {
      case AluFn::kAddRR:  regs[a.rd] = regs[a.rs1] + regs[a.rs2]; break;
      case AluFn::kSubRR:  regs[a.rd] = regs[a.rs1] - regs[a.rs2]; break;
      case AluFn::kMulRR:  regs[a.rd] = regs[a.rs1] * regs[a.rs2]; break;
      case AluFn::kDivuRR:
        regs[a.rd] = regs[a.rs2] == 0 ? ~static_cast<Word>(0)
                                      : regs[a.rs1] / regs[a.rs2];
        break;
      case AluFn::kAndRR:  regs[a.rd] = regs[a.rs1] & regs[a.rs2]; break;
      case AluFn::kOrRR:   regs[a.rd] = regs[a.rs1] | regs[a.rs2]; break;
      case AluFn::kXorRR:  regs[a.rd] = regs[a.rs1] ^ regs[a.rs2]; break;
      case AluFn::kShlRR:  regs[a.rd] = regs[a.rs1] << (regs[a.rs2] & 63); break;
      case AluFn::kShrRR:  regs[a.rd] = regs[a.rs1] >> (regs[a.rs2] & 63); break;
      case AluFn::kAddI:   regs[a.rd] = regs[a.rs1] + sext32(a.imm); break;
      case AluFn::kAndI:   regs[a.rd] = regs[a.rs1] & sext32(a.imm); break;
      case AluFn::kOrI:    regs[a.rd] = regs[a.rs1] | sext32(a.imm); break;
      case AluFn::kXorI:   regs[a.rd] = regs[a.rs1] ^ sext32(a.imm); break;
      case AluFn::kShlI:   regs[a.rd] = regs[a.rs1] << a.imm; break;
      case AluFn::kShrI:   regs[a.rd] = regs[a.rs1] >> a.imm; break;
      case AluFn::kLdi:    regs[a.rd] = sext32(a.imm); break;
      case AluFn::kLdiu:
        regs[a.rd] = (regs[a.rd] << 32) | zext32(a.imm);
        break;
      case AluFn::kMov:    regs[a.rd] = regs[a.rs1]; break;
      case AluFn::kNop:    break;
    }
}

}  // namespace

TbEngine::TbEngine(mem::PhysMem* mem)
    : mem_(mem),
      table_(kLookupEntries),
      page_tbs_(mem == nullptr ? 0 : mem->num_pages()),
      block_len_(kMaxBlockInstrs, 16)
{
    if (mem_ == nullptr)
        fatal("TbEngine: null memory");
    mem_->add_code_listener(this);
}

TbEngine::~TbEngine()
{
    mem_->remove_code_listener(this);
}

void
TbEngine::sync_breakpoints(const std::unordered_set<Addr>& bps)
{
    // Called on every run_tb entry; the usual case is "unchanged", which
    // must stay allocation-free (set equality is O(size), size is tiny).
    if (bps == bp_set_)
        return;
    // The cached blocks were cut against the old set; drop them all.
    flush();
    bp_set_ = bps;
    bp_pcs_.assign(bps.begin(), bps.end());
    std::sort(bp_pcs_.begin(), bp_pcs_.end());
}

TransBlock*
TbEngine::translate(Addr pc)
{
    // Unaligned PCs (corrupted control flow) never translate; the
    // interpreter's raw-fetch path reports the fault canonically.
    if ((pc & (kInstrBytes - 1)) != 0)
        return nullptr;

    // Never start a block at a breakpoint: the hook must fire from run()
    // before the instruction executes, and refusing translation here also
    // guarantees no chain can ever target a breakpointed PC.
    if (is_breakpoint(pc))
        return nullptr;

    auto owned = std::make_unique<TransBlock>();
    TransBlock* tb = owned.get();
    tb->pc = pc;
    tb->uops.reserve(16);

    // Page budget: invalidation metadata holds two page slots, so a
    // trace (which may cross pages via folded jumps) covers at most two.
    Addr pages[2] = {0, 0};
    std::uint8_t num_pages = 0;
    const auto cover = [&](Addr page) {
        for (std::uint8_t i = 0; i < num_pages; ++i) {
            if (pages[i] == page)
                return true;
        }
        if (num_pages == 2)
            return false;
        pages[num_pages++] = page;
        return true;
    };

    Addr cur = pc;
    bool terminated = false;  // ended on a real control-flow terminator
    bool bail_end = false;    // ended on an untranslatable instruction
    while (tb->len < kMaxBlockInstrs) {
        // Cut short of any later breakpoint (kFall side-exit): control
        // returns to run() so the hook fires before the instruction.
        if (tb->len > 0 && is_breakpoint(cur))
            break;

        if (!cover(page_of(cur)))
            break;  // page budget exhausted: side-exit (kFall), chainable

        std::uint8_t raw[kInstrBytes];
        isa::Instr instr;
        if (mem_->fetch(cur, raw) != mem::MemResult::kOk ||
            !isa::decode(raw, &instr)) {
            // Fetch fault or undecodable slot: the interpreter re-fetches
            // at the exit PC to produce the canonical fault.
            bail_end = true;
            break;
        }

        // Direct jumps with an aligned target are folded into the trace:
        // the block continues translating at the target (the jump still
        // retires one instruction), so hot loops unroll to the block cap
        // and the backedge costs zero dispatches.
        if (instr.op == Opcode::kJmp &&
            (instr.uimm() & (kInstrBytes - 1)) == 0) {
            ++tb->len;
            cur = instr.uimm();
            continue;
        }

        Uop u;
        u.pc = static_cast<std::uint32_t>(cur);
        u.icount_off = static_cast<std::uint16_t>(tb->len);

        // Fusion peepholes pair the previous micro-op with this
        // instruction; only truly adjacent instructions fuse (a folded
        // jump in between would break fall-through PC arithmetic).
        Uop* p = tb->uops.empty() ? nullptr : &tb->uops.back();
        const bool adjacent =
            p != nullptr && p->count == 1 &&
            p->pc + kInstrBytes == static_cast<std::uint32_t>(cur);

        AluSpec a;
        BrCond cond;
        if (alu_spec_for(instr, &a)) {
            if (adjacent && p->kind == UopKind::kLdi &&
                a.fn == AluFn::kLdiu && p->alu1.rd == a.rd) {
                // The ldi/ldiu 64-bit constant build.
                p->kind = UopKind::kLdi64;
                p->imm = a.imm;
                p->count = 2;
            } else if (adjacent && p->kind == UopKind::kLd) {
                // load + ALU (the second op cannot fault, so the pair
                // retires atomically, exactly like its two halves would).
                p->kind = UopKind::kLdAlu;
                p->alu2 = a;
                p->count = 2;
            } else if (adjacent && is_single_alu(p->kind) &&
                       a.rs1 == p->alu1.rd &&
                       pair_op1_index(p->alu1.fn) >= 0 &&
                       pair_op2_index(a.fn) >= 0) {
                // Dependent ALU pair: op2 consumes op1's result, which
                // the superinstruction handler keeps in a host register.
                p->kind = static_cast<UopKind>(
                    kPairBase +
                    pair_op1_index(p->alu1.fn) * kNumOp2Fns +
                    pair_op2_index(a.fn));
                p->alu2 = a;
                p->count = 2;
            } else {
                u.kind = static_cast<UopKind>(static_cast<int>(a.fn));
                u.alu1 = a;
                tb->uops.push_back(u);
            }
            ++tb->len;
            cur += kInstrBytes;
            continue;
        }
        if (br_cond_for(instr.op, &cond)) {
            if (adjacent && is_single_alu(p->kind)) {
                // The cmp+branch loop idiom.
                p->kind = static_cast<UopKind>(
                    static_cast<int>(UopKind::kAluBrEq) +
                    static_cast<int>(cond));
                p->alu2.rs1 = instr.rs1;
                p->alu2.rs2 = instr.rs2;
                p->imm = instr.imm;
                p->count = 2;
            } else {
                u.kind = static_cast<UopKind>(
                    static_cast<int>(UopKind::kBrEq) +
                    static_cast<int>(cond));
                u.alu1.rs1 = instr.rs1;
                u.alu1.rs2 = instr.rs2;
                u.imm = instr.imm;
                tb->uops.push_back(u);
            }
            ++tb->len;
            terminated = true;
            break;
        }

        bool term = false;
        switch (instr.op) {
          case Opcode::kLd:
          case Opcode::kLdb:
            u.kind = instr.op == Opcode::kLd ? UopKind::kLd : UopKind::kLdb;
            u.alu1.rd = instr.rd;
            u.alu1.rs1 = instr.rs1;
            u.alu1.imm = instr.imm;
            break;
          case Opcode::kSt:
          case Opcode::kStb:
            u.kind = instr.op == Opcode::kSt ? UopKind::kSt : UopKind::kStb;
            u.alu1.rs1 = instr.rs1;
            u.alu1.rs2 = instr.rs2;
            u.alu1.imm = instr.imm;
            break;
          case Opcode::kPush:
            u.kind = UopKind::kPush;
            u.alu1.rs1 = instr.rs1;
            break;
          case Opcode::kPop:
            u.kind = UopKind::kPop;
            u.alu1.rd = instr.rd;
            break;
          case Opcode::kGetsp:
            u.kind = UopKind::kGetsp;
            u.alu1.rd = instr.rd;
            break;
          case Opcode::kSetsp:
            u.kind = UopKind::kSetsp;
            u.alu1.rs1 = instr.rs1;
            break;
          case Opcode::kAddsp:
            u.kind = UopKind::kAddsp;
            u.alu1.imm = instr.imm;
            break;

          case Opcode::kJmp:  // unaligned target, not folded above
            u.kind = UopKind::kJmp;
            u.imm = instr.imm;
            term = true;
            break;
          case Opcode::kJmpr:
            u.kind = UopKind::kJmpr;
            u.alu1.rs1 = instr.rs1;
            term = true;
            break;
          case Opcode::kCall:
            u.kind = UopKind::kCall;
            u.imm = instr.imm;
            term = true;
            break;
          case Opcode::kCallr:
            u.kind = UopKind::kCallr;
            u.alu1.rs1 = instr.rs1;
            term = true;
            break;
          case Opcode::kRet:
            u.kind = UopKind::kRet;
            term = true;
            break;

          default:
            // halt, syscall/iret, cli/sti, rdtsc, pio — privileged or
            // environment-interacting: never part of a block.
            bail_end = true;
            break;
        }
        if (bail_end)
            break;
        tb->uops.push_back(u);
        ++tb->len;
        if (term) {
            terminated = true;
            break;
        }
        cur += kInstrBytes;
    }

    if (!terminated) {
        // Cap, page budget, fetch/decode failure, or untranslatable
        // instruction: exit the trace at cur. kFall chains (the next
        // block starts there); kBail re-fetches canonically.
        Uop u;
        u.pc = static_cast<std::uint32_t>(cur);
        u.icount_off = static_cast<std::uint16_t>(tb->len);
        u.count = 0;
        u.kind = bail_end ? UopKind::kBail : UopKind::kFall;
        tb->uops.push_back(u);
    }
    if (tb->len == 0)
        return nullptr;  // nothing translatable at pc

    if (dispatch_ != nullptr) {
        for (Uop& fill : tb->uops)
            fill.h = dispatch_[static_cast<std::size_t>(fill.kind)];
    }

    tb->num_pages = num_pages;
    for (std::uint8_t i = 0; i < num_pages; ++i) {
        tb->pages[i] = pages[i];
        page_tbs_[pages[i]].push_back(tb);
    }
    tb->valid = true;

    Slot& slot = table_[index_of(pc)];
    slot.pc = pc;
    slot.tb = tb;  // collision: the old entry is evicted, its block stays

    ++stats_.translated;
    block_len_.sample(tb->len);
    blocks_.push_back(std::move(owned));
    return tb;
}

void
TbEngine::chain(TransBlock* from, int slot, TransBlock* to)
{
    if (!from->valid || !to->valid)
        return;
    if (from->next[slot] == to)
        return;
    from->next[slot] = to;
    to->incoming.emplace_back(from, slot);
}

void
TbEngine::invalidate(TransBlock* tb)
{
    tb->valid = false;
    ++stats_.invalidations;
    // Sever chains INTO the block: no predecessor may jump to stale code.
    // (Entries whose predecessor was itself invalidated are stale — the
    // pointer identity check makes them harmless.)
    for (const auto& [pred, slot] : tb->incoming) {
        if (pred->next[slot] == tb)
            pred->next[slot] = nullptr;
    }
    tb->incoming.clear();
    tb->next[0] = nullptr;
    tb->next[1] = nullptr;
    Slot& slot = table_[index_of(tb->pc)];
    if (slot.tb == tb)
        slot = Slot{};
}

void
TbEngine::on_code_page_touched(Addr page)
{
    if (page >= page_tbs_.size()) [[unlikely]]
        return;
    auto& list = page_tbs_[page];
    if (list.empty()) [[likely]]
        return;  // raw writes to data pages also land here: keep it cheap
    for (TransBlock* tb : list) {
        if (tb->valid)
            invalidate(tb);
    }
    list.clear();
}

void
TbEngine::flush()
{
    if (blocks_.empty())
        return;
    blocks_.clear();
    std::fill(table_.begin(), table_.end(), Slot{});
    for (auto& list : page_tbs_)
        list.clear();
    ++stats_.flushes;
}

/**
 * The translated-block dispatch loop. Drop-in replacement for
 * Cpu::run_batch with identical architectural effects: same preconditions
 * (no pending IRQ, indirect-branch trap off), same bail protocol
 * (exec_one is the single source of truth for everything complex, and
 * "cycles advanced by exactly 1" proves the instruction was pure), same
 * one-cycle-per-instruction accounting.
 *
 * A block is entered only when the remaining budget covers its whole
 * length; otherwise the tail up to the stop point executes through
 * exec_one, so replay barriers (perf stops, injection icounts, checkpoint
 * boundaries) are honored exactly, never overshot.
 *
 * Unlike run_batch this loop tolerates armed PC breakpoints: translation
 * cuts every block short of a breakpoint and refuses to start one at a
 * breakpoint, and the dispatch loop hands control back to run() — which
 * owns firing the hook — whenever execution reaches a breakpointed PC
 * after making progress (the entry PC's hook already fired).
 */
Cpu::StepResult
Cpu::run_tb(InstrCount budget)
{
    TbEngine& eng = *tb_;
    // Adopt the current breakpoint set (flushes the cache on change —
    // safe here, no TransBlock pointers are live yet). The set only
    // mutates at VM-setup time, so the flush is a one-time cost.
    eng.sync_breakpoints(vmcs_.breakpoints);
    const bool bp_active = !vmcs_.breakpoints.empty();
    // run() already fired the hook for the entry PC; only a later arrival
    // at a breakpoint returns control.
    bool progressed = false;
    const bool callret_pure = !vmcs_.controls.ras_alarm_enabled &&
                              !vmcs_.controls.ras_evict_exit &&
                              !vmcs_.controls.trap_kernel_call_ret &&
                              !vmcs_.controls.trap_user_call_ret;
    auto& regs = state_.regs;
    Addr pc = state_.pc;
    bool kernel = state_.mode == Mode::kKernel;
    InstrCount done = 0;
    InstrCount kdone = 0;
    // Engine event counters accumulate in locals; one RMW each at spill.
    std::uint64_t chain_hits = 0;
    std::uint64_t chain_misses = 0;
    std::uint64_t exec_blocks = 0;

    const auto spill = [&] {
        state_.pc = pc;
        icount_ += done;
        cycles_ += done;
        stats_.instructions += done;
        stats_.kernel_instructions += kdone;
        done = 0;
        kdone = 0;
        eng.stats_.chain_hits += chain_hits;
        eng.stats_.chain_misses += chain_misses;
        eng.stats_.exec_blocks += exec_blocks;
        chain_hits = 0;
        chain_misses = 0;
        exec_blocks = 0;
    };

    TransBlock* tb = nullptr;
    TransBlock* prev = nullptr;    // block awaiting a chain to its successor
    int prev_slot = kChainTaken;
    const Uop* u = nullptr;
    Addr new_pc = 0;
    int slot = -1;

#if RSAFE_TB_THREADED
#define RSAFE_TB_PAIR_ADDR(f1, f2) &&h_P_##f1##_##f2,
    // One handler per UopKind, in exact enum order (checked below).
    static const void* const kDispatch[] = {
        &&h_AddRR, &&h_SubRR, &&h_MulRR, &&h_DivuRR, &&h_AndRR, &&h_OrRR,
        &&h_XorRR, &&h_ShlRR, &&h_ShrRR,
        &&h_AddI, &&h_AndI, &&h_OrI, &&h_XorI, &&h_ShlI, &&h_ShrI,
        &&h_Ldi, &&h_Ldiu, &&h_Mov, &&h_Nop,
        &&h_Ldi64, &&h_LdAlu,
        &&h_Ld, &&h_Ldb, &&h_St, &&h_Stb, &&h_Push, &&h_Pop,
        &&h_Getsp, &&h_Setsp, &&h_Addsp,
        &&h_BrEq, &&h_BrNe, &&h_BrLt, &&h_BrGe, &&h_BrLtu, &&h_BrGeu,
        &&h_AluBrEq, &&h_AluBrNe, &&h_AluBrLt, &&h_AluBrGe, &&h_AluBrLtu,
        &&h_AluBrGeu,
        &&h_Jmp, &&h_Jmpr, &&h_Call, &&h_Callr, &&h_Ret,
        &&h_Fall, &&h_Bail,
        RSAFE_TB_FOR_EACH_PAIR(RSAFE_TB_PAIR_ADDR)
    };
    static_assert(sizeof(kDispatch) / sizeof(kDispatch[0]) ==
                      static_cast<std::size_t>(UopKind::kCount),
                  "dispatch table must cover every UopKind");
    // Translation copies table entries into each uop's h field; register
    // the table before any block can be translated.
    if (eng.dispatch_ == nullptr)
        eng.dispatch_ = kDispatch;
#define UOP(name) h_##name:
#define PUOP(f1, f2) h_P_##f1##_##f2:
#define NEXT() \
    do { \
        ++u; \
        goto* u->h; \
    } while (0)
#define ENTER() goto* u->h
#else
#define UOP(name) case UopKind::k##name:
#define PUOP(f1, f2) case UopKind::kP_##f1##_##f2:
#define NEXT() \
    do { \
        ++u; \
        goto dispatch; \
    } while (0)
#define ENTER() goto dispatch
#endif

// Superinstruction value expressions: V1 computes op1 from its spec, V2
// computes op2 from op1's result v (the proven rs1 operand) and its own
// spec. Expanded inside the dispatch loop where `regs` is in scope.
#define RSAFE_TB_V1_AddRR(s) (regs[(s).rs1] + regs[(s).rs2])
#define RSAFE_TB_V1_SubRR(s) (regs[(s).rs1] - regs[(s).rs2])
#define RSAFE_TB_V1_MulRR(s) (regs[(s).rs1] * regs[(s).rs2])
#define RSAFE_TB_V1_AndRR(s) (regs[(s).rs1] & regs[(s).rs2])
#define RSAFE_TB_V1_OrRR(s) (regs[(s).rs1] | regs[(s).rs2])
#define RSAFE_TB_V1_XorRR(s) (regs[(s).rs1] ^ regs[(s).rs2])
#define RSAFE_TB_V1_ShlRR(s) (regs[(s).rs1] << (regs[(s).rs2] & 63))
#define RSAFE_TB_V1_ShrRR(s) (regs[(s).rs1] >> (regs[(s).rs2] & 63))
#define RSAFE_TB_V1_AddI(s) (regs[(s).rs1] + sext32((s).imm))
#define RSAFE_TB_V1_AndI(s) (regs[(s).rs1] & sext32((s).imm))
#define RSAFE_TB_V1_OrI(s) (regs[(s).rs1] | sext32((s).imm))
#define RSAFE_TB_V1_XorI(s) (regs[(s).rs1] ^ sext32((s).imm))
#define RSAFE_TB_V1_ShlI(s) (regs[(s).rs1] << (s).imm)
#define RSAFE_TB_V1_ShrI(s) (regs[(s).rs1] >> (s).imm)
#define RSAFE_TB_V1_Mov(s) (regs[(s).rs1])
#define RSAFE_TB_V1_Ldi(s) (sext32((s).imm))

#define RSAFE_TB_V2_AddRR(v, s) ((v) + regs[(s).rs2])
#define RSAFE_TB_V2_SubRR(v, s) ((v) - regs[(s).rs2])
#define RSAFE_TB_V2_MulRR(v, s) ((v) * regs[(s).rs2])
#define RSAFE_TB_V2_AndRR(v, s) ((v) & regs[(s).rs2])
#define RSAFE_TB_V2_OrRR(v, s) ((v) | regs[(s).rs2])
#define RSAFE_TB_V2_XorRR(v, s) ((v) ^ regs[(s).rs2])
#define RSAFE_TB_V2_ShlRR(v, s) ((v) << (regs[(s).rs2] & 63))
#define RSAFE_TB_V2_ShrRR(v, s) ((v) >> (regs[(s).rs2] & 63))
#define RSAFE_TB_V2_AddI(v, s) ((v) + sext32((s).imm))
#define RSAFE_TB_V2_AndI(v, s) ((v) & sext32((s).imm))
#define RSAFE_TB_V2_OrI(v, s) ((v) | sext32((s).imm))
#define RSAFE_TB_V2_XorI(v, s) ((v) ^ sext32((s).imm))
#define RSAFE_TB_V2_ShlI(v, s) ((v) << (s).imm)
#define RSAFE_TB_V2_ShrI(v, s) ((v) >> (s).imm)
#define RSAFE_TB_V2_Mov(v, s) (v)

// The op1 result is stored architecturally FIRST, so an op2 whose rs2
// also names op1's rd reads the fresh value from the register file.
#define RSAFE_TB_PAIR_IMPL(f1, f2) \
    PUOP(f1, f2) { \
        const Word v = RSAFE_TB_V1_##f1(u->alu1); \
        regs[u->alu1.rd] = v; \
        regs[u->alu2.rd] = RSAFE_TB_V2_##f2(v, u->alu2); \
        NEXT(); \
    }

    while (budget > 0) {
        if (tb == nullptr) {
            // Reached a breakpoint: hand back to run(), which fires the
            // hook before the instruction executes. (Chained TB→TB flow
            // cannot land here — no block ever starts at a breakpoint.)
            if (bp_active && progressed &&
                vmcs_.breakpoints.count(pc) != 0) [[unlikely]] {
                spill();
                return StepResult::kOk;
            }
            tb = eng.lookup(pc);
            if (tb == nullptr) [[unlikely]] {
                if (eng.should_flush()) {
                    // Safe point: no TransBlock pointers are live here.
                    prev = nullptr;
                    eng.flush();
                }
                tb = eng.translate(pc);
                if (tb == nullptr)
                    goto bail_one;
            }
            if (prev != nullptr) {
                eng.chain(prev, prev_slot, tb);
                prev = nullptr;
            }
        }
        // Entering the block commits to retiring all of it; near a replay
        // barrier, finish instruction-by-instruction instead.
        if (budget < tb->len) [[unlikely]]
            goto bail_one;

        u = tb->uops.data();
        ENTER();

#if !RSAFE_TB_THREADED
      dispatch:
        switch (u->kind) {
#endif

        UOP(AddRR)
            regs[u->alu1.rd] = regs[u->alu1.rs1] + regs[u->alu1.rs2];
            NEXT();
        UOP(SubRR)
            regs[u->alu1.rd] = regs[u->alu1.rs1] - regs[u->alu1.rs2];
            NEXT();
        UOP(MulRR)
            regs[u->alu1.rd] = regs[u->alu1.rs1] * regs[u->alu1.rs2];
            NEXT();
        UOP(DivuRR)
            regs[u->alu1.rd] = regs[u->alu1.rs2] == 0
                                   ? ~static_cast<Word>(0)
                                   : regs[u->alu1.rs1] / regs[u->alu1.rs2];
            NEXT();
        UOP(AndRR)
            regs[u->alu1.rd] = regs[u->alu1.rs1] & regs[u->alu1.rs2];
            NEXT();
        UOP(OrRR)
            regs[u->alu1.rd] = regs[u->alu1.rs1] | regs[u->alu1.rs2];
            NEXT();
        UOP(XorRR)
            regs[u->alu1.rd] = regs[u->alu1.rs1] ^ regs[u->alu1.rs2];
            NEXT();
        UOP(ShlRR)
            regs[u->alu1.rd] = regs[u->alu1.rs1] << (regs[u->alu1.rs2] & 63);
            NEXT();
        UOP(ShrRR)
            regs[u->alu1.rd] = regs[u->alu1.rs1] >> (regs[u->alu1.rs2] & 63);
            NEXT();
        UOP(AddI)
            regs[u->alu1.rd] = regs[u->alu1.rs1] + sext32(u->alu1.imm);
            NEXT();
        UOP(AndI)
            regs[u->alu1.rd] = regs[u->alu1.rs1] & sext32(u->alu1.imm);
            NEXT();
        UOP(OrI)
            regs[u->alu1.rd] = regs[u->alu1.rs1] | sext32(u->alu1.imm);
            NEXT();
        UOP(XorI)
            regs[u->alu1.rd] = regs[u->alu1.rs1] ^ sext32(u->alu1.imm);
            NEXT();
        UOP(ShlI)
            regs[u->alu1.rd] = regs[u->alu1.rs1] << u->alu1.imm;
            NEXT();
        UOP(ShrI)
            regs[u->alu1.rd] = regs[u->alu1.rs1] >> u->alu1.imm;
            NEXT();
        UOP(Ldi)
            regs[u->alu1.rd] = sext32(u->alu1.imm);
            NEXT();
        UOP(Ldiu)
            regs[u->alu1.rd] = (regs[u->alu1.rd] << 32) | zext32(u->alu1.imm);
            NEXT();
        UOP(Mov)
            regs[u->alu1.rd] = regs[u->alu1.rs1];
            NEXT();
        UOP(Nop)
            NEXT();

        RSAFE_TB_FOR_EACH_PAIR(RSAFE_TB_PAIR_IMPL)

        UOP(Ldi64)
            regs[u->alu1.rd] =
                (sext32(u->alu1.imm) << 32) | zext32(u->imm);
            NEXT();
        UOP(LdAlu) {
            const Addr addr = regs[u->alu1.rs1] + sext32(u->alu1.imm);
            if (dev::is_mmio(addr)) [[unlikely]]
                goto uop_bail;
            Word value;
            if (mem_->read(addr, 8, &value) !=
                mem::MemResult::kOk) [[unlikely]]
                goto uop_bail;
            regs[u->alu1.rd] = value;
            run_alu(regs, u->alu2);
            NEXT();
        }
        UOP(Ld) {
            const Addr addr = regs[u->alu1.rs1] + sext32(u->alu1.imm);
            if (dev::is_mmio(addr)) [[unlikely]]
                goto uop_bail;
            Word value;
            if (mem_->read(addr, 8, &value) !=
                mem::MemResult::kOk) [[unlikely]]
                goto uop_bail;
            regs[u->alu1.rd] = value;
            NEXT();
        }
        UOP(Ldb) {
            const Addr addr = regs[u->alu1.rs1] + sext32(u->alu1.imm);
            if (dev::is_mmio(addr)) [[unlikely]]
                goto uop_bail;
            Word value;
            if (mem_->read(addr, 1, &value) !=
                mem::MemResult::kOk) [[unlikely]]
                goto uop_bail;
            regs[u->alu1.rd] = value;
            NEXT();
        }
        UOP(St) {
            const Addr addr = regs[u->alu1.rs1] + sext32(u->alu1.imm);
            if (dev::is_mmio(addr)) [[unlikely]]
                goto uop_bail;
            if (mem_->write(addr, 8, regs[u->alu1.rs2]) !=
                mem::MemResult::kOk) [[unlikely]]
                goto uop_bail;
            // Mid-block write safety: the write may have hit this very
            // block's code (the listener fired synchronously). Exit after
            // the store and re-translate from fresh bytes.
            if (!tb->valid) [[unlikely]]
                goto block_cut;
            NEXT();
        }
        UOP(Stb) {
            const Addr addr = regs[u->alu1.rs1] + sext32(u->alu1.imm);
            if (dev::is_mmio(addr)) [[unlikely]]
                goto uop_bail;
            if (mem_->write(addr, 1, regs[u->alu1.rs2] & 0xff) !=
                mem::MemResult::kOk) [[unlikely]]
                goto uop_bail;
            if (!tb->valid) [[unlikely]]
                goto block_cut;
            NEXT();
        }
        UOP(Push)
            if (mem_->write(state_.sp - 8, 8, regs[u->alu1.rs1]) !=
                mem::MemResult::kOk) [[unlikely]]
                goto uop_bail;
            state_.sp -= 8;
            if (!tb->valid) [[unlikely]]  // push into own code page
                goto block_cut;
            NEXT();
        UOP(Pop) {
            Word value;
            if (mem_->read(state_.sp, 8, &value) !=
                mem::MemResult::kOk) [[unlikely]]
                goto uop_bail;
            state_.sp += 8;
            regs[u->alu1.rd] = value;
            NEXT();
        }
        UOP(Getsp)
            regs[u->alu1.rd] = state_.sp;
            NEXT();
        UOP(Setsp)
            state_.sp = regs[u->alu1.rs1];
            NEXT();
        UOP(Addsp)
            state_.sp += sext32(u->alu1.imm);
            NEXT();

        UOP(BrEq)
            if (regs[u->alu1.rs1] == regs[u->alu1.rs2])
                goto br_taken;
            goto br_fall;
        UOP(BrNe)
            if (regs[u->alu1.rs1] != regs[u->alu1.rs2])
                goto br_taken;
            goto br_fall;
        UOP(BrLt)
            if (static_cast<std::int64_t>(regs[u->alu1.rs1]) <
                static_cast<std::int64_t>(regs[u->alu1.rs2]))
                goto br_taken;
            goto br_fall;
        UOP(BrGe)
            if (static_cast<std::int64_t>(regs[u->alu1.rs1]) >=
                static_cast<std::int64_t>(regs[u->alu1.rs2]))
                goto br_taken;
            goto br_fall;
        UOP(BrLtu)
            if (regs[u->alu1.rs1] < regs[u->alu1.rs2])
                goto br_taken;
            goto br_fall;
        UOP(BrGeu)
            if (regs[u->alu1.rs1] >= regs[u->alu1.rs2])
                goto br_taken;
            goto br_fall;
        UOP(AluBrEq)
            run_alu(regs, u->alu1);
            if (regs[u->alu2.rs1] == regs[u->alu2.rs2])
                goto br_taken;
            goto br_fall;
        UOP(AluBrNe)
            run_alu(regs, u->alu1);
            if (regs[u->alu2.rs1] != regs[u->alu2.rs2])
                goto br_taken;
            goto br_fall;
        UOP(AluBrLt)
            run_alu(regs, u->alu1);
            if (static_cast<std::int64_t>(regs[u->alu2.rs1]) <
                static_cast<std::int64_t>(regs[u->alu2.rs2]))
                goto br_taken;
            goto br_fall;
        UOP(AluBrGe)
            run_alu(regs, u->alu1);
            if (static_cast<std::int64_t>(regs[u->alu2.rs1]) >=
                static_cast<std::int64_t>(regs[u->alu2.rs2]))
                goto br_taken;
            goto br_fall;
        UOP(AluBrLtu)
            run_alu(regs, u->alu1);
            if (regs[u->alu2.rs1] < regs[u->alu2.rs2])
                goto br_taken;
            goto br_fall;
        UOP(AluBrGeu)
            run_alu(regs, u->alu1);
            if (regs[u->alu2.rs1] >= regs[u->alu2.rs2])
                goto br_taken;
            goto br_fall;

        UOP(Jmp)
            new_pc = zext32(u->imm);
            slot = kChainTaken;
            goto block_done;
        UOP(Jmpr)
            // trap_indirect_branch is off (run_tb precondition).
            new_pc = regs[u->alu1.rs1];
            slot = -1;
            goto block_done;
        UOP(Call) {
            if (!callret_pure) [[unlikely]]
                goto uop_bail;
            const Addr link = static_cast<Addr>(u->pc) + kInstrBytes;
            // Push the link without pre-decrementing sp so a stack fault
            // can still bail with nothing mutated.
            if (mem_->write(state_.sp - 8, 8, link) !=
                mem::MemResult::kOk) [[unlikely]]
                goto uop_bail;
            state_.sp -= 8;
            ras_.push(link);  // evict exit off under callret_pure
            ++stats_.calls;
            new_pc = zext32(u->imm);
            slot = kChainTaken;
            goto block_done;
        }
        UOP(Callr) {
            if (!callret_pure) [[unlikely]]
                goto uop_bail;
            const Addr link = static_cast<Addr>(u->pc) + kInstrBytes;
            if (mem_->write(state_.sp - 8, 8, link) !=
                mem::MemResult::kOk) [[unlikely]]
                goto uop_bail;
            state_.sp -= 8;
            ras_.push(link);
            ++stats_.calls;
            new_pc = regs[u->alu1.rs1];
            slot = -1;
            goto block_done;
        }
        UOP(Ret) {
            if (!callret_pure) [[unlikely]]
                goto uop_bail;
            Word target;
            if (mem_->read(state_.sp, 8, &target) !=
                mem::MemResult::kOk) [[unlikely]]
                goto uop_bail;
            state_.sp += 8;
            ++stats_.rets;
            ras_.set_whitelist_enabled(vmcs_.controls.whitelist_enabled);
            Addr predicted = 0;
            switch (ras_.predict(static_cast<Addr>(u->pc), target,
                                 &predicted)) {
              case RasPredict::kHit:
                ++stats_.ras_hits;
                break;
              case RasPredict::kHitRestored:
                ++stats_.ras_hits;
                ++stats_.ras_hits_restored;
                break;
              case RasPredict::kWhitelisted:
                ++stats_.ras_whitelisted;
                break;
              default:
                break;  // alarm disabled under callret_pure
            }
            new_pc = target;
            slot = -1;
            goto block_done;
        }

        UOP(Fall)
            new_pc = static_cast<Addr>(u->pc);
            slot = kChainFall;
            goto block_done;
        UOP(Bail)
            // The instruction AT the exit PC is untranslatable; all len
            // instructions before it retired.
            done += tb->len;
            kdone += kernel ? tb->len : 0;
            budget -= tb->len;
            pc = static_cast<Addr>(u->pc);
            goto bail_one;

#if !RSAFE_TB_THREADED
          case UopKind::kCount:
            break;
        }
        fault_reason_ = "corrupt translation block";
        return StepResult::kBadInstr;  // unreachable
#endif

      br_taken:
        new_pc = zext32(u->imm);
        slot = kChainTaken;
        goto block_done;
      br_fall:
        new_pc = static_cast<Addr>(u->pc) +
                 static_cast<Addr>(u->count) * kInstrBytes;
        slot = kChainFall;
        goto block_done;

      block_done:
        done += tb->len;
        kdone += kernel ? tb->len : 0;
        budget -= tb->len;
        pc = new_pc;
        ++exec_blocks;
        progressed = true;
        if (slot >= 0) {
            TransBlock* next = tb->next[slot];
            if (next != nullptr) [[likely]] {
                ++chain_hits;
                tb = next;  // TB→TB: no dispatcher, no table probe
            } else {
                ++chain_misses;
                prev = tb;
                prev_slot = slot;
                tb = nullptr;
            }
        } else {
            tb = nullptr;  // indirect exit: always through the table
        }
        continue;

      block_cut: {
        // A store invalidated the containing block mid-flight. The store
        // itself retired; resume at the following instruction from
        // freshly translated bytes.
        const InstrCount retired = u->icount_off + 1;
        done += retired;
        kdone += kernel ? retired : 0;
        budget -= retired;
        pc = static_cast<Addr>(u->pc) + kInstrBytes;
        tb = nullptr;
        prev = nullptr;
        progressed = true;
        continue;
      }

      uop_bail:
        // The current uop cannot run in translated form (fault path,
        // MMIO, call/ret with exits armed): nothing of it has retired.
        done += u->icount_off;
        kdone += kernel ? u->icount_off : 0;
        budget -= u->icount_off;
        pc = static_cast<Addr>(u->pc);

      bail_one:
        tb = nullptr;
        prev = nullptr;
        if (budget == 0)
            break;
        spill();
        {
            const Cycles expect = cycles_ + 1;
            const StepResult result = exec_one();
            if (result != StepResult::kOk)
                return result;
            --budget;
            if (cycles_ != expect)
                return StepResult::kOk;  // VM exit: caller re-checks world
            pc = state_.pc;
            kernel = state_.mode == Mode::kKernel;
            progressed = true;
        }
    }
    spill();
    return StepResult::kOk;
}

#undef UOP
#undef PUOP
#undef NEXT
#undef ENTER

}  // namespace rsafe::cpu
