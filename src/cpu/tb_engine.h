#ifndef RSAFE_CPU_TB_ENGINE_H_
#define RSAFE_CPU_TB_ENGINE_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/types.h"
#include "mem/phys_mem.h"
#include "stats/stats.h"

/**
 * @file
 * The translation-block execution engine (QEMU-TCG structure, no host
 * code emitter).
 *
 * The predecoded interpreter (PR 1) still pays, per guest instruction,
 * for a page-cache probe, a generation check, a valid-slot check, and
 * program-counter bookkeeping. The TB engine removes all of that from
 * the hot path by decoding each guest *basic block* once into a flat
 * micro-op trace:
 *
 *  - operand kinds are pre-resolved at translation time: every single
 *    ALU form is its own micro-op opcode (reg-reg vs reg-imm vs
 *    constant load, shift immediates pre-masked), so execution is one
 *    dispatch and the ALU expression — no re-inspection of the encoding
 *    and no second decode layer,
 *  - common pairs are fused into one micro-op (the cmp+branch loop
 *    idiom ALU+Bcc, load+ALU, and the ldi/ldiu 64-bit constant build),
 *  - dependent ALU pairs — the second op consumes the first op's result
 *    — fuse into *superinstructions*: one handler per (op1, op2)
 *    combination, macro-generated over the core ALU vocabulary, so both
 *    operations execute inline behind a single dispatch and the
 *    intermediate value travels in a host register instead of through a
 *    store-to-load forward in the guest register file,
 *  - direct jumps with aligned targets are folded into the trace: the
 *    block simply continues at the jump target (the jump still retires
 *    one instruction), so hot loops unroll up to the block cap and the
 *    backedge costs zero dispatches,
 *  - blocks are found by a direct-mapped lookup table keyed by guest PC,
 *    and direct exits (branch taken/fall-through, residual jumps, direct
 *    calls) are *chained*: the exiting block caches a pointer to its
 *    successor, so hot paths run TB→TB without another table probe,
 *  - dispatch is direct-threaded (computed goto) where the compiler
 *    supports it, with a portable switch fallback,
 *  - validity is maintained eagerly: the engine registers a
 *    mem::CodeWriteListener, and any generation bump of a covered page
 *    invalidates the block, severs every chain link into and out of it,
 *    and removes it from the lookup table. A store executed *inside* a
 *    block re-checks its own block's validity, so self-modifying code
 *    exits at the store and re-translates (mid-block write safety).
 *
 * Determinism: a translated run retires exactly the same instruction
 * sequence, side effects, cycle charges (one per instruction in batch
 * mode) and RAS traffic as the interpreter; anything the flat trace
 * cannot reproduce exactly (privileged ops, I/O, traps, call/ret with
 * exits armed, faults, MMIO) bails out to Cpu::exec_one, the single
 * canonical implementation. Replay barriers are respected by budget: a
 * block is only entered whole when the remaining instruction budget
 * covers it, so execution stops exactly at perf-counter stops,
 * interrupt-injection icounts and checkpoint boundaries. The
 * RSAFE_NO_TB environment variable (or Cpu::set_tb_enabled(false))
 * forces the predecoded-interpreter path for A/B testing.
 */

namespace rsafe::cpu {

/**
 * Pre-resolved ALU operation. The order of the enumerators mirrors the
 * single-ALU prefix of UopKind exactly (translation maps one onto the
 * other by value); AluFn itself survives only in the secondary slot of
 * fused pairs, which execute it through one small switch.
 */
enum class AluFn : std::uint8_t {
    kAddRR, kSubRR, kMulRR, kDivuRR, kAndRR, kOrRR, kXorRR, kShlRR, kShrRR,
    kAddI, kAndI, kOrI, kXorI, kShlI, kShrI,
    kLdi,   ///< rd = sext(imm)
    kLdiu,  ///< rd = (rd << 32) | zext(imm)
    kMov,   ///< rd = rs1
    kNop,
};

/** Branch conditions, in the order of the kBrEq.. / kAluBrEq.. kinds. */
enum class BrCond : std::uint8_t { kEq, kNe, kLt, kGe, kLtu, kGeu };

/**
 * X-macro for the ALU-pair superinstruction kinds: op2 (the consumer)
 * vocabulary for a fixed op1. Every op here reads rs1, which the fused
 * handler replaces with op1's result. Order defines enum layout —
 * pair_op2_index() in tb_engine.cc must match.
 */
#define RSAFE_TB_OP2_LIST(X, f1) \
    X(f1, AddRR) X(f1, SubRR) X(f1, MulRR) X(f1, AndRR) X(f1, OrRR) \
    X(f1, XorRR) X(f1, ShlRR) X(f1, ShrRR) X(f1, AddI) X(f1, AndI) \
    X(f1, OrI) X(f1, XorI) X(f1, ShlI) X(f1, ShrI) X(f1, Mov)

/**
 * All (op1, op2) superinstruction combinations: op1 is any result
 * producer (including constant loads), op2 any rs1 consumer. Divu is
 * excluded from both slots (its zero-divisor test would bloat every
 * handler it appears in). Order defines enum layout — pair_op1_index()
 * in tb_engine.cc must match.
 */
#define RSAFE_TB_FOR_EACH_PAIR(X) \
    RSAFE_TB_OP2_LIST(X, AddRR) RSAFE_TB_OP2_LIST(X, SubRR) \
    RSAFE_TB_OP2_LIST(X, MulRR) RSAFE_TB_OP2_LIST(X, AndRR) \
    RSAFE_TB_OP2_LIST(X, OrRR) RSAFE_TB_OP2_LIST(X, XorRR) \
    RSAFE_TB_OP2_LIST(X, ShlRR) RSAFE_TB_OP2_LIST(X, ShrRR) \
    RSAFE_TB_OP2_LIST(X, AddI) RSAFE_TB_OP2_LIST(X, AndI) \
    RSAFE_TB_OP2_LIST(X, OrI) RSAFE_TB_OP2_LIST(X, XorI) \
    RSAFE_TB_OP2_LIST(X, ShlI) RSAFE_TB_OP2_LIST(X, ShrI) \
    RSAFE_TB_OP2_LIST(X, Mov) RSAFE_TB_OP2_LIST(X, Ldi)

/** One pre-resolved ALU slot of a micro-op (8 bytes). */
struct AluSpec {
    AluFn fn = AluFn::kNop;
    std::uint8_t rd = 0;
    std::uint8_t rs1 = 0;
    std::uint8_t rs2 = 0;
    std::int32_t imm = 0;  ///< sext for ALU/disp; shifts are pre-masked
};

/**
 * Micro-op kinds: one handler per pre-resolved operation so the hot
 * loop is a single dispatch per micro-op. The kBrEq.. group and the
 * kAluBrEq.. group are each laid out in BrCond order.
 */
enum class UopKind : std::uint16_t {
    // Single ALU ops; order mirrors AluFn exactly. All use alu1.
    kAddRR, kSubRR, kMulRR, kDivuRR, kAndRR, kOrRR, kXorRR, kShlRR, kShrRR,
    kAddI, kAndI, kOrI, kXorI, kShlI, kShrI,
    kLdi, kLdiu, kMov, kNop,

    // Fused pairs.
    kLdi64,     ///< ldi+ldiu: alu1.rd = (sext(alu1.imm) << 32) | zext(imm)
    kLdAlu,     ///< kLd (alu1), then the ALU op in alu2

    // Memory and stack.
    kLd,        ///< alu1.rd = mem64[alu1.rs1 + alu1.imm]
    kLdb,       ///< alu1.rd = mem8[alu1.rs1 + alu1.imm]
    kSt,        ///< mem64[alu1.rs1 + alu1.imm] = alu1.rs2
    kStb,       ///< mem8[alu1.rs1 + alu1.imm] = alu1.rs2 & 0xff
    kPush,      ///< sp -= 8; mem64[sp] = alu1.rs1
    kPop,       ///< alu1.rd = mem64[sp]; sp += 8
    kGetsp,     ///< alu1.rd = sp
    kSetsp,     ///< sp = alu1.rs1
    kAddsp,     ///< sp += sext(alu1.imm)

    // Terminators. Conditional branches compare alu1.rs1/alu1.rs2;
    // the fused forms run alu1 first and compare alu2.rs1/alu2.rs2.
    // Taken/jump/call targets are in imm.
    kBrEq, kBrNe, kBrLt, kBrGe, kBrLtu, kBrGeu,
    kAluBrEq, kAluBrNe, kAluBrLt, kAluBrGe, kAluBrLtu, kAluBrGeu,
    kJmp,       ///< residual direct jump (unaligned target: not folded)
    kJmpr,      ///< pc = alu1.rs1 (indirect exit)
    kCall,      ///< push link/RAS, pc = imm (direct exit)
    kCallr,     ///< push link/RAS, pc = alu1.rs1 (indirect exit)
    kRet,       ///< pop/RAS predict, indirect exit
    kFall,      ///< cap or page budget reached: side-exit to pc
    kBail,      ///< instruction at pc is untranslatable: leave to exec_one

    /**
     * ALU-pair superinstructions kP_<op1>_<op2>: alu1 (op1) executes,
     * its result lands in regs[alu1.rd] AND feeds op2's rs1 operand
     * directly; alu2 (op2) executes with that value. Emitted only when
     * translation proves alu2.rs1 == alu1.rd.
     */
#define RSAFE_TB_PAIR_ENUM(f1, f2) kP_##f1##_##f2,
    RSAFE_TB_FOR_EACH_PAIR(RSAFE_TB_PAIR_ENUM)
#undef RSAFE_TB_PAIR_ENUM

    kCount,
};

/** One micro-op of a translated block (40 bytes). */
struct Uop {
    UopKind kind = UopKind::kNop;
    std::uint8_t count = 1;        ///< guest instructions this uop retires
    std::uint8_t pad = 0;
    std::uint32_t pc = 0;          ///< absolute guest PC (kFall/kBail: exit PC)
    /**
     * Direct-threaded handler address for this uop's kind (the dispatch
     * table entry, copied in at translation time so the hot loop pays one
     * load instead of two dependent ones). Null under the switch
     * fallback, which dispatches on kind.
     */
    const void* h = nullptr;
    AluSpec alu1;                  ///< primary slot (see UopKind)
    AluSpec alu2;                  ///< secondary slot of fused pairs
    std::int32_t imm = 0;          ///< branch/jump/call target (absolute)
    std::uint16_t icount_off = 0;  ///< instructions retired before this uop
};

/** Chain slots of a block's direct exits. */
enum : int {
    kChainTaken = 0,  ///< branch taken / direct jump / direct call target
    kChainFall = 1,   ///< branch fall-through / side-exit continuation
};

/** A translated basic block (or jump-folded trace). */
struct TransBlock {
    Addr pc = 0;                   ///< guest PC of the first instruction
    std::uint32_t len = 0;         ///< guest instructions retired when run
    bool valid = false;
    std::uint8_t num_pages = 1;    ///< pages covered (1 or 2)
    Addr pages[2] = {0, 0};        ///< covered page numbers
    std::vector<Uop> uops;
    TransBlock* next[2] = {nullptr, nullptr};  ///< chained successors
    /** Blocks whose next[slot] points at this block (for unchaining). */
    std::vector<std::pair<TransBlock*, int>> incoming;
};

/** Engine-internal event counters (not part of the determinism gate). */
struct TbEngineStats {
    std::uint64_t translated = 0;     ///< blocks translated
    std::uint64_t chain_hits = 0;     ///< TB→TB transitions via a chain
    std::uint64_t chain_misses = 0;   ///< direct exits that needed a lookup
    std::uint64_t invalidations = 0;  ///< blocks invalidated by code writes
    std::uint64_t flushes = 0;        ///< whole-cache flushes
    std::uint64_t exec_blocks = 0;    ///< whole blocks executed
};

/**
 * The translation cache: block storage, direct-mapped PC lookup,
 * chaining bookkeeping, and write-driven invalidation.
 *
 * Execution itself lives in Cpu::run_tb (tb_engine.cc), which needs the
 * CPU's register file; the engine owns everything with a lifetime.
 */
class TbEngine : public mem::CodeWriteListener {
  public:
    /** Guest instructions retired per block, at most. */
    static constexpr std::uint32_t kMaxBlockInstrs = 128;
    /** Direct-mapped lookup table entries (power of two). */
    static constexpr std::size_t kLookupEntries = 8192;
    /** Translated blocks retained before a full flush. */
    static constexpr std::size_t kMaxBlocks = 16384;

    explicit TbEngine(mem::PhysMem* mem);
    ~TbEngine() override;

    TbEngine(const TbEngine&) = delete;
    TbEngine& operator=(const TbEngine&) = delete;

    /** @return the valid block starting at @p pc, or nullptr on miss. */
    TransBlock* lookup(Addr pc)
    {
        const Slot& slot = table_[index_of(pc)];
        if (slot.tb != nullptr && slot.pc == pc) [[likely]]
            return slot.tb;
        return nullptr;
    }

    /**
     * Translate the block starting at @p pc and install it in the lookup
     * table. @return nullptr if no instruction at @p pc is translatable
     * (not executable, unaligned, undecodable, or a bail-only opcode) —
     * the caller falls back to the interpreter for that instruction.
     */
    TransBlock* translate(Addr pc);

    /** Record that @p from's direct exit @p slot continues at @p to. */
    void chain(TransBlock* from, int slot, TransBlock* to);

    /** @return true when the block store is due for a full flush. */
    bool should_flush() const { return blocks_.size() >= kMaxBlocks; }

    /**
     * Drop every translated block. Callers must hold no TransBlock
     * pointers across this call.
     */
    void flush();

    /**
     * Adopt the CPU's current PC-breakpoint set. Translation refuses to
     * start a block at a breakpoint (the hook has to fire from run()
     * before the instruction executes) and cuts every block short of one,
     * so chained TB-to-TB flow can never sail past a breakpoint. A
     * changed set flushes the cache; callers must hold no TransBlock
     * pointers across this call.
     */
    void sync_breakpoints(const std::unordered_set<Addr>& bps);

    /** @return true when @p pc carries a breakpoint (synced view). */
    bool is_breakpoint(Addr pc) const
    {
        return std::binary_search(bp_pcs_.begin(), bp_pcs_.end(), pc);
    }

    // mem::CodeWriteListener: eager invalidate + unchain on code writes.
    void on_code_page_touched(Addr page) override;

    const TbEngineStats& stats() const { return stats_; }
    /** Distribution of translated block lengths (guest instructions). */
    const stats::Histogram& block_length_hist() const { return block_len_; }

  private:
    friend class Cpu;  ///< Cpu::run_tb updates the event counters inline.

    /**
     * The computed-goto dispatch table, registered by Cpu::run_tb on its
     * first call (the labels are function-local). Indexed by UopKind;
     * stays null when the portable switch fallback is compiled in.
     */
    const void* const* dispatch_ = nullptr;

    struct Slot {
        Addr pc = 0;
        TransBlock* tb = nullptr;
    };

    static std::size_t index_of(Addr pc)
    {
        return (pc / kInstrBytes) & (kLookupEntries - 1);
    }

    void invalidate(TransBlock* tb);

    mem::PhysMem* mem_;
    std::vector<std::unique_ptr<TransBlock>> blocks_;
    std::vector<Slot> table_;
    /** Valid blocks covering each page (invalid entries are skipped). */
    std::vector<std::vector<TransBlock*>> page_tbs_;
    TbEngineStats stats_;
    stats::Histogram block_len_;
    /** Snapshot of the CPU's PC breakpoints (sync_breakpoints): the set
     *  for cheap change detection, the sorted vector for is_breakpoint. */
    std::unordered_set<Addr> bp_set_;
    std::vector<Addr> bp_pcs_;
};

}  // namespace rsafe::cpu

#endif  // RSAFE_CPU_TB_ENGINE_H_
