#ifndef RSAFE_CPU_VMCS_H_
#define RSAFE_CPU_VMCS_H_

#include <cstdint>
#include <optional>
#include <unordered_set>

#include "common/types.h"

/**
 * @file
 * The VM control structure: how the hypervisor configures when the virtual
 * CPU leaves guest execution, mirroring Intel VT terminology (Section 5).
 *
 * Fields fall into three groups:
 *  - exit controls for the synchronous non-deterministic instructions
 *    (rdtsc, pio/mmio) — set during recording and replay, clear in the
 *    paravirtual baseline,
 *  - RnR-Safe security controls (RAS alarms, eviction exits, whitelist
 *    checking, kernel call/ret trapping for the alarm replayer),
 *  - event-injection state (the pending virtual interrupt and the
 *    perf-counter stop used to land replay injections precisely).
 */

namespace rsafe::cpu {

/** Simulated micro-architectural cost constants (cycles). */
struct Costs {
    /** One VMExit + VMEnter round trip (Sections 4.3, 7.3). */
    static constexpr Cycles kVmTransition = 1000;
    /** Microcode dump of the RAS into the BackRAS (Section 4.3). */
    static constexpr Cycles kRasSave = 200;
    /** Microcode reload of the RAS from the BackRAS (Section 4.3). */
    static constexpr Cycles kRasRestore = 200;
    /** One paravirtual (non-trapping) I/O access. */
    static constexpr Cycles kPvIo = 20;
    /** One single-step during async-event injection (Section 7.3). */
    static constexpr Cycles kSingleStep = 1000;
    /** Copying one page or disk block into a checkpoint. */
    static constexpr Cycles kPageCopy = 3000;
    /** Fixed cost of appending one record to the input log. */
    static constexpr Cycles kLogRecord = 150;
    /** Marginal cost of each 8 logged payload bytes. */
    static constexpr Cycles kLogPer8Bytes = 1;
};

/** Exit/feature controls programmed by the hypervisor. */
struct ExitControls {
    /** Trap rdtsc (mediated timing). */
    bool exit_on_rdtsc = false;
    /** Trap pio and mmio (hypervisor-mediated I/O); false = paravirtual. */
    bool exit_on_io = true;
    /** Raise ROP alarms on RAS mispredictions (recorded VM only). */
    bool ras_alarm_enabled = false;
    /** VM-exit and dump the entry when the RAS is about to evict. */
    bool ras_evict_exit = false;
    /** Honor the Ret/Tar whitelists in the RAS. */
    bool whitelist_enabled = true;
    /** Trap every kernel-mode call/ret (alarm replayer). */
    bool trap_kernel_call_ret = false;
    /** Also trap user-mode call/ret (deep-analysis alarm replay). */
    bool trap_user_call_ret = false;
    /** Notify the environment of indirect branches (JOP detector). */
    bool trap_indirect_branch = false;
    /**
     * VM-exit on the first fetch from a watched (written-since-armed)
     * executable page (W^X detector). Watched pages live in
     * Vmcs::wx_watch_pages; the exit consumes the watch, so each armed
     * page fires at most once until re-watched.
     */
    bool wx_fetch_exit = false;
};

/** The per-VM control structure. */
struct Vmcs {
    ExitControls controls;

    /** PC breakpoints (context-switch / thread-exit / thread-spawn). */
    std::unordered_set<Addr> breakpoints;

    /**
     * Executable page numbers written since the W^X detector armed them
     * (see ExitControls::wx_fetch_exit). Keyed by page number, not base
     * address.
     */
    std::unordered_set<Addr> wx_watch_pages;

    /** Virtual interrupt awaiting delivery (cleared on delivery). */
    std::optional<std::uint8_t> pending_irq;

    /**
     * Perf-counter stop: the CPU exits when icount reaches this value.
     * Used by the replayer to approach an async injection point.
     */
    InstrCount perf_stop = ~static_cast<InstrCount>(0);
};

}  // namespace rsafe::cpu

#endif  // RSAFE_CPU_VMCS_H_
