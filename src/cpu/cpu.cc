#include "cpu/cpu.h"

#include <cstdlib>

#include "common/log.h"
#include "cpu/tb_engine.h"
#include "dev/device_hub.h"

namespace rsafe::cpu {

using isa::Opcode;

Cpu::Cpu(mem::PhysMem* mem, std::size_t ras_depth)
    : mem_(mem), ras_(ras_depth)
{
    if (mem_ == nullptr)
        fatal("Cpu: null memory");
    decode_cache_.resize(mem_->num_pages());
    if (const char* env = std::getenv("RSAFE_NO_DECODE_CACHE");
        env != nullptr && env[0] != '\0' && env[0] != '0') {
        decode_cache_enabled_ = false;
    }
    tb_ = std::make_unique<TbEngine>(mem_);
    if (const char* env = std::getenv("RSAFE_NO_TB");
        env != nullptr && env[0] != '\0' && env[0] != '0') {
        tb_enabled_ = false;
    }
}

Cpu::~Cpu() = default;

Cpu::DecodedPage*
Cpu::predecode_page(Addr page)
{
    // Only executable pages are worth predecoding; a fetch from anywhere
    // else takes the slow path and faults there with the right reason.
    if (!(mem_->perms_at(page * kPageSize) & mem::kPermExec))
        return nullptr;
    auto& slot = decode_cache_[page];
    if (slot == nullptr)
        slot = std::make_unique<DecodedPage>();
    const std::uint8_t* bytes = mem_->page_data(page);
    for (std::size_t i = 0; i < kInstrsPerPage; ++i) {
        slot->valid[i] =
            isa::decode(bytes + i * kInstrBytes, &slot->instrs[i]) ? 1 : 0;
    }
    slot->gen = mem_->page_gen(page);
    return slot.get();
}

const Cpu::DecodedPage*
Cpu::cached_page(Addr page)
{
    if (!decode_cache_enabled_)
        return nullptr;
    if (page >= decode_cache_.size()) [[unlikely]]
        return nullptr;
    DecodedPage* dp = decode_cache_[page].get();
    if (dp == nullptr || dp->gen != mem_->page_gen(page)) {
        dp = predecode_page(page);
        if (dp == nullptr)
            return nullptr;
    }
    cur_page_base_ = page * kPageSize;
    cur_dp_ = dp;
    cur_gen_ = mem_->page_gen_ptr(page);
    return dp;
}

const isa::Instr*
Cpu::cached_instr(Addr pc)
{
    // Single-compare fast path: low bits of cur_page_base_ are zero, so
    // this mask matches iff pc is on the cached page AND slot-aligned.
    constexpr Addr kPageAndAlignMask =
        ~static_cast<Addr>(kPageSize - 1) | (kInstrBytes - 1);
    const DecodedPage* dp;
    if ((pc & kPageAndAlignMask) == cur_page_base_ &&
        cur_dp_->gen == *cur_gen_) [[likely]] {
        dp = cur_dp_;
    } else {
        // Unaligned PCs (corrupted control flow) take the raw-fetch path,
        // which reads the same bytes a real fetch would.
        if ((pc & (kInstrBytes - 1)) != 0) [[unlikely]]
            return nullptr;
        dp = cached_page(page_of(pc));
        if (dp == nullptr)
            return nullptr;
    }
    const std::size_t slot = page_offset(pc) / kInstrBytes;
    if (!dp->valid[slot]) [[unlikely]]
        return nullptr;
    return &dp->instrs[slot];
}

bool
Cpu::mem_read(Addr addr, std::size_t len, Word* out)
{
    const auto result = mem_->read(addr, len, out);
    if (result != mem::MemResult::kOk) {
        fault_reason_ = strcat_args(
            "read fault at 0x", std::hex, addr, " pc=0x", state_.pc,
            result == mem::MemResult::kNoPerm ? " (perm)" : " (range)");
        return false;
    }
    return true;
}

bool
Cpu::mem_write(Addr addr, std::size_t len, Word value)
{
    const auto result = mem_->write(addr, len, value);
    if (result != mem::MemResult::kOk) {
        fault_reason_ = strcat_args(
            "write fault at 0x", std::hex, addr, " pc=0x", state_.pc,
            result == mem::MemResult::kNoPerm ? " (perm)" : " (range)");
        return false;
    }
    return true;
}

bool
Cpu::stack_push(Word value)
{
    state_.sp -= 8;
    return mem_write(state_.sp, 8, value);
}

bool
Cpu::stack_pop(Word* out)
{
    if (!mem_read(state_.sp, 8, out))
        return false;
    state_.sp += 8;
    return true;
}

bool
Cpu::priv_check(const isa::Instr& instr)
{
    if (state_.mode == Mode::kKernel)
        return true;
    // Note: kSetsp is deliberately unprivileged (like `mov rsp` on x86);
    // the kernel's context-switch SETSP is special because of the PC
    // breakpoint the hypervisor sets on it, not because of the opcode.
    switch (instr.op) {
      case Opcode::kHalt:
      case Opcode::kIret:
      case Opcode::kCli:
      case Opcode::kSti:
        fault_reason_ = strcat_args("privileged instruction '",
                                    isa::opcode_name(instr.op),
                                    "' in user mode, pc=0x", std::hex,
                                    state_.pc);
        return false;
      default:
        return true;
    }
}

void
Cpu::deliver_interrupt_frame(Addr vector_slot)
{
    const Word flags = (state_.mode == Mode::kKernel ? 1 : 0) |
                       (state_.iflag ? 2 : 0);
    // A failed push here means the guest stack itself is unusable; the
    // surrounding caller surfaces it as a fault.
    stack_push(flags);
    stack_push(state_.pc);
    state_.mode = Mode::kKernel;
    state_.iflag = false;
    state_.pc = mem_->read_raw(kIvtBase + 8 * vector_slot, 8);
}

bool
Cpu::deliver_pending_irq()
{
    if (!vmcs_.pending_irq || !state_.iflag)
        return false;
    const std::uint8_t vector = *vmcs_.pending_irq;
    vmcs_.pending_irq.reset();
    deliver_interrupt_frame(vector);
    ++stats_.interrupts_delivered;
    if (env_ != nullptr)
        env_->on_interrupt_delivered(vector);
    return true;
}

void
Cpu::ras_call_push(Addr link)
{
    const auto evicted = ras_.push(link);
    if (evicted && vmcs_.controls.ras_evict_exit) {
        ++stats_.ras_evictions;
        cycles_ += Costs::kVmTransition;
        env_->on_ras_evict(*evicted);
    }
}

Cpu::StepResult
Cpu::do_ret()
{
    const Addr ret_pc = state_.pc;
    Word target;
    if (!stack_pop(&target))
        return StepResult::kFault;

    ras_.set_whitelist_enabled(vmcs_.controls.whitelist_enabled);
    Addr predicted = 0;
    const RasPredict outcome = ras_.predict(ret_pc, target, &predicted);
    switch (outcome) {
      case RasPredict::kHit:
        ++stats_.ras_hits;
        break;
      case RasPredict::kHitRestored:
        ++stats_.ras_hits;
        ++stats_.ras_hits_restored;
        break;
      case RasPredict::kWhitelisted:
        ++stats_.ras_whitelisted;
        break;
      case RasPredict::kMispredict:
      case RasPredict::kUnderflow:
      case RasPredict::kWhitelistMiss: {
        if (vmcs_.controls.ras_alarm_enabled) {
            ++stats_.ras_alarms;
            cycles_ += Costs::kVmTransition;
            RasAlarm alarm;
            alarm.kind = outcome == RasPredict::kUnderflow
                             ? RasAlarmKind::kUnderflow
                             : outcome == RasPredict::kWhitelistMiss
                                   ? RasAlarmKind::kWhitelistMiss
                                   : RasAlarmKind::kMispredict;
            alarm.ret_pc = ret_pc;
            alarm.predicted = predicted;
            alarm.actual = target;
            alarm.sp_after = state_.sp;
            alarm.mode = state_.mode;
            env_->on_ras_alarm(alarm);
        }
        break;
      }
    }

    const bool trace_ret =
        (vmcs_.controls.trap_kernel_call_ret &&
         state_.mode == Mode::kKernel) ||
        (vmcs_.controls.trap_user_call_ret && state_.mode == Mode::kUser);
    if (trace_ret) {
        if (state_.mode == Mode::kKernel)
            ++stats_.kernel_call_rets;
        cycles_ += Costs::kVmTransition;
        CallRetEvent event;
        event.is_call = false;
        event.pc = ret_pc;
        event.target = target;
        event.mode = state_.mode;
        env_->on_call_ret(event);
    }
    state_.pc = target;
    return StepResult::kOk;
}

Cpu::StepResult
Cpu::exec_one()
{
    if (vmcs_.controls.wx_fetch_exit &&
        !vmcs_.wx_watch_pages.empty()) [[unlikely]] {
        // W^X fetch watch: exit before executing the first instruction
        // fetched from a page written since it was armed. The watch is
        // consumed here, so the icount recorded by the environment is
        // the position *before* the fetch — replay stops with the
        // injected/patched code still unexecuted and inspectable.
        const auto it = vmcs_.wx_watch_pages.find(page_of(state_.pc));
        if (it != vmcs_.wx_watch_pages.end()) {
            vmcs_.wx_watch_pages.erase(it);
            cycles_ += Costs::kVmTransition;
            env_->on_wx_fetch(state_.pc);
        }
    }

    isa::Instr instr;
    const isa::Instr* instr_ptr = cached_instr(state_.pc);
    if (instr_ptr != nullptr) [[likely]] {
        instr = *instr_ptr;  // 8 bytes; keeps the fields in registers
    } else {
        std::uint8_t raw[kInstrBytes];
        const auto fetch_result = mem_->fetch(state_.pc, raw);
        if (fetch_result != mem::MemResult::kOk) {
            fault_reason_ = strcat_args(
                "fetch fault at pc=0x", std::hex, state_.pc,
                fetch_result == mem::MemResult::kNoPerm ? " (perm)"
                                                        : " (range)");
            return StepResult::kFault;
        }
        if (!isa::decode(raw, &instr)) {
            fault_reason_ = strcat_args("undecodable instruction at pc=0x",
                                        std::hex, state_.pc);
            return StepResult::kBadInstr;
        }
    }
    if (!priv_check(instr))
        return StepResult::kBadInstr;

    if (state_.mode == Mode::kKernel)
        ++stats_.kernel_instructions;
    ++stats_.instructions;
    ++icount_;
    ++cycles_;

    auto& regs = state_.regs;
    const Addr next_pc = state_.pc + kInstrBytes;
    const bool mediated_io = vmcs_.controls.exit_on_io;

    switch (instr.op) {
      case Opcode::kNop:
        break;
      case Opcode::kHalt:
        state_.halted = true;
        return StepResult::kHalt;

      case Opcode::kAdd: regs[instr.rd] = regs[instr.rs1] + regs[instr.rs2]; break;
      case Opcode::kSub: regs[instr.rd] = regs[instr.rs1] - regs[instr.rs2]; break;
      case Opcode::kMul: regs[instr.rd] = regs[instr.rs1] * regs[instr.rs2]; break;
      case Opcode::kDivu:
        regs[instr.rd] = regs[instr.rs2] == 0
                             ? ~static_cast<Word>(0)
                             : regs[instr.rs1] / regs[instr.rs2];
        break;
      case Opcode::kAnd: regs[instr.rd] = regs[instr.rs1] & regs[instr.rs2]; break;
      case Opcode::kOr:  regs[instr.rd] = regs[instr.rs1] | regs[instr.rs2]; break;
      case Opcode::kXor: regs[instr.rd] = regs[instr.rs1] ^ regs[instr.rs2]; break;
      case Opcode::kShl: regs[instr.rd] = regs[instr.rs1] << (regs[instr.rs2] & 63); break;
      case Opcode::kShr: regs[instr.rd] = regs[instr.rs1] >> (regs[instr.rs2] & 63); break;

      case Opcode::kAddi: regs[instr.rd] = regs[instr.rs1] + static_cast<Word>(instr.simm()); break;
      case Opcode::kAndi: regs[instr.rd] = regs[instr.rs1] & static_cast<Word>(instr.simm()); break;
      case Opcode::kOri:  regs[instr.rd] = regs[instr.rs1] | static_cast<Word>(instr.simm()); break;
      case Opcode::kXori: regs[instr.rd] = regs[instr.rs1] ^ static_cast<Word>(instr.simm()); break;
      case Opcode::kShli: regs[instr.rd] = regs[instr.rs1] << (instr.imm & 63); break;
      case Opcode::kShri: regs[instr.rd] = regs[instr.rs1] >> (instr.imm & 63); break;

      case Opcode::kLdi:
        regs[instr.rd] = static_cast<Word>(instr.simm());
        break;
      case Opcode::kLdiu:
        regs[instr.rd] = (regs[instr.rd] << 32) |
                         static_cast<Word>(static_cast<std::uint32_t>(instr.imm));
        break;
      case Opcode::kMov:
        regs[instr.rd] = regs[instr.rs1];
        break;

      case Opcode::kLd:
      case Opcode::kLdb: {
        const Addr addr = regs[instr.rs1] + static_cast<Word>(instr.simm());
        const std::size_t len = instr.op == Opcode::kLd ? 8 : 1;
        if (dev::is_mmio(addr)) {
            ++stats_.io_accesses;
            if (mediated_io) {
                cycles_ += Costs::kVmTransition;
                regs[instr.rd] = env_->on_mmio_read(addr);
            } else {
                cycles_ += Costs::kPvIo;
                regs[instr.rd] = pv_bus_->pv_mmio_read(addr);
            }
        } else {
            Word value;
            if (!mem_read(addr, len, &value))
                return StepResult::kFault;
            regs[instr.rd] = value;
        }
        break;
      }
      case Opcode::kSt:
      case Opcode::kStb: {
        const Addr addr = regs[instr.rs1] + static_cast<Word>(instr.simm());
        const std::size_t len = instr.op == Opcode::kSt ? 8 : 1;
        const Word value = instr.op == Opcode::kSt
                               ? regs[instr.rs2]
                               : (regs[instr.rs2] & 0xff);
        if (dev::is_mmio(addr)) {
            ++stats_.io_accesses;
            if (mediated_io) {
                cycles_ += Costs::kVmTransition;
                env_->on_mmio_write(addr, value);
            } else {
                cycles_ += Costs::kPvIo;
                pv_bus_->pv_mmio_write(addr, value);
            }
        } else {
            if (!mem_write(addr, len, value))
                return StepResult::kFault;
        }
        break;
      }

      case Opcode::kBeq:
        if (regs[instr.rs1] == regs[instr.rs2]) { state_.pc = instr.uimm(); return StepResult::kOk; }
        break;
      case Opcode::kBne:
        if (regs[instr.rs1] != regs[instr.rs2]) { state_.pc = instr.uimm(); return StepResult::kOk; }
        break;
      case Opcode::kBlt:
        if (static_cast<std::int64_t>(regs[instr.rs1]) <
            static_cast<std::int64_t>(regs[instr.rs2])) { state_.pc = instr.uimm(); return StepResult::kOk; }
        break;
      case Opcode::kBge:
        if (static_cast<std::int64_t>(regs[instr.rs1]) >=
            static_cast<std::int64_t>(regs[instr.rs2])) { state_.pc = instr.uimm(); return StepResult::kOk; }
        break;
      case Opcode::kBltu:
        if (regs[instr.rs1] < regs[instr.rs2]) { state_.pc = instr.uimm(); return StepResult::kOk; }
        break;
      case Opcode::kBgeu:
        if (regs[instr.rs1] >= regs[instr.rs2]) { state_.pc = instr.uimm(); return StepResult::kOk; }
        break;

      case Opcode::kJmp:
        state_.pc = instr.uimm();
        return StepResult::kOk;
      case Opcode::kJmpr:
        if (vmcs_.controls.trap_indirect_branch)
            env_->on_indirect_branch(state_.pc, regs[instr.rs1], false);
        state_.pc = regs[instr.rs1];
        return StepResult::kOk;

      case Opcode::kCall:
      case Opcode::kCallr: {
        const Addr target = instr.op == Opcode::kCall ? instr.uimm()
                                                      : regs[instr.rs1];
        if (instr.op == Opcode::kCallr &&
            vmcs_.controls.trap_indirect_branch) {
            env_->on_indirect_branch(state_.pc, target, true);
        }
        if (!stack_push(next_pc))
            return StepResult::kFault;
        ras_call_push(next_pc);
        ++stats_.calls;
        const bool trace_call =
            (vmcs_.controls.trap_kernel_call_ret &&
             state_.mode == Mode::kKernel) ||
            (vmcs_.controls.trap_user_call_ret &&
             state_.mode == Mode::kUser);
        if (trace_call) {
            if (state_.mode == Mode::kKernel)
                ++stats_.kernel_call_rets;
            cycles_ += Costs::kVmTransition;
            CallRetEvent event;
            event.is_call = true;
            event.pc = state_.pc;
            event.target = target;
            event.link = next_pc;
            event.mode = state_.mode;
            env_->on_call_ret(event);
        }
        state_.pc = target;
        return StepResult::kOk;
      }
      case Opcode::kRet:
        ++stats_.rets;
        return do_ret();

      case Opcode::kPush:
        if (!stack_push(regs[instr.rs1]))
            return StepResult::kFault;
        break;
      case Opcode::kPop: {
        Word value;
        if (!stack_pop(&value))
            return StepResult::kFault;
        regs[instr.rd] = value;
        break;
      }

      case Opcode::kGetsp:
        regs[instr.rd] = state_.sp;
        break;
      case Opcode::kSetsp:
        state_.sp = regs[instr.rs1];
        break;
      case Opcode::kAddsp:
        state_.sp += static_cast<Word>(instr.simm());
        break;

      case Opcode::kRdtsc:
        ++stats_.rdtsc_reads;
        if (vmcs_.controls.exit_on_rdtsc) {
            cycles_ += Costs::kVmTransition;
            regs[instr.rd] = env_->on_rdtsc();
        } else {
            regs[instr.rd] = pv_bus_->pv_rdtsc();
        }
        break;

      case Opcode::kIn: {
        const auto port = static_cast<std::uint16_t>(instr.imm);
        ++stats_.io_accesses;
        if (mediated_io) {
            cycles_ += Costs::kVmTransition;
            regs[instr.rd] = env_->on_io_in(port);
        } else {
            cycles_ += Costs::kPvIo;
            regs[instr.rd] = pv_bus_->pv_io_in(port);
        }
        break;
      }
      case Opcode::kOut: {
        const auto port = static_cast<std::uint16_t>(instr.imm);
        ++stats_.io_accesses;
        if (mediated_io) {
            cycles_ += Costs::kVmTransition;
            env_->on_io_out(port, regs[instr.rs1]);
        } else {
            cycles_ += Costs::kPvIo;
            pv_bus_->pv_io_out(port, regs[instr.rs1]);
        }
        break;
      }

      case Opcode::kSyscall: {
        // Enter the kernel through the IVT's syscall slot; the frame layout
        // matches interrupt delivery so the kernel shares one exit path.
        const Addr saved_pc = next_pc;
        const Word flags = (state_.mode == Mode::kKernel ? 1 : 0) |
                           (state_.iflag ? 2 : 0);
        if (!stack_push(flags))
            return StepResult::kFault;
        if (!stack_push(saved_pc))
            return StepResult::kFault;
        state_.mode = Mode::kKernel;
        state_.iflag = false;
        state_.pc = mem_->read_raw(kIvtBase + 8 * kIvtSyscallSlot, 8);
        return StepResult::kOk;
      }
      case Opcode::kIret: {
        Word saved_pc, flags;
        if (!stack_pop(&saved_pc) || !stack_pop(&flags))
            return StepResult::kFault;
        state_.mode = (flags & 1) ? Mode::kKernel : Mode::kUser;
        state_.iflag = (flags & 2) != 0;
        state_.pc = saved_pc;
        return StepResult::kOk;
      }
      case Opcode::kCli:
        state_.iflag = false;
        break;
      case Opcode::kSti:
        state_.iflag = true;
        break;

      case Opcode::kCount:
        fault_reason_ = "kCount executed";
        return StepResult::kBadInstr;
    }

    state_.pc = next_pc;
    return StepResult::kOk;
}

Cpu::StepResult
Cpu::run_batch(InstrCount budget)
{
    // The register-resident inner interpreter. Preconditions (established
    // by run()): no breakpoints armed, no pending IRQ, indirect-branch
    // trap off. Instructions whose semantics are pure — no VM exit, no
    // fault, no privilege interaction — are executed inline with the
    // program counter and the instruction/cycle counters held in locals,
    // so the compiler keeps them in registers across iterations. Anything
    // else bails (before mutating any state) to exec_one(), the single
    // source of truth for the complex cases. A bail that charges extra
    // cycles is a VM exit: return so the caller can re-check the world.
    const bool callret_pure = !vmcs_.controls.ras_alarm_enabled &&
                              !vmcs_.controls.ras_evict_exit &&
                              !vmcs_.controls.trap_kernel_call_ret &&
                              !vmcs_.controls.trap_user_call_ret;
    auto& regs = state_.regs;
    Addr pc = state_.pc;
    bool kernel = state_.mode == Mode::kKernel;
    InstrCount done = 0;
    InstrCount kdone = 0;

    const auto spill = [&] {
        state_.pc = pc;
        icount_ += done;
        cycles_ += done;
        stats_.instructions += done;
        stats_.kernel_instructions += kdone;
        done = 0;
        kdone = 0;
    };

    constexpr Addr kPageAndAlignMask =
        ~static_cast<Addr>(kPageSize - 1) | (kInstrBytes - 1);

    while (budget > 0) {
        // Inline fetch from the one-entry page cache; page crossings,
        // stale generations, and unaligned PCs all bail. (The sentinel
        // cur_page_base_ of ~0 can never match pc & mask because the
        // mask zeroes bits 3..11, so cur_dp_ is non-null when it does.)
        if ((pc & kPageAndAlignMask) != cur_page_base_ ||
            cur_dp_->gen != *cur_gen_) [[unlikely]]
            goto bail;
        {
            const std::size_t slot = page_offset(pc) / kInstrBytes;
            if (!cur_dp_->valid[slot]) [[unlikely]]
                goto bail;
            const isa::Instr instr = cur_dp_->instrs[slot];
            const Addr next_pc = pc + kInstrBytes;
            Addr new_pc = next_pc;
            switch (instr.op) {
              case Opcode::kNop:
                break;

              case Opcode::kAdd: regs[instr.rd] = regs[instr.rs1] + regs[instr.rs2]; break;
              case Opcode::kSub: regs[instr.rd] = regs[instr.rs1] - regs[instr.rs2]; break;
              case Opcode::kMul: regs[instr.rd] = regs[instr.rs1] * regs[instr.rs2]; break;
              case Opcode::kDivu:
                regs[instr.rd] = regs[instr.rs2] == 0
                                     ? ~static_cast<Word>(0)
                                     : regs[instr.rs1] / regs[instr.rs2];
                break;
              case Opcode::kAnd: regs[instr.rd] = regs[instr.rs1] & regs[instr.rs2]; break;
              case Opcode::kOr:  regs[instr.rd] = regs[instr.rs1] | regs[instr.rs2]; break;
              case Opcode::kXor: regs[instr.rd] = regs[instr.rs1] ^ regs[instr.rs2]; break;
              case Opcode::kShl: regs[instr.rd] = regs[instr.rs1] << (regs[instr.rs2] & 63); break;
              case Opcode::kShr: regs[instr.rd] = regs[instr.rs1] >> (regs[instr.rs2] & 63); break;

              case Opcode::kAddi: regs[instr.rd] = regs[instr.rs1] + static_cast<Word>(instr.simm()); break;
              case Opcode::kAndi: regs[instr.rd] = regs[instr.rs1] & static_cast<Word>(instr.simm()); break;
              case Opcode::kOri:  regs[instr.rd] = regs[instr.rs1] | static_cast<Word>(instr.simm()); break;
              case Opcode::kXori: regs[instr.rd] = regs[instr.rs1] ^ static_cast<Word>(instr.simm()); break;
              case Opcode::kShli: regs[instr.rd] = regs[instr.rs1] << (instr.imm & 63); break;
              case Opcode::kShri: regs[instr.rd] = regs[instr.rs1] >> (instr.imm & 63); break;

              case Opcode::kLdi:
                regs[instr.rd] = static_cast<Word>(instr.simm());
                break;
              case Opcode::kLdiu:
                regs[instr.rd] =
                    (regs[instr.rd] << 32) |
                    static_cast<Word>(static_cast<std::uint32_t>(instr.imm));
                break;
              case Opcode::kMov:
                regs[instr.rd] = regs[instr.rs1];
                break;

              case Opcode::kLd:
              case Opcode::kLdb: {
                const Addr addr =
                    regs[instr.rs1] + static_cast<Word>(instr.simm());
                if (dev::is_mmio(addr)) [[unlikely]]
                    goto bail;
                Word value;
                if (mem_->read(addr, instr.op == Opcode::kLd ? 8 : 1,
                               &value) != mem::MemResult::kOk) [[unlikely]]
                    goto bail;
                regs[instr.rd] = value;
                break;
              }
              case Opcode::kSt:
              case Opcode::kStb: {
                const Addr addr =
                    regs[instr.rs1] + static_cast<Word>(instr.simm());
                if (dev::is_mmio(addr)) [[unlikely]]
                    goto bail;
                const bool st8 = instr.op == Opcode::kSt;
                if (mem_->write(addr, st8 ? 8 : 1,
                                st8 ? regs[instr.rs2]
                                    : (regs[instr.rs2] & 0xff)) !=
                    mem::MemResult::kOk) [[unlikely]]
                    goto bail;
                break;
              }

              case Opcode::kBeq:
                if (regs[instr.rs1] == regs[instr.rs2]) new_pc = instr.uimm();
                break;
              case Opcode::kBne:
                if (regs[instr.rs1] != regs[instr.rs2]) new_pc = instr.uimm();
                break;
              case Opcode::kBlt:
                if (static_cast<std::int64_t>(regs[instr.rs1]) <
                    static_cast<std::int64_t>(regs[instr.rs2]))
                    new_pc = instr.uimm();
                break;
              case Opcode::kBge:
                if (static_cast<std::int64_t>(regs[instr.rs1]) >=
                    static_cast<std::int64_t>(regs[instr.rs2]))
                    new_pc = instr.uimm();
                break;
              case Opcode::kBltu:
                if (regs[instr.rs1] < regs[instr.rs2]) new_pc = instr.uimm();
                break;
              case Opcode::kBgeu:
                if (regs[instr.rs1] >= regs[instr.rs2]) new_pc = instr.uimm();
                break;

              case Opcode::kJmp:
                new_pc = instr.uimm();
                break;
              case Opcode::kJmpr:
                // trap_indirect_branch is off (run_batch precondition).
                new_pc = regs[instr.rs1];
                break;

              case Opcode::kCall:
              case Opcode::kCallr: {
                if (!callret_pure) [[unlikely]]
                    goto bail;
                // Push the link without pre-decrementing sp so a stack
                // fault can still bail with nothing mutated.
                if (mem_->write(state_.sp - 8, 8, next_pc) !=
                    mem::MemResult::kOk) [[unlikely]]
                    goto bail;
                state_.sp -= 8;
                ras_.push(next_pc);  // evict exit off under callret_pure
                ++stats_.calls;
                new_pc = instr.op == Opcode::kCall ? instr.uimm()
                                                   : regs[instr.rs1];
                break;
              }
              case Opcode::kRet: {
                if (!callret_pure) [[unlikely]]
                    goto bail;
                Word target;
                if (mem_->read(state_.sp, 8, &target) !=
                    mem::MemResult::kOk) [[unlikely]]
                    goto bail;
                state_.sp += 8;
                ++stats_.rets;
                ras_.set_whitelist_enabled(vmcs_.controls.whitelist_enabled);
                Addr predicted = 0;
                switch (ras_.predict(pc, target, &predicted)) {
                  case RasPredict::kHit:
                    ++stats_.ras_hits;
                    break;
                  case RasPredict::kHitRestored:
                    ++stats_.ras_hits;
                    ++stats_.ras_hits_restored;
                    break;
                  case RasPredict::kWhitelisted:
                    ++stats_.ras_whitelisted;
                    break;
                  default:
                    break;  // alarm disabled under callret_pure
                }
                new_pc = target;
                break;
              }

              case Opcode::kPush:
                if (mem_->write(state_.sp - 8, 8, regs[instr.rs1]) !=
                    mem::MemResult::kOk) [[unlikely]]
                    goto bail;
                state_.sp -= 8;
                break;
              case Opcode::kPop: {
                Word value;
                if (mem_->read(state_.sp, 8, &value) !=
                    mem::MemResult::kOk) [[unlikely]]
                    goto bail;
                state_.sp += 8;
                regs[instr.rd] = value;
                break;
              }
              case Opcode::kGetsp:
                regs[instr.rd] = state_.sp;
                break;
              case Opcode::kSetsp:
                state_.sp = regs[instr.rs1];
                break;
              case Opcode::kAddsp:
                state_.sp += static_cast<Word>(instr.simm());
                break;

              default:
                // halt, syscall/iret, cli/sti, rdtsc, pio — or an
                // undecodable slot. All handled by the canonical path.
                goto bail;
            }
            pc = new_pc;
            ++done;
            kdone += kernel ? 1 : 0;
            --budget;
            continue;
        }

      bail:
        spill();
        {
            const Cycles expect = cycles_ + 1;
            const StepResult result = exec_one();
            if (result != StepResult::kOk)
                return result;
            --budget;
            if (cycles_ != expect)
                return StepResult::kOk;  // VM exit: caller re-checks world
            pc = state_.pc;
            kernel = state_.mode == Mode::kKernel;
        }
    }
    spill();
    return StepResult::kOk;
}

StopReason
Cpu::run(Cycles stop_cycles, InstrCount stop_icount)
{
    if (env_ == nullptr)
        fatal("Cpu::run: no environment bound");
    run_stop_cycles_ = stop_cycles;
    while (true) {
        if (state_.halted)
            return StopReason::kHalt;
        if (icount_ >= vmcs_.perf_stop)
            return StopReason::kPerfStop;
        if (cycles_ >= run_stop_cycles_)
            return StopReason::kCycleLimit;
        if (icount_ >= stop_icount)
            return StopReason::kInstrLimit;

        if (vmcs_.pending_irq) [[unlikely]]
            deliver_pending_irq();

        if (!vmcs_.breakpoints.empty() &&
            vmcs_.breakpoints.count(state_.pc)) [[unlikely]] {
            cycles_ += Costs::kVmTransition;
            env_->on_breakpoint(state_.pc);
        }

        StepResult result;
        if (!vmcs_.pending_irq && !vmcs_.controls.trap_indirect_branch &&
            !vmcs_.controls.wx_fetch_exit &&
            (vmcs_.breakpoints.empty() || tb_enabled_)) [[likely]] {
            // Batched hot loop. With no interrupt awaiting delivery and
            // the (cycle-free) indirect-branch trap off, nothing can
            // demand attention between instructions except a VM exit —
            // and every VM exit charges extra cycles, so "cycles
            // advanced by exactly 1" proves the instruction was pure and
            // the stop conditions are untouched. Execute up to the
            // nearest limit and let the outer loop re-check the world
            // after any exit. Armed breakpoints force run_batch out of
            // this path (it cannot stop at one mid-stream); run_tb cuts
            // blocks at breakpoints and returns here so the hook above
            // fires exactly as in single-step mode.
            InstrCount budget =
                std::min(stop_icount, vmcs_.perf_stop) - icount_;
            // The breakpoint hook and IRQ delivery above charge cycles
            // after the loop-top stop check, so cycles_ may already sit
            // past the stop here; a raw subtraction would wrap and void
            // the cycle deadline for the whole batch. Keep a one-
            // instruction floor so the hooked instruction still retires
            // (re-entering at the same pc would re-fire the hook).
            const Cycles cycle_budget =
                run_stop_cycles_ > cycles_ ? run_stop_cycles_ - cycles_ : 1;
            if (budget > cycle_budget)
                budget = cycle_budget;  // cycles grow >= 1 per instruction
            result = tb_enabled_ ? run_tb(budget) : run_batch(budget);
        } else {
            result = exec_one();
        }
        switch (result) {
          case StepResult::kOk:
            break;
          case StepResult::kHalt:
            return StopReason::kHalt;
          case StepResult::kFault:
            return StopReason::kMemFault;
          case StepResult::kBadInstr:
            return StopReason::kBadInstr;
        }
    }
}

StopReason
Cpu::step()
{
    if (env_ == nullptr)
        fatal("Cpu::step: no environment bound");
    if (state_.halted)
        return StopReason::kHalt;

    deliver_pending_irq();

    if (!vmcs_.breakpoints.empty() && vmcs_.breakpoints.count(state_.pc)) {
        cycles_ += Costs::kVmTransition;
        env_->on_breakpoint(state_.pc);
    }

    switch (exec_one()) {
      case StepResult::kOk:
        return StopReason::kInstrLimit;
      case StepResult::kHalt:
        return StopReason::kHalt;
      case StepResult::kFault:
        return StopReason::kMemFault;
      case StepResult::kBadInstr:
        return StopReason::kBadInstr;
    }
    return StopReason::kInstrLimit;
}

}  // namespace rsafe::cpu
