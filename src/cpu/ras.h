#ifndef RSAFE_CPU_RAS_H_
#define RSAFE_CPU_RAS_H_

#include <cstdint>
#include <optional>
#include <unordered_set>
#include <vector>

#include "common/types.h"

/**
 * @file
 * The hardware Return Address Stack with RnR-Safe's extensions (Section 4).
 *
 * The baseline RAS is the ordinary return-target predictor: calls push the
 * fall-through address, returns pop a prediction. RnR-Safe adds:
 *
 *  - an eviction exception: when a push would evict the oldest entry, the
 *    evicted address is surfaced so the hypervisor can log an Evict record
 *    (Section 4.5),
 *  - save/restore microcode: the whole stack can be dumped to / reloaded
 *    from a per-thread BackRAS entry on context switches (Section 4.3),
 *  - whitelists: a return whose PC is in RetWhitelist does not pop the RAS
 *    and is legal iff its target is in TarWhitelist (Section 4.4).
 *
 * Entries restored from a BackRAS are tagged so the simulator can count
 * how many mispredictions the BackRAS mechanism suppressed (Figure 8).
 */

namespace rsafe::cpu {

/** One saved RAS entry (address + restored-from-BackRAS tag). */
struct RasEntry {
    Addr addr = 0;
    bool restored = false;
};

/** A full saved copy of the RAS (one BackRAS array element). */
struct SavedRas {
    std::vector<RasEntry> entries;  ///< bottom first
};

/** Outcome of the RAS predict step at a return instruction. */
enum class RasPredict {
    kHit,             ///< predicted target matches the actual target
    kHitRestored,     ///< hit via an entry restored from the BackRAS
    kMispredict,      ///< popped prediction differs from the actual target
    kUnderflow,       ///< RAS empty at the pop
    kWhitelisted,     ///< ret PC whitelisted, target legal; RAS untouched
    kWhitelistMiss,   ///< ret PC whitelisted but target not in TarWhitelist
};

/** The hardware RAS. */
class Ras {
  public:
    /** Default hardware depth (Section 7.5 simulates a 48-entry RAS). */
    static constexpr std::size_t kDefaultDepth = 48;

    explicit Ras(std::size_t depth = kDefaultDepth);

    /** @return configured depth. */
    std::size_t depth() const { return depth_; }

    /** @return current number of valid entries. */
    std::size_t size() const { return stack_.size(); }

    /**
     * Push a return address (a call executed).
     * @return the evicted oldest entry if the stack was full.
     */
    std::optional<Addr> push(Addr addr);

    /**
     * Predict at a return instruction.
     * @param ret_pc     PC of the return instruction.
     * @param target     the actual target (from the software stack).
     * @param predicted  out: the popped prediction (0 if none was popped).
     */
    RasPredict predict(Addr ret_pc, Addr target, Addr* predicted);

    /** Enable/disable whitelist checking (ablation hook). */
    void set_whitelist_enabled(bool enabled) { whitelist_enabled_ = enabled; }

    /** Install the single-entry return whitelist (hypervisor only). */
    void set_ret_whitelist(const std::unordered_set<Addr>& pcs)
    {
        ret_whitelist_ = pcs;
    }

    /** Install the target whitelist (hypervisor only). */
    void set_tar_whitelist(const std::unordered_set<Addr>& pcs)
    {
        tar_whitelist_ = pcs;
    }

    /** Microcode: dump all entries into a BackRAS element and clear. */
    SavedRas save_and_clear();

    /** Microcode: dump all entries without clearing (checkpointing). */
    SavedRas peek() const;

    /** Microcode: reload from a BackRAS element (entries become tagged). */
    void load(const SavedRas& saved);

    /** Drop all entries (e.g., at VM reset). */
    void clear() { stack_.clear(); }

  private:
    std::size_t depth_;
    std::vector<RasEntry> stack_;  ///< bottom at index 0
    bool whitelist_enabled_ = true;
    std::unordered_set<Addr> ret_whitelist_;
    std::unordered_set<Addr> tar_whitelist_;
};

}  // namespace rsafe::cpu

#endif  // RSAFE_CPU_RAS_H_
