#include "rnr/log_channel.h"

#include "common/log.h"
#include "obs/trace.h"

namespace rsafe::rnr {

LogChannel::LogChannel(const ChannelOptions& options) : options_(options)
{
    if (options_.chunk_records == 0)
        fatal("LogChannel: chunk_records must be positive");
    if (options_.capacity_records < options_.chunk_records)
        fatal("LogChannel: capacity_records must be >= chunk_records");
    open_chunk_.reserve(options_.chunk_records);
}

void
LogChannel::push(LogRecord record)
{
    producer_icount_.store(record.icount, std::memory_order_relaxed);
    open_chunk_.push_back(std::move(record));
    if (open_chunk_.size() >= options_.chunk_records)
        publish_chunk();
}

void
LogChannel::publish_chunk()
{
    if (open_chunk_.empty())
        return;
    std::vector<LogRecord> chunk;
    chunk.reserve(options_.chunk_records);
    chunk.swap(open_chunk_);

    std::unique_lock<std::mutex> lock(mu_);
    if (closed_ || poisoned_)
        panic("LogChannel: push after close/poison");
    while (!abandoned_ &&
           queued_records_ + chunk.size() > options_.capacity_records) {
        ++stats_.producer_waits;
        obs::Tracer::instance().instant("channel.backpressure", "channel",
                                        "queued", queued_records_);
        can_publish_.wait(lock);
    }
    stats_.records_pushed += chunk.size();
    if (abandoned_) {
        // The consumer is gone; keep the producer running to completion.
        stats_.records_dropped += chunk.size();
        return;
    }
    queued_records_ += chunk.size();
    if (queued_records_ > stats_.max_queued_records)
        stats_.max_queued_records = queued_records_;
    ++stats_.chunks_published;
    queue_.push_back(std::move(chunk));
    obs::Tracer::instance().counter("channel.queued", "channel",
                                    queued_records_);
    can_pop_.notify_one();
}

void
LogChannel::flush()
{
    publish_chunk();
}

void
LogChannel::close()
{
    publish_chunk();
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    can_pop_.notify_all();
}

void
LogChannel::poison()
{
    std::lock_guard<std::mutex> lock(mu_);
    open_chunk_.clear();
    poisoned_ = true;
    can_pop_.notify_all();
}

LogChannel::PopResult
LogChannel::pop(std::vector<LogRecord>* out)
{
    std::unique_lock<std::mutex> lock(mu_);
    while (true) {
        // An abort outranks still-queued data: the recording is invalid.
        if (poisoned_)
            return PopResult::kPoisoned;
        if (!queue_.empty()) {
            *out = std::move(queue_.front());
            queue_.pop_front();
            queued_records_ -= out->size();
            obs::Tracer::instance().counter("channel.queued", "channel",
                                            queued_records_);
            can_publish_.notify_one();
            return PopResult::kData;
        }
        if (closed_)
            return PopResult::kClosed;
        ++stats_.consumer_waits;
        obs::Tracer::instance().instant("channel.starved", "channel",
                                        "queued", queued_records_);
        can_pop_.wait(lock);
    }
}

void
LogChannel::abandon()
{
    std::lock_guard<std::mutex> lock(mu_);
    abandoned_ = true;
    can_publish_.notify_all();
}

bool
LogChannel::closed() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
}

bool
LogChannel::poisoned() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return poisoned_;
}

ChannelStats
LogChannel::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
}

}  // namespace rsafe::rnr
