#include "rnr/log_record.h"

#include <sstream>

#include "common/log.h"

namespace rsafe::rnr {

namespace {

void
put_u8(std::vector<std::uint8_t>* out, std::uint8_t v)
{
    out->push_back(v);
}

void
put_u32(std::vector<std::uint8_t>* out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out->push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xff));
}

void
put_u64(std::vector<std::uint8_t>* out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out->push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xff));
}

bool
get_u8(const std::vector<std::uint8_t>& in, std::size_t* pos,
       std::uint8_t* v)
{
    if (*pos + 1 > in.size())
        return false;
    *v = in[(*pos)++];
    return true;
}

bool
get_u32(const std::vector<std::uint8_t>& in, std::size_t* pos,
        std::uint32_t* v)
{
    if (*pos + 4 > in.size())
        return false;
    std::uint32_t out = 0;
    for (int i = 0; i < 4; ++i)
        out |= static_cast<std::uint32_t>(in[*pos + i]) << (8 * i);
    *pos += 4;
    *v = out;
    return true;
}

bool
get_u64(const std::vector<std::uint8_t>& in, std::size_t* pos,
        std::uint64_t* v)
{
    if (*pos + 8 > in.size())
        return false;
    std::uint64_t out = 0;
    for (int i = 0; i < 8; ++i)
        out |= static_cast<std::uint64_t>(in[*pos + i]) << (8 * i);
    *pos += 8;
    *v = out;
    return true;
}

}  // namespace

const char*
record_type_name(RecordType type)
{
    switch (type) {
      case RecordType::kRdtsc: return "rdtsc";
      case RecordType::kIoIn: return "io-in";
      case RecordType::kMmioRead: return "mmio-read";
      case RecordType::kNicDma: return "nic-dma";
      case RecordType::kIrqInject: return "irq";
      case RecordType::kRasAlarm: return "ALARM";
      case RecordType::kRasEvict: return "evict";
      case RecordType::kHalt: return "halt";
      case RecordType::kDiskComplete: return "disk-complete";
      case RecordType::kDetectorAlarm: return "DETECTOR-ALARM";
    }
    return "<bad>";
}

std::size_t
LogRecord::serialized_size() const
{
    // type + icount, then per-type payload.
    std::size_t size = 1 + 8;
    switch (type) {
      case RecordType::kRdtsc:
        size += 8;
        break;
      case RecordType::kIoIn:
        size += 2 + 8;
        break;
      case RecordType::kMmioRead:
        size += 4 + 8;
        break;
      case RecordType::kNicDma:
        size += 8 + 4 + payload.size();
        break;
      case RecordType::kIrqInject:
        size += 1;
        break;
      case RecordType::kRasAlarm:
        size += 1 + 8 * 4 + 1 + 4;
        break;
      case RecordType::kRasEvict:
        size += 8 + 4;
        break;
      case RecordType::kDetectorAlarm:
        size += 1 + 8 * 2 + 1 + 4;
        break;
      case RecordType::kHalt:
      case RecordType::kDiskComplete:
        break;
    }
    return size;
}

void
LogRecord::serialize(std::vector<std::uint8_t>* out) const
{
    put_u8(out, static_cast<std::uint8_t>(type));
    put_u64(out, icount);
    switch (type) {
      case RecordType::kRdtsc:
        put_u64(out, value);
        break;
      case RecordType::kIoIn:
        put_u8(out, static_cast<std::uint8_t>(addr & 0xff));
        put_u8(out, static_cast<std::uint8_t>((addr >> 8) & 0xff));
        put_u64(out, value);
        break;
      case RecordType::kMmioRead:
        put_u32(out, static_cast<std::uint32_t>(addr - 0xF0000000ULL));
        put_u64(out, value);
        break;
      case RecordType::kNicDma:
        put_u64(out, addr);
        put_u32(out, static_cast<std::uint32_t>(payload.size()));
        out->insert(out->end(), payload.begin(), payload.end());
        break;
      case RecordType::kIrqInject:
        put_u8(out, static_cast<std::uint8_t>(value));
        break;
      case RecordType::kRasAlarm:
        put_u8(out, static_cast<std::uint8_t>(alarm.kind));
        put_u64(out, alarm.ret_pc);
        put_u64(out, alarm.predicted);
        put_u64(out, alarm.actual);
        put_u64(out, alarm.sp_after);
        put_u8(out, alarm.kernel_mode ? 1 : 0);
        put_u32(out, tid);
        break;
      case RecordType::kRasEvict:
        put_u64(out, addr);
        put_u32(out, tid);
        break;
      case RecordType::kDetectorAlarm:
        put_u8(out, static_cast<std::uint8_t>(value));
        put_u64(out, alarm.ret_pc);
        put_u64(out, alarm.actual);
        put_u8(out, alarm.kernel_mode ? 1 : 0);
        put_u32(out, tid);
        break;
      case RecordType::kHalt:
      case RecordType::kDiskComplete:
        break;
    }
}

Status
LogRecord::decode(const std::vector<std::uint8_t>& data, std::size_t* pos,
                  LogRecord* out)
{
    const auto truncated = [&](const char* what) {
        return Status(StatusCode::kTruncated,
                      strcat_args("record truncated at byte ", *pos,
                                  " reading ", what));
    };
    std::uint8_t type_byte;
    if (!get_u8(data, pos, &type_byte))
        return truncated("type");
    if (type_byte > static_cast<std::uint8_t>(RecordType::kDetectorAlarm)) {
        return Status(StatusCode::kMalformedRecord,
                      strcat_args("unknown record type ",
                                  static_cast<unsigned>(type_byte)));
    }
    out->type = static_cast<RecordType>(type_byte);
    if (!get_u64(data, pos, &out->icount))
        return truncated("icount");
    out->value = 0;
    out->addr = 0;
    out->tid = 0;
    out->payload.clear();

    switch (out->type) {
      case RecordType::kRdtsc:
        if (!get_u64(data, pos, &out->value))
            return truncated("rdtsc value");
        return Status();
      case RecordType::kIoIn: {
        std::uint8_t lo, hi;
        if (!get_u8(data, pos, &lo) || !get_u8(data, pos, &hi))
            return truncated("pio port");
        out->addr = lo | (static_cast<Addr>(hi) << 8);
        if (!get_u64(data, pos, &out->value))
            return truncated("pio value");
        return Status();
      }
      case RecordType::kMmioRead: {
        std::uint32_t offset;
        if (!get_u32(data, pos, &offset))
            return truncated("mmio offset");
        out->addr = 0xF0000000ULL + offset;
        if (!get_u64(data, pos, &out->value))
            return truncated("mmio value");
        return Status();
      }
      case RecordType::kNicDma: {
        std::uint32_t len;
        if (!get_u64(data, pos, &out->addr) || !get_u32(data, pos, &len))
            return truncated("dma header");
        if (*pos + len > data.size()) {
            return Status(StatusCode::kTruncated,
                          strcat_args("dma payload wants ", len,
                                      " bytes, only ", data.size() - *pos,
                                      " left"));
        }
        out->payload.assign(data.begin() + *pos, data.begin() + *pos + len);
        *pos += len;
        return Status();
      }
      case RecordType::kIrqInject: {
        std::uint8_t vector;
        if (!get_u8(data, pos, &vector))
            return truncated("irq vector");
        out->value = vector;
        return Status();
      }
      case RecordType::kRasAlarm: {
        std::uint8_t kind, kernel_mode;
        if (!get_u8(data, pos, &kind) ||
            !get_u64(data, pos, &out->alarm.ret_pc) ||
            !get_u64(data, pos, &out->alarm.predicted) ||
            !get_u64(data, pos, &out->alarm.actual) ||
            !get_u64(data, pos, &out->alarm.sp_after) ||
            !get_u8(data, pos, &kernel_mode) ||
            !get_u32(data, pos, &out->tid)) {
            return truncated("alarm fields");
        }
        if (kind > static_cast<std::uint8_t>(
                       cpu::RasAlarmKind::kWhitelistMiss)) {
            return Status(StatusCode::kMalformedRecord,
                          strcat_args("unknown alarm kind ",
                                      static_cast<unsigned>(kind)));
        }
        out->alarm.kind = static_cast<cpu::RasAlarmKind>(kind);
        out->alarm.kernel_mode = kernel_mode != 0;
        return Status();
      }
      case RecordType::kRasEvict:
        if (!get_u64(data, pos, &out->addr) ||
            !get_u32(data, pos, &out->tid)) {
            return truncated("evict fields");
        }
        return Status();
      case RecordType::kDetectorAlarm: {
        std::uint8_t id, kernel_mode;
        if (!get_u8(data, pos, &id) ||
            !get_u64(data, pos, &out->alarm.ret_pc) ||
            !get_u64(data, pos, &out->alarm.actual) ||
            !get_u8(data, pos, &kernel_mode) ||
            !get_u32(data, pos, &out->tid)) {
            return truncated("detector alarm fields");
        }
        out->value = id;
        out->alarm.kernel_mode = kernel_mode != 0;
        return Status();
      }
      case RecordType::kHalt:
      case RecordType::kDiskComplete:
        return Status();
    }
    return Status(StatusCode::kMalformedRecord, "unreachable record type");
}

bool
LogRecord::deserialize(const std::vector<std::uint8_t>& data,
                       std::size_t* pos, LogRecord* out)
{
    return decode(data, pos, out).ok();
}

std::string
LogRecord::to_string() const
{
    std::ostringstream os;
    os << "[" << icount << "] " << record_type_name(type);
    switch (type) {
      case RecordType::kRdtsc:
        os << " value=" << value;
        break;
      case RecordType::kIoIn:
        os << " port=" << addr << " value=" << value;
        break;
      case RecordType::kMmioRead:
        os << " addr=0x" << std::hex << addr << std::dec
           << " value=" << value;
        break;
      case RecordType::kNicDma:
        os << " buf=0x" << std::hex << addr << std::dec
           << " bytes=" << payload.size();
        break;
      case RecordType::kIrqInject:
        os << " vector=" << value;
        break;
      case RecordType::kRasAlarm:
        os << " kind=" << static_cast<int>(alarm.kind) << " ret_pc=0x"
           << std::hex << alarm.ret_pc << " actual=0x" << alarm.actual
           << std::dec << " tid=" << tid
           << (alarm.kernel_mode ? " (kernel)" : " (user)");
        break;
      case RecordType::kRasEvict:
        os << " evicted=0x" << std::hex << addr << std::dec
           << " tid=" << tid;
        break;
      case RecordType::kDetectorAlarm:
        os << " detector=" << value << " site=0x" << std::hex
           << alarm.ret_pc << " target=0x" << alarm.actual << std::dec
           << " tid=" << tid
           << (alarm.kernel_mode ? " (kernel)" : " (user)");
        break;
      case RecordType::kHalt:
      case RecordType::kDiskComplete:
        break;
    }
    return os.str();
}

}  // namespace rsafe::rnr
