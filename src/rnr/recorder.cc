#include "rnr/recorder.h"

#include "core/detector.h"
#include "obs/trace.h"

namespace rsafe::rnr {

using cpu::Costs;

hv::HvOptions
Recorder::make_hv_options(const RecorderOptions& options)
{
    hv::HvOptions hv_options;
    hv_options.mediate_io = true;   // recording requires mediated I/O
    hv_options.trap_rdtsc = true;   // rdtsc is a logged input
    hv_options.manage_backras = options.manage_backras;
    hv_options.whitelists = options.whitelists;
    hv_options.ras_alarms = options.ras_alarms;
    hv_options.evict_exits = options.evict_exits;
    return hv_options;
}

Recorder::Recorder(hv::Vm* vm, const RecorderOptions& options)
    : hv::Hypervisor(vm, make_hv_options(options)), rec_options_(options)
{
}

Cycles
Recorder::charge_log_write(LogRecord record)
{
    const Cycles cost =
        Costs::kLogRecord +
        Costs::kLogPer8Bytes * (record.serialized_size() / 8);
    vm_->cpu().add_cycles(cost);
    if (stream_ != nullptr)
        stream_->push(record);
    log_.append(std::move(record));
    return cost;
}

void
Recorder::hook_rdtsc(Word value)
{
    LogRecord record;
    record.type = RecordType::kRdtsc;
    record.icount = vm_->cpu().icount();
    record.value = value;
    // NoRec does not trap rdtsc at all, so the whole VM transition plus
    // the log write is recording overhead.
    overhead_.rdtsc += Costs::kVmTransition + charge_log_write(record);
}

void
Recorder::hook_io_in(std::uint16_t port, Word value)
{
    LogRecord record;
    record.type = RecordType::kIoIn;
    record.icount = vm_->cpu().icount();
    record.addr = port;
    record.value = value;
    // The trap itself exists under plain mediated I/O too; only the log
    // write is recording overhead.
    overhead_.pio_mmio += charge_log_write(record);
}

void
Recorder::hook_mmio_read(Addr addr, Word value)
{
    LogRecord record;
    record.type = RecordType::kMmioRead;
    record.icount = vm_->cpu().icount();
    record.addr = addr;
    record.value = value;
    overhead_.pio_mmio += charge_log_write(record);
}

void
Recorder::hook_nic_dma(Addr addr, const std::vector<std::uint8_t>& data)
{
    LogRecord record;
    record.type = RecordType::kNicDma;
    record.icount = vm_->cpu().icount();
    record.addr = addr;
    record.payload = data;
    // Packet contents dominate the log (Section 8.1).
    overhead_.network += charge_log_write(record);
}

void
Recorder::hook_irq_inject(std::uint8_t vector)
{
    LogRecord record;
    record.type = RecordType::kIrqInject;
    record.icount = vm_->cpu().icount();
    record.value = vector;
    overhead_.interrupt += charge_log_write(record);
}

void
Recorder::hook_disk_complete()
{
    LogRecord record;
    record.type = RecordType::kDiskComplete;
    record.icount = vm_->cpu().icount();
    overhead_.interrupt += charge_log_write(record);
}

void
Recorder::hook_ras_alarm(const cpu::RasAlarm& alarm)
{
    LogRecord record;
    record.type = RecordType::kRasAlarm;
    record.icount = vm_->cpu().icount();
    record.tid = have_current_tid() ? current_tid() : 0;
    record.alarm.kind = alarm.kind;
    record.alarm.ret_pc = alarm.ret_pc;
    record.alarm.predicted = alarm.predicted;
    record.alarm.actual = alarm.actual;
    record.alarm.sp_after = alarm.sp_after;
    record.alarm.kernel_mode = alarm.mode == cpu::Mode::kKernel;
    obs::Tracer::instance().instant("record.ras_alarm", "record", "icount",
                                    record.icount);
    overhead_.ras += Costs::kVmTransition + charge_log_write(record);
    if (rec_options_.stop_on_alarm) {
        alarm_stop_ = true;
        // Freeze the VM before the next instruction retires: the gadget
        // the hijacked return targets must never execute. (Clearing
        // vmcs().perf_stop resumes the machine if the alarm proves
        // false.)
        vm_->cpu().vmcs().perf_stop = 0;
    }
}

void
Recorder::log_detector_alarm(const core::Detector& detector, Addr site,
                             Addr target)
{
    LogRecord record;
    record.type = RecordType::kDetectorAlarm;
    record.icount = vm_->cpu().icount();
    record.tid = have_current_tid() ? current_tid() : 0;
    record.value = static_cast<Word>(detector.id());
    record.alarm.ret_pc = site;
    record.alarm.actual = target;
    record.alarm.kernel_mode =
        vm_->cpu().state().mode == cpu::Mode::kKernel;
    obs::Tracer::instance().instant("record.detector_alarm",
                                    detector.name(), "icount",
                                    record.icount);
    overhead_.detectors += Costs::kVmTransition + charge_log_write(record);
    if (rec_options_.stop_on_alarm) {
        alarm_stop_ = true;
        vm_->cpu().vmcs().perf_stop = 0;
    }
}

void
Recorder::on_indirect_branch(Addr pc, Addr target, bool is_call)
{
    if (detectors_ == nullptr)
        return;
    for (const auto& detector : detectors_->all()) {
        if (detector->trigger_indirect(pc, target, is_call))
            log_detector_alarm(*detector, pc, target);
    }
}

void
Recorder::on_wx_fetch(Addr pc)
{
    if (detectors_ == nullptr)
        return;
    for (const auto& detector : detectors_->all()) {
        if (detector->trigger_wx_fetch(pc))
            log_detector_alarm(*detector, pc, pc);
    }
}

void
Recorder::hook_ras_evict(Addr evicted)
{
    LogRecord record;
    record.type = RecordType::kRasEvict;
    record.icount = vm_->cpu().icount();
    record.addr = evicted;
    record.tid = have_current_tid() ? current_tid() : 0;
    obs::Tracer::instance().instant("record.ras_evict", "record", "icount",
                                    record.icount);
    overhead_.ras += Costs::kVmTransition + charge_log_write(record);
}

void
Recorder::hook_halt()
{
    LogRecord record;
    record.type = RecordType::kHalt;
    record.icount = vm_->cpu().icount();
    obs::Tracer::instance().instant("record.halt", "record", "icount",
                                    record.icount);
    charge_log_write(record);
}

void
Recorder::hook_context_switch(ThreadId tid)
{
    (void)tid;
    // The context-switch trap and RAS microcode exist only because of the
    // RnR-Safe RAS extensions: NoRec pays none of this.
    overhead_.ras += Costs::kVmTransition + Costs::kRasSave +
                     Costs::kRasRestore;
}

}  // namespace rsafe::rnr
