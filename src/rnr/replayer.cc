#include "rnr/replayer.h"

#include "common/log.h"
#include "dev/device_hub.h"
#include "obs/trace.h"

namespace rsafe::rnr {

using cpu::Costs;

Replayer::Replayer(hv::Vm* vm, LogSource* source, std::size_t start_pos,
                   const ReplayOptions& options)
    : hv::VmEnvBase(vm, options.manage_backras, options.whitelists),
      source_(source),
      cursor_(start_pos),
      options_(options),
      skid_rng_(options.seed)
{
    if (source_ == nullptr)
        fatal("Replayer: null log source");
    auto& cpu = vm_->cpu();
    cpu.vmcs().controls.exit_on_io = true;
    cpu.vmcs().controls.exit_on_rdtsc = true;
    // Safe platform: no alarms, no eviction exits (Section 4.6.1).
    cpu.vmcs().controls.ras_alarm_enabled = false;
    cpu.vmcs().controls.ras_evict_exit = false;
    cpu.vmcs().controls.trap_kernel_call_ret = options.trap_kernel_call_ret;
    cpu.vmcs().controls.trap_user_call_ret = options.trap_user_call_ret;
}

Replayer::Replayer(hv::Vm* vm, std::unique_ptr<InputLogSource> owned,
                   std::size_t start_pos, const ReplayOptions& options)
    : Replayer(vm, owned.get(), start_pos, options)
{
    owned_source_ = std::move(owned);
}

Replayer::Replayer(hv::Vm* vm, const InputLog* log, std::size_t start_pos,
                   const ReplayOptions& options)
    : Replayer(vm, std::make_unique<InputLogSource>(log), start_pos, options)
{
}

bool
Replayer::is_positional(RecordType type) const
{
    switch (type) {
      case RecordType::kIrqInject:
      case RecordType::kRasAlarm:
      case RecordType::kRasEvict:
      case RecordType::kHalt:
      case RecordType::kDiskComplete:
      case RecordType::kDetectorAlarm:
        return true;
      default:
        return false;
    }
}

std::size_t
Replayer::next_positional()
{
    // Blocks (streaming source) until a positional record is visible or
    // the producer finished: the replayer cannot arm its perf counter
    // without knowing the next injection point, so the pipeline overlaps
    // at positional-segment granularity.
    for (std::size_t i = cursor_; source_->await(i); ++i)
        if (is_positional(source_->at(i).type))
            return i;
    return kNoMore;
}

void
Replayer::sample_lag()
{
    const InstrCount produced = source_->producer_icount();
    const InstrCount here = vm_->cpu().icount();
    const InstrCount lag = produced > here ? produced - here : 0;
    lag_.record(here, lag);
    if (health_probe_ != nullptr)
        health_probe_->replay_lag.store(lag, std::memory_order_relaxed);
    // Decimated counter track: one trace event per 16 samples keeps the
    // hot path cheap while still drawing the lag curve in the viewer.
    if ((lag_.samples & 0xf) == 1)
        obs::Tracer::instance().counter("replay_lag", "replay", lag);
}

void
Replayer::divergence(const std::string& detail)
{
    panic(strcat_args("replay divergence at icount ", vm_->cpu().icount(),
                      " pc=0x", std::hex, vm_->cpu().state().pc, std::dec,
                      " log_pos=", cursor_, ": ", detail));
}

const LogRecord&
Replayer::expect_sync(RecordType type)
{
    if (!source_->await(cursor_))
        divergence(strcat_args("log exhausted, expected ",
                               record_type_name(type)));
    const LogRecord& record = source_->at(cursor_);
    if (record.type != type)
        divergence(strcat_args("expected ", record_type_name(type), ", log has ",
                               record.to_string()));
    if (record.icount != vm_->cpu().icount())
        divergence(strcat_args("icount mismatch for ", record.to_string()));
    ++cursor_;
    return record;
}

Word
Replayer::on_rdtsc()
{
    overhead_.rdtsc += Costs::kVmTransition;
    return expect_sync(RecordType::kRdtsc).value;
}

Word
Replayer::on_io_in(std::uint16_t port)
{
    overhead_.pio_mmio += Costs::kVmTransition;
    const LogRecord& record = expect_sync(RecordType::kIoIn);
    if (record.addr != port)
        divergence("pio port mismatch");
    return record.value;
}

void
Replayer::on_io_out(std::uint16_t port, Word value)
{
    overhead_.pio_mmio += Costs::kVmTransition;
    // Drive the replica DMA controller: its data path is deterministic
    // (replica disk + replayed guest memory), so only timing comes from
    // the log.
    vm_->hub().io_write(port, value, vm_->cpu().cycles());
}

Word
Replayer::on_mmio_read(Addr addr)
{
    overhead_.pio_mmio += Costs::kVmTransition;
    const LogRecord& record = expect_sync(RecordType::kMmioRead);
    if (record.addr != addr)
        divergence("mmio address mismatch");
    return record.value;
}

void
Replayer::on_mmio_write(Addr addr, Word value)
{
    (void)value;
    overhead_.pio_mmio += Costs::kVmTransition;
    // NIC receive: the packet bytes come from the log, not from the
    // replica NIC (whose traffic generator is recording-side state).
    if (addr == dev::kMmioBase + dev::kNicRxBuf) {
        if (source_->await(cursor_)) {
            const LogRecord& record = source_->at(cursor_);
            if (record.type == RecordType::kNicDma &&
                record.icount == vm_->cpu().icount()) {
                vm_->mem().write_block(record.addr, record.payload.data(),
                                       record.payload.size());
                overhead_.network += Costs::kVmTransition;
                ++cursor_;
            }
        }
    }
    // Other MMIO writes (TX, RX-length side effects) have no replayed
    // side effects beyond the guest-visible values already injected.
}

void
Replayer::on_ras_alarm(const cpu::RasAlarm& alarm)
{
    (void)alarm;
    panic("replay platform raised a RAS alarm (alarms must be disabled)");
}

void
Replayer::on_ras_evict(Addr evicted)
{
    (void)evicted;
    panic("replay platform took an eviction exit (must be disabled)");
}

void
Replayer::on_call_ret(const cpu::CallRetEvent& event)
{
    (void)event;  // Overridden by the alarm replayer.
}

bool
Replayer::hook_positional_record(const LogRecord& record)
{
    (void)record;
    return true;
}

void
Replayer::hook_exit_boundary()
{
}

void
Replayer::approach(InstrCount target)
{
    auto& cpu = vm_->cpu();
    if (cpu.icount() >= target)
        return;
    // Arm the perf counter short of the target (the counter has skid),
    // then single-step the rest (Section 7.3).
    const std::uint64_t skid = skid_rng_.next_below(options_.max_skid + 1);
    InstrCount arm = target;
    if (target - cpu.icount() > skid)
        arm = target - skid;
    cpu.vmcs().perf_stop = arm;
    const auto reason =
        cpu.run(~static_cast<Cycles>(0), ~static_cast<InstrCount>(0));
    cpu.vmcs().perf_stop = ~static_cast<InstrCount>(0);
    if (reason == cpu::StopReason::kMemFault ||
        reason == cpu::StopReason::kBadInstr) {
        divergence("guest fault while approaching injection point: " +
                   cpu.fault_reason());
    }
    if (reason != cpu::StopReason::kPerfStop)
        divergence("guest halted before reaching the injection point");
    // The perf-counter VMExit itself.
    cpu.add_cycles(Costs::kVmTransition);
    overhead_.interrupt += Costs::kVmTransition;
    while (cpu.icount() < target) {
        cpu.add_cycles(Costs::kSingleStep);
        overhead_.interrupt += Costs::kSingleStep;
        ++single_steps_;
        const auto step_reason = cpu.step();
        if (step_reason != cpu::StopReason::kInstrLimit)
            divergence("guest stopped while single-stepping");
    }
}

void
Replayer::handle_irq(const LogRecord& record)
{
    auto& cpu = vm_->cpu();
    cpu.add_cycles(Costs::kVmTransition);
    overhead_.interrupt += Costs::kVmTransition;
    if (cpu.vmcs().pending_irq)
        divergence("irq injection while another is pending");
    cpu.vmcs().pending_irq = static_cast<std::uint8_t>(record.value);
    ++stats_.irq_injections;
}

void
Replayer::handle_disk_complete()
{
    // The replica controller completes now; read DMA pulls replica-disk
    // data into guest memory — bit-identical to the recorded DMA, since
    // the replica disk and the replayed guest memory are deterministic.
    auto completion = vm_->hub().force_disk_completion();
    if (!completion)
        divergence("disk completion with no in-flight replica transfer");
    if (completion->is_read) {
        vm_->mem().write_block(completion->guest_addr,
                               completion->data.data(),
                               completion->data.size());
    }
}

ReplayOutcome
Replayer::run()
{
    auto& cpu = vm_->cpu();
    while (true) {
        if (stop_requested_.load(std::memory_order_relaxed))
            return ReplayOutcome::kStopRequested;
        const std::size_t pos = next_positional();
        if (pos == kNoMore) {
            if (source_->aborted()) {
                // The recorder died mid-stream (poisoned channel): the
                // recording is invalid, stop where we are.
                return ReplayOutcome::kLogAborted;
            }
            // No positional records left; consume any trailing
            // synchronous records (a recording stopped by an instruction
            // budget has no halt marker).
            if (cursor_ < source_->visible()) {
                const InstrCount last =
                    source_->at(source_->visible() - 1).icount;
                cpu.run(~static_cast<Cycles>(0), last + 1);
            }
            sample_lag();
            return ReplayOutcome::kLogExhausted;
        }
        const LogRecord& record = source_->at(pos);

        if (record.type == RecordType::kHalt) {
            const auto reason = cpu.run(~static_cast<Cycles>(0),
                                        record.icount + 1);
            if (reason == cpu::StopReason::kMemFault ||
                reason == cpu::StopReason::kBadInstr) {
                return ReplayOutcome::kGuestFault;
            }
            if (reason != cpu::StopReason::kHalt)
                divergence("guest did not halt at the halt marker");
            if (cursor_ != pos)
                divergence("unconsumed sync records at halt");
            cursor_ = pos + 1;
            sample_lag();
            return ReplayOutcome::kFinished;
        }

        approach(record.icount);
        if (cursor_ != pos)
            divergence(strcat_args("unconsumed sync records before ",
                                   record.to_string()));
        ++cursor_;

        switch (record.type) {
          case RecordType::kIrqInject:
            handle_irq(record);
            break;
          case RecordType::kDiskComplete:
            handle_disk_complete();
            break;
          case RecordType::kRasAlarm:
          case RecordType::kRasEvict:
          case RecordType::kDetectorAlarm:
            if (!hook_positional_record(record))
                return ReplayOutcome::kStopRequested;
            break;
          default:
            divergence("unexpected positional record");
        }
        sample_lag();
        hook_exit_boundary();
    }
}

}  // namespace rsafe::rnr
