#ifndef RSAFE_RNR_LOG_RECORD_H_
#define RSAFE_RNR_LOG_RECORD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "cpu/cpu.h"

/**
 * @file
 * Input-log record types.
 *
 * The log captures every non-deterministic input of the recorded VM
 * (Section 7.3) plus the RnR-Safe markers:
 *
 *  - synchronous injections, consumed when the replayed guest traps at the
 *    same instruction: rdtsc values, pio read values, MMIO read values,
 *    and NIC DMA payloads ("data copied by virtual devices"),
 *  - asynchronous injections, positioned by instruction count: virtual
 *    interrupt vectors,
 *  - RnR-Safe markers: ROP alarm records, RAS Evict records, and the
 *    final halt marker.
 *
 * Every record carries the instruction count at which it was produced;
 * for synchronous records this doubles as a divergence check during
 * replay.
 */

namespace rsafe::rnr {

/** Discriminator for LogRecord. */
enum class RecordType : std::uint8_t {
    kRdtsc = 0,     ///< value = timestamp
    kIoIn = 1,      ///< addr = port, value = data
    kMmioRead = 2,  ///< addr = register address, value = data
    kNicDma = 3,    ///< addr = guest buffer, payload = packet bytes
    kIrqInject = 4, ///< value = vector
    kRasAlarm = 5,  ///< alarm fields + tid
    kRasEvict = 6,  ///< addr = evicted return address, tid
    kHalt = 7,      ///< end of execution
    kDiskComplete = 8,  ///< DMA completion applied (frees the controller)
    /**
     * A pluggable detector's hardware trigger fired: value = detector id
     * (core::DetectorId), alarm.ret_pc = the triggering site,
     * alarm.actual = the observed transfer/fetch target, tid. Positional,
     * like kRasAlarm: the AR stops here and asks the detector's precise
     * classifier for the verdict.
     */
    kDetectorAlarm = 9,
};

/** @return a short name for @p type (diagnostics). */
const char* record_type_name(RecordType type);

/** Alarm details carried by kRasAlarm records. */
struct AlarmInfo {
    cpu::RasAlarmKind kind = cpu::RasAlarmKind::kMispredict;
    Addr ret_pc = 0;
    Addr predicted = 0;
    Addr actual = 0;
    Addr sp_after = 0;
    bool kernel_mode = true;
};

/** One input-log record. */
struct LogRecord {
    RecordType type = RecordType::kHalt;
    InstrCount icount = 0;
    Word value = 0;
    Addr addr = 0;
    ThreadId tid = 0;
    AlarmInfo alarm;
    std::vector<std::uint8_t> payload;

    /** @return the on-disk size of this record in bytes. */
    std::size_t serialized_size() const;

    /** Append the binary encoding of this record to @p out. */
    void serialize(std::vector<std::uint8_t>* out) const;

    /**
     * Decode one record from @p data at offset @p pos (advanced past the
     * record). On malformed input the status says which field of which
     * record type was truncated or out of range — forensic detail the
     * wire-level LoadReport carries up to the framework.
     */
    static Status decode(const std::vector<std::uint8_t>& data,
                         std::size_t* pos, LogRecord* out);

    /** Boolean convenience wrapper around decode(). */
    static bool deserialize(const std::vector<std::uint8_t>& data,
                            std::size_t* pos, LogRecord* out);

    /** One-line human-readable rendering (diagnostics, forensics). */
    std::string to_string() const;
};

}  // namespace rsafe::rnr

#endif  // RSAFE_RNR_LOG_RECORD_H_
