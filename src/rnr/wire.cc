#include "rnr/wire.h"

#include <array>

#include "common/log.h"

namespace rsafe::rnr::wire {

namespace {

/** Castagnoli polynomial, bit-reflected. */
constexpr std::uint32_t kCrc32cPoly = 0x82f63b78u;

const std::array<std::uint32_t, 256>&
crc32c_table()
{
    static const std::array<std::uint32_t, 256> table = [] {
        std::array<std::uint32_t, 256> t{};
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t crc = i;
            for (int bit = 0; bit < 8; ++bit)
                crc = (crc >> 1) ^ ((crc & 1) ? kCrc32cPoly : 0);
            t[i] = crc;
        }
        return t;
    }();
    return table;
}

void
put_u16(std::vector<std::uint8_t>* out, std::uint16_t v)
{
    out->push_back(static_cast<std::uint8_t>(v & 0xff));
    out->push_back(static_cast<std::uint8_t>((v >> 8) & 0xff));
}

void
put_u32(std::vector<std::uint8_t>* out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out->push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xff));
}

void
put_u64(std::vector<std::uint8_t>* out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out->push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xff));
}

std::uint16_t
read_u16(const std::uint8_t* p)
{
    return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

std::uint32_t
read_u32(const std::uint8_t* p)
{
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
    return v;
}

std::uint64_t
read_u64(const std::uint8_t* p)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    return v;
}

/** Raw (no init/final XOR) CRC update, for incremental use. */
std::uint32_t
crc32c_update(std::uint32_t crc, const std::uint8_t* data, std::size_t len)
{
    const auto& table = crc32c_table();
    for (std::size_t i = 0; i < len; ++i)
        crc = table[(crc ^ data[i]) & 0xff] ^ (crc >> 8);
    return crc;
}

/** CRC32C of (seq ++ length ++ payload), the per-frame checksum. */
std::uint32_t
frame_crc(std::uint32_t seq, std::uint32_t length,
          const std::uint8_t* payload)
{
    std::uint8_t prefix[8];
    for (int i = 0; i < 4; ++i)
        prefix[i] = static_cast<std::uint8_t>((seq >> (8 * i)) & 0xff);
    for (int i = 0; i < 4; ++i)
        prefix[4 + i] = static_cast<std::uint8_t>((length >> (8 * i)) & 0xff);
    std::uint32_t crc = 0xffffffffu;
    crc = crc32c_update(crc, prefix, sizeof(prefix));
    crc = crc32c_update(crc, payload, length);
    return crc ^ 0xffffffffu;
}

}  // namespace

std::uint32_t
crc32c(const std::uint8_t* data, std::size_t len)
{
    return crc32c_update(0xffffffffu, data, len) ^ 0xffffffffu;
}

std::uint32_t
crc32c(const std::vector<std::uint8_t>& data)
{
    return crc32c(data.data(), data.size());
}

std::uint64_t
fnv1a64(const std::uint8_t* data, std::size_t len, std::uint64_t seed)
{
    std::uint64_t hash = seed;
    for (std::size_t i = 0; i < len; ++i) {
        hash ^= data[i];
        hash *= 0x100000001b3ULL;
    }
    return hash;
}

std::uint64_t
fnv1a64_u64(std::uint64_t value, std::uint64_t seed)
{
    std::uint8_t bytes[8];
    for (int i = 0; i < 8; ++i)
        bytes[i] = static_cast<std::uint8_t>((value >> (8 * i)) & 0xff);
    return fnv1a64(bytes, sizeof(bytes), seed);
}

void
encode_header(const Header& header, std::vector<std::uint8_t>* out)
{
    const std::size_t base = out->size();
    put_u64(out, header.magic);
    put_u16(out, header.version);
    put_u16(out, static_cast<std::uint16_t>(header.kind));
    put_u32(out, header.flags);
    put_u64(out, header.frame_count);
    put_u32(out, 0);  // reserved
    put_u32(out, crc32c(out->data() + base, kHeaderSize - 4));
}

Status
decode_header(const std::vector<std::uint8_t>& bytes, Header* out)
{
    if (bytes.size() < kHeaderSize) {
        return Status(StatusCode::kTruncated,
                      strcat_args("image is ", bytes.size(),
                                  " bytes, wire header needs ", kHeaderSize));
    }
    const std::uint8_t* p = bytes.data();
    out->magic = read_u64(p);
    if (out->magic != kMagic) {
        return Status(StatusCode::kBadMagic,
                      strcat_args("bad magic 0x", std::hex, out->magic,
                                  ", expected 0x", kMagic, std::dec));
    }
    out->version = read_u16(p + 8);
    if (out->version != kVersion) {
        return Status(StatusCode::kBadVersion,
                      strcat_args("image is wire version ", out->version,
                                  "; this build reads version ", kVersion));
    }
    const std::uint32_t stored_crc = read_u32(p + kHeaderSize - 4);
    const std::uint32_t actual_crc = crc32c(p, kHeaderSize - 4);
    if (stored_crc != actual_crc) {
        return Status(StatusCode::kHeaderCorrupt,
                      strcat_args("header CRC 0x", std::hex, stored_crc,
                                  ", computed 0x", actual_crc, std::dec));
    }
    out->kind = static_cast<PayloadKind>(read_u16(p + 10));
    out->flags = read_u32(p + 12);
    out->frame_count = read_u64(p + 16);
    return Status();
}

void
append_frame(std::uint32_t seq, const std::uint8_t* payload, std::size_t len,
             std::vector<std::uint8_t>* out)
{
    if (len > kMaxFrameLength)
        panic(strcat_args("wire frame payload of ", len, " bytes exceeds ",
                          kMaxFrameLength));
    const auto length = static_cast<std::uint32_t>(len);
    put_u32(out, seq);
    put_u32(out, length);
    put_u32(out, frame_crc(seq, length, payload));
    out->insert(out->end(), payload, payload + len);
}

Status
set_header_version(std::vector<std::uint8_t>* image, std::uint16_t version)
{
    if (image->size() < kHeaderSize)
        return Status(StatusCode::kInvalidArgument,
                      "image too short to carry a wire header");
    (*image)[8] = static_cast<std::uint8_t>(version & 0xff);
    (*image)[9] = static_cast<std::uint8_t>((version >> 8) & 0xff);
    const std::uint32_t crc = crc32c(image->data(), kHeaderSize - 4);
    for (int i = 0; i < 4; ++i)
        (*image)[kHeaderSize - 4 + i] =
            static_cast<std::uint8_t>((crc >> (8 * i)) & 0xff);
    return Status();
}

std::string
LoadReport::to_string() const
{
    if (intact()) {
        return strcat_args("intact wire v", version, " image: ",
                           frames_recovered, " records, ", bytes_total,
                           " bytes");
    }
    return strcat_args(status.to_string(), " [v", version, ", recovered ",
                       frames_recovered, "/", frames_declared,
                       " records, stopped at byte ", corrupt_offset, "/",
                       bytes_total, "]");
}

LoadReport
read_frames(const std::vector<std::uint8_t>& bytes, PayloadKind expected_kind,
            const FrameSink& sink)
{
    LoadReport report;
    report.bytes_total = bytes.size();

    Header header;
    report.status = decode_header(bytes, &header);
    if (!report.status.ok()) {
        // The version is only meaningful once the magic matched.
        if (report.status.code() == StatusCode::kBadVersion ||
            report.status.code() == StatusCode::kHeaderCorrupt) {
            report.version = header.version;
        }
        return report;
    }
    report.version = header.version;
    report.frames_declared = header.frame_count;
    if (header.kind != expected_kind) {
        report.status = Status(
            StatusCode::kMalformedRecord,
            strcat_args("payload kind ",
                        static_cast<unsigned>(header.kind), ", expected ",
                        static_cast<unsigned>(expected_kind)));
        return report;
    }

    std::size_t pos = kHeaderSize;
    for (std::uint64_t i = 0; i < header.frame_count; ++i) {
        report.corrupt_offset = pos;
        if (pos + kFrameHeaderSize > bytes.size()) {
            report.status = Status(
                StatusCode::kTruncated,
                strcat_args("record #", i, ": frame header truncated at byte ",
                            pos, " of ", bytes.size()));
            return report;
        }
        const std::uint8_t* p = bytes.data() + pos;
        const std::uint32_t seq = read_u32(p);
        const std::uint32_t length = read_u32(p + 4);
        const std::uint32_t stored_crc = read_u32(p + 8);
        if (length > kMaxFrameLength) {
            report.status = Status(
                StatusCode::kMalformedRecord,
                strcat_args("record #", i, ": implausible frame length ",
                            length));
            return report;
        }
        if (pos + kFrameHeaderSize + length > bytes.size()) {
            report.status = Status(
                StatusCode::kTruncated,
                strcat_args("record #", i, ": frame wants ", length,
                            " payload bytes, only ",
                            bytes.size() - pos - kFrameHeaderSize, " left"));
            return report;
        }
        const std::uint8_t* payload = p + kFrameHeaderSize;
        const std::uint32_t actual_crc = frame_crc(seq, length, payload);
        if (stored_crc != actual_crc) {
            report.status = Status(
                StatusCode::kChecksumMismatch,
                strcat_args("record #", i, ": frame CRC 0x", std::hex,
                            stored_crc, ", computed 0x", actual_crc,
                            std::dec));
            return report;
        }
        // The frame is internally consistent; now check its ordering.
        if (seq != i) {
            const auto code = seq < i ? StatusCode::kDuplicateRecord
                                      : StatusCode::kReorderedRecord;
            report.status = Status(
                code, strcat_args("record #", i,
                                  ": frame carries sequence number ", seq));
            return report;
        }
        const Status sink_status =
            sink(seq, pos + kFrameHeaderSize, length);
        if (!sink_status.ok()) {
            report.status = sink_status;
            return report;
        }
        pos += kFrameHeaderSize + length;
        ++report.frames_recovered;
    }
    report.corrupt_offset = pos;
    if (pos != bytes.size()) {
        report.status = Status(
            StatusCode::kTrailingBytes,
            strcat_args(bytes.size() - pos,
                        " bytes of trailing garbage after the last record"));
        return report;
    }
    return report;
}

Status
index_frames(const std::vector<std::uint8_t>& bytes,
             std::vector<FrameSpan>* out)
{
    out->clear();
    Header header;
    const Status header_status = decode_header(bytes, &header);
    if (!header_status.ok())
        return header_status;
    const LoadReport report = read_frames(
        bytes, header.kind,
        [&](std::uint64_t, std::size_t offset, std::size_t length) {
            out->push_back(FrameSpan{offset - kFrameHeaderSize,
                                     kFrameHeaderSize + length});
            return Status();
        });
    return report.status;
}

}  // namespace rsafe::rnr::wire
