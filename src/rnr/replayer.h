#ifndef RSAFE_RNR_REPLAYER_H_
#define RSAFE_RNR_REPLAYER_H_

#include <atomic>
#include <memory>
#include <vector>

#include "common/random.h"
#include "hv/hypervisor.h"
#include "obs/health_probe.h"
#include "rnr/log_io.h"
#include "rnr/log_source.h"

/**
 * @file
 * The deterministic replayer (the right side of Figure 1).
 *
 * A Replayer drives a fresh (or checkpoint-restored) VM through the input
 * log:
 *
 *  - synchronous events (rdtsc, pio reads, MMIO reads, NIC DMA payloads)
 *    are injected when the guest traps at the matching instruction —
 *    "with similar configuration of the controls on the replaying system,
 *    these events are deterministically reproduced" (Section 7.3);
 *  - asynchronous events (interrupt injections) will not re-trap at the
 *    same instruction by themselves; the replayer arms a performance
 *    counter that stops close to the recorded instruction count and then
 *    single-steps to the exact injection point, paying ~1000 cycles per
 *    step (Section 7.3) — the source of the interrupt-dominated replay
 *    overhead of Figure 7(b);
 *  - RnR-Safe markers (alarms, evict records) are positional: the
 *    replayer stops at their instruction count and hands them to hooks
 *    that the checkpointing and alarm replayers override.
 *
 * The replayed VM is a "safe platform": its hardware raises no ROP alarms
 * and takes no eviction exits, but it still dumps the RAS at context
 * switches so checkpoints can capture the full BackRAS (Section 4.6.1).
 */

namespace rsafe::rnr {

/** Replay configuration. */
struct ReplayOptions {
    /** Maintain BackRAS at context switches (needed for checkpoints). */
    bool manage_backras = true;
    /** Honor the Ret/Tar whitelists. */
    bool whitelists = true;
    /** Trap kernel call/ret (alarm replayer analysis mode). */
    bool trap_kernel_call_ret = false;
    /** Also trap user call/ret (deep analysis of user-mode alarms). */
    bool trap_user_call_ret = false;
    /** Seed of the perf-counter skid model. */
    std::uint64_t seed = 0x5eed;
    /** Max undershoot (instructions) of the armed perf counter. */
    std::uint32_t max_skid = 32;
};

/** Why a replay run ended. */
enum class ReplayOutcome {
    kFinished,      ///< reached the halt marker; guest halted
    kLogExhausted,  ///< ran out of log records (no halt marker)
    kStopRequested, ///< a hook asked to stop (e.g., alarm under analysis)
    kGuestFault,    ///< replayed guest faulted
    kLogAborted,    ///< the producer poisoned the stream (recorder died)
};

/**
 * How far the replayer trails the recorder, in guest instructions.
 * Sampled at every positional-record boundary against the producer's
 * newest emitted icount; in the streaming pipeline this bounds detection
 * latency (the paper's on-the-fly property). Against a finished log the
 * lag is simply the distance to the end of the recording.
 */
struct ReplayLag {
    /** One retained lag observation. */
    struct Sample {
        InstrCount icount = 0;  ///< replayer's icount when sampled
        InstrCount lag = 0;     ///< instructions behind the producer
    };

    /** Ring bound: the series keeps the newest kRingCapacity samples. */
    static constexpr std::size_t kRingCapacity = 256;

    InstrCount max_lag = 0;
    std::uint64_t sum_lag = 0;
    std::uint64_t samples = 0;

    double mean() const
    {
        if (samples == 0)
            return 0.0;
        return static_cast<double>(sum_lag) / static_cast<double>(samples);
    }

    /** Fold one observation into max/mean and the bounded ring. */
    void record(InstrCount icount, InstrCount lag)
    {
        if (lag > max_lag)
            max_lag = lag;
        sum_lag += lag;
        ++samples;
        if (ring_.size() < kRingCapacity) {
            ring_.push_back(Sample{icount, lag});
        } else {
            ring_[ring_next_] = Sample{icount, lag};
            ring_next_ = (ring_next_ + 1) % kRingCapacity;
            ring_wrapped_ = true;
        }
    }

    /** @return the retained samples, oldest first. */
    std::vector<Sample> series() const
    {
        if (!ring_wrapped_)
            return ring_;
        std::vector<Sample> out;
        out.reserve(ring_.size());
        for (std::size_t i = 0; i < ring_.size(); ++i)
            out.push_back(ring_[(ring_next_ + i) % ring_.size()]);
        return out;
    }

  private:
    std::vector<Sample> ring_;
    std::size_t ring_next_ = 0;
    bool ring_wrapped_ = false;
};

/** Per-category replay cycle attribution (feeds Figure 7b). */
struct ReplayOverhead {
    Cycles rdtsc = 0;
    Cycles pio_mmio = 0;
    Cycles interrupt = 0;
    Cycles network = 0;
    Cycles ras = 0;
    Cycles chk = 0;  ///< filled by the checkpointing replayer
};

/** The base deterministic replayer. */
class Replayer : public hv::VmEnvBase {
  public:
    /**
     * @param vm         the replay VM (fresh boot or checkpoint-restored).
     * @param log        the finished input log (must outlive the replayer).
     * @param start_pos  log index to start consuming at (InputLogPtr).
     */
    Replayer(hv::Vm* vm, const InputLog* log, std::size_t start_pos,
             const ReplayOptions& options);

    /**
     * Streaming variant: records come from @p source (e.g. a LogReader
     * draining the recorder's LogChannel on the fly). @p source must
     * outlive the replayer and be consumed by this replayer only.
     */
    Replayer(hv::Vm* vm, LogSource* source, std::size_t start_pos,
             const ReplayOptions& options);

    /** Replay until the log ends, the guest halts, or a hook stops us. */
    ReplayOutcome run();

    /**
     * Ask a run() in progress to stop at the next positional-segment
     * boundary; run() returns kStopRequested. Callable from any thread
     * (fleet shutdown). A replayer blocked in a streaming source's
     * await() wakes only when the producer side closes or poisons the
     * channel — stop the recorder first.
     */
    void request_stop()
    {
        stop_requested_.store(true, std::memory_order_relaxed);
    }

    /** @return true once request_stop() was called. */
    bool stop_requested() const
    {
        return stop_requested_.load(std::memory_order_relaxed);
    }

    /** @return the current log cursor (the InputLogPtr). */
    std::size_t log_pos() const { return cursor_; }

    /** @return instructions-behind-the-recorder statistics. */
    const ReplayLag& lag() const { return lag_; }

    /**
     * Attach the live health probe this replayer publishes into (null
     * detaches). lag() is replay-thread state the monitor must not
     * read mid-run; the probe's relaxed atomics are the safe window.
     * Subclasses extend this with their own signals.
     */
    virtual void set_health_probe(obs::HealthProbe* probe)
    {
        health_probe_ = probe;
    }

    /** @return total single-steps taken for async injections. */
    std::uint64_t single_steps() const { return single_steps_; }

    /** @return per-category attributed cycles. */
    const ReplayOverhead& overhead() const { return overhead_; }

    // CpuEnv: log-driven injection.
    Word on_rdtsc() override;
    Word on_io_in(std::uint16_t port) override;
    void on_io_out(std::uint16_t port, Word value) override;
    Word on_mmio_read(Addr addr) override;
    void on_mmio_write(Addr addr, Word value) override;
    void on_ras_alarm(const cpu::RasAlarm& alarm) override;
    void on_ras_evict(Addr evicted) override;
    void on_call_ret(const cpu::CallRetEvent& event) override;

  protected:
    /**
     * A positional marker (alarm or evict record) was reached.
     * @return false to stop the replay here.
     */
    virtual bool hook_positional_record(const LogRecord& record);

    /**
     * Called at each clean between-instructions VM exit (after handling a
     * positional record); the checkpointing replayer takes checkpoints
     * here.
     */
    virtual void hook_exit_boundary();

    /** The next logged record of any synchronous-injection type. */
    const LogRecord& expect_sync(RecordType type);

    [[noreturn]] void divergence(const std::string& detail);

    /** Where records come from (an owned adapter in the InputLog ctor). */
    LogSource* source_;
    std::size_t cursor_;
    ReplayOptions options_;
    ReplayOverhead overhead_;
    Rng skid_rng_;
    std::uint64_t single_steps_ = 0;
    obs::HealthProbe* health_probe_ = nullptr;

  private:
    /** next_positional() result when the stream ended first. */
    static constexpr std::size_t kNoMore = ~static_cast<std::size_t>(0);

    /** Bridge: takes ownership of the adapter built by the InputLog ctor. */
    Replayer(hv::Vm* vm, std::unique_ptr<InputLogSource> owned,
             std::size_t start_pos, const ReplayOptions& options);

    bool is_positional(RecordType type) const;
    std::size_t next_positional();
    void approach(InstrCount target);
    void handle_irq(const LogRecord& record);
    void handle_disk_complete();
    void sample_lag();

    std::unique_ptr<InputLogSource> owned_source_;
    ReplayLag lag_;
    std::atomic<bool> stop_requested_{false};
};

}  // namespace rsafe::rnr

#endif  // RSAFE_RNR_REPLAYER_H_
