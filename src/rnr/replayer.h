#ifndef RSAFE_RNR_REPLAYER_H_
#define RSAFE_RNR_REPLAYER_H_

#include "common/random.h"
#include "hv/hypervisor.h"
#include "rnr/log_io.h"

/**
 * @file
 * The deterministic replayer (the right side of Figure 1).
 *
 * A Replayer drives a fresh (or checkpoint-restored) VM through the input
 * log:
 *
 *  - synchronous events (rdtsc, pio reads, MMIO reads, NIC DMA payloads)
 *    are injected when the guest traps at the matching instruction —
 *    "with similar configuration of the controls on the replaying system,
 *    these events are deterministically reproduced" (Section 7.3);
 *  - asynchronous events (interrupt injections) will not re-trap at the
 *    same instruction by themselves; the replayer arms a performance
 *    counter that stops close to the recorded instruction count and then
 *    single-steps to the exact injection point, paying ~1000 cycles per
 *    step (Section 7.3) — the source of the interrupt-dominated replay
 *    overhead of Figure 7(b);
 *  - RnR-Safe markers (alarms, evict records) are positional: the
 *    replayer stops at their instruction count and hands them to hooks
 *    that the checkpointing and alarm replayers override.
 *
 * The replayed VM is a "safe platform": its hardware raises no ROP alarms
 * and takes no eviction exits, but it still dumps the RAS at context
 * switches so checkpoints can capture the full BackRAS (Section 4.6.1).
 */

namespace rsafe::rnr {

/** Replay configuration. */
struct ReplayOptions {
    /** Maintain BackRAS at context switches (needed for checkpoints). */
    bool manage_backras = true;
    /** Honor the Ret/Tar whitelists. */
    bool whitelists = true;
    /** Trap kernel call/ret (alarm replayer analysis mode). */
    bool trap_kernel_call_ret = false;
    /** Also trap user call/ret (deep analysis of user-mode alarms). */
    bool trap_user_call_ret = false;
    /** Seed of the perf-counter skid model. */
    std::uint64_t seed = 0x5eed;
    /** Max undershoot (instructions) of the armed perf counter. */
    std::uint32_t max_skid = 32;
};

/** Why a replay run ended. */
enum class ReplayOutcome {
    kFinished,      ///< reached the halt marker; guest halted
    kLogExhausted,  ///< ran out of log records (no halt marker)
    kStopRequested, ///< a hook asked to stop (e.g., alarm under analysis)
    kGuestFault,    ///< replayed guest faulted
};

/** Per-category replay cycle attribution (feeds Figure 7b). */
struct ReplayOverhead {
    Cycles rdtsc = 0;
    Cycles pio_mmio = 0;
    Cycles interrupt = 0;
    Cycles network = 0;
    Cycles ras = 0;
    Cycles chk = 0;  ///< filled by the checkpointing replayer
};

/** The base deterministic replayer. */
class Replayer : public hv::VmEnvBase {
  public:
    /**
     * @param vm         the replay VM (fresh boot or checkpoint-restored).
     * @param log        the input log (must outlive the replayer).
     * @param start_pos  log index to start consuming at (InputLogPtr).
     */
    Replayer(hv::Vm* vm, const InputLog* log, std::size_t start_pos,
             const ReplayOptions& options);

    /** Replay until the log ends, the guest halts, or a hook stops us. */
    ReplayOutcome run();

    /** @return the current log cursor (the InputLogPtr). */
    std::size_t log_pos() const { return cursor_; }

    /** @return total single-steps taken for async injections. */
    std::uint64_t single_steps() const { return single_steps_; }

    /** @return per-category attributed cycles. */
    const ReplayOverhead& overhead() const { return overhead_; }

    // CpuEnv: log-driven injection.
    Word on_rdtsc() override;
    Word on_io_in(std::uint16_t port) override;
    void on_io_out(std::uint16_t port, Word value) override;
    Word on_mmio_read(Addr addr) override;
    void on_mmio_write(Addr addr, Word value) override;
    void on_ras_alarm(const cpu::RasAlarm& alarm) override;
    void on_ras_evict(Addr evicted) override;
    void on_call_ret(const cpu::CallRetEvent& event) override;

  protected:
    /**
     * A positional marker (alarm or evict record) was reached.
     * @return false to stop the replay here.
     */
    virtual bool hook_positional_record(const LogRecord& record);

    /**
     * Called at each clean between-instructions VM exit (after handling a
     * positional record); the checkpointing replayer takes checkpoints
     * here.
     */
    virtual void hook_exit_boundary();

    /** The next logged record of any synchronous-injection type. */
    const LogRecord& expect_sync(RecordType type);

    [[noreturn]] void divergence(const std::string& detail);

    const InputLog* log_;
    std::size_t cursor_;
    ReplayOptions options_;
    ReplayOverhead overhead_;
    Rng skid_rng_;
    std::uint64_t single_steps_ = 0;

  private:
    bool is_positional(RecordType type) const;
    std::size_t next_positional() const;
    void approach(InstrCount target);
    void handle_irq(const LogRecord& record);
    void handle_disk_complete();
};

}  // namespace rsafe::rnr

#endif  // RSAFE_RNR_REPLAYER_H_
