#ifndef RSAFE_RNR_RECORDER_H_
#define RSAFE_RNR_RECORDER_H_

#include "hv/hypervisor.h"
#include "rnr/log_channel.h"
#include "rnr/log_io.h"

/**
 * @file
 * The recording hypervisor (the left side of Figure 1).
 *
 * Extends the live hypervisor with input logging and the RnR-Safe alarm
 * machinery: rdtsc values, pio/MMIO read values, NIC DMA payloads, and
 * asynchronous interrupt injection points are appended to the input log;
 * RAS alarms and Evict records become log markers for the replayers.
 *
 * The recorder also keeps a per-category cycle-overhead attribution that
 * reproduces the Figure 5(b) breakdown: every cycle the recorder charges
 * beyond the NoRec baseline is attributed to rdtsc, pio/mmio, interrupts,
 * network-content logging, or the RAS extensions.
 */

namespace rsafe::core {
class Detector;      // core/detector.h; full type not needed here
class DetectorSet;
}  // namespace rsafe::core

namespace rsafe::rnr {

/** Recording configuration. */
struct RecorderOptions {
    /** Save/restore the RAS at context switches (off = RecNoRAS). */
    bool manage_backras = true;
    /** Raise and log ROP alarms (the RnR-Safe hardware). */
    bool ras_alarms = true;
    /** Log about-to-be-evicted RAS entries (Section 4.5). */
    bool evict_exits = true;
    /** Install the Ret/Tar whitelists (ablation hook). */
    bool whitelists = true;
    /** Stop the recorded VM at the first alarm (risk-averse mode). */
    bool stop_on_alarm = false;
};

/** Cycle attribution mirroring the Figure 5(b) categories. */
struct RecordOverhead {
    Cycles rdtsc = 0;
    Cycles pio_mmio = 0;
    Cycles interrupt = 0;
    Cycles network = 0;
    Cycles ras = 0;
    /** Pluggable-detector alarm exits (CFI, W^X, JOP triggers). */
    Cycles detectors = 0;

    Cycles total() const
    {
        return rdtsc + pio_mmio + interrupt + network + ras + detectors;
    }
};

/** The recording hypervisor. */
class Recorder : public hv::Hypervisor {
  public:
    Recorder(hv::Vm* vm, const RecorderOptions& options);

    /** The input log built so far (streamed to the replayers on the fly). */
    const InputLog& log() const { return log_; }

    /**
     * Tee every appended record into @p channel as well, so an on-the-fly
     * checkpointing replayer can consume the log while this recorder is
     * still producing it. The caller keeps ownership of the channel and
     * is responsible for close()/poison() when the recording ends.
     */
    void attach_stream(LogChannel* channel) { stream_ = channel; }

    /** Per-category overhead attribution (Figure 5b). */
    const RecordOverhead& overhead() const { return overhead_; }

    /** @return true if an alarm requested a stop (stop_on_alarm). */
    bool alarm_stop_requested() const { return alarm_stop_; }

    /**
     * Register the armed detector complement. Each detector's hardware
     * trigger is consulted at the matching VM exit; a positive trigger
     * logs a kDetectorAlarm record for the alarm replayers. The set must
     * outlive this recorder (the framework owns it via shared_ptr).
     */
    void set_detectors(const core::DetectorSet* detectors)
    {
        detectors_ = detectors;
    }

  protected:
    void hook_rdtsc(Word value) override;
    void hook_io_in(std::uint16_t port, Word value) override;
    void hook_mmio_read(Addr addr, Word value) override;
    void hook_nic_dma(Addr addr,
                      const std::vector<std::uint8_t>& data) override;
    void hook_irq_inject(std::uint8_t vector) override;
    void hook_disk_complete() override;
    void hook_ras_alarm(const cpu::RasAlarm& alarm) override;
    void hook_ras_evict(Addr evicted) override;
    void hook_halt() override;
    void hook_context_switch(ThreadId tid) override;

    void on_indirect_branch(Addr pc, Addr target, bool is_call) override;
    void on_wx_fetch(Addr pc) override;

  private:
    /** Charge the simulated cost of appending @p record; @return cost. */
    Cycles charge_log_write(LogRecord record);

    /** Log a kDetectorAlarm raised by @p detector at @p site. */
    void log_detector_alarm(const core::Detector& detector, Addr site,
                            Addr target);

    static hv::HvOptions make_hv_options(const RecorderOptions& options);

    RecorderOptions rec_options_;
    InputLog log_;
    LogChannel* stream_ = nullptr;
    RecordOverhead overhead_;
    const core::DetectorSet* detectors_ = nullptr;
    bool alarm_stop_ = false;
};

}  // namespace rsafe::rnr

#endif  // RSAFE_RNR_RECORDER_H_
