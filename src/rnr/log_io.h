#ifndef RSAFE_RNR_LOG_IO_H_
#define RSAFE_RNR_LOG_IO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "rnr/log_record.h"
#include "rnr/wire.h"

/**
 * @file
 * The input log container and its binary file format.
 *
 * The log is the channel between the recorded VM and the replayer VMs
 * (Figure 1): the recorder appends records, the checkpointing replayer
 * consumes them by index (the checkpoint's InputLogPtr is such an index),
 * and alarm replayers re-read ranges of it. Byte accounting feeds the log
 * generation-rate results (Figure 6a).
 *
 * On disk the log uses the hardened wire format (rnr/wire.h): a
 * versioned, checksummed header plus one CRC32C-sealed, sequence-numbered
 * frame per record. Parsing never aborts the process: strict APIs return
 * a Status, and the tolerant APIs recover every record before the first
 * defect so a replayer can run up to the corruption boundary while the
 * LoadReport says exactly what was lost. Legacy version-1 images (bare
 * magic + count + records, no checksums) are still read, flagged as
 * version 1 in the report.
 */

namespace rsafe::rnr {

/** An append-only sequence of log records with byte accounting. */
class InputLog {
  public:
    /** Append one record. @return its index. */
    std::size_t append(LogRecord record);

    /** @return number of records. */
    std::size_t size() const { return records_.size(); }

    /** @return record @p index (fatal if out of range). */
    const LogRecord& at(std::size_t index) const;

    /** @return total serialized bytes of all records. */
    std::uint64_t total_bytes() const { return total_bytes_; }

    /** @return serialized bytes of records in [first, last). */
    std::uint64_t bytes_in_range(std::size_t first, std::size_t last) const;

    /** @return index of the first record of @p type at or after @p from,
     *  or size() if none. */
    std::size_t find_next(RecordType type, std::size_t from) const;

    /** @return indices of all records of @p type. */
    std::vector<std::size_t> find_all(RecordType type) const;

    /** Serialize the whole log in wire format v2 (CRC-framed records). */
    std::vector<std::uint8_t> serialize() const;

    /**
     * Strict parse: any integrity defect (truncation, bit rot, duplicate
     * or reordered records, version mismatch) is an error and @p out is
     * left empty.
     */
    static Status deserialize(const std::vector<std::uint8_t>& bytes,
                              InputLog* out);

    /**
     * Tolerant parse: recover the longest intact record prefix into
     * @p out and report where and why decoding stopped. Never throws on
     * malformed input.
     */
    static wire::LoadReport deserialize_tolerant(
        const std::vector<std::uint8_t>& bytes, InputLog* out);

    /** Write to / read from a file (strict and tolerant variants). @{ */
    Status save(const std::string& path) const;
    static Status load(const std::string& path, InputLog* out);
    static wire::LoadReport load_tolerant(const std::string& path,
                                          InputLog* out);
    /** @} */

  private:
    std::vector<LogRecord> records_;
    std::uint64_t total_bytes_ = 0;
};

}  // namespace rsafe::rnr

#endif  // RSAFE_RNR_LOG_IO_H_
