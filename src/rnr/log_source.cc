#include "rnr/log_source.h"

#include "common/log.h"

namespace rsafe::rnr {

InputLogSource::InputLogSource(const InputLog* log) : log_(log)
{
    if (log_ == nullptr)
        fatal("InputLogSource: null log");
    if (log_->size() > 0)
        last_icount_ = log_->at(log_->size() - 1).icount;
}

bool
InputLogSource::await(std::size_t index)
{
    return index < log_->size();
}

const LogRecord&
InputLogSource::at(std::size_t index) const
{
    return log_->at(index);
}

std::size_t
InputLogSource::visible() const
{
    return log_->size();
}

SliceLogSource::SliceLogSource(std::size_t base,
                               std::vector<LogRecord> records)
    : base_(base), records_(std::move(records))
{
    if (!records_.empty())
        last_icount_ = records_.back().icount;
}

bool
SliceLogSource::await(std::size_t index)
{
    return index >= base_ && index - base_ < records_.size();
}

const LogRecord&
SliceLogSource::at(std::size_t index) const
{
    if (index < base_ || index - base_ >= records_.size())
        fatal(strcat_args("SliceLogSource: index ", index,
                          " outside slice [", base_, ", ",
                          base_ + records_.size(), ")"));
    return records_[index - base_];
}

LogReader::LogReader(LogChannel* channel) : channel_(channel)
{
    if (channel_ == nullptr)
        fatal("LogReader: null channel");
}

bool
LogReader::await(std::size_t index)
{
    std::vector<LogRecord> chunk;
    while (index >= buffer_.size() && !ended_) {
        switch (channel_->pop(&chunk)) {
          case LogChannel::PopResult::kData:
            for (auto& record : chunk)
                buffer_.append(std::move(record));
            chunk.clear();
            break;
          case LogChannel::PopResult::kClosed:
            ended_ = true;
            break;
          case LogChannel::PopResult::kPoisoned:
            ended_ = true;
            aborted_ = true;
            break;
        }
    }
    return index < buffer_.size();
}

const LogRecord&
LogReader::at(std::size_t index) const
{
    return buffer_.at(index);
}

std::size_t
LogReader::visible() const
{
    return buffer_.size();
}

}  // namespace rsafe::rnr
