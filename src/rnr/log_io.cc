#include "rnr/log_io.h"

#include <cstdio>
#include <fstream>

#include "common/log.h"
#include "obs/trace.h"

namespace rsafe::rnr {

namespace {

/** The legacy (version 1) magic: bare count + records, no checksums. */
constexpr std::uint64_t kLogMagicV1 = 0x52534146454C4F47ULL;  // "RSAFELOG"

/**
 * Parse a legacy v1 image (magic + u64 count + packed records) into
 * @p out, tolerantly: keep everything parsed before the first defect.
 * v1 has no redundancy, so corruption classes beyond truncation and
 * malformed fields are indistinguishable.
 */
wire::LoadReport
parse_legacy_v1(const std::vector<std::uint8_t>& bytes, InputLog* out)
{
    wire::LoadReport report;
    report.version = 1;
    report.bytes_total = bytes.size();
    if (bytes.size() < 16) {
        report.status =
            Status(StatusCode::kTruncated,
                   strcat_args("legacy v1 image is ", bytes.size(),
                               " bytes, header needs 16"));
        return report;
    }
    std::uint64_t count = 0;
    for (int i = 0; i < 8; ++i)
        count |= static_cast<std::uint64_t>(bytes[8 + i]) << (8 * i);
    report.frames_declared = count;
    std::size_t pos = 16;
    for (std::uint64_t i = 0; i < count; ++i) {
        report.corrupt_offset = pos;
        LogRecord record;
        const Status status = LogRecord::decode(bytes, &pos, &record);
        if (!status.ok()) {
            report.status =
                Status(status.code(),
                       strcat_args("legacy v1 record #", i, ": ",
                                   status.message()));
            return report;
        }
        out->append(std::move(record));
        ++report.frames_recovered;
    }
    report.corrupt_offset = pos;
    if (pos != bytes.size()) {
        report.status = Status(
            StatusCode::kTrailingBytes,
            strcat_args(bytes.size() - pos,
                        " bytes of trailing garbage after legacy v1 log"));
    }
    return report;
}

}  // namespace

std::size_t
InputLog::append(LogRecord record)
{
    total_bytes_ += record.serialized_size();
    records_.push_back(std::move(record));
    return records_.size() - 1;
}

const LogRecord&
InputLog::at(std::size_t index) const
{
    if (index >= records_.size())
        panic(strcat_args("InputLog::at(", index, ") out of range (size=",
                          records_.size(), ")"));
    return records_[index];
}

std::uint64_t
InputLog::bytes_in_range(std::size_t first, std::size_t last) const
{
    std::uint64_t bytes = 0;
    for (std::size_t i = first; i < last && i < records_.size(); ++i)
        bytes += records_[i].serialized_size();
    return bytes;
}

std::size_t
InputLog::find_next(RecordType type, std::size_t from) const
{
    for (std::size_t i = from; i < records_.size(); ++i)
        if (records_[i].type == type)
            return i;
    return records_.size();
}

std::vector<std::size_t>
InputLog::find_all(RecordType type) const
{
    std::vector<std::size_t> out;
    for (std::size_t i = 0; i < records_.size(); ++i)
        if (records_[i].type == type)
            out.push_back(i);
    return out;
}

std::vector<std::uint8_t>
InputLog::serialize() const
{
    std::vector<std::uint8_t> out;
    out.reserve(wire::kHeaderSize + total_bytes_ +
                records_.size() * wire::kFrameHeaderSize);
    wire::Header header;
    header.kind = wire::PayloadKind::kInputLog;
    header.frame_count = records_.size();
    wire::encode_header(header, &out);
    std::vector<std::uint8_t> payload;
    for (std::size_t i = 0; i < records_.size(); ++i) {
        payload.clear();
        records_[i].serialize(&payload);
        wire::append_frame(static_cast<std::uint32_t>(i), payload.data(),
                           payload.size(), &out);
    }
    return out;
}

wire::LoadReport
InputLog::deserialize_tolerant(const std::vector<std::uint8_t>& bytes,
                               InputLog* out)
{
    obs::ScopedSpan span("wire.load", "wire");
    out->records_.clear();
    out->total_bytes_ = 0;

    // Legacy v1 images carry their own magic; route them to the
    // unchecksummed parser (and flag version 1 in the report).
    if (bytes.size() >= 8) {
        std::uint64_t magic = 0;
        for (int i = 0; i < 8; ++i)
            magic |= static_cast<std::uint64_t>(bytes[i]) << (8 * i);
        if (magic == kLogMagicV1) {
            auto report = parse_legacy_v1(bytes, out);
            if (!report.intact()) {
                obs::Tracer::instance().instant(
                    "wire.integrity_failure", "wire", "recovered",
                    report.frames_recovered);
            }
            return report;
        }
    }

    auto report = wire::read_frames(
        bytes, wire::PayloadKind::kInputLog,
        [&](std::uint64_t seq, std::size_t offset, std::size_t length) {
            std::size_t pos = offset;
            LogRecord record;
            const Status status = LogRecord::decode(bytes, &pos, &record);
            if (!status.ok()) {
                return Status(StatusCode::kMalformedRecord,
                              strcat_args("record #", seq, ": ",
                                          status.message()));
            }
            if (pos != offset + length) {
                return Status(
                    StatusCode::kMalformedRecord,
                    strcat_args("record #", seq, ": frame is ", length,
                                " bytes but record encoding is ",
                                pos - offset));
            }
            out->append(std::move(record));
            return Status();
        });
    if (!report.intact()) {
        obs::Tracer::instance().instant("wire.integrity_failure", "wire",
                                        "recovered",
                                        report.frames_recovered);
    }
    return report;
}

Status
InputLog::deserialize(const std::vector<std::uint8_t>& bytes, InputLog* out)
{
    const wire::LoadReport report = deserialize_tolerant(bytes, out);
    if (!report.intact()) {
        out->records_.clear();
        out->total_bytes_ = 0;
        return report.status;
    }
    return Status();
}

Status
InputLog::save(const std::string& path) const
{
    const auto bytes = serialize();
    std::ofstream file(path, std::ios::binary | std::ios::trunc);
    if (!file)
        return Status(StatusCode::kIoError,
                      "InputLog::save: cannot open " + path);
    file.write(reinterpret_cast<const char*>(bytes.data()),
               static_cast<std::streamsize>(bytes.size()));
    if (!file)
        return Status(StatusCode::kIoError,
                      "InputLog::save: write failed for " + path);
    return Status();
}

namespace {

/** Slurp @p path into @p bytes (kIoError on any file-level failure). */
Status
read_file(const std::string& path, std::vector<std::uint8_t>* bytes)
{
    std::ifstream file(path, std::ios::binary | std::ios::ate);
    if (!file)
        return Status(StatusCode::kIoError, "cannot open " + path);
    const auto size = static_cast<std::size_t>(file.tellg());
    file.seekg(0);
    bytes->resize(size);
    file.read(reinterpret_cast<char*>(bytes->data()),
              static_cast<std::streamsize>(size));
    if (!file)
        return Status(StatusCode::kIoError, "read failed for " + path);
    return Status();
}

}  // namespace

Status
InputLog::load(const std::string& path, InputLog* out)
{
    std::vector<std::uint8_t> bytes;
    const Status io = read_file(path, &bytes);
    if (!io.ok())
        return io;
    return deserialize(bytes, out);
}

wire::LoadReport
InputLog::load_tolerant(const std::string& path, InputLog* out)
{
    std::vector<std::uint8_t> bytes;
    const Status io = read_file(path, &bytes);
    if (!io.ok()) {
        wire::LoadReport report;
        report.status = io;
        return report;
    }
    return deserialize_tolerant(bytes, out);
}

}  // namespace rsafe::rnr
