#include "rnr/log_io.h"

#include <cstdio>
#include <fstream>

#include "common/log.h"

namespace rsafe::rnr {

namespace {
constexpr std::uint64_t kLogMagic = 0x52534146454C4F47ULL;  // "RSAFELOG"
}  // namespace

std::size_t
InputLog::append(LogRecord record)
{
    total_bytes_ += record.serialized_size();
    records_.push_back(std::move(record));
    return records_.size() - 1;
}

const LogRecord&
InputLog::at(std::size_t index) const
{
    if (index >= records_.size())
        panic(strcat_args("InputLog::at(", index, ") out of range (size=",
                          records_.size(), ")"));
    return records_[index];
}

std::uint64_t
InputLog::bytes_in_range(std::size_t first, std::size_t last) const
{
    std::uint64_t bytes = 0;
    for (std::size_t i = first; i < last && i < records_.size(); ++i)
        bytes += records_[i].serialized_size();
    return bytes;
}

std::size_t
InputLog::find_next(RecordType type, std::size_t from) const
{
    for (std::size_t i = from; i < records_.size(); ++i)
        if (records_[i].type == type)
            return i;
    return records_.size();
}

std::vector<std::size_t>
InputLog::find_all(RecordType type) const
{
    std::vector<std::size_t> out;
    for (std::size_t i = 0; i < records_.size(); ++i)
        if (records_[i].type == type)
            out.push_back(i);
    return out;
}

std::vector<std::uint8_t>
InputLog::serialize() const
{
    std::vector<std::uint8_t> out;
    out.reserve(total_bytes_ + 16);
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<std::uint8_t>((kLogMagic >> (8 * i)) & 0xff));
    const std::uint64_t count = records_.size();
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<std::uint8_t>((count >> (8 * i)) & 0xff));
    for (const auto& record : records_)
        record.serialize(&out);
    return out;
}

bool
InputLog::deserialize(const std::vector<std::uint8_t>& bytes, InputLog* out)
{
    if (bytes.size() < 16)
        return false;
    std::uint64_t magic = 0, count = 0;
    for (int i = 0; i < 8; ++i)
        magic |= static_cast<std::uint64_t>(bytes[i]) << (8 * i);
    for (int i = 0; i < 8; ++i)
        count |= static_cast<std::uint64_t>(bytes[8 + i]) << (8 * i);
    if (magic != kLogMagic)
        return false;
    out->records_.clear();
    out->total_bytes_ = 0;
    std::size_t pos = 16;
    for (std::uint64_t i = 0; i < count; ++i) {
        LogRecord record;
        if (!LogRecord::deserialize(bytes, &pos, &record))
            return false;
        out->append(std::move(record));
    }
    return pos == bytes.size();
}

void
InputLog::save(const std::string& path) const
{
    const auto bytes = serialize();
    std::ofstream file(path, std::ios::binary | std::ios::trunc);
    if (!file)
        fatal("InputLog::save: cannot open " + path);
    file.write(reinterpret_cast<const char*>(bytes.data()),
               static_cast<std::streamsize>(bytes.size()));
    if (!file)
        fatal("InputLog::save: write failed for " + path);
}

InputLog
InputLog::load(const std::string& path)
{
    std::ifstream file(path, std::ios::binary | std::ios::ate);
    if (!file)
        fatal("InputLog::load: cannot open " + path);
    const auto size = static_cast<std::size_t>(file.tellg());
    file.seekg(0);
    std::vector<std::uint8_t> bytes(size);
    file.read(reinterpret_cast<char*>(bytes.data()),
              static_cast<std::streamsize>(size));
    if (!file)
        fatal("InputLog::load: read failed for " + path);
    InputLog log;
    if (!deserialize(bytes, &log))
        fatal("InputLog::load: corrupt log file " + path);
    return log;
}

}  // namespace rsafe::rnr
