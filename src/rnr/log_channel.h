#ifndef RSAFE_RNR_LOG_CHANNEL_H_
#define RSAFE_RNR_LOG_CHANNEL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "rnr/log_record.h"

/**
 * @file
 * The streaming log channel between the recorder and the checkpointing
 * replayer.
 *
 * The paper's CR runs *on the fly*: it consumes the input log while the
 * recorded VM is still producing it, so detection latency is bounded by
 * replay lag rather than by a post-hoc batch pass. LogChannel is the
 * transport that makes that concurrent shape real: a bounded
 * single-producer/single-consumer queue of LogRecord chunks.
 *
 *  - The producer (the recorder thread) appends records; they are
 *    batched into chunks of chunk_records and published under one lock
 *    acquisition, keeping the per-record hot path lock-free.
 *  - The queue is bounded by capacity_records: a producer that runs far
 *    ahead of the consumer blocks (backpressure), so an unconsumed log
 *    can never grow without bound in the channel.
 *  - close() publishes any partial chunk and marks the stream complete;
 *    the consumer drains everything already queued, then sees kClosed.
 *  - poison() marks the stream aborted (the recorder died); the consumer
 *    sees kPoisoned immediately, before any still-queued data.
 *  - abandon() is the consumer-side exit (the replayer died); subsequent
 *    producer pushes are discarded instead of blocking forever.
 */

namespace rsafe::rnr {

/** LogChannel configuration. */
struct ChannelOptions {
    /** Backpressure bound: records buffered in the channel at once. */
    std::size_t capacity_records = 4096;
    /** Records batched per published chunk (1 = publish immediately). */
    std::size_t chunk_records = 64;
};

/** Counters describing one channel's traffic (read after the run). */
struct ChannelStats {
    std::uint64_t records_pushed = 0;
    std::uint64_t chunks_published = 0;
    /** Times the producer blocked on a full queue (backpressure). */
    std::uint64_t producer_waits = 0;
    /** Times the consumer blocked on an empty queue. */
    std::uint64_t consumer_waits = 0;
    /** High-water mark of records queued at once. */
    std::size_t max_queued_records = 0;
    /** Records discarded because the consumer abandoned the stream. */
    std::uint64_t records_dropped = 0;
};

/** Bounded SPSC channel of LogRecord chunks. */
class LogChannel {
  public:
    explicit LogChannel(const ChannelOptions& options = {});

    // -- Producer side (exactly one thread) --

    /** Append one record (may block on backpressure). */
    void push(LogRecord record);

    /** Publish any partial chunk now (may block on backpressure). */
    void flush();

    /** Publish the partial chunk and mark the stream complete. */
    void close();

    /** Mark the stream aborted; queued data is not delivered. */
    void poison();

    // -- Consumer side (exactly one thread) --

    /** What pop() delivered. */
    enum class PopResult {
        kData,      ///< @p out holds the next chunk
        kClosed,    ///< stream complete and fully drained
        kPoisoned,  ///< producer aborted
    };

    /** Block for the next chunk (moved into @p out), end, or abort. */
    PopResult pop(std::vector<LogRecord>* out);

    /** Consumer gives up; unblock and no-op all further producer calls. */
    void abandon();

    // -- Observers (any thread) --

    /** icount of the newest pushed record (the recorder's progress). */
    InstrCount producer_icount() const
    {
        return producer_icount_.load(std::memory_order_relaxed);
    }

    /** @return true once close() ran. */
    bool closed() const;

    /** @return true once poison() ran. */
    bool poisoned() const;

    /** Traffic counters (coherent once producer and consumer stopped). */
    ChannelStats stats() const;

  private:
    /** Queue the open chunk; blocks while over capacity. Lock not held. */
    void publish_chunk();

    ChannelOptions options_;

    mutable std::mutex mu_;
    std::condition_variable can_publish_;
    std::condition_variable can_pop_;
    std::deque<std::vector<LogRecord>> queue_;
    std::size_t queued_records_ = 0;
    bool closed_ = false;
    bool poisoned_ = false;
    bool abandoned_ = false;
    ChannelStats stats_;

    /** Producer-thread-local accumulation; published under mu_. */
    std::vector<LogRecord> open_chunk_;

    std::atomic<InstrCount> producer_icount_{0};
};

}  // namespace rsafe::rnr

#endif  // RSAFE_RNR_LOG_CHANNEL_H_
