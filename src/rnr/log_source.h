#ifndef RSAFE_RNR_LOG_SOURCE_H_
#define RSAFE_RNR_LOG_SOURCE_H_

#include <cstddef>
#include <vector>

#include "rnr/log_channel.h"
#include "rnr/log_io.h"

/**
 * @file
 * Where a replayer's records come from.
 *
 * The base Replayer historically read a complete InputLog. To let the
 * checkpointing replayer run on the fly (concurrently with the recorder),
 * its log access goes through LogSource: an indexable, *awaitable* view
 * of the record stream. Two implementations:
 *
 *  - InputLogSource wraps a finished InputLog (the serial pipeline, alarm
 *    replayers re-reading ranges, every existing test/bench);
 *  - LogReader drains a LogChannel into a private, growing InputLog as
 *    the recorder publishes chunks — await() blocks until the requested
 *    record exists or the stream ends.
 *
 * Both are single-consumer objects: exactly one replayer thread may call
 * await()/at()/visible() on a given source.
 */

namespace rsafe::rnr {

/** An indexable, awaitable stream of log records. */
class LogSource {
  public:
    virtual ~LogSource() = default;

    /**
     * Block until record @p index exists or the stream is over.
     * @return true iff at(index) is now valid.
     */
    virtual bool await(std::size_t index) = 0;

    /** Record @p index; requires a prior await(index) == true. */
    virtual const LogRecord& at(std::size_t index) const = 0;

    /** Records visible so far (the final count once await() fails). */
    virtual std::size_t visible() const = 0;

    /** @return true if the producer aborted (poisoned stream). */
    virtual bool aborted() const = 0;

    /** icount of the newest record the producer has emitted (lag base). */
    virtual InstrCount producer_icount() const = 0;
};

/** A LogSource over a complete, immutable InputLog. */
class InputLogSource final : public LogSource {
  public:
    /** @param log must outlive this source. */
    explicit InputLogSource(const InputLog* log);

    bool await(std::size_t index) override;
    const LogRecord& at(std::size_t index) const override;
    std::size_t visible() const override;
    bool aborted() const override { return false; }
    InstrCount producer_icount() const override { return last_icount_; }

  private:
    const InputLog* log_;
    InstrCount last_icount_ = 0;
};

/**
 * A LogSource over an *owned* contiguous slice of a larger log,
 * preserving the original absolute indices: at(base + i) returns the
 * i-th owned record, and the stream ends after the slice.
 *
 * This is how fleet alarm-replay jobs travel: the checkpointing replayer
 * copies the records between an alarm's originating checkpoint and the
 * alarm itself (a range bounded by the checkpoint interval) into the
 * job, so a pool worker replays from a self-contained snapshot and never
 * touches the tenant's still-growing InputLog from another thread.
 */
class SliceLogSource final : public LogSource {
  public:
    /** @param base the absolute log index of @p records.front(). */
    SliceLogSource(std::size_t base, std::vector<LogRecord> records);

    bool await(std::size_t index) override;
    const LogRecord& at(std::size_t index) const override;
    std::size_t visible() const override { return base_ + records_.size(); }
    bool aborted() const override { return false; }
    InstrCount producer_icount() const override { return last_icount_; }

    /** The absolute index of the first owned record. */
    std::size_t base() const { return base_; }

  private:
    std::size_t base_;
    std::vector<LogRecord> records_;
    InstrCount last_icount_ = 0;
};

/**
 * The streaming consumer end of a LogChannel.
 *
 * Accumulates every drained record into an owned InputLog, so after the
 * stream closes the full log remains available (log()) for alarm
 * replayers and byte accounting — no second copy needs shipping.
 */
class LogReader final : public LogSource {
  public:
    /** @param channel must outlive this reader. */
    explicit LogReader(LogChannel* channel);

    bool await(std::size_t index) override;
    const LogRecord& at(std::size_t index) const override;
    std::size_t visible() const override;
    bool aborted() const override { return aborted_; }
    InstrCount producer_icount() const override
    {
        return channel_->producer_icount();
    }

    /** @return true once the channel reported close or poison. */
    bool ended() const { return ended_; }

    /** Every record drained so far (complete once ended() && !aborted()). */
    const InputLog& log() const { return buffer_; }

  private:
    LogChannel* channel_;
    InputLog buffer_;
    bool ended_ = false;
    bool aborted_ = false;
};

}  // namespace rsafe::rnr

#endif  // RSAFE_RNR_LOG_SOURCE_H_
