#ifndef RSAFE_RNR_WIRE_H_
#define RSAFE_RNR_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/status.h"

/**
 * @file
 * The hardened wire format shared by every serialized artifact that
 * crosses a machine boundary (the input log shipped from the recorded VM
 * to the replayers, checkpoint state digests).
 *
 * The log is the only channel between the recorded VM and the two
 * replayers (Figure 1); a corrupted or truncated log silently breaks the
 * determinism the alarm-replay verdicts depend on. Version 2 therefore
 * wraps every payload in a checksummed, versioned envelope:
 *
 *   Header (32 bytes):
 *     [ 0..8)   u64  magic       "RSAFEWIR"
 *     [ 8..10)  u16  version     (2)
 *     [10..12)  u16  payload kind (PayloadKind)
 *     [12..16)  u32  flags       (0, reserved)
 *     [16..24)  u64  frame count
 *     [24..28)  u32  reserved    (0)
 *     [28..32)  u32  CRC32C of bytes [0..28)
 *
 *   Frame (one record / one digest), repeated `frame count` times:
 *     [0..4)    u32  sequence number (0-based, consecutive)
 *     [4..8)    u32  payload length
 *     [8..12)   u32  CRC32C of (sequence ++ length ++ payload)
 *     [12..12+length)  payload bytes
 *
 * The frame CRC detects bit rot anywhere in the frame; the sequence
 * number detects record duplication and reordering even when every
 * individual frame is internally consistent. Decoding is
 * truncation-tolerant: read_frames() recovers every intact frame before
 * the first defect and reports exactly where and why decoding stopped
 * (LoadReport), so a replayer can run up to the corruption boundary
 * instead of aborting.
 */

namespace rsafe::rnr::wire {

/** CRC32C (Castagnoli), bit-reflected, init/final XOR 0xffffffff. */
std::uint32_t crc32c(const std::uint8_t* data, std::size_t len);
std::uint32_t crc32c(const std::vector<std::uint8_t>& data);

/** FNV-1a 64-bit over raw bytes (state digests). @{ */
inline constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
std::uint64_t fnv1a64(const std::uint8_t* data, std::size_t len,
                      std::uint64_t seed = kFnvOffset);
std::uint64_t fnv1a64_u64(std::uint64_t value, std::uint64_t seed);
/** @} */

/** "RSAFEWIR", little-endian. */
inline constexpr std::uint64_t kMagic = 0x5249574546415352ULL;

/** The wire version this build writes and reads. */
inline constexpr std::uint16_t kVersion = 2;

inline constexpr std::size_t kHeaderSize = 32;
inline constexpr std::size_t kFrameHeaderSize = 12;

/** Upper bound on a single frame payload (sanity check on length). */
inline constexpr std::uint32_t kMaxFrameLength = 1u << 26;

/** What the framed payload is (guards cross-feeding artifacts). */
enum class PayloadKind : std::uint16_t {
    kInputLog = 1,
    kCheckpointDigest = 2,
    kForensicReport = 3,
    kPolicyTable = 4,
    kCheckpointImage = 5,
    kFlightBox = 6,
};

/** Decoded wire header. */
struct Header {
    std::uint64_t magic = kMagic;
    std::uint16_t version = kVersion;
    PayloadKind kind = PayloadKind::kInputLog;
    std::uint32_t flags = 0;
    std::uint64_t frame_count = 0;
};

/** Append the 32-byte encoding of @p header (CRC computed here). */
void encode_header(const Header& header, std::vector<std::uint8_t>* out);

/**
 * Decode and validate the header at the front of @p bytes.
 * Checks length, magic, version, and the header CRC — in that order, so
 * a legacy or foreign file reports kBadMagic/kBadVersion, not a
 * checksum error.
 */
Status decode_header(const std::vector<std::uint8_t>& bytes, Header* out);

/** Append one frame (sequence + length + CRC + payload) to @p out. */
void append_frame(std::uint32_t seq, const std::uint8_t* payload,
                  std::size_t len, std::vector<std::uint8_t>* out);

/**
 * Rewrite the version field of an encoded image in place and re-seal the
 * header CRC (fault injection / forward-compatibility tests).
 */
Status set_header_version(std::vector<std::uint8_t>* image,
                          std::uint16_t version);

/** Where and why a decode stopped (the forensic record). */
struct LoadReport {
    Status status;  ///< kOk iff the whole image decoded intact
    std::uint16_t version = 0;
    std::uint64_t frames_declared = 0;
    std::uint64_t frames_recovered = 0;
    std::uint64_t bytes_total = 0;
    /** Byte offset at which decoding stopped (== bytes_total if intact). */
    std::uint64_t corrupt_offset = 0;

    bool intact() const { return status.ok(); }

    /** One-line forensic summary. */
    std::string to_string() const;
};

/**
 * Consumer of one decoded frame: (sequence, payload offset into the
 * image, payload length). Returning an error stops the walk there; the
 * frame then does not count as recovered.
 */
using FrameSink =
    std::function<Status(std::uint64_t seq, std::size_t offset,
                         std::size_t length)>;

/**
 * Walk every frame of @p bytes, feeding intact frames to @p sink in
 * order. Never throws on malformed input: decoding stops at the first
 * defect (truncation, checksum mismatch, duplicate/reordered sequence,
 * sink rejection, trailing garbage) and the report says what was
 * recovered and what was lost.
 */
LoadReport read_frames(const std::vector<std::uint8_t>& bytes,
                       PayloadKind expected_kind, const FrameSink& sink);

/**
 * Index the frame extents of an intact image (offset and total size,
 * header included, of every frame). Fault injectors use this to aim
 * mutations at specific records.
 */
struct FrameSpan {
    std::size_t offset = 0;  ///< first byte of the frame header
    std::size_t size = 0;    ///< frame header + payload bytes
};
Status index_frames(const std::vector<std::uint8_t>& bytes,
                    std::vector<FrameSpan>* out);

}  // namespace rsafe::rnr::wire

#endif  // RSAFE_RNR_WIRE_H_
