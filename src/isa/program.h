#ifndef RSAFE_ISA_PROGRAM_H_
#define RSAFE_ISA_PROGRAM_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/types.h"
#include "isa/encoding.h"

/**
 * @file
 * A linked guest program image: raw bytes at a base address plus a symbol
 * table. Both the guest kernel and user workloads are built into Image
 * objects by the Assembler and then loaded into guest physical memory.
 *
 * The hypervisor uses the symbol table for the operations Section 5 of the
 * paper performs on the real kernel binary: populating the return/target
 * whitelists, placing PC breakpoints on the stack-switch instruction and
 * the thread-exit function, and introspecting task_struct fields.
 */

namespace rsafe::isa {

/** A named address range (e.g., a function) inside an image. */
struct SymbolRange {
    Addr begin = 0;
    Addr end = 0;  ///< one past the last byte
};

/** A loadable guest program image. */
class Image {
  public:
    Image() = default;
    Image(Addr base, std::vector<std::uint8_t> bytes)
        : base_(base), bytes_(std::move(bytes)) {}

    /** @return the load address of the first byte. */
    Addr base() const { return base_; }

    /** @return one past the last loaded byte. */
    Addr end() const { return base_ + bytes_.size(); }

    /** @return size of the image in bytes. */
    std::size_t size() const { return bytes_.size(); }

    /** @return the raw image bytes. */
    const std::vector<std::uint8_t>& bytes() const { return bytes_; }

    /** Define symbol @p name at @p addr. */
    void add_symbol(const std::string& name, Addr addr);

    /** Define a function symbol covering [begin, end). */
    void add_function(const std::string& name, Addr begin, Addr end);

    /** @return the address of @p name; fatal() if undefined. */
    Addr symbol(const std::string& name) const;

    /** @return the address of @p name, or nullopt. */
    std::optional<Addr> find_symbol(const std::string& name) const;

    /** @return the function range for @p name, or nullopt. */
    std::optional<SymbolRange> find_function(const std::string& name) const;

    /** @return all function symbols, by name. */
    const std::map<std::string, SymbolRange>& functions() const
    {
        return functions_;
    }

    /** @return all point symbols, by name. */
    const std::map<std::string, Addr>& symbols() const { return symbols_; }

    /**
     * @return the name of the function containing @p addr, or empty.
     * Used by forensic reports to translate raw PCs.
     */
    std::string function_at(Addr addr) const;

    /**
     * Decode the instruction at @p addr.
     * @return nullopt if out of range, misaligned, or undecodable.
     */
    std::optional<Instr> instr_at(Addr addr) const;

  private:
    Addr base_ = 0;
    std::vector<std::uint8_t> bytes_;
    std::map<std::string, Addr> symbols_;
    std::map<std::string, SymbolRange> functions_;
};

}  // namespace rsafe::isa

#endif  // RSAFE_ISA_PROGRAM_H_
