#include "isa/encoding.h"

#include <cstring>

namespace rsafe::isa {

namespace {

constexpr const char* kNames[] = {
    "nop",  "halt",
    "add",  "sub",  "mul",  "divu", "and",  "or",   "xor",  "shl",  "shr",
    "addi", "andi", "ori",  "xori", "shli", "shri",
    "ldi",  "ldiu", "mov",
    "ld",   "st",   "ldb",  "stb",
    "beq",  "bne",  "blt",  "bge",  "bltu", "bgeu",
    "jmp",  "jmpr", "call", "callr", "ret", "push", "pop",
    "getsp", "setsp", "addsp",
    "rdtsc", "in",  "out",  "syscall", "iret", "cli", "sti",
};

static_assert(sizeof(kNames) / sizeof(kNames[0]) ==
                  static_cast<std::size_t>(Opcode::kCount),
              "opcode name table out of sync with Opcode enum");

}  // namespace

const char*
opcode_name(Opcode op)
{
    const auto idx = static_cast<std::size_t>(op);
    if (idx >= static_cast<std::size_t>(Opcode::kCount))
        return "<bad>";
    return kNames[idx];
}

bool
opcode_valid(std::uint8_t raw)
{
    return raw < static_cast<std::uint8_t>(Opcode::kCount);
}

std::array<std::uint8_t, kInstrBytes>
encode(const Instr& instr)
{
    std::array<std::uint8_t, kInstrBytes> out{};
    out[0] = static_cast<std::uint8_t>(instr.op);
    out[1] = instr.rd;
    out[2] = instr.rs1;
    out[3] = instr.rs2;
    const auto uimm = static_cast<std::uint32_t>(instr.imm);
    out[4] = static_cast<std::uint8_t>(uimm & 0xff);
    out[5] = static_cast<std::uint8_t>((uimm >> 8) & 0xff);
    out[6] = static_cast<std::uint8_t>((uimm >> 16) & 0xff);
    out[7] = static_cast<std::uint8_t>((uimm >> 24) & 0xff);
    return out;
}

bool
decode(const std::uint8_t* bytes, Instr* out)
{
    if (!opcode_valid(bytes[0]))
        return false;
    out->op = static_cast<Opcode>(bytes[0]);
    out->rd = bytes[1];
    out->rs1 = bytes[2];
    out->rs2 = bytes[3];
    std::uint32_t uimm = 0;
    uimm |= static_cast<std::uint32_t>(bytes[4]);
    uimm |= static_cast<std::uint32_t>(bytes[5]) << 8;
    uimm |= static_cast<std::uint32_t>(bytes[6]) << 16;
    uimm |= static_cast<std::uint32_t>(bytes[7]) << 24;
    out->imm = static_cast<std::int32_t>(uimm);
    if (out->rd >= kNumRegs || out->rs1 >= kNumRegs || out->rs2 >= kNumRegs)
        return false;
    return true;
}

bool
is_control_flow(Opcode op)
{
    switch (op) {
      case Opcode::kBeq:
      case Opcode::kBne:
      case Opcode::kBlt:
      case Opcode::kBge:
      case Opcode::kBltu:
      case Opcode::kBgeu:
      case Opcode::kJmp:
      case Opcode::kJmpr:
      case Opcode::kCall:
      case Opcode::kCallr:
      case Opcode::kRet:
      case Opcode::kSyscall:
      case Opcode::kIret:
        return true;
      default:
        return false;
    }
}

bool
is_call(Opcode op)
{
    return op == Opcode::kCall || op == Opcode::kCallr;
}

bool
is_indirect_branch(Opcode op)
{
    return op == Opcode::kJmpr || op == Opcode::kCallr;
}

}  // namespace rsafe::isa
