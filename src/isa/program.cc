#include "isa/program.h"

#include "common/log.h"

namespace rsafe::isa {

void
Image::add_symbol(const std::string& name, Addr addr)
{
    symbols_[name] = addr;
}

void
Image::add_function(const std::string& name, Addr begin, Addr end)
{
    if (begin >= end) {
        fatal(strcat_args("Image: function '", name,
                          "' has an inverted or empty range [0x", std::hex,
                          begin, ", 0x", end, ")"));
    }
    for (const auto& [other, range] : functions_) {
        if (other == name)
            continue;  // re-registration replaces the old extent
        if (begin < range.end && range.begin < end) {
            fatal(strcat_args("Image: function '", name, "' [0x", std::hex,
                              begin, ", 0x", end, ") overlaps '", other,
                              "' [0x", range.begin, ", 0x", range.end, ")"));
        }
    }
    symbols_[name] = begin;
    functions_[name] = SymbolRange{begin, end};
}

Addr
Image::symbol(const std::string& name) const
{
    auto it = symbols_.find(name);
    if (it == symbols_.end())
        fatal("Image: undefined symbol '" + name + "'");
    return it->second;
}

std::optional<Addr>
Image::find_symbol(const std::string& name) const
{
    auto it = symbols_.find(name);
    if (it == symbols_.end())
        return std::nullopt;
    return it->second;
}

std::optional<SymbolRange>
Image::find_function(const std::string& name) const
{
    auto it = functions_.find(name);
    if (it == functions_.end())
        return std::nullopt;
    return it->second;
}

std::string
Image::function_at(Addr addr) const
{
    for (const auto& [name, range] : functions_) {
        if (addr >= range.begin && addr < range.end)
            return name;
    }
    return {};
}

std::optional<Instr>
Image::instr_at(Addr addr) const
{
    if (addr < base_ || addr + kInstrBytes > end())
        return std::nullopt;
    if ((addr - base_) % kInstrBytes != 0)
        return std::nullopt;
    Instr instr;
    if (!decode(bytes_.data() + (addr - base_), &instr))
        return std::nullopt;
    return instr;
}

}  // namespace rsafe::isa
