#ifndef RSAFE_ISA_ASSEMBLER_H_
#define RSAFE_ISA_ASSEMBLER_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/types.h"
#include "isa/encoding.h"
#include "isa/program.h"

/**
 * @file
 * A programmatic two-pass assembler for the guest ISA.
 *
 * Guest code (the kernel, workload programs, the vulnerable victim of the
 * ROP example) is emitted through this builder API using string labels for
 * control-flow targets; link() resolves labels to absolute addresses and
 * produces an Image.
 *
 * Register names follow the guest ABI used by the kernel builder:
 *   r0        syscall number / return value
 *   r1..r5    arguments and caller-saved temporaries
 *   r6..r9    caller-saved temporaries
 *   r10..r13  callee-saved
 *   r14, r15  kernel scratch (never touched by user code)
 */

namespace rsafe::isa {

/** Register aliases for readable emitter code. */
enum Reg : std::uint8_t {
    R0 = 0, R1, R2, R3, R4, R5, R6, R7,
    R8, R9, R10, R11, R12, R13, R14, R15,
};

/** Two-pass label-resolving assembler producing Image objects. */
class Assembler {
  public:
    /** Start assembling at guest address @p base. */
    explicit Assembler(Addr base);

    /** @return the address the next emitted byte will occupy. */
    Addr here() const;

    /** Bind @p name to the current address. */
    void label(const std::string& name);

    /** Begin a function symbol at the current address. */
    void func_begin(const std::string& name);

    /** End the function most recently begun. */
    void func_end();

    // --- Instruction emitters (one per opcode family) ---
    void nop();
    void halt();

    void add(Reg rd, Reg rs1, Reg rs2);
    void sub(Reg rd, Reg rs1, Reg rs2);
    void mul(Reg rd, Reg rs1, Reg rs2);
    void divu(Reg rd, Reg rs1, Reg rs2);
    void and_(Reg rd, Reg rs1, Reg rs2);
    void or_(Reg rd, Reg rs1, Reg rs2);
    void xor_(Reg rd, Reg rs1, Reg rs2);
    void shl(Reg rd, Reg rs1, Reg rs2);
    void shr(Reg rd, Reg rs1, Reg rs2);

    void addi(Reg rd, Reg rs1, std::int32_t imm);
    void andi(Reg rd, Reg rs1, std::int32_t imm);
    void ori(Reg rd, Reg rs1, std::int32_t imm);
    void xori(Reg rd, Reg rs1, std::int32_t imm);
    void shli(Reg rd, Reg rs1, std::int32_t imm);
    void shri(Reg rd, Reg rs1, std::int32_t imm);

    void ldi(Reg rd, std::int64_t value);  ///< expands to ldi/ldiu pair if needed
    void ldi_label(Reg rd, const std::string& target);  ///< rd = addr of label
    void mov(Reg rd, Reg rs1);

    void ld(Reg rd, Reg base, std::int32_t offset);
    void st(Reg base, std::int32_t offset, Reg value);
    void ldb(Reg rd, Reg base, std::int32_t offset);
    void stb(Reg base, std::int32_t offset, Reg value);

    void beq(Reg rs1, Reg rs2, const std::string& target);
    void bne(Reg rs1, Reg rs2, const std::string& target);
    void blt(Reg rs1, Reg rs2, const std::string& target);
    void bge(Reg rs1, Reg rs2, const std::string& target);
    void bltu(Reg rs1, Reg rs2, const std::string& target);
    void bgeu(Reg rs1, Reg rs2, const std::string& target);

    void jmp(const std::string& target);
    void jmpr(Reg rs1);
    void call(const std::string& target);
    void callr(Reg rs1);
    void ret();
    void push(Reg rs1);
    void pop(Reg rd);

    void getsp(Reg rd);
    void setsp(Reg rs1);
    void addsp(std::int32_t delta);

    void rdtsc(Reg rd);
    void in(Reg rd, std::uint16_t port);
    void out(std::uint16_t port, Reg rs1);
    void syscall();
    void iret();
    void cli();
    void sti();

    // --- Data emitters ---
    /** Emit a raw 64-bit little-endian word. */
    void word(std::uint64_t value);
    /** Emit @p count zero bytes. */
    void space(std::size_t count);
    /** Emit raw bytes. */
    void bytes(const std::vector<std::uint8_t>& data);
    /** Align the cursor to @p alignment bytes (power of two). */
    void align(std::size_t alignment);

    /**
     * Resolve all label references and produce the final image.
     * fatal() on undefined labels or out-of-range targets.
     */
    Image link();

  private:
    void emit(Opcode op, std::uint8_t rd = 0, std::uint8_t rs1 = 0,
              std::uint8_t rs2 = 0, std::int32_t imm = 0);
    void emit_label_ref(Opcode op, std::uint8_t rd, std::uint8_t rs1,
                        std::uint8_t rs2, const std::string& target);

    struct Fixup {
        std::size_t offset;  ///< byte offset of the instruction
        std::string target;
    };

    Addr base_;
    std::vector<std::uint8_t> bytes_;
    std::map<std::string, Addr> labels_;
    std::vector<Fixup> fixups_;
    std::map<std::string, SymbolRange> functions_;
    std::string open_function_;
    Addr open_function_begin_ = 0;
};

}  // namespace rsafe::isa

#endif  // RSAFE_ISA_ASSEMBLER_H_
