#ifndef RSAFE_ISA_DISASSEMBLER_H_
#define RSAFE_ISA_DISASSEMBLER_H_

#include <string>
#include <vector>

#include "common/types.h"
#include "isa/encoding.h"
#include "isa/program.h"

/**
 * @file
 * Text disassembly of guest instructions, used by the alarm replayer's
 * forensic reports (gadget listings) and by debugging tests.
 */

namespace rsafe::isa {

/** Render a single decoded instruction as text (e.g., "addi r1, r2, 8"). */
std::string disassemble(const Instr& instr);

/**
 * Disassemble @p count instructions starting at @p addr inside @p image,
 * one line per instruction, each prefixed with its address in hex.
 */
std::string disassemble_range(const Image& image, Addr addr,
                              std::size_t count);

}  // namespace rsafe::isa

#endif  // RSAFE_ISA_DISASSEMBLER_H_
