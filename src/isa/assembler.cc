#include "isa/assembler.h"

#include "common/log.h"

namespace rsafe::isa {

Assembler::Assembler(Addr base) : base_(base)
{
    if (base % kInstrBytes != 0)
        fatal("Assembler: base address must be 8-byte aligned");
}

Addr
Assembler::here() const
{
    return base_ + bytes_.size();
}

void
Assembler::label(const std::string& name)
{
    if (labels_.count(name))
        fatal("Assembler: duplicate label '" + name + "'");
    labels_[name] = here();
}

void
Assembler::func_begin(const std::string& name)
{
    if (!open_function_.empty())
        fatal("Assembler: nested func_begin('" + name + "')");
    label(name);
    open_function_ = name;
    open_function_begin_ = here();
}

void
Assembler::func_end()
{
    if (open_function_.empty())
        fatal("Assembler: func_end with no open function");
    functions_[open_function_] = SymbolRange{open_function_begin_, here()};
    open_function_.clear();
}

void
Assembler::emit(Opcode op, std::uint8_t rd, std::uint8_t rs1,
                std::uint8_t rs2, std::int32_t imm)
{
    Instr instr{op, rd, rs1, rs2, imm};
    const auto enc = encode(instr);
    bytes_.insert(bytes_.end(), enc.begin(), enc.end());
}

void
Assembler::emit_label_ref(Opcode op, std::uint8_t rd, std::uint8_t rs1,
                          std::uint8_t rs2, const std::string& target)
{
    fixups_.push_back(Fixup{bytes_.size(), target});
    emit(op, rd, rs1, rs2, 0);
}

void Assembler::nop() { emit(Opcode::kNop); }
void Assembler::halt() { emit(Opcode::kHalt); }

void Assembler::add(Reg rd, Reg rs1, Reg rs2) { emit(Opcode::kAdd, rd, rs1, rs2); }
void Assembler::sub(Reg rd, Reg rs1, Reg rs2) { emit(Opcode::kSub, rd, rs1, rs2); }
void Assembler::mul(Reg rd, Reg rs1, Reg rs2) { emit(Opcode::kMul, rd, rs1, rs2); }
void Assembler::divu(Reg rd, Reg rs1, Reg rs2) { emit(Opcode::kDivu, rd, rs1, rs2); }
void Assembler::and_(Reg rd, Reg rs1, Reg rs2) { emit(Opcode::kAnd, rd, rs1, rs2); }
void Assembler::or_(Reg rd, Reg rs1, Reg rs2) { emit(Opcode::kOr, rd, rs1, rs2); }
void Assembler::xor_(Reg rd, Reg rs1, Reg rs2) { emit(Opcode::kXor, rd, rs1, rs2); }
void Assembler::shl(Reg rd, Reg rs1, Reg rs2) { emit(Opcode::kShl, rd, rs1, rs2); }
void Assembler::shr(Reg rd, Reg rs1, Reg rs2) { emit(Opcode::kShr, rd, rs1, rs2); }

void Assembler::addi(Reg rd, Reg rs1, std::int32_t imm) { emit(Opcode::kAddi, rd, rs1, 0, imm); }
void Assembler::andi(Reg rd, Reg rs1, std::int32_t imm) { emit(Opcode::kAndi, rd, rs1, 0, imm); }
void Assembler::ori(Reg rd, Reg rs1, std::int32_t imm) { emit(Opcode::kOri, rd, rs1, 0, imm); }
void Assembler::xori(Reg rd, Reg rs1, std::int32_t imm) { emit(Opcode::kXori, rd, rs1, 0, imm); }
void Assembler::shli(Reg rd, Reg rs1, std::int32_t imm) { emit(Opcode::kShli, rd, rs1, 0, imm); }
void Assembler::shri(Reg rd, Reg rs1, std::int32_t imm) { emit(Opcode::kShri, rd, rs1, 0, imm); }

void
Assembler::ldi(Reg rd, std::int64_t value)
{
    const auto lo32 = static_cast<std::int32_t>(value);
    if (static_cast<std::int64_t>(lo32) == value) {
        emit(Opcode::kLdi, rd, 0, 0, lo32);
        return;
    }
    // Two-instruction sequence for full 64-bit constants.
    const auto hi = static_cast<std::int32_t>(value >> 32);
    const auto lo = static_cast<std::int32_t>(value & 0xffffffff);
    emit(Opcode::kLdi, rd, 0, 0, hi);
    emit(Opcode::kLdiu, rd, 0, 0, lo);
}

void
Assembler::ldi_label(Reg rd, const std::string& target)
{
    emit_label_ref(Opcode::kLdi, rd, 0, 0, target);
}

void Assembler::mov(Reg rd, Reg rs1) { emit(Opcode::kMov, rd, rs1); }

void Assembler::ld(Reg rd, Reg base, std::int32_t offset) { emit(Opcode::kLd, rd, base, 0, offset); }
void Assembler::st(Reg base, std::int32_t offset, Reg value) { emit(Opcode::kSt, 0, base, value, offset); }
void Assembler::ldb(Reg rd, Reg base, std::int32_t offset) { emit(Opcode::kLdb, rd, base, 0, offset); }
void Assembler::stb(Reg base, std::int32_t offset, Reg value) { emit(Opcode::kStb, 0, base, value, offset); }

void Assembler::beq(Reg rs1, Reg rs2, const std::string& t) { emit_label_ref(Opcode::kBeq, 0, rs1, rs2, t); }
void Assembler::bne(Reg rs1, Reg rs2, const std::string& t) { emit_label_ref(Opcode::kBne, 0, rs1, rs2, t); }
void Assembler::blt(Reg rs1, Reg rs2, const std::string& t) { emit_label_ref(Opcode::kBlt, 0, rs1, rs2, t); }
void Assembler::bge(Reg rs1, Reg rs2, const std::string& t) { emit_label_ref(Opcode::kBge, 0, rs1, rs2, t); }
void Assembler::bltu(Reg rs1, Reg rs2, const std::string& t) { emit_label_ref(Opcode::kBltu, 0, rs1, rs2, t); }
void Assembler::bgeu(Reg rs1, Reg rs2, const std::string& t) { emit_label_ref(Opcode::kBgeu, 0, rs1, rs2, t); }

void Assembler::jmp(const std::string& t) { emit_label_ref(Opcode::kJmp, 0, 0, 0, t); }
void Assembler::jmpr(Reg rs1) { emit(Opcode::kJmpr, 0, rs1); }
void Assembler::call(const std::string& t) { emit_label_ref(Opcode::kCall, 0, 0, 0, t); }
void Assembler::callr(Reg rs1) { emit(Opcode::kCallr, 0, rs1); }
void Assembler::ret() { emit(Opcode::kRet); }
void Assembler::push(Reg rs1) { emit(Opcode::kPush, 0, rs1); }
void Assembler::pop(Reg rd) { emit(Opcode::kPop, rd); }

void Assembler::getsp(Reg rd) { emit(Opcode::kGetsp, rd); }
void Assembler::setsp(Reg rs1) { emit(Opcode::kSetsp, 0, rs1); }
void Assembler::addsp(std::int32_t delta) { emit(Opcode::kAddsp, 0, 0, 0, delta); }

void Assembler::rdtsc(Reg rd) { emit(Opcode::kRdtsc, rd); }
void Assembler::in(Reg rd, std::uint16_t port) { emit(Opcode::kIn, rd, 0, 0, port); }
void Assembler::out(std::uint16_t port, Reg rs1) { emit(Opcode::kOut, 0, rs1, 0, port); }
void Assembler::syscall() { emit(Opcode::kSyscall); }
void Assembler::iret() { emit(Opcode::kIret); }
void Assembler::cli() { emit(Opcode::kCli); }
void Assembler::sti() { emit(Opcode::kSti); }

void
Assembler::word(std::uint64_t value)
{
    for (int i = 0; i < 8; ++i)
        bytes_.push_back(static_cast<std::uint8_t>((value >> (8 * i)) & 0xff));
}

void
Assembler::space(std::size_t count)
{
    bytes_.insert(bytes_.end(), count, 0);
}

void
Assembler::bytes(const std::vector<std::uint8_t>& data)
{
    bytes_.insert(bytes_.end(), data.begin(), data.end());
}

void
Assembler::align(std::size_t alignment)
{
    if (alignment == 0 || (alignment & (alignment - 1)) != 0)
        fatal("Assembler::align: alignment must be a power of two");
    while ((base_ + bytes_.size()) % alignment != 0)
        bytes_.push_back(0);
}

Image
Assembler::link()
{
    if (!open_function_.empty())
        fatal("Assembler::link: unclosed function '" + open_function_ + "'");
    for (const auto& fixup : fixups_) {
        auto it = labels_.find(fixup.target);
        if (it == labels_.end())
            fatal("Assembler: undefined label '" + fixup.target + "'");
        const Addr target = it->second;
        if (target > 0xffffffffULL)
            fatal("Assembler: label '" + fixup.target +
                  "' out of 32-bit immediate range");
        const auto uimm = static_cast<std::uint32_t>(target);
        bytes_[fixup.offset + 4] = static_cast<std::uint8_t>(uimm & 0xff);
        bytes_[fixup.offset + 5] = static_cast<std::uint8_t>((uimm >> 8) & 0xff);
        bytes_[fixup.offset + 6] = static_cast<std::uint8_t>((uimm >> 16) & 0xff);
        bytes_[fixup.offset + 7] = static_cast<std::uint8_t>((uimm >> 24) & 0xff);
    }
    Image image(base_, bytes_);
    for (const auto& [name, addr] : labels_)
        image.add_symbol(name, addr);
    for (const auto& [name, range] : functions_)
        image.add_function(name, range.begin, range.end);
    return image;
}

}  // namespace rsafe::isa
