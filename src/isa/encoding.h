#ifndef RSAFE_ISA_ENCODING_H_
#define RSAFE_ISA_ENCODING_H_

#include <array>
#include <cstdint>
#include <string>

#include "common/types.h"

/**
 * @file
 * The guest instruction set of the RnR-Safe simulator.
 *
 * The guest machine is a 64-bit RISC-like uniprocessor with sixteen general
 * purpose registers, a dedicated stack pointer, and a fixed 8-byte
 * instruction encoding:
 *
 *     byte 0   opcode
 *     byte 1   rd
 *     byte 2   rs1
 *     byte 3   rs2
 *     bytes 4-7  imm32 (little-endian, sign-extended where noted)
 *
 * The ISA deliberately contains everything the paper's threat model needs:
 *  - call/ret with on-stack return addresses (ROP target surface),
 *  - indirect jumps and calls (JOP target surface),
 *  - byte stores (buffer-overflow string copies),
 *  - rdtsc / in / out / mmio (the non-deterministic inputs of Section 7.3),
 *  - syscall/iret and a stack-switch instruction (kernel context switches).
 */

namespace rsafe::isa {

/** Number of general-purpose registers (r0..r15). */
inline constexpr std::size_t kNumRegs = 16;

/** All guest opcodes. */
enum class Opcode : std::uint8_t {
    kNop = 0,
    kHalt,       ///< Stop the virtual machine (benign end of workload).

    // ALU register-register: rd = rs1 OP rs2.
    kAdd, kSub, kMul, kDivu, kAnd, kOr, kXor, kShl, kShr,

    // ALU register-immediate: rd = rs1 OP sext(imm).
    kAddi, kAndi, kOri, kXori, kShli, kShri,

    kLdi,        ///< rd = sext(imm32).
    kLdiu,       ///< rd = (rd << 32) | zext(imm32) — builds 64-bit consts.
    kMov,        ///< rd = rs1.

    // Memory: 64-bit words and single bytes.
    kLd,         ///< rd = mem64[rs1 + sext(imm)].
    kSt,         ///< mem64[rs1 + sext(imm)] = rs2.
    kLdb,        ///< rd = zext(mem8[rs1 + sext(imm)]).
    kStb,        ///< mem8[rs1 + sext(imm)] = rs2 & 0xff.

    // Control flow. Branch/jump targets are absolute guest addresses.
    kBeq, kBne, kBlt, kBge, kBltu, kBgeu,
    kJmp,        ///< pc = imm.
    kJmpr,       ///< pc = rs1 (indirect jump).
    kCall,       ///< push pc+8; RAS push; pc = imm.
    kCallr,      ///< push pc+8; RAS push; pc = rs1 (indirect call).
    kRet,        ///< pop target from the stack; RAS predicts/pops.
    kPush,       ///< sp -= 8; mem64[sp] = rs1.
    kPop,        ///< rd = mem64[sp]; sp += 8.

    // Stack-pointer manipulation.
    kGetsp,      ///< rd = sp.
    kSetsp,      ///< sp = rs1 (the kernel's single stack-switch point).
    kAddsp,      ///< sp += sext(imm).

    // Privileged / trapping / non-deterministic.
    kRdtsc,      ///< rd = timestamp (non-deterministic input).
    kIn,         ///< rd = io_port[imm] (pio read).
    kOut,        ///< io_port[imm] = rs1 (pio write).
    kSyscall,    ///< Trap into the guest kernel (r0 holds the number).
    kIret,       ///< Return from syscall/interrupt (pops pc, flags).
    kCli,        ///< Disable guest interrupt delivery.
    kSti,        ///< Enable guest interrupt delivery.

    kCount
};

/** @return the mnemonic for @p op (e.g., "add"). */
const char* opcode_name(Opcode op);

/** @return true if @p raw is a defined opcode byte. */
bool opcode_valid(std::uint8_t raw);

/** A decoded instruction. */
struct Instr {
    Opcode op = Opcode::kNop;
    std::uint8_t rd = 0;
    std::uint8_t rs1 = 0;
    std::uint8_t rs2 = 0;
    std::int32_t imm = 0;

    /** @return imm sign-extended to 64 bits. */
    std::int64_t simm() const { return static_cast<std::int64_t>(imm); }

    /** @return imm zero-extended to 64 bits (for absolute addresses). */
    std::uint64_t uimm() const
    {
        return static_cast<std::uint64_t>(static_cast<std::uint32_t>(imm));
    }

    bool operator==(const Instr&) const = default;
};

/** Encode @p instr into its 8-byte representation. */
std::array<std::uint8_t, kInstrBytes> encode(const Instr& instr);

/**
 * Decode 8 bytes into an instruction.
 *
 * @param bytes  pointer to at least kInstrBytes bytes.
 * @param out    decoded instruction on success.
 * @return false if the opcode byte is not a defined opcode.
 */
bool decode(const std::uint8_t* bytes, Instr* out);

/** @return true if @p op is a control-transfer instruction. */
bool is_control_flow(Opcode op);

/** @return true if @p op is kCall or kCallr. */
bool is_call(Opcode op);

/** @return true for the indirect transfers kJmpr / kCallr. */
bool is_indirect_branch(Opcode op);

}  // namespace rsafe::isa

#endif  // RSAFE_ISA_ENCODING_H_
