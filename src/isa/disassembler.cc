#include "isa/disassembler.h"

#include <cstdio>
#include <sstream>

namespace rsafe::isa {

namespace {

std::string
reg_name(std::uint8_t r)
{
    return "r" + std::to_string(r);
}

std::string
hex(std::uint64_t value)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "0x%llx",
                  static_cast<unsigned long long>(value));
    return buf;
}

}  // namespace

std::string
disassemble(const Instr& i)
{
    std::ostringstream os;
    os << opcode_name(i.op);
    switch (i.op) {
      case Opcode::kNop:
      case Opcode::kHalt:
      case Opcode::kRet:
      case Opcode::kSyscall:
      case Opcode::kIret:
      case Opcode::kCli:
      case Opcode::kSti:
        break;
      case Opcode::kAdd: case Opcode::kSub: case Opcode::kMul:
      case Opcode::kDivu: case Opcode::kAnd: case Opcode::kOr:
      case Opcode::kXor: case Opcode::kShl: case Opcode::kShr:
        os << ' ' << reg_name(i.rd) << ", " << reg_name(i.rs1) << ", "
           << reg_name(i.rs2);
        break;
      case Opcode::kAddi: case Opcode::kAndi: case Opcode::kOri:
      case Opcode::kXori: case Opcode::kShli: case Opcode::kShri:
        os << ' ' << reg_name(i.rd) << ", " << reg_name(i.rs1) << ", "
           << i.imm;
        break;
      case Opcode::kLdi:
      case Opcode::kLdiu:
        os << ' ' << reg_name(i.rd) << ", " << hex(i.uimm());
        break;
      case Opcode::kMov:
        os << ' ' << reg_name(i.rd) << ", " << reg_name(i.rs1);
        break;
      case Opcode::kLd:
      case Opcode::kLdb:
        os << ' ' << reg_name(i.rd) << ", [" << reg_name(i.rs1)
           << (i.imm >= 0 ? "+" : "") << i.imm << ']';
        break;
      case Opcode::kSt:
      case Opcode::kStb:
        os << " [" << reg_name(i.rs1) << (i.imm >= 0 ? "+" : "") << i.imm
           << "], " << reg_name(i.rs2);
        break;
      case Opcode::kBeq: case Opcode::kBne: case Opcode::kBlt:
      case Opcode::kBge: case Opcode::kBltu: case Opcode::kBgeu:
        os << ' ' << reg_name(i.rs1) << ", " << reg_name(i.rs2) << ", "
           << hex(i.uimm());
        break;
      case Opcode::kJmp:
      case Opcode::kCall:
        os << ' ' << hex(i.uimm());
        break;
      case Opcode::kJmpr:
      case Opcode::kCallr:
      case Opcode::kSetsp:
        os << ' ' << reg_name(i.rs1);
        break;
      case Opcode::kPush:
        os << ' ' << reg_name(i.rs1);
        break;
      case Opcode::kPop:
      case Opcode::kGetsp:
      case Opcode::kRdtsc:
        os << ' ' << reg_name(i.rd);
        break;
      case Opcode::kAddsp:
        os << ' ' << i.imm;
        break;
      case Opcode::kIn:
        os << ' ' << reg_name(i.rd) << ", port " << i.imm;
        break;
      case Opcode::kOut:
        os << " port " << i.imm << ", " << reg_name(i.rs1);
        break;
      case Opcode::kCount:
        os << " <bad>";
        break;
    }
    return os.str();
}

std::string
disassemble_range(const Image& image, Addr addr, std::size_t count)
{
    std::ostringstream os;
    for (std::size_t n = 0; n < count; ++n, addr += kInstrBytes) {
        os << hex(addr) << ":  ";
        auto instr = image.instr_at(addr);
        if (!instr) {
            os << "<not code>\n";
            continue;
        }
        os << disassemble(*instr);
        const auto fn = image.function_at(addr);
        if (!fn.empty() && image.symbol(fn) == addr)
            os << "    ; <" << fn << ">";
        os << '\n';
    }
    return os.str();
}

}  // namespace rsafe::isa
