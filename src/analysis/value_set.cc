#include "analysis/value_set.h"

#include <algorithm>
#include <map>
#include <set>

namespace rsafe::analysis {

namespace {

using isa::Instr;
using isa::Opcode;

/** Abstract register contents within one basic block. */
struct AbsValue {
    enum class Kind : std::uint8_t {
        kUnknown,
        kConst,     ///< value holds the constant
        kRegion,    ///< pointer somewhere into regions[region]
        kStackPtr,  ///< derived from the architectural stack pointer
        kSlotLoad,  ///< loaded from the 8-byte slot at `value`
    };
    Kind kind = Kind::kUnknown;
    std::uint64_t value = 0;
    int region = -1;

    static AbsValue unknown() { return {}; }
    static AbsValue constant(std::uint64_t v)
    {
        return {Kind::kConst, v, -1};
    }
};

/** Per-block abstract state (reset at block entry, like RegState). */
struct AbsState {
    std::array<AbsValue, isa::kNumRegs> regs;

    const AbsValue& get(std::uint8_t reg) const { return regs[reg]; }
    void set(std::uint8_t reg, AbsValue v) { regs[reg] = v; }
};

/** What the store-collection phase learned about one 8-byte slot. */
struct SlotInfo {
    std::set<std::uint64_t> values;
    bool widened = false;  ///< byte store / unknown value hit the slot
};

/** Shared context for both analysis phases. */
struct Pass {
    const ValueSetConfig* config;
    std::vector<Region> writable;  ///< declared writable ∪ stacks

    // Phase A products.
    std::map<std::uint64_t, SlotInfo> store_map;
    std::set<int> tainted_regions;  ///< indexes into writable
    std::set<Addr> store_pages;     ///< page bases of const-addr stores
    bool stack_written = false;
    bool unbounded_store = false;

    explicit Pass(const ValueSetConfig& cfg) : config(&cfg)
    {
        writable = cfg.memory.writable;
        writable.insert(writable.end(), cfg.stacks.begin(),
                        cfg.stacks.end());
    }

    bool in_stack(std::uint64_t addr) const
    {
        return std::any_of(config->stacks.begin(), config->stacks.end(),
                           [addr](const Region& r) {
                               return r.contains(addr);
                           });
    }

    bool in_table(std::uint64_t addr) const
    {
        return std::any_of(config->tables.begin(), config->tables.end(),
                           [addr](const Region& r) {
                               return r.contains(addr);
                           });
    }

    /** Fold @p instr into @p state (the abstract transfer function). */
    void
    apply(const Instr& instr, AbsState& state) const
    {
        const AbsValue& s1 = state.get(instr.rs1);
        const AbsValue& s2 = state.get(instr.rs2);
        switch (instr.op) {
        case Opcode::kLdi:
            state.set(instr.rd, AbsValue::constant(
                                    static_cast<std::uint64_t>(instr.simm())));
            break;
        case Opcode::kLdiu: {
            const AbsValue& prev = state.get(instr.rd);
            if (prev.kind == AbsValue::Kind::kConst) {
                state.set(instr.rd, AbsValue::constant(
                                        (prev.value << 32) | instr.uimm()));
            } else {
                state.set(instr.rd, AbsValue::unknown());
            }
            break;
        }
        case Opcode::kMov:
            state.set(instr.rd, s1);
            break;
        case Opcode::kAddi:
            if (s1.kind == AbsValue::Kind::kConst) {
                state.set(instr.rd,
                          AbsValue::constant(
                              s1.value +
                              static_cast<std::uint64_t>(instr.simm())));
            } else if (s1.kind == AbsValue::Kind::kRegion ||
                       s1.kind == AbsValue::Kind::kStackPtr) {
                state.set(instr.rd, s1);  // offset stays within the region
            } else {
                state.set(instr.rd, AbsValue::unknown());
            }
            break;
        case Opcode::kAdd:
        case Opcode::kSub: {
            if (s1.kind == AbsValue::Kind::kConst &&
                s2.kind == AbsValue::Kind::kConst) {
                const std::uint64_t v = instr.op == Opcode::kAdd
                                            ? s1.value + s2.value
                                            : s1.value - s2.value;
                state.set(instr.rd, AbsValue::constant(v));
                break;
            }
            // Pointer arithmetic: region/stack provenance survives an
            // add/sub with any offset operand.
            const AbsValue* ptr = nullptr;
            if (s1.kind == AbsValue::Kind::kRegion ||
                s1.kind == AbsValue::Kind::kStackPtr) {
                ptr = &s1;
            } else if (instr.op == Opcode::kAdd &&
                       (s2.kind == AbsValue::Kind::kRegion ||
                        s2.kind == AbsValue::Kind::kStackPtr)) {
                ptr = &s2;
            }
            state.set(instr.rd, ptr != nullptr ? *ptr : AbsValue::unknown());
            break;
        }
        case Opcode::kLd:
            if (s1.kind == AbsValue::Kind::kConst) {
                AbsValue v;
                v.kind = AbsValue::Kind::kSlotLoad;
                v.value = s1.value + static_cast<std::uint64_t>(instr.simm());
                state.set(instr.rd, v);
            } else {
                state.set(instr.rd, AbsValue::unknown());
            }
            break;
        case Opcode::kGetsp: {
            AbsValue v;
            v.kind = AbsValue::Kind::kStackPtr;
            state.set(instr.rd, v);
            break;
        }
        case Opcode::kMul:
        case Opcode::kDivu:
        case Opcode::kAnd:
        case Opcode::kOr:
        case Opcode::kXor:
        case Opcode::kShl:
        case Opcode::kShr:
        case Opcode::kAndi:
        case Opcode::kOri:
        case Opcode::kXori:
        case Opcode::kShli:
        case Opcode::kShri:
        case Opcode::kLdb:
        case Opcode::kPop:
        case Opcode::kRdtsc:
        case Opcode::kIn:
            // Defining opcodes the domain does not model.
            state.set(instr.rd, AbsValue::unknown());
            break;
        default:
            // Stores, branches, stack/sp ops, syscalls: no GPR def. A
            // call or syscall ends its basic block, so callee clobbers
            // never leak into this block-local state.
            break;
        }
    }

    /**
     * Classify the address operand of a store and record its effect.
     * @return the slot address when the store address is a constant.
     */
    void
    record_store(const Instr& instr, const AbsState& state)
    {
        const AbsValue& base = state.get(instr.rs1);
        switch (base.kind) {
        case AbsValue::Kind::kConst: {
            const std::uint64_t addr =
                base.value + static_cast<std::uint64_t>(instr.simm());
            const std::uint64_t slot = addr & ~std::uint64_t{7};
            SlotInfo& info = store_map[slot];
            const AbsValue& val = state.get(instr.rs2);
            if (instr.op == Opcode::kSt &&
                val.kind == AbsValue::Kind::kConst && addr == slot) {
                info.values.insert(val.value);
            } else {
                info.widened = true;  // byte / misaligned / unknown value
            }
            store_pages.insert(page_base(addr));
            break;
        }
        case AbsValue::Kind::kStackPtr:
            stack_written = true;
            break;
        case AbsValue::Kind::kRegion:
            tainted_regions.insert(base.region);
            break;
        case AbsValue::Kind::kSlotLoad:
        case AbsValue::Kind::kUnknown:
            unbounded_store = true;
            break;
        }
    }

    /** Phase A: collect every reachable store across all images. */
    void
    collect_stores(const Cfg& cfg)
    {
        for (const BasicBlock& block : cfg.blocks()) {
            if (!block.reachable)
                continue;
            AbsState state;
            for (std::size_t i = 0; i < block.instr_count; ++i) {
                const Slot& slot = cfg.decoded().slots()[block.first_slot + i];
                if (!slot.valid)
                    continue;
                const Instr& instr = slot.instr;
                if (instr.op == Opcode::kSt || instr.op == Opcode::kStb)
                    record_store(instr, state);
                else if (instr.op == Opcode::kPush ||
                         instr.op == Opcode::kCall ||
                         instr.op == Opcode::kCallr)
                    stack_written = true;
                apply(instr, state);
            }
        }
    }

    /** @return true when loads from @p slot cannot be widened away. */
    bool
    slot_is_stable(std::uint64_t slot) const
    {
        if (in_table(slot)) {
            // Declared write-disciplined table memory: only stores the
            // pass actually classified into a region overlapping the
            // slot (or the slot's own const-addr widening, handled by
            // the caller) can disturb it. Unboundable pointer-argument
            // stores elsewhere in the group do not.
            for (int idx : tainted_regions) {
                if (writable[static_cast<std::size_t>(idx)].contains(slot))
                    return false;
            }
            return true;
        }
        if (unbounded_store)
            return false;
        for (int idx : tainted_regions) {
            if (writable[static_cast<std::size_t>(idx)].contains(slot))
                return false;
        }
        if (stack_written && in_stack(slot))
            return false;
        return true;
    }

    /** Phase B: resolve every reachable indirect site. */
    void
    resolve_sites(const Cfg& cfg, std::vector<IndirectSite>& sites) const
    {
        for (const BasicBlock& block : cfg.blocks()) {
            if (!block.reachable)
                continue;
            AbsState state;
            for (std::size_t i = 0; i < block.instr_count; ++i) {
                const Slot& slot = cfg.decoded().slots()[block.first_slot + i];
                if (!slot.valid)
                    continue;
                const Instr& instr = slot.instr;
                if (instr.op == Opcode::kJmpr ||
                    instr.op == Opcode::kCallr) {
                    IndirectSite site;
                    site.site = slot.addr;
                    site.is_call = instr.op == Opcode::kCallr;
                    resolve_operand(state.get(instr.rs1), site);
                    sites.push_back(site);
                }
                apply(instr, state);
            }
        }
    }

    void
    resolve_operand(const AbsValue& operand, IndirectSite& site) const
    {
        switch (operand.kind) {
        case AbsValue::Kind::kConst:
            site.resolved = true;
            site.targets = {operand.value};
            break;
        case AbsValue::Kind::kSlotLoad: {
            if (!slot_is_stable(operand.value))
                break;
            auto it = store_map.find(operand.value);
            // A slot with no static store is seeded from outside the
            // analyzed images (e.g. host-written task entries): its
            // contents are unknowable here, so fall back.
            if (it == store_map.end() || it->second.widened ||
                it->second.values.empty())
                break;
            site.resolved = true;
            site.targets.assign(it->second.values.begin(),
                                it->second.values.end());
            break;
        }
        default:
            break;
        }
    }
};

void
append_page_region(std::vector<Region>& out, Addr begin, Addr end)
{
    out.push_back(Region{page_base(begin),
                         page_base(end - 1) + kPageSize});
}

std::vector<Region>
coalesce(std::vector<Region> regions)
{
    std::sort(regions.begin(), regions.end(),
              [](const Region& a, const Region& b) {
                  return a.begin != b.begin ? a.begin < b.begin
                                            : a.end < b.end;
              });
    std::vector<Region> out;
    for (const Region& r : regions) {
        if (r.end <= r.begin)
            continue;
        if (!out.empty() && r.begin <= out.back().end)
            out.back().end = std::max(out.back().end, r.end);
        else
            out.push_back(r);
    }
    return out;
}

}  // namespace

const IndirectSite*
ValueSetResult::find_site(Addr pc) const
{
    auto it = std::lower_bound(sites.begin(), sites.end(), pc,
                               [](const IndirectSite& s, Addr addr) {
                                   return s.site < addr;
                               });
    if (it == sites.end() || it->site != pc)
        return nullptr;
    return &*it;
}

ValueSetResult
analyze_value_sets(const std::vector<const Cfg*>& cfgs,
                   const ValueSetConfig& config)
{
    Pass pass(config);
    for (const Cfg* cfg : cfgs)
        pass.collect_stores(*cfg);

    ValueSetResult result;
    for (const Cfg* cfg : cfgs)
        pass.resolve_sites(*cfg, result.sites);
    std::sort(result.sites.begin(), result.sites.end(),
              [](const IndirectSite& a, const IndirectSite& b) {
                  return a.site < b.site;
              });

    // The fallback set: everything a well-formed indirect transfer in
    // this image group could legally reach.
    std::set<Addr> fallback;
    for (const Cfg* cfg : cfgs) {
        const auto& image = cfg->decoded().image();
        for (const auto& [name, range] : image.functions())
            fallback.insert(range.begin);
        fallback.insert(cfg->call_targets().begin(),
                        cfg->call_targets().end());
        fallback.insert(cfg->address_taken().begin(),
                        cfg->address_taken().end());
        fallback.insert(cfg->external_entries().begin(),
                        cfg->external_entries().end());
        for (const BasicBlock& block : cfg->blocks()) {
            if (!block.reachable)
                continue;
            for (const Edge& edge : block.succs) {
                if (edge.kind == EdgeKind::kCallReturn ||
                    edge.kind == EdgeKind::kSyscallReturn)
                    fallback.insert(edge.target);
            }
        }
    }
    result.fallback.assign(fallback.begin(), fallback.end());

    // Static W^X written map.
    result.unbounded_store = pass.unbounded_store;
    std::vector<Region> written;
    if (pass.unbounded_store) {
        for (const Region& r : pass.writable)
            append_page_region(written, r.begin, r.end);
    } else {
        for (Addr page : pass.store_pages)
            written.push_back(Region{page, page + kPageSize});
        for (int idx : pass.tainted_regions) {
            const Region& r = pass.writable[static_cast<std::size_t>(idx)];
            append_page_region(written, r.begin, r.end);
        }
        if (pass.stack_written) {
            for (const Region& r : config.stacks)
                append_page_region(written, r.begin, r.end);
        }
    }
    result.written = coalesce(std::move(written));
    return result;
}

}  // namespace rsafe::analysis
