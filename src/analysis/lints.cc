#include "analysis/lints.h"

#include "common/log.h"

namespace rsafe::analysis {

using isa::Opcode;

const char*
rule_name(Rule rule)
{
    switch (rule) {
      case Rule::kWxViolation:       return "wx-violation";
      case Rule::kMidInstrBranch:    return "mid-instruction-branch";
      case Rule::kBadBranchTarget:   return "bad-branch-target";
      case Rule::kCallRetImbalance:  return "call-ret-imbalance";
      case Rule::kUnreachableCode:   return "unreachable-code";
      case Rule::kUntabledIndirect:  return "untabled-indirect";
      case Rule::kBoundsMismatch:    return "bounds-mismatch";
      case Rule::kWhitelistMismatch: return "whitelist-mismatch";
      case Rule::kDecodeGap:         return "decode-gap";
      case Rule::kExternalEntry:     return "external-entry";
    }
    return "<bad>";
}

const char*
severity_name(Severity severity)
{
    switch (severity) {
      case Severity::kError:   return "error";
      case Severity::kWarning: return "warning";
      case Severity::kInfo:    return "info";
    }
    return "<bad>";
}

namespace {

std::string
hex(Addr addr)
{
    return strcat_args("0x", std::hex, addr);
}

bool
in_any(const std::vector<Region>& regions, Addr addr)
{
    for (const Region& region : regions) {
        if (region.contains(addr))
            return true;
    }
    return false;
}

/** W^X: layout-level checks plus statically-resolvable stores into code. */
void
lint_wx(const Cfg& cfg, const MemoryMap& map, std::vector<Finding>* out)
{
    const isa::Image& image = cfg.decoded().image();
    std::vector<Region> exec = map.executable;
    if (exec.empty())
        exec.push_back(Region{image.base(), image.end()});

    for (const Region& x : exec) {
        for (const Region& w : map.writable) {
            if (x.overlaps(w)) {
                out->push_back(
                    {Rule::kWxViolation, Severity::kError, x.begin,
                     strcat_args("executable region [", hex(x.begin), ", ",
                                 hex(x.end), ") overlaps writable region [",
                                 hex(w.begin), ", ", hex(w.end), ")")});
            }
        }
    }
    if (!in_any(exec, image.base()) ||
        (image.size() > 0 && !in_any(exec, image.end() - 1))) {
        out->push_back({Rule::kWxViolation, Severity::kError, image.base(),
                        strcat_args("image [", hex(image.base()), ", ",
                                    hex(image.end()),
                                    ") extends outside the declared "
                                    "executable regions")});
    }

    // Stores whose target folds to a constant must stay out of code.
    for (const BasicBlock& block : cfg.blocks()) {
        if (!block.reachable)
            continue;
        RegState state;
        for (std::size_t k = 0; k < block.instr_count; ++k) {
            const Slot& slot = cfg.decoded()[block.first_slot + k];
            const isa::Instr& instr = slot.instr;
            if (instr.op == Opcode::kSt || instr.op == Opcode::kStb) {
                if (const auto base = state.get(instr.rs1)) {
                    const Addr target =
                        *base + static_cast<std::uint64_t>(instr.simm());
                    if (in_any(exec, target)) {
                        out->push_back(
                            {Rule::kWxViolation, Severity::kError, slot.addr,
                             strcat_args("store at ", hex(slot.addr),
                                         " writes executable address ",
                                         hex(target))});
                    }
                }
            }
            state.apply(instr);
        }
    }
}

/** Direct-transfer targets: in-image, slot-aligned. */
void
lint_targets(const Cfg& cfg, std::vector<Finding>* out)
{
    const DecodedImage& di = cfg.decoded();
    const isa::Image& image = di.image();
    for (const BasicBlock& block : cfg.blocks()) {
        if (!block.reachable)
            continue;
        for (const Edge& edge : block.succs) {
            if (edge.kind != EdgeKind::kBranch &&
                edge.kind != EdgeKind::kJump && edge.kind != EdgeKind::kCall)
                continue;
            const Addr last = block.end - kInstrBytes;
            if (edge.target < image.base() || edge.target >= image.end()) {
                out->push_back(
                    {Rule::kBadBranchTarget, Severity::kError, last,
                     strcat_args(edge_kind_name(edge.kind), " at ", hex(last),
                                 " targets ", hex(edge.target),
                                 " outside the image")});
            } else if ((edge.target - image.base()) % kInstrBytes != 0) {
                out->push_back(
                    {Rule::kMidInstrBranch, Severity::kError, last,
                     strcat_args(edge_kind_name(edge.kind), " at ", hex(last),
                                 " targets ", hex(edge.target),
                                 " inside an 8-byte instruction slot")});
            } else if (const Slot* slot = di.at(edge.target);
                       slot != nullptr && !slot->valid) {
                out->push_back(
                    {Rule::kBadBranchTarget, Severity::kError, last,
                     strcat_args(edge_kind_name(edge.kind), " at ", hex(last),
                                 " targets undecodable bytes at ",
                                 hex(edge.target))});
            }
        }
    }
}

/** Unreachable blocks, external entries, and decode gaps. */
void
lint_reachability(const Cfg& cfg, std::vector<Finding>* out)
{
    for (const BasicBlock& block : cfg.blocks()) {
        if (block.external_entry) {
            out->push_back(
                {Rule::kExternalEntry, Severity::kInfo, block.begin,
                 strcat_args("block at ", hex(block.begin),
                             " is entered only from outside the image "
                             "(symbol-bearing continuation)")});
        } else if (!block.reachable) {
            out->push_back(
                {Rule::kUnreachableCode, Severity::kError, block.begin,
                 strcat_args("block at ", hex(block.begin),
                             " is unreachable from every entry point and "
                             "carries no symbol")});
        }
    }
    for (const Slot& slot : cfg.decoded().slots()) {
        if (!slot.valid) {
            out->push_back({Rule::kDecodeGap, Severity::kInfo, slot.addr,
                            strcat_args("undecodable slot at ",
                                        hex(slot.addr),
                                        " (data in an executable segment)")});
        }
    }
}

/** Indirect transfers whose target register holds no derivable constant. */
void
lint_indirects(const Cfg& cfg, std::vector<Finding>* out)
{
    for (const BasicBlock& block : cfg.blocks()) {
        if (!block.reachable)
            continue;
        RegState state;
        for (std::size_t k = 0; k < block.instr_count; ++k) {
            const Slot& slot = cfg.decoded()[block.first_slot + k];
            const isa::Instr& instr = slot.instr;
            if (isa::is_indirect_branch(instr.op) &&
                !state.get(instr.rs1)) {
                out->push_back(
                    {Rule::kUntabledIndirect, Severity::kWarning, slot.addr,
                     strcat_args(isa::opcode_name(instr.op), " at ",
                                 hex(slot.addr), " via r",
                                 static_cast<int>(instr.rs1),
                                 " has no statically tabled target "
                                 "(JOP surface)")});
            }
            state.apply(instr);
        }
    }
}

}  // namespace

std::vector<Finding>
run_structural_lints(const Cfg& cfg, const MemoryMap& map)
{
    std::vector<Finding> findings;
    lint_wx(cfg, map, &findings);
    lint_targets(cfg, &findings);
    lint_reachability(cfg, &findings);
    lint_indirects(cfg, &findings);
    return findings;
}

}  // namespace rsafe::analysis
