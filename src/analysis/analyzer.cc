#include "analysis/analyzer.h"

#include <algorithm>

#include "common/log.h"
#include "kernel/layout.h"

namespace rsafe::analysis {

namespace {

std::string
hex(Addr addr)
{
    return strcat_args("0x", std::hex, addr);
}

/** Compare a derived address set against a declared one. */
void
verify_whitelist(const std::string& which, const std::vector<Addr>& derived,
                 std::vector<Addr> declared, std::vector<Finding>* out)
{
    std::sort(declared.begin(), declared.end());
    declared.erase(std::unique(declared.begin(), declared.end()),
                   declared.end());
    for (const Addr addr : declared) {
        if (!std::binary_search(derived.begin(), derived.end(), addr)) {
            out->push_back(
                {Rule::kWhitelistMismatch, Severity::kError, addr,
                 strcat_args("declared ", which, " whitelist PC ", hex(addr),
                             " is not recoverable from the CFG")});
        }
    }
    for (const Addr addr : derived) {
        if (!std::binary_search(declared.begin(), declared.end(), addr)) {
            out->push_back(
                {Rule::kWhitelistMismatch, Severity::kError, addr,
                 strcat_args("derived ", which, " whitelist PC ", hex(addr),
                             " is missing from the declaration")});
        }
    }
}

GadgetSurface
measure_gadget_surface(const DecodedImage& decoded,
                       const FunctionTable& table, std::size_t max_instrs)
{
    GadgetSurface surface;
    surface.max_run_instrs = max_instrs;
    const std::vector<RetRun> runs = ret_runs(decoded, max_instrs);
    surface.total_runs = runs.size();

    std::vector<std::size_t> per_fn(table.functions().size(), 0);
    for (const RetRun& run : runs) {
        if (run.instrs.size() == 1)
            ++surface.ret_sites;
        const InferredFunction* fn = table.function_containing(run.addr);
        if (fn == nullptr) {
            ++surface.unattributed_runs;
            continue;
        }
        ++per_fn[static_cast<std::size_t>(fn - table.functions().data())];
    }
    for (std::size_t i = 0; i < per_fn.size(); ++i) {
        const InferredFunction& fn = table.functions()[i];
        FunctionGadgets fg;
        fg.name = fn.name;
        fg.begin = fn.begin;
        fg.instr_count =
            static_cast<std::size_t>(fn.end - fn.begin) / kInstrBytes;
        fg.runs = per_fn[i];
        fg.density = fg.instr_count == 0
                         ? 0.0
                         : static_cast<double>(fg.runs) /
                               static_cast<double>(fg.instr_count);
        surface.per_function.push_back(std::move(fg));
    }
    std::sort(surface.per_function.begin(), surface.per_function.end(),
              [](const FunctionGadgets& a, const FunctionGadgets& b) {
                  if (a.density != b.density)
                      return a.density > b.density;
                  return a.begin < b.begin;
              });
    return surface;
}

void
append_json_addr_list(std::string* out, const std::vector<Addr>& addrs)
{
    *out += "[";
    for (std::size_t i = 0; i < addrs.size(); ++i) {
        if (i > 0)
            *out += ", ";
        *out += strcat_args("\"", hex(addrs[i]), "\"");
    }
    *out += "]";
}

}  // namespace

std::size_t
AnalysisReport::count(Severity severity) const
{
    std::size_t n = 0;
    for (const Finding& finding : findings) {
        if (finding.severity == severity)
            ++n;
    }
    return n;
}

AnalysisReport
analyze(const isa::Image& image, const AnalysisConfig& config)
{
    AnalysisReport report;
    report.image_base = image.base();
    report.image_end = image.end();

    const DecodedImage decoded(image);
    report.instr_slots = decoded.size();
    for (const Slot& slot : decoded.slots()) {
        if (slot.valid)
            ++report.valid_slots;
    }

    const Cfg cfg(decoded);
    report.block_count = cfg.blocks().size();
    for (const BasicBlock& block : cfg.blocks()) {
        if (block.reachable)
            ++report.reachable_blocks;
    }

    report.findings = run_structural_lints(cfg, config.memory);

    const FunctionTable table = FunctionTable::infer(cfg);
    report.functions = table.functions();
    if (config.verify_function_symbols && !image.functions().empty()) {
        auto bounds_findings = table.verify_against(image);
        report.bounds_verified = bounds_findings.empty();
        report.findings.insert(report.findings.end(),
                               bounds_findings.begin(),
                               bounds_findings.end());
    }

    StackDisciplineResult discipline = analyze_stack_discipline(cfg);
    report.whitelist = discipline.whitelist;
    report.findings.insert(report.findings.end(),
                           discipline.findings.begin(),
                           discipline.findings.end());

    if (!config.declared_ret_whitelist.empty() ||
        !config.declared_tar_whitelist.empty()) {
        report.whitelist_checked = true;
        std::vector<Finding> wl_findings;
        verify_whitelist("Ret", report.whitelist.ret_whitelist,
                         config.declared_ret_whitelist, &wl_findings);
        verify_whitelist("Tar", report.whitelist.tar_whitelist,
                         config.declared_tar_whitelist, &wl_findings);
        report.whitelist_verified = wl_findings.empty();
        report.findings.insert(report.findings.end(), wl_findings.begin(),
                               wl_findings.end());
    }

    report.gadgets =
        measure_gadget_surface(decoded, table, config.gadget_max_instrs);

    std::stable_sort(report.findings.begin(), report.findings.end(),
                     [](const Finding& a, const Finding& b) {
                         return static_cast<int>(a.severity) <
                                static_cast<int>(b.severity);
                     });
    return report;
}

AnalysisConfig
kernel_analysis_config(const kernel::GuestKernel& kernel)
{
    namespace k = rsafe::kernel;
    AnalysisConfig config;
    config.memory.executable = {{k::kKernelCodeBase, k::kKernelCodeLimit}};
    config.memory.writable = {
        {k::kIvtBase, k::kKernelCodeBase},
        {k::kKernelDataBase, k::kKernelDataLimit},
        {k::kTaskStackBase,
         k::kTaskStackBase + k::kMaxTasks * k::kTaskStackSize},
        {k::kUserDataBase, k::kUserDataLimit},
        {k::kWorkingSetBase, k::kWorkingSetLimit},
    };
    config.declared_ret_whitelist = {kernel.switch_ret_pc};
    config.declared_tar_whitelist = {kernel.finish_resched,
                                     kernel.finish_fork,
                                     kernel.finish_kthread};
    return config;
}

std::string
render_text(const AnalysisReport& report)
{
    std::string out;
    out += strcat_args("image            [", hex(report.image_base), ", ",
                       hex(report.image_end), ")  ", report.instr_slots,
                       " slots (", report.valid_slots, " decodable)\n");
    out += strcat_args("cfg              ", report.block_count, " blocks, ",
                       report.reachable_blocks, " reachable\n");
    out += strcat_args("functions        ", report.functions.size(),
                       " recovered; symbol cross-check ",
                       report.bounds_verified ? "OK" : "FAILED", "\n");
    out += "ret whitelist    ";
    for (const Addr addr : report.whitelist.ret_whitelist)
        out += hex(addr) + " ";
    out += "\ntar whitelist    ";
    for (const Addr addr : report.whitelist.tar_whitelist)
        out += hex(addr) + " ";
    if (report.whitelist_checked) {
        out += strcat_args("\nwhitelist check  ",
                           report.whitelist_verified ? "OK" : "FAILED");
    }
    out += strcat_args("\ngadget surface   ", report.gadgets.total_runs,
                       " ret-terminated runs (<= ",
                       report.gadgets.max_run_instrs, " instrs) over ",
                       report.gadgets.ret_sites, " ret sites\n");
    const std::size_t top =
        std::min<std::size_t>(5, report.gadgets.per_function.size());
    for (std::size_t i = 0; i < top; ++i) {
        const FunctionGadgets& fg = report.gadgets.per_function[i];
        out += strcat_args("  ", fg.name, " (", hex(fg.begin), "): ",
                           fg.runs, " runs / ", fg.instr_count,
                           " instrs\n");
    }
    out += strcat_args("findings         ", report.count(Severity::kError),
                       " errors, ", report.count(Severity::kWarning),
                       " warnings, ", report.count(Severity::kInfo),
                       " infos\n");
    for (const Finding& finding : report.findings) {
        out += strcat_args("  [", severity_name(finding.severity), "] ",
                           rule_name(finding.rule), ": ", finding.message,
                           "\n");
    }
    return out;
}

std::string
render_json(const AnalysisReport& report)
{
    std::string out = "{\n";
    out += strcat_args("  \"image\": {\"base\": \"", hex(report.image_base),
                       "\", \"end\": \"", hex(report.image_end),
                       "\", \"slots\": ", report.instr_slots,
                       ", \"decodable\": ", report.valid_slots, "},\n");
    out += strcat_args("  \"cfg\": {\"blocks\": ", report.block_count,
                       ", \"reachable\": ", report.reachable_blocks, "},\n");

    out += "  \"functions\": [";
    for (std::size_t i = 0; i < report.functions.size(); ++i) {
        const InferredFunction& fn = report.functions[i];
        if (i > 0)
            out += ",";
        out += strcat_args("\n    {\"name\": \"", fn.name, "\", \"begin\": \"",
                           hex(fn.begin), "\", \"end\": \"", hex(fn.end),
                           "\", \"declared\": ",
                           fn.is_declared ? "true" : "false",
                           ", \"call_target\": ",
                           fn.is_call_target ? "true" : "false", "}");
    }
    out += "\n  ],\n";

    out += strcat_args("  \"bounds_verified\": ",
                       report.bounds_verified ? "true" : "false", ",\n");
    out += "  \"whitelist\": {\"ret\": ";
    append_json_addr_list(&out, report.whitelist.ret_whitelist);
    out += ", \"tar\": ";
    append_json_addr_list(&out, report.whitelist.tar_whitelist);
    out += strcat_args(", \"checked\": ",
                       report.whitelist_checked ? "true" : "false",
                       ", \"verified\": ",
                       report.whitelist_verified ? "true" : "false", "},\n");

    out += strcat_args("  \"gadget_surface\": {\"ret_sites\": ",
                       report.gadgets.ret_sites,
                       ", \"total_runs\": ", report.gadgets.total_runs,
                       ", \"max_run_instrs\": ",
                       report.gadgets.max_run_instrs,
                       ", \"unattributed_runs\": ",
                       report.gadgets.unattributed_runs,
                       ", \"per_function\": [");
    for (std::size_t i = 0; i < report.gadgets.per_function.size(); ++i) {
        const FunctionGadgets& fg = report.gadgets.per_function[i];
        if (i > 0)
            out += ",";
        out += strcat_args("\n    {\"name\": \"", fg.name, "\", \"begin\": \"",
                           hex(fg.begin), "\", \"instrs\": ", fg.instr_count,
                           ", \"runs\": ", fg.runs, "}");
    }
    out += "\n  ]},\n";

    out += "  \"findings\": [";
    for (std::size_t i = 0; i < report.findings.size(); ++i) {
        const Finding& finding = report.findings[i];
        if (i > 0)
            out += ",";
        out += strcat_args("\n    {\"rule\": \"", rule_name(finding.rule),
                           "\", \"severity\": \"",
                           severity_name(finding.severity),
                           "\", \"addr\": \"", hex(finding.addr),
                           "\", \"message\": \"", finding.message, "\"}");
    }
    out += "\n  ],\n";
    out += strcat_args("  \"summary\": {\"errors\": ",
                       report.count(Severity::kError), ", \"warnings\": ",
                       report.count(Severity::kWarning), ", \"infos\": ",
                       report.count(Severity::kInfo), ", \"ok\": ",
                       report.ok() ? "true" : "false", "}\n");
    out += "}\n";
    return out;
}

}  // namespace rsafe::analysis
