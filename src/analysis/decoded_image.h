#ifndef RSAFE_ANALYSIS_DECODED_IMAGE_H_
#define RSAFE_ANALYSIS_DECODED_IMAGE_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.h"
#include "isa/encoding.h"
#include "isa/program.h"

/**
 * @file
 * The shared decode walk of the static-analysis subsystem.
 *
 * Every analysis over a guest image (CFG recovery, function-bounds
 * inference, gadget-surface measurement, the attack mounter's gadget
 * scanner) starts from the same primitive: decode every 8-byte instruction
 * slot of the image exactly once. DecodedImage performs that walk eagerly
 * and caches the result so the downstream passes never re-decode.
 */

namespace rsafe::analysis {

/** One decoded instruction slot of an image. */
struct Slot {
    Addr addr = 0;        ///< guest address of the slot
    bool valid = false;   ///< false: undecodable bytes (data, padding)
    isa::Instr instr;     ///< meaningful only when @ref valid
};

/** An image with every aligned instruction slot pre-decoded. */
class DecodedImage {
  public:
    explicit DecodedImage(const isa::Image& image);

    /** @return the underlying image (must outlive this object). */
    const isa::Image& image() const { return *image_; }

    /** @return number of full 8-byte slots in the image. */
    std::size_t size() const { return slots_.size(); }

    /** @return slot @p index (0-based from the image base). */
    const Slot& operator[](std::size_t index) const { return slots_[index]; }

    /** @return all slots in address order. */
    const std::vector<Slot>& slots() const { return slots_; }

    /** @return the guest address of slot @p index. */
    Addr addr_of(std::size_t index) const
    {
        return image_->base() + index * kInstrBytes;
    }

    /** @return the slot index of @p addr, or nullopt if misaligned/OOR. */
    std::optional<std::size_t> index_of(Addr addr) const;

    /** @return the slot at @p addr, or nullptr if misaligned/OOR. */
    const Slot* at(Addr addr) const;

  private:
    const isa::Image* image_;
    std::vector<Slot> slots_;
};

/**
 * One ret-terminated instruction run (the unit of the gadget surface):
 * @ref instrs decodes the consecutive slots [addr, addr + 8*n) whose last
 * instruction is `ret`.
 */
struct RetRun {
    Addr addr = 0;                   ///< address of the first instruction
    std::vector<isa::Instr> instrs;  ///< includes the terminating ret
};

/**
 * Enumerate every ret-terminated run of 1..max_instrs fully-decodable
 * slots, in ascending ret-site order (runs sharing a ret are emitted
 * shortest first). This is the walk both attack::GadgetFinder and the
 * gadget-surface report are built on.
 */
std::vector<RetRun> ret_runs(const DecodedImage& decoded,
                             std::size_t max_instrs);

}  // namespace rsafe::analysis

#endif  // RSAFE_ANALYSIS_DECODED_IMAGE_H_
