#include "analysis/cfg.h"

#include <algorithm>
#include <unordered_set>

namespace rsafe::analysis {

using isa::Opcode;

namespace {

/** @return true if @p op is a conditional branch. */
bool
is_cond_branch(Opcode op)
{
    switch (op) {
      case Opcode::kBeq:
      case Opcode::kBne:
      case Opcode::kBlt:
      case Opcode::kBge:
      case Opcode::kBltu:
      case Opcode::kBgeu:
        return true;
      default:
        return false;
    }
}

/** @return true if @p op has a direct (absolute-immediate) target. */
bool
has_direct_target(Opcode op)
{
    return is_cond_branch(op) || op == Opcode::kJmp || op == Opcode::kCall;
}

/**
 * @return true if @p op terminates a basic block. Control transfers do,
 * and so does halt: execution never proceeds past it, so the next slot
 * needs its own predecessor to be reachable.
 */
bool
ends_block(Opcode op)
{
    return isa::is_control_flow(op) || op == Opcode::kHalt;
}

/** @return true if @p op writes its rd register. */
bool
writes_rd(Opcode op)
{
    switch (op) {
      case Opcode::kAdd:
      case Opcode::kSub:
      case Opcode::kMul:
      case Opcode::kDivu:
      case Opcode::kAnd:
      case Opcode::kOr:
      case Opcode::kXor:
      case Opcode::kShl:
      case Opcode::kShr:
      case Opcode::kAddi:
      case Opcode::kAndi:
      case Opcode::kOri:
      case Opcode::kXori:
      case Opcode::kShli:
      case Opcode::kShri:
      case Opcode::kLdi:
      case Opcode::kLdiu:
      case Opcode::kMov:
      case Opcode::kLd:
      case Opcode::kLdb:
      case Opcode::kPop:
      case Opcode::kGetsp:
      case Opcode::kRdtsc:
      case Opcode::kIn:
        return true;
      default:
        return false;
    }
}

}  // namespace

const char*
edge_kind_name(EdgeKind kind)
{
    switch (kind) {
      case EdgeKind::kFallThrough:   return "fall-through";
      case EdgeKind::kBranch:        return "branch";
      case EdgeKind::kJump:          return "jump";
      case EdgeKind::kCall:          return "call";
      case EdgeKind::kCallReturn:    return "call-return";
      case EdgeKind::kSyscallReturn: return "syscall-return";
    }
    return "<bad>";
}

void
RegState::apply(const isa::Instr& instr)
{
    switch (instr.op) {
      case Opcode::kLdi:
        regs[instr.rd] = static_cast<std::uint64_t>(instr.simm());
        return;
      case Opcode::kLdiu:
        if (regs[instr.rd])
            regs[instr.rd] = (*regs[instr.rd] << 32) | instr.uimm();
        return;
      case Opcode::kMov:
        regs[instr.rd] = regs[instr.rs1];
        return;
      case Opcode::kAddi:
        if (regs[instr.rs1]) {
            regs[instr.rd] =
                *regs[instr.rs1] + static_cast<std::uint64_t>(instr.simm());
        } else {
            regs[instr.rd] = std::nullopt;
        }
        return;
      case Opcode::kAdd:
        if (regs[instr.rs1] && regs[instr.rs2])
            regs[instr.rd] = *regs[instr.rs1] + *regs[instr.rs2];
        else
            regs[instr.rd] = std::nullopt;
        return;
      default:
        if (writes_rd(instr.op))
            regs[instr.rd] = std::nullopt;
        return;
    }
}

Cfg::Cfg(const DecodedImage& decoded) : decoded_(&decoded)
{
    compute_leaders();
    build_blocks();
    compute_reachability();
}

void
Cfg::compute_leaders()
{
    const DecodedImage& di = *decoded_;
    is_leader_.assign(di.size(), false);
    if (di.size() == 0)
        return;
    is_leader_[0] = true;

    std::unordered_set<Addr> taken;
    std::unordered_set<Addr> called;
    for (std::size_t i = 0; i < di.size(); ++i) {
        const Slot& slot = di[i];
        if (!slot.valid) {
            // Data breaks the instruction stream; code resumes at a leader.
            if (i + 1 < di.size())
                is_leader_[i + 1] = true;
            continue;
        }
        const isa::Instr& instr = slot.instr;
        if (instr.op == Opcode::kLdi) {
            // An in-image aligned constant is an address-taken code
            // pointer (continuation or handler address materialized for a
            // later push/store); it can become an entry point.
            const Addr value = instr.uimm();
            if (const auto index = di.index_of(value)) {
                taken.insert(value);
                is_leader_[*index] = true;
            }
        }
        if (!ends_block(instr.op))
            continue;
        if (i + 1 < di.size())
            is_leader_[i + 1] = true;
        if (has_direct_target(instr.op)) {
            const Addr target = instr.uimm();
            if (const auto index = di.index_of(target)) {
                is_leader_[*index] = true;
                if (instr.op == Opcode::kCall)
                    called.insert(target);
            }
        }
    }

    // Declared function entries are block boundaries as well: fall-through
    // into a function must not fuse caller and callee into one block.
    for (const auto& [name, range] : di.image().functions()) {
        if (const auto index = di.index_of(range.begin))
            is_leader_[*index] = true;
    }

    call_targets_.assign(called.begin(), called.end());
    std::sort(call_targets_.begin(), call_targets_.end());
    address_taken_.assign(taken.begin(), taken.end());
    std::sort(address_taken_.begin(), address_taken_.end());
}

void
Cfg::build_blocks()
{
    const DecodedImage& di = *decoded_;
    std::size_t i = 0;
    while (i < di.size()) {
        if (!di[i].valid) {
            ++i;
            continue;
        }
        BasicBlock block;
        block.begin = di.addr_of(i);
        block.first_slot = i;
        std::size_t j = i;
        while (true) {
            const isa::Instr& instr = di[j].instr;
            const bool ends_here =
                ends_block(instr.op) || j + 1 >= di.size() ||
                !di[j + 1].valid || is_leader_[j + 1];
            if (ends_here)
                break;
            ++j;
        }
        block.instr_count = j - i + 1;
        block.end = di.addr_of(j) + kInstrBytes;

        const isa::Instr& last = di[j].instr;
        const Addr next = block.end;
        const bool has_next =
            j + 1 < di.size() && di[j + 1].valid;
        switch (last.op) {
          case Opcode::kJmp:
            block.succs.push_back({last.uimm(), EdgeKind::kJump});
            break;
          case Opcode::kCall:
            block.succs.push_back({last.uimm(), EdgeKind::kCall});
            if (has_next)
                block.succs.push_back({next, EdgeKind::kCallReturn});
            break;
          case Opcode::kCallr:
            // Indirect call: target unknown; the continuation is static.
            if (has_next)
                block.succs.push_back({next, EdgeKind::kCallReturn});
            break;
          case Opcode::kSyscall:
            if (has_next)
                block.succs.push_back({next, EdgeKind::kSyscallReturn});
            break;
          case Opcode::kJmpr:
          case Opcode::kRet:
          case Opcode::kIret:
          case Opcode::kHalt:
            // No static successors.
            break;
          default:
            if (is_cond_branch(last.op)) {
                block.succs.push_back({last.uimm(), EdgeKind::kBranch});
                if (has_next)
                    block.succs.push_back({next, EdgeKind::kFallThrough});
            } else if (has_next) {
                block.succs.push_back({next, EdgeKind::kFallThrough});
            }
            break;
        }
        blocks_.push_back(std::move(block));
        i = j + 1;
    }
}

const BasicBlock*
Cfg::block_starting(Addr addr) const
{
    auto it = std::lower_bound(
        blocks_.begin(), blocks_.end(), addr,
        [](const BasicBlock& b, Addr value) { return b.begin < value; });
    if (it != blocks_.end() && it->begin == addr)
        return &*it;
    return nullptr;
}

const BasicBlock*
Cfg::block_containing(Addr addr) const
{
    auto it = std::upper_bound(
        blocks_.begin(), blocks_.end(), addr,
        [](Addr value, const BasicBlock& b) { return value < b.begin; });
    if (it == blocks_.begin())
        return nullptr;
    --it;
    if (addr >= it->begin && addr < it->end)
        return &*it;
    return nullptr;
}

void
Cfg::mark_reachable_from(Addr root)
{
    std::vector<Addr> worklist{root};
    while (!worklist.empty()) {
        const Addr addr = worklist.back();
        worklist.pop_back();
        const BasicBlock* found = block_starting(addr);
        if (found == nullptr || found->reachable)
            continue;
        // const_cast-free mutation: recompute the index into blocks_.
        auto& block = blocks_[static_cast<std::size_t>(found - blocks_.data())];
        block.reachable = true;
        for (const Edge& edge : block.succs)
            worklist.push_back(edge.target);
    }
}

void
Cfg::compute_reachability()
{
    const isa::Image& image = decoded_->image();
    if (!blocks_.empty())
        mark_reachable_from(blocks_.front().begin);
    for (const auto& [name, range] : image.functions())
        mark_reachable_from(range.begin);
    for (const Addr addr : address_taken_)
        mark_reachable_from(addr);

    // Promote symbol-bearing orphans (externally-seeded continuations such
    // as the kernel's finish_kthread) to entry points, to a fixpoint.
    std::unordered_set<Addr> symbol_addrs;
    for (const auto& [name, addr] : image.symbols())
        symbol_addrs.insert(addr);
    bool changed = true;
    while (changed) {
        changed = false;
        for (auto& block : blocks_) {
            if (block.reachable || !symbol_addrs.count(block.begin))
                continue;
            block.external_entry = true;
            external_entries_.push_back(block.begin);
            mark_reachable_from(block.begin);
            changed = true;
        }
    }
    std::sort(external_entries_.begin(), external_entries_.end());
}

}  // namespace rsafe::analysis
