#include "analysis/function_bounds.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/log.h"

namespace rsafe::analysis {

namespace {

std::string
hex(Addr addr)
{
    return strcat_args("0x", std::hex, addr);
}

}  // namespace

FunctionTable
FunctionTable::infer(const Cfg& cfg)
{
    const isa::Image& image = cfg.decoded().image();

    // Entries: direct call targets plus declared function symbols.
    std::map<Addr, InferredFunction> entries;
    for (const Addr target : cfg.call_targets()) {
        InferredFunction fn;
        fn.begin = target;
        fn.is_call_target = true;
        entries[target] = fn;
    }
    for (const auto& [name, range] : image.functions()) {
        auto& fn = entries[range.begin];
        fn.begin = range.begin;
        fn.name = name;
        fn.is_declared = true;
    }

    // Boundaries: every point where one code object can end and the next
    // begin — entries, address-taken continuations, external entries, and
    // the image end.
    std::set<Addr> boundaries;
    for (const auto& [addr, fn] : entries)
        boundaries.insert(addr);
    for (const Addr addr : cfg.address_taken())
        boundaries.insert(addr);
    for (const Addr addr : cfg.external_entries())
        boundaries.insert(addr);
    boundaries.insert(image.end());

    FunctionTable table;
    for (auto& [addr, fn] : entries) {
        auto next = boundaries.upper_bound(addr);
        fn.end = next == boundaries.end() ? image.end() : *next;
        if (fn.name.empty())
            fn.name = strcat_args("fn_", std::hex, addr);
        table.functions_.push_back(fn);
    }
    return table;
}

const InferredFunction*
FunctionTable::function_containing(Addr addr) const
{
    auto it = std::upper_bound(
        functions_.begin(), functions_.end(), addr,
        [](Addr value, const InferredFunction& fn) {
            return value < fn.begin;
        });
    if (it == functions_.begin())
        return nullptr;
    --it;
    if (addr >= it->begin && addr < it->end)
        return &*it;
    return nullptr;
}

std::vector<core::FunctionBounds>
FunctionTable::jop_bounds() const
{
    std::vector<core::FunctionBounds> bounds;
    bounds.reserve(functions_.size());
    for (const InferredFunction& fn : functions_)
        bounds.push_back(core::FunctionBounds{fn.begin, fn.end});
    return bounds;
}

std::vector<Finding>
FunctionTable::verify_against(const isa::Image& image) const
{
    std::vector<Finding> findings;
    auto mismatch = [&findings](Addr addr, const std::string& message) {
        findings.push_back(
            {Rule::kBoundsMismatch, Severity::kError, addr, message});
    };

    std::map<Addr, const InferredFunction*> by_begin;
    for (const InferredFunction& fn : functions_)
        by_begin[fn.begin] = &fn;

    // Every declared function must be recovered with identical bounds.
    Addr prev_end = 0;
    std::string prev_name;
    for (const auto& [name, range] : image.functions()) {
        if (range.begin >= range.end || range.begin < image.base() ||
            range.end > image.end()) {
            mismatch(range.begin,
                     strcat_args("declared function '", name,
                                 "' has bad range [", hex(range.begin), ", ",
                                 hex(range.end), ")"));
            continue;
        }
        auto it = by_begin.find(range.begin);
        if (it == by_begin.end()) {
            mismatch(range.begin,
                     strcat_args("declared function '", name, "' at ",
                                 hex(range.begin),
                                 " was not recovered as an entry point"));
            continue;
        }
        if (it->second->end != range.end) {
            mismatch(range.begin,
                     strcat_args("declared function '", name, "' ends at ",
                                 hex(range.end), " but the recovered ",
                                 "bounds end at ", hex(it->second->end)));
        }
    }

    // Declared ranges must not overlap one another (the map iterates by
    // name; re-check in address order).
    std::vector<isa::SymbolRange> declared;
    std::map<Addr, std::string> names_by_begin;
    for (const auto& [name, range] : image.functions()) {
        declared.push_back(range);
        names_by_begin[range.begin] = name;
    }
    std::sort(declared.begin(), declared.end(),
              [](const isa::SymbolRange& a, const isa::SymbolRange& b) {
                  return a.begin < b.begin;
              });
    for (const isa::SymbolRange& range : declared) {
        if (range.begin < prev_end) {
            mismatch(range.begin,
                     strcat_args("declared function '",
                                 names_by_begin[range.begin],
                                 "' overlaps '", prev_name, "'"));
        }
        prev_end = range.end;
        prev_name = names_by_begin[range.begin];
    }

    // Every recovered call target must be a declared function entry.
    for (const InferredFunction& fn : functions_) {
        if (fn.is_call_target && !fn.is_declared) {
            mismatch(fn.begin,
                     strcat_args("call target ", hex(fn.begin),
                                 " is not a declared function entry"));
        }
    }
    return findings;
}

}  // namespace rsafe::analysis
