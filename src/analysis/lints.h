#ifndef RSAFE_ANALYSIS_LINTS_H_
#define RSAFE_ANALYSIS_LINTS_H_

#include <string>
#include <vector>

#include "analysis/cfg.h"
#include "common/types.h"

/**
 * @file
 * Lint findings and the structural lint rules of the analyzer.
 *
 * A Finding is one diagnosed fact about the image, tagged with the rule
 * that produced it and a severity. Errors are facts that contradict the
 * security model (writable code, a branch into the middle of an 8-byte
 * slot, an unbalanced return); warnings are attack-surface observations
 * (an indirect call whose target no table constrains); infos are
 * annotations (data slots, external continuation entries).
 */

namespace rsafe::analysis {

/** Lint severity. */
enum class Severity {
    kError,
    kWarning,
    kInfo,
};

/** The rule that produced a finding. */
enum class Rule {
    kWxViolation,        ///< writable executable memory / store into code
    kMidInstrBranch,     ///< control transfer into the middle of a slot
    kBadBranchTarget,    ///< direct target outside the executable image
    kCallRetImbalance,   ///< static shadow-stack discipline violated
    kUnreachableCode,    ///< block no root reaches and no symbol names
    kUntabledIndirect,   ///< indirect call/jump with no tabled target
    kBoundsMismatch,     ///< inferred bounds disagree with the symbol table
    kWhitelistMismatch,  ///< derived Ret/Tar whitelist != declared
    kDecodeGap,          ///< undecodable slot inside the executable image
    kExternalEntry,      ///< symbol-bearing orphan promoted to entry
};

/** @return the kebab-case rule name (stable; used in the JSON report). */
const char* rule_name(Rule rule);

/** @return "error" / "warning" / "info". */
const char* severity_name(Severity severity);

/** One diagnosed fact about the analyzed image. */
struct Finding {
    Rule rule = Rule::kWxViolation;
    Severity severity = Severity::kError;
    Addr addr = 0;  ///< the instruction or block the finding anchors to
    std::string message;
};

/** An address range [begin, end). */
struct Region {
    Addr begin = 0;
    Addr end = 0;

    bool contains(Addr addr) const { return addr >= begin && addr < end; }
    bool overlaps(const Region& other) const
    {
        return begin < other.end && other.begin < end;
    }

    bool operator==(const Region&) const = default;
};

/** Memory-layout facts the structural lints check the image against. */
struct MemoryMap {
    std::vector<Region> executable;  ///< empty: the image extent itself
    std::vector<Region> writable;
};

/**
 * Run the structural lints over @p cfg:
 *  - W^X: executable/writable overlap, image bytes outside the executable
 *    regions, stores with a statically-constant target inside them;
 *  - mid-instruction branches and direct targets outside the image;
 *  - unreachable blocks (error without a symbol, info for promoted
 *    external entries);
 *  - indirect calls/jumps whose target register holds no derivable
 *    constant (the untabled JOP surface — reported as warnings);
 *  - undecodable slots (info: data in an executable segment).
 */
std::vector<Finding> run_structural_lints(const Cfg& cfg,
                                          const MemoryMap& map);

}  // namespace rsafe::analysis

#endif  // RSAFE_ANALYSIS_LINTS_H_
