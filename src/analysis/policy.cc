#include "analysis/policy.h"

#include <algorithm>
#include <sstream>

#include "common/log.h"
#include "kernel/layout.h"
#include "rnr/wire.h"

namespace rsafe::analysis {

namespace {

using rnr::wire::PayloadKind;

void
put_u64(std::vector<std::uint8_t>* out, std::uint64_t value)
{
    for (int i = 0; i < 8; ++i)
        out->push_back(static_cast<std::uint8_t>(value >> (8 * i)));
}

void
put_u32(std::vector<std::uint8_t>* out, std::uint32_t value)
{
    for (int i = 0; i < 4; ++i)
        out->push_back(static_cast<std::uint8_t>(value >> (8 * i)));
}

void
put_regions(std::vector<std::uint8_t>* out, const std::vector<Region>& regions)
{
    put_u32(out, static_cast<std::uint32_t>(regions.size()));
    for (const Region& r : regions) {
        put_u64(out, r.begin);
        put_u64(out, r.end);
    }
}

/** Bounds-checked little-endian reader over one frame. */
class Cursor {
  public:
    Cursor(const std::uint8_t* data, std::size_t size)
        : data_(data), size_(size)
    {
    }

    Status
    u8(std::uint8_t* out)
    {
        if (size_ - pos_ < 1)
            return truncated("u8");
        *out = data_[pos_++];
        return Status();
    }

    Status
    u32(std::uint32_t* out)
    {
        if (size_ - pos_ < 4)
            return truncated("u32");
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
        pos_ += 4;
        *out = v;
        return Status();
    }

    Status
    u64(std::uint64_t* out)
    {
        if (size_ - pos_ < 8)
            return truncated("u64");
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
        pos_ += 8;
        *out = v;
        return Status();
    }

    Status
    addr_list(std::vector<Addr>* out)
    {
        std::uint32_t count = 0;
        Status s;
        if (!(s = u32(&count)).ok())
            return s;
        if (static_cast<std::size_t>(count) * 8 > size_ - pos_) {
            return Status(StatusCode::kMalformedRecord,
                          strcat_args("policy frame declares ", count,
                                      " addresses but only ", size_ - pos_,
                                      " bytes remain"));
        }
        out->resize(count);
        for (std::uint32_t i = 0; i < count; ++i) {
            if (!(s = u64(&(*out)[i])).ok())
                return s;
        }
        return Status();
    }

    Status
    region_list(std::vector<Region>* out)
    {
        std::uint32_t count = 0;
        Status s;
        if (!(s = u32(&count)).ok())
            return s;
        if (static_cast<std::size_t>(count) * 16 > size_ - pos_) {
            return Status(StatusCode::kMalformedRecord,
                          strcat_args("policy frame declares ", count,
                                      " regions but only ", size_ - pos_,
                                      " bytes remain"));
        }
        out->resize(count);
        for (std::uint32_t i = 0; i < count; ++i) {
            if (!(s = u64(&(*out)[i].begin)).ok())
                return s;
            if (!(s = u64(&(*out)[i].end)).ok())
                return s;
            if ((*out)[i].end < (*out)[i].begin) {
                return Status(StatusCode::kMalformedRecord,
                              strcat_args("policy region ", i,
                                          " has inverted bounds"));
            }
        }
        return Status();
    }

    bool exhausted() const { return pos_ == size_; }

  private:
    Status
    truncated(const char* what) const
    {
        return Status(StatusCode::kTruncated,
                      strcat_args("policy frame ends mid-", what,
                                  " at byte ", pos_, " of ", size_));
    }

    const std::uint8_t* data_;
    std::size_t size_;
    std::size_t pos_ = 0;
};

constexpr std::uint8_t kFlagIsCall = 1u << 0;
constexpr std::uint8_t kFlagResolved = 1u << 1;

std::string
hex(std::uint64_t value)
{
    std::ostringstream os;
    os << "0x" << std::hex << value;
    return os.str();
}

}  // namespace

const IndirectSite*
StaticPolicy::find_site(Addr pc) const
{
    auto it = std::lower_bound(sites.begin(), sites.end(), pc,
                               [](const IndirectSite& s, Addr addr) {
                                   return s.site < addr;
                               });
    if (it == sites.end() || it->site != pc)
        return nullptr;
    return &*it;
}

bool
StaticPolicy::fallback_contains(Addr target) const
{
    return std::binary_search(fallback.begin(), fallback.end(), target);
}

const Region*
StaticPolicy::jit_region_of(Addr addr) const
{
    for (const Region& r : jit) {
        if (r.contains(addr))
            return &r;
    }
    return nullptr;
}

std::vector<std::uint8_t>
StaticPolicy::serialize() const
{
    // Frame 0 carries the counts and the set/region tables; frames 1..N
    // carry one CFI site each, so a damaged site frame loses only that
    // site's policy.
    std::vector<std::uint8_t> head;
    put_u32(&head, static_cast<std::uint32_t>(sites.size()));
    head.push_back(unbounded_store ? 1 : 0);
    put_u32(&head, static_cast<std::uint32_t>(fallback.size()));
    for (Addr addr : fallback)
        put_u64(&head, addr);
    put_regions(&head, code);
    put_regions(&head, written);
    put_regions(&head, jit);

    std::vector<std::uint8_t> out;
    rnr::wire::Header header;
    header.kind = PayloadKind::kPolicyTable;
    header.frame_count = 1 + sites.size();
    rnr::wire::encode_header(header, &out);
    rnr::wire::append_frame(0, head.data(), head.size(), &out);
    for (std::size_t i = 0; i < sites.size(); ++i) {
        const IndirectSite& site = sites[i];
        std::vector<std::uint8_t> frame;
        put_u64(&frame, site.site);
        std::uint8_t flags = 0;
        if (site.is_call)
            flags |= kFlagIsCall;
        if (site.resolved)
            flags |= kFlagResolved;
        frame.push_back(flags);
        put_u32(&frame, static_cast<std::uint32_t>(site.targets.size()));
        for (Addr target : site.targets)
            put_u64(&frame, target);
        rnr::wire::append_frame(static_cast<std::uint32_t>(i + 1),
                                frame.data(), frame.size(), &out);
    }
    return out;
}

Status
StaticPolicy::deserialize(const std::vector<std::uint8_t>& bytes,
                          StaticPolicy* out)
{
    *out = StaticPolicy();
    std::uint32_t declared_sites = 0;
    Addr last_site = 0;
    const auto report = rnr::wire::read_frames(
        bytes, PayloadKind::kPolicyTable,
        [&](std::uint64_t seq, std::size_t offset,
            std::size_t length) -> Status {
            Cursor cursor(bytes.data() + offset, length);
            Status s;
            if (seq == 0) {
                std::uint8_t unbounded = 0;
                if (!(s = cursor.u32(&declared_sites)).ok())
                    return s;
                if (!(s = cursor.u8(&unbounded)).ok())
                    return s;
                if (!(s = cursor.addr_list(&out->fallback)).ok())
                    return s;
                if (!(s = cursor.region_list(&out->code)).ok())
                    return s;
                if (!(s = cursor.region_list(&out->written)).ok())
                    return s;
                if (!(s = cursor.region_list(&out->jit)).ok())
                    return s;
                if (!std::is_sorted(out->fallback.begin(),
                                    out->fallback.end())) {
                    return Status(StatusCode::kMalformedRecord,
                                  "policy fallback set is not sorted");
                }
                out->unbounded_store = unbounded != 0;
                out->sites.reserve(declared_sites);
            } else {
                IndirectSite site;
                std::uint8_t flags = 0;
                std::uint32_t count = 0;
                if (!(s = cursor.u64(&site.site)).ok())
                    return s;
                if (!(s = cursor.u8(&flags)).ok())
                    return s;
                if ((flags & ~(kFlagIsCall | kFlagResolved)) != 0) {
                    return Status(StatusCode::kMalformedRecord,
                                  strcat_args("policy site frame ", seq,
                                              ": bad flags ", flags));
                }
                if (!(s = cursor.u32(&count)).ok())
                    return s;
                site.is_call = (flags & kFlagIsCall) != 0;
                site.resolved = (flags & kFlagResolved) != 0;
                site.targets.resize(count);
                for (std::uint32_t i = 0; i < count; ++i) {
                    if (!(s = cursor.u64(&site.targets[i])).ok())
                        return s;
                }
                if (!site.resolved && !site.targets.empty()) {
                    return Status(StatusCode::kMalformedRecord,
                                  strcat_args("policy site frame ", seq,
                                              ": unresolved site carries "
                                              "targets"));
                }
                if (!std::is_sorted(site.targets.begin(),
                                    site.targets.end())) {
                    return Status(StatusCode::kMalformedRecord,
                                  strcat_args("policy site frame ", seq,
                                              ": target set not sorted"));
                }
                if (!out->sites.empty() && site.site <= last_site) {
                    return Status(StatusCode::kMalformedRecord,
                                  strcat_args("policy site frame ", seq,
                                              ": sites out of order"));
                }
                last_site = site.site;
                out->sites.push_back(std::move(site));
            }
            if (!cursor.exhausted()) {
                return Status(StatusCode::kMalformedRecord,
                              strcat_args("policy frame ", seq,
                                          " carries trailing bytes"));
            }
            return Status();
        });
    if (!report.status.ok())
        return report.status;
    if (out->sites.size() != declared_sites) {
        return Status(StatusCode::kTruncated,
                      strcat_args("policy declares ", declared_sites,
                                  " sites but carries ",
                                  out->sites.size()));
    }
    return Status();
}

std::string
StaticPolicy::to_string() const
{
    std::ostringstream os;
    std::size_t resolved = 0;
    for (const IndirectSite& site : sites)
        resolved += site.resolved ? 1 : 0;
    os << "static policy: " << sites.size() << " indirect sites ("
       << resolved << " resolved), fallback set " << fallback.size()
       << " targets" << (unbounded_store ? ", unbounded stores" : "")
       << "\n";
    for (const IndirectSite& site : sites) {
        os << "  " << (site.is_call ? "callr" : "jmpr ") << " @ "
           << hex(site.site);
        if (site.resolved) {
            os << " -> {";
            for (std::size_t i = 0; i < site.targets.size(); ++i)
                os << (i != 0 ? ", " : "") << hex(site.targets[i]);
            os << "}";
        } else {
            os << " -> fallback";
        }
        os << "\n";
    }
    const auto render = [&os](const char* name,
                              const std::vector<Region>& regions) {
        os << "  " << name << ":";
        for (const Region& r : regions)
            os << " [" << hex(r.begin) << ", " << hex(r.end) << ")";
        os << "\n";
    };
    render("code", code);
    render("written", written);
    render("jit", jit);
    return os.str();
}

PolicyConfig
guest_policy_config()
{
    namespace k = rsafe::kernel;
    PolicyConfig config;
    config.memory.executable = {{k::kKernelCodeBase, k::kKernelCodeLimit},
                                {k::kUserCodeBase, k::kUserCodeLimit}};
    config.memory.writable = {
        {k::kIvtBase, k::kKernelCodeBase},
        {k::kKernelDataBase, k::kKernelDataLimit},
        {k::kTaskStackBase,
         k::kTaskStackBase + k::kMaxTasks * k::kTaskStackSize},
        // The JIT tail is writable by design (runtime code generation).
        {k::kJitRegionBase, k::kJitRegionLimit},
        {k::kUserDataBase, k::kUserDataLimit},
        {k::kWorkingSetBase, k::kWorkingSetLimit},
    };
    config.stacks = {{k::kTaskStackBase,
                      k::kTaskStackBase + k::kMaxTasks * k::kTaskStackSize}};
    config.jit = {{k::kJitRegionBase, k::kJitRegionLimit}};
    config.tables = {{k::kDispatchTableBase, k::kDispatchTableLimit}};
    return config;
}

StaticPolicy
build_policy(const std::vector<const isa::Image*>& images,
             const PolicyConfig& config)
{
    std::vector<DecodedImage> decoded;
    decoded.reserve(images.size());
    for (const isa::Image* image : images) {
        if (image == nullptr)
            fatal("build_policy: null image");
        decoded.emplace_back(*image);
    }
    std::vector<Cfg> cfgs;
    cfgs.reserve(decoded.size());
    for (const DecodedImage& d : decoded)
        cfgs.emplace_back(d);
    std::vector<const Cfg*> cfg_ptrs;
    cfg_ptrs.reserve(cfgs.size());
    for (const Cfg& cfg : cfgs)
        cfg_ptrs.push_back(&cfg);

    ValueSetConfig vs_config;
    vs_config.memory = config.memory;
    vs_config.stacks = config.stacks;
    vs_config.tables = config.tables;
    ValueSetResult vs = analyze_value_sets(cfg_ptrs, vs_config);

    StaticPolicy policy;
    policy.sites = std::move(vs.sites);
    policy.fallback = std::move(vs.fallback);
    policy.written = std::move(vs.written);
    policy.unbounded_store = vs.unbounded_store;
    policy.jit = config.jit;

    std::vector<Region> code;
    for (const isa::Image* image : images) {
        if (image->size() == 0)
            continue;
        code.push_back(Region{page_base(image->base()),
                              page_base(image->end() - 1) + kPageSize});
    }
    std::sort(code.begin(), code.end(),
              [](const Region& a, const Region& b) {
                  return a.begin != b.begin ? a.begin < b.begin
                                            : a.end < b.end;
              });
    for (const Region& r : code) {
        if (!policy.code.empty() && r.begin <= policy.code.back().end)
            policy.code.back().end = std::max(policy.code.back().end, r.end);
        else
            policy.code.push_back(r);
    }
    return policy;
}

}  // namespace rsafe::analysis
