#ifndef RSAFE_ANALYSIS_CFG_H_
#define RSAFE_ANALYSIS_CFG_H_

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "analysis/decoded_image.h"
#include "common/types.h"
#include "isa/encoding.h"
#include "isa/program.h"

/**
 * @file
 * Control-flow-graph recovery over a guest image.
 *
 * The recoverer decodes every executable slot (via DecodedImage), splits
 * the instruction stream into basic blocks at the classic leader points
 * (image entry, branch/jump/call targets, instructions following a
 * control transfer, address-taken code constants), and attaches typed
 * successor edges. Reachability is computed from the structural roots
 * (image base, declared function entries, address-taken code constants);
 * unreached blocks that carry a symbol are then promoted to "external
 * entries" — continuation points the embedder enters from outside the
 * image, such as the kernel's host-seeded finish_kthread — and
 * reachability is re-propagated until a fixpoint.
 */

namespace rsafe::analysis {

/** How control reaches a successor block. */
enum class EdgeKind {
    kFallThrough,    ///< sequential successor / untaken branch
    kBranch,         ///< taken conditional branch
    kJump,           ///< unconditional direct jump
    kCall,           ///< direct call target
    kCallReturn,     ///< continuation after a call/callr returns
    kSyscallReturn,  ///< continuation after the kernel irets
};

/** @return a short name for @p kind (e.g., "call"). */
const char* edge_kind_name(EdgeKind kind);

/** A typed successor edge. */
struct Edge {
    Addr target = 0;
    EdgeKind kind = EdgeKind::kFallThrough;
};

/** One recovered basic block: slots [first_slot, first_slot+instr_count). */
struct BasicBlock {
    Addr begin = 0;
    Addr end = 0;  ///< one past the last byte
    std::size_t first_slot = 0;
    std::size_t instr_count = 0;
    std::vector<Edge> succs;
    bool reachable = false;
    bool external_entry = false;  ///< symbol-bearing orphan entry point
};

/**
 * Per-register constant state used by the analyses to fold the
 * ldi/ldiu/mov/addi chains the assembler emits for absolute addresses.
 * State is tracked flow-insensitively within a basic block (reset at
 * block entry), which is exactly the lifetime of the assembler's
 * materialize-then-use idiom.
 */
struct RegState {
    std::array<std::optional<std::uint64_t>, isa::kNumRegs> regs;

    /** Fold @p instr into the state (clobbers non-foldable defs). */
    void apply(const isa::Instr& instr);

    /** @return the known constant in register @p reg, if any. */
    std::optional<std::uint64_t> get(std::uint8_t reg) const
    {
        return regs[reg];
    }
};

/** The recovered control-flow graph of one image. */
class Cfg {
  public:
    explicit Cfg(const DecodedImage& decoded);

    /** @return all blocks in address order. */
    const std::vector<BasicBlock>& blocks() const { return blocks_; }

    /** @return the block starting exactly at @p addr, or nullptr. */
    const BasicBlock* block_starting(Addr addr) const;

    /** @return the block containing @p addr, or nullptr. */
    const BasicBlock* block_containing(Addr addr) const;

    /** @return sorted unique in-image direct call targets. */
    const std::vector<Addr>& call_targets() const { return call_targets_; }

    /**
     * @return sorted unique aligned in-image code addresses materialized
     * by ldi (address-taken code: continuation/handler pointers).
     */
    const std::vector<Addr>& address_taken() const { return address_taken_; }

    /** @return entries promoted from symbol-bearing orphan blocks. */
    const std::vector<Addr>& external_entries() const
    {
        return external_entries_;
    }

    /** @return the decode walk this CFG was built from. */
    const DecodedImage& decoded() const { return *decoded_; }

  private:
    void compute_leaders();
    void build_blocks();
    void compute_reachability();
    void mark_reachable_from(Addr root);

    const DecodedImage* decoded_;
    std::vector<BasicBlock> blocks_;
    std::vector<Addr> call_targets_;
    std::vector<Addr> address_taken_;
    std::vector<Addr> external_entries_;
    std::vector<bool> is_leader_;  ///< indexed by slot
};

}  // namespace rsafe::analysis

#endif  // RSAFE_ANALYSIS_CFG_H_
