#ifndef RSAFE_ANALYSIS_STACK_DISCIPLINE_H_
#define RSAFE_ANALYSIS_STACK_DISCIPLINE_H_

#include <vector>

#include "analysis/cfg.h"
#include "analysis/lints.h"
#include "common/types.h"

/**
 * @file
 * Static shadow-stack discipline and Ret/Tar whitelist derivation.
 *
 * Every declared function is walked along its acyclic CFG paths with an
 * abstract stack: a `push` pushes the (possibly constant) register value,
 * a `pop` pops, `addsp` adjusts by whole slots, and `setsp` marks the
 * stack foreign (the kernel's single stack-switch point). A `ret` must
 * then either pop the caller's return address (balanced frame), pop a
 * constant code pointer the function planted itself, or execute on a
 * foreign stack — the last two are exactly the paper's *non-procedural
 * returns* (Section 4.4), and their sites/targets are the derived Ret/Tar
 * whitelists. Anything else is a call/ret imbalance lint error.
 *
 * Derived Tar targets are the code constants the image itself plants in
 * stack memory (push or store through a non-constant base) plus the
 * external continuation entries the CFG promoted (e.g., the kernel's
 * host-seeded finish_kthread).
 */

namespace rsafe::analysis {

/** The whitelists recovered from the image. */
struct WhitelistFacts {
    std::vector<Addr> ret_whitelist;  ///< non-procedural return sites
    std::vector<Addr> tar_whitelist;  ///< their legal targets
};

/** Result of the discipline walk. */
struct StackDisciplineResult {
    WhitelistFacts whitelist;
    std::vector<Finding> findings;
};

/** Walk every declared function of @p cfg's image. */
StackDisciplineResult analyze_stack_discipline(const Cfg& cfg);

}  // namespace rsafe::analysis

#endif  // RSAFE_ANALYSIS_STACK_DISCIPLINE_H_
