#ifndef RSAFE_ANALYSIS_POLICY_H_
#define RSAFE_ANALYSIS_POLICY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/value_set.h"
#include "common/status.h"
#include "common/types.h"
#include "isa/program.h"

/**
 * @file
 * The static policy table: the ahead-of-time product the online
 * detectors consume.
 *
 * A StaticPolicy packages the value-set pass results for one image group
 * (the guest kernel plus every trusted user image that will run in the
 * recorded VM) into a single serializable artifact:
 *
 *  - per-indirect-site CFI target sets plus the shared fallback set,
 *  - the static W^X map (code page regions vs statically writable
 *    regions), and
 *  - the declared JIT regions, where runtime code generation is policy
 *    rather than attack.
 *
 * The table rides the hardened CRC32C wire format as its own
 * PayloadKind (kPolicyTable), so policies can be generated offline by
 * `rsafe-analyze --emit-policy`, checked in as goldens, and loaded by
 * the detector framework with the same truncation/corruption discipline
 * as the input log.
 */

namespace rsafe::analysis {

/** Shape of the guest address space the policy build analyzes. */
struct PolicyConfig {
    /** Declared writable/executable regions. */
    MemoryMap memory;
    /** Architectural stack regions. */
    std::vector<Region> stacks;
    /** Regions where runtime code generation is sanctioned. */
    std::vector<Region> jit;
    /** Write-disciplined function-pointer table regions (see
     *  ValueSetConfig::tables). */
    std::vector<Region> tables;
};

/** The serializable static policy for one image group. */
struct StaticPolicy {
    /** Per-site CFI table, sorted by site pc. */
    std::vector<IndirectSite> sites;
    /** Conservative any-site target set (see ValueSetResult::fallback). */
    std::vector<Addr> fallback;
    /** Page-aligned code regions (image extents). */
    std::vector<Region> code;
    /** Page-aligned regions some reachable store can write. */
    std::vector<Region> written;
    /** Declared JIT regions; entering one at its base is sanctioned. */
    std::vector<Region> jit;
    /** A reachable store escaped the declared writable map. */
    bool unbounded_store = false;

    /** @return the CFI site record for @p pc, or nullptr. */
    const IndirectSite* find_site(Addr pc) const;

    /** @return true when @p target is in the shared fallback set. */
    bool fallback_contains(Addr target) const;

    /** @return the JIT region containing @p addr, or nullptr. */
    const Region* jit_region_of(Addr addr) const;

    /** Serialize on the wire format (PayloadKind::kPolicyTable). */
    std::vector<std::uint8_t> serialize() const;

    /** Strict decode of @p bytes into @p out; never throws. */
    static Status deserialize(const std::vector<std::uint8_t>& bytes,
                              StaticPolicy* out);

    /** Multi-line human-readable rendering (CLI output). */
    std::string to_string() const;

    bool operator==(const StaticPolicy&) const = default;
};

/**
 * Build the static policy for @p images under @p config: recover each
 * image's CFG, run the value-set pass across the group, and derive the
 * W^X code map from the image extents.
 */
StaticPolicy build_policy(const std::vector<const isa::Image*>& images,
                          const PolicyConfig& config);

/**
 * The standard guest PolicyConfig from kernel/layout.h: the full
 * writable map (kernel data, task stacks, user data, working set, JIT
 * tail), the task-stack region, and the declared JIT region.
 */
PolicyConfig guest_policy_config();

}  // namespace rsafe::analysis

#endif  // RSAFE_ANALYSIS_POLICY_H_
