#include "analysis/stack_discipline.h"

#include <algorithm>
#include <optional>
#include <set>
#include <tuple>

#include "common/log.h"

namespace rsafe::analysis {

using isa::Opcode;

namespace {

std::string
hex(Addr addr)
{
    return strcat_args("0x", std::hex, addr);
}

/** @return true if @p value is an aligned address inside the image. */
bool
is_code_addr(const DecodedImage& di, std::uint64_t value)
{
    return di.index_of(value).has_value();
}

/** One abstract machine state at a block entry. */
struct WalkState {
    std::size_t block = 0;  ///< index into cfg.blocks()
    int height = 0;         ///< pushed slots since function entry
    bool foreign = false;   ///< a setsp switched stacks on this path
    std::vector<std::optional<std::uint64_t>> stack;  ///< pushed values
    RegState regs;
};

/** Bound on distinct (block, height, foreign) states per function. */
constexpr std::size_t kMaxStatesPerFunction = 4096;

class FunctionWalker {
  public:
    FunctionWalker(const Cfg& cfg, const std::string& name, Addr begin,
                   Addr end, StackDisciplineResult* out)
        : cfg_(cfg), name_(name), begin_(begin), end_(end), out_(out)
    {
    }

    void run();

  private:
    void step(WalkState state);
    void error(Addr addr, const std::string& message)
    {
        out_->findings.push_back(
            {Rule::kCallRetImbalance, Severity::kError, addr, message});
    }

    const Cfg& cfg_;
    const std::string& name_;
    Addr begin_;
    Addr end_;
    StackDisciplineResult* out_;
    std::set<std::tuple<std::size_t, int, bool>> visited_;
    bool budget_reported_ = false;
};

void
FunctionWalker::run()
{
    const BasicBlock* entry = cfg_.block_starting(begin_);
    if (entry == nullptr)
        return;  // bounds verification reports this separately
    WalkState state;
    state.block =
        static_cast<std::size_t>(entry - cfg_.blocks().data());
    step(std::move(state));
}

void
FunctionWalker::step(WalkState state)
{
    if (!visited_.insert({state.block, state.height, state.foreign}).second)
        return;
    if (visited_.size() > kMaxStatesPerFunction) {
        if (!budget_reported_) {
            budget_reported_ = true;
            out_->findings.push_back(
                {Rule::kCallRetImbalance, Severity::kWarning, begin_,
                 strcat_args("function '", name_,
                             "' exceeded the acyclic-path state budget; "
                             "discipline only partially checked")});
        }
        return;
    }

    const BasicBlock& block = cfg_.blocks()[state.block];
    const DecodedImage& di = cfg_.decoded();

    auto push_value = [&state](std::optional<std::uint64_t> value) {
        state.stack.push_back(value);
        ++state.height;
    };
    auto pop_value = [&state]() {
        state.stack.pop_back();
        --state.height;
    };

    for (std::size_t k = 0; k < block.instr_count; ++k) {
        const Slot& slot = di[block.first_slot + k];
        const isa::Instr& instr = slot.instr;
        const bool is_last = k + 1 == block.instr_count;

        switch (instr.op) {
          case Opcode::kPush:
            push_value(state.regs.get(instr.rs1));
            break;
          case Opcode::kPop:
            if (state.foreign) {
                // Contents of a switched-to stack are unknowable here.
                break;
            }
            if (state.stack.empty()) {
                error(slot.addr,
                      strcat_args("pop at ", hex(slot.addr), " in '", name_,
                                  "' consumes the caller's frame"));
                return;
            }
            pop_value();
            break;
          case Opcode::kAddsp: {
            const std::int64_t delta = instr.simm();
            if (delta % static_cast<std::int64_t>(kInstrBytes) != 0) {
                error(slot.addr,
                      strcat_args("addsp at ", hex(slot.addr),
                                  " adjusts by a non-slot multiple"));
                return;
            }
            std::int64_t slots = -delta / 8;  // negative delta grows
            if (state.foreign)
                break;
            for (; slots > 0; --slots)
                push_value(std::nullopt);
            for (; slots < 0; ++slots) {
                if (state.stack.empty()) {
                    error(slot.addr,
                          strcat_args("addsp at ", hex(slot.addr), " in '",
                                      name_,
                                      "' frees the caller's frame"));
                    return;
                }
                pop_value();
            }
            break;
          }
          case Opcode::kSetsp:
            // The stack-switch point: whatever tops the *current* stack is
            // the continuation the resumed path will return through.
            if (!state.foreign && !state.stack.empty() &&
                state.stack.back() &&
                is_code_addr(di, *state.stack.back())) {
                out_->whitelist.tar_whitelist.push_back(*state.stack.back());
            }
            state.foreign = true;
            state.stack.clear();
            state.height = 0;
            break;
          case Opcode::kRet:
            if (state.foreign) {
                out_->whitelist.ret_whitelist.push_back(slot.addr);
            } else if (!state.stack.empty()) {
                const auto top = state.stack.back();
                if (top && is_code_addr(di, *top)) {
                    // Returns through a code pointer the function planted:
                    // a non-procedural return with a known target.
                    out_->whitelist.ret_whitelist.push_back(slot.addr);
                    out_->whitelist.tar_whitelist.push_back(*top);
                } else {
                    error(slot.addr,
                          strcat_args("ret at ", hex(slot.addr), " in '",
                                      name_, "' pops an in-function value (",
                                      state.height,
                                      " slots above the return address)"));
                }
            }
            return;
          case Opcode::kIret:
            if (!state.foreign && !state.stack.empty()) {
                error(slot.addr,
                      strcat_args("iret at ", hex(slot.addr), " in '", name_,
                                  "' leaves ", state.height,
                                  " slots on the frame"));
            }
            return;
          case Opcode::kJmpr:
            if (!state.foreign && !state.stack.empty()) {
                error(slot.addr,
                      strcat_args("jmpr at ", hex(slot.addr), " in '", name_,
                                  "' leaves ", state.height,
                                  " slots on the frame"));
            }
            return;
          case Opcode::kHalt:
            return;
          default:
            break;
        }
        state.regs.apply(instr);

        if (is_last) {
            for (const Edge& edge : block.succs) {
                if (edge.kind == EdgeKind::kCall)
                    continue;  // callee balances its own frame
                const bool inside =
                    edge.target >= begin_ && edge.target < end_;
                if (!inside) {
                    // Tail transfer out of the function.
                    if (!state.foreign && !state.stack.empty()) {
                        error(slot.addr,
                              strcat_args("transfer at ", hex(slot.addr),
                                          " leaves '", name_, "' with ",
                                          state.height,
                                          " slots on the frame"));
                    }
                    continue;
                }
                const BasicBlock* succ = cfg_.block_starting(edge.target);
                if (succ == nullptr)
                    continue;  // target lints report this separately
                WalkState next = state;
                next.block =
                    static_cast<std::size_t>(succ - cfg_.blocks().data());
                step(std::move(next));
            }
        }
    }
}

}  // namespace

StackDisciplineResult
analyze_stack_discipline(const Cfg& cfg)
{
    StackDisciplineResult result;
    const DecodedImage& di = cfg.decoded();
    const isa::Image& image = di.image();

    // Tar candidates planted by straight-line code: a constant code
    // pointer pushed, or stored through a non-constant base (a stack being
    // seeded). Constant-base stores are handler-table installs, not
    // return targets.
    for (const BasicBlock& block : cfg.blocks()) {
        if (!block.reachable)
            continue;
        RegState state;
        for (std::size_t k = 0; k < block.instr_count; ++k) {
            const isa::Instr& instr = di[block.first_slot + k].instr;
            if (instr.op == Opcode::kPush) {
                if (const auto value = state.get(instr.rs1);
                    value && is_code_addr(di, *value)) {
                    result.whitelist.tar_whitelist.push_back(*value);
                }
            } else if (instr.op == Opcode::kSt) {
                const auto value = state.get(instr.rs2);
                if (value && is_code_addr(di, *value) &&
                    !state.get(instr.rs1)) {
                    result.whitelist.tar_whitelist.push_back(*value);
                }
            }
            state.apply(instr);
        }
    }

    // External continuation entries are targets the embedder seeds.
    for (const Addr addr : cfg.external_entries())
        result.whitelist.tar_whitelist.push_back(addr);

    // Walk every declared function.
    for (const auto& [name, range] : image.functions()) {
        FunctionWalker walker(cfg, name, range.begin, range.end, &result);
        walker.run();
    }

    auto dedup = [](std::vector<Addr>* values) {
        std::sort(values->begin(), values->end());
        values->erase(std::unique(values->begin(), values->end()),
                      values->end());
    };
    dedup(&result.whitelist.ret_whitelist);
    dedup(&result.whitelist.tar_whitelist);
    return result;
}

}  // namespace rsafe::analysis
