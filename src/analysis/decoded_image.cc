#include "analysis/decoded_image.h"

namespace rsafe::analysis {

DecodedImage::DecodedImage(const isa::Image& image) : image_(&image)
{
    const std::size_t count = image.size() / kInstrBytes;
    slots_.reserve(count);
    const std::uint8_t* bytes = image.bytes().data();
    for (std::size_t i = 0; i < count; ++i) {
        Slot slot;
        slot.addr = image.base() + i * kInstrBytes;
        slot.valid = isa::decode(bytes + i * kInstrBytes, &slot.instr);
        slots_.push_back(slot);
    }
}

std::optional<std::size_t>
DecodedImage::index_of(Addr addr) const
{
    if (addr < image_->base())
        return std::nullopt;
    const Addr off = addr - image_->base();
    if (off % kInstrBytes != 0)
        return std::nullopt;
    const std::size_t index = off / kInstrBytes;
    if (index >= slots_.size())
        return std::nullopt;
    return index;
}

const Slot*
DecodedImage::at(Addr addr) const
{
    const auto index = index_of(addr);
    return index ? &slots_[*index] : nullptr;
}

std::vector<RetRun>
ret_runs(const DecodedImage& decoded, std::size_t max_instrs)
{
    std::vector<RetRun> runs;
    for (std::size_t i = 0; i < decoded.size(); ++i) {
        const Slot& slot = decoded[i];
        if (!slot.valid || slot.instr.op != isa::Opcode::kRet)
            continue;
        for (std::size_t len = 1; len <= max_instrs && len <= i + 1; ++len) {
            const std::size_t start = i - (len - 1);
            RetRun run;
            run.addr = decoded.addr_of(start);
            bool ok = true;
            for (std::size_t j = start; j <= i; ++j) {
                if (!decoded[j].valid) {
                    ok = false;
                    break;
                }
                run.instrs.push_back(decoded[j].instr);
            }
            if (ok)
                runs.push_back(std::move(run));
        }
    }
    return runs;
}

}  // namespace rsafe::analysis
