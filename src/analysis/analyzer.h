#ifndef RSAFE_ANALYSIS_ANALYZER_H_
#define RSAFE_ANALYSIS_ANALYZER_H_

#include <string>
#include <vector>

#include "analysis/function_bounds.h"
#include "analysis/lints.h"
#include "analysis/stack_discipline.h"
#include "common/types.h"
#include "isa/program.h"
#include "kernel/kernel_builder.h"

/**
 * @file
 * The top-level static analyzer: one call recovers the CFG, infers and
 * cross-checks function bounds, derives the Ret/Tar whitelists, measures
 * the gadget surface, and runs every lint rule over a guest image. The
 * `rsafe-analyze` CLI and tests/test_analysis.cc are thin shells over
 * analyze(); kernel_analysis_config() packages the declared facts of a
 * built guest kernel so the analyzer can verify them.
 */

namespace rsafe::analysis {

/** What to analyze an image against. */
struct AnalysisConfig {
    /** Memory-layout facts for the W^X lints (empty: image extent). */
    MemoryMap memory;

    /** Declared Ret/Tar whitelists to verify (empty: skip the check). */
    std::vector<Addr> declared_ret_whitelist;
    std::vector<Addr> declared_tar_whitelist;

    /** Cross-check inferred bounds against Image::functions(). */
    bool verify_function_symbols = true;

    /** Longest ret-terminated run counted by the gadget surface. */
    std::size_t gadget_max_instrs = 4;
};

/** Gadget-surface density of one function. */
struct FunctionGadgets {
    std::string name;
    Addr begin = 0;
    std::size_t instr_count = 0;
    std::size_t runs = 0;    ///< ret-terminated runs starting inside
    double density = 0.0;    ///< runs / instructions
};

/** The image-wide gadget surface (Appendix A's raw material). */
struct GadgetSurface {
    std::size_t ret_sites = 0;
    std::size_t total_runs = 0;
    std::size_t max_run_instrs = 0;   ///< the configured enumeration bound
    std::size_t unattributed_runs = 0;  ///< runs outside every function
    std::vector<FunctionGadgets> per_function;  ///< densest first
};

/** Everything analyze() recovers about one image. */
struct AnalysisReport {
    Addr image_base = 0;
    Addr image_end = 0;
    std::size_t instr_slots = 0;
    std::size_t valid_slots = 0;
    std::size_t block_count = 0;
    std::size_t reachable_blocks = 0;

    std::vector<InferredFunction> functions;
    bool bounds_verified = false;  ///< cross-check ran and found no mismatch

    WhitelistFacts whitelist;
    bool whitelist_checked = false;  ///< declared lists were provided
    bool whitelist_verified = false; ///< derived == declared

    GadgetSurface gadgets;
    std::vector<Finding> findings;

    /** @return number of findings at @p severity. */
    std::size_t count(Severity severity) const;

    /** @return true if no lint errors were found. */
    bool ok() const { return count(Severity::kError) == 0; }
};

/** Run the full analysis over @p image. */
AnalysisReport analyze(const isa::Image& image, const AnalysisConfig& config);

/**
 * @return the config that checks a built guest kernel: the kernel
 * code/data/stack layout of kernel/layout.h and the GuestKernel's declared
 * whitelist PCs.
 */
AnalysisConfig kernel_analysis_config(const kernel::GuestKernel& kernel);

/** Render @p report as a human-readable multi-line summary. */
std::string render_text(const AnalysisReport& report);

/** Render @p report as JSON (schema documented in README.md). */
std::string render_json(const AnalysisReport& report);

}  // namespace rsafe::analysis

#endif  // RSAFE_ANALYSIS_ANALYZER_H_
