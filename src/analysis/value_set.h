#ifndef RSAFE_ANALYSIS_VALUE_SET_H_
#define RSAFE_ANALYSIS_VALUE_SET_H_

#include <vector>

#include "analysis/cfg.h"
#include "analysis/lints.h"
#include "common/types.h"

/**
 * @file
 * Interprocedural value-set analysis over recovered CFGs.
 *
 * The pass answers two static questions about a set of guest images that
 * will run together:
 *
 *  1. For every indirect branch and indirect call, what targets can the
 *     transfer legally take? (the per-site CFI policy)
 *  2. Which pages can any reachable store write? (the static half of the
 *     W^X map; the other half — code pages — falls out of the image
 *     extents.)
 *
 * The register domain is deliberately simple: within a basic block each
 * register is a constant, a pointer into one declared memory region, a
 * value loaded from a statically-known table slot, or unknown. The
 * interprocedural component is the *store map*: constant-address stores
 * anywhere in any image feed the value sets of constant-address loads
 * anywhere else, which is exactly the shape of the assembler's
 * materialize-table-slot-then-dispatch idiom.
 *
 * Soundness discipline: any store whose address cannot be bounded widens
 * the analysis — a region-classified store widens every slot in that
 * region, and a fully unknown store widens every slot everywhere. A site
 * whose operand cannot be proven constant or table-loaded falls back to
 * the shared conservative target set (function entries, address-taken
 * code, external entries and call continuations across *all* images),
 * which over-approximates every control transfer a well-formed program
 * can make.
 */

namespace rsafe::analysis {

/** The statically resolved target set of one indirect transfer site. */
struct IndirectSite {
    Addr site = 0;       ///< pc of the jmpr/callr instruction
    bool is_call = false;
    /**
     * True when the analysis bounded the operand: @ref targets is the
     * exact legal set. False when the site degrades to the shared
     * fallback set (ValueSetResult::fallback) and @ref targets is empty.
     */
    bool resolved = false;
    std::vector<Addr> targets;  ///< sorted unique; empty unless resolved

    bool operator==(const IndirectSite&) const = default;
};

/** Everything the value-set pass derives from one image group. */
struct ValueSetResult {
    /** Every reachable indirect site across all images, sorted by pc. */
    std::vector<IndirectSite> sites;

    /**
     * Conservative any-indirect-transfer target set: function entries,
     * address-taken code constants, external entries and call/syscall
     * continuations, unioned across every analyzed image. Sorted unique.
     */
    std::vector<Addr> fallback;

    /**
     * Page-aligned regions some reachable store can write (the static
     * W^X "written" map). Sorted, coalesced, non-overlapping.
     */
    std::vector<Region> written;

    /**
     * True when a reachable store had a fully unknown address, forcing
     * @ref written to cover every declared writable region.
     */
    bool unbounded_store = false;

    /** @return the site record for @p pc, or nullptr. */
    const IndirectSite* find_site(Addr pc) const;
};

/** Declared memory shape consumed by the pass. */
struct ValueSetConfig {
    /** Declared writable/executable regions (store classification). */
    MemoryMap memory;
    /** Architectural stack regions (push/call spill classification). */
    std::vector<Region> stacks;
    /**
     * Declared function-pointer table regions (e.g. the layout's
     * dispatch-table slice). Table slots carry a write discipline: the
     * program stores into them only through materialized constant
     * addresses, never through computed pointers — the moral equivalent
     * of keeping vtables/GOT in relro pages. Under that declaration a
     * slot in a table region stays trackable even when some store
     * elsewhere in the group has an unboundable address (pointer-argument
     * stores such as jmp_buf spills), which would otherwise widen every
     * slot. The W^X written map ignores this declaration and stays fully
     * conservative.
     */
    std::vector<Region> tables;
};

/**
 * Run the pass over @p cfgs (one per image loaded into the same guest).
 * The CFGs must outlive the call only for its duration; the result owns
 * its data.
 */
ValueSetResult analyze_value_sets(const std::vector<const Cfg*>& cfgs,
                                  const ValueSetConfig& config);

}  // namespace rsafe::analysis

#endif  // RSAFE_ANALYSIS_VALUE_SET_H_
