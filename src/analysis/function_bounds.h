#ifndef RSAFE_ANALYSIS_FUNCTION_BOUNDS_H_
#define RSAFE_ANALYSIS_FUNCTION_BOUNDS_H_

#include <string>
#include <vector>

#include "analysis/cfg.h"
#include "analysis/lints.h"
#include "common/types.h"
#include "core/jop_detector.h"

/**
 * @file
 * Function-bounds inference and symbol-table cross-checking.
 *
 * Entry points are recovered from the CFG (direct call targets) and from
 * the image symbol table; each function's extent runs from its entry to
 * the next code boundary (the next entry, address-taken continuation,
 * external entry, or the image end). The verifier then cross-checks the
 * inference against the declared Image::functions() ranges: every declared
 * function must be recovered with identical bounds, and every recovered
 * call target must be a declared entry — turning the hand-declared
 * metadata the JopDetector trusts into a verified invariant.
 */

namespace rsafe::analysis {

/** One inferred function. */
struct InferredFunction {
    Addr begin = 0;
    Addr end = 0;              ///< one past the last byte
    std::string name;          ///< symbol name if declared, else "fn_<hex>"
    bool is_call_target = false;  ///< recovered from a direct call
    bool is_declared = false;     ///< present in Image::functions()
};

/** The recovered function table of one image. */
class FunctionTable {
  public:
    /** Infer the table from @p cfg and its image's symbols. */
    static FunctionTable infer(const Cfg& cfg);

    /** @return inferred functions sorted by begin address. */
    const std::vector<InferredFunction>& functions() const
    {
        return functions_;
    }

    /** @return the function containing @p addr, or nullptr. */
    const InferredFunction* function_containing(Addr addr) const;

    /**
     * @return the inferred table in the exact shape the JopDetector's
     * analysis-backed constructor consumes.
     */
    std::vector<core::FunctionBounds> jop_bounds() const;

    /**
     * Cross-check the inference against the declared symbol table:
     * identical bounds for every declared function, every call target
     * declared, declared ranges inside the image. Returns error findings
     * for each disagreement (empty = verified).
     */
    std::vector<Finding> verify_against(const isa::Image& image) const;

  private:
    std::vector<InferredFunction> functions_;
};

}  // namespace rsafe::analysis

#endif  // RSAFE_ANALYSIS_FUNCTION_BOUNDS_H_
