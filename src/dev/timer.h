#ifndef RSAFE_DEV_TIMER_H_
#define RSAFE_DEV_TIMER_H_

#include <cstdint>

#include "common/random.h"
#include "common/types.h"

/**
 * @file
 * The virtual timestamp counter and periodic timer-tick interrupt source.
 *
 * rdtsc is the canonical synchronous non-deterministic event of Section
 * 7.3: the value depends on host wall-clock behaviour, so the recording
 * hypervisor traps it and logs the result. We model host behaviour as the
 * guest cycle count plus a seeded pseudo-random drift, which makes the
 * value unpredictable from guest state alone (so replay genuinely needs
 * the log) while keeping whole-simulation runs reproducible from seeds.
 *
 * The timer also raises the periodic tick interrupt that drives the guest
 * kernel's preemptive scheduler (an asynchronous event).
 */

namespace rsafe::dev {

/** Virtual TSC + periodic tick device. */
class Timer {
  public:
    /**
     * @param seed          seed for the host-drift PRNG.
     * @param tick_period   cycles between timer-tick interrupts
     *                      (0 disables ticking).
     */
    Timer(std::uint64_t seed, Cycles tick_period);

    /** Read the timestamp counter at guest cycle @p now (non-pure!). */
    std::uint64_t read_tsc(Cycles now);

    /** @return cycle of the next tick interrupt, or ~0 if disabled. */
    Cycles next_tick() const { return next_tick_; }

    /**
     * Consume a due tick.
     * @return true if a tick fired at or before @p now.
     */
    bool take_tick(Cycles now);

    /** @return the configured tick period in cycles. */
    Cycles tick_period() const { return tick_period_; }

  private:
    Rng rng_;
    Cycles tick_period_;
    Cycles next_tick_;
    std::uint64_t drift_ = 0;
};

}  // namespace rsafe::dev

#endif  // RSAFE_DEV_TIMER_H_
