#ifndef RSAFE_DEV_NIC_H_
#define RSAFE_DEV_NIC_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "common/random.h"
#include "common/types.h"

/**
 * @file
 * A virtual network interface with a synchronous, hypervisor-mediated
 * receive path.
 *
 * Per Section 7.3, network packet arrival at the physical NIC is
 * asynchronous, but the data is delivered to the guest at the boundary of
 * a synchronous VMExit: the guest polls a status register and then issues
 * a receive command, at which point the hypervisor copies the full packet
 * into the guest buffer and records its contents in the input log. Packet
 * content logging is what makes apache the highest log-rate benchmark in
 * Figure 6(a).
 */

namespace rsafe::dev {

/** One received network packet. */
struct Packet {
    std::vector<std::uint8_t> payload;
};

/** Virtual NIC: seeded traffic generator + RX queue. */
class Nic {
  public:
    /**
     * @param seed           traffic-generator seed.
     * @param mean_gap       mean cycles between packet arrivals
     *                       (0 disables traffic).
     * @param min_size       smallest packet payload in bytes.
     * @param max_size       largest packet payload in bytes.
     */
    Nic(std::uint64_t seed, Cycles mean_gap, std::size_t min_size,
        std::size_t max_size);

    /** Advance arrival generation up to guest cycle @p now. */
    void advance(Cycles now);

    /** @return number of queued received packets. */
    std::size_t rx_available() const { return rx_queue_.size(); }

    /** Pop the oldest queued packet; empty payload if none. */
    Packet rx_pop();

    /** Count a transmitted packet (payload is discarded). */
    void tx(std::size_t bytes);

    /** @return total packets ever queued. */
    std::uint64_t total_rx_packets() const { return total_rx_; }

    /** @return total payload bytes ever queued. */
    std::uint64_t total_rx_bytes() const { return total_rx_bytes_; }

    /** @return total packets transmitted by the guest. */
    std::uint64_t total_tx_packets() const { return total_tx_; }

  private:
    static constexpr std::size_t kMaxQueue = 64;

    Rng rng_;
    Cycles mean_gap_;
    std::size_t min_size_;
    std::size_t max_size_;
    Cycles next_arrival_;
    std::deque<Packet> rx_queue_;
    std::uint64_t total_rx_ = 0;
    std::uint64_t total_rx_bytes_ = 0;
    std::uint64_t total_tx_ = 0;
};

}  // namespace rsafe::dev

#endif  // RSAFE_DEV_NIC_H_
