#include "dev/timer.h"

namespace rsafe::dev {

Timer::Timer(std::uint64_t seed, Cycles tick_period)
    : rng_(seed),
      tick_period_(tick_period),
      next_tick_(tick_period == 0 ? ~static_cast<Cycles>(0) : tick_period)
{
}

std::uint64_t
Timer::read_tsc(Cycles now)
{
    // Host clock = guest cycles + accumulated drift. The drift accumulates
    // pseudo-randomly per read, modelling host-side preemption and clock
    // skew: successive reads are monotone but not a pure function of the
    // guest cycle count.
    drift_ += rng_.next_below(64);
    return now + drift_;
}

bool
Timer::take_tick(Cycles now)
{
    if (tick_period_ == 0 || now < next_tick_)
        return false;
    // Schedule the next tick relative to the one that fired so the tick
    // rate stays constant even if servicing was delayed.
    do {
        next_tick_ += tick_period_;
    } while (next_tick_ <= now);
    return true;
}

}  // namespace rsafe::dev
