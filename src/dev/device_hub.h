#ifndef RSAFE_DEV_DEVICE_HUB_H_
#define RSAFE_DEV_DEVICE_HUB_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.h"
#include "dev/blockdev.h"
#include "dev/nic.h"
#include "dev/timer.h"
#include "mem/disk.h"
#include "mem/phys_mem.h"

/**
 * @file
 * The virtual device hub: the single point through which the hypervisor
 * mediates all guest I/O (the "hypervisor-mediated I/O" model of Xen/QEMU
 * assumed in Section 2.1).
 *
 * The hub owns the virtual timer, NIC, and DMA disk controller, defines
 * the guest-visible port/MMIO register map, and reports asynchronous
 * events (timer ticks, disk completions) to the hypervisor. Mediated
 * accesses return their DMA side effects explicitly so the recorder can
 * log exactly the bytes that were copied into the guest.
 */

namespace rsafe::dev {

/** Guest pio port numbers. */
enum Port : std::uint16_t {
    kPortDiskStatus = 0x10,   ///< in: 1 if the controller is idle
    kPortDiskBlock = 0x11,    ///< out: block number
    kPortDiskAddr = 0x12,     ///< out: guest DMA buffer address
    kPortDiskGoRead = 0x13,   ///< out: start disk -> memory transfer
    kPortDiskGoWrite = 0x14,  ///< out: start memory -> disk transfer
    kPortConsole = 0x20,      ///< out: debug console byte (discarded)
};

/** NIC MMIO register offsets from kMmioBase. */
enum NicReg : Addr {
    kNicStatus = 0x00,   ///< read: number of queued RX packets
    kNicRxBuf = 0x08,    ///< write: guest buffer; pops + DMAs a packet
    kNicRxLen = 0x10,    ///< read: length of the packet just received
    kNicTx = 0x18,       ///< write: transmit a packet of this length
};

/** Base guest address of the MMIO window. */
inline constexpr Addr kMmioBase = 0xF0000000ULL;

/** Size of the MMIO window in bytes. */
inline constexpr Addr kMmioSize = 0x1000;

/** @return true if @p addr falls in the MMIO window. */
constexpr bool
is_mmio(Addr addr)
{
    return addr >= kMmioBase && addr < kMmioBase + kMmioSize;
}

/** Guest interrupt vectors. */
enum IrqVector : std::uint8_t {
    kIrqTimer = 0,
    kIrqDisk = 1,
    kNumIrqVectors = 2,
};

/** DMA bytes copied into guest memory as a side effect of an access. */
struct IoSideEffect {
    bool has_dma = false;
    Addr dma_addr = 0;
    std::vector<std::uint8_t> dma_data;
};

/** An asynchronous device event to be turned into a guest interrupt. */
struct AsyncEvent {
    std::uint8_t vector = 0;
    /** For disk-read completions: the DMA to apply before injection. */
    std::optional<DiskCompletion> disk;
};

/** Configuration of the device complement. */
struct DeviceConfig {
    std::uint64_t seed = 1;
    Cycles timer_tick_period = 500'000;  ///< 0 disables the tick
    Cycles nic_mean_gap = 0;             ///< 0 disables traffic
    std::size_t nic_min_packet = 64;
    std::size_t nic_max_packet = 1500;
    Cycles disk_mean_latency = 80'000;
    std::size_t disk_blocks = 4096;
};

/** The device complement of one virtual machine. */
class DeviceHub {
  public:
    /**
     * @param config  device parameters and seeds.
     * @param mem     guest memory, used only for DMA write-submission
     *                snapshots (reading the buffer the guest points at).
     */
    DeviceHub(const DeviceConfig& config, mem::PhysMem* mem);

    /** Mediated pio read. */
    Word io_read(std::uint16_t port, Cycles now);

    /** Mediated pio write (may capture a DMA write payload). */
    void io_write(std::uint16_t port, Word value, Cycles now);

    /** Mediated MMIO read. */
    Word mmio_read(Addr addr, Cycles now);

    /** Mediated MMIO write; NIC RX produces a DMA side effect. */
    IoSideEffect mmio_write(Addr addr, Word value, Cycles now);

    /** Read the virtual TSC (mediated rdtsc). */
    std::uint64_t read_tsc(Cycles now) { return timer_.read_tsc(now); }

    /** @return cycle of the next asynchronous device event, or ~0. */
    Cycles next_event_cycle() const;

    /** Consume one due asynchronous event at guest cycle @p now. */
    std::optional<AsyncEvent> take_event(Cycles now);

    /**
     * Force the in-flight disk transfer to complete immediately.
     * Used by the replayer, which owns event timing via the input log.
     */
    std::optional<DiskCompletion> force_disk_completion();

    /** Component access for tests and statistics. @{ */
    Timer& timer() { return timer_; }
    Nic& nic() { return nic_; }
    BlockDev& blockdev() { return blockdev_; }
    mem::Disk& disk() { return disk_; }
    const mem::Disk& disk() const { return disk_; }
    /** @} */

  private:
    mem::PhysMem* mem_;
    mem::Disk disk_;
    Timer timer_;
    Nic nic_;
    BlockDev blockdev_;
    std::size_t last_rx_len_ = 0;
};

}  // namespace rsafe::dev

#endif  // RSAFE_DEV_DEVICE_HUB_H_
