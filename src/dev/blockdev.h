#ifndef RSAFE_DEV_BLOCKDEV_H_
#define RSAFE_DEV_BLOCKDEV_H_

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "common/random.h"
#include "common/types.h"
#include "mem/disk.h"

/**
 * @file
 * A DMA block-storage controller.
 *
 * The guest programs a transfer through port I/O (block number, guest
 * buffer address, direction, go), the device completes it after a
 * pseudo-random latency, and completion is signalled by an asynchronous
 * interrupt — the paper's canonical asynchronous non-deterministic event
 * (Section 7.3). On a read completion the controller DMAs the block into
 * guest memory; those bytes are "data copied by virtual devices into the
 * guest" and must be logged for replay.
 */

namespace rsafe::dev {

/** One completed DMA transfer awaiting interrupt delivery. */
struct DiskCompletion {
    bool is_read = false;
    BlockNum block = 0;
    Addr guest_addr = 0;
    /** For reads: block contents to DMA into guest memory. */
    std::vector<std::uint8_t> data;
};

/** Checkpointable controller state (in-flight transfer, if any). */
struct BlockDevState {
    bool busy = false;
    bool is_read = false;
    BlockNum block = 0;
    Addr guest_addr = 0;
    std::vector<std::uint8_t> write_payload;
    BlockNum cmd_block = 0;
    Addr cmd_addr = 0;
};

/** DMA block-device controller wrapping a mem::Disk. */
class BlockDev {
  public:
    /**
     * @param disk          backing disk (owned by the VM, not the device).
     * @param seed          completion-latency PRNG seed.
     * @param mean_latency  mean cycles from "go" to completion.
     */
    BlockDev(mem::Disk* disk, std::uint64_t seed, Cycles mean_latency);

    /** Command registers (written via guest pio). @{ */
    void set_block(BlockNum block) { cmd_block_ = block; }
    void set_addr(Addr addr) { cmd_addr_ = addr; }
    BlockNum cmd_block() const { return cmd_block_; }
    Addr cmd_addr() const { return cmd_addr_; }
    /** @} */

    /**
     * Start a transfer at guest cycle @p now.
     * @param is_read        true: disk block -> guest memory.
     * @param write_payload  for writes: the kDiskBlockSize bytes to store
     *                       (captured at submission time).
     */
    void go(Cycles now, bool is_read,
            const std::vector<std::uint8_t>& write_payload = {});

    /** @return 1 if the device is idle and ready for a command. */
    Word status() const { return in_flight_ ? 0 : 1; }

    /** @return the cycle the in-flight transfer completes, or ~0. */
    Cycles next_completion() const;

    /**
     * Consume a completion due at or before @p now.
     * Write transfers are applied to the disk here (completion time).
     */
    std::optional<DiskCompletion> take_completion(Cycles now);

    /** @return total transfers completed. */
    std::uint64_t total_transfers() const { return total_transfers_; }

    /** Snapshot controller state for a checkpoint. */
    BlockDevState export_state() const;

    /** Restore controller state from a checkpoint. */
    void import_state(const BlockDevState& state);

  private:
    struct InFlight {
        bool is_read;
        BlockNum block;
        Addr guest_addr;
        Cycles done_at;
        std::vector<std::uint8_t> write_payload;
    };

    mem::Disk* disk_;
    Rng rng_;
    Cycles mean_latency_;
    BlockNum cmd_block_ = 0;
    Addr cmd_addr_ = 0;
    std::optional<InFlight> in_flight_;
    std::uint64_t total_transfers_ = 0;
};

}  // namespace rsafe::dev

#endif  // RSAFE_DEV_BLOCKDEV_H_
