#include "dev/nic.h"

namespace rsafe::dev {

Nic::Nic(std::uint64_t seed, Cycles mean_gap, std::size_t min_size,
         std::size_t max_size)
    : rng_(seed),
      mean_gap_(mean_gap),
      min_size_(min_size),
      max_size_(max_size),
      next_arrival_(mean_gap == 0 ? ~static_cast<Cycles>(0)
                                  : rng_.next_interval(double(mean_gap)))
{
}

void
Nic::advance(Cycles now)
{
    if (mean_gap_ == 0)
        return;
    while (next_arrival_ <= now) {
        if (rx_queue_.size() < kMaxQueue) {
            Packet pkt;
            const auto size = rng_.next_range(min_size_, max_size_);
            pkt.payload.resize(static_cast<std::size_t>(size));
            for (auto& byte : pkt.payload)
                byte = static_cast<std::uint8_t>(rng_.next() & 0xff);
            total_rx_bytes_ += pkt.payload.size();
            ++total_rx_;
            rx_queue_.push_back(std::move(pkt));
        }
        // Arrivals keep their cadence even when the queue is full (the
        // dropped packet is simply lost, as on a real NIC).
        next_arrival_ += rng_.next_interval(double(mean_gap_));
    }
}

Packet
Nic::rx_pop()
{
    if (rx_queue_.empty())
        return Packet{};
    Packet pkt = std::move(rx_queue_.front());
    rx_queue_.pop_front();
    return pkt;
}

void
Nic::tx(std::size_t bytes)
{
    (void)bytes;
    ++total_tx_;
}

}  // namespace rsafe::dev
