#include "dev/blockdev.h"

#include "common/log.h"

namespace rsafe::dev {

BlockDev::BlockDev(mem::Disk* disk, std::uint64_t seed, Cycles mean_latency)
    : disk_(disk), rng_(seed), mean_latency_(mean_latency)
{
    if (disk_ == nullptr)
        fatal("BlockDev: null disk");
}

void
BlockDev::go(Cycles now, bool is_read,
             const std::vector<std::uint8_t>& write_payload)
{
    if (in_flight_) {
        // Real controllers would flag an error; the guest driver always
        // polls status first, so treat this as a guest bug.
        warn("BlockDev: command issued while busy; dropping");
        return;
    }
    if (cmd_block_ >= disk_->num_blocks()) {
        warn("BlockDev: block out of range; dropping command");
        return;
    }
    InFlight flight;
    flight.is_read = is_read;
    flight.block = cmd_block_;
    flight.guest_addr = cmd_addr_;
    flight.done_at = now + rng_.next_interval(double(mean_latency_));
    if (!is_read) {
        if (write_payload.size() != kDiskBlockSize)
            fatal("BlockDev: write payload must be one block");
        flight.write_payload = write_payload;
    }
    in_flight_ = std::move(flight);
}

Cycles
BlockDev::next_completion() const
{
    return in_flight_ ? in_flight_->done_at : ~static_cast<Cycles>(0);
}

std::optional<DiskCompletion>
BlockDev::take_completion(Cycles now)
{
    if (!in_flight_ || in_flight_->done_at > now)
        return std::nullopt;
    DiskCompletion done;
    done.is_read = in_flight_->is_read;
    done.block = in_flight_->block;
    done.guest_addr = in_flight_->guest_addr;
    if (in_flight_->is_read) {
        done.data.resize(kDiskBlockSize);
        disk_->read_block(done.block, done.data.data());
    } else {
        disk_->write_block(done.block, in_flight_->write_payload.data());
    }
    in_flight_.reset();
    ++total_transfers_;
    return done;
}

BlockDevState
BlockDev::export_state() const
{
    BlockDevState state;
    state.cmd_block = cmd_block_;
    state.cmd_addr = cmd_addr_;
    if (in_flight_) {
        state.busy = true;
        state.is_read = in_flight_->is_read;
        state.block = in_flight_->block;
        state.guest_addr = in_flight_->guest_addr;
        state.write_payload = in_flight_->write_payload;
    }
    return state;
}

void
BlockDev::import_state(const BlockDevState& state)
{
    cmd_block_ = state.cmd_block;
    cmd_addr_ = state.cmd_addr;
    if (state.busy) {
        InFlight flight;
        flight.is_read = state.is_read;
        flight.block = state.block;
        flight.guest_addr = state.guest_addr;
        flight.write_payload = state.write_payload;
        // Completion timing is irrelevant on the replay side: the input
        // log dictates when the completion interrupt is injected.
        flight.done_at = ~static_cast<Cycles>(0);
        in_flight_ = std::move(flight);
    } else {
        in_flight_.reset();
    }
}

}  // namespace rsafe::dev
