#include "dev/device_hub.h"

#include "common/log.h"

namespace rsafe::dev {

DeviceHub::DeviceHub(const DeviceConfig& config, mem::PhysMem* mem)
    : mem_(mem),
      disk_(config.disk_blocks),
      timer_(config.seed * 3 + 1, config.timer_tick_period),
      nic_(config.seed * 5 + 2, config.nic_mean_gap, config.nic_min_packet,
           config.nic_max_packet),
      blockdev_(&disk_, config.seed * 7 + 3, config.disk_mean_latency)
{
    if (mem_ == nullptr)
        fatal("DeviceHub: null guest memory");
}

Word
DeviceHub::io_read(std::uint16_t port, Cycles now)
{
    switch (port) {
      case kPortDiskStatus:
        (void)now;
        return blockdev_.status();
      default:
        warn(strcat_args("DeviceHub: read of unknown port ", port));
        return 0;
    }
}

void
DeviceHub::io_write(std::uint16_t port, Word value, Cycles now)
{
    switch (port) {
      case kPortDiskBlock:
        blockdev_.set_block(value);
        break;
      case kPortDiskAddr:
        blockdev_.set_addr(value);
        break;
      case kPortDiskGoRead:
        blockdev_.go(now, /*is_read=*/true);
        break;
      case kPortDiskGoWrite: {
        // DMA write: snapshot the guest buffer at submission time.
        std::vector<std::uint8_t> payload(kDiskBlockSize);
        mem_->read_block(blockdev_.cmd_addr(), payload.data(),
                         kDiskBlockSize);
        blockdev_.go(now, /*is_read=*/false, payload);
        break;
      }
      case kPortConsole:
        break;  // Debug output; intentionally discarded.
      default:
        warn(strcat_args("DeviceHub: write of unknown port ", port));
        break;
    }
}

Word
DeviceHub::mmio_read(Addr addr, Cycles now)
{
    switch (addr - kMmioBase) {
      case kNicStatus:
        nic_.advance(now);
        return nic_.rx_available();
      case kNicRxLen:
        return last_rx_len_;
      default:
        warn("DeviceHub: read of unknown MMIO register");
        return 0;
    }
}

IoSideEffect
DeviceHub::mmio_write(Addr addr, Word value, Cycles now)
{
    IoSideEffect effect;
    switch (addr - kMmioBase) {
      case kNicRxBuf: {
        nic_.advance(now);
        Packet pkt = nic_.rx_pop();
        last_rx_len_ = pkt.payload.size();
        if (!pkt.payload.empty()) {
            effect.has_dma = true;
            effect.dma_addr = value;
            effect.dma_data = std::move(pkt.payload);
        }
        break;
      }
      case kNicTx:
        nic_.tx(static_cast<std::size_t>(value));
        break;
      default:
        warn("DeviceHub: write of unknown MMIO register");
        break;
    }
    return effect;
}

Cycles
DeviceHub::next_event_cycle() const
{
    const Cycles tick = timer_.next_tick();
    const Cycles disk_done = blockdev_.next_completion();
    return tick < disk_done ? tick : disk_done;
}

std::optional<AsyncEvent>
DeviceHub::take_event(Cycles now)
{
    if (timer_.take_tick(now)) {
        AsyncEvent event;
        event.vector = kIrqTimer;
        return event;
    }
    if (auto done = blockdev_.take_completion(now)) {
        AsyncEvent event;
        event.vector = kIrqDisk;
        event.disk = std::move(done);
        return event;
    }
    return std::nullopt;
}

std::optional<DiskCompletion>
DeviceHub::force_disk_completion()
{
    return blockdev_.take_completion(~static_cast<Cycles>(0));
}

}  // namespace rsafe::dev
