#ifndef RSAFE_STATS_STATS_H_
#define RSAFE_STATS_STATS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"

/**
 * @file
 * A small statistics package in the spirit of gem5's Stats.
 *
 * Components register named scalar counters, histograms and time-series
 * gauges with a StatRegistry; benches, tests and the metrics exporter read
 * them back by name. Everything is plain 64-bit integer or double state —
 * no global registries, so multiple simulated machines (recorder,
 * checkpointing replayer, alarm replayer) can coexist with independent
 * statistics.
 *
 * Concurrency contract: each thread mutates only its own registry on the
 * hot path, and the coordinator merges the per-thread instances after
 * join. Counter sums and histogram bucket sums are commutative, so any
 * merge order gives identical totals; gauge merges interleave samples by
 * timestamp.
 */

namespace rsafe::stats {

/** A monotonically increasing named event counter. */
class Counter {
  public:
    Counter() = default;

    /** Add @p delta events. */
    void inc(std::uint64_t delta = 1) { value_ += delta; }

    /** @return the accumulated count. */
    std::uint64_t value() const { return value_; }

    /** Reset to zero. */
    void reset() { value_ = 0; }

    /** Fold @p other into this counter (thread-join aggregation). */
    void merge(const Counter& other) { value_ += other.value_; }

  private:
    std::uint64_t value_ = 0;
};

/** A fixed-bucket histogram of 64-bit samples. */
class Histogram {
  public:
    /**
     * Create a histogram covering [0, max) with @p buckets buckets;
     * samples >= max land in the overflow bucket.
     */
    Histogram(std::uint64_t max, std::size_t buckets);
    Histogram() : Histogram(1024, 16) {}

    /** Record one sample. */
    void sample(std::uint64_t value);

    /** @return number of samples recorded. */
    std::uint64_t count() const { return count_; }

    /** @return sum of all samples. */
    std::uint64_t sum() const { return sum_; }

    /** @return arithmetic mean, or 0 if empty. */
    double mean() const;

    /** @return largest recorded sample, or 0 if empty. */
    std::uint64_t max_sample() const { return max_sample_; }

    /** @return count in bucket @p i (the last bucket is overflow). */
    std::uint64_t bucket(std::size_t i) const;

    /** @return number of buckets, including the overflow bucket. */
    std::size_t num_buckets() const { return counts_.size(); }

    /** @return the width of each regular bucket in sample units. */
    std::uint64_t bucket_width() const { return bucket_width_; }

    /** @return the exclusive upper bound of bucket @p i (overflow: max). */
    std::uint64_t bucket_bound(std::size_t i) const;

    /**
     * @return the value at quantile @p q in [0, 1], estimated by linear
     * interpolation within the containing bucket. Overflow-bucket hits
     * are clamped to the recorded maximum sample. Returns 0 if empty.
     */
    std::uint64_t percentile(double q) const;

    /** Convenience percentile shorthands. */
    std::uint64_t p50() const { return percentile(0.50); }
    std::uint64_t p95() const { return percentile(0.95); }
    std::uint64_t p99() const { return percentile(0.99); }

    /** Reset all buckets. */
    void reset();

    /**
     * Fold @p other into this histogram. Bucket geometries must match;
     * on mismatch nothing is merged and kInvalidArgument is returned.
     */
    [[nodiscard]] Status merge(const Histogram& other);

  private:
    std::uint64_t bucket_width_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t max_sample_ = 0;
};

/**
 * A bounded time-series gauge: the last observed value plus a fixed-size
 * ring of (timestamp, value) samples for trend inspection. Timestamps are
 * caller-defined (the pipeline uses producer icount); the ring keeps the
 * most recent kDefaultCapacity samples and counts what it sheds.
 */
class Gauge {
  public:
    /** One observation. */
    struct Sample {
        std::uint64_t t = 0;      ///< caller-defined timestamp
        std::uint64_t value = 0;  ///< observed value at @c t
    };

    static constexpr std::size_t kDefaultCapacity = 256;

    explicit Gauge(std::size_t capacity = kDefaultCapacity);

    /** Record that the gauge read @p value at time @p t. */
    void set(std::uint64_t t, std::uint64_t value);

    /** @return the most recently set value (0 if never set). */
    std::uint64_t last() const { return last_; }

    /** @return total observations, including those shed from the ring. */
    std::uint64_t observations() const { return observations_; }

    /** @return the retained samples in timestamp order. */
    std::vector<Sample> series() const;

    /** @return the ring capacity. */
    std::size_t capacity() const { return capacity_; }

    /** Reset to the never-set state. */
    void reset();

    /**
     * Interleave @p other's retained samples with this gauge's by
     * timestamp, keeping the newest @c capacity() of the union. The
     * last-value becomes the value with the latest timestamp.
     */
    void merge(const Gauge& other);

  private:
    std::size_t capacity_;
    std::vector<Sample> ring_;   ///< insertion ring, wraps at capacity_
    std::size_t next_ = 0;       ///< next ring slot to overwrite
    bool wrapped_ = false;
    std::uint64_t last_ = 0;
    std::uint64_t last_t_ = 0;
    std::uint64_t observations_ = 0;
};

/** A by-name registry of counters/histograms/gauges owned by one machine. */
class StatRegistry {
  public:
    /** Get (creating if needed) the counter named @p name. */
    Counter& counter(const std::string& name);

    /**
     * Get (creating if needed) the histogram named @p name. The geometry
     * arguments apply only on first creation; later lookups return the
     * existing histogram unchanged.
     */
    Histogram& histogram(const std::string& name, std::uint64_t max = 1024,
                         std::size_t buckets = 16);

    /** Get (creating if needed) the gauge named @p name. */
    Gauge& gauge(const std::string& name);

    /** @return the counter value, or 0 if the name was never created. */
    std::uint64_t value(const std::string& name) const;

    /** @return all (name, value) pairs sorted by name (counters only). */
    std::vector<std::pair<std::string, std::uint64_t>> snapshot() const;

    /** @return the registered histograms by name (exporter access). */
    const std::map<std::string, Histogram>& histograms() const
    {
        return histograms_;
    }

    /** @return the registered gauges by name (exporter access). */
    const std::map<std::string, Gauge>& gauges() const { return gauges_; }

    /** Reset every registered counter, histogram and gauge. */
    void reset();

    /**
     * Fold every stat of @p other into this registry, creating names as
     * needed. Histogram geometry mismatches skip that histogram and are
     * reported in the returned status (kInvalidArgument names the first
     * offender); everything else still merges.
     */
    Status merge(const StatRegistry& other);

    /**
     * merge(), but every stat of @p other lands under @p prefix + name.
     * This is how per-tenant registries are folded into one fleet-wide
     * registry without aliasing: two tenants' "cr.replay_lag" become
     * "tenant.a.cr.replay_lag" and "tenant.b.cr.replay_lag".
     */
    Status merge_prefixed(const StatRegistry& other,
                          const std::string& prefix);

  private:
    std::map<std::string, Counter> counters_;
    std::map<std::string, Histogram> histograms_;
    std::map<std::string, Gauge> gauges_;
};

}  // namespace rsafe::stats

#endif  // RSAFE_STATS_STATS_H_
