#ifndef RSAFE_STATS_STATS_H_
#define RSAFE_STATS_STATS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

/**
 * @file
 * A small statistics package in the spirit of gem5's Stats.
 *
 * Components register named scalar counters and histograms with a
 * StatRegistry; benches and tests read them back by name. Everything is
 * plain 64-bit integer or double state — no global registries, so multiple
 * simulated machines (recorder, checkpointing replayer, alarm replayer) can
 * coexist with independent statistics.
 */

namespace rsafe::stats {

/** A monotonically increasing named event counter. */
class Counter {
  public:
    Counter() = default;

    /** Add @p delta events. */
    void inc(std::uint64_t delta = 1) { value_ += delta; }

    /** @return the accumulated count. */
    std::uint64_t value() const { return value_; }

    /** Reset to zero. */
    void reset() { value_ = 0; }

    /** Fold @p other into this counter (thread-join aggregation). */
    void merge(const Counter& other) { value_ += other.value_; }

  private:
    std::uint64_t value_ = 0;
};

/** A fixed-bucket histogram of 64-bit samples. */
class Histogram {
  public:
    /**
     * Create a histogram covering [0, max) with @p buckets buckets;
     * samples >= max land in the overflow bucket.
     */
    Histogram(std::uint64_t max, std::size_t buckets);
    Histogram() : Histogram(1024, 16) {}

    /** Record one sample. */
    void sample(std::uint64_t value);

    /** @return number of samples recorded. */
    std::uint64_t count() const { return count_; }

    /** @return sum of all samples. */
    std::uint64_t sum() const { return sum_; }

    /** @return arithmetic mean, or 0 if empty. */
    double mean() const;

    /** @return largest recorded sample, or 0 if empty. */
    std::uint64_t max_sample() const { return max_sample_; }

    /** @return count in bucket @p i (the last bucket is overflow). */
    std::uint64_t bucket(std::size_t i) const;

    /** @return number of buckets, including the overflow bucket. */
    std::size_t num_buckets() const { return counts_.size(); }

    /** Reset all buckets. */
    void reset();

    /** Fold @p other into this histogram; fatal on geometry mismatch. */
    void merge(const Histogram& other);

  private:
    std::uint64_t bucket_width_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t max_sample_ = 0;
};

/** A by-name registry of counters owned by one simulated machine. */
class StatRegistry {
  public:
    /** Get (creating if needed) the counter named @p name. */
    Counter& counter(const std::string& name);

    /** @return the counter value, or 0 if the name was never created. */
    std::uint64_t value(const std::string& name) const;

    /** @return all (name, value) pairs sorted by name. */
    std::vector<std::pair<std::string, std::uint64_t>> snapshot() const;

    /** Reset every registered counter. */
    void reset();

    /**
     * Fold every counter of @p other into this registry, creating names
     * as needed. This is the concurrency contract of the stats package:
     * each thread mutates only its own registry on the hot path, and the
     * coordinator merges the per-thread instances after join — counter
     * sums are commutative, so any merge order gives identical totals.
     */
    void merge(const StatRegistry& other);

  private:
    std::map<std::string, Counter> counters_;
};

}  // namespace rsafe::stats

#endif  // RSAFE_STATS_STATS_H_
