#include "stats/table.h"

#include <cstdio>
#include <sstream>

#include "common/log.h"

namespace rsafe::stats {

Table::Table(std::string title, std::vector<std::string> headers)
    : title_(std::move(title)), headers_(std::move(headers))
{
    if (headers_.empty())
        fatal("Table: need at least one column");
}

void
Table::add_row(std::vector<std::string> cells)
{
    if (cells.size() != headers_.size())
        fatal(strcat_args("Table '", title_, "': row has ", cells.size(),
                          " cells, expected ", headers_.size()));
    rows_.push_back(std::move(cells));
}

std::string
Table::to_string() const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto& row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            if (row[c].size() > widths[c])
                widths[c] = row[c].size();

    std::ostringstream os;
    os << "== " << title_ << " ==\n";
    auto emit_row = [&](const std::vector<std::string>& cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            if (c > 0)
                os << "  ";
            // Left-align the first column (labels), right-align the rest.
            const auto pad = widths[c] - cells[c].size();
            if (c == 0) {
                os << cells[c] << std::string(pad, ' ');
            } else {
                os << std::string(pad, ' ') << cells[c];
            }
        }
        os << '\n';
    };
    emit_row(headers_);
    std::size_t rule = 0;
    for (std::size_t c = 0; c < widths.size(); ++c)
        rule += widths[c] + (c > 0 ? 2 : 0);
    os << std::string(rule, '-') << '\n';
    for (const auto& row : rows_)
        emit_row(row);
    return os.str();
}

std::string
Table::to_csv() const
{
    std::ostringstream os;
    auto emit = [&](const std::vector<std::string>& cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            if (c > 0)
                os << ',';
            os << cells[c];
        }
        os << '\n';
    };
    emit(headers_);
    for (const auto& row : rows_)
        emit(row);
    return os.str();
}

std::string
Table::fmt(double value, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
    return buf;
}

}  // namespace rsafe::stats
