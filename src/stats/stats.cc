#include "stats/stats.h"

#include <algorithm>
#include <cmath>

#include "common/log.h"

namespace rsafe::stats {

Histogram::Histogram(std::uint64_t max, std::size_t buckets)
{
    if (buckets == 0)
        fatal("Histogram: need at least one bucket");
    if (max == 0)
        fatal("Histogram: max must be positive");
    bucket_width_ = max / buckets;
    if (bucket_width_ == 0)
        bucket_width_ = 1;
    counts_.assign(buckets + 1, 0);  // +1 for overflow
}

void
Histogram::sample(std::uint64_t value)
{
    std::size_t idx = static_cast<std::size_t>(value / bucket_width_);
    if (idx >= counts_.size() - 1)
        idx = counts_.size() - 1;
    ++counts_[idx];
    ++count_;
    sum_ += value;
    if (value > max_sample_)
        max_sample_ = value;
}

double
Histogram::mean() const
{
    if (count_ == 0)
        return 0.0;
    return static_cast<double>(sum_) / static_cast<double>(count_);
}

std::uint64_t
Histogram::bucket(std::size_t i) const
{
    if (i >= counts_.size())
        panic("Histogram::bucket: index out of range");
    return counts_[i];
}

std::uint64_t
Histogram::bucket_bound(std::size_t i) const
{
    if (i >= counts_.size())
        panic("Histogram::bucket_bound: index out of range");
    if (i == counts_.size() - 1)
        return ~static_cast<std::uint64_t>(0);  // overflow: unbounded
    return bucket_width_ * (i + 1);
}

std::uint64_t
Histogram::percentile(double q) const
{
    if (count_ == 0)
        return 0;
    q = std::clamp(q, 0.0, 1.0);
    // The rank of the sample we want, 1-based, ceil(q * count).
    const std::uint64_t rank = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(count_)));
    if (rank == 0)
        return 0;  // q == 0: the distribution's floor, never a sample
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        if (counts_[i] == 0)
            continue;
        if (seen + counts_[i] >= rank) {
            if (i == counts_.size() - 1) {
                // Overflow bucket: no upper bound, clamp to the max.
                return max_sample_;
            }
            // Linear interpolation within [lo, lo + width).
            const std::uint64_t lo = bucket_width_ * i;
            const double frac = static_cast<double>(rank - seen) /
                                static_cast<double>(counts_[i]);
            const auto off = static_cast<std::uint64_t>(
                frac * static_cast<double>(bucket_width_));
            return std::min(lo + off, max_sample_);
        }
        seen += counts_[i];
    }
    return max_sample_;
}

void
Histogram::reset()
{
    for (auto& c : counts_)
        c = 0;
    count_ = 0;
    sum_ = 0;
    max_sample_ = 0;
}

Status
Histogram::merge(const Histogram& other)
{
    if (other.bucket_width_ != bucket_width_ ||
        other.counts_.size() != counts_.size()) {
        return Status(
            StatusCode::kInvalidArgument,
            strcat_args("Histogram::merge: geometry mismatch (width ",
                        bucket_width_, "x", counts_.size(), " vs ",
                        other.bucket_width_, "x", other.counts_.size(),
                        ")"));
    }
    for (std::size_t i = 0; i < counts_.size(); ++i)
        counts_[i] += other.counts_[i];
    count_ += other.count_;
    sum_ += other.sum_;
    if (other.max_sample_ > max_sample_)
        max_sample_ = other.max_sample_;
    return Status();
}

Gauge::Gauge(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity)
{
    ring_.reserve(capacity_);
}

void
Gauge::set(std::uint64_t t, std::uint64_t value)
{
    if (ring_.size() < capacity_) {
        ring_.push_back(Sample{t, value});
    } else {
        ring_[next_] = Sample{t, value};
        next_ = (next_ + 1) % capacity_;
        wrapped_ = true;
    }
    ++observations_;
    if (observations_ == 1 || t >= last_t_) {
        last_t_ = t;
        last_ = value;
    }
}

std::vector<Gauge::Sample>
Gauge::series() const
{
    std::vector<Sample> out;
    out.reserve(ring_.size());
    if (wrapped_) {
        // Oldest retained sample sits at next_; unroll the ring.
        for (std::size_t i = 0; i < ring_.size(); ++i)
            out.push_back(ring_[(next_ + i) % ring_.size()]);
    } else {
        out = ring_;
    }
    std::stable_sort(out.begin(), out.end(),
                     [](const Sample& a, const Sample& b) {
                         return a.t < b.t;
                     });
    return out;
}

void
Gauge::reset()
{
    ring_.clear();
    next_ = 0;
    wrapped_ = false;
    last_ = 0;
    last_t_ = 0;
    observations_ = 0;
}

void
Gauge::merge(const Gauge& other)
{
    if (other.observations_ == 0)
        return;
    std::vector<Sample> merged = series();
    const std::vector<Sample> theirs = other.series();
    merged.insert(merged.end(), theirs.begin(), theirs.end());
    std::stable_sort(merged.begin(), merged.end(),
                     [](const Sample& a, const Sample& b) {
                         return a.t < b.t;
                     });
    // Keep the newest capacity() samples of the union.
    if (merged.size() > capacity_)
        merged.erase(merged.begin(),
                     merged.end() - static_cast<std::ptrdiff_t>(capacity_));
    const std::uint64_t total = observations_ + other.observations_;
    const bool theirs_last =
        observations_ == 0 || other.last_t_ >= last_t_;
    ring_ = std::move(merged);
    next_ = 0;
    wrapped_ = false;
    observations_ = total;
    if (theirs_last) {
        last_ = other.last_;
        last_t_ = other.last_t_;
    }
}

Counter&
StatRegistry::counter(const std::string& name)
{
    return counters_[name];
}

Histogram&
StatRegistry::histogram(const std::string& name, std::uint64_t max,
                        std::size_t buckets)
{
    auto it = histograms_.find(name);
    if (it == histograms_.end())
        it = histograms_.emplace(name, Histogram(max, buckets)).first;
    return it->second;
}

Gauge&
StatRegistry::gauge(const std::string& name)
{
    return gauges_[name];
}

std::uint64_t
StatRegistry::value(const std::string& name) const
{
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second.value();
}

std::vector<std::pair<std::string, std::uint64_t>>
StatRegistry::snapshot() const
{
    std::vector<std::pair<std::string, std::uint64_t>> out;
    out.reserve(counters_.size());
    for (const auto& [name, counter] : counters_)
        out.emplace_back(name, counter.value());
    return out;
}

void
StatRegistry::reset()
{
    for (auto& [name, counter] : counters_)
        counter.reset();
    for (auto& [name, histogram] : histograms_)
        histogram.reset();
    for (auto& [name, gauge] : gauges_)
        gauge.reset();
}

Status
StatRegistry::merge(const StatRegistry& other)
{
    Status result;
    for (const auto& [name, counter] : other.counters_)
        counters_[name].merge(counter);
    for (const auto& [name, histogram] : other.histograms_) {
        auto it = histograms_.find(name);
        if (it == histograms_.end()) {
            histograms_.emplace(name, histogram);
            continue;
        }
        const Status merged = it->second.merge(histogram);
        if (!merged.ok() && result.ok()) {
            result = Status(merged.code(),
                            strcat_args("histogram '", name,
                                        "': ", merged.message()));
        }
    }
    for (const auto& [name, gauge] : other.gauges_)
        gauges_[name].merge(gauge);
    return result;
}

Status
StatRegistry::merge_prefixed(const StatRegistry& other,
                             const std::string& prefix)
{
    Status result;
    for (const auto& [name, counter] : other.counters_)
        counters_[prefix + name].merge(counter);
    for (const auto& [name, histogram] : other.histograms_) {
        const std::string full = prefix + name;
        auto it = histograms_.find(full);
        if (it == histograms_.end()) {
            histograms_.emplace(full, histogram);
            continue;
        }
        const Status merged = it->second.merge(histogram);
        if (!merged.ok() && result.ok()) {
            result = Status(merged.code(),
                            strcat_args("histogram '", full,
                                        "': ", merged.message()));
        }
    }
    for (const auto& [name, gauge] : other.gauges_)
        gauges_[prefix + name].merge(gauge);
    return result;
}

}  // namespace rsafe::stats
