#include "stats/stats.h"

#include "common/log.h"

namespace rsafe::stats {

Histogram::Histogram(std::uint64_t max, std::size_t buckets)
{
    if (buckets == 0)
        fatal("Histogram: need at least one bucket");
    if (max == 0)
        fatal("Histogram: max must be positive");
    bucket_width_ = max / buckets;
    if (bucket_width_ == 0)
        bucket_width_ = 1;
    counts_.assign(buckets + 1, 0);  // +1 for overflow
}

void
Histogram::sample(std::uint64_t value)
{
    std::size_t idx = static_cast<std::size_t>(value / bucket_width_);
    if (idx >= counts_.size() - 1)
        idx = counts_.size() - 1;
    ++counts_[idx];
    ++count_;
    sum_ += value;
    if (value > max_sample_)
        max_sample_ = value;
}

double
Histogram::mean() const
{
    if (count_ == 0)
        return 0.0;
    return static_cast<double>(sum_) / static_cast<double>(count_);
}

std::uint64_t
Histogram::bucket(std::size_t i) const
{
    if (i >= counts_.size())
        panic("Histogram::bucket: index out of range");
    return counts_[i];
}

void
Histogram::reset()
{
    for (auto& c : counts_)
        c = 0;
    count_ = 0;
    sum_ = 0;
    max_sample_ = 0;
}

void
Histogram::merge(const Histogram& other)
{
    if (other.bucket_width_ != bucket_width_ ||
        other.counts_.size() != counts_.size()) {
        fatal("Histogram::merge: bucket geometry mismatch");
    }
    for (std::size_t i = 0; i < counts_.size(); ++i)
        counts_[i] += other.counts_[i];
    count_ += other.count_;
    sum_ += other.sum_;
    if (other.max_sample_ > max_sample_)
        max_sample_ = other.max_sample_;
}

Counter&
StatRegistry::counter(const std::string& name)
{
    return counters_[name];
}

std::uint64_t
StatRegistry::value(const std::string& name) const
{
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second.value();
}

std::vector<std::pair<std::string, std::uint64_t>>
StatRegistry::snapshot() const
{
    std::vector<std::pair<std::string, std::uint64_t>> out;
    out.reserve(counters_.size());
    for (const auto& [name, counter] : counters_)
        out.emplace_back(name, counter.value());
    return out;
}

void
StatRegistry::reset()
{
    for (auto& [name, counter] : counters_)
        counter.reset();
}

void
StatRegistry::merge(const StatRegistry& other)
{
    for (const auto& [name, counter] : other.counters_)
        counters_[name].merge(counter);
}

}  // namespace rsafe::stats
