#ifndef RSAFE_STATS_TABLE_H_
#define RSAFE_STATS_TABLE_H_

#include <string>
#include <vector>

/**
 * @file
 * Fixed-width text table and CSV emission for the benchmark harness.
 *
 * Every bench binary regenerates one of the paper's tables/figures as a
 * text table (for humans) and optionally CSV (for plotting). The formatter
 * right-aligns numeric cells and pads to the widest cell per column.
 */

namespace rsafe::stats {

/** A simple column-oriented text table. */
class Table {
  public:
    /** Create a table titled @p title with the given column headers. */
    Table(std::string title, std::vector<std::string> headers);

    /** Append one row; must have exactly as many cells as headers. */
    void add_row(std::vector<std::string> cells);

    /** Render the table, with title, header rule, and aligned columns. */
    std::string to_string() const;

    /** Render as CSV (header row + data rows, no title). */
    std::string to_csv() const;

    /** Format a double with @p digits fractional digits. */
    static std::string fmt(double value, int digits = 2);

  private:
    std::string title_;
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

}  // namespace rsafe::stats

#endif  // RSAFE_STATS_TABLE_H_
