#ifndef RSAFE_FLEET_WORK_POOL_H_
#define RSAFE_FLEET_WORK_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

/**
 * @file
 * The fleet's shared alarm-replay worker pool.
 *
 * One pool serves every tenant of a ReplayFleet, sized once (default:
 * hardware_concurrency) instead of per-framework — N tenants no longer
 * mean N private pools oversubscribing the host. Scheduling is two
 * layers:
 *
 *  - Fair-share admission: each tenant has an in-flight cap; jobs over
 *    the cap park in the tenant's FIFO backlog and are admitted as that
 *    tenant's earlier jobs complete. Admitted jobs are handed to workers
 *    round-robin across tenants, so one tenant's alarm storm (16 ROP
 *    alarms at once) cannot occupy every worker while a benign tenant's
 *    single false positive waits — the storm is throttled to its cap and
 *    the benign alarm goes to the head of the next hand-off.
 *
 *  - Work stealing: a worker takes a small round-robin batch of admitted
 *    jobs into its own deque (owner pops the front), and a worker that
 *    finds the admission queues empty steals half of the largest
 *    sibling deque from the back. Steal/starvation counters are
 *    exported for the bench.
 *
 * Shutdown is two-mode: drain() waits for every submitted job; abandon()
 * discards everything not yet executing (per-tenant discard counts let
 * the fleet flag partial results) and waits only for the jobs already
 * running.
 */

namespace rsafe::fleet {

/** Pool configuration. */
struct PoolOptions {
    /** Worker threads; 0 = std::thread::hardware_concurrency(). */
    std::size_t workers = 0;
    /** Max jobs of one tenant admitted (queued-to-run or running). */
    std::size_t tenant_inflight_cap = 2;
};

/** Pool-wide scheduling counters. */
struct PoolStats {
    std::uint64_t submitted = 0;
    std::uint64_t executed = 0;
    std::uint64_t discarded = 0;
    /** Batches handed from the admission queues to worker deques. */
    std::uint64_t global_takes = 0;
    /** Successful steal operations / jobs they moved. */
    std::uint64_t steals = 0;
    std::uint64_t stolen_jobs = 0;
    /** Times a worker went to sleep finding no runnable work. */
    std::uint64_t starved_waits = 0;
    /** High-water mark of admitted-but-not-yet-taken jobs. */
    std::size_t max_admitted = 0;
    /** Actual worker-thread count. */
    std::size_t workers = 0;
};

/** Per-tenant scheduling counters. */
struct TenantPoolStats {
    std::string name;
    std::uint64_t submitted = 0;
    std::uint64_t executed = 0;
    std::uint64_t discarded = 0;
    /** High-water mark of jobs parked behind the in-flight cap. */
    std::size_t max_parked = 0;
};

/** The shared work-stealing worker pool. */
class WorkStealingPool {
  public:
    using Job = std::function<void()>;

    explicit WorkStealingPool(const PoolOptions& options = {});

    /** abandon()s outstanding work and joins the workers. */
    ~WorkStealingPool();

    /** Add a tenant; @return its id for submit(). Not thread-safe with
     *  concurrent submit()/register_tenant() calls. */
    std::size_t register_tenant(std::string name);

    /** Queue one job for @p tenant. Thread-safe, never blocks. */
    void submit(std::size_t tenant, Job job);

    /** Block until every submitted job has executed (or was discarded).
     *  Callers must have stopped submitting for this to terminate. */
    void drain();

    /**
     * Discard every job not yet picked up by a worker (parked, admitted,
     * and stolen-but-unstarted alike), then wait for the jobs already
     * executing. Discards are counted per tenant.
     */
    void abandon();

    PoolStats stats() const;
    std::vector<TenantPoolStats> tenant_stats() const;
    std::size_t worker_count() const { return workers_.size(); }

  private:
    /** A job bound to the tenant whose cap it occupies. */
    struct QueuedJob {
        std::size_t tenant = 0;
        Job fn;
    };

    struct Tenant {
        std::string name;
        std::deque<QueuedJob> parked;    ///< over-cap FIFO backlog
        std::deque<QueuedJob> admitted;  ///< runnable, awaiting a worker
        std::size_t inflight = 0;        ///< admitted + running jobs
        TenantPoolStats stats;
    };

    /** One worker's private deque: owner pops front, thieves take the
     *  back half. */
    struct WorkerDeque {
        std::mutex mu;
        std::deque<QueuedJob> jobs;
    };

    void worker_main(std::size_t index);

    /** Pop the front of worker @p w's own deque. */
    bool pop_local(std::size_t w, QueuedJob* out);

    /** Hand worker @p w a round-robin batch of admitted jobs; the first
     *  lands in @p out, the rest in its deque. */
    bool take_admitted(std::size_t w, QueuedJob* out);

    /** Steal half of the largest sibling deque into @p w's. */
    bool steal(std::size_t w, QueuedJob* out);

    /** Account one finished job and admit the tenant's next parked job. */
    void complete(const QueuedJob& job);

    /** Total admitted jobs across tenants. Requires mu_. */
    std::size_t admitted_total() const;

    PoolOptions options_;

    mutable std::mutex mu_;
    std::condition_variable work_cv_;  ///< workers: admitted work exists
    std::condition_variable idle_cv_;  ///< drain()/abandon(): outstanding==0
    std::vector<Tenant> tenants_;
    std::size_t rr_ = 0;               ///< round-robin hand-off cursor
    std::size_t outstanding_ = 0;      ///< submitted - executed - discarded
    bool stopping_ = false;
    PoolStats stats_;

    std::vector<std::unique_ptr<WorkerDeque>> deques_;
    std::vector<std::thread> workers_;
};

}  // namespace rsafe::fleet

#endif  // RSAFE_FLEET_WORK_POOL_H_
