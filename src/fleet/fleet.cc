#include "fleet/fleet.h"

#include <cstdlib>
#include <exception>
#include <thread>
#include <utility>

#include <chrono>
#include <sstream>

#include "common/log.h"
#include "obs/flight_recorder.h"
#include "obs/trace.h"
#include "replay/ckpt_store/ckpt_image.h"
#include "rnr/log_source.h"

namespace rsafe::fleet {

/**
 * Everything one tenant needs while its session runs and its alarm jobs
 * float through the shared pool. Lives on the fleet's run() stack and
 * outlives the pool, so job closures can hold raw pointers to it.
 */
struct ReplayFleet::TenantState {
    std::string name;
    std::size_t pool_id = 0;
    std::unique_ptr<core::SessionStage> stage;
    std::unique_ptr<core::ArStage> ar;

    core::SessionResult session;
    std::exception_ptr error;

    /** Guards the job bookkeeping below against pool workers. */
    std::mutex mu;
    /** Jobs submitted so far; a job's sequence number is its slot. The
     *  CR queues alarms in log order, so slot order == alarm order. */
    std::size_t submitted = 0;
    std::vector<core::AlarmReplayResult> results;
    std::vector<char> done;
    /** Ship-mode volume (under mu; workers ship concurrently). */
    std::size_t jobs_shipped = 0;
    std::uint64_t bytes_shipped = 0;
    /** Per-tenant AR counters, merged from per-job registries. Counter
     *  and histogram merges are commutative, so completion order does
     *  not perturb the totals. */
    stats::StatRegistry ar_stats;

    /** Live signals for the health monitor (relaxed atomics only). */
    obs::HealthProbe probe;
};

ReplayFleet::ReplayFleet(std::vector<FleetTenant> tenants,
                         FleetOptions options)
    : tenants_(std::move(tenants)), options_(options)
{
    if (tenants_.empty())
        fatal("ReplayFleet: no tenants");
    for (std::size_t i = 0; i < tenants_.size(); ++i) {
        if (!tenants_[i].factory)
            fatal("ReplayFleet: tenant without a VM factory");
        if (tenants_[i].name.empty())
            fatal("ReplayFleet: tenant without a name");
        for (std::size_t j = i + 1; j < tenants_.size(); ++j)
            if (tenants_[i].name == tenants_[j].name)
                fatal("ReplayFleet: duplicate tenant name '" +
                      tenants_[i].name + "'");
    }
}

FleetResult
ReplayFleet::run()
{
    if (ran_)
        fatal("ReplayFleet: run() called twice");
    ran_ = true;
    if (std::getenv("RSAFE_NO_FLEET") != nullptr)
        return run_fallback();
    return run_fleet();
}

void
ReplayFleet::shutdown(ShutdownMode mode)
{
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_requested_ = true;
    if (mode == ShutdownMode::kAbandon)
        abandon_requested_ = true;
    for (TenantState* state : live_states_)
        state->stage->request_stop();
    // Discarding queued jobs waits out the ones already executing; fleet
    // jobs never touch mu_, so holding it here only delays run()'s own
    // brief bookkeeping sections.
    if (abandon_requested_ && live_pool_ != nullptr)
        live_pool_->abandon();
}

FleetResult
ReplayFleet::run_fleet()
{
    FleetResult out;

    // The health plane. Declaration order is lifetime order in reverse:
    // the flight recorder precedes the pool (worker closures write into
    // it), the monitor and the endpoint follow it (their samplers and
    // providers read the pool and the stages, so they must be torn down
    // first).
    const bool health_on = options_.health.enabled &&
                           std::getenv("RSAFE_NO_HEALTH") == nullptr;
    obs::FlightRecorder flight;

    // States must outlive the pool (job closures hold raw TenantState
    // pointers), so they are declared first and destroyed last.
    std::vector<std::unique_ptr<TenantState>> states;
    states.reserve(tenants_.size());

    PoolOptions pool_options;
    pool_options.workers = options_.workers;
    pool_options.tenant_inflight_cap = options_.tenant_inflight_cap;
    WorkStealingPool pool(pool_options);

    obs::HealthMonitor monitor(options_.health);

    for (const FleetTenant& tenant : tenants_) {
        auto state = std::make_unique<TenantState>();
        state->name = tenant.name;
        state->pool_id = pool.register_tenant(tenant.name);

        core::SessionOptions session;
        session.recorder = tenant.config.recorder;
        session.cr = tenant.config.cr;
        session.max_instructions = tenant.config.max_instructions;
        session.channel = tenant.config.channel;
        session.streamed =
            tenant.config.pipeline == core::PipelineMode::kConcurrent;
        session.name = tenant.name;
        state->stage = std::make_unique<core::SessionStage>(
            tenant.factory, std::move(session), tenant.config.detectors);
        state->ar = std::make_unique<core::ArStage>(
            tenant.factory, tenant.config.cr.replay,
            state->stage->active_detectors());

        // The sink runs on this tenant's CR thread: claim the next slot,
        // wrap the job's owned slice in a SliceLogSource, and hand it to
        // the shared pool. The pool worker writes the result back into
        // the claimed slot, so out-of-order execution still lands in
        // alarm order.
        TenantState* raw = state.get();
        WorkStealingPool* pool_ptr = &pool;
        obs::FlightRecorder* flight_ptr = health_on ? &flight : nullptr;
        const bool ship = options_.ship_checkpoints;
        state->stage->set_alarm_sink(
            [raw, pool_ptr, flight_ptr, ship](const core::AlarmJob& job) {
                auto owned = std::make_shared<core::AlarmJob>(job);
                std::size_t seq;
                {
                    std::lock_guard<std::mutex> lock(raw->mu);
                    seq = raw->submitted++;
                    raw->results.resize(raw->submitted);
                    raw->done.resize(raw->submitted, 0);
                }
                pool_ptr->submit(raw->pool_id,
                                 [raw, owned, seq, ship, flight_ptr] {
                    stats::StatRegistry local;
                    // A job can arrive without a checkpoint (interval 0,
                    // or the byte budget recycled past the alarm); its
                    // slice is based at the alarm itself and the AR
                    // returns a clean checkpoint-unavailable verdict.
                    const auto& ck = owned->pending.checkpoint;
                    rnr::SliceLogSource source(
                        ck ? ck->log_pos : owned->pending.log_index,
                        std::move(owned->slice));
                    core::AlarmReplayResult result;
                    if (ship && ck) {
                        // Ship mode: the worker sees exactly what a
                        // remote AR tier would — the serialized image,
                        // not the live object graph.
                        const std::vector<std::uint8_t> image =
                            replay::ckpt::serialize_checkpoint(*ck);
                        result = raw->ar->analyze_image(
                            owned->pending, image, &source, &local);
                        std::lock_guard<std::mutex> lock(raw->mu);
                        ++raw->jobs_shipped;
                        raw->bytes_shipped += image.size();
                    } else {
                        result = raw->ar->analyze(owned->pending, &source,
                                                  &local);
                    }
                    if (flight_ptr != nullptr) {
                        raw->probe.note_verdict(
                            result.analysis.analysis_cycles);
                        if (result.analysis.is_attack) {
                            // An attack verdict is exactly the moment
                            // the black box exists for.
                            flight_ptr->record(
                                obs::FlightEntryKind::kVerdict, raw->name,
                                "attack",
                                result.analysis.analysis_cycles);
                            flight_ptr->dump("attack-verdict:" + raw->name);
                        }
                    }
                    std::lock_guard<std::mutex> lock(raw->mu);
                    raw->results[seq] = std::move(result);
                    raw->done[seq] = 1;
                    raw->ar_stats.merge(local);
                });
            });

        if (health_on) {
            // The sampler runs on the monitor thread: probe atomics,
            // the mutex-guarded live channel stats, and the pool's
            // locked stats are the only live state it touches.
            state->stage->set_health_probe(&raw->probe);
            monitor.add_tenant(raw->name, [raw, pool_ptr] {
                obs::HealthSample sample;
                sample.set(obs::HealthSignal::kReplayLag,
                           raw->probe.replay_lag.load(
                               std::memory_order_relaxed));
                sample.set(obs::HealthSignal::kQueueDepth,
                           raw->probe.queue_depth());
                sample.set(obs::HealthSignal::kVerdictLatency,
                           raw->probe.verdict_cycles_peak.exchange(
                               0, std::memory_order_relaxed));
                sample.set(obs::HealthSignal::kChannelBackpressure,
                           raw->stage->live_channel_stats().producer_waits);
                const std::uint64_t budget =
                    raw->probe.ckpt_budget_bytes.load(
                        std::memory_order_relaxed);
                const std::uint64_t live =
                    raw->probe.ckpt_live_bytes.load(
                        std::memory_order_relaxed);
                sample.set(obs::HealthSignal::kCkptOccupancy,
                           budget != 0 ? live * 100 / budget : 0);
                sample.set(obs::HealthSignal::kPoolStarvation,
                           pool_ptr->stats().starved_waits);
                return sample;
            });
        }
        states.push_back(std::move(state));
    }

    obs::TelemetryServer telemetry(
        options_.telemetry,
        obs::TelemetryProviders{
            [&monitor] { return monitor.metrics_prometheus(); },
            [&monitor] { return monitor.healthz_json(); },
            [&flight] { return flight.latest(); },
        });
    if (health_on) {
        obs::FlightRecorder* flight_ptr = &flight;
        monitor.add_listener([flight_ptr](const obs::HealthEvent& event) {
            flight_ptr->record(obs::FlightEntryKind::kTransition,
                               event.tenant,
                               obs::health_signal_name(event.signal),
                               event.value, event.to_string());
            if (event.to == obs::HealthState::kCritical)
                flight_ptr->dump("slo-breach:" + event.tenant);
        });
        monitor.add_sample_listener(
            [flight_ptr](const std::string& tenant,
                         const obs::HealthSample& sample) {
                std::ostringstream detail;
                for (std::size_t s = 0; s < obs::kNumHealthSignals; ++s) {
                    if (s != 0)
                        detail << " ";
                    detail << obs::health_signal_name(
                                  static_cast<obs::HealthSignal>(s))
                           << "=" << sample.values[s];
                }
                flight_ptr->record(
                    obs::FlightEntryKind::kSample, tenant, "signals",
                    sample.get(obs::HealthSignal::kQueueDepth),
                    detail.str());
            });
        monitor.start();
        telemetry.start();
    }

    // Publish the live run for shutdown(), honoring one requested before
    // the states existed.
    {
        std::lock_guard<std::mutex> lock(mu_);
        for (auto& state : states)
            live_states_.push_back(state.get());
        live_pool_ = &pool;
        if (shutdown_requested_)
            for (TenantState* state : live_states_)
                state->stage->request_stop();
    }

    // One thread per tenant session; streamed tenants spawn their
    // recorder/CR pair inside SessionStage::run().
    std::vector<std::thread> sessions;
    sessions.reserve(states.size());
    for (auto& state : states) {
        TenantState* raw = state.get();
        sessions.emplace_back([raw] {
            try {
                if (obs::Tracer::instance().enabled()) {
                    const std::string track = raw->name + ".session";
                    obs::Tracer::instance().attach_thread(track.c_str());
                }
                raw->session = raw->stage->run();
            } catch (...) {
                raw->error = std::current_exception();
            }
        });
    }
    for (auto& session : sessions)
        session.join();

    // Sessions are done; finish (or discard) the alarm jobs.
    bool abandon;
    {
        std::lock_guard<std::mutex> lock(mu_);
        abandon = abandon_requested_;
    }
    if (abandon)
        pool.abandon();
    else
        pool.drain();
    out.pool = pool.stats();
    out.tenant_pool = pool.tenant_stats();

    // The run is quiescing: unpublish before tearing anything down.
    {
        std::lock_guard<std::mutex> lock(mu_);
        live_states_.clear();
        live_pool_ = nullptr;
    }

    // Wind down the health plane while everything its samplers read is
    // still alive: the abandon decision goes into the black box, the
    // monitor runs its final tick, and the endpoint lingers (if asked)
    // so late scrapers see the end state before the snapshots land.
    if (health_on) {
        if (abandon) {
            flight.record(obs::FlightEntryKind::kShutdown, "", "abandon");
            flight.dump("abandon-shutdown");
        }
        monitor.stop();
        if (flight.dumps() == 0)
            flight.dump("run-complete");
        std::uint32_t lingered = 0;
        while (telemetry.running() &&
               lingered < options_.telemetry_linger_ms) {
            {
                std::lock_guard<std::mutex> lock(mu_);
                if (shutdown_requested_)
                    break;
            }
            std::this_thread::sleep_for(std::chrono::milliseconds(50));
            lingered += 50;
        }
    }
    telemetry.stop();

    for (auto& state : states)
        if (state->error) {
            pool.abandon();
            std::rethrow_exception(state->error);
        }

    for (auto& state : states) {
        TenantRunResult tenant;
        tenant.name = state->name;
        core::FrameworkResult& fr = tenant.result;

        // Adopt the session outputs exactly as the framework does.
        fr.record_result = state->session.record_result;
        fr.cr_outcome = state->session.cr_outcome;
        fr.alarms_logged = state->session.alarms_logged;
        fr.channel_stats = state->session.channel_stats;
        fr.underflows_resolved = state->stage->cr()->underflows_resolved();
        fr.replay_lag = state->stage->cr()->lag();
        if (state->stage->active_detectors() != nullptr)
            fr.detectors = config_for(state->name).detectors;
        fr.recorded_vm = state->stage->release_recorded_vm();
        fr.recorder = state->stage->release_recorder();
        fr.cr_vm = state->stage->release_cr_vm();
        fr.cr = state->stage->release_cr();

        // Completed jobs in submission (= alarm) order; discarded jobs
        // leave holes that mark the tenant partial.
        std::vector<core::AlarmReplayResult> ar_results;
        {
            std::lock_guard<std::mutex> lock(state->mu);
            ar_results.reserve(state->submitted);
            for (std::size_t i = 0; i < state->submitted; ++i) {
                if (state->done[i])
                    ar_results.push_back(std::move(state->results[i]));
                else
                    ++tenant.jobs_dropped;
            }
            tenant.jobs_shipped = state->jobs_shipped;
            tenant.bytes_shipped = state->bytes_shipped;
            fr.pipeline_stats.merge(state->ar_stats);
        }
        core::finalize_result(&fr, std::move(ar_results));
        tenant.partial =
            state->session.stopped || tenant.jobs_dropped > 0;
        out.tenants.push_back(std::move(tenant));
    }

    collect_metrics(&out);
    if (health_on) {
        monitor.export_metrics(&out.metrics);
        out.healthz = monitor.healthz_json();
        out.health_events = monitor.events();
        out.flight_box = flight.latest();
        out.telemetry_port = telemetry.port();
    }
    return out;
}

FleetResult
ReplayFleet::run_fallback()
{
    // RSAFE_NO_FLEET: the pre-fleet world, one private framework per
    // tenant, run sequentially. The A/B gate — a fleet of one tenant
    // must equal this path bit for bit — keeps the fleet honest.
    FleetResult out;
    out.used_fallback = true;
    for (const FleetTenant& tenant : tenants_) {
        core::RnrSafeFramework framework(tenant.factory, tenant.config);
        TenantRunResult result;
        result.name = tenant.name;
        result.result = framework.run();
        out.tenants.push_back(std::move(result));
    }
    collect_metrics(&out);
    return out;
}

const core::FrameworkConfig&
ReplayFleet::config_for(const std::string& name) const
{
    for (const FleetTenant& tenant : tenants_)
        if (tenant.name == name)
            return tenant.config;
    panic("ReplayFleet: unknown tenant '" + name + "'");
}

void
ReplayFleet::collect_metrics(FleetResult* out)
{
    auto& metrics = out->metrics;
    for (const TenantRunResult& tenant : out->tenants) {
        const std::string prefix = "tenant." + tenant.name + ".";
        metrics.merge_prefixed(tenant.result.pipeline_stats, prefix);
        auto& latency = metrics.histogram(
            prefix + "ar.verdict_latency", core::ArStage::kLatencyHistMax,
            core::ArStage::kLatencyHistBuckets);
        for (const auto& ar : tenant.result.ar_results)
            latency.sample(ar.analysis.analysis_cycles);
        metrics.counter(prefix + "jobs_dropped").inc(tenant.jobs_dropped);
        if (tenant.partial)
            metrics.counter(prefix + "partial").inc();
        // Ship-mode volume: gauges, so shipped and in-memory runs keep
        // identical counter snapshots (the A/B determinism lever).
        metrics.gauge(prefix + "ckpt.shipped_jobs")
            .set(0, tenant.jobs_shipped);
        metrics.gauge(prefix + "ckpt.shipped_bytes")
            .set(0, tenant.bytes_shipped);
    }
    // Deterministic pool totals ride in counters; scheduling noise
    // (steals, starvation, hand-off shapes) rides in gauges, which
    // snapshot() excludes — same split the pipeline stats use.
    metrics.counter("fleet.pool.submitted").inc(out->pool.submitted);
    metrics.counter("fleet.pool.executed").inc(out->pool.executed);
    metrics.counter("fleet.pool.discarded").inc(out->pool.discarded);
    metrics.gauge("fleet.pool.global_takes").set(0, out->pool.global_takes);
    metrics.gauge("fleet.pool.steals").set(0, out->pool.steals);
    metrics.gauge("fleet.pool.stolen_jobs").set(0, out->pool.stolen_jobs);
    metrics.gauge("fleet.pool.starved_waits")
        .set(0, out->pool.starved_waits);
    metrics.gauge("fleet.pool.max_admitted").set(0, out->pool.max_admitted);
    metrics.gauge("fleet.pool.workers").set(0, out->pool.workers);
}

}  // namespace rsafe::fleet
