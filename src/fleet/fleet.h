#ifndef RSAFE_FLEET_FLEET_H_
#define RSAFE_FLEET_FLEET_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/framework.h"
#include "fleet/work_pool.h"
#include "obs/health.h"
#include "obs/telemetry.h"
#include "stats/stats.h"

/**
 * @file
 * ReplayFleet: N concurrent guest sessions over one shared AR pool.
 *
 * The single RnrSafeFramework spins up a private alarm-replay worker pool
 * per run; deploy six monitored guests that way and the host runs six
 * pools' worth of threads, most of them idle. The fleet inverts that:
 * each tenant is a SessionStage (recorder + checkpointing replayer on
 * its own threads) that *submits* self-contained alarm-replay jobs — a
 * PendingAlarm plus an owned [checkpoint, alarm] log slice — to one
 * WorkStealingPool sized once for the whole machine. Fair-share
 * admission keeps an alarm storm in one tenant from starving the rest;
 * work stealing keeps the workers busy when alarms arrive unevenly.
 *
 * Determinism is preserved per tenant: jobs execute in any order on any
 * worker, but results are slotted by submission sequence (= alarm order,
 * the CR queues alarms in log order), per-job stat registries merge
 * commutatively, and finalize_result() is the same fold the framework
 * uses — so a fleet tenant's verdicts, counters, and state digests are
 * bit-identical to the same workload run through RnrSafeFramework alone.
 * The RSAFE_NO_FLEET environment kill-switch makes run() literally do
 * that: each tenant runs through a private framework, sequentially.
 *
 * Shutdown is two-mode (shutdown(), callable from any thread):
 * kDrain stops the sessions but lets every submitted alarm job finish;
 * kAbandon also discards queued jobs, flagging affected tenants partial.
 */

namespace rsafe::fleet {

/** One monitored guest session in the fleet. */
struct FleetTenant {
    /** Unique tenant name: metric namespace + trace track prefix. */
    std::string name;
    core::VmFactory factory;
    /**
     * Per-tenant pipeline configuration. `pipeline` selects the session
     * shape (kConcurrent = streamed record->CR); `ar_workers` is ignored
     * — alarm replays go to the shared pool. Detector sets must not be
     * shared between tenants (each is armed on its tenant's VM).
     */
    core::FrameworkConfig config;
};

/** Fleet-wide knobs. */
struct FleetOptions {
    /** Shared AR pool width; 0 = hardware_concurrency, sized once. */
    std::size_t workers = 0;
    /** Fair-share: max in-flight alarm jobs per tenant. */
    std::size_t tenant_inflight_cap = 2;
    /**
     * Ship checkpoints: each pool worker serializes the job's checkpoint
     * to a kCheckpointImage and boots the AR from the *deserialized*
     * copy — exactly what a remote AR tier would execute. Verdicts,
     * digests, and counters are gated bit-identical to in-memory jobs;
     * shipped volume rides in gauges only.
     */
    bool ship_checkpoints = false;
    /**
     * The live health plane (off by default). When enabled, a
     * HealthMonitor samples every tenant's live signals on its cadence,
     * a FlightRecorder black-boxes recent events (dumped on attack
     * verdicts, SLO breaches, and abandon shutdowns), and — when
     * telemetry.enabled too — a loopback HTTP endpoint serves /metrics,
     * /healthz and /flight while the fleet runs. The plane is passive:
     * verdicts, digests and counter snapshots are bit-identical with it
     * on or off.
     */
    obs::HealthOptions health;
    obs::TelemetryOptions telemetry;
    /**
     * Keep the telemetry endpoint up this long after the run completes
     * (smoke tests curl it); a shutdown() request cuts the linger short.
     */
    std::uint32_t telemetry_linger_ms = 0;
};

/** How shutdown() treats alarm jobs not yet executed. */
enum class ShutdownMode {
    kDrain,    ///< stop sessions, finish every submitted job
    kAbandon,  ///< stop sessions, discard queued jobs (partial results)
};

/** One tenant's outcome. */
struct TenantRunResult {
    std::string name;
    /** Same shape the single framework returns, finalized identically. */
    core::FrameworkResult result;
    /** True if the session was stopped early or jobs were discarded. */
    bool partial = false;
    /** Alarm jobs submitted but discarded by an abandon shutdown. */
    std::size_t jobs_dropped = 0;
    /** Ship mode: jobs whose checkpoint went through the wire image,
     *  and the serialized bytes moved (scheduling-dependent detail —
     *  exported as gauges, not counters). */
    std::size_t jobs_shipped = 0;
    std::uint64_t bytes_shipped = 0;
};

/** Everything a fleet run produced. */
struct FleetResult {
    std::vector<TenantRunResult> tenants;
    /** Shared-pool scheduling counters (zero in fallback mode). */
    PoolStats pool;
    std::vector<TenantPoolStats> tenant_pool;
    /**
     * Fleet-wide registry: every tenant's pipeline stats under
     * "tenant.<name>." (so two tenants' series can never alias), each
     * tenant's ar.verdict_latency histogram, and fleet.pool.* stats.
     * Feed it to obs::MetricsExporter for JSON/Prometheus.
     */
    stats::StatRegistry metrics;
    /** True if RSAFE_NO_FLEET routed this run through per-tenant
     *  frameworks instead of the shared pool. */
    bool used_fallback = false;

    /** Health-plane outputs (empty when the plane was off). @{ */
    std::string healthz;  ///< final /healthz JSON document
    std::vector<obs::HealthEvent> health_events;
    std::vector<std::uint8_t> flight_box;  ///< latest dump (wire bytes)
    std::uint16_t telemetry_port = 0;      ///< bound port (0 = no server)
    /** @} */
};

/** N sessions, one shared work-stealing alarm-replay pool. */
class ReplayFleet {
  public:
    ReplayFleet(std::vector<FleetTenant> tenants, FleetOptions options = {});

    /** Run every tenant to completion (or until shutdown()). Blocking;
     *  call at most once. */
    FleetResult run();

    /**
     * Wind down a run() in progress from any thread: every session gets
     * request_stop(); kAbandon additionally discards alarm jobs not yet
     * executing. Idempotent; kAbandon wins if both modes are requested.
     */
    void shutdown(ShutdownMode mode);

  private:
    struct TenantState;

    FleetResult run_fleet();
    FleetResult run_fallback();

    /** The configuration of the tenant named @p name. */
    const core::FrameworkConfig& config_for(const std::string& name) const;

    /** Fold per-tenant registries + pool stats into result->metrics. */
    static void collect_metrics(FleetResult* result);

    std::vector<FleetTenant> tenants_;
    FleetOptions options_;
    bool ran_ = false;

    /** Guards the shutdown flags and the live-run pointers below. */
    std::mutex mu_;
    bool shutdown_requested_ = false;
    bool abandon_requested_ = false;
    std::vector<TenantState*> live_states_;
    WorkStealingPool* live_pool_ = nullptr;
};

}  // namespace rsafe::fleet

#endif  // RSAFE_FLEET_FLEET_H_
