#include "fleet/work_pool.h"

#include <algorithm>
#include <utility>

#include "common/log.h"
#include "obs/trace.h"

namespace rsafe::fleet {

WorkStealingPool::WorkStealingPool(const PoolOptions& options)
    : options_(options)
{
    std::size_t n = options_.workers != 0
                        ? options_.workers
                        : std::thread::hardware_concurrency();
    if (n == 0)
        n = 1;
    if (options_.tenant_inflight_cap == 0)
        fatal("WorkStealingPool: tenant_inflight_cap must be >= 1");
    stats_.workers = n;
    deques_.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        deques_.push_back(std::make_unique<WorkerDeque>());
    workers_.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        workers_.emplace_back([this, i] { worker_main(i); });
}

WorkStealingPool::~WorkStealingPool()
{
    abandon();
    {
        std::lock_guard<std::mutex> lock(mu_);
        stopping_ = true;
    }
    work_cv_.notify_all();
    for (auto& worker : workers_)
        worker.join();
}

std::size_t
WorkStealingPool::register_tenant(std::string name)
{
    std::lock_guard<std::mutex> lock(mu_);
    Tenant tenant;
    tenant.stats.name = name;
    tenant.name = std::move(name);
    tenants_.push_back(std::move(tenant));
    return tenants_.size() - 1;
}

void
WorkStealingPool::submit(std::size_t tenant, Job job)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (tenant >= tenants_.size())
        fatal("WorkStealingPool: submit to unregistered tenant");
    Tenant& t = tenants_[tenant];
    ++t.stats.submitted;
    ++stats_.submitted;
    ++outstanding_;
    QueuedJob queued{tenant, std::move(job)};
    if (t.inflight < options_.tenant_inflight_cap) {
        ++t.inflight;
        t.admitted.push_back(std::move(queued));
        stats_.max_admitted = std::max(stats_.max_admitted, admitted_total());
        work_cv_.notify_one();
    } else {
        t.parked.push_back(std::move(queued));
        t.stats.max_parked = std::max(t.stats.max_parked, t.parked.size());
    }
}

std::size_t
WorkStealingPool::admitted_total() const
{
    std::size_t total = 0;
    for (const Tenant& t : tenants_)
        total += t.admitted.size();
    return total;
}

bool
WorkStealingPool::pop_local(std::size_t w, QueuedJob* out)
{
    WorkerDeque& deque = *deques_[w];
    std::lock_guard<std::mutex> lock(deque.mu);
    if (deque.jobs.empty())
        return false;
    *out = std::move(deque.jobs.front());
    deque.jobs.pop_front();
    return true;
}

bool
WorkStealingPool::take_admitted(std::size_t w, QueuedJob* out)
{
    std::vector<QueuedJob> batch;
    {
        std::lock_guard<std::mutex> lock(mu_);
        const std::size_t total = admitted_total();
        if (total == 0 || tenants_.empty())
            return false;
        // Size the hand-off so concurrent takers each get a share; the
        // leftovers ride in this worker's deque where siblings can steal
        // them back.
        const std::size_t want = std::clamp<std::size_t>(
            total / workers_.size(), 1, 8);
        std::size_t empty_scanned = 0;
        while (batch.size() < want && empty_scanned < tenants_.size()) {
            Tenant& t = tenants_[rr_];
            rr_ = (rr_ + 1) % tenants_.size();
            if (t.admitted.empty()) {
                ++empty_scanned;
                continue;
            }
            empty_scanned = 0;
            batch.push_back(std::move(t.admitted.front()));
            t.admitted.pop_front();
        }
        ++stats_.global_takes;
    }
    *out = std::move(batch.front());
    if (batch.size() > 1) {
        WorkerDeque& deque = *deques_[w];
        std::lock_guard<std::mutex> lock(deque.mu);
        for (std::size_t i = 1; i < batch.size(); ++i)
            deque.jobs.push_back(std::move(batch[i]));
    }
    return true;
}

bool
WorkStealingPool::steal(std::size_t w, QueuedJob* out)
{
    // Pick the fattest sibling deque. Sizes are sampled under each
    // deque's own lock; a stale pick just means a retry next loop.
    std::size_t victim = deques_.size();
    std::size_t best = 0;
    for (std::size_t i = 0; i < deques_.size(); ++i) {
        if (i == w)
            continue;
        std::lock_guard<std::mutex> lock(deques_[i]->mu);
        if (deques_[i]->jobs.size() > best) {
            best = deques_[i]->jobs.size();
            victim = i;
        }
    }
    if (victim == deques_.size())
        return false;

    std::vector<QueuedJob> loot;
    {
        WorkerDeque& deque = *deques_[victim];
        std::lock_guard<std::mutex> lock(deque.mu);
        const std::size_t n = deque.jobs.size();
        if (n == 0)
            return false;
        const std::size_t take = (n + 1) / 2;
        // Thieves take from the back — the owner keeps popping the front
        // undisturbed. Collect back-first, then reverse to restore age
        // order.
        for (std::size_t i = 0; i < take; ++i) {
            loot.push_back(std::move(deque.jobs.back()));
            deque.jobs.pop_back();
        }
    }
    std::reverse(loot.begin(), loot.end());
    *out = std::move(loot.front());
    if (loot.size() > 1) {
        WorkerDeque& deque = *deques_[w];
        std::lock_guard<std::mutex> lock(deque.mu);
        for (std::size_t i = 1; i < loot.size(); ++i)
            deque.jobs.push_back(std::move(loot[i]));
    }
    {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.steals;
        stats_.stolen_jobs += loot.size();
    }
    return true;
}

void
WorkStealingPool::complete(const QueuedJob& job)
{
    std::lock_guard<std::mutex> lock(mu_);
    Tenant& t = tenants_[job.tenant];
    ++t.stats.executed;
    ++stats_.executed;
    --outstanding_;
    --t.inflight;
    // The completed job frees one slot of its tenant's fair share; admit
    // the tenant's oldest parked job into it.
    if (!t.parked.empty() && t.inflight < options_.tenant_inflight_cap) {
        ++t.inflight;
        t.admitted.push_back(std::move(t.parked.front()));
        t.parked.pop_front();
        stats_.max_admitted = std::max(stats_.max_admitted, admitted_total());
        work_cv_.notify_one();
    }
    if (outstanding_ == 0)
        idle_cv_.notify_all();
}

void
WorkStealingPool::worker_main(std::size_t index)
{
    if (obs::Tracer::instance().enabled()) {
        const std::string name = "fleet.worker" + std::to_string(index);
        obs::Tracer::instance().attach_thread(name.c_str());
    }
    for (;;) {
        QueuedJob job;
        if (pop_local(index, &job) || take_admitted(index, &job) ||
            steal(index, &job)) {
            job.fn();
            complete(job);
            continue;
        }
        std::unique_lock<std::mutex> lock(mu_);
        if (admitted_total() > 0)
            continue;  // raced with a submit; retry the fast path
        if (stopping_)
            return;
        ++stats_.starved_waits;
        work_cv_.wait(lock,
                      [this] { return stopping_ || admitted_total() > 0; });
        if (stopping_ && admitted_total() == 0)
            return;
    }
}

void
WorkStealingPool::drain()
{
    std::unique_lock<std::mutex> lock(mu_);
    idle_cv_.wait(lock, [this] { return outstanding_ == 0; });
}

void
WorkStealingPool::abandon()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        for (Tenant& t : tenants_) {
            const std::size_t dropped = t.parked.size() + t.admitted.size();
            t.stats.discarded += dropped;
            stats_.discarded += dropped;
            outstanding_ -= dropped;
            t.inflight -= t.admitted.size();
            t.parked.clear();
            t.admitted.clear();
        }
    }
    // Jobs already handed to worker deques occupy their tenants' in-flight
    // slots; pull them out deque-first (never holding mu_ under a deque
    // lock), then account for them.
    std::vector<QueuedJob> taken;
    for (auto& deque : deques_) {
        std::lock_guard<std::mutex> lock(deque->mu);
        while (!deque->jobs.empty()) {
            taken.push_back(std::move(deque->jobs.front()));
            deque->jobs.pop_front();
        }
    }
    {
        std::unique_lock<std::mutex> lock(mu_);
        for (const QueuedJob& job : taken) {
            Tenant& t = tenants_[job.tenant];
            ++t.stats.discarded;
            ++stats_.discarded;
            --outstanding_;
            --t.inflight;
        }
        // Only the jobs actually executing remain; wait those out.
        idle_cv_.wait(lock, [this] { return outstanding_ == 0; });
    }
}

PoolStats
WorkStealingPool::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
}

std::vector<TenantPoolStats>
WorkStealingPool::tenant_stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<TenantPoolStats> out;
    out.reserve(tenants_.size());
    for (const Tenant& t : tenants_)
        out.push_back(t.stats);
    return out;
}

}  // namespace rsafe::fleet
