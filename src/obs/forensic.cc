#include "obs/forensic.h"

#include <sstream>

#include "common/log.h"
#include "rnr/wire.h"

namespace rsafe::obs {

namespace {

using rnr::wire::PayloadKind;

/** Upper bound on an embedded string (decode sanity check). */
constexpr std::uint32_t kMaxStringLength = 1u << 16;

void
put_u64(std::vector<std::uint8_t>* out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out->push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xff));
}

void
put_u32(std::vector<std::uint8_t>* out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out->push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xff));
}

void
put_string(std::vector<std::uint8_t>* out, const std::string& s)
{
    put_u32(out, static_cast<std::uint32_t>(s.size()));
    out->insert(out->end(), s.begin(), s.end());
}

/** A bounds-checked little-endian reader over one frame payload. */
class Cursor {
  public:
    Cursor(const std::uint8_t* data, std::size_t size)
        : data_(data), size_(size)
    {
    }

    Status u8(std::uint8_t* out)
    {
        if (pos_ + 1 > size_)
            return truncated("u8");
        *out = data_[pos_++];
        return Status();
    }

    Status u32(std::uint32_t* out)
    {
        if (pos_ + 4 > size_)
            return truncated("u32");
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
        pos_ += 4;
        *out = v;
        return Status();
    }

    Status u64(std::uint64_t* out)
    {
        if (pos_ + 8 > size_)
            return truncated("u64");
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
        pos_ += 8;
        *out = v;
        return Status();
    }

    Status string(std::string* out)
    {
        std::uint32_t len = 0;
        if (Status s = u32(&len); !s.ok())
            return s;
        if (len > kMaxStringLength) {
            return Status(StatusCode::kMalformedRecord,
                          strcat_args("forensic string length ", len,
                                      " exceeds cap ", kMaxStringLength));
        }
        if (pos_ + len > size_)
            return truncated("string body");
        out->assign(reinterpret_cast<const char*>(data_ + pos_), len);
        pos_ += len;
        return Status();
    }

    bool exhausted() const { return pos_ == size_; }

  private:
    Status truncated(const char* what) const
    {
        return Status(StatusCode::kTruncated,
                      strcat_args("forensic frame ends mid-", what,
                                  " at byte ", pos_, " of ", size_));
    }

    const std::uint8_t* data_;
    std::size_t size_;
    std::size_t pos_ = 0;
};

/** Append @p text JSON-escaped. */
void
append_escaped(std::string* out, const std::string& text)
{
    for (const char c : text) {
        switch (c) {
          case '"': *out += "\\\""; break;
          case '\\': *out += "\\\\"; break;
          case '\n': *out += "\\n"; break;
          case '\t': *out += "\\t"; break;
          default: *out += c;
        }
    }
}

std::string
hex(std::uint64_t value)
{
    std::ostringstream os;
    os << "0x" << std::hex << value;
    return os.str();
}

}  // namespace

const char*
gadget_class_name(GadgetClass cls)
{
    switch (cls) {
      case GadgetClass::kUnknown: return "unknown";
      case GadgetClass::kChain: return "chain";
      case GadgetClass::kLoad: return "load";
      case GadgetClass::kStore: return "store";
      case GadgetClass::kAlu: return "alu";
      case GadgetClass::kStackPivot: return "stack-pivot";
      case GadgetClass::kBranch: return "branch";
      case GadgetClass::kSystem: return "system";
    }
    return "<bad>";
}

std::vector<std::uint8_t>
ForensicReport::serialize() const
{
    // Frame 0 carries the scalar/string fields; frames 1..N carry one
    // gadget each, so a damaged gadget frame loses only that link.
    std::vector<std::uint8_t> head;
    put_u64(&head, log_index);
    put_u64(&head, icount);
    head.push_back(is_attack ? 1 : 0);
    head.push_back(kernel_mode ? 1 : 0);
    put_string(&head, cause);
    put_u64(&head, ret_pc);
    put_string(&head, faulting_function);
    put_u64(&head, function_begin);
    put_u64(&head, function_end);
    put_u64(&head, expected_target);
    put_string(&head, call_site_function);
    put_u64(&head, actual_target);
    put_string(&head, target_function);
    put_u64(&head, static_cast<std::uint64_t>(tid));
    put_u64(&head, shadow_depth);
    put_u64(&head, static_cast<std::uint64_t>(shadow_delta));
    put_u64(&head, threads_tracked);

    std::vector<std::uint8_t> out;
    rnr::wire::Header header;
    header.kind = PayloadKind::kForensicReport;
    header.frame_count = 1 + gadgets.size();
    rnr::wire::encode_header(header, &out);
    rnr::wire::append_frame(0, head.data(), head.size(), &out);
    for (std::size_t i = 0; i < gadgets.size(); ++i) {
        std::vector<std::uint8_t> frame;
        put_u64(&frame, gadgets[i].pc);
        frame.push_back(static_cast<std::uint8_t>(gadgets[i].cls));
        put_string(&frame, gadgets[i].disasm);
        put_string(&frame, gadgets[i].function);
        rnr::wire::append_frame(static_cast<std::uint32_t>(i + 1),
                                frame.data(), frame.size(), &out);
    }
    return out;
}

Status
ForensicReport::deserialize(const std::vector<std::uint8_t>& bytes,
                            ForensicReport* out)
{
    *out = ForensicReport();
    const auto report = rnr::wire::read_frames(
        bytes, PayloadKind::kForensicReport,
        [&](std::uint64_t seq, std::size_t offset,
            std::size_t length) -> Status {
            Cursor cursor(bytes.data() + offset, length);
            if (seq == 0) {
                std::uint8_t attack = 0;
                std::uint8_t kernel = 0;
                std::uint64_t tid64 = 0;
                std::uint64_t delta64 = 0;
                Status s;
                if (!(s = cursor.u64(&out->log_index)).ok()) return s;
                if (!(s = cursor.u64(&out->icount)).ok()) return s;
                if (!(s = cursor.u8(&attack)).ok()) return s;
                if (!(s = cursor.u8(&kernel)).ok()) return s;
                if (!(s = cursor.string(&out->cause)).ok()) return s;
                if (!(s = cursor.u64(&out->ret_pc)).ok()) return s;
                if (!(s = cursor.string(&out->faulting_function)).ok())
                    return s;
                if (!(s = cursor.u64(&out->function_begin)).ok()) return s;
                if (!(s = cursor.u64(&out->function_end)).ok()) return s;
                if (!(s = cursor.u64(&out->expected_target)).ok()) return s;
                if (!(s = cursor.string(&out->call_site_function)).ok())
                    return s;
                if (!(s = cursor.u64(&out->actual_target)).ok()) return s;
                if (!(s = cursor.string(&out->target_function)).ok())
                    return s;
                if (!(s = cursor.u64(&tid64)).ok()) return s;
                if (!(s = cursor.u64(&out->shadow_depth)).ok()) return s;
                if (!(s = cursor.u64(&delta64)).ok()) return s;
                if (!(s = cursor.u64(&out->threads_tracked)).ok()) return s;
                out->is_attack = attack != 0;
                out->kernel_mode = kernel != 0;
                out->tid = static_cast<ThreadId>(tid64);
                out->shadow_delta = static_cast<std::int64_t>(delta64);
            } else {
                GadgetInfo gadget;
                std::uint8_t cls = 0;
                Status s;
                if (!(s = cursor.u64(&gadget.pc)).ok()) return s;
                if (!(s = cursor.u8(&cls)).ok()) return s;
                if (cls > static_cast<std::uint8_t>(GadgetClass::kSystem)) {
                    return Status(StatusCode::kMalformedRecord,
                                  strcat_args("gadget frame ", seq,
                                              ": bad class ", cls));
                }
                if (!(s = cursor.string(&gadget.disasm)).ok()) return s;
                if (!(s = cursor.string(&gadget.function)).ok()) return s;
                gadget.cls = static_cast<GadgetClass>(cls);
                out->gadgets.push_back(std::move(gadget));
            }
            if (!cursor.exhausted()) {
                return Status(StatusCode::kMalformedRecord,
                              strcat_args("forensic frame ", seq,
                                          " carries trailing bytes"));
            }
            return Status();
        });
    return report.status;
}

std::string
ForensicReport::to_string() const
{
    std::ostringstream os;
    os << "forensic report: alarm #" << log_index << " @icount " << icount
       << (kernel_mode ? " [kernel]" : " [user]") << " -> " << cause
       << (is_attack ? " (ATTACK)" : "") << "\n";
    os << "  where: ret at " << hex(ret_pc);
    if (!faulting_function.empty()) {
        os << " in <" << faulting_function << ">";
        if (function_end != 0)
            os << " [" << hex(function_begin) << ", " << hex(function_end)
               << ")";
    }
    os << "\n         expected " << hex(expected_target);
    if (!call_site_function.empty())
        os << " in <" << call_site_function << ">";
    os << ", redirected to " << hex(actual_target);
    if (!target_function.empty())
        os << " in <" << target_function << ">";
    os << "\n  who:   tid " << tid << ", shadow depth " << shadow_depth
       << " (delta " << (shadow_delta >= 0 ? "+" : "") << shadow_delta
       << " since checkpoint), " << threads_tracked
       << " thread(s) tracked\n";
    os << "  what:  " << gadgets.size() << " gadget(s) staged";
    for (const GadgetInfo& gadget : gadgets) {
        os << "\n         " << hex(gadget.pc) << " ["
           << gadget_class_name(gadget.cls) << "]";
        if (!gadget.disasm.empty())
            os << "  " << gadget.disasm;
        if (!gadget.function.empty())
            os << "  <" << gadget.function << ">";
    }
    os << "\n";
    return os.str();
}

std::string
ForensicReport::to_json() const
{
    std::string out = "{";
    out += "\"log_index\": " + std::to_string(log_index);
    out += ", \"icount\": " + std::to_string(icount);
    out += ", \"cause\": \"";
    append_escaped(&out, cause);
    out += "\", \"is_attack\": ";
    out += is_attack ? "true" : "false";
    out += ", \"kernel_mode\": ";
    out += kernel_mode ? "true" : "false";
    out += ", \"where\": {\"ret_pc\": \"" + hex(ret_pc) + "\"";
    out += ", \"faulting_function\": \"";
    append_escaped(&out, faulting_function);
    out += "\", \"function_begin\": \"" + hex(function_begin) + "\"";
    out += ", \"function_end\": \"" + hex(function_end) + "\"";
    out += ", \"expected_target\": \"" + hex(expected_target) + "\"";
    out += ", \"call_site_function\": \"";
    append_escaped(&out, call_site_function);
    out += "\", \"actual_target\": \"" + hex(actual_target) + "\"";
    out += ", \"target_function\": \"";
    append_escaped(&out, target_function);
    out += "\"}";
    out += ", \"who\": {\"tid\": " + std::to_string(tid);
    out += ", \"shadow_depth\": " + std::to_string(shadow_depth);
    out += ", \"shadow_delta\": " + std::to_string(shadow_delta);
    out += ", \"threads_tracked\": " + std::to_string(threads_tracked);
    out += "}";
    out += ", \"what\": {\"gadgets\": [";
    for (std::size_t i = 0; i < gadgets.size(); ++i) {
        if (i != 0)
            out += ", ";
        out += "{\"pc\": \"" + hex(gadgets[i].pc) + "\"";
        out += ", \"class\": \"";
        out += gadget_class_name(gadgets[i].cls);
        out += "\", \"disasm\": \"";
        append_escaped(&out, gadgets[i].disasm);
        out += "\", \"function\": \"";
        append_escaped(&out, gadgets[i].function);
        out += "\"}";
    }
    out += "]}}";
    return out;
}

}  // namespace rsafe::obs
