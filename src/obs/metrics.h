#ifndef RSAFE_OBS_METRICS_H_
#define RSAFE_OBS_METRICS_H_

#include <string>

#include "stats/stats.h"

/**
 * @file
 * Metrics export: render any StatRegistry — counters, histograms (with
 * p50/p95/p99), and time-series gauges — as either a JSON document or
 * Prometheus text exposition format (version 0.0.4). The exporter is a
 * pure reader: it never mutates the registry, so it can run on merged
 * post-join registries or on a live single-threaded one.
 */

namespace rsafe::obs {

/** Renders StatRegistry contents in machine-readable formats. */
class MetricsExporter {
  public:
    explicit MetricsExporter(const stats::StatRegistry& registry)
        : registry_(&registry)
    {
    }

    /** @return a JSON document: {"counters":…,"histograms":…,"gauges":…}. */
    std::string to_json() const;

    /**
     * @return Prometheus text exposition. Metric names are sanitized
     * (every character outside [a-zA-Z0-9_:] becomes '_') and prefixed
     * with @p prefix; histograms emit cumulative `_bucket{le=…}`,
     * `_sum` and `_count` series, gauges emit their last value.
     */
    std::string to_prometheus(const std::string& prefix = "rsafe_") const;

  private:
    const stats::StatRegistry* registry_;
};

/** @return @p name with every non-[a-zA-Z0-9_:] character replaced by '_'. */
std::string sanitize_metric_name(const std::string& name);

}  // namespace rsafe::obs

#endif  // RSAFE_OBS_METRICS_H_
