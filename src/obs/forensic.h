#ifndef RSAFE_OBS_FORENSIC_H_
#define RSAFE_OBS_FORENSIC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"

/**
 * @file
 * The structured forensic record of one analyzed alarm — the paper's
 * Section 6 "where / who / what" answer in machine-readable form.
 *
 * The AlarmReplayer's text report is for humans at a terminal; incident
 * response wants fields. A ForensicReport captures where the hijack
 * happened (faulting PC, its containing function and inferred bounds),
 * who mounted it (thread id from BackRAS introspection, shadow-stack
 * depth and delta since the checkpoint), and what was staged (the gadget
 * chain with a per-gadget classification of the primitive each provides).
 * Reports serialize on the hardened CRC32C wire format
 * (PayloadKind::kForensicReport) so they survive shipping alongside the
 * log, and deserialize with Status — malformed bytes are reported, never
 * fatal, per the no-CHECK decode policy.
 */

namespace rsafe::obs {

/** What primitive a gadget's first instruction provides an attacker. */
enum class GadgetClass : std::uint8_t {
    kUnknown = 0,   ///< not decodable / outside the image
    kChain,         ///< ret — pure chain link
    kLoad,          ///< memory or immediate load
    kStore,         ///< memory store
    kAlu,           ///< arithmetic / logic
    kStackPivot,    ///< sp manipulation (setsp/addsp/push/pop)
    kBranch,        ///< jump / call redirection
    kSystem,        ///< syscall / iret / pio — the payoff instruction
};

/** @return a short stable name for @p cls. */
const char* gadget_class_name(GadgetClass cls);

/** One classified link of a gadget chain. */
struct GadgetInfo {
    Addr pc = 0;
    GadgetClass cls = GadgetClass::kUnknown;
    std::string disasm;    ///< first instruction, disassembled
    std::string function;  ///< containing function name (may be empty)
};

/** The structured record of one analyzed alarm. */
struct ForensicReport {
    // Identification.
    std::uint64_t log_index = 0;   ///< alarm's index in the input log
    InstrCount icount = 0;         ///< instruction count at the alarm
    std::string cause;             ///< alarm_cause_name() of the verdict
    bool is_attack = false;
    bool kernel_mode = false;

    // Where: the faulting return and the control-flow redirection.
    Addr ret_pc = 0;
    std::string faulting_function;
    Addr function_begin = 0;       ///< inferred bounds (0 if unknown)
    Addr function_end = 0;
    Addr expected_target = 0;
    std::string call_site_function;
    Addr actual_target = 0;
    std::string target_function;

    // Who: the mounting thread, seen through BackRAS introspection.
    ThreadId tid = 0;
    std::uint64_t shadow_depth = 0;   ///< shadow-stack depth at the alarm
    std::int64_t shadow_delta = 0;    ///< depth change since the checkpoint
    std::uint64_t threads_tracked = 0;

    // What: the staged chain.
    std::vector<GadgetInfo> gadgets;

    /** Serialize on the wire format (PayloadKind::kForensicReport). */
    std::vector<std::uint8_t> serialize() const;

    /** Strict decode of @p bytes into @p out; never throws. */
    static Status deserialize(const std::vector<std::uint8_t>& bytes,
                              ForensicReport* out);

    /** Multi-line human-readable rendering. */
    std::string to_string() const;

    /** JSON object rendering. */
    std::string to_json() const;
};

}  // namespace rsafe::obs

#endif  // RSAFE_OBS_FORENSIC_H_
