#ifndef RSAFE_OBS_TRACE_H_
#define RSAFE_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

/**
 * @file
 * Low-overhead pipeline tracing.
 *
 * Each pipeline thread (recorder, checkpointing replayer, AR workers)
 * owns a preallocated TraceBuffer and appends fixed-size events to it
 * with no locks and no allocation: the hot path is a thread-local
 * pointer dereference, a steady_clock read, and a bump of an atomic
 * size. The process-level Tracer registers every buffer, and after the
 * run stitches them into one Chrome/Perfetto `trace_event` JSON file
 * (load it in chrome://tracing or https://ui.perfetto.dev).
 *
 * Alarms are correlated across threads with flow events: the CR emits a
 * flow-start keyed by the alarm's log index when it queues a
 * PendingAlarm, and the AR worker that claims it emits the matching
 * flow-finish inside its analysis span — Perfetto draws the arrow from
 * detection to verdict.
 *
 * Tracing is off by default. Components call Tracer::set_enabled(true)
 * (the `rsafe-report` CLI and benches do); the RSAFE_NO_TRACE
 * environment variable wins over everything and forces tracing off, so
 * any A/B overhead or determinism question can be answered without a
 * rebuild. Event names and categories must be string literals (or other
 * static-lifetime strings): buffers store the pointers, not copies.
 */

namespace rsafe::obs {

/** One fixed-size trace event; name/category must outlive the tracer. */
struct TraceEvent {
    /** Chrome trace_event phase, restricted to what the pipeline needs. */
    enum class Phase : std::uint8_t {
        kBegin,       ///< "B" — span open
        kEnd,         ///< "E" — span close
        kInstant,     ///< "i" — point event
        kCounter,     ///< "C" — sampled series value
        kFlowStart,   ///< "s" — flow arrow tail (alarm raised)
        kFlowFinish,  ///< "f" — flow arrow head (alarm classified)
    };

    Phase phase = Phase::kInstant;
    bool has_arg = false;
    const char* name = nullptr;      ///< static-lifetime string
    const char* category = nullptr;  ///< static-lifetime string
    const char* arg_name = nullptr;  ///< optional, static-lifetime
    std::uint64_t ts_ns = 0;         ///< relative to session start
    std::uint64_t id = 0;            ///< flow id / counter value
    std::uint64_t arg_value = 0;
};

/**
 * A single-writer event buffer. The owning thread appends; any other
 * thread may read the published prefix after an acquire of size().
 * The capacity is fixed at attach time — when it fills, further events
 * are counted in dropped() instead of allocating (the hot path must
 * never touch the allocator).
 */
class TraceBuffer {
  public:
    static constexpr std::size_t kDefaultCapacity = 1u << 16;

    explicit TraceBuffer(std::string thread_name,
                         std::size_t capacity = kDefaultCapacity);

    /** Append one event (owner thread only). */
    void emit(const TraceEvent& event);

    /** @return number of published events (acquire). */
    std::size_t size() const
    {
        return size_.load(std::memory_order_acquire);
    }

    /** @return events lost to buffer exhaustion. */
    std::uint64_t dropped() const
    {
        return dropped_.load(std::memory_order_relaxed);
    }

    /** @return event @p i of the published prefix. */
    const TraceEvent& at(std::size_t i) const { return events_[i]; }

    const std::string& thread_name() const { return name_; }
    std::uint32_t tid() const { return tid_; }

  private:
    friend class Tracer;

    std::string name_;
    std::uint32_t tid_ = 0;  ///< assigned by the Tracer at registration
    std::vector<TraceEvent> events_;
    std::atomic<std::size_t> size_{0};
    std::atomic<std::uint64_t> dropped_{0};
};

/** The process-level trace collector; one instance stitches all threads. */
class Tracer {
  public:
    /** @return the process singleton. */
    static Tracer& instance();

    /**
     * Turn tracing on or off. RSAFE_NO_TRACE in the environment forces
     * tracing off regardless of @p enabled (checked here, at call time,
     * so tests can flip it between runs).
     */
    void set_enabled(bool enabled);

    /** @return whether emit paths are live. */
    bool enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /**
     * Start a fresh trace session: resets every registered buffer and
     * re-zeroes the clock. Buffers are kept (never deallocated) so
     * thread-local pointers held by still-running threads stay valid.
     */
    void begin_session();

    /**
     * Register the calling thread under @p name, creating (or reusing)
     * its thread-local buffer. Returns nullptr past the buffer cap.
     */
    TraceBuffer* attach_thread(const char* name);

    /** @{ Emit helpers; no-ops when disabled. */
    void span_begin(const char* name, const char* category);
    void span_end(const char* name, const char* category);
    void instant(const char* name, const char* category,
                 const char* arg_name = nullptr, std::uint64_t arg_value = 0);
    void counter(const char* name, const char* category,
                 std::uint64_t value);
    void flow_start(const char* name, const char* category, std::uint64_t id);
    void flow_finish(const char* name, const char* category,
                     std::uint64_t id);
    /** @} */

    /** @return total events shed across all buffers this session. */
    std::uint64_t dropped() const;

    /** @return total events captured across all buffers this session. */
    std::uint64_t event_count() const;

    /** @return the stitched Chrome trace_event JSON document. */
    std::string export_chrome_json() const;

    /** Write export_chrome_json() to @p path; false on I/O failure. */
    bool write_chrome_json(const std::string& path) const;

  private:
    Tracer() = default;

    /** Hard cap on registered buffers (attach past it returns null). */
    static constexpr std::size_t kMaxBuffers = 64;

    std::uint64_t now_ns() const;
    TraceBuffer* tls_buffer();
    void emit(const TraceEvent& event);

    std::atomic<bool> enabled_{false};
    mutable std::mutex mutex_;  ///< guards buffers_ and session state
    std::vector<std::unique_ptr<TraceBuffer>> buffers_;
    std::uint64_t t0_ns_ = 0;   ///< steady_clock origin of the session
};

/** RAII span: begin at construction, end at destruction. */
class ScopedSpan {
  public:
    ScopedSpan(const char* name, const char* category)
        : name_(name), category_(category),
          live_(Tracer::instance().enabled())
    {
        if (live_)
            Tracer::instance().span_begin(name_, category_);
    }

    ~ScopedSpan()
    {
        if (live_)
            Tracer::instance().span_end(name_, category_);
    }

    ScopedSpan(const ScopedSpan&) = delete;
    ScopedSpan& operator=(const ScopedSpan&) = delete;

  private:
    const char* name_;
    const char* category_;
    bool live_;  ///< balanced even if enabled() flips mid-span
};

/**
 * Validate that @p json looks like a loadable Chrome trace_event
 * document: a traceEvents array of objects, every event carrying the
 * required fields for its phase, B/E balanced per thread, and every
 * flow-start id terminated by a flow-finish. On failure *error names
 * the first violation.
 */
bool validate_trace_json(const std::string& json, std::string* error);

}  // namespace rsafe::obs

#endif  // RSAFE_OBS_TRACE_H_
