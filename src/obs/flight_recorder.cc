#include "obs/flight_recorder.h"

#include <chrono>
#include <sstream>

#include "common/log.h"
#include "rnr/wire.h"

namespace rsafe::obs {

namespace {

using rnr::wire::PayloadKind;

/** Upper bound on an embedded string (decode sanity check). */
constexpr std::uint32_t kMaxStringLength = 1u << 16;

void
put_u64(std::vector<std::uint8_t>* out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out->push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xff));
}

void
put_u32(std::vector<std::uint8_t>* out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out->push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xff));
}

void
put_string(std::vector<std::uint8_t>* out, const std::string& s)
{
    put_u32(out, static_cast<std::uint32_t>(s.size()));
    out->insert(out->end(), s.begin(), s.end());
}

/** A bounds-checked little-endian reader over one frame payload. */
class Cursor {
  public:
    Cursor(const std::uint8_t* data, std::size_t size)
        : data_(data), size_(size)
    {
    }

    Status u8(std::uint8_t* out)
    {
        if (pos_ + 1 > size_)
            return truncated("u8");
        *out = data_[pos_++];
        return Status();
    }

    Status u32(std::uint32_t* out)
    {
        if (pos_ + 4 > size_)
            return truncated("u32");
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
        pos_ += 4;
        *out = v;
        return Status();
    }

    Status u64(std::uint64_t* out)
    {
        if (pos_ + 8 > size_)
            return truncated("u64");
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
        pos_ += 8;
        *out = v;
        return Status();
    }

    Status string(std::string* out)
    {
        std::uint32_t len = 0;
        if (Status s = u32(&len); !s.ok())
            return s;
        if (len > kMaxStringLength) {
            return Status(StatusCode::kMalformedRecord,
                          strcat_args("flight string length ", len,
                                      " exceeds cap ", kMaxStringLength));
        }
        if (pos_ + len > size_)
            return truncated("string body");
        out->assign(reinterpret_cast<const char*>(data_ + pos_), len);
        pos_ += len;
        return Status();
    }

    bool exhausted() const { return pos_ == size_; }

  private:
    Status truncated(const char* what) const
    {
        return Status(StatusCode::kTruncated,
                      strcat_args("flight frame ends mid-", what,
                                  " at byte ", pos_, " of ", size_));
    }

    const std::uint8_t* data_;
    std::size_t size_;
    std::size_t pos_ = 0;
};

/** Append @p text JSON-escaped. */
void
append_escaped(std::string* out, const std::string& text)
{
    for (const char c : text) {
        switch (c) {
          case '"': *out += "\\\""; break;
          case '\\': *out += "\\\\"; break;
          case '\n': *out += "\\n"; break;
          case '\t': *out += "\\t"; break;
          default: *out += c;
        }
    }
}

}  // namespace

const char*
flight_entry_kind_name(FlightEntryKind kind)
{
    switch (kind) {
      case FlightEntryKind::kNote: return "note";
      case FlightEntryKind::kSample: return "sample";
      case FlightEntryKind::kTransition: return "transition";
      case FlightEntryKind::kVerdict: return "verdict";
      case FlightEntryKind::kShutdown: return "shutdown";
    }
    return "<bad>";
}

std::vector<std::uint8_t>
FlightBox::serialize() const
{
    // Frame 0 carries the dump scalars; frames 1..N carry one entry
    // each, so a damaged entry frame loses only that moment.
    std::vector<std::uint8_t> head;
    put_string(&head, reason);
    put_u64(&head, total_appended);
    put_u64(&head, dropped);

    std::vector<std::uint8_t> out;
    rnr::wire::Header header;
    header.kind = PayloadKind::kFlightBox;
    header.frame_count = 1 + entries.size();
    rnr::wire::encode_header(header, &out);
    rnr::wire::append_frame(0, head.data(), head.size(), &out);
    for (std::size_t i = 0; i < entries.size(); ++i) {
        std::vector<std::uint8_t> frame;
        frame.push_back(static_cast<std::uint8_t>(entries[i].kind));
        put_u64(&frame, entries[i].t_ms);
        put_u64(&frame, entries[i].value);
        put_string(&frame, entries[i].tenant);
        put_string(&frame, entries[i].label);
        put_string(&frame, entries[i].detail);
        rnr::wire::append_frame(static_cast<std::uint32_t>(i + 1),
                                frame.data(), frame.size(), &out);
    }
    return out;
}

Status
FlightBox::deserialize(const std::vector<std::uint8_t>& bytes,
                       FlightBox* out)
{
    *out = FlightBox();
    const auto report = rnr::wire::read_frames(
        bytes, PayloadKind::kFlightBox,
        [&](std::uint64_t seq, std::size_t offset,
            std::size_t length) -> Status {
            Cursor cursor(bytes.data() + offset, length);
            if (seq == 0) {
                Status s;
                if (!(s = cursor.string(&out->reason)).ok()) return s;
                if (!(s = cursor.u64(&out->total_appended)).ok()) return s;
                if (!(s = cursor.u64(&out->dropped)).ok()) return s;
            } else {
                FlightEntry entry;
                std::uint8_t kind = 0;
                Status s;
                if (!(s = cursor.u8(&kind)).ok()) return s;
                if (kind >
                    static_cast<std::uint8_t>(FlightEntryKind::kShutdown)) {
                    return Status(StatusCode::kMalformedRecord,
                                  strcat_args("flight frame ", seq,
                                              ": bad entry kind ", kind));
                }
                if (!(s = cursor.u64(&entry.t_ms)).ok()) return s;
                if (!(s = cursor.u64(&entry.value)).ok()) return s;
                if (!(s = cursor.string(&entry.tenant)).ok()) return s;
                if (!(s = cursor.string(&entry.label)).ok()) return s;
                if (!(s = cursor.string(&entry.detail)).ok()) return s;
                entry.kind = static_cast<FlightEntryKind>(kind);
                out->entries.push_back(std::move(entry));
            }
            if (!cursor.exhausted()) {
                return Status(StatusCode::kMalformedRecord,
                              strcat_args("flight frame ", seq,
                                          " carries trailing bytes"));
            }
            return Status();
        });
    return report.status;
}

std::string
FlightBox::to_string() const
{
    std::ostringstream os;
    os << "flight box: " << reason << " (" << entries.size()
       << " retained of " << total_appended << " appended, " << dropped
       << " shed)\n";
    for (const FlightEntry& entry : entries) {
        os << "  [" << entry.t_ms << "ms] "
           << flight_entry_kind_name(entry.kind);
        if (!entry.tenant.empty())
            os << " tenant=" << entry.tenant;
        if (!entry.label.empty())
            os << " " << entry.label;
        os << " value=" << entry.value;
        if (!entry.detail.empty())
            os << "  " << entry.detail;
        os << "\n";
    }
    return os.str();
}

std::string
FlightBox::to_json() const
{
    std::string out = "{\"reason\": \"";
    append_escaped(&out, reason);
    out += "\", \"total_appended\": " + std::to_string(total_appended);
    out += ", \"dropped\": " + std::to_string(dropped);
    out += ", \"entries\": [";
    for (std::size_t i = 0; i < entries.size(); ++i) {
        if (i != 0)
            out += ", ";
        out += "{\"t_ms\": " + std::to_string(entries[i].t_ms);
        out += ", \"kind\": \"";
        out += flight_entry_kind_name(entries[i].kind);
        out += "\", \"tenant\": \"";
        append_escaped(&out, entries[i].tenant);
        out += "\", \"label\": \"";
        append_escaped(&out, entries[i].label);
        out += "\", \"value\": " + std::to_string(entries[i].value);
        out += ", \"detail\": \"";
        append_escaped(&out, entries[i].detail);
        out += "\"}";
    }
    out += "]}";
    return out;
}

FlightRecorder::FlightRecorder(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity),
      t0_ms_(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::milliseconds>(
              std::chrono::steady_clock::now().time_since_epoch())
              .count()))
{
    ring_.reserve(capacity_);
}

std::uint64_t
FlightRecorder::now_ms() const
{
    const std::uint64_t now = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
    return now >= t0_ms_ ? now - t0_ms_ : 0;
}

void
FlightRecorder::record(FlightEntryKind kind, const std::string& tenant,
                       const std::string& label, std::uint64_t value,
                       const std::string& detail)
{
    FlightEntry entry;
    entry.kind = kind;
    entry.t_ms = now_ms();
    entry.tenant = tenant;
    entry.label = label;
    entry.value = value;
    entry.detail = detail;

    std::lock_guard<std::mutex> lock(mu_);
    if (ring_.size() < capacity_) {
        ring_.push_back(std::move(entry));
    } else {
        ring_[next_] = std::move(entry);
        wrapped_ = true;
    }
    next_ = (next_ + 1) % capacity_;
    ++total_appended_;
}

FlightBox
FlightRecorder::dump(const std::string& reason)
{
    FlightBox box;
    box.reason = reason;

    std::lock_guard<std::mutex> lock(mu_);
    box.total_appended = total_appended_;
    box.dropped = total_appended_ - ring_.size();
    box.entries.reserve(ring_.size());
    if (wrapped_) {
        // Oldest entry sits at next_ once the ring has wrapped.
        for (std::size_t i = 0; i < ring_.size(); ++i)
            box.entries.push_back(ring_[(next_ + i) % capacity_]);
    } else {
        box.entries = ring_;
    }
    latest_ = box.serialize();
    ++dumps_;
    return box;
}

std::vector<std::uint8_t>
FlightRecorder::latest() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return latest_;
}

std::uint64_t
FlightRecorder::dumps() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return dumps_;
}

std::uint64_t
FlightRecorder::appended() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return total_appended_;
}

}  // namespace rsafe::obs
