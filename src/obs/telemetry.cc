#include "obs/telemetry.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <fstream>

namespace rsafe::obs {

namespace {

/** Write @p body to @p path, replacing any previous content. */
void
write_file(const std::string& path, const char* data, std::size_t size)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (out)
        out.write(data, static_cast<std::streamsize>(size));
}

void
send_all(int fd, const char* data, std::size_t size)
{
    std::size_t sent = 0;
    while (sent < size) {
        const ssize_t n =
            ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
        if (n <= 0)
            return;
        sent += static_cast<std::size_t>(n);
    }
}

void
send_response(int fd, const char* status, const char* content_type,
              const char* body, std::size_t body_size)
{
    std::string head = "HTTP/1.0 ";
    head += status;
    head += "\r\nContent-Type: ";
    head += content_type;
    head += "\r\nContent-Length: " + std::to_string(body_size);
    head += "\r\nConnection: close\r\n\r\n";
    send_all(fd, head.data(), head.size());
    send_all(fd, body, body_size);
}

}  // namespace

TelemetryServer::TelemetryServer(TelemetryOptions options,
                                 TelemetryProviders providers)
    : options_(std::move(options)), providers_(std::move(providers))
{
}

TelemetryServer::~TelemetryServer()
{
    stop();
}

bool
TelemetryServer::start()
{
    if (!options_.enabled || std::getenv("RSAFE_NO_TELEMETRY") != nullptr)
        return false;
    if (running_)
        return true;

    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0)
        return false;
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(options_.port);
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(listen_fd_, 8) != 0) {
        ::close(listen_fd_);
        listen_fd_ = -1;
        return false;
    }

    sockaddr_in bound;
    socklen_t bound_len = sizeof(bound);
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                      &bound_len) == 0)
        port_ = ntohs(bound.sin_port);
    else
        port_ = options_.port;

    if (!options_.snapshot_dir.empty()) {
        const std::string text = std::to_string(port_) + "\n";
        write_file(options_.snapshot_dir + "/telemetry.port", text.data(),
                   text.size());
    }

    running_ = true;
    thread_ = std::thread([this] { serve_loop(); });
    return true;
}

void
TelemetryServer::serve_loop()
{
    for (;;) {
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) {
            // stop() shut the listener down (or accept failed hard) —
            // either way the serving loop is over.
            if (errno == EINTR)
                continue;
            return;
        }
        handle_connection(fd);
        ::close(fd);
    }
}

void
TelemetryServer::handle_connection(int fd)
{
    // A stuck client must not wedge the single accept thread.
    timeval tv;
    tv.tv_sec = 2;
    tv.tv_usec = 0;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));

    char buf[1024];
    const ssize_t n = ::recv(fd, buf, sizeof(buf) - 1, 0);
    if (n <= 0)
        return;
    buf[n] = '\0';

    // "GET <path> ..." is all this endpoint speaks.
    std::string request(buf);
    if (request.rfind("GET ", 0) != 0) {
        const char body[] = "method not allowed\n";
        send_response(fd, "405 Method Not Allowed", "text/plain", body,
                      sizeof(body) - 1);
        return;
    }
    const std::size_t path_end = request.find(' ', 4);
    const std::string path = path_end == std::string::npos
                                 ? request.substr(4)
                                 : request.substr(4, path_end - 4);

    if (path == "/metrics" && providers_.metrics) {
        const std::string body = providers_.metrics();
        send_response(fd, "200 OK", "text/plain; version=0.0.4",
                      body.data(), body.size());
    } else if (path == "/healthz" && providers_.healthz) {
        const std::string body = providers_.healthz();
        send_response(fd, "200 OK", "application/json", body.data(),
                      body.size());
    } else if (path == "/flight" && providers_.flight) {
        const std::vector<std::uint8_t> body = providers_.flight();
        if (body.empty()) {
            const char none[] = "no flight dump yet\n";
            send_response(fd, "404 Not Found", "text/plain", none,
                          sizeof(none) - 1);
        } else {
            send_response(fd, "200 OK", "application/octet-stream",
                          reinterpret_cast<const char*>(body.data()),
                          body.size());
        }
    } else {
        const char body[] = "not found\n";
        send_response(fd, "404 Not Found", "text/plain", body,
                      sizeof(body) - 1);
    }
}

void
TelemetryServer::stop()
{
    if (running_) {
        // shutdown() unblocks the accept thread; close() releases the fd.
        ::shutdown(listen_fd_, SHUT_RDWR);
        ::close(listen_fd_);
        if (thread_.joinable())
            thread_.join();
        listen_fd_ = -1;
        running_ = false;
    }

    // The offline twin: even when the endpoint never served (CI without
    // loopback, kill switch), the snapshots capture the same content.
    if (!snapshots_written_ && !options_.snapshot_dir.empty()) {
        snapshots_written_ = true;
        if (providers_.metrics) {
            const std::string body = providers_.metrics();
            write_file(options_.snapshot_dir + "/metrics.prom", body.data(),
                       body.size());
        }
        if (providers_.healthz) {
            const std::string body = providers_.healthz();
            write_file(options_.snapshot_dir + "/healthz.json", body.data(),
                       body.size());
        }
        if (providers_.flight) {
            const std::vector<std::uint8_t> body = providers_.flight();
            if (!body.empty()) {
                write_file(options_.snapshot_dir + "/flight.bin",
                           reinterpret_cast<const char*>(body.data()),
                           body.size());
            }
        }
    }
}

}  // namespace rsafe::obs
