#ifndef RSAFE_OBS_HEALTH_H_
#define RSAFE_OBS_HEALTH_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "stats/stats.h"

/**
 * @file
 * The live SLO monitor over a running pipeline or fleet.
 *
 * PR 5 observability is post-hoc: traces and merged registries exist
 * only after join, so a wedged tenant or a runaway replay lag is
 * invisible until the process exits. The HealthMonitor closes that gap:
 * a single sampling thread polls every registered tenant's live signals
 * (through the lock-free HealthProbe plus the few mutex-guarded live
 * stats calls) on a fixed cadence, compares them against declarative
 * SLO rules — absolute thresholds or multiples of a self-learned EWMA
 * baseline — and drives a per-tenant healthy → degraded → critical
 * state machine with hysteresis in both directions. Transitions are
 * emitted as structured HealthEvents (to listeners, the trace, and the
 * flight recorder) and every evaluated signal is exported as a
 * `tenant.<name>.health.*` gauge.
 *
 * Passivity is the contract: the monitor only ever *reads* pipeline
 * state and only ever *writes* gauges (never counters), so stat
 * snapshots, verdicts and digests are bit-identical with the monitor on
 * or off. RSAFE_NO_HEALTH in the environment keeps start() from
 * spawning the thread regardless of configuration; tick() stays
 * callable directly for deterministic tests.
 */

namespace rsafe::obs {

/** The per-tenant live signals the monitor evaluates each tick. */
enum class HealthSignal : std::uint8_t {
    kReplayLag = 0,           ///< CR instructions behind the recorder
    kVerdictLatency = 1,      ///< AR analysis latency p99 (sim cycles)
    kQueueDepth = 2,          ///< alarms queued but not yet decided
    kChannelBackpressure = 3, ///< log-channel producer waits (per tick)
    kCkptOccupancy = 4,       ///< checkpoint-store budget occupancy (%)
    kPoolStarvation = 5,      ///< pool starved waits (per tick)
};

inline constexpr std::size_t kNumHealthSignals = 6;

/** @return a short stable name for @p signal ("replay_lag", …). */
const char* health_signal_name(HealthSignal signal);

/** One sampling-tick reading of every signal for one tenant. */
struct HealthSample {
    std::array<std::uint64_t, kNumHealthSignals> values{};

    std::uint64_t get(HealthSignal signal) const
    {
        return values[static_cast<std::size_t>(signal)];
    }

    void set(HealthSignal signal, std::uint64_t value)
    {
        values[static_cast<std::size_t>(signal)] = value;
    }
};

/** The tenant state machine's three levels (order = severity). */
enum class HealthState : std::uint8_t {
    kHealthy = 0,
    kDegraded = 1,
    kCritical = 2,
};

/** @return "healthy" / "degraded" / "critical". */
const char* health_state_name(HealthState state);

/**
 * One declarative SLO rule. A rule is either absolute (degraded_at /
 * critical_at are the thresholds) or relative (thresholds are the EWMA
 * baseline times degraded_x / critical_x, but never below
 * baseline_floor — a cold baseline of zero must not make every first
 * sample critical). Escalation needs breach_samples consecutive ticks
 * at or above a level; recovery needs clear_samples consecutive ticks
 * below it.
 */
struct SloRule {
    HealthSignal signal = HealthSignal::kReplayLag;

    /** Absolute thresholds (used when degraded_x == 0). @{ */
    std::uint64_t degraded_at = 0;
    std::uint64_t critical_at = 0;
    /** @} */

    /** Relative thresholds as EWMA multiples (0 = absolute rule). @{ */
    double degraded_x = 0.0;
    double critical_x = 0.0;
    std::uint64_t baseline_floor = 0;
    /** @} */

    std::uint32_t breach_samples = 2;
    std::uint32_t clear_samples = 4;
};

/** The built-in rule set (see health.cc for the rationale per rule). */
std::vector<SloRule> default_slo_rules();

/** One structured state transition (what listeners and traces see). */
struct HealthEvent {
    std::uint64_t tick = 0;  ///< monitor tick the transition fired on
    std::string tenant;
    HealthSignal signal = HealthSignal::kReplayLag;
    HealthState from = HealthState::kHealthy;
    HealthState to = HealthState::kHealthy;
    std::uint64_t value = 0;      ///< evaluated signal value
    std::uint64_t threshold = 0;  ///< threshold that was crossed

    /** One-line rendering ("tenant=a replay_lag healthy->critical …"). */
    std::string to_string() const;
};

/** Monitor configuration. */
struct HealthOptions {
    /** Master switch; the default keeps every existing run unchanged. */
    bool enabled = false;

    /** Sampling cadence of the monitor thread. */
    std::uint32_t cadence_ms = 10;

    /** Rule set (empty = default_slo_rules()). */
    std::vector<SloRule> rules;

    /** EWMA smoothing factor for relative-rule baselines. */
    double ewma_alpha = 0.2;
};

/**
 * The fleet-wide health monitor. Register tenants with their sampler,
 * start() the sampling thread (or call tick() directly from tests),
 * stop() before tearing down anything the samplers read.
 */
class HealthMonitor {
  public:
    /** Polls one tenant's live signals (must be thread-safe). */
    using SampleFn = std::function<HealthSample()>;

    /** Observes every state transition (called outside monitor locks). */
    using EventListener = std::function<void(const HealthEvent&)>;

    /** Observes every evaluated sample (flight-recorder feed). */
    using SampleListener =
        std::function<void(const std::string& tenant, const HealthSample&)>;

    explicit HealthMonitor(HealthOptions options = HealthOptions());
    ~HealthMonitor();

    HealthMonitor(const HealthMonitor&) = delete;
    HealthMonitor& operator=(const HealthMonitor&) = delete;

    /** Register @p tenant with its live-signal sampler. */
    void add_tenant(const std::string& tenant, SampleFn sampler);

    void add_listener(EventListener listener);
    void add_sample_listener(SampleListener listener);

    /**
     * Spawn the sampling thread. Returns false (and stays inert) when
     * the options disable the monitor, RSAFE_NO_HEALTH is set, or no
     * tenant is registered.
     */
    bool start();

    /** @return whether the sampling thread is live. */
    bool running() const;

    /**
     * Stop the sampling thread and run one final tick so the end state
     * is captured. Idempotent; safe without a prior start(). Must run
     * before anything the samplers read is destroyed.
     */
    void stop();

    /**
     * Run one sampling/evaluation pass over every tenant. Public so
     * tests can drive the state machine deterministically without the
     * thread or the wall clock.
     */
    void tick();

    /** @return the current state of @p tenant (healthy if unknown). */
    HealthState state(const std::string& tenant) const;

    /** @return the worst state @p tenant ever reached. */
    HealthState worst(const std::string& tenant) const;

    /** @return every transition so far, in firing order. */
    std::vector<HealthEvent> events() const;

    /** @return ticks evaluated so far. */
    std::uint64_t ticks() const;

    /** @return the /healthz JSON document (per-tenant states + signals). */
    std::string healthz_json() const;

    /** @return the monitor's live gauges in Prometheus exposition. */
    std::string metrics_prometheus() const;

    /**
     * Fold the monitor's gauges (`tenant.<name>.health.*`) into @p out.
     * Gauges only — the registry's deterministic counter snapshot is
     * untouched, keeping A/B runs bit-identical.
     */
    void export_metrics(stats::StatRegistry* out) const;

  private:
    struct RuleRuntime;
    struct TenantRuntime;

    void run_loop();
    void evaluate_tenant(TenantRuntime* tenant, const HealthSample& raw,
                         std::vector<HealthEvent>* fired);

    HealthOptions options_;

    mutable std::mutex mu_;
    std::vector<std::unique_ptr<TenantRuntime>> tenants_;
    std::vector<EventListener> listeners_;
    std::vector<SampleListener> sample_listeners_;
    std::vector<HealthEvent> events_;
    stats::StatRegistry live_;  ///< gauges only, refreshed every tick
    std::uint64_t ticks_ = 0;

    std::mutex tick_mu_;  ///< serializes concurrent tick() callers

    std::thread thread_;
    std::atomic<bool> running_{false};
    std::atomic<bool> stop_requested_{false};
    bool stopped_ = false;
};

}  // namespace rsafe::obs

#endif  // RSAFE_OBS_HEALTH_H_
