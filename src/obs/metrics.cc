#include "obs/metrics.h"

#include <cctype>
#include <cstdio>

namespace rsafe::obs {

namespace {

/** Append @p text with JSON string escaping for quotes and backslash. */
void
append_escaped(std::string* out, const std::string& text)
{
    for (const char c : text) {
        if (c == '"' || c == '\\')
            *out += '\\';
        *out += c;
    }
}

/** Append a double with enough precision for metric values. */
void
append_double(std::string* out, double value)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    *out += buf;
}

}  // namespace

std::string
sanitize_metric_name(const std::string& name)
{
    std::string out;
    out.reserve(name.size());
    for (const char c : name) {
        const bool ok = std::isalnum(static_cast<unsigned char>(c)) != 0 ||
                        c == '_' || c == ':';
        out += ok ? c : '_';
    }
    return out;
}

std::string
MetricsExporter::to_json() const
{
    std::string out = "{\n  \"counters\": {";
    bool first = true;
    for (const auto& [name, value] : registry_->snapshot()) {
        out += first ? "\n" : ",\n";
        first = false;
        out += "    \"";
        append_escaped(&out, name);
        out += "\": " + std::to_string(value);
    }
    out += first ? "}" : "\n  }";

    out += ",\n  \"histograms\": {";
    first = true;
    for (const auto& [name, histogram] : registry_->histograms()) {
        out += first ? "\n" : ",\n";
        first = false;
        out += "    \"";
        append_escaped(&out, name);
        out += "\": {\"count\": " + std::to_string(histogram.count());
        out += ", \"sum\": " + std::to_string(histogram.sum());
        out += ", \"mean\": ";
        append_double(&out, histogram.mean());
        out += ", \"max\": " + std::to_string(histogram.max_sample());
        out += ", \"p50\": " + std::to_string(histogram.p50());
        out += ", \"p95\": " + std::to_string(histogram.p95());
        out += ", \"p99\": " + std::to_string(histogram.p99());
        out += ", \"buckets\": [";
        for (std::size_t i = 0; i < histogram.num_buckets(); ++i) {
            if (i != 0)
                out += ", ";
            const bool overflow = i == histogram.num_buckets() - 1;
            out += "{\"le\": ";
            out += overflow ? "\"+Inf\""
                            : std::to_string(histogram.bucket_bound(i));
            out += ", \"count\": " + std::to_string(histogram.bucket(i));
            out += "}";
        }
        out += "]}";
    }
    out += first ? "}" : "\n  }";

    out += ",\n  \"gauges\": {";
    first = true;
    for (const auto& [name, gauge] : registry_->gauges()) {
        out += first ? "\n" : ",\n";
        first = false;
        out += "    \"";
        append_escaped(&out, name);
        out += "\": {\"last\": " + std::to_string(gauge.last());
        out += ", \"observations\": " + std::to_string(gauge.observations());
        out += ", \"series\": [";
        bool first_sample = true;
        for (const auto& sample : gauge.series()) {
            if (!first_sample)
                out += ", ";
            first_sample = false;
            out += "{\"t\": " + std::to_string(sample.t);
            out += ", \"value\": " + std::to_string(sample.value) + "}";
        }
        out += "]}";
    }
    out += first ? "}" : "\n  }";
    out += "\n}\n";
    return out;
}

std::string
MetricsExporter::to_prometheus(const std::string& prefix) const
{
    std::string out;
    for (const auto& [name, value] : registry_->snapshot()) {
        const std::string metric = prefix + sanitize_metric_name(name);
        out += "# TYPE " + metric + " counter\n";
        out += metric + " " + std::to_string(value) + "\n";
    }
    for (const auto& [name, histogram] : registry_->histograms()) {
        const std::string metric = prefix + sanitize_metric_name(name);
        out += "# TYPE " + metric + " histogram\n";
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < histogram.num_buckets(); ++i) {
            cumulative += histogram.bucket(i);
            const bool overflow = i == histogram.num_buckets() - 1;
            out += metric + "_bucket{le=\"";
            out += overflow ? "+Inf"
                            : std::to_string(histogram.bucket_bound(i));
            out += "\"} " + std::to_string(cumulative) + "\n";
        }
        out += metric + "_sum " + std::to_string(histogram.sum()) + "\n";
        out += metric + "_count " + std::to_string(histogram.count()) + "\n";
    }
    for (const auto& [name, gauge] : registry_->gauges()) {
        const std::string metric = prefix + sanitize_metric_name(name);
        out += "# TYPE " + metric + " gauge\n";
        out += metric + " " + std::to_string(gauge.last()) + "\n";
    }
    return out;
}

}  // namespace rsafe::obs
