#ifndef RSAFE_OBS_FLIGHT_RECORDER_H_
#define RSAFE_OBS_FLIGHT_RECORDER_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

/**
 * @file
 * The black-box flight recorder: an always-on bounded ring of the last
 * moments of a monitored run.
 *
 * Post-hoc traces answer "what happened over the whole run"; the flight
 * recorder answers "what happened right *before* it went wrong". Every
 * interesting live event — health-monitor samples, state transitions,
 * attack verdicts, session lifecycle notes, shutdown decisions — is
 * appended to a fixed-capacity ring from any thread. When something
 * worth investigating fires (an attack verdict, an SLO breach, an
 * abandon shutdown), dump() snapshots the ring into a FlightBox and
 * serializes it on the shared CRC32C wire format as
 * PayloadKind::kFlightBox, so the black box survives shipping exactly
 * like logs and checkpoints do, with the same strict Status-checked
 * decode (never abort on a damaged box) and the same fuzz coverage.
 * `rsafe-report --flight <file>` pretty-prints a dumped box.
 */

namespace rsafe::obs {

/** What kind of moment a flight entry captures. */
enum class FlightEntryKind : std::uint8_t {
    kNote = 0,        ///< freeform lifecycle note (session start/done…)
    kSample = 1,      ///< one health-monitor metric snapshot
    kTransition = 2,  ///< a health-state transition
    kVerdict = 3,     ///< an alarm-replay verdict (attacks always land)
    kShutdown = 4,    ///< a shutdown decision (drain/abandon)
};

/** @return a short stable name for @p kind. */
const char* flight_entry_kind_name(FlightEntryKind kind);

/** One retained black-box moment. */
struct FlightEntry {
    FlightEntryKind kind = FlightEntryKind::kNote;
    /** Milliseconds since the recorder was constructed. */
    std::uint64_t t_ms = 0;
    std::string tenant;
    std::string label;
    std::uint64_t value = 0;
    std::string detail;
};

/** A dumped snapshot of the ring (the wire-serializable black box). */
struct FlightBox {
    /** Why this dump was taken ("attack-verdict:<tenant>", …). */
    std::string reason;
    /** Entries ever appended to the ring (retained + shed). */
    std::uint64_t total_appended = 0;
    /** Entries shed from the ring before this dump. */
    std::uint64_t dropped = 0;
    /** Retained entries, oldest first. */
    std::vector<FlightEntry> entries;

    /** Encode as PayloadKind::kFlightBox (frame 0 = scalars, then one
     *  frame per entry, so a damaged entry frame loses only itself). */
    std::vector<std::uint8_t> serialize() const;

    /**
     * Strict decode of @p bytes into @p out. Malformed input (bad kind
     * byte, oversized string, trailing bytes, any wire defect) returns
     * the Status taxonomy — never aborts.
     */
    static Status deserialize(const std::vector<std::uint8_t>& bytes,
                              FlightBox* out);

    /** Human-readable transcript (rsafe-report --flight). */
    std::string to_string() const;

    /** JSON rendering of the same transcript. */
    std::string to_json() const;
};

/** The always-on bounded black-box ring. Thread-safe. */
class FlightRecorder {
  public:
    static constexpr std::size_t kDefaultCapacity = 2048;

    explicit FlightRecorder(std::size_t capacity = kDefaultCapacity);

    /** Append one moment (any thread; oldest entry shed when full). */
    void record(FlightEntryKind kind, const std::string& tenant,
                const std::string& label, std::uint64_t value = 0,
                const std::string& detail = std::string());

    /**
     * Snapshot the ring as a FlightBox for @p reason and retain its
     * serialized bytes as latest(). Returns the box.
     */
    FlightBox dump(const std::string& reason);

    /** Serialized bytes of the most recent dump (empty if none yet). */
    std::vector<std::uint8_t> latest() const;

    /** Dumps taken so far. */
    std::uint64_t dumps() const;

    /** Entries ever appended (retained + shed). */
    std::uint64_t appended() const;

  private:
    std::uint64_t now_ms() const;

    const std::size_t capacity_;
    const std::uint64_t t0_ms_;

    mutable std::mutex mu_;
    std::vector<FlightEntry> ring_;
    std::size_t next_ = 0;
    bool wrapped_ = false;
    std::uint64_t total_appended_ = 0;
    std::uint64_t dumps_ = 0;
    std::vector<std::uint8_t> latest_;
};

}  // namespace rsafe::obs

#endif  // RSAFE_OBS_FLIGHT_RECORDER_H_
