#ifndef RSAFE_OBS_HEALTH_PROBE_H_
#define RSAFE_OBS_HEALTH_PROBE_H_

#include <atomic>
#include <cstdint>

/**
 * @file
 * The per-tenant live-signal probe the health monitor samples.
 *
 * Most pipeline telemetry is read after join (per-thread registries
 * merged once the run is over), which is exactly what a *live* monitor
 * cannot use: replay lag is mutated on the CR thread, checkpoint-store
 * occupancy is CR-thread-only, and verdict completions land on whichever
 * pool worker claimed the job. The probe is the narrow, always-safe
 * window into that state: a handful of relaxed atomics the producing
 * threads store into on paths they already execute, and the monitor
 * thread loads on its sampling cadence.
 *
 * Relaxed ordering is deliberate — every field is an independent gauge
 * reading, never a synchronization edge, so a torn *set* of fields (lag
 * from this tick, queue depth from the last) is fine and the hot-path
 * cost is one uncontended store. Nothing here feeds determinism-gated
 * counters: the probe exists so the health plane can watch the pipeline
 * without perturbing it.
 */

namespace rsafe::obs {

/** Live signals one monitored session exports (all relaxed atomics). */
struct HealthProbe {
    /** Instructions the CR trails the recorder (Replayer::sample_lag). */
    std::atomic<std::uint64_t> replay_lag{0};

    /** Checkpoint-store occupancy, refreshed after every take/recycle. @{ */
    std::atomic<std::uint64_t> ckpt_live_bytes{0};
    std::atomic<std::uint64_t> ckpt_budget_bytes{0};
    /** @} */

    /** Alarm jobs the CR queued for alarm replay (cumulative). */
    std::atomic<std::uint64_t> alarms_queued{0};

    /** Alarm verdicts completed by AR workers (cumulative). */
    std::atomic<std::uint64_t> verdicts_done{0};

    /**
     * Largest AR analysis latency (sim cycles) observed since the
     * monitor last drained this field (exchange(0) per sampling tick);
     * workers publish with fetch-max.
     */
    std::atomic<std::uint64_t> verdict_cycles_peak{0};

    /** Worker-side publish: fold @p cycles into the per-tick peak. */
    void note_verdict(std::uint64_t cycles)
    {
        verdicts_done.fetch_add(1, std::memory_order_relaxed);
        std::uint64_t seen =
            verdict_cycles_peak.load(std::memory_order_relaxed);
        while (cycles > seen &&
               !verdict_cycles_peak.compare_exchange_weak(
                   seen, cycles, std::memory_order_relaxed))
            ;
    }

    /** Alarm jobs queued but not yet decided (monitor-side view). */
    std::uint64_t queue_depth() const
    {
        const std::uint64_t q = alarms_queued.load(std::memory_order_relaxed);
        const std::uint64_t d = verdicts_done.load(std::memory_order_relaxed);
        return q > d ? q - d : 0;
    }
};

}  // namespace rsafe::obs

#endif  // RSAFE_OBS_HEALTH_PROBE_H_
