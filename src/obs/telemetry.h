#ifndef RSAFE_OBS_TELEMETRY_H_
#define RSAFE_OBS_TELEMETRY_H_

#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <vector>

/**
 * @file
 * The live telemetry endpoint: a deliberately minimal blocking HTTP/1.0
 * server that makes the health plane observable *while the fleet runs*.
 *
 * One accept thread, one request per connection, three routes:
 *
 *   GET /metrics  -> Prometheus text exposition (MetricsExporter)
 *   GET /healthz  -> per-tenant health states as JSON (HealthMonitor)
 *   GET /flight   -> the latest flight-recorder dump (wire bytes)
 *
 * Responses come from provider callbacks so the server owns no pipeline
 * state; it binds 127.0.0.1 only (this is an operator loopback port,
 * not a service); port 0 picks an ephemeral port, published both via
 * port() and a `telemetry.port` file in the snapshot directory so a
 * smoke test can find it. RSAFE_NO_TELEMETRY in the environment keeps
 * start() from binding at all. For CI environments without a usable
 * loopback, stop() writes file snapshots of all three routes into the
 * snapshot directory — the endpoint's offline twin.
 */

namespace rsafe::obs {

/** Telemetry endpoint configuration. */
struct TelemetryOptions {
    /** Master switch; default keeps every existing run unchanged. */
    bool enabled = false;

    /** TCP port on 127.0.0.1 (0 = ephemeral, see port()). */
    std::uint16_t port = 0;

    /**
     * When non-empty: `telemetry.port` is written here on start, and
     * stop() snapshots metrics.prom / healthz.json / flight.bin here.
     */
    std::string snapshot_dir;
};

/** The route content providers (all must be thread-safe). */
struct TelemetryProviders {
    std::function<std::string()> metrics;              ///< /metrics
    std::function<std::string()> healthz;              ///< /healthz
    std::function<std::vector<std::uint8_t>()> flight; ///< /flight
};

/** The single-thread blocking HTTP/1.0 server. */
class TelemetryServer {
  public:
    TelemetryServer(TelemetryOptions options, TelemetryProviders providers);
    ~TelemetryServer();

    TelemetryServer(const TelemetryServer&) = delete;
    TelemetryServer& operator=(const TelemetryServer&) = delete;

    /**
     * Bind, listen and spawn the accept thread. Returns false (and
     * stays inert) when disabled, RSAFE_NO_TELEMETRY is set, or the
     * bind fails — a failed endpoint must never fail the run.
     */
    bool start();

    /** @return whether the accept thread is serving. */
    bool running() const { return running_; }

    /** @return the bound port (the real one when options.port was 0). */
    std::uint16_t port() const { return port_; }

    /**
     * Close the listener, join the accept thread, and write the file
     * snapshots when a snapshot directory is configured. Idempotent.
     */
    void stop();

  private:
    void serve_loop();
    void handle_connection(int fd);

    TelemetryOptions options_;
    TelemetryProviders providers_;

    int listen_fd_ = -1;
    std::uint16_t port_ = 0;
    bool running_ = false;
    bool snapshots_written_ = false;
    std::thread thread_;
};

}  // namespace rsafe::obs

#endif  // RSAFE_OBS_TELEMETRY_H_
