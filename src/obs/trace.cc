#include "obs/trace.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <set>

namespace rsafe::obs {

namespace {

/**
 * The thread's buffer plus the session generation it was attached in.
 * begin_session() clears the buffer list; stamping the generation lets
 * every thread detect that its cached pointer went stale and re-attach
 * instead of dereferencing a freed buffer.
 */
struct TlsSlot {
    std::uint64_t generation = 0;
    TraceBuffer* buffer = nullptr;
};

thread_local TlsSlot tls_slot;

/** Session generation; bumped by begin_session(). */
std::atomic<std::uint64_t> session_generation{1};

std::uint64_t
steady_now_ns()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/** Append @p text JSON-escaped (quotes, backslash, control chars). */
void
append_escaped(std::string* out, const std::string& text)
{
    for (const char c : text) {
        switch (c) {
          case '"': *out += "\\\""; break;
          case '\\': *out += "\\\\"; break;
          case '\n': *out += "\\n"; break;
          case '\t': *out += "\\t"; break;
          case '\r': *out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                *out += buf;
            } else {
                *out += c;
            }
        }
    }
}

/** Append a microsecond timestamp with nanosecond precision. */
void
append_ts_us(std::string* out, std::uint64_t ts_ns)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%llu.%03llu",
                  static_cast<unsigned long long>(ts_ns / 1000),
                  static_cast<unsigned long long>(ts_ns % 1000));
    *out += buf;
}

const char*
phase_letter(TraceEvent::Phase phase)
{
    switch (phase) {
      case TraceEvent::Phase::kBegin: return "B";
      case TraceEvent::Phase::kEnd: return "E";
      case TraceEvent::Phase::kInstant: return "i";
      case TraceEvent::Phase::kCounter: return "C";
      case TraceEvent::Phase::kFlowStart: return "s";
      case TraceEvent::Phase::kFlowFinish: return "f";
    }
    return "i";
}

}  // namespace

TraceBuffer::TraceBuffer(std::string thread_name, std::size_t capacity)
    : name_(std::move(thread_name))
{
    events_.resize(capacity == 0 ? 1 : capacity);
}

void
TraceBuffer::emit(const TraceEvent& event)
{
    const std::size_t pos = size_.load(std::memory_order_relaxed);
    if (pos >= events_.size()) {
        dropped_.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    events_[pos] = event;
    // Release-publish: readers who acquire size() see the event body.
    size_.store(pos + 1, std::memory_order_release);
}

Tracer&
Tracer::instance()
{
    static Tracer tracer;
    return tracer;
}

void
Tracer::set_enabled(bool enabled)
{
    // The kill switch wins over every programmatic request, checked at
    // call time (not cached) so one process can A/B both settings.
    if (enabled && std::getenv("RSAFE_NO_TRACE") != nullptr)
        enabled = false;
    enabled_.store(enabled, std::memory_order_relaxed);
}

void
Tracer::begin_session()
{
    std::lock_guard<std::mutex> lock(mutex_);
    // Dropping the buffers would dangle any pointer a still-running
    // thread cached; the generation bump makes those stale pointers
    // unreachable (tls_buffer() re-attaches), so clearing is safe as
    // long as no instrumented thread is mid-emit — begin_session() is
    // only called from the coordinating thread between runs.
    buffers_.clear();
    session_generation.fetch_add(1, std::memory_order_release);
    t0_ns_ = steady_now_ns();
}

TraceBuffer*
Tracer::attach_thread(const char* name)
{
    const std::uint64_t generation =
        session_generation.load(std::memory_order_acquire);
    std::lock_guard<std::mutex> lock(mutex_);
    if (tls_slot.generation == generation && tls_slot.buffer != nullptr) {
        // Already attached this session: just (re)name the buffer.
        tls_slot.buffer->name_ = name;
        return tls_slot.buffer;
    }
    if (buffers_.size() >= kMaxBuffers) {
        tls_slot = TlsSlot{generation, nullptr};
        return nullptr;
    }
    auto buffer = std::make_unique<TraceBuffer>(name);
    buffer->tid_ = static_cast<std::uint32_t>(buffers_.size());
    TraceBuffer* raw = buffer.get();
    buffers_.push_back(std::move(buffer));
    tls_slot = TlsSlot{generation, raw};
    return raw;
}

std::uint64_t
Tracer::now_ns() const
{
    const std::uint64_t now = steady_now_ns();
    return now >= t0_ns_ ? now - t0_ns_ : 0;
}

TraceBuffer*
Tracer::tls_buffer()
{
    const std::uint64_t generation =
        session_generation.load(std::memory_order_acquire);
    if (tls_slot.generation == generation)
        return tls_slot.buffer;  // may be null past the buffer cap
    return attach_thread("thread");
}

void
Tracer::emit(const TraceEvent& event)
{
    TraceBuffer* buffer = tls_buffer();
    if (buffer != nullptr)
        buffer->emit(event);
}

void
Tracer::span_begin(const char* name, const char* category)
{
    if (!enabled())
        return;
    TraceEvent event;
    event.phase = TraceEvent::Phase::kBegin;
    event.name = name;
    event.category = category;
    event.ts_ns = now_ns();
    emit(event);
}

void
Tracer::span_end(const char* name, const char* category)
{
    if (!enabled())
        return;
    TraceEvent event;
    event.phase = TraceEvent::Phase::kEnd;
    event.name = name;
    event.category = category;
    event.ts_ns = now_ns();
    emit(event);
}

void
Tracer::instant(const char* name, const char* category,
                const char* arg_name, std::uint64_t arg_value)
{
    if (!enabled())
        return;
    TraceEvent event;
    event.phase = TraceEvent::Phase::kInstant;
    event.name = name;
    event.category = category;
    event.ts_ns = now_ns();
    event.arg_name = arg_name;
    event.arg_value = arg_value;
    event.has_arg = arg_name != nullptr;
    emit(event);
}

void
Tracer::counter(const char* name, const char* category, std::uint64_t value)
{
    if (!enabled())
        return;
    TraceEvent event;
    event.phase = TraceEvent::Phase::kCounter;
    event.name = name;
    event.category = category;
    event.ts_ns = now_ns();
    event.id = value;
    emit(event);
}

void
Tracer::flow_start(const char* name, const char* category, std::uint64_t id)
{
    if (!enabled())
        return;
    TraceEvent event;
    event.phase = TraceEvent::Phase::kFlowStart;
    event.name = name;
    event.category = category;
    event.ts_ns = now_ns();
    event.id = id;
    emit(event);
}

void
Tracer::flow_finish(const char* name, const char* category, std::uint64_t id)
{
    if (!enabled())
        return;
    TraceEvent event;
    event.phase = TraceEvent::Phase::kFlowFinish;
    event.name = name;
    event.category = category;
    event.ts_ns = now_ns();
    event.id = id;
    emit(event);
}

std::uint64_t
Tracer::dropped() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::uint64_t total = 0;
    for (const auto& buffer : buffers_)
        total += buffer->dropped();
    return total;
}

std::uint64_t
Tracer::event_count() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::uint64_t total = 0;
    for (const auto& buffer : buffers_)
        total += buffer->size();
    return total;
}

std::string
Tracer::export_chrome_json() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::string out = "{\"traceEvents\":[\n";
    bool first = true;
    const auto comma = [&] {
        if (!first)
            out += ",\n";
        first = false;
    };
    for (const auto& buffer : buffers_) {
        comma();
        out += "{\"ph\":\"M\",\"pid\":1,\"tid\":";
        out += std::to_string(buffer->tid());
        out += ",\"name\":\"thread_name\",\"args\":{\"name\":\"";
        append_escaped(&out, buffer->thread_name());
        out += "\"}}";
    }
    for (const auto& buffer : buffers_) {
        const std::size_t count = buffer->size();  // acquire
        for (std::size_t i = 0; i < count; ++i) {
            const TraceEvent& event = buffer->at(i);
            comma();
            out += "{\"ph\":\"";
            out += phase_letter(event.phase);
            out += "\",\"pid\":1,\"tid\":";
            out += std::to_string(buffer->tid());
            out += ",\"ts\":";
            append_ts_us(&out, event.ts_ns);
            out += ",\"name\":\"";
            append_escaped(&out, event.name != nullptr ? event.name : "");
            out += "\",\"cat\":\"";
            append_escaped(&out,
                           event.category != nullptr ? event.category : "");
            out += "\"";
            switch (event.phase) {
              case TraceEvent::Phase::kInstant:
                out += ",\"s\":\"t\"";
                if (event.has_arg) {
                    out += ",\"args\":{\"";
                    append_escaped(&out, event.arg_name);
                    out += "\":";
                    out += std::to_string(event.arg_value);
                    out += "}";
                }
                break;
              case TraceEvent::Phase::kCounter:
                out += ",\"args\":{\"value\":";
                out += std::to_string(event.id);
                out += "}";
                break;
              case TraceEvent::Phase::kFlowStart:
                out += ",\"id\":";
                out += std::to_string(event.id);
                break;
              case TraceEvent::Phase::kFlowFinish:
                out += ",\"id\":";
                out += std::to_string(event.id);
                out += ",\"bp\":\"e\"";
                break;
              case TraceEvent::Phase::kBegin:
              case TraceEvent::Phase::kEnd:
                break;
            }
            out += "}";
        }
    }
    out += "\n],\"displayTimeUnit\":\"ms\"}\n";
    return out;
}

bool
Tracer::write_chrome_json(const std::string& path) const
{
    std::ofstream out(path, std::ios::trunc);
    if (!out)
        return false;
    out << export_chrome_json();
    return static_cast<bool>(out);
}

// ---------------------------------------------------------------------
// Trace schema validation
// ---------------------------------------------------------------------

namespace {

/**
 * Slice every top-level object out of the JSON array starting at
 * @p begin (the index of '['), string- and escape-aware.
 */
bool
slice_array_objects(const std::string& json, std::size_t begin,
                    std::vector<std::string>* out, std::string* error)
{
    int depth = 0;
    bool in_string = false;
    bool escaped = false;
    std::size_t object_start = 0;
    for (std::size_t i = begin; i < json.size(); ++i) {
        const char c = json[i];
        if (in_string) {
            if (escaped)
                escaped = false;
            else if (c == '\\')
                escaped = true;
            else if (c == '"')
                in_string = false;
            continue;
        }
        switch (c) {
          case '"': in_string = true; break;
          case '{':
            if (depth == 1)
                object_start = i;
            ++depth;
            break;
          case '}':
            --depth;
            if (depth == 1)
                out->push_back(
                    json.substr(object_start, i - object_start + 1));
            break;
          case '[': ++depth; break;
          case ']':
            --depth;
            if (depth == 0)
                return true;  // closed the traceEvents array
            break;
          default: break;
        }
        if (depth < 0) {
            *error = "unbalanced brackets in traceEvents";
            return false;
        }
    }
    *error = "traceEvents array never closes";
    return false;
}

/**
 * @return the raw value of top-level field @p key in object @p obj
 * (string values are unquoted), or empty if absent.
 */
std::string
extract_field(const std::string& obj, const std::string& key)
{
    const std::string needle = "\"" + key + "\"";
    int depth = 0;
    bool in_string = false;
    bool escaped = false;
    for (std::size_t i = 0; i < obj.size(); ++i) {
        const char c = obj[i];
        if (in_string) {
            if (escaped)
                escaped = false;
            else if (c == '\\')
                escaped = true;
            else if (c == '"')
                in_string = false;
            continue;
        }
        if (c == '{' || c == '[') {
            ++depth;
            continue;
        }
        if (c == '}' || c == ']') {
            --depth;
            continue;
        }
        if (c != '"')
            continue;
        // A string is opening; is it our key at object top level?
        if (depth == 1 && obj.compare(i, needle.size(), needle) == 0) {
            std::size_t p = i + needle.size();
            while (p < obj.size() &&
                   (obj[p] == ' ' || obj[p] == '\t' || obj[p] == '\n'))
                ++p;
            if (p < obj.size() && obj[p] == ':') {
                ++p;
                while (p < obj.size() &&
                       (obj[p] == ' ' || obj[p] == '\t' || obj[p] == '\n'))
                    ++p;
                if (p >= obj.size())
                    return "";
                if (obj[p] == '"') {
                    std::string value;
                    bool esc = false;
                    for (std::size_t q = p + 1; q < obj.size(); ++q) {
                        if (esc) {
                            value += obj[q];
                            esc = false;
                        } else if (obj[q] == '\\') {
                            esc = true;
                        } else if (obj[q] == '"') {
                            return value;
                        } else {
                            value += obj[q];
                        }
                    }
                    return value;
                }
                std::string value;
                int vdepth = 0;
                for (std::size_t q = p; q < obj.size(); ++q) {
                    const char vc = obj[q];
                    if (vdepth == 0 && (vc == ',' || vc == '}'))
                        break;
                    if (vc == '{' || vc == '[')
                        ++vdepth;
                    if (vc == '}' || vc == ']')
                        --vdepth;
                    value += vc;
                }
                while (!value.empty() &&
                       (value.back() == ' ' || value.back() == '\n'))
                    value.pop_back();
                return value;
            }
        }
        in_string = true;
    }
    return "";
}

}  // namespace

bool
validate_trace_json(const std::string& json, std::string* error)
{
    std::string scratch;
    if (error == nullptr)
        error = &scratch;
    const std::size_t key = json.find("\"traceEvents\"");
    if (key == std::string::npos) {
        *error = "no traceEvents key";
        return false;
    }
    const std::size_t open = json.find('[', key);
    if (open == std::string::npos) {
        *error = "traceEvents is not an array";
        return false;
    }
    std::vector<std::string> events;
    if (!slice_array_objects(json, open, &events, error))
        return false;

    std::map<std::string, long> span_depth;  // tid -> open B spans
    std::set<std::string> flow_starts;
    std::set<std::string> flow_finishes;
    for (std::size_t i = 0; i < events.size(); ++i) {
        const std::string& obj = events[i];
        const std::string ph = extract_field(obj, "ph");
        if (ph.empty()) {
            *error = "event #" + std::to_string(i) + " has no ph";
            return false;
        }
        if (extract_field(obj, "pid").empty()) {
            *error = "event #" + std::to_string(i) + " has no pid";
            return false;
        }
        const std::string tid = extract_field(obj, "tid");
        if (tid.empty()) {
            *error = "event #" + std::to_string(i) + " has no tid";
            return false;
        }
        if (ph == "M")
            continue;  // metadata events carry no timestamp
        if (extract_field(obj, "name").empty()) {
            *error = "event #" + std::to_string(i) + " has no name";
            return false;
        }
        if (extract_field(obj, "ts").empty()) {
            *error = "event #" + std::to_string(i) + " has no ts";
            return false;
        }
        if (ph == "B") {
            ++span_depth[tid];
        } else if (ph == "E") {
            if (--span_depth[tid] < 0) {
                *error = "unmatched E on tid " + tid;
                return false;
            }
        } else if (ph == "s" || ph == "f") {
            const std::string id = extract_field(obj, "id");
            if (id.empty()) {
                *error = "flow event #" + std::to_string(i) + " has no id";
                return false;
            }
            (ph == "s" ? flow_starts : flow_finishes).insert(id);
        } else if (ph != "i" && ph != "C") {
            *error = "event #" + std::to_string(i) + " has unknown ph '" +
                     ph + "'";
            return false;
        }
    }
    for (const auto& [tid, depth] : span_depth) {
        if (depth != 0) {
            *error = "tid " + tid + " ends with " + std::to_string(depth) +
                     " unclosed span(s)";
            return false;
        }
    }
    for (const std::string& id : flow_starts) {
        if (flow_finishes.find(id) == flow_finishes.end()) {
            *error = "flow id " + id + " starts but never finishes";
            return false;
        }
    }
    return true;
}

}  // namespace rsafe::obs
