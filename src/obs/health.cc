#include "obs/health.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <sstream>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace rsafe::obs {

namespace {

/** Verdict-latency histogram geometry (mirrors ArStage's telemetry). */
constexpr std::uint64_t kLatencyHistMax = 64ull << 20;
constexpr std::size_t kLatencyHistBuckets = 64;

/** Signals that accumulate monotonically and are evaluated per tick. */
bool
is_cumulative(HealthSignal signal)
{
    return signal == HealthSignal::kChannelBackpressure ||
           signal == HealthSignal::kPoolStarvation;
}

}  // namespace

const char*
health_signal_name(HealthSignal signal)
{
    switch (signal) {
      case HealthSignal::kReplayLag: return "replay_lag";
      case HealthSignal::kVerdictLatency: return "verdict_latency";
      case HealthSignal::kQueueDepth: return "queue_depth";
      case HealthSignal::kChannelBackpressure: return "channel_backpressure";
      case HealthSignal::kCkptOccupancy: return "ckpt_occupancy";
      case HealthSignal::kPoolStarvation: return "pool_starvation";
    }
    return "<bad>";
}

const char*
health_state_name(HealthState state)
{
    switch (state) {
      case HealthState::kHealthy: return "healthy";
      case HealthState::kDegraded: return "degraded";
      case HealthState::kCritical: return "critical";
    }
    return "<bad>";
}

std::vector<SloRule>
default_slo_rules()
{
    std::vector<SloRule> rules;

    // Queue depth is the most reliable attack-storm symptom: alarms are
    // rare in benign traffic, so even a handful outstanding means the
    // AR workers are behind. Absolute, small thresholds.
    {
        SloRule r;
        r.signal = HealthSignal::kQueueDepth;
        r.degraded_at = 3;
        r.critical_at = 6;
        rules.push_back(r);
    }

    // Replay lag varies by workload, so it is judged against its own
    // EWMA baseline; the floor keeps a near-zero warm-up baseline from
    // flagging the first real batch of work.
    {
        SloRule r;
        r.signal = HealthSignal::kReplayLag;
        r.degraded_x = 8.0;
        r.critical_x = 64.0;
        r.baseline_floor = 4096;
        rules.push_back(r);
    }

    // Verdict latency p99 in sim cycles; deep reruns on attack alarms
    // are orders of magnitude above the benign shallow-rerun cost.
    {
        SloRule r;
        r.signal = HealthSignal::kVerdictLatency;
        r.degraded_at = 8ull << 20;
        r.critical_at = 32ull << 20;
        rules.push_back(r);
    }

    // Producer waits per tick: the recorder blocking on the channel is
    // the pipeline's backpressure signal. Relative with a floor so a
    // handful of waits around chunk boundaries stays quiet.
    {
        SloRule r;
        r.signal = HealthSignal::kChannelBackpressure;
        r.degraded_x = 4.0;
        r.critical_x = 16.0;
        r.baseline_floor = 8;
        rules.push_back(r);
    }

    // Checkpoint-store budget occupancy in percent; absolute because
    // the budget itself is the contract.
    {
        SloRule r;
        r.signal = HealthSignal::kCkptOccupancy;
        r.degraded_at = 85;
        r.critical_at = 95;
        rules.push_back(r);
    }

    // kPoolStarvation is sampled and exported but deliberately unruled:
    // starved waits also climb when the fleet is simply idle, so a
    // default rule would page on quiet periods. Deployments that want
    // it gated can add their own rule.
    return rules;
}

std::string
HealthEvent::to_string() const
{
    std::ostringstream os;
    os << "tenant=" << tenant << " " << health_signal_name(signal) << " "
       << health_state_name(from) << "->" << health_state_name(to)
       << " value=" << value << " threshold=" << threshold << " tick="
       << tick;
    return os.str();
}

/** Per-rule hysteresis state. */
struct HealthMonitor::RuleRuntime {
    SloRule rule;
    HealthState level = HealthState::kHealthy;
    std::uint32_t escalate_streak = 0;
    std::uint32_t clear_streak = 0;
    double ewma = 0.0;
    bool ewma_primed = false;
};

/** Everything the monitor tracks for one tenant. */
struct HealthMonitor::TenantRuntime {
    std::string name;
    SampleFn sampler;
    std::vector<RuleRuntime> rules;
    HealthState state = HealthState::kHealthy;
    HealthState worst = HealthState::kHealthy;
    std::uint64_t transitions = 0;
    HealthSample last;  ///< evaluated (per-tick) values
    std::array<std::uint64_t, kNumHealthSignals> prev_raw{};
    stats::Histogram verdict_latency{kLatencyHistMax, kLatencyHistBuckets};
};

HealthMonitor::HealthMonitor(HealthOptions options)
    : options_(std::move(options))
{
    if (options_.rules.empty())
        options_.rules = default_slo_rules();
}

HealthMonitor::~HealthMonitor()
{
    stop();
}

void
HealthMonitor::add_tenant(const std::string& tenant, SampleFn sampler)
{
    auto runtime = std::make_unique<TenantRuntime>();
    runtime->name = tenant;
    runtime->sampler = std::move(sampler);
    for (const SloRule& rule : options_.rules) {
        RuleRuntime rr;
        rr.rule = rule;
        runtime->rules.push_back(rr);
    }
    std::lock_guard<std::mutex> lock(mu_);
    tenants_.push_back(std::move(runtime));
}

void
HealthMonitor::add_listener(EventListener listener)
{
    std::lock_guard<std::mutex> lock(mu_);
    listeners_.push_back(std::move(listener));
}

void
HealthMonitor::add_sample_listener(SampleListener listener)
{
    std::lock_guard<std::mutex> lock(mu_);
    sample_listeners_.push_back(std::move(listener));
}

bool
HealthMonitor::start()
{
    if (!options_.enabled || std::getenv("RSAFE_NO_HEALTH") != nullptr)
        return false;
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (tenants_.empty())
            return false;
    }
    if (running_.load(std::memory_order_acquire))
        return true;
    stop_requested_.store(false, std::memory_order_release);
    stopped_ = false;
    running_.store(true, std::memory_order_release);
    thread_ = std::thread([this] { run_loop(); });
    return true;
}

bool
HealthMonitor::running() const
{
    return running_.load(std::memory_order_acquire);
}

void
HealthMonitor::stop()
{
    stop_requested_.store(true, std::memory_order_release);
    if (thread_.joinable())
        thread_.join();
    running_.store(false, std::memory_order_release);
    if (!stopped_) {
        stopped_ = true;
        // One final pass so the end-of-run state (the tick the breach
        // landed on, say) is captured even with a coarse cadence.
        if (options_.enabled && std::getenv("RSAFE_NO_HEALTH") == nullptr)
            tick();
    }
}

void
HealthMonitor::run_loop()
{
    Tracer::instance().attach_thread("health");
    while (!stop_requested_.load(std::memory_order_acquire)) {
        tick();
        std::this_thread::sleep_for(
            std::chrono::milliseconds(options_.cadence_ms));
    }
}

void
HealthMonitor::evaluate_tenant(TenantRuntime* tenant,
                               const HealthSample& raw,
                               std::vector<HealthEvent>* fired)
{
    // Transform raw readings into the evaluated per-tick sample:
    // cumulative signals become deltas, the verdict-latency peak is
    // folded into the tenant histogram and judged by its p99.
    HealthSample sample = raw;
    for (std::size_t i = 0; i < kNumHealthSignals; ++i) {
        const auto signal = static_cast<HealthSignal>(i);
        if (is_cumulative(signal)) {
            const std::uint64_t cur = raw.values[i];
            const std::uint64_t prev = tenant->prev_raw[i];
            sample.values[i] = cur > prev ? cur - prev : 0;
            tenant->prev_raw[i] = cur;
        }
    }
    const std::uint64_t latency_peak =
        raw.get(HealthSignal::kVerdictLatency);
    if (latency_peak != 0)
        tenant->verdict_latency.sample(latency_peak);
    sample.set(HealthSignal::kVerdictLatency,
               tenant->verdict_latency.count() != 0
                   ? tenant->verdict_latency.p99()
                   : 0);
    tenant->last = sample;

    for (RuleRuntime& rr : tenant->rules) {
        const std::uint64_t value = sample.get(rr.rule.signal);

        // A relative rule cannot judge deviation before it has seen
        // normal: the opening sample primes the baseline and is never
        // judged itself (startup transients — replay lag while the CR
        // warms up — would otherwise flag every tenant at tick one).
        if (rr.rule.degraded_x > 0.0 && !rr.ewma_primed) {
            rr.ewma = static_cast<double>(value);
            rr.ewma_primed = true;
            continue;
        }

        std::uint64_t degraded_at = rr.rule.degraded_at;
        std::uint64_t critical_at = rr.rule.critical_at;
        if (rr.rule.degraded_x > 0.0) {
            degraded_at = std::max<std::uint64_t>(
                rr.rule.baseline_floor,
                static_cast<std::uint64_t>(rr.ewma * rr.rule.degraded_x));
            critical_at = std::max<std::uint64_t>(
                rr.rule.baseline_floor,
                static_cast<std::uint64_t>(rr.ewma * rr.rule.critical_x));
            critical_at = std::max(critical_at, degraded_at);
        }

        HealthState inst = HealthState::kHealthy;
        if (critical_at != 0 && value >= critical_at)
            inst = HealthState::kCritical;
        else if (degraded_at != 0 && value >= degraded_at)
            inst = HealthState::kDegraded;

        // Baselines learn only from quiet samples: a breach must not
        // drag the baseline up until the breach stops being one.
        if (rr.rule.degraded_x > 0.0 && inst == HealthState::kHealthy &&
            rr.level == HealthState::kHealthy) {
            rr.ewma += options_.ewma_alpha *
                       (static_cast<double>(value) - rr.ewma);
        }

        HealthState next = rr.level;
        if (inst > rr.level) {
            rr.clear_streak = 0;
            if (++rr.escalate_streak >= rr.rule.breach_samples)
                next = inst;
        } else if (inst < rr.level) {
            rr.escalate_streak = 0;
            if (++rr.clear_streak >= rr.rule.clear_samples)
                next = inst;
        } else {
            rr.escalate_streak = 0;
            rr.clear_streak = 0;
        }

        if (next != rr.level) {
            HealthEvent event;
            event.tick = ticks_;
            event.tenant = tenant->name;
            event.signal = rr.rule.signal;
            event.from = rr.level;
            event.to = next;
            event.value = value;
            event.threshold =
                next >= HealthState::kCritical ? critical_at : degraded_at;
            fired->push_back(std::move(event));
            rr.level = next;
            rr.escalate_streak = 0;
            rr.clear_streak = 0;
        }
    }

    HealthState overall = HealthState::kHealthy;
    for (const RuleRuntime& rr : tenant->rules)
        overall = std::max(overall, rr.level);
    if (overall != tenant->state) {
        tenant->state = overall;
        ++tenant->transitions;
    }
    tenant->worst = std::max(tenant->worst, tenant->state);
}

void
HealthMonitor::tick()
{
    std::lock_guard<std::mutex> tick_lock(tick_mu_);

    // Snapshot the sampler list, then poll outside mu_ — samplers read
    // live pipeline state and must not nest under the monitor lock.
    std::vector<TenantRuntime*> tenants;
    {
        std::lock_guard<std::mutex> lock(mu_);
        for (auto& tenant : tenants_)
            tenants.push_back(tenant.get());
    }
    std::vector<HealthSample> raws;
    raws.reserve(tenants.size());
    for (TenantRuntime* tenant : tenants)
        raws.push_back(tenant->sampler());

    std::vector<HealthEvent> fired;
    std::vector<EventListener> listeners;
    std::vector<SampleListener> sample_listeners;
    std::vector<std::pair<std::string, HealthSample>> evaluated;
    {
        std::lock_guard<std::mutex> lock(mu_);
        for (std::size_t i = 0; i < tenants.size(); ++i)
            evaluate_tenant(tenants[i], raws[i], &fired);
        ++ticks_;

        for (TenantRuntime* tenant : tenants) {
            const std::string prefix = "tenant." + tenant->name + ".health.";
            live_.gauge(prefix + "state")
                .set(ticks_, static_cast<std::uint64_t>(tenant->state));
            live_.gauge(prefix + "worst")
                .set(ticks_, static_cast<std::uint64_t>(tenant->worst));
            live_.gauge(prefix + "transitions")
                .set(ticks_, tenant->transitions);
            for (std::size_t s = 0; s < kNumHealthSignals; ++s) {
                live_.gauge(prefix + health_signal_name(
                                         static_cast<HealthSignal>(s)))
                    .set(ticks_, tenant->last.values[s]);
            }
            evaluated.emplace_back(tenant->name, tenant->last);
        }

        for (const HealthEvent& event : fired) {
            if (events_.size() < 4096)
                events_.push_back(event);
        }
        listeners = listeners_;
        sample_listeners = sample_listeners_;
    }

    // Listener + trace dispatch happens outside mu_ so a listener can
    // call back into the monitor (healthz_json from a dump hook, say).
    for (const HealthEvent& event : fired) {
        Tracer::instance().instant("health.transition", "health", "state",
                                   static_cast<std::uint64_t>(event.to));
        for (const EventListener& listener : listeners)
            listener(event);
    }
    for (const auto& [tenant, sample] : evaluated) {
        for (const SampleListener& listener : sample_listeners)
            listener(tenant, sample);
    }
}

HealthState
HealthMonitor::state(const std::string& tenant) const
{
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& runtime : tenants_) {
        if (runtime->name == tenant)
            return runtime->state;
    }
    return HealthState::kHealthy;
}

HealthState
HealthMonitor::worst(const std::string& tenant) const
{
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& runtime : tenants_) {
        if (runtime->name == tenant)
            return runtime->worst;
    }
    return HealthState::kHealthy;
}

std::vector<HealthEvent>
HealthMonitor::events() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return events_;
}

std::uint64_t
HealthMonitor::ticks() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return ticks_;
}

std::string
HealthMonitor::healthz_json() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::string out = "{\"ticks\": " + std::to_string(ticks_);
    out += ", \"tenants\": {";
    bool first = true;
    for (const auto& tenant : tenants_) {
        if (!first)
            out += ", ";
        first = false;
        out += "\"" + tenant->name + "\": {";
        out += "\"state\": \"";
        out += health_state_name(tenant->state);
        out += "\", \"worst\": \"";
        out += health_state_name(tenant->worst);
        out += "\", \"transitions\": " + std::to_string(tenant->transitions);
        out += ", \"signals\": {";
        for (std::size_t s = 0; s < kNumHealthSignals; ++s) {
            if (s != 0)
                out += ", ";
            out += "\"";
            out += health_signal_name(static_cast<HealthSignal>(s));
            out += "\": " + std::to_string(tenant->last.values[s]);
        }
        out += "}}";
    }
    out += "}}";
    return out;
}

std::string
HealthMonitor::metrics_prometheus() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return MetricsExporter(live_).to_prometheus();
}

void
HealthMonitor::export_metrics(stats::StatRegistry* out) const
{
    std::lock_guard<std::mutex> lock(mu_);
    // live_ holds gauges only, so this never touches the deterministic
    // counter snapshot.
    (void)out->merge(live_);
}

}  // namespace rsafe::obs
