/**
 * @file
 * Figure 8: kernel false alarms per million instructions — suppressed by
 * the whitelist, suppressed by the BackRAS, and passed to the replayers.
 *
 * Paper shape targets: the whitelist and BackRAS suppress practically
 * everything; only apache passes a handful of (underflow) alarms caused
 * by deep NIC-driver nesting, and those are auto-resolved by the
 * checkpointing replayer's Evict matching.
 */

#include "bench_common.h"
#include "core/rop_detector.h"
#include "stats/table.h"

using namespace rsafe;
using stats::Table;

int
main()
{
    Table fig8("Figure 8: kernel false alarms per 1M instructions",
               {"benchmark", "Whitelist", "BackRAS", "FalseAlarm",
                "CR-resolved", "to-AR"});

    for (const auto& name : workloads::benchmark_names()) {
        const auto profile = bench::bench_profile(name);
        auto rec = bench::run_recording(profile, bench::RecMode::kRec);
        const auto& log = rec.recorder->log();
        const auto alarms = log.find_all(rnr::RecordType::kRasAlarm);
        const auto rates = core::false_alarm_rates(
            rec.vm->cpu().stats(), alarms.size());

        const auto replay = bench::run_checkpoint_replay(profile, log, 1.0);
        fig8.add_row({name, Table::fmt(rates.whitelist_suppressed, 1),
                      Table::fmt(rates.backras_suppressed, 1),
                      Table::fmt(rates.passed_to_replayers, 5),
                      std::to_string(replay.underflows_resolved),
                      std::to_string(replay.pending_alarms)});
    }
    bench::emit(fig8);
    return 0;
}
