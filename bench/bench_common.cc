#include "bench_common.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/log.h"

namespace rsafe::bench {

const char*
rec_mode_name(RecMode mode)
{
    switch (mode) {
      case RecMode::kNoRecPV: return "NoRecPV";
      case RecMode::kNoRec: return "NoRec";
      case RecMode::kRecNoRAS: return "RecNoRAS";
      case RecMode::kRec: return "Rec";
    }
    return "<bad>";
}

namespace {

double
scale_factor()
{
    const char* env = std::getenv("RSAFE_BENCH_SCALE");
    if (env == nullptr)
        return 1.0;
    const double value = std::atof(env);
    return value > 0 ? value : 1.0;
}

/** Iterations per task, sized for runs of roughly 10M instructions. */
std::uint64_t
bench_iterations(const std::string& name)
{
    if (name == "apache") return 1500;
    if (name == "fileio") return 350;
    if (name == "make") return 1500;
    if (name == "mysql") return 2200;
    if (name == "radiosity") return 3500;
    return 1000;
}

}  // namespace

workloads::WorkloadProfile
bench_profile(const std::string& name)
{
    auto profile = workloads::benchmark_profile(name);
    profile.iterations_per_task = static_cast<std::uint64_t>(
        double(bench_iterations(name)) * scale_factor());
    return profile;
}

RunResult
run_recording(const workloads::WorkloadProfile& profile, RecMode mode)
{
    RunResult result;
    result.vm = workloads::make_vm(profile);
    if (mode == RecMode::kRec || mode == RecMode::kRecNoRAS) {
        rnr::RecorderOptions options;
        if (mode == RecMode::kRecNoRAS) {
            options.manage_backras = false;
            options.ras_alarms = false;
            options.evict_exits = false;
            options.whitelists = false;
        }
        result.recorder =
            std::make_unique<rnr::Recorder>(result.vm.get(), options);
        const auto run = result.recorder->run(~static_cast<InstrCount>(0));
        if (run != hv::RunResult::kHalted)
            fatal("bench recording did not halt (" + profile.name + ")");
    } else {
        hv::HvOptions options;
        options.mediate_io = mode == RecMode::kNoRec;
        options.manage_backras = false;
        hv::Hypervisor hv(result.vm.get(), options);
        const auto run = hv.run(~static_cast<InstrCount>(0));
        if (run != hv::RunResult::kHalted)
            fatal("bench baseline did not halt (" + profile.name + ")");
    }
    result.cycles = result.vm->cpu().cycles();
    result.instructions = result.vm->cpu().icount();
    return result;
}

ReplayResult
run_checkpoint_replay(const workloads::WorkloadProfile& profile,
                      const rnr::InputLog& log, double interval_seconds)
{
    auto vm = workloads::make_vm(profile);
    replay::CrOptions options;
    options.checkpoint_interval = static_cast<Cycles>(
        interval_seconds * double(kCyclesPerSecond));
    options.max_checkpoints = 0;
    replay::CheckpointReplayer cr(vm.get(), &log, options);
    const auto outcome = cr.run();
    if (outcome != rnr::ReplayOutcome::kFinished)
        fatal("bench replay did not finish (" + profile.name + ")");

    ReplayResult result;
    result.cycles = vm->cpu().cycles();
    result.checkpoints = cr.checkpoints_taken();
    result.copies = cr.checkpoints().total_copies();
    result.overhead = cr.overhead();
    result.single_steps = cr.single_steps();
    result.underflows_resolved = cr.underflows_resolved();
    result.pending_alarms = cr.pending_alarms().size();
    return result;
}

double
geo_mean(const std::vector<double>& values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (const double value : values)
        log_sum += std::log(value);
    return std::exp(log_sum / double(values.size()));
}

void
emit(const stats::Table& table)
{
    std::fputs(table.to_string().c_str(), stdout);
    std::fputc('\n', stdout);
}

}  // namespace rsafe::bench
