/**
 * @file
 * Micro-benchmarks (google-benchmark) of the substrate's hot paths:
 * interpreter throughput, RAS operations, log serialization, and
 * checkpoint page copying.
 *
 * Besides the google-benchmark suite, the binary always finishes by
 * writing machine-readable results to BENCH_micro.json (interpreter
 * instructions/sec and ns/instr with the decode cache on and off,
 * plus full/incremental checkpoint costs). Pass --json-only to skip
 * the google-benchmark suite and emit just the JSON.
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <string>

#include "cpu/cpu.h"
#include "cpu/ras.h"
#include "isa/assembler.h"
#include "mem/cow_store.h"
#include "mem/phys_mem.h"
#include "replay/checkpoint.h"
#include "rnr/log_record.h"
#include "rnr/replayer.h"
#include "workloads/benchmarks.h"
#include "workloads/generator.h"

namespace {

using namespace rsafe;

class NullEnv : public cpu::CpuEnv {
  public:
    Word on_rdtsc() override { return 0; }
    Word on_io_in(std::uint16_t) override { return 0; }
    void on_io_out(std::uint16_t, Word) override {}
    Word on_mmio_read(Addr) override { return 0; }
    void on_mmio_write(Addr, Word) override {}
    void on_breakpoint(Addr) override {}
    void on_ras_alarm(const cpu::RasAlarm&) override {}
    void on_ras_evict(Addr) override {}
    void on_call_ret(const cpu::CallRetEvent&) override {}
};

void
BM_InterpreterAluLoop(benchmark::State& state)
{
    isa::Assembler a(0x1000);
    a.ldi(isa::R1, 1);
    a.label("loop");
    a.add(isa::R2, isa::R2, isa::R1);
    a.xori(isa::R2, isa::R2, 0x55);
    a.shli(isa::R3, isa::R2, 3);
    a.jmp("loop");
    auto image = a.link();

    mem::PhysMem mem(1 << 20);
    mem.load_image(image);
    mem.set_perms(0x1000, image.size(), mem::kPermRX);
    cpu::Cpu cpu(&mem);
    NullEnv env;
    cpu.set_env(&env);
    cpu.state().pc = 0x1000;
    cpu.state().sp = 0x80000;

    for (auto _ : state) {
        cpu.run(~static_cast<Cycles>(0), cpu.icount() + 100000);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(cpu.icount()));
}
BENCHMARK(BM_InterpreterAluLoop);

void
BM_InterpreterCallRet(benchmark::State& state)
{
    isa::Assembler a(0x1000);
    a.label("loop");
    a.call("fn");
    a.jmp("loop");
    a.func_begin("fn");
    a.ret();
    a.func_end();
    auto image = a.link();

    mem::PhysMem mem(1 << 20);
    mem.load_image(image);
    mem.set_perms(0x1000, image.size(), mem::kPermRX);
    cpu::Cpu cpu(&mem);
    NullEnv env;
    cpu.set_env(&env);
    cpu.state().pc = 0x1000;
    cpu.state().sp = 0x80000;

    for (auto _ : state)
        cpu.run(~static_cast<Cycles>(0), cpu.icount() + 100000);
    state.SetItemsProcessed(static_cast<std::int64_t>(cpu.icount()));
}
BENCHMARK(BM_InterpreterCallRet);

void
BM_RasPushPredict(benchmark::State& state)
{
    cpu::Ras ras(48);
    Addr predicted;
    for (auto _ : state) {
        ras.push(0x1234);
        benchmark::DoNotOptimize(ras.predict(0, 0x1234, &predicted));
    }
}
BENCHMARK(BM_RasPushPredict);

void
BM_RasSaveRestore(benchmark::State& state)
{
    cpu::Ras ras(48);
    for (int i = 0; i < 48; ++i)
        ras.push(0x1000 + i);
    for (auto _ : state) {
        auto saved = ras.save_and_clear();
        ras.load(saved);
    }
}
BENCHMARK(BM_RasSaveRestore);

void
BM_LogRecordSerialize(benchmark::State& state)
{
    rnr::LogRecord record;
    record.type = rnr::RecordType::kNicDma;
    record.icount = 123456;
    record.addr = 0x10000;
    record.payload.assign(1500, 0xab);
    std::vector<std::uint8_t> out;
    for (auto _ : state) {
        out.clear();
        record.serialize(&out);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations() * out.size()));
}
BENCHMARK(BM_LogRecordSerialize);

void
BM_CheckpointPageCopy(benchmark::State& state)
{
    mem::CowStore store;
    std::vector<std::uint8_t> page(kPageSize, 0x5a);
    for (auto _ : state)
        benchmark::DoNotOptimize(store.store(page.data()));
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations() * kPageSize));
}
BENCHMARK(BM_CheckpointPageCopy);

void
BM_MemContentHash(benchmark::State& state)
{
    mem::PhysMem mem(8 << 20);
    for (auto _ : state)
        benchmark::DoNotOptimize(mem.content_hash());
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations() * mem.size()));
}
BENCHMARK(BM_MemContentHash);

// --- Machine-readable results (BENCH_micro.json) ---

/** Timed measurement of one metric. */
struct InterpResult {
    double instr_per_sec = 0.0;
    double ns_per_instr = 0.0;
};

/** Run @p instrs guest instructions of a loop program and time them. */
InterpResult
measure_interpreter(const isa::Image& image, bool decode_cache,
                    InstrCount instrs)
{
    mem::PhysMem mem(1 << 20);
    mem.load_image(image);
    mem.set_perms(image.base(), image.size(), mem::kPermRX);
    cpu::Cpu cpu(&mem);
    NullEnv env;
    cpu.set_env(&env);
    cpu.set_decode_cache_enabled(decode_cache);
    cpu.state().pc = image.base();
    cpu.state().sp = 0x80000;

    cpu.run(~static_cast<Cycles>(0), instrs / 10);  // warm up
    const InstrCount start = cpu.icount();
    const auto t0 = std::chrono::steady_clock::now();
    cpu.run(~static_cast<Cycles>(0), start + instrs);
    const auto t1 = std::chrono::steady_clock::now();
    const double ns =
        std::chrono::duration<double, std::nano>(t1 - t0).count();
    const double executed = static_cast<double>(cpu.icount() - start);
    return {executed / (ns * 1e-9), ns / executed};
}

isa::Image
alu_loop_image()
{
    isa::Assembler a(0x1000);
    a.ldi(isa::R1, 1);
    a.label("loop");
    a.add(isa::R2, isa::R2, isa::R1);
    a.xori(isa::R2, isa::R2, 0x55);
    a.shli(isa::R3, isa::R2, 3);
    a.jmp("loop");
    return a.link();
}

isa::Image
call_ret_image()
{
    isa::Assembler a(0x1000);
    a.label("loop");
    a.call("fn");
    a.jmp("loop");
    a.func_begin("fn");
    a.ret();
    a.func_end();
    return a.link();
}

/** Wall-clock costs of the checkpoint paths. */
struct CheckpointResult {
    double full_take_ns = 0.0;
    std::size_t full_pages = 0;
    double incremental_take_ns = 0.0;
    std::size_t dirty_pages = 0;
    double rollback_restore_ns = 0.0;
};

CheckpointResult
measure_checkpoint()
{
    auto profile = workloads::benchmark_profile("radiosity");
    profile.rdtsc_prob = 0.0;
    auto vm = workloads::make_vm(profile);
    rnr::InputLog empty_log;
    rnr::Replayer env(vm.get(), &empty_log, 0, rnr::ReplayOptions{});
    replay::CheckpointStore store(4);
    vm->cpu().run(~static_cast<Cycles>(0), 1000);

    CheckpointResult out;
    const auto t0 = std::chrono::steady_clock::now();
    auto first = store.take(*vm, env, 0);
    const auto t1 = std::chrono::steady_clock::now();
    out.full_take_ns =
        std::chrono::duration<double, std::nano>(t1 - t0).count();
    out.full_pages = first->copies;

    // Dirty a small, fixed working set; an O(dirty) incremental take
    // should cost orders of magnitude less than the full copy above.
    constexpr std::size_t kDirty = 8;
    out.dirty_pages = kDirty;
    for (std::size_t i = 0; i < kDirty; ++i)
        vm->mem().write_raw(0x40000 + i * kPageSize, 8, i + 1);
    const auto t2 = std::chrono::steady_clock::now();
    auto second = store.take(*vm, env, 1);
    const auto t3 = std::chrono::steady_clock::now();
    out.incremental_take_ns =
        std::chrono::duration<double, std::nano>(t3 - t2).count();

    // Rollback restore into the same VM: the epoch filter should touch
    // only the pages dirtied since the checkpoint.
    for (std::size_t i = 0; i < kDirty; ++i)
        vm->mem().write_raw(0x80000 + i * kPageSize, 8, i + 1);
    const auto t4 = std::chrono::steady_clock::now();
    replay::restore_checkpoint(*second, vm.get(), &env);
    const auto t5 = std::chrono::steady_clock::now();
    out.rollback_restore_ns =
        std::chrono::duration<double, std::nano>(t5 - t4).count();
    return out;
}

void
write_bench_json(const char* path)
{
    const auto alu = measure_interpreter(alu_loop_image(), true, 20000000);
    const auto alu_nocache =
        measure_interpreter(alu_loop_image(), false, 2000000);
    const auto callret =
        measure_interpreter(call_ret_image(), true, 10000000);
    const auto ck = measure_checkpoint();

    std::FILE* f = std::fopen(path, "w");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", path);
        return;
    }
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"schema\": \"rsafe-bench-micro-v1\",\n");
    std::fprintf(f, "  \"interpreter\": {\n");
    std::fprintf(f,
                 "    \"alu_loop\": {\"instr_per_sec\": %.0f, "
                 "\"ns_per_instr\": %.3f},\n",
                 alu.instr_per_sec, alu.ns_per_instr);
    std::fprintf(f,
                 "    \"alu_loop_no_decode_cache\": {\"instr_per_sec\": "
                 "%.0f, \"ns_per_instr\": %.3f},\n",
                 alu_nocache.instr_per_sec, alu_nocache.ns_per_instr);
    std::fprintf(f,
                 "    \"call_ret\": {\"instr_per_sec\": %.0f, "
                 "\"ns_per_instr\": %.3f}\n",
                 callret.instr_per_sec, callret.ns_per_instr);
    std::fprintf(f, "  },\n");
    std::fprintf(f, "  \"checkpoint\": {\n");
    std::fprintf(f, "    \"full_take_ns\": %.0f,\n", ck.full_take_ns);
    std::fprintf(f, "    \"full_pages_copied\": %zu,\n", ck.full_pages);
    std::fprintf(f, "    \"incremental_take_ns\": %.0f,\n",
                 ck.incremental_take_ns);
    std::fprintf(f, "    \"incremental_dirty_pages\": %zu,\n",
                 ck.dirty_pages);
    std::fprintf(f, "    \"rollback_restore_ns\": %.0f\n",
                 ck.rollback_restore_ns);
    std::fprintf(f, "  }\n");
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("wrote %s (alu %.1f Minstr/s cache-on, %.1f cache-off)\n",
                path, alu.instr_per_sec / 1e6,
                alu_nocache.instr_per_sec / 1e6);
}

}  // namespace

int
main(int argc, char** argv)
{
    bool json_only = false;
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--json-only") {
            json_only = true;
            for (int j = i; j + 1 < argc; ++j)
                argv[j] = argv[j + 1];
            --argc;
            break;
        }
    }
    if (!json_only) {
        benchmark::Initialize(&argc, argv);
        benchmark::RunSpecifiedBenchmarks();
    }
    write_bench_json("BENCH_micro.json");
    return 0;
}
