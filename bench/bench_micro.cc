/**
 * @file
 * Micro-benchmarks (google-benchmark) of the substrate's hot paths:
 * interpreter throughput, RAS operations, log serialization, and
 * checkpoint page copying.
 */

#include <benchmark/benchmark.h>

#include "cpu/cpu.h"
#include "cpu/ras.h"
#include "isa/assembler.h"
#include "mem/cow_store.h"
#include "mem/phys_mem.h"
#include "rnr/log_record.h"

namespace {

using namespace rsafe;

class NullEnv : public cpu::CpuEnv {
  public:
    Word on_rdtsc() override { return 0; }
    Word on_io_in(std::uint16_t) override { return 0; }
    void on_io_out(std::uint16_t, Word) override {}
    Word on_mmio_read(Addr) override { return 0; }
    void on_mmio_write(Addr, Word) override {}
    void on_breakpoint(Addr) override {}
    void on_ras_alarm(const cpu::RasAlarm&) override {}
    void on_ras_evict(Addr) override {}
    void on_call_ret(const cpu::CallRetEvent&) override {}
};

void
BM_InterpreterAluLoop(benchmark::State& state)
{
    isa::Assembler a(0x1000);
    a.ldi(isa::R1, 1);
    a.label("loop");
    a.add(isa::R2, isa::R2, isa::R1);
    a.xori(isa::R2, isa::R2, 0x55);
    a.shli(isa::R3, isa::R2, 3);
    a.jmp("loop");
    auto image = a.link();

    mem::PhysMem mem(1 << 20);
    mem.load_image(image);
    mem.set_perms(0x1000, image.size(), mem::kPermRX);
    cpu::Cpu cpu(&mem);
    NullEnv env;
    cpu.set_env(&env);
    cpu.state().pc = 0x1000;
    cpu.state().sp = 0x80000;

    for (auto _ : state) {
        cpu.run(~static_cast<Cycles>(0), cpu.icount() + 100000);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(cpu.icount()));
}
BENCHMARK(BM_InterpreterAluLoop);

void
BM_InterpreterCallRet(benchmark::State& state)
{
    isa::Assembler a(0x1000);
    a.label("loop");
    a.call("fn");
    a.jmp("loop");
    a.func_begin("fn");
    a.ret();
    a.func_end();
    auto image = a.link();

    mem::PhysMem mem(1 << 20);
    mem.load_image(image);
    mem.set_perms(0x1000, image.size(), mem::kPermRX);
    cpu::Cpu cpu(&mem);
    NullEnv env;
    cpu.set_env(&env);
    cpu.state().pc = 0x1000;
    cpu.state().sp = 0x80000;

    for (auto _ : state)
        cpu.run(~static_cast<Cycles>(0), cpu.icount() + 100000);
    state.SetItemsProcessed(static_cast<std::int64_t>(cpu.icount()));
}
BENCHMARK(BM_InterpreterCallRet);

void
BM_RasPushPredict(benchmark::State& state)
{
    cpu::Ras ras(48);
    Addr predicted;
    for (auto _ : state) {
        ras.push(0x1234);
        benchmark::DoNotOptimize(ras.predict(0, 0x1234, &predicted));
    }
}
BENCHMARK(BM_RasPushPredict);

void
BM_RasSaveRestore(benchmark::State& state)
{
    cpu::Ras ras(48);
    for (int i = 0; i < 48; ++i)
        ras.push(0x1000 + i);
    for (auto _ : state) {
        auto saved = ras.save_and_clear();
        ras.load(saved);
    }
}
BENCHMARK(BM_RasSaveRestore);

void
BM_LogRecordSerialize(benchmark::State& state)
{
    rnr::LogRecord record;
    record.type = rnr::RecordType::kNicDma;
    record.icount = 123456;
    record.addr = 0x10000;
    record.payload.assign(1500, 0xab);
    std::vector<std::uint8_t> out;
    for (auto _ : state) {
        out.clear();
        record.serialize(&out);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations() * out.size()));
}
BENCHMARK(BM_LogRecordSerialize);

void
BM_CheckpointPageCopy(benchmark::State& state)
{
    mem::CowStore store;
    std::vector<std::uint8_t> page(kPageSize, 0x5a);
    for (auto _ : state)
        benchmark::DoNotOptimize(store.store(page.data()));
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations() * kPageSize));
}
BENCHMARK(BM_CheckpointPageCopy);

void
BM_MemContentHash(benchmark::State& state)
{
    mem::PhysMem mem(8 << 20);
    for (auto _ : state)
        benchmark::DoNotOptimize(mem.content_hash());
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations() * mem.size()));
}
BENCHMARK(BM_MemContentHash);

}  // namespace

BENCHMARK_MAIN();
