/**
 * @file
 * Micro-benchmarks (google-benchmark) of the substrate's hot paths:
 * interpreter and translation-block engine throughput, RAS operations,
 * log serialization, and checkpoint page copying.
 *
 * Besides the google-benchmark suite, the binary always finishes by
 * writing machine-readable results to BENCH_micro.json (instructions/sec
 * and ns/instr for the TB engine, the predecoded interpreter, and the
 * raw-decode interpreter, plus full/incremental checkpoint costs and
 * machine-independent speedup ratios). Pass --json-only to skip the
 * google-benchmark suite and emit just the JSON.
 *
 * Pass --gate <baseline.json> to run as a CI perf gate: the fresh
 * speedup ratios are compared against the checked-in baseline and the
 * process exits non-zero on a regression beyond the tolerance
 * (RSAFE_BENCH_GATE_TOLERANCE, percent, default 10). Ratios — not
 * absolute throughput — are gated so the check is meaningful across
 * machines of different speeds. The TB-over-interpreter ALU speedup
 * additionally has an absolute floor of 2.5x.
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "cpu/cpu.h"
#include "cpu/ras.h"
#include "isa/assembler.h"
#include "mem/cow_store.h"
#include "mem/phys_mem.h"
#include "replay/checkpoint.h"
#include "rnr/log_record.h"
#include "rnr/replayer.h"
#include "workloads/benchmarks.h"
#include "workloads/generator.h"

namespace {

using namespace rsafe;

class NullEnv : public cpu::CpuEnv {
  public:
    Word on_rdtsc() override { return 0; }
    Word on_io_in(std::uint16_t) override { return 0; }
    void on_io_out(std::uint16_t, Word) override {}
    Word on_mmio_read(Addr) override { return 0; }
    void on_mmio_write(Addr, Word) override {}
    void on_breakpoint(Addr) override {}
    void on_ras_alarm(const cpu::RasAlarm&) override {}
    void on_ras_evict(Addr) override {}
    void on_call_ret(const cpu::CallRetEvent&) override {}
};

void
BM_InterpreterAluLoop(benchmark::State& state)
{
    isa::Assembler a(0x1000);
    a.ldi(isa::R1, 1);
    a.label("loop");
    a.add(isa::R2, isa::R2, isa::R1);
    a.xori(isa::R2, isa::R2, 0x55);
    a.shli(isa::R3, isa::R2, 3);
    a.jmp("loop");
    auto image = a.link();

    mem::PhysMem mem(1 << 20);
    mem.load_image(image);
    mem.set_perms(0x1000, image.size(), mem::kPermRX);
    cpu::Cpu cpu(&mem);
    NullEnv env;
    cpu.set_env(&env);
    cpu.state().pc = 0x1000;
    cpu.state().sp = 0x80000;

    for (auto _ : state) {
        cpu.run(~static_cast<Cycles>(0), cpu.icount() + 100000);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(cpu.icount()));
}
BENCHMARK(BM_InterpreterAluLoop);

void
BM_InterpreterAluLoopNoTb(benchmark::State& state)
{
    isa::Assembler a(0x1000);
    a.ldi(isa::R1, 1);
    a.label("loop");
    a.add(isa::R2, isa::R2, isa::R1);
    a.xori(isa::R2, isa::R2, 0x55);
    a.shli(isa::R3, isa::R2, 3);
    a.jmp("loop");
    auto image = a.link();

    mem::PhysMem mem(1 << 20);
    mem.load_image(image);
    mem.set_perms(0x1000, image.size(), mem::kPermRX);
    cpu::Cpu cpu(&mem);
    NullEnv env;
    cpu.set_env(&env);
    cpu.set_tb_enabled(false);
    cpu.state().pc = 0x1000;
    cpu.state().sp = 0x80000;

    for (auto _ : state) {
        cpu.run(~static_cast<Cycles>(0), cpu.icount() + 100000);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(cpu.icount()));
}
BENCHMARK(BM_InterpreterAluLoopNoTb);

void
BM_InterpreterCallRet(benchmark::State& state)
{
    isa::Assembler a(0x1000);
    a.label("loop");
    a.call("fn");
    a.jmp("loop");
    a.func_begin("fn");
    a.ret();
    a.func_end();
    auto image = a.link();

    mem::PhysMem mem(1 << 20);
    mem.load_image(image);
    mem.set_perms(0x1000, image.size(), mem::kPermRX);
    cpu::Cpu cpu(&mem);
    NullEnv env;
    cpu.set_env(&env);
    cpu.state().pc = 0x1000;
    cpu.state().sp = 0x80000;

    for (auto _ : state)
        cpu.run(~static_cast<Cycles>(0), cpu.icount() + 100000);
    state.SetItemsProcessed(static_cast<std::int64_t>(cpu.icount()));
}
BENCHMARK(BM_InterpreterCallRet);

void
BM_RasPushPredict(benchmark::State& state)
{
    cpu::Ras ras(48);
    Addr predicted;
    for (auto _ : state) {
        ras.push(0x1234);
        benchmark::DoNotOptimize(ras.predict(0, 0x1234, &predicted));
    }
}
BENCHMARK(BM_RasPushPredict);

void
BM_RasSaveRestore(benchmark::State& state)
{
    cpu::Ras ras(48);
    for (int i = 0; i < 48; ++i)
        ras.push(0x1000 + i);
    for (auto _ : state) {
        auto saved = ras.save_and_clear();
        ras.load(saved);
    }
}
BENCHMARK(BM_RasSaveRestore);

void
BM_LogRecordSerialize(benchmark::State& state)
{
    rnr::LogRecord record;
    record.type = rnr::RecordType::kNicDma;
    record.icount = 123456;
    record.addr = 0x10000;
    record.payload.assign(1500, 0xab);
    std::vector<std::uint8_t> out;
    for (auto _ : state) {
        out.clear();
        record.serialize(&out);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations() * out.size()));
}
BENCHMARK(BM_LogRecordSerialize);

void
BM_CheckpointPageCopy(benchmark::State& state)
{
    mem::CowStore store;
    std::vector<std::uint8_t> page(kPageSize, 0x5a);
    for (auto _ : state)
        benchmark::DoNotOptimize(store.store(page.data()));
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations() * kPageSize));
}
BENCHMARK(BM_CheckpointPageCopy);

void
BM_MemContentHash(benchmark::State& state)
{
    mem::PhysMem mem(8 << 20);
    for (auto _ : state)
        benchmark::DoNotOptimize(mem.content_hash());
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations() * mem.size()));
}
BENCHMARK(BM_MemContentHash);

// --- Machine-readable results (BENCH_micro.json) ---

/** Timed measurement of one metric. */
struct InterpResult {
    double instr_per_sec = 0.0;
    double ns_per_instr = 0.0;
};

/** Run @p instrs guest instructions of a loop program and time them. */
InterpResult
measure_interpreter(const isa::Image& image, bool tb, bool decode_cache,
                    InstrCount instrs)
{
    mem::PhysMem mem(1 << 20);
    mem.load_image(image);
    mem.set_perms(image.base(), image.size(), mem::kPermRX);
    cpu::Cpu cpu(&mem);
    NullEnv env;
    cpu.set_env(&env);
    cpu.set_tb_enabled(tb);
    cpu.set_decode_cache_enabled(decode_cache);
    cpu.state().pc = image.base();
    cpu.state().sp = 0x80000;

    cpu.run(~static_cast<Cycles>(0), instrs / 10);  // warm up
    const InstrCount start = cpu.icount();
    const auto t0 = std::chrono::steady_clock::now();
    cpu.run(~static_cast<Cycles>(0), start + instrs);
    const auto t1 = std::chrono::steady_clock::now();
    const double ns =
        std::chrono::duration<double, std::nano>(t1 - t0).count();
    const double executed = static_cast<double>(cpu.icount() - start);
    return {executed / (ns * 1e-9), ns / executed};
}

isa::Image
alu_loop_image()
{
    isa::Assembler a(0x1000);
    a.ldi(isa::R1, 1);
    a.label("loop");
    a.add(isa::R2, isa::R2, isa::R1);
    a.xori(isa::R2, isa::R2, 0x55);
    a.shli(isa::R3, isa::R2, 3);
    a.jmp("loop");
    return a.link();
}

isa::Image
call_ret_image()
{
    isa::Assembler a(0x1000);
    a.label("loop");
    a.call("fn");
    a.jmp("loop");
    a.func_begin("fn");
    a.ret();
    a.func_end();
    return a.link();
}

/** Wall-clock costs of the checkpoint paths. */
struct CheckpointResult {
    double full_take_ns = 0.0;
    std::size_t full_pages = 0;
    double incremental_take_ns = 0.0;
    std::size_t dirty_pages = 0;
    double rollback_restore_ns = 0.0;
};

CheckpointResult
measure_checkpoint()
{
    auto profile = workloads::benchmark_profile("radiosity");
    profile.rdtsc_prob = 0.0;
    auto vm = workloads::make_vm(profile);
    rnr::InputLog empty_log;
    rnr::Replayer env(vm.get(), &empty_log, 0, rnr::ReplayOptions{});
    replay::CheckpointStore store(4);
    vm->cpu().run(~static_cast<Cycles>(0), 1000);

    CheckpointResult out;
    const auto t0 = std::chrono::steady_clock::now();
    auto first = store.take(*vm, env, 0);
    const auto t1 = std::chrono::steady_clock::now();
    out.full_take_ns =
        std::chrono::duration<double, std::nano>(t1 - t0).count();
    out.full_pages = first->copies;

    // Dirty a small, fixed working set; an O(dirty) incremental take
    // should cost orders of magnitude less than the full copy above.
    constexpr std::size_t kDirty = 8;
    out.dirty_pages = kDirty;
    for (std::size_t i = 0; i < kDirty; ++i)
        vm->mem().write_raw(0x40000 + i * kPageSize, 8, i + 1);
    const auto t2 = std::chrono::steady_clock::now();
    auto second = store.take(*vm, env, 1);
    const auto t3 = std::chrono::steady_clock::now();
    out.incremental_take_ns =
        std::chrono::duration<double, std::nano>(t3 - t2).count();

    // Rollback restore into the same VM: the epoch filter should touch
    // only the pages dirtied since the checkpoint.
    for (std::size_t i = 0; i < kDirty; ++i)
        vm->mem().write_raw(0x80000 + i * kPageSize, 8, i + 1);
    const auto t4 = std::chrono::steady_clock::now();
    replay::restore_checkpoint(*second, vm.get(), &env);
    const auto t5 = std::chrono::steady_clock::now();
    out.rollback_restore_ns =
        std::chrono::duration<double, std::nano>(t5 - t4).count();
    return out;
}

/** Everything that lands in BENCH_micro.json. */
struct BenchResults {
    InterpResult tb_alu;
    InterpResult tb_callret;
    InterpResult interp_alu;
    InterpResult interp_alu_nocache;
    InterpResult interp_callret;
    CheckpointResult ck;

    double tb_speedup_alu() const
    {
        return tb_alu.instr_per_sec / interp_alu.instr_per_sec;
    }
    double tb_speedup_call_ret() const
    {
        return tb_callret.instr_per_sec / interp_callret.instr_per_sec;
    }
    double decode_cache_speedup_alu() const
    {
        return interp_alu.instr_per_sec /
               interp_alu_nocache.instr_per_sec;
    }
};

BenchResults
measure_all()
{
    BenchResults r;
    r.tb_alu = measure_interpreter(alu_loop_image(), true, true, 50000000);
    r.interp_alu =
        measure_interpreter(alu_loop_image(), false, true, 20000000);
    r.interp_alu_nocache =
        measure_interpreter(alu_loop_image(), false, false, 2000000);
    r.tb_callret =
        measure_interpreter(call_ret_image(), true, true, 10000000);
    r.interp_callret =
        measure_interpreter(call_ret_image(), false, true, 10000000);
    r.ck = measure_checkpoint();
    return r;
}

void
write_bench_json(const BenchResults& r, const char* path)
{
    std::FILE* f = std::fopen(path, "w");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", path);
        return;
    }
    const auto metric = [f](const char* name, const InterpResult& m,
                            const char* sep) {
        std::fprintf(f,
                     "    \"%s\": {\"instr_per_sec\": %.0f, "
                     "\"ns_per_instr\": %.3f}%s\n",
                     name, m.instr_per_sec, m.ns_per_instr, sep);
    };
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"schema\": \"rsafe-bench-micro-v2\",\n");
    std::fprintf(f, "  \"tb\": {\n");
    metric("alu_loop", r.tb_alu, ",");
    metric("call_ret", r.tb_callret, "");
    std::fprintf(f, "  },\n");
    std::fprintf(f, "  \"interpreter\": {\n");
    metric("alu_loop", r.interp_alu, ",");
    metric("alu_loop_no_decode_cache", r.interp_alu_nocache, ",");
    metric("call_ret", r.interp_callret, "");
    std::fprintf(f, "  },\n");
    std::fprintf(f, "  \"ratios\": {\n");
    std::fprintf(f, "    \"tb_speedup_alu\": %.3f,\n", r.tb_speedup_alu());
    std::fprintf(f, "    \"tb_speedup_call_ret\": %.3f,\n",
                 r.tb_speedup_call_ret());
    std::fprintf(f, "    \"decode_cache_speedup_alu\": %.3f\n",
                 r.decode_cache_speedup_alu());
    std::fprintf(f, "  },\n");
    std::fprintf(f, "  \"checkpoint\": {\n");
    std::fprintf(f, "    \"full_take_ns\": %.0f,\n", r.ck.full_take_ns);
    std::fprintf(f, "    \"full_pages_copied\": %zu,\n", r.ck.full_pages);
    std::fprintf(f, "    \"incremental_take_ns\": %.0f,\n",
                 r.ck.incremental_take_ns);
    std::fprintf(f, "    \"incremental_dirty_pages\": %zu,\n",
                 r.ck.dirty_pages);
    std::fprintf(f, "    \"rollback_restore_ns\": %.0f\n",
                 r.ck.rollback_restore_ns);
    std::fprintf(f, "  }\n");
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf(
        "wrote %s (tb %.1f Minstr/s, interp %.1f, tb speedup %.2fx)\n",
        path, r.tb_alu.instr_per_sec / 1e6,
        r.interp_alu.instr_per_sec / 1e6, r.tb_speedup_alu());
}

/** Pull "key": <number> out of @p text; NaN when the key is absent. */
double
json_number(const std::string& text, const char* key)
{
    const std::string needle = std::string("\"") + key + "\":";
    const auto pos = text.find(needle);
    if (pos == std::string::npos)
        return std::nan("");
    return std::strtod(text.c_str() + pos + needle.size(), nullptr);
}

/**
 * CI perf gate: compare the fresh speedup ratios against the checked-in
 * baseline. @return the process exit code (0 = pass).
 */
int
run_gate(const BenchResults& r, const char* baseline_path)
{
    std::ifstream in(baseline_path);
    if (!in) {
        std::fprintf(stderr, "gate: cannot read baseline %s\n",
                     baseline_path);
        return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string base = buf.str();

    double tol_pct = 10.0;
    if (const char* env = std::getenv("RSAFE_BENCH_GATE_TOLERANCE");
        env != nullptr && env[0] != '\0') {
        tol_pct = std::strtod(env, nullptr);
    }
    const double floor = 1.0 - tol_pct / 100.0;

    bool ok = true;
    const auto check = [&](const char* name, double fresh,
                           double hard_floor) {
        const double ref = json_number(base, name);
        const double need =
            std::isnan(ref) ? hard_floor : std::max(ref * floor, hard_floor);
        const bool pass = fresh >= need;
        std::printf("gate: %-26s %6.2fx (baseline %6.2fx, need >= %.2fx) %s\n",
                    name, fresh, std::isnan(ref) ? 0.0 : ref, need,
                    pass ? "ok" : "REGRESSION");
        ok = ok && pass;
    };
    // The TB ALU speedup carries an absolute floor of 2.5x on top of the
    // relative check; the others only guard against relative regressions.
    check("tb_speedup_alu", r.tb_speedup_alu(), 2.5);
    check("decode_cache_speedup_alu", r.decode_cache_speedup_alu(), 0.0);
    return ok ? 0 : 1;
}

}  // namespace

int
main(int argc, char** argv)
{
    bool json_only = false;
    const char* gate_baseline = nullptr;
    for (int i = 1; i < argc;) {
        const std::string arg = argv[i];
        int consumed = 0;
        if (arg == "--json-only") {
            json_only = true;
            consumed = 1;
        } else if (arg == "--gate" && i + 1 < argc) {
            gate_baseline = argv[i + 1];
            consumed = 2;
        }
        if (consumed == 0) {
            ++i;
            continue;
        }
        for (int j = i; j + consumed < argc; ++j)
            argv[j] = argv[j + consumed];
        argc -= consumed;
    }
    if (!json_only && gate_baseline == nullptr) {
        benchmark::Initialize(&argc, argv);
        benchmark::RunSpecifiedBenchmarks();
    }
    const BenchResults results = measure_all();
    write_bench_json(results, "BENCH_micro.json");
    if (gate_baseline != nullptr)
        return run_gate(results, gate_baseline);
    return 0;
}
