#ifndef RSAFE_BENCH_BENCH_COMMON_H_
#define RSAFE_BENCH_BENCH_COMMON_H_

/**
 * @file
 * Shared machinery for the figure/table harnesses.
 *
 * Every bench binary regenerates one table or figure from the paper's
 * evaluation (Section 8). Runs are fixed-work: each benchmark executes a
 * fixed number of workload iterations to completion, and execution-time
 * comparisons are ratios of simulated cycles for that same work — the
 * same normalization the paper's figures use.
 *
 * Environment knobs:
 *   RSAFE_BENCH_SCALE  multiply the per-benchmark iteration counts
 *                      (default 1; larger = longer, smoother runs).
 */

#include <memory>
#include <string>
#include <vector>

#include "replay/checkpoint_replayer.h"
#include "rnr/recorder.h"
#include "stats/table.h"
#include "workloads/benchmarks.h"
#include "workloads/generator.h"

namespace rsafe::bench {

/** Cycles per simulated second (checkpoint cadence, MB/s reporting). */
inline constexpr Cycles kCyclesPerSecond = 4'000'000;

/** The four Figure 5(a) recording setups. */
enum class RecMode { kNoRecPV, kNoRec, kRecNoRAS, kRec };

/** @return display name of @p mode. */
const char* rec_mode_name(RecMode mode);

/** @return the benchmark's profile with bench-sized iteration counts. */
workloads::WorkloadProfile bench_profile(const std::string& name);

/** One completed execution in some mode. */
struct RunResult {
    Cycles cycles = 0;
    InstrCount instructions = 0;
    /** Populated for recording modes only. @{ */
    std::unique_ptr<rnr::Recorder> recorder;
    std::unique_ptr<hv::Vm> vm;
    /** @} */
};

/** Execute @p profile to completion under @p mode. */
RunResult run_recording(const workloads::WorkloadProfile& profile,
                        RecMode mode);

/** One completed checkpointing replay of @p log. */
struct ReplayResult {
    Cycles cycles = 0;
    std::uint64_t checkpoints = 0;
    std::uint64_t copies = 0;
    rnr::ReplayOverhead overhead;
    std::uint64_t single_steps = 0;
    std::uint64_t underflows_resolved = 0;
    std::uint64_t pending_alarms = 0;
};

/**
 * Replay @p log with checkpoints every @p interval_seconds (0 = none).
 */
ReplayResult run_checkpoint_replay(const workloads::WorkloadProfile& profile,
                                   const rnr::InputLog& log,
                                   double interval_seconds);

/** Geometric mean of @p values (the paper's "mean" bars). */
double geo_mean(const std::vector<double>& values);

/** Print the table and also write CSV next to the binary if asked. */
void emit(const stats::Table& table);

}  // namespace rsafe::bench

#endif  // RSAFE_BENCH_BENCH_COMMON_H_
